.PHONY: all build test bench bench-smoke obs-smoke check chaos resume-smoke \
  serve-smoke netchaos-smoke clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Engine throughput and multicore scaling only, at smoke sizes (seconds,
# not minutes); writes BENCH_engine.smoke.json / BENCH_par.smoke.json so
# it never clobbers the checked-in full-size BENCH_engine.json and
# BENCH_par.json.  Refresh the checked-in files with
# `TPDF_BENCH_ONLY=E17 make bench` and `TPDF_BENCH_ONLY=E18 make bench`
# (full sizes, tens of seconds each).
bench-smoke:
	TPDF_BENCH_SMOKE=1 TPDF_BENCH_ONLY=E17 \
	  TPDF_BENCH_OUT=BENCH_engine.smoke.json dune exec bench/main.exe
	TPDF_BENCH_SMOKE=1 TPDF_BENCH_ONLY=E18 \
	  TPDF_BENCH_PAR_OUT=BENCH_par.smoke.json dune exec bench/main.exe
	TPDF_BENCH_SMOKE=1 TPDF_BENCH_ONLY=E19 \
	  TPDF_BENCH_CKPT_OUT=BENCH_ckpt.smoke.json dune exec bench/main.exe
	TPDF_BENCH_SMOKE=1 TPDF_BENCH_ONLY=E20 \
	  TPDF_BENCH_OBS_OUT=BENCH_obs.smoke.json dune exec bench/main.exe
	TPDF_BENCH_SMOKE=1 TPDF_BENCH_ONLY=E21 \
	  TPDF_BENCH_PARAM_OUT=BENCH_param.smoke.json dune exec bench/main.exe
	TPDF_BENCH_SMOKE=1 TPDF_BENCH_ONLY=E22 \
	  TPDF_BENCH_SERVE_OUT=BENCH_serve.smoke.json dune exec bench/main.exe
	TPDF_BENCH_SMOKE=1 TPDF_BENCH_ONLY=E23 \
	  TPDF_BENCH_NETCHAOS_OUT=BENCH_netchaos.smoke.json dune exec bench/main.exe

# Telemetry smoke: E20 at smoke sizes (writes BENCH_obs.smoke.json, the
# checked-in BENCH_obs.json is refreshed with `TPDF_BENCH_ONLY=E20 make
# bench`), plus the critical-path analyzer on both case studies — it
# exits non-zero if the observed period beats the proven MCR bound or
# drifts from the throughput prediction.
obs-smoke:
	TPDF_BENCH_SMOKE=1 TPDF_BENCH_ONLY=E20 \
	  TPDF_BENCH_OBS_OUT=BENCH_obs.smoke.json dune exec bench/main.exe
	dune exec bin/tpdf_tool.exe -- analyze-trace ofdm-tpdf -p beta=2 -p N=8 -p L=1
	dune exec bin/tpdf_tool.exe -- analyze-trace edge -p W=8 -p H=8

check:
	sh ci/check.sh

# Seeded chaos runs on both case studies; exits non-zero on an
# unrecovered stall (same invocations as the CI smoke).
chaos:
	dune exec bin/tpdf_tool.exe -- chaos edge --seed 42 \
	  --faults 'fail:IDuplicate:0.8:2,jitter:*:0.2:0.5' --iterations 4
	dune exec bin/tpdf_tool.exe -- chaos ofdm-tpdf -p beta=2 -p N=8 -p L=1 \
	  --seed 42 --faults 'overrun:QAM:0.8:8,fail:FFT:0.3:4' \
	  --deadline QAM=0.05 --degrade-after 2 --iterations 6

# Crash-recovery smoke: kill a checkpointed chaos run mid-flight (exit
# 3), resume from the newest valid checkpoint, and require the resumed
# stdout to match the uninterrupted run byte for byte.
resume-smoke:
	@dir=$$(mktemp -d); \
	args="chaos ofdm-tpdf -p beta=2 -p N=8 -p L=1 --seed 42 \
	  --faults overrun:QAM:0.8:8,fail:FFT:0.3:4 --deadline QAM=0.05 \
	  --degrade-after 2 --iterations 6"; \
	dune exec bin/tpdf_tool.exe -- $$args > $$dir/golden && \
	{ dune exec bin/tpdf_tool.exe -- $$args --checkpoint-every 1 \
	    --checkpoint-dir $$dir/ckpts --kill-at-ms 3.0 > /dev/null; \
	  test $$? -eq 3; } && \
	dune exec bin/tpdf_tool.exe -- resume $$dir/ckpts \
	  > $$dir/resumed 2> /dev/null && \
	diff $$dir/golden $$dir/resumed && \
	rm -rf $$dir && echo "resume-smoke: OK"

# Serving smoke: daemon on a Unix socket, two tenants submitted and
# advanced, kill -9, restart on the same state dir — the continued
# session's responses must match an uninterrupted daemon's byte for
# byte.  See ci/serve_smoke.sh.
serve-smoke:
	sh ci/serve_smoke.sh

# Network-chaos smoke: kill -9 the source daemon mid-migration over real
# sockets, restart, resolve — the tenant must end up live on exactly one
# daemon with a byte-identical checkpoint; plus graceful drain and a
# fault-injecting socket layer round-trip.  See ci/netchaos_smoke.sh.
netchaos-smoke:
	sh ci/netchaos_smoke.sh

clean:
	dune clean
