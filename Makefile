.PHONY: all build test bench check chaos clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

check:
	sh ci/check.sh

# Seeded chaos runs on both case studies; exits non-zero on an
# unrecovered stall (same invocations as the CI smoke).
chaos:
	dune exec bin/tpdf_tool.exe -- chaos edge --seed 42 \
	  --faults 'fail:IDuplicate:0.8:2,jitter:*:0.2:0.5' --iterations 4
	dune exec bin/tpdf_tool.exe -- chaos ofdm-tpdf -p beta=2 -p N=8 -p L=1 \
	  --seed 42 --faults 'overrun:QAM:0.8:8,fail:FFT:0.3:4' \
	  --deadline QAM=0.05 --degrade-after 2 --iterations 6

clean:
	dune clean
