.PHONY: all build test bench check clean

all: build

build:
	dune build

test:
	dune runtest

bench:
	dune exec bench/main.exe

check:
	sh ci/check.sh

clean:
	dune clean
