(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md section 2 for the experiment index E1..E17).

   Environment knobs:
     TPDF_BENCH_SIZE   image side for the Fig. 6 table (default 1024)
     TPDF_BENCH_QUOTA  seconds of measurement per Bechamel test (default 2)
     TPDF_BENCH_TRACE  directory: write Chrome trace-event JSON (Perfetto)
                       and metrics summaries for instrumented runs of the
                       example graphs there
     TPDF_BENCH_ONLY   comma-separated experiment ids (e.g. "E17"): run
                       only those experiments
     TPDF_BENCH_SMOKE  when set to 1, E17 runs reduced graph sizes (CI)
     TPDF_BENCH_OUT    output path of the E17 perf JSON
                       (default BENCH_engine.json)
     TPDF_BENCH_PARAM_OUT  output path of the E21 symbolic-kernel JSON
                       (default BENCH_param.json) *)

open Bechamel
open Toolkit
open Tpdf_core
open Tpdf_param
open Tpdf_apps
module Csdf = Tpdf_csdf
module Image = Tpdf_image.Image
module Edge = Tpdf_image.Edge
module Synthetic = Tpdf_image.Synthetic
module Platform = Tpdf_platform.Platform
module Sched = Tpdf_sched
module Engine = Tpdf_sim.Engine

let env_int name default =
  match Sys.getenv_opt name with Some v -> int_of_string v | None -> default

let env_float name default =
  match Sys.getenv_opt name with Some v -> float_of_string v | None -> default

let bench_size = env_int "TPDF_BENCH_SIZE" 1024
let bench_quota = env_float "TPDF_BENCH_QUOTA" 2.0

let bench_smoke =
  match Sys.getenv_opt "TPDF_BENCH_SMOKE" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

(* Shared metadata block embedded in every BENCH_*.json so the numbers
   can be interpreted later (compiler, word size, how much parallelism
   the machine actually offers) without anything host-identifying. *)
let fp_metadata oc =
  let fp fmt = Printf.fprintf oc fmt in
  fp "  \"metadata\": {\n";
  fp "    \"ocaml_version\": %S,\n" Sys.ocaml_version;
  fp "    \"os_type\": %S,\n" Sys.os_type;
  fp "    \"word_size\": %d,\n" Sys.word_size;
  fp "    \"cores_detected\": %d,\n" (Tpdf_par.Pool.recommended ());
  fp "    \"tpdf_domains_env\": %s,\n"
    (match Sys.getenv_opt "TPDF_DOMAINS" with
    | Some s -> Printf.sprintf "%S" s
    | None -> "null");
  fp "    \"bench_smoke\": %b\n" bench_smoke;
  fp "  },\n"

let section id title =
  Printf.printf "\n==[ %s ]=== %s ==========================================\n" id title

(* One Bechamel measurement: estimated wall-clock per run, in ms. *)
let measure_ms name f =
  let test = Test.make ~name (Staged.stage f) in
  let cfg =
    Benchmark.cfg ~limit:300 ~quota:(Time.second bench_quota) ~kde:None ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  match Hashtbl.fold (fun _ v _ -> Some v) results None with
  | None -> nan
  | Some est -> (
      match Analyze.OLS.estimates est with
      | Some (ns :: _) -> ns /. 1.0e6
      | _ -> nan)

(* ------------------------------------------------------------------ *)
(* E1: Fig. 1 — CSDF example                                           *)
(* ------------------------------------------------------------------ *)

let e1_fig1 () =
  section "E1" "Fig. 1: CSDF repetition vector and schedule";
  let g = Csdf.Examples.fig1 () in
  let rep = Csdf.Repetition.solve g in
  Format.printf "%a@." Csdf.Repetition.pp rep;
  let conc = Csdf.Concrete.make g Valuation.empty in
  (match Csdf.Schedule.run ~policy:Csdf.Schedule.Late_first conc with
  | Csdf.Schedule.Complete t ->
      Format.printf "schedule: %a  (paper: (a3)^2 (a1)^3 (a2)^2)@."
        Csdf.Schedule.pp_compressed
        (Csdf.Schedule.compress t.Csdf.Schedule.firings);
      Format.printf "returns to initial state: %b@." t.Csdf.Schedule.returned_to_initial
  | Csdf.Schedule.Deadlock _ -> print_endline "UNEXPECTED DEADLOCK")

(* ------------------------------------------------------------------ *)
(* E2/E3/E4: Fig. 2 — symbolic analyses                                *)
(* ------------------------------------------------------------------ *)

let e2_fig2 () =
  section "E2-E4" "Fig. 2: parametric repetition vector, areas, rate safety";
  let { Examples.graph = g; _ } = Examples.fig2 () in
  let rep = Analysis.repetition g in
  Format.printf "%a@." Csdf.Repetition.pp rep;
  Format.printf "(paper Eq. 5: r = [2, 2p, p, p, 2p, p], q = [2, 2p, p, p, 2p, 2p])@.";
  List.iter
    (fun area -> Format.printf "%a@." Analysis.pp_area area)
    (Analysis.areas g);
  let area = Analysis.control_area g "C" in
  let qg = Analysis.local_scaling g rep area.Analysis.members in
  Format.printf "qG(Area(C)) = %a@." Poly.pp qg;
  List.iter
    (fun (a, f) -> Format.printf "  q^L(%s) = %a@." a Frac.pp f)
    (Analysis.local_solution g rep area.Analysis.members);
  Format.printf "rate safe: %b   (Definition 5)@." (Analysis.rate_safe g);
  let b = Analysis.check_boundedness g ~samples:(Liveness.default_samples g) in
  Format.printf
    "boundedness (Thm 2): consistent=%b rate_safe=%b live=%b => bounded=%b@."
    b.Analysis.consistent b.Analysis.rate_safe b.Analysis.live b.Analysis.bounded

(* ------------------------------------------------------------------ *)
(* E5: Fig. 4 — liveness by clustering and late schedules              *)
(* ------------------------------------------------------------------ *)

let e5_liveness () =
  section "E5" "Fig. 4: liveness, clustering, late schedules";
  let v = Valuation.of_list [ ("p", 3) ] in
  List.iter
    (fun (name, g) ->
      let r = Liveness.check g v in
      Format.printf "%s: %a@." name Liveness.pp_report r)
    [ ("fig4a", Examples.fig4a ()); ("fig4b", Examples.fig4b ()) ];
  let g = Examples.fig4a () in
  let rep = Analysis.repetition g in
  match Liveness.cluster_cycle g rep [ "B"; "C" ] with
  | Ok clustered ->
      Format.printf "clustered graph (Fig. 4c):@.%a@." Csdf.Graph.pp clustered;
      let rep' = Csdf.Repetition.solve clustered in
      Format.printf "clustered %a  (paper: schedule A^2 Omega^p)@."
        Csdf.Repetition.pp rep'
  | Error msg -> Printf.printf "clustering failed: %s\n" msg

(* ------------------------------------------------------------------ *)
(* E6: Fig. 5 — canonical period and multi-PE schedule                 *)
(* ------------------------------------------------------------------ *)

let e6_fig5 () =
  section "E6" "Fig. 5: canonical period of Fig. 2 at p=1, scheduled";
  let { Examples.graph = g; _ } = Examples.fig2 () in
  let conc = Csdf.Concrete.make (Graph.skeleton g) (Valuation.of_list [ ("p", 1) ]) in
  let period = Sched.Canonical_period.build conc in
  Format.printf "%a@." Sched.Canonical_period.pp period;
  let platform = Platform.uniform 4 in
  let s = Sched.List_scheduler.run ~graph:g period platform in
  print_string (Sched.Gantt.render platform s);
  Printf.printf "(C1 runs on the reserved control PE, as in the paper's Fig. 5)\n"

(* ------------------------------------------------------------------ *)
(* E7: Fig. 6 table — edge detector execution times                    *)
(* ------------------------------------------------------------------ *)

let e7_fig6_table () =
  section "E7"
    (Printf.sprintf "Fig. 6 table: edge-detector times on %dx%d (Bechamel)"
       bench_size bench_size);
  let img = Synthetic.scene ~seed:42 ~width:bench_size ~height:bench_size () in
  Printf.printf "%-12s %12s %18s\n" "detector" "measured ms"
    "paper ms (1024^2, i3)";
  let paper = function
    | Edge.Quick_mask -> "200"
    | Edge.Sobel -> "473"
    | Edge.Prewitt -> "522"
    | Edge.Kirsch -> "-"
    | Edge.Canny -> "1040"
  in
  let rows =
    List.map
      (fun d ->
        let ms = measure_ms (Edge.name d) (fun () -> ignore (Edge.run d img)) in
        Printf.printf "%-12s %12.1f %18s\n%!" (Edge.name d) ms (paper d);
        (d, ms))
      Edge.all
  in
  let find d = List.assoc d rows in
  Printf.printf
    "ordering check: quick < sobel <= prewitt < canny : %b (paper's shape)\n"
    (find Edge.Quick_mask < find Edge.Sobel
    && find Edge.Sobel <= find Edge.Prewitt +. 1e-9
    && find Edge.Prewitt < find Edge.Canny)

(* ------------------------------------------------------------------ *)
(* E8: Fig. 6 application — deadline-driven selection                  *)
(* ------------------------------------------------------------------ *)

let e8_fig6_deadline () =
  section "E8" "Fig. 6 app: Transaction selection vs. clock deadline";
  Printf.printf "deadline sweep at 1024x1024 (model timing):\n";
  List.iter
    (fun deadline ->
      let w = Edge_app.winner_at_deadline ~deadline_ms:deadline ~size:1024 () in
      Printf.printf "  %6.0f ms -> %s\n" deadline (Edge.name w))
    [ 100.0; 250.0; 500.0; 600.0; 1200.0; 2000.0 ];
  Printf.printf "(paper: at 500 ms the best result available is chosen,\n";
  Printf.printf " priority Canny > Prewitt > Sobel > Quick Mask)\n";
  let r = Edge_app.run ~size:256 ~frames:3 ~deadline_ms:75.0 () in
  Printf.printf "simulated run (256x256, 75 ms deadline, 3 frames):\n";
  List.iter
    (fun (f : Edge_app.frame_result) ->
      Printf.printf "  t=%7.1f ms  winner=%-10s edge pixels=%d\n"
        f.Edge_app.at_ms (Edge.name f.Edge_app.winner) f.Edge_app.edge_pixels)
    r.Edge_app.frames

(* ------------------------------------------------------------------ *)
(* E9: Fig. 7 — OFDM demodulator functional run                        *)
(* ------------------------------------------------------------------ *)

let e9_fig7 () =
  section "E9" "Fig. 7: OFDM demodulator (TPDF) end-to-end";
  let show m snr =
    let r = Ofdm_app.run_link ~snr_db:snr ~beta:4 ~n:512 ~l:16 ~m ~iterations:2 () in
    Printf.printf
      "  M=%d (%s)%s: %d bits, BER=%.5f, QPSK fired %d, QAM fired %d\n" m
      (if m = 2 then "QPSK" else "16-QAM")
      (match snr with None -> " noiseless" | Some s -> Printf.sprintf " @%.0fdB" s)
      r.Ofdm_app.sent_bits r.Ofdm_app.ber
      (List.assoc "QPSK" r.Ofdm_app.firings)
      (List.assoc "QAM" r.Ofdm_app.firings)
  in
  show 2 None;
  show 4 None;
  show 2 (Some 20.0);
  show 4 (Some 20.0);
  Printf.printf "(only the branch selected by the control actor CON fires)\n"

(* ------------------------------------------------------------------ *)
(* E10: Fig. 8 — minimum buffer size vs vectorization degree           *)
(* ------------------------------------------------------------------ *)

let e10_fig8 () =
  section "E10" "Fig. 8: minimum buffer size vs beta (TPDF vs CSDF)";
  Printf.printf "%5s %14s %14s %14s %14s\n" "beta" "N=512 TPDF" "N=512 CSDF"
    "N=1024 TPDF" "N=1024 CSDF";
  let betas = [ 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ] in
  List.iter
    (fun beta ->
      let t512 = (Ofdm_app.tpdf_buffers ~beta ~n:512 ~l:1).Csdf.Buffers.total in
      let c512 = (Ofdm_app.csdf_buffers ~beta ~n:512 ~l:1).Csdf.Buffers.total in
      let t1024 = (Ofdm_app.tpdf_buffers ~beta ~n:1024 ~l:1).Csdf.Buffers.total in
      let c1024 = (Ofdm_app.csdf_buffers ~beta ~n:1024 ~l:1).Csdf.Buffers.total in
      Printf.printf "%5d %14d %14d %14d %14d\n" beta t512 c512 t1024 c1024)
    betas;
  let t = (Ofdm_app.tpdf_buffers ~beta:100 ~n:1024 ~l:1).Csdf.Buffers.total in
  let c = (Ofdm_app.csdf_buffers ~beta:100 ~n:1024 ~l:1).Csdf.Buffers.total in
  Printf.printf
    "formulas: TPDF = 3 + beta*(12N+L), CSDF = beta*(17N+L) — both match the paper\n";
  Printf.printf "improvement at beta=100, N=1024: %.1f%%  (paper: 29%%)\n"
    (100.0 *. float_of_int (c - t) /. float_of_int c)

(* ------------------------------------------------------------------ *)
(* E11: performance improvement vs CSDF (schedule makespan)            *)
(* ------------------------------------------------------------------ *)

let ofdm_costs ~beta ~n (node : Sched.Canonical_period.node) =
  Ofdm_app.model_cost_ms ~beta ~n node.Sched.Canonical_period.actor

let e11_speedup () =
  section "E11" "Schedule makespan: TPDF vs CSDF OFDM on the platform model";
  Printf.printf "%5s %6s %12s %12s %9s\n" "beta" "PEs" "TPDF ms" "CSDF ms" "gain";
  List.iter
    (fun (beta, pes) ->
      let n = 512 in
      let v = Ofdm_app.valuation ~beta ~n ~l:1 in
      let tg, _ = Ofdm_app.tpdf_graph () in
      let cg, _ = Ofdm_app.csdf_graph () in
      let platform = Platform.uniform pes in
      let makespan g ~include_actor =
        let conc = Csdf.Concrete.make (Graph.skeleton g) v in
        (* four iterations in flight so the pipeline can spread over PEs *)
        let period =
          Sched.Canonical_period.build ~include_actor ~iterations:4 conc
        in
        (* no reserved control PE: on 2-4 PE platforms reserving one for
           the single CON firing would serialize every kernel *)
        (Sched.List_scheduler.run ~durations:(ofdm_costs ~beta ~n)
           ~reserve_control_pe:false ~graph:g period platform)
          .Sched.List_scheduler.makespan_ms
      in
      (* TPDF: the control decision (QPSK here) suppresses the QAM branch *)
      let t = makespan tg ~include_actor:(fun a -> a <> "QAM") in
      let c = makespan cg ~include_actor:(fun _ -> true) in
      Printf.printf "%5d %6d %12.2f %12.2f %8.1f%%\n" beta pes t c
        (100.0 *. (c -. t) /. c))
    [ (10, 2); (10, 4); (50, 2); (50, 4); (100, 2); (100, 4); (100, 8) ]

(* ------------------------------------------------------------------ *)
(* E12: FM radio — redundant work avoided by dynamic topology          *)
(* ------------------------------------------------------------------ *)

let e12_fmradio () =
  section "E12" "FM radio (StreamIt-style): TPDF avoids redundant band work";
  List.iter
    (fun profile ->
      let c = Fm_radio.compare_profiles ~bands:8 ~pes:2 profile in
      Printf.printf
        "%-7s bands: TPDF fires %d / CSDF fires %d; makespan %.2f vs %.2f ms; \
         buffers %d vs %d\n"
        (Fm_radio.profile_mode profile)
        c.Fm_radio.tpdf_band_firings c.Fm_radio.csdf_band_firings
        c.Fm_radio.tpdf_makespan_ms c.Fm_radio.csdf_makespan_ms
        c.Fm_radio.tpdf_buffers c.Fm_radio.csdf_buffers)
    [ Fm_radio.Speech; Fm_radio.Music ];
  let r = Fm_radio.run_audio Fm_radio.Speech ~iterations:4 in
  Printf.printf "functional audio run (speech): %d samples, output power %.4f\n"
    r.Fm_radio.samples r.Fm_radio.output_power

(* ------------------------------------------------------------------ *)
(* E14: video encoder — quality threshold under real-time constraints  *)
(* ------------------------------------------------------------------ *)

let e14_video () =
  section "E14" "AVC-style front end: motion-estimation quality vs deadline";
  Printf.printf "per-estimator residual on a synthetic pan (128x128):\n";
  List.iter
    (fun (e, r) ->
      Printf.printf "  %-12s residual %8.2f  (model cost %6.1f ms)\n"
        (Video_app.estimator_name e) r
        (Video_app.model_duration_ms e ~size:128 ~block:16 ~range:7))
    (Video_app.residual_by_estimator ~size:128 ());
  Printf.printf "deadline sweep (Transaction picks best available field):\n";
  List.iter
    (fun deadline ->
      let r = Video_app.run ~frames:1 ~deadline_ms:deadline () in
      match r.Video_app.frames with
      | [ f ] ->
          Printf.printf "  %6.0f ms -> %-12s residual %8.2f\n" deadline
            (Video_app.estimator_name f.Video_app.chosen)
            f.Video_app.residual
      | _ -> Printf.printf "  %6.0f ms -> (no frame)\n" deadline)
    [ 8.0; 20.0; 60.0; 150.0 ];
  Printf.printf
    "(the §V claim: highest quality available within real-time constraints)\n"

(* ------------------------------------------------------------------ *)
(* E15: ablations — scheduling policies and steady-state throughput    *)
(* ------------------------------------------------------------------ *)

let e15_ablation () =
  section "E15" "Ablations: buffer policies and pipelined throughput";
  (* sequential-schedule policy vs buffer total on a multirate graph *)
  let { Examples.graph = fig2b; _ } = Examples.fig2 () in
  let v = Valuation.of_list [ ("p", 8) ] in
  Printf.printf "buffer totals by scheduling policy (fig2, p=8):\n";
  List.iter
    (fun (name, policy) ->
      let r = Buffers.analyze ~policy fig2b v ~scenario:[ ("F", "take_e6") ] in
      Printf.printf "  %-10s %8d tokens\n" name r.Csdf.Buffers.total)
    [
      ("eager", Csdf.Schedule.Eager);
      ("late", Csdf.Schedule.Late_first);
      ("min-buffer", Csdf.Schedule.Min_buffer);
    ];
  (* exact back-pressure minimum vs the occupancy heuristic *)
  Printf.printf "minimum buffers, occupancy heuristic vs back-pressure search:\n";
  List.iter
    (fun (name, conc) ->
      let occ = (Csdf.Buffers.analyze conc).Csdf.Buffers.total in
      let bp = (Csdf.Bounded.minimize conc).Csdf.Bounded.total in
      Printf.printf "  %-18s occupancy %5d   back-pressure %5d\n" name occ bp)
    [
      ("fig1", Csdf.Concrete.make (Csdf.Examples.fig1 ()) Valuation.empty);
      ( "fig2 (p=8)",
        Csdf.Concrete.make
          (Graph.skeleton (Examples.fig2 ()).Examples.graph)
          (Valuation.of_list [ ("p", 8) ]) );
    ];
  (* steady-state iteration period of fig2 vs PE count *)
  let { Examples.graph = fig2; _ } = Examples.fig2 () in
  let conc =
    Csdf.Concrete.make (Graph.skeleton fig2) (Valuation.of_list [ ("p", 4) ])
  in
  Printf.printf "fig2 steady-state iteration period (p=4):\n";
  List.iter
    (fun pes ->
      let period =
        Sched.Throughput.iteration_period_ms ~graph:fig2 conc
          (Platform.uniform pes)
      in
      Printf.printf "  %2d PEs: %6.2f ms/iteration\n" pes period)
    [ 1; 2; 4; 8 ];
  Printf.printf "  intrinsic bound (max cycle ratio): %.2f ms/iteration\n"
    (Sched.Mcr.iteration_period_ms (Sched.Mcr.build conc));
  (* mcr.solve wall time: the tpdf_obs gauge (one instrumented solve)
     next to a Bechamel estimate of the dense-array solver, so the
     instrumentation overhead and the real cost stay comparable. *)
  let mcr_t = Sched.Mcr.build conc in
  let obs = Tpdf_obs.Obs.create () in
  ignore (Sched.Mcr.iteration_period_ms ~obs mcr_t);
  let observed =
    match
      Tpdf_obs.Metrics.histogram (Tpdf_obs.Obs.metrics obs) "mcr.solve_ms"
    with
    | Some h -> h.Tpdf_obs.Metrics.sum
    | None -> nan
  in
  let measured =
    measure_ms "mcr.solve" (fun () ->
        ignore (Sched.Mcr.iteration_period_ms mcr_t))
  in
  Printf.printf
    "  mcr.solve wall time: obs gauge %.4f ms, bechamel %.4f ms (dense arrays)\n"
    observed measured

(* ------------------------------------------------------------------ *)
(* E16: resilience sweep — seeded chaos on the OFDM demodulator        *)
(* ------------------------------------------------------------------ *)

module Fault = Tpdf_fault

let e16_resilience () =
  section "E16"
    "Resilience: seeded fault injection on the OFDM demodulator (lib/fault)";
  let g, _ = Ofdm_app.tpdf_graph () in
  let beta = 2 and n = 8 in
  let v = Ofdm_app.valuation ~beta ~n ~l:1 in
  let behaviors =
    List.filter_map
      (fun a ->
        if Graph.is_control g a then None
        else
          Some
            ( a,
              Tpdf_sim.Behavior.fill 0
                ~duration_ms:(fun _ -> Ofdm_app.model_cost_ms ~beta ~n a) ))
      (Graph.actors g)
  in
  (* QAM (0.0128 ms/firing here) against a 0.05 ms deadline: an x8 overrun
     misses it, two consecutive misses degrade DUP and TRAN to QPSK. *)
  let policy =
    Fault.Policy.make
      ~deadlines_ms:[ ("QAM", 0.05) ]
      ~degrade_after:2
      ~fallbacks:(Fault.Chaos.default_fallbacks g) ()
  in
  Printf.printf "%5s %8s %6s %7s %7s %9s %9s %10s\n" "prob" "retries" "skips"
    "misses" "degr." "hit%" "end ms" "recovered";
  List.iter
    (fun prob ->
      let specs =
        if prob = 0.0 then []
        else
          [
            Fault.Fault.spec ~target:"QAM" ~prob (Fault.Fault.Overrun 8.0);
            Fault.Fault.spec ~target:"FFT" ~prob:(prob /. 2.0)
              (Fault.Fault.Fail 4);
            Fault.Fault.spec ~prob:(prob /. 4.0) (Fault.Fault.Jitter 0.02);
          ]
      in
      let s =
        Fault.Chaos.run ~graph:g ~seed:42 ~specs ~policy ~iterations:8
          ~behaviors ~valuation:v ()
      in
      let open Fault.Supervisor in
      let checks = s.deadline_hits + s.deadline_misses in
      Printf.printf "%5.2f %8d %6d %7d %7d %8.1f%% %9.3f %10s\n" prob
        s.retries s.skips s.deadline_misses
        (List.length s.degrades)
        (if checks = 0 then 100.0
         else 100.0 *. float_of_int s.deadline_hits /. float_of_int checks)
        s.total_end_ms
        (if Fault.Chaos.recovered s then "yes" else "NO"))
    [ 0.0; 0.3; 0.6; 0.9 ]

(* ------------------------------------------------------------------ *)
(* Analysis-cost microbenchmarks (ablation)                            *)
(* ------------------------------------------------------------------ *)

let e13_analysis_cost () =
  section "E13" "Analysis cost: the static checks are cheap (Bechamel)";
  let { Examples.graph = fig2; _ } = Examples.fig2 () in
  let og, _ = Ofdm_app.tpdf_graph () in
  let rows =
    [
      ("fig2 repetition", fun () -> ignore (Analysis.repetition fig2));
      ("fig2 rate-safety", fun () -> ignore (Analysis.rate_safe fig2));
      ( "fig2 liveness p=5",
        fun () ->
          ignore (Liveness.is_live fig2 (Valuation.of_list [ ("p", 5) ])) );
      ("ofdm repetition", fun () -> ignore (Analysis.repetition og));
      ("ofdm rate-safety", fun () -> ignore (Analysis.rate_safe og));
      ( "ofdm buffers b=100",
        fun () -> ignore (Ofdm_app.tpdf_buffers ~beta:100 ~n:1024 ~l:1) );
    ]
  in
  List.iter
    (fun (name, f) ->
      let ms = measure_ms name f in
      Printf.printf "%-22s %10.4f ms\n%!" name ms)
    rows

(* ------------------------------------------------------------------ *)
(* E17: engine hot-path throughput on synthetic graphs                 *)
(* ------------------------------------------------------------------ *)

(* Synthetic topologies exercising the discrete-event engine at scales the
   paper graphs never reach (1e2..1e4 actors, 1e5+ events).  All rates are
   1 so the repetition vector is trivially all-ones and every completion
   costs exactly one engine event. *)

let one = Csdf.Graph.const_rates [ 1 ]

let synth_chain n =
  let g = Graph.create () in
  for i = 0 to n - 1 do
    Graph.add_kernel g (Printf.sprintf "K%d" i)
  done;
  for i = 0 to n - 2 do
    ignore
      (Graph.add_channel g
         ~src:(Printf.sprintf "K%d" i)
         ~dst:(Printf.sprintf "K%d" (i + 1))
         ~prod:one ~cons:one ())
  done;
  g

let synth_fan n =
  (* one source feeding n-1 independent sinks *)
  let g = Graph.create () in
  Graph.add_kernel g "SRC";
  for i = 1 to n - 1 do
    let a = Printf.sprintf "S%d" i in
    Graph.add_kernel g a;
    ignore (Graph.add_channel g ~src:"SRC" ~dst:a ~prod:one ~cons:one ())
  done;
  g

let synth_grid w h =
  (* h layers of w actors; each actor feeds straight-down and down-right
     (wrapping), so interior actors have two inputs and two outputs *)
  let g = Graph.create () in
  let name i j = Printf.sprintf "G%d_%d" i j in
  for i = 0 to h - 1 do
    for j = 0 to w - 1 do
      Graph.add_kernel g (name i j)
    done
  done;
  for i = 0 to h - 2 do
    for j = 0 to w - 1 do
      ignore
        (Graph.add_channel g ~src:(name i j) ~dst:(name (i + 1) j) ~prod:one
           ~cons:one ());
      ignore
        (Graph.add_channel g
           ~src:(name i j)
           ~dst:(name (i + 1) ((j + 1) mod w))
           ~prod:one ~cons:one ())
    done
  done;
  g

type e17_run = {
  graph_name : string;
  actors : int;
  iterations : int;
  events : int;
  wall_ms : float;
  events_per_sec : float;
  peak_heap_words : int;
  compiled_wall_ms : float;
  compiled_events_per_sec : float;
  compiled_vs_interpreted : float;
}

(* One timed run on a fresh engine.  [Gc.compact] first: it returns the
   heap to the live set, so [heap_words] after the run measures only
   this run's growth.  ([top_heap_words] is a process-lifetime high-water
   mark — using it reported the cumulative maximum of all earlier
   benchmarks, identical for every row.) *)
let e17_time_backend ~backend ~iterations g =
  let eng = Engine.create ~graph:g ~valuation:Valuation.empty ~default:0 () in
  Gc.compact ();
  let t0 = Tpdf_obs.Obs.now_wall_ms () in
  let stats = Engine.run ~backend ~iterations ~max_events:10_000_000 eng in
  let wall_ms = Tpdf_obs.Obs.now_wall_ms () -. t0 in
  let peak_heap_words = (Gc.quick_stat ()).Gc.heap_words in
  (stats, wall_ms, peak_heap_words)

(* Interleaved min-of-N: alternating the backends and taking each one's
   best repetition cancels GC-state and warm-up order bias — timing the
   pair back to back once systematically penalised whichever ran second. *)
let e17_reps = 3

let e17_run_one ~graph_name ~iterations g =
  let actors = List.length (Graph.actors g) in
  let stats, wall_ms, peak_heap_words =
    e17_time_backend ~backend:`Event ~iterations g
  in
  let _, compiled_wall_ms, _ =
    e17_time_backend ~backend:`Compiled ~iterations g
  in
  let wall_ms = ref wall_ms and compiled_wall_ms = ref compiled_wall_ms in
  for _ = 2 to e17_reps do
    let _, w, _ = e17_time_backend ~backend:`Event ~iterations g in
    if w < !wall_ms then wall_ms := w;
    let _, w, _ = e17_time_backend ~backend:`Compiled ~iterations g in
    if w < !compiled_wall_ms then compiled_wall_ms := w
  done;
  let wall_ms = !wall_ms and compiled_wall_ms = !compiled_wall_ms in
  let events =
    List.fold_left (fun acc (_, n) -> acc + n) 0 stats.Engine.firings
  in
  let per_sec wall =
    if wall <= 0.0 then 0.0 else 1000.0 *. float_of_int events /. wall
  in
  {
    graph_name;
    actors;
    iterations;
    events;
    wall_ms;
    events_per_sec = per_sec wall_ms;
    peak_heap_words;
    compiled_wall_ms;
    compiled_events_per_sec = per_sec compiled_wall_ms;
    compiled_vs_interpreted =
      (if compiled_wall_ms <= 0.0 then 0.0 else wall_ms /. compiled_wall_ms);
  }

(* Seed-engine throughput on the 1e3-actor chain (commit 00dbc53, same
   workload, same machine class): the pre-PR number every BENCH_engine.json
   reports as [baseline] so the trajectory keeps its origin. *)
let e17_baseline_chain_1e3_events_per_sec = 2544.0

let e17_engine () =
  section "E17" "Engine throughput: synthetic chain / fan / grid graphs";
  let smoke = bench_smoke in
  let configs =
    if smoke then
      [
        ("chain", synth_chain 100, 20);
        ("fan", synth_fan 100, 20);
        ("grid", synth_grid 10 10, 20);
      ]
    else
      [
        ("chain", synth_chain 100, 1000);
        ("chain", synth_chain 1000, 100);
        ("chain", synth_chain 10_000, 10);
        ("fan", synth_fan 1000, 100);
        ("fan", synth_fan 10_000, 10);
        ("fan", synth_fan 100_000, 5);
        ("grid", synth_grid 32 32, 100);
        ("grid", synth_grid 100 100, 10);
        ("grid", synth_grid 100 1000, 5);
      ]
  in
  Printf.printf "%-6s %8s %6s %9s %10s %14s %12s %14s %9s\n" "graph" "actors"
    "iter" "events" "wall ms" "events/sec" "heap words" "compiled e/s"
    "cmp/int";
  let runs =
    List.map
      (fun (graph_name, g, iterations) ->
        let r = e17_run_one ~graph_name ~iterations g in
        Printf.printf "%-6s %8d %6d %9d %10.1f %14.0f %12d %14.0f %8.2fx\n%!"
          r.graph_name r.actors r.iterations r.events r.wall_ms
          r.events_per_sec r.peak_heap_words r.compiled_events_per_sec
          r.compiled_vs_interpreted;
        r)
      configs
  in
  let chain_1e3 =
    List.find_opt (fun r -> r.graph_name = "chain" && r.actors = 1000) runs
  in
  let speedup =
    match chain_1e3 with
    | Some r when e17_baseline_chain_1e3_events_per_sec > 0.0 ->
        r.events_per_sec /. e17_baseline_chain_1e3_events_per_sec
    | _ -> 0.0
  in
  (match chain_1e3 with
  | Some r when e17_baseline_chain_1e3_events_per_sec > 0.0 ->
      Printf.printf "chain-1e3 speedup vs seed engine baseline: %.1fx\n"
        (r.events_per_sec /. e17_baseline_chain_1e3_events_per_sec)
  | _ -> ());
  let out =
    match Sys.getenv_opt "TPDF_BENCH_OUT" with
    | Some p -> p
    | None -> "BENCH_engine.json"
  in
  let oc = open_out out in
  let fp fmt = Printf.fprintf oc fmt in
  fp "{\n";
  fp "  \"experiment\": \"E17\",\n";
  fp "  \"smoke\": %b,\n" smoke;
  fp_metadata oc;
  fp "  \"baseline\": {\n";
  fp "    \"engine\": \"seed (pre-compiled-tables, sorted-list Eq, global rescan)\",\n";
  fp "    \"graph\": \"chain\",\n";
  fp "    \"actors\": 1000,\n";
  fp "    \"events_per_sec\": %.0f\n" e17_baseline_chain_1e3_events_per_sec;
  fp "  },\n";
  fp "  \"speedup_chain_1e3_vs_baseline\": %.2f,\n" speedup;
  fp "  \"runs\": [\n";
  List.iteri
    (fun i r ->
      fp
        "    { \"graph\": %S, \"actors\": %d, \"iterations\": %d, \"events\": \
         %d, \"wall_ms\": %.3f, \"events_per_sec\": %.1f, \
         \"peak_heap_words\": %d, \"compiled_wall_ms\": %.3f, \
         \"compiled_events_per_sec\": %.1f, \"compiled_vs_interpreted\": \
         %.2f }%s\n"
        r.graph_name r.actors r.iterations r.events r.wall_ms r.events_per_sec
        r.peak_heap_words r.compiled_wall_ms r.compiled_events_per_sec
        r.compiled_vs_interpreted
        (if i = List.length runs - 1 then "" else ","))
    runs;
  fp "  ]\n";
  fp "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" out

(* ------------------------------------------------------------------ *)
(* E18: multicore scaling — domain sweep over kernels and engine       *)
(* ------------------------------------------------------------------ *)

module Pool = Tpdf_par.Pool

type e18_edge_run = {
  detector : string;
  side : int;
  e_domains : int;
  e_wall_ms : float;
  mpix_per_sec : float;
}

type e18_engine_run = {
  g_name : string;
  g_actors : int;
  g_domains : int;
  g_events : int;
  g_wall_ms : float;
  g_events_per_sec : float;
}

let e18_time f =
  let t0 = Tpdf_obs.Obs.now_wall_ms () in
  f ();
  Tpdf_obs.Obs.now_wall_ms () -. t0

let e18_par () =
  section "E18" "Multicore scaling: domain sweep over kernels and engine";
  let smoke = bench_smoke in
  let cores = Pool.recommended () in
  let domain_counts = if smoke then [ 1; 2 ] else [ 1; 2; 4; 8 ] in
  Printf.printf "cores detected: %d; sweeping domains in {%s}\n" cores
    (String.concat "," (List.map string_of_int domain_counts));
  (* -- data-parallel kernels: edge detection ----------------------- *)
  let sides = if smoke then [ 256 ] else [ 1024; 2048 ] in
  let detectors = [ Edge.Prewitt; Edge.Canny ] in
  Printf.printf "%-10s %6s %8s %10s %12s %9s\n" "detector" "side" "domains"
    "wall ms" "Mpixel/s" "speedup";
  let edge_runs =
    List.concat_map
      (fun side ->
        let img = Synthetic.scene ~seed:42 ~width:side ~height:side () in
        List.concat_map
          (fun d ->
            let base = ref nan in
            List.map
              (fun domains ->
                let pool = Pool.create ~domains in
                let wall =
                  Fun.protect
                    ~finally:(fun () -> Pool.shutdown pool)
                    (fun () ->
                      e18_time (fun () -> ignore (Edge.run ~pool d img)))
                in
                if domains = 1 then base := wall;
                let mpix =
                  float_of_int (side * side) /. 1.0e6 /. (wall /. 1000.0)
                in
                Printf.printf "%-10s %6d %8d %10.1f %12.2f %8.2fx\n%!"
                  (Edge.name d) side domains wall mpix (!base /. wall);
                {
                  detector = Edge.name d;
                  side;
                  e_domains = domains;
                  e_wall_ms = wall;
                  mpix_per_sec = mpix;
                })
              domain_counts)
          detectors)
      sides
  in
  (* -- engine: parallel ready-set firing on the E17 graphs ---------- *)
  (* The fan graph has the widest same-instant ready sets, so it is the
     topology where parallel firing can pay; the chain bounds the
     orchestration overhead (ready sets of one actor). *)
  let configs =
    if smoke then
      [ ("chain", synth_chain 100, 20); ("fan", synth_fan 100, 20) ]
    else
      [
        ("chain", synth_chain 1000, 100);
        ("fan", synth_fan 1000, 100);
        ("grid", synth_grid 32 32, 100);
      ]
  in
  Printf.printf "%-6s %8s %8s %9s %10s %14s %9s\n" "graph" "actors" "domains"
    "events" "wall ms" "events/sec" "speedup";
  let engine_runs =
    List.concat_map
      (fun (g_name, g, iterations) ->
        let actors = List.length (Graph.actors g) in
        let base = ref nan in
        List.map
          (fun domains ->
            let pool = Pool.create ~domains in
            Fun.protect
              ~finally:(fun () -> Pool.shutdown pool)
              (fun () ->
                let eng =
                  Engine.create ~graph:g ~valuation:Valuation.empty
                    ~pool ~default:0 ()
                in
                let events = ref 0 in
                let wall =
                  e18_time (fun () ->
                      let stats =
                        Engine.run ~iterations ~max_events:10_000_000 eng
                      in
                      events :=
                        List.fold_left
                          (fun acc (_, n) -> acc + n)
                          0 stats.Engine.firings)
                in
                if domains = 1 then base := wall;
                let eps =
                  if wall <= 0.0 then 0.0
                  else 1000.0 *. float_of_int !events /. wall
                in
                Printf.printf "%-6s %8d %8d %9d %10.1f %14.0f %8.2fx\n%!"
                  g_name actors domains !events wall eps (!base /. wall);
                {
                  g_name;
                  g_actors = actors;
                  g_domains = domains;
                  g_events = !events;
                  g_wall_ms = wall;
                  g_events_per_sec = eps;
                }))
          domain_counts)
      configs
  in
  (* -- BENCH_par.json ---------------------------------------------- *)
  let out =
    match Sys.getenv_opt "TPDF_BENCH_PAR_OUT" with
    | Some p -> p
    | None -> "BENCH_par.json"
  in
  let speedup_of ~wall_1 wall = if wall > 0.0 then wall_1 /. wall else 0.0 in
  let oc = open_out out in
  let fp fmt = Printf.fprintf oc fmt in
  fp "{\n";
  fp "  \"experiment\": \"E18\",\n";
  fp "  \"smoke\": %b,\n" smoke;
  fp_metadata oc;
  fp "  \"domain_sweep\": [%s],\n"
    (String.concat ", " (List.map string_of_int domain_counts));
  fp "  \"note\": %S,\n"
    (if cores < 4 then
       Printf.sprintf
         "machine exposes %d core(s): pool domains beyond that time-share \
          one core, so speedup is bounded near 1.0x regardless of domain \
          count; the determinism contract (bit-identical results at any \
          domain count) is what these runs certify here. See EXPERIMENTS.md \
          E18."
         cores
     else
       "speedup is wall_ms at 1 domain divided by wall_ms at d domains, \
        same workload");
  fp "  \"edge\": [\n";
  List.iteri
    (fun i r ->
      let wall_1 =
        (List.find
           (fun r' ->
             r'.detector = r.detector && r'.side = r.side && r'.e_domains = 1)
           edge_runs)
          .e_wall_ms
      in
      fp
        "    { \"detector\": %S, \"side\": %d, \"domains\": %d, \"wall_ms\": \
         %.3f, \"mpix_per_sec\": %.3f, \"speedup_vs_1\": %.3f }%s\n"
        r.detector r.side r.e_domains r.e_wall_ms r.mpix_per_sec
        (speedup_of ~wall_1 r.e_wall_ms)
        (if i = List.length edge_runs - 1 then "" else ","))
    edge_runs;
  fp "  ],\n";
  fp "  \"engine\": [\n";
  List.iteri
    (fun i r ->
      let wall_1 =
        (List.find
           (fun r' -> r'.g_name = r.g_name && r'.g_domains = 1)
           engine_runs)
          .g_wall_ms
      in
      fp
        "    { \"graph\": %S, \"actors\": %d, \"domains\": %d, \"events\": \
         %d, \"wall_ms\": %.3f, \"events_per_sec\": %.1f, \"speedup_vs_1\": \
         %.3f }%s\n"
        r.g_name r.g_actors r.g_domains r.g_events r.g_wall_ms
        r.g_events_per_sec
        (speedup_of ~wall_1 r.g_wall_ms)
        (if i = List.length engine_runs - 1 then "" else ","))
    engine_runs;
  fp "  ]\n";
  fp "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" out

(* ------------------------------------------------------------------ *)
(* E19: checkpoint overhead — period sweep over snapshot + persist     *)
(* ------------------------------------------------------------------ *)

module Ckpt = Tpdf_ckpt.Ckpt

type e19_run = {
  c_graph : string;
  c_period : int; (* 0 = checkpointing off *)
  c_events : int;
  c_wall_ms : float;
  c_events_per_sec : float;
  c_checkpoints : int;
  c_snapshot_bytes : int; (* serialized size of the final checkpoint *)
  c_restore_ms : float; (* read + verify + Engine.restore of that file *)
}

let e19_ckpt () =
  section "E19" "Checkpoint overhead: period sweep (off, 1, 10, 100)";
  let smoke = bench_smoke in
  let iterations = if smoke then 20 else 100 in
  let configs =
    if smoke then [ ("chain", synth_chain 100); ("fan", synth_fan 100) ]
    else [ ("chain", synth_chain 1000); ("fan", synth_fan 1000) ]
  in
  let periods = [ 0; 1; 10; 100 ] in
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tpdf-e19-%d" (Unix.getpid ()))
  in
  let cleanup () =
    if Sys.file_exists dir then begin
      Array.iter
        (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ()
    end
  in
  Printf.printf "%-6s %8s %9s %10s %14s %6s %9s %11s %11s\n" "graph" "period"
    "events" "wall ms" "events/sec" "ckpts" "bytes" "restore ms" "overhead";
  let make_file g v eng =
    {
      Ckpt.kind = "run";
      meta = [ ("experiment", "E19") ];
      graph_src = Serial.to_string g;
      valuation = Valuation.bindings v;
      snapshot = Some (Engine.snapshot ~encode:string_of_int eng);
    }
  in
  let runs =
    List.concat_map
      (fun (c_graph, g) ->
        let v = Valuation.empty in
        let base = ref nan in
        List.map
          (fun c_period ->
            cleanup ();
            let store = Ckpt.Store.open_dir dir in
            let eng = Engine.create ~graph:g ~valuation:v ~default:0 () in
            let events = ref 0 in
            let ckpts = ref 0 in
            let run_to target =
              match
                Engine.run_outcome ~iterations:target ~max_events:10_000_000
                  eng
              with
              | Engine.Completed stats ->
                  events :=
                    List.fold_left (fun a (_, n) -> a + n) 0 stats.Engine.firings
              | _ -> failwith "E19 workload did not complete"
            in
            let wall =
              e18_time (fun () ->
                  if c_period = 0 then run_to iterations
                  else begin
                    let i = ref 0 in
                    while !i < iterations do
                      i := min iterations (!i + c_period);
                      run_to !i;
                      ignore
                        (Ckpt.Store.save store ~seq:!i (make_file g v eng));
                      incr ckpts
                    done
                  end)
            in
            if c_period = 0 then base := wall;
            (* final checkpoint: size on disk and restore latency *)
            let final = Ckpt.to_string (make_file g v eng) in
            let c_snapshot_bytes = String.length final in
            let path = Ckpt.Store.save store ~seq:(iterations + 1) (make_file g v eng) in
            let t0 = Tpdf_obs.Obs.now_wall_ms () in
            let c_restore_ms =
              match Ckpt.read path with
              | Error m -> failwith ("E19 restore: " ^ m)
              | Ok f -> (
                  match Serial.of_string f.Ckpt.graph_src with
                  | Error m -> failwith ("E19 graph re-parse: " ^ m)
                  | Ok g' ->
                      ignore
                        (Engine.restore ~graph:g'
                           ~valuation:(Valuation.of_list f.Ckpt.valuation)
                           ~default:0 ~decode:int_of_string
                           (Option.get f.Ckpt.snapshot));
                      Tpdf_obs.Obs.now_wall_ms () -. t0)
            in
            let eps =
              if wall <= 0.0 then 0.0
              else 1000.0 *. float_of_int !events /. wall
            in
            Printf.printf "%-6s %8s %9d %10.1f %14.0f %6d %9d %11.2f %10.2fx\n%!"
              c_graph
              (if c_period = 0 then "off" else string_of_int c_period)
              !events wall eps !ckpts c_snapshot_bytes c_restore_ms
              (wall /. !base);
            {
              c_graph;
              c_period;
              c_events = !events;
              c_wall_ms = wall;
              c_events_per_sec = eps;
              c_checkpoints = !ckpts;
              c_snapshot_bytes;
              c_restore_ms;
            })
          periods)
      configs
  in
  cleanup ();
  let out =
    match Sys.getenv_opt "TPDF_BENCH_CKPT_OUT" with
    | Some p -> p
    | None -> "BENCH_ckpt.json"
  in
  let oc = open_out out in
  let fp fmt = Printf.fprintf oc fmt in
  fp "{\n";
  fp "  \"experiment\": \"E19\",\n";
  fp "  \"smoke\": %b,\n" smoke;
  fp_metadata oc;
  fp "  \"iterations\": %d,\n" iterations;
  fp "  \"periods\": [%s],\n"
    (String.concat ", " (List.map string_of_int periods));
  fp "  \"note\": %S,\n"
    "period 0 is checkpointing off; overhead_vs_off is wall_ms divided by \
     the same graph's period-off wall_ms.  Checkpoints are full crash-\
     consistent writes (temp + fsync + rename) of graph source, valuation \
     and engine snapshot.  Chunked driving at small periods also imposes \
     iteration barriers, so the overhead includes lost source run-ahead, \
     not just serialization.";
  fp "  \"runs\": [\n";
  List.iteri
    (fun i r ->
      let wall_off =
        (List.find (fun r' -> r'.c_graph = r.c_graph && r'.c_period = 0) runs)
          .c_wall_ms
      in
      fp
        "    { \"graph\": %S, \"period\": %d, \"events\": %d, \"wall_ms\": \
         %.3f, \"events_per_sec\": %.1f, \"checkpoints\": %d, \
         \"snapshot_bytes\": %d, \"restore_ms\": %.3f, \"overhead_vs_off\": \
         %.3f }%s\n"
        r.c_graph r.c_period r.c_events r.c_wall_ms r.c_events_per_sec
        r.c_checkpoints r.c_snapshot_bytes r.c_restore_ms
        (if wall_off > 0.0 then r.c_wall_ms /. wall_off else 0.0)
        (if i = List.length runs - 1 then "" else ","))
    runs;
  fp "  ]\n";
  fp "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" out

(* ------------------------------------------------------------------ *)
(* E20: telemetry overhead — collector off vs sampled vs full          *)
(* ------------------------------------------------------------------ *)

module Ring = Tpdf_obs.Ring

type e20_run = {
  t_graph : string;
  t_actors : int;
  t_iterations : int;
  t_mode : string; (* "off" | "sampled" | "full" *)
  t_events : int; (* completed firings *)
  t_wall_ms : float; (* best of the repetitions *)
  t_events_per_sec : float;
  t_obs_seen : int; (* events offered to the collector / ring *)
  t_ring_retained : int; (* 0 when no ring is attached *)
}

let e20_sampling = Tpdf_obs.Obs.default_sampling
let e20_ring_capacity = 8192

(* One engine run under the given telemetry mode, repeated [reps] times
   on fresh engines; wall is the best repetition (the others absorb
   warmup noise — the acceptance gate is a 5% ratio, well inside
   run-to-run jitter of a single cold run). *)
let e20_run_one ~reps ~t_graph ~t_mode ?(span_every = e20_sampling.span_every)
    ~iterations g =
  let t_actors = List.length (Graph.actors g) in
  let best = ref infinity in
  let events = ref 0 and seen = ref 0 and retained = ref 0 in
  for _ = 1 to reps do
    let obs, ring =
      match t_mode with
      | "off" -> (Tpdf_obs.Obs.disabled, None)
      | "sampled" ->
          let o =
            Tpdf_obs.Obs.create ~keep_events:false
              ~sampling:{ e20_sampling with span_every }
              ()
          in
          let r =
            Ring.attach
              ~config:
                { Ring.default_config with capacity = e20_ring_capacity }
              o
          in
          (o, Some r)
      | _ -> (Tpdf_obs.Obs.create (), None)
    in
    let eng =
      Engine.create ~graph:g ~valuation:Valuation.empty ~obs ~default:0 ()
    in
    let stats = ref None in
    (* Collect the previous repetition's garbage outside the timed
       section, so mode A's allocation debt is not billed to mode B. *)
    Gc.full_major ();
    let wall =
      e18_time (fun () ->
          stats := Some (Engine.run ~iterations ~max_events:30_000_000 eng))
    in
    let s = Option.get !stats in
    events := List.fold_left (fun a (_, n) -> a + n) 0 s.Engine.firings;
    (match ring with
    | Some r ->
        seen := Ring.seen r;
        retained := Ring.retained r
    | None -> seen := Tpdf_obs.Obs.event_count obs);
    if wall < !best then best := wall
  done;
  {
    t_graph;
    t_actors;
    t_iterations = iterations;
    t_mode;
    t_events = !events;
    t_wall_ms = !best;
    t_events_per_sec =
      (if !best <= 0.0 then 0.0
       else 1000.0 *. float_of_int !events /. !best);
    t_obs_seen = !seen;
    t_ring_retained = !retained;
  }

let e20_obs () =
  section "E20" "Telemetry overhead: collector off vs sampled vs full";
  let smoke = bench_smoke in
  let reps = if smoke then 2 else 3 in
  let configs =
    if smoke then
      [ ("chain", synth_chain 100, 20); ("fan", synth_fan 100, 20) ]
    else
      [
        ("chain", synth_chain 1000, 100);
        ("fan", synth_fan 1000, 100);
        ("grid", synth_grid 32 32, 100);
      ]
  in
  let modes = [ "off"; "sampled"; "full" ] in
  Printf.printf "%-6s %8s %9s %9s %10s %14s %10s %9s %9s\n" "graph" "actors"
    "mode" "events" "wall ms" "events/sec" "obs seen" "ring" "overhead";
  let runs =
    List.concat_map
      (fun (t_graph, g, iterations) ->
        let wall_off = ref nan in
        List.map
          (fun t_mode ->
            let r = e20_run_one ~reps ~t_graph ~t_mode ~iterations g in
            if t_mode = "off" then wall_off := r.t_wall_ms;
            Printf.printf
              "%-6s %8d %9s %9d %10.1f %14.0f %10d %9d %8.2fx\n%!" r.t_graph
              r.t_actors r.t_mode r.t_events r.t_wall_ms r.t_events_per_sec
              r.t_obs_seen r.t_ring_retained
              (if !wall_off > 0.0 then r.t_wall_ms /. !wall_off else 0.0);
            r)
          modes)
      configs
  in
  (* Flight-recorder bounded-memory certificate: a run whose unsampled
     span stream (span_every = 1) far exceeds the ring capacity must
     retain exactly [capacity] events, evicting the rest. *)
  let b_graph, b_g, b_iters =
    if smoke then ("chain", synth_chain 100, 100)
    else ("chain", synth_chain 1000, 1000)
  in
  let bounded =
    e20_run_one ~reps:1 ~t_graph:b_graph ~t_mode:"sampled" ~span_every:1
      ~iterations:b_iters b_g
  in
  let bounded_ok =
    bounded.t_ring_retained <= e20_ring_capacity
    && bounded.t_obs_seen > e20_ring_capacity
  in
  Printf.printf
    "bounded: %s %d actors, %d events offered, ring retained %d/%d -> %s\n"
    bounded.t_graph bounded.t_actors bounded.t_obs_seen
    bounded.t_ring_retained e20_ring_capacity
    (if bounded_ok then "ok" else "FAILED");
  let overhead_of mode =
    (* worst overhead across graphs for [mode] *)
    List.fold_left
      (fun acc r ->
        if r.t_mode <> mode then acc
        else
          let off =
            (List.find
               (fun r' -> r'.t_graph = r.t_graph && r'.t_mode = "off")
               runs)
              .t_wall_ms
          in
          if off > 0.0 then Float.max acc (r.t_wall_ms /. off) else acc)
      0.0 runs
  in
  let out =
    match Sys.getenv_opt "TPDF_BENCH_OBS_OUT" with
    | Some p -> p
    | None -> "BENCH_obs.json"
  in
  let oc = open_out out in
  let fp fmt = Printf.fprintf oc fmt in
  fp "{\n";
  fp "  \"experiment\": \"E20\",\n";
  fp "  \"smoke\": %b,\n" smoke;
  fp_metadata oc;
  fp "  \"sampling\": { \"span_every\": %d, \"ring_capacity\": %d },\n"
    e20_sampling.Tpdf_obs.Obs.span_every e20_ring_capacity;
  fp "  \"note\": %S,\n"
    "overhead_vs_off is wall_ms divided by the same graph's collector-off \
     wall_ms (best of the repetitions each).  'sampled' is the production \
     configuration: metrics always on, one in span_every firing spans into \
     a bounded flight-recorder ring, no unbounded event list.  'full' is the \
     diagnostic full-capture collector.  The bounded block runs an \
     unsampled span stream through the ring to certify eviction.";
  fp "  \"worst_overhead_sampled\": %.3f,\n" (overhead_of "sampled");
  fp "  \"worst_overhead_full\": %.3f,\n" (overhead_of "full");
  fp "  \"runs\": [\n";
  List.iteri
    (fun i r ->
      let off =
        (List.find
           (fun r' -> r'.t_graph = r.t_graph && r'.t_mode = "off")
           runs)
          .t_wall_ms
      in
      fp
        "    { \"graph\": %S, \"actors\": %d, \"iterations\": %d, \"mode\": \
         %S, \"events\": %d, \"wall_ms\": %.3f, \"events_per_sec\": %.1f, \
         \"obs_events_seen\": %d, \"ring_retained\": %d, \
         \"overhead_vs_off\": %.3f }%s\n"
        r.t_graph r.t_actors r.t_iterations r.t_mode r.t_events r.t_wall_ms
        r.t_events_per_sec r.t_obs_seen r.t_ring_retained
        (if off > 0.0 then r.t_wall_ms /. off else 0.0)
        (if i = List.length runs - 1 then "" else ","))
    runs;
  fp "  ],\n";
  fp "  \"bounded\": { \"graph\": %S, \"actors\": %d, \"events_offered\": \
      %d, \"ring_capacity\": %d, \"ring_retained\": %d, \"ok\": %b }\n"
    bounded.t_graph bounded.t_actors bounded.t_obs_seen e20_ring_capacity
    bounded.t_ring_retained bounded_ok;
  fp "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" out

(* ------------------------------------------------------------------ *)
(* E21: symbolic kernel — hash-consed algebra vs the frozen legacy     *)
(* ------------------------------------------------------------------ *)

(* Two workloads, both seeded and deterministic:

   - "chain-rand" (kind=solve): a chain of single-phase actors whose rates
     are random parameter monomials.  The raw repetition vector accumulates
     polynomial denominators with many distinct parameter monomials — the
     workload where the pre-rewrite normalize loop (multiply everything by
     the first surviving denominator, rescan) is quadratic in the actor
     count.  Solved both by the current kernel (Csdf.Repetition.solve) and
     by a faithful port of the pre-rewrite pipeline over the frozen
     Tpdf_param.Legacy modules; outputs are asserted identical and the
     speedup column is gated in CI on the 100-parameter row.

   - "blocks" (kind=rate_safety): Fig. 2 control blocks chained back to
     back, one parameter per block, driving Analysis.repetition +
     Analysis.rate_safety end to end on ~1000 actors with ~100 parameters
     (degree-~170 monomials in the repetition vector). *)

module Legacy = Tpdf_param.Legacy
module Q = Tpdf_util.Q

let e21_pname i = Printf.sprintf "p%02d" i
let e21_aname i = Printf.sprintf "K%04d" i

(* A random monomial rate over [params] parameters: 1-2 distinct factors,
   exponents 1-2, coefficient 1 (integer coefficients would telescope into
   2^actors numeric content on a 1000-edge chain and overflow native
   ints — for both kernels). *)
let e21_rand_spec prng ~params =
  let nfac = 1 + Tpdf_util.Prng.int prng 2 in
  let rec pick acc k =
    if k = 0 then acc
    else
      let p = Tpdf_util.Prng.int prng params in
      if List.mem_assoc p acc then pick acc k
      else pick ((p, 1 + Tpdf_util.Prng.int prng 2) :: acc) (k - 1)
  in
  pick [] nfac

let e21_poly_of_spec spec =
  Poly.monomial Q.one
    (Monomial.of_list (List.map (fun (i, e) -> (e21_pname i, e)) spec))

let e21_lpoly_of_spec spec =
  Legacy.Poly.monomial Q.one
    (Legacy.Monomial.of_list (List.map (fun (i, e) -> (e21_pname i, e)) spec))

let e21_chain_specs ~params ~actors =
  let prng = Tpdf_util.Prng.create (210_000 + (params * 1000) + actors) in
  Array.init (actors - 1) (fun _ ->
      (e21_rand_spec prng ~params, e21_rand_spec prng ~params))

let e21_chain_graph ~actors specs =
  let g = Csdf.Graph.create () in
  for i = 0 to actors - 1 do
    Csdf.Graph.add_actor g (e21_aname i) ~phases:1
  done;
  Array.iteri
    (fun i (ps, cs) ->
      ignore
        (Csdf.Graph.add_channel g ~src:(e21_aname i) ~dst:(e21_aname (i + 1))
           ~prod:[| e21_poly_of_spec ps |]
           ~cons:[| e21_poly_of_spec cs |]
           ()))
    specs;
  g

(* The pre-rewrite solve pipeline (propagate, verify, normalize with the
   first-fractional clearing loop), ported verbatim onto the frozen legacy
   kernel.  The chain is its own spanning tree, so BFS propagation from the
   first actor is just the left-to-right product. *)
let e21_legacy_chain_solve specs =
  let n = Array.length specs + 1 in
  let r = Array.make n Legacy.Frac.one in
  for i = 0 to n - 2 do
    let prod, cons = specs.(i) in
    r.(i + 1) <- Legacy.Frac.mul r.(i) (Legacy.Frac.make prod cons)
  done;
  Array.iteri
    (fun i (prod, cons) ->
      let lhs = Legacy.Frac.mul r.(i) (Legacy.Frac.of_poly prod)
      and rhs = Legacy.Frac.mul r.(i + 1) (Legacy.Frac.of_poly cons) in
      if not (Legacy.Frac.equal lhs rhs) then
        failwith "E21: legacy chain verify failed")
    specs;
  let entries = ref (Array.to_list r) in
  let fractional () =
    List.find_opt
      (fun f -> not (Legacy.Poly.equal (Legacy.Frac.den f) Legacy.Poly.one))
      !entries
  in
  let rec clear () =
    match fractional () with
    | None -> ()
    | Some f ->
        let d = Legacy.Frac.of_poly (Legacy.Frac.den f) in
        entries := List.map (fun x -> Legacy.Frac.mul x d) !entries;
        clear ()
  in
  clear ();
  let polys =
    List.map
      (fun f ->
        match Legacy.Frac.to_poly f with Some p -> p | None -> assert false)
      !entries
  in
  let content =
    List.fold_left
      (fun acc p -> Q.gcd acc (Legacy.Poly.content p))
      Q.zero polys
  in
  let polys =
    if Q.is_zero content then polys
    else List.map (fun p -> Legacy.Poly.scale (Q.inv content) p) polys
  in
  let common =
    List.fold_left (fun acc p -> Legacy.Poly.gcd acc p) Legacy.Poly.zero polys
  in
  let polys =
    if Legacy.Poly.is_zero common || Legacy.Poly.equal common Legacy.Poly.one
    then polys
    else
      List.map
        (fun p ->
          match Legacy.Poly.divide p common with
          | Some q -> q
          | None -> assert false)
        polys
  in
  match polys with
  | p :: _
    when (not (Legacy.Poly.is_zero p))
         && Q.sign (snd (Legacy.Poly.leading p)) < 0 ->
      List.map Legacy.Poly.neg polys
  | _ -> polys

(* Fig. 2 control blocks chained F(b) -> A(b+1); block b is parameterized
   by p(b mod params). *)
let e21_blocks_graph ~params ~blocks =
  let g = Graph.create () in
  let r = Csdf.Graph.rates and c = Csdf.Graph.const_rates in
  for b = 0 to blocks - 1 do
    let n s = Printf.sprintf "%s%04d" s b in
    let p = e21_pname (b mod params) in
    Graph.add_kernel g (n "A");
    Graph.add_kernel g (n "B");
    Graph.add_control g (n "C");
    Graph.add_kernel g (n "D");
    Graph.add_kernel g (n "E");
    Graph.add_kernel g ~phases:2 ~kind:Graph.Transaction (n "F");
    ignore
      (Graph.add_channel g ~src:(n "A") ~dst:(n "B") ~prod:(r [ p ])
         ~cons:(c [ 1 ]) ());
    ignore
      (Graph.add_channel g ~src:(n "B") ~dst:(n "C") ~prod:(c [ 1 ])
         ~cons:(c [ 2 ]) ());
    ignore
      (Graph.add_channel g ~src:(n "B") ~dst:(n "D") ~prod:(c [ 1 ])
         ~cons:(c [ 2 ]) ());
    ignore
      (Graph.add_channel g ~src:(n "B") ~dst:(n "E") ~prod:(c [ 1 ])
         ~cons:(c [ 1 ]) ());
    ignore
      (Graph.add_control_channel g ~src:(n "C") ~dst:(n "F") ~prod:(c [ 2 ])
         ~cons:(c [ 1; 1 ]) ());
    let e6 =
      Graph.add_channel g ~src:(n "D") ~dst:(n "F") ~prod:(c [ 2 ])
        ~cons:(c [ 1; 1 ]) ~priority:1 ()
    in
    let e7 =
      Graph.add_channel g ~src:(n "E") ~dst:(n "F") ~prod:(c [ 1 ])
        ~cons:(c [ 0; 2 ]) ~priority:2 ()
    in
    Graph.set_modes g (n "F")
      [
        Mode.make ~inputs:(Mode.Input_subset [ e6 ]) "take_e6";
        Mode.make ~inputs:(Mode.Input_subset [ e7 ]) "take_e7";
      ];
    if b > 0 then
      ignore
        (Graph.add_channel g
           ~src:(Printf.sprintf "F%04d" (b - 1))
           ~dst:(n "A") ~prod:(c [ 1; 1 ]) ~cons:(c [ 1 ]) ())
  done;
  g

let e21_time_best reps f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to reps do
    let t0 = Tpdf_obs.Obs.now_wall_ms () in
    let r = f () in
    let dt = Tpdf_obs.Obs.now_wall_ms () -. t0 in
    if dt < !best then best := dt;
    result := Some r
  done;
  (Option.get !result, !best)

type e21_row = {
  p_kind : string;
  p_graph : string;
  p_params : int;
  p_actors : int;
  p_new_ms : float;
  p_memo_off_ms : float;
  p_legacy_ms : float; (* nan when not measured *)
  p_speedup : float; (* nan when not measured *)
  p_outputs_match : bool option;
}

let e21_solve_row ~params ~actors ~legacy_reps ~new_reps =
  let specs = e21_chain_specs ~params ~actors in
  let g = e21_chain_graph ~actors specs in
  let lspecs =
    Array.map
      (fun (ps, cs) -> (e21_lpoly_of_spec ps, e21_lpoly_of_spec cs))
      specs
  in
  let sv, new_ms = e21_time_best new_reps (fun () -> Csdf.Repetition.solve g) in
  let svo, memo_off_ms =
    Memo.set_enabled false;
    Fun.protect
      ~finally:(fun () -> Memo.set_enabled true)
      (fun () -> e21_time_best new_reps (fun () -> Csdf.Repetition.solve g))
  in
  let lv, legacy_ms =
    e21_time_best legacy_reps (fun () -> e21_legacy_chain_solve lspecs)
  in
  let outputs_match =
    List.length sv.Csdf.Repetition.r = List.length lv
    && List.for_all2
         (fun (_, p) lp ->
           String.equal (Poly.to_string p) (Legacy.Poly.to_string lp))
         sv.Csdf.Repetition.r lv
    && List.for_all2
         (fun (_, p) (_, p') -> Poly.equal p p')
         sv.Csdf.Repetition.r svo.Csdf.Repetition.r
  in
  {
    p_kind = "solve";
    p_graph = "chain-rand";
    p_params = params;
    p_actors = actors;
    p_new_ms = new_ms;
    p_memo_off_ms = memo_off_ms;
    p_legacy_ms = legacy_ms;
    p_speedup = legacy_ms /. new_ms;
    p_outputs_match = Some outputs_match;
  }

let e21_rate_safety_row ~params ~blocks ~reps =
  let g = e21_blocks_graph ~params ~blocks in
  let actors = List.length (Graph.actors g) in
  let ok, new_ms =
    e21_time_best reps (fun () ->
        ignore (Analysis.repetition g);
        Analysis.rate_safety g)
  in
  (match ok with
  | Ok () -> ()
  | Error _ -> failwith "E21: blocks graph unexpectedly rate-unsafe");
  let oko, memo_off_ms =
    Memo.set_enabled false;
    Fun.protect
      ~finally:(fun () -> Memo.set_enabled true)
      (fun () ->
        e21_time_best reps (fun () ->
            ignore (Analysis.repetition g);
            Analysis.rate_safety g))
  in
  (match oko with
  | Ok () -> ()
  | Error _ -> failwith "E21: blocks graph rate-unsafe with memo off");
  {
    p_kind = "rate_safety";
    p_graph = "blocks";
    p_params = params;
    p_actors = actors;
    p_new_ms = new_ms;
    p_memo_off_ms = memo_off_ms;
    p_legacy_ms = nan;
    p_speedup = nan;
    p_outputs_match = None;
  }

let e21_param () =
  section "E21" "Symbolic kernel: hash-consed algebra vs pre-rewrite baseline";
  let smoke = bench_smoke in
  let rows =
    if smoke then
      [
        e21_solve_row ~params:5 ~actors:50 ~legacy_reps:2 ~new_reps:3;
        e21_solve_row ~params:10 ~actors:100 ~legacy_reps:2 ~new_reps:3;
        e21_rate_safety_row ~params:10 ~blocks:10 ~reps:2;
      ]
    else
      [
        e21_solve_row ~params:10 ~actors:100 ~legacy_reps:3 ~new_reps:5;
        e21_solve_row ~params:30 ~actors:300 ~legacy_reps:2 ~new_reps:5;
        e21_solve_row ~params:100 ~actors:1000 ~legacy_reps:1 ~new_reps:5;
        e21_rate_safety_row ~params:10 ~blocks:17 ~reps:3;
        e21_rate_safety_row ~params:100 ~blocks:166 ~reps:2;
      ]
  in
  Printf.printf "%-12s %-10s %7s %7s %10s %13s %11s %9s %6s\n" "kind" "graph"
    "params" "actors" "new ms" "memo-off ms" "legacy ms" "speedup" "match";
  List.iter
    (fun r ->
      Printf.printf "%-12s %-10s %7d %7d %10.3f %13.3f %11s %9s %6s\n%!"
        r.p_kind r.p_graph r.p_params r.p_actors r.p_new_ms r.p_memo_off_ms
        (if Float.is_nan r.p_legacy_ms then "-"
         else Printf.sprintf "%.1f" r.p_legacy_ms)
        (if Float.is_nan r.p_speedup then "-"
         else Printf.sprintf "%.1fx" r.p_speedup)
        (match r.p_outputs_match with
        | None -> "-"
        | Some true -> "yes"
        | Some false -> "NO!"))
    rows;
  let gauges = Memo.gauges () in
  let gauge name =
    match List.assoc_opt name gauges with Some v -> v | None -> 0.0
  in
  Printf.printf
    "kernel caches: %.0f memo hits, %.0f misses; intern tables: %.0f \
     monomials, %.0f polys, %.0f fracs\n"
    (gauge "param.memo.hits") (gauge "param.memo.misses")
    (gauge "param.intern.monomials")
    (gauge "param.intern.polys") (gauge "param.intern.fracs");
  let out =
    match Sys.getenv_opt "TPDF_BENCH_PARAM_OUT" with
    | Some p -> p
    | None -> "BENCH_param.json"
  in
  let oc = open_out out in
  let fp fmt = Printf.fprintf oc fmt in
  fp "{\n";
  fp "  \"experiment\": \"E21\",\n";
  fp "  \"smoke\": %b,\n" smoke;
  fp_metadata oc;
  fp "  \"baseline\": {\n";
  fp
    "    \"kernel\": \"pre-rewrite assoc-list Monomial/Poly/Frac \
     (Tpdf_param.Legacy), first-fractional denominator clearing\"\n";
  fp "  },\n";
  fp "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      let opt_f v =
        if Float.is_nan v then "null" else Printf.sprintf "%.3f" v
      in
      fp
        "    { \"kind\": %S, \"graph\": %S, \"params\": %d, \"actors\": %d, \
         \"new_ms\": %.3f, \"new_memo_off_ms\": %.3f, \"legacy_ms\": %s, \
         \"speedup\": %s, \"outputs_match\": %s }%s\n"
        r.p_kind r.p_graph r.p_params r.p_actors r.p_new_ms r.p_memo_off_ms
        (opt_f r.p_legacy_ms) (opt_f r.p_speedup)
        (match r.p_outputs_match with
        | None -> "null"
        | Some b -> string_of_bool b)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  fp "  ],\n";
  fp "  \"gauges\": {\n";
  fp "    \"param_memo_hits\": %.0f,\n" (gauge "param.memo.hits");
  fp "    \"param_memo_misses\": %.0f,\n" (gauge "param.memo.misses");
  fp "    \"param_intern_monomials\": %.0f,\n" (gauge "param.intern.monomials");
  fp "    \"param_intern_polys\": %.0f,\n" (gauge "param.intern.polys");
  fp "    \"param_intern_fracs\": %.0f\n" (gauge "param.intern.fracs");
  fp "  }\n";
  fp "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" out;
  if
    List.exists
      (fun r -> r.p_outputs_match = Some false)
      rows
  then failwith "E21: rewritten kernel disagrees with the legacy baseline"

(* ------------------------------------------------------------------ *)
(* E22: serving — multi-tenant throughput, p95 latency, fault column   *)
(* ------------------------------------------------------------------ *)

module ServeD = Tpdf_serve.Daemon
module ServeJ = Tpdf_serve.Json

type e22_run = {
  s_label : string; (* "mem" | "persist" | "fault" *)
  s_tenants : int;
  s_requests : int;
  s_iterations : int; (* completed graph iterations, fleet-wide *)
  s_firings : int;
  s_wall_ms : float;
  s_quarantined : int;
  s_p50_ms : float;
  s_p95_ms : float; (* over every request *)
  s_healthy_p95_ms : float; (* over healthy tenants' advances only *)
}

let e22_percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.0
  | n -> sorted.(min (n - 1) (int_of_float (p *. float_of_int (n - 1))))

(* Drive the daemon core in-process: the socket pump adds no work per
   request beyond line I/O, so this measures the serving path itself
   (admission, supervised advance, checkpointing, metrics).  Requests
   are issued back-to-back with zero think time — the saturation load
   of an open-loop generator.  [faulty] adds one permanently failing
   tenant on top of the [tenants] healthy ones. *)
let e22_load ~s_label ~tenants ~rounds ~iters_per_advance ~faulty ?state_dir ()
    =
  let cfg =
    {
      ServeD.default_config with
      ServeD.state_dir;
      quarantine_skips = 1;
      checkpoint_every = 4;
    }
  in
  let d =
    match ServeD.create cfg with Ok d -> d | Error e -> failwith e
  in
  let fig1_src = Serial.to_string (Graph.of_csdf (Csdf.Examples.fig1 ())) in
  let fig2_src = Serial.to_string (Examples.fig2 ()).Examples.graph in
  let names = Array.init tenants (fun i -> Printf.sprintf "t%02d" i) in
  let lat_all = ref [] and lat_healthy = ref [] in
  let requests = ref 0 in
  let rpc ?(healthy = false) fields =
    let line = ServeJ.to_string (ServeJ.Obj fields) in
    let t0 = Tpdf_obs.Obs.now_wall_ms () in
    let resp = ServeD.handle_line d line in
    let dt = Tpdf_obs.Obs.now_wall_ms () -. t0 in
    incr requests;
    lat_all := dt :: !lat_all;
    if healthy then lat_healthy := dt :: !lat_healthy;
    resp
  in
  let submit ?faults ?params name src =
    ignore
      (rpc
         ([
            ("id", ServeJ.String ("s-" ^ name));
            ("op", ServeJ.String "submit");
            ("name", ServeJ.String name);
            ("graph", ServeJ.String src);
          ]
         @ (match params with
           | Some ps ->
               [
                 ( "params",
                   ServeJ.Obj
                     (List.map (fun (k, v) -> (k, ServeJ.Int v)) ps) );
               ]
           | None -> [])
         @
         match faults with
         | Some f -> [ ("faults", ServeJ.String f) ]
         | None -> []))
  in
  let advance ~healthy name =
    ignore
      (rpc ~healthy
         [
           ("id", ServeJ.String ("a-" ^ name));
           ("op", ServeJ.String "advance");
           ("name", ServeJ.String name);
           ("iterations", ServeJ.Int iters_per_advance);
         ])
  in
  let t0 = Tpdf_obs.Obs.now_wall_ms () in
  Array.iteri
    (fun i name ->
      if i mod 2 = 0 then submit name fig1_src
      else submit name fig2_src ~params:[ ("p", 1 + (i mod 3)) ])
    names;
  if faulty then
    submit "faulty" fig2_src ~params:[ ("p", 2) ] ~faults:"fail:*:1.0:1000";
  for _ = 1 to rounds do
    Array.iter (fun name -> advance ~healthy:true name) names;
    if faulty then advance ~healthy:false "faulty"
  done;
  let s_wall_ms = Tpdf_obs.Obs.now_wall_ms () -. t0 in
  let counters = Tpdf_obs.Metrics.counters (ServeD.metrics d) in
  let counter name =
    match List.assoc_opt name counters with Some n -> n | None -> 0
  in
  let sorted l =
    let a = Array.of_list l in
    Array.sort compare a;
    a
  in
  let all = sorted !lat_all and healthy_l = sorted !lat_healthy in
  {
    s_label;
    s_tenants = (tenants + if faulty then 1 else 0);
    s_requests = !requests;
    s_iterations = counter "serve.iterations";
    s_firings = counter "serve.firings";
    s_wall_ms;
    s_quarantined = counter "serve.quarantined";
    s_p50_ms = e22_percentile all 0.5;
    s_p95_ms = e22_percentile all 0.95;
    s_healthy_p95_ms = e22_percentile healthy_l 0.95;
  }

let e22_gate_p95_ratio = 2.0

let e22_serve () =
  section "E22" "Serving: multi-tenant throughput, p95 latency, fault column";
  let smoke = bench_smoke in
  let tenants = if smoke then 4 else 8 in
  let rounds = if smoke then 8 else 60 in
  let iters_per_advance = 2 in
  let with_state_dir f =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "tpdf_e22_%d" (Unix.getpid ()))
    in
    let rec rm_rf p =
      if Sys.file_exists p then
        if Sys.is_directory p then begin
          Array.iter (fun f -> rm_rf (Filename.concat p f)) (Sys.readdir p);
          Sys.rmdir p
        end
        else Sys.remove p
    in
    rm_rf dir;
    Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)
  in
  let runs =
    [
      e22_load ~s_label:"mem" ~tenants ~rounds ~iters_per_advance
        ~faulty:false ();
      with_state_dir (fun dir ->
          e22_load ~s_label:"persist" ~tenants ~rounds ~iters_per_advance
            ~faulty:false ~state_dir:dir ());
      e22_load ~s_label:"fault" ~tenants ~rounds ~iters_per_advance
        ~faulty:true ();
    ]
  in
  let base_healthy_p95 = (List.nth runs 0).s_healthy_p95_ms in
  let fault_healthy_p95 = (List.nth runs 2).s_healthy_p95_ms in
  let p95_ratio =
    if base_healthy_p95 > 0.0 then fault_healthy_p95 /. base_healthy_p95
    else 0.0
  in
  let isolation_ok = p95_ratio > 0.0 && p95_ratio <= e22_gate_p95_ratio in
  Printf.printf "%-8s %8s %9s %11s %11s %12s %9s %9s %12s\n" "mode" "tenants"
    "requests" "iterations" "firings" "firings/sec" "p50 ms" "p95 ms"
    "healthy p95";
  List.iter
    (fun r ->
      Printf.printf "%-8s %8d %9d %11d %11d %12.0f %9.3f %9.3f %12.3f\n"
        r.s_label r.s_tenants r.s_requests r.s_iterations r.s_firings
        (if r.s_wall_ms > 0.0 then
           1000.0 *. float_of_int r.s_firings /. r.s_wall_ms
         else 0.0)
        r.s_p50_ms r.s_p95_ms r.s_healthy_p95_ms)
    runs;
  Printf.printf
    "fault isolation: healthy p95 %.3f ms with faulter vs %.3f ms without \
     (%.2fx, gate %.1fx) -> %s\n"
    fault_healthy_p95 base_healthy_p95 p95_ratio e22_gate_p95_ratio
    (if isolation_ok then "ok" else "FAILED");
  let out =
    match Sys.getenv_opt "TPDF_BENCH_SERVE_OUT" with
    | Some p -> p
    | None -> "BENCH_serve.json"
  in
  let oc = open_out out in
  let fp fmt = Printf.fprintf oc fmt in
  fp "{\n";
  fp "  \"experiment\": \"E22\",\n";
  fp "  \"smoke\": %b,\n" smoke;
  fp_metadata oc;
  fp "  \"note\": %S,\n"
    "In-process saturation load over the daemon core (the socket pump adds \
     only line I/O): submit the fleet, then round-robin advance requests \
     with zero think time.  'mem' is the memory-only daemon, 'persist' \
     checkpoints every 4 iterations to a state directory, 'fault' adds one \
     permanently failing tenant (quarantined on its first advance) on top \
     of the healthy fleet.  healthy_p95_ms is the p95 over healthy \
     tenants' advance requests only; isolation_ok gates the ratio of that \
     p95 with and without the faulter.";
  fp "  \"iters_per_advance\": %d,\n" iters_per_advance;
  fp "  \"rounds\": %d,\n" rounds;
  fp "  \"gate_p95_ratio\": %.1f,\n" e22_gate_p95_ratio;
  fp "  \"healthy_p95_ratio\": %.3f,\n" p95_ratio;
  fp "  \"isolation_ok\": %b,\n" isolation_ok;
  fp "  \"runs\": [\n";
  List.iteri
    (fun i r ->
      fp
        "    { \"mode\": %S, \"tenants\": %d, \"requests\": %d, \
         \"iterations\": %d, \"firings\": %d, \"wall_ms\": %.3f, \
         \"requests_per_sec\": %.1f, \"firings_per_sec\": %.1f, \
         \"quarantined\": %d, \"request_p50_ms\": %.4f, \"request_p95_ms\": \
         %.4f, \"healthy_p95_ms\": %.4f }%s\n"
        r.s_label r.s_tenants r.s_requests r.s_iterations r.s_firings
        r.s_wall_ms
        (if r.s_wall_ms > 0.0 then
           1000.0 *. float_of_int r.s_requests /. r.s_wall_ms
         else 0.0)
        (if r.s_wall_ms > 0.0 then
           1000.0 *. float_of_int r.s_firings /. r.s_wall_ms
         else 0.0)
        r.s_quarantined r.s_p50_ms r.s_p95_ms r.s_healthy_p95_ms
        (if i = List.length runs - 1 then "" else ","))
    runs;
  fp "  ]\n";
  fp "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" out

(* ------------------------------------------------------------------ *)
(* E23: network chaos — resilient client over a seeded fault plan      *)
(* ------------------------------------------------------------------ *)

module NF = Tpdf_serve.Netfault
module SClient = Tpdf_serve.Client

type e23_run = {
  n_label : string;
  n_spec : string; (* netfault plan, "" for the no-fault baseline *)
  n_tenants : int;
  n_logical : int; (* logical client requests (advances) *)
  n_attempts : int; (* transport attempts incl. retries *)
  n_lost : int; (* logical requests that exhausted retries *)
  n_req_lost : int; (* injected: request line lost on the wire *)
  n_resp_lost : int; (* injected: response line lost on the wire *)
  n_delayed : int; (* injected: operations delayed *)
  n_wall_ms : float;
  n_virtual_ms : float; (* injected delay + client backoff, virtual *)
  n_p50_ms : float; (* per-logical-request daemon time, all attempts *)
  n_p95_ms : float;
  n_diverged : int; (* tenants whose final state differs from the twin *)
}

(* Open-loop load through the resilient client against an in-process
   chaotic transport: each transport attempt consults the netfault plan
   (per-tenant connection stream; requests and responses draw at
   distinct op parities), a lost line surfaces as a transport failure,
   and the client retries with idempotency keys under virtual-time
   backoff.  Every logical request that succeeds is mirrored once into
   a fault-free twin daemon; at the end the per-tenant final states
   must be byte-identical — retries and replays must never
   double-advance a tenant.  Latencies measure daemon time summed over
   a logical request's attempts; injected delays and client backoff
   accumulate in virtual time so runs are reproducible. *)
let e23_load ~label ~spec ~seed ~tenants ~rounds ~iters_per_advance () =
  let specs =
    if spec = "" then []
    else match NF.parse_specs spec with Ok s -> s | Error e -> failwith e
  in
  let plan = NF.make ~seed specs in
  let cfg =
    {
      ServeD.default_config with
      ServeD.max_tenants = (2 * tenants) + 8;
      rid_cache = 1024;
    }
  in
  let mk () = match ServeD.create cfg with Ok d -> d | Error e -> failwith e in
  let d = mk () and twin = mk () in
  let fig1_src = Serial.to_string (Graph.of_csdf (Csdf.Examples.fig1 ())) in
  let fig2_src = Serial.to_string (Examples.fig2 ()).Examples.graph in
  let names = Array.init tenants (fun i -> Printf.sprintf "n%03d" i) in
  let virtual_ms = ref 0.0 in
  let req_lost = ref 0 and resp_lost = ref 0 and delayed = ref 0 in
  let attempts = ref 0 and lost = ref 0 in
  let ops = Array.make tenants 0 in
  let transport conn =
    {
      SClient.call =
        (fun ~deadline_ms:_ line ->
          let o = ops.(conn) in
          ops.(conn) <- o + 1;
          let v = NF.verdict plan ~conn ~op:(2 * o) ~len:(String.length line) in
          if v.NF.v_delay_ms > 0.0 then begin
            incr delayed;
            virtual_ms := !virtual_ms +. v.NF.v_delay_ms
          end;
          if v.NF.v_drop || v.NF.v_tear_at <> None then begin
            incr req_lost;
            Error (SClient.Conn "injected: request lost")
          end
          else
            let resp = ServeD.handle_line d line in
            let v' =
              NF.verdict plan ~conn ~op:((2 * o) + 1)
                ~len:(String.length resp)
            in
            if v'.NF.v_delay_ms > 0.0 then begin
              incr delayed;
              virtual_ms := !virtual_ms +. v'.NF.v_delay_ms
            end;
            if v'.NF.v_drop || v'.NF.v_tear_at <> None then begin
              incr resp_lost;
              Error (SClient.Conn "injected: response lost")
            end
            else Ok resp);
      sleep = (fun ms -> virtual_ms := !virtual_ms +. ms);
    }
  in
  let policy =
    {
      SClient.deadline_ms = 1000.0;
      retries = 6;
      backoff_ms = 5.0;
      backoff_max_ms = 80.0;
      seed;
    }
  in
  let submit_line name src params =
    ServeJ.to_string
      (ServeJ.Obj
         ([
            ("id", ServeJ.String ("s-" ^ name));
            ("op", ServeJ.String "submit");
            ("name", ServeJ.String name);
            ("graph", ServeJ.String src);
          ]
         @
         match params with
         | [] -> []
         | ps ->
             [
               ( "params",
                 ServeJ.Obj (List.map (fun (k, v) -> (k, ServeJ.Int v)) ps) );
             ]))
  in
  (* Submits bypass the chaos: the load under test is the steady-state
     advance traffic.  Both daemons see identical submissions. *)
  Array.iteri
    (fun i name ->
      let line =
        if i mod 2 = 0 then submit_line name fig1_src []
        else submit_line name fig2_src [ ("p", 1 + (i mod 3)) ]
      in
      ignore (ServeD.handle_line d line);
      ignore (ServeD.handle_line twin line))
    names;
  let lat = ref [] in
  let logical = ref 0 in
  let t0 = Tpdf_obs.Obs.now_wall_ms () in
  for r = 1 to rounds do
    Array.iteri
      (fun ti name ->
        let line =
          ServeJ.to_string
            (ServeJ.Obj
               [
                 ("id", ServeJ.String ("a-" ^ name));
                 ("rid", ServeJ.String (Printf.sprintf "adv-%s-%d" name r));
                 ("op", ServeJ.String "advance");
                 ("name", ServeJ.String name);
                 ("iterations", ServeJ.Int iters_per_advance);
               ])
        in
        incr logical;
        let w0 = Tpdf_obs.Obs.now_wall_ms () in
        let out = SClient.call policy (transport ti) ~op:!logical line in
        lat := (Tpdf_obs.Obs.now_wall_ms () -. w0) :: !lat;
        attempts := !attempts + out.SClient.attempts;
        match out.SClient.response with
        | Ok _ -> ignore (ServeD.handle_line twin line)
        | Error _ -> incr lost)
      names
  done;
  let n_wall_ms = Tpdf_obs.Obs.now_wall_ms () -. t0 in
  let diverged =
    Array.fold_left
      (fun acc name ->
        let q =
          ServeJ.to_string
            (ServeJ.Obj
               [
                 ("id", ServeJ.String ("q-" ^ name));
                 ("op", ServeJ.String "query");
                 ("name", ServeJ.String name);
               ])
        in
        if ServeD.handle_line d q = ServeD.handle_line twin q then acc
        else acc + 1)
      0 names
  in
  let sorted =
    let a = Array.of_list !lat in
    Array.sort compare a;
    a
  in
  {
    n_label = label;
    n_spec = spec;
    n_tenants = tenants;
    n_logical = !logical;
    n_attempts = !attempts;
    n_lost = !lost;
    n_req_lost = !req_lost;
    n_resp_lost = !resp_lost;
    n_delayed = !delayed;
    n_wall_ms;
    n_virtual_ms = !virtual_ms;
    n_p50_ms = e22_percentile sorted 0.5;
    n_p95_ms = e22_percentile sorted 0.95;
    n_diverged = diverged;
  }

let e23_gate_p95_ratio = 2.0

let e23_netchaos () =
  section "E23"
    "Network chaos: resilient client + idempotency under a fault-plan sweep";
  let smoke = bench_smoke in
  let tenants = if smoke then 12 else 320 in
  let rounds = if smoke then 3 else 6 in
  let iters_per_advance = 1 in
  let sweep =
    [
      ("baseline", "", 0);
      ("lossy", "disconnect:0.01,tear:0.005", 7);
      ("slow", "delay:0.05:2", 11);
      ("lossy+slow", "disconnect:0.01,tear:0.005,delay:0.05:2,stall:0.01:4", 13);
    ]
  in
  let runs =
    List.map
      (fun (label, spec, seed) ->
        e23_load ~label ~spec ~seed ~tenants ~rounds ~iters_per_advance ())
      sweep
  in
  let base = List.hd runs in
  let faults = List.tl runs in
  let ratio r =
    if base.n_p95_ms > 0.0 then r.n_p95_ms /. base.n_p95_ms else 0.0
  in
  let worst_ratio = List.fold_left (fun m r -> Float.max m (ratio r)) 0.0 faults in
  let p95_ok = worst_ratio > 0.0 && worst_ratio <= e23_gate_p95_ratio in
  let diverged = List.fold_left (fun a r -> a + r.n_diverged) 0 runs in
  let total_lost = List.fold_left (fun a r -> a + r.n_lost) 0 runs in
  let injected r = r.n_req_lost + r.n_resp_lost + r.n_delayed in
  let injected_ok = List.for_all (fun r -> injected r > 0) faults in
  let divergence_ok = diverged = 0 && total_lost = 0 in
  Printf.printf "%-11s %8s %9s %9s %7s %9s %9s %8s %9s %9s\n" "plan" "tenants"
    "logical" "attempts" "lost" "req_lost" "resp_lost" "delayed" "p95 ms"
    "diverged";
  List.iter
    (fun r ->
      Printf.printf "%-11s %8d %9d %9d %7d %9d %9d %8d %9.3f %9d\n" r.n_label
        r.n_tenants r.n_logical r.n_attempts r.n_lost r.n_req_lost
        r.n_resp_lost r.n_delayed r.n_p95_ms r.n_diverged)
    runs;
  Printf.printf
    "healthy p95 under chaos: worst %.2fx of baseline (gate %.1fx) -> %s\n"
    worst_ratio e23_gate_p95_ratio
    (if p95_ok then "ok" else "FAILED");
  Printf.printf "state divergence: %d tenants, %d lost requests -> %s\n"
    diverged total_lost
    (if divergence_ok then "ok" else "FAILED");
  let out =
    match Sys.getenv_opt "TPDF_BENCH_NETCHAOS_OUT" with
    | Some p -> p
    | None -> "BENCH_netchaos.json"
  in
  let oc = open_out out in
  let fp fmt = Printf.fprintf oc fmt in
  fp "{\n";
  fp "  \"experiment\": \"E23\",\n";
  fp "  \"smoke\": %b,\n" smoke;
  fp_metadata oc;
  fp "  \"note\": %S,\n"
    "Open-loop load through the resilient client (deadlines, idempotency \
     keys, seeded jittered backoff) against an in-process transport that \
     injects wire faults from a seeded netfault plan: lost requests, lost \
     responses, delays.  Every successful logical advance is mirrored into \
     a fault-free twin daemon; divergence counts tenants whose final query \
     differs byte-for-byte from the twin's; retries plus rid replay must \
     never double-advance a tenant.  p95 is per-logical-request daemon \
     time summed over attempts (injected delays and backoff accumulate in \
     virtual time); p95_ratio_ok gates the worst chaos-run p95 against the \
     no-fault baseline.";
  fp "  \"iters_per_advance\": %d,\n" iters_per_advance;
  fp "  \"rounds\": %d,\n" rounds;
  fp "  \"gate_p95_ratio\": %.1f,\n" e23_gate_p95_ratio;
  fp "  \"worst_p95_ratio\": %.3f,\n" worst_ratio;
  fp "  \"p95_ratio_ok\": %b,\n" p95_ok;
  fp "  \"diverged_tenants\": %d,\n" diverged;
  fp "  \"lost_requests\": %d,\n" total_lost;
  fp "  \"divergence_ok\": %b,\n" divergence_ok;
  fp "  \"faults_injected_ok\": %b,\n" injected_ok;
  fp "  \"runs\": [\n";
  List.iteri
    (fun i r ->
      fp
        "    { \"plan\": %S, \"spec\": %S, \"tenants\": %d, \"logical\": %d, \
         \"attempts\": %d, \"lost\": %d, \"req_lost\": %d, \"resp_lost\": \
         %d, \"delayed\": %d, \"wall_ms\": %.3f, \"virtual_ms\": %.3f, \
         \"request_p50_ms\": %.4f, \"request_p95_ms\": %.4f, \"diverged\": \
         %d }%s\n"
        r.n_label r.n_spec r.n_tenants r.n_logical r.n_attempts r.n_lost
        r.n_req_lost r.n_resp_lost r.n_delayed r.n_wall_ms r.n_virtual_ms
        r.n_p50_ms r.n_p95_ms r.n_diverged
        (if i = List.length runs - 1 then "" else ","))
    runs;
  fp "  ]\n";
  fp "}\n";
  close_out oc;
  Printf.printf "wrote %s\n" out

(* ------------------------------------------------------------------ *)
(* TPDF_BENCH_TRACE: observability artifacts for the example graphs    *)
(* ------------------------------------------------------------------ *)

let write_traces dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let module Obs = Tpdf_obs.Obs in
  let runs =
    [
      ("fig2", (Examples.fig2 ()).Examples.graph, [ ("p", 4) ]);
      ("fig3", Examples.fig3 (), []);
      ( "ofdm-tpdf",
        fst (Ofdm_app.tpdf_graph ()),
        [ ("beta", 2); ("N", 8); ("L", 1) ] );
    ]
  in
  List.iter
    (fun (name, g, params) ->
      let obs = Obs.create () in
      let valuation = Valuation.of_list params in
      ignore
        (Tpdf_sim.Reconfigure.run_scenarios ~graph:g ~obs ~valuation ~default:0
           (Tpdf_sim.Reconfigure.mode_scenarios g));
      let trace = Filename.concat dir (name ^ ".trace.json") in
      Tpdf_obs.Chrome.write_file trace (Obs.events obs);
      let summary = Filename.concat dir (name ^ ".summary.txt") in
      let oc = open_out summary in
      output_string oc
        (Tpdf_obs.Report.summary ~metrics:(Obs.metrics obs) (Obs.events obs));
      close_out oc;
      Printf.printf "trace: wrote %s (%d events) and %s\n" trace
        (Obs.event_count obs) summary)
    runs

let () =
  Printf.printf
    "TPDF reproduction benchmark harness (paper: Do, Louise, Cohen — DATE 2016)\n";
  (match Sys.getenv_opt "TPDF_BENCH_TRACE" with
  | Some dir -> write_traces dir
  | None -> ());
  Printf.printf "image size for E7: %dx%d; Bechamel quota: %.1fs\n" bench_size
    bench_size bench_quota;
  let experiments =
    [
      ("E1", e1_fig1);
      ("E2", e2_fig2);
      ("E5", e5_liveness);
      ("E6", e6_fig5);
      ("E7", e7_fig6_table);
      ("E8", e8_fig6_deadline);
      ("E9", e9_fig7);
      ("E10", e10_fig8);
      ("E11", e11_speedup);
      ("E12", e12_fmradio);
      ("E13", e13_analysis_cost);
      ("E14", e14_video);
      ("E15", e15_ablation);
      ("E16", e16_resilience);
      ("E17", e17_engine);
      ("E18", e18_par);
      ("E19", e19_ckpt);
      ("E20", e20_obs);
      ("E21", e21_param);
      ("E22", e22_serve);
      ("E23", e23_netchaos);
    ]
  in
  let only =
    match Sys.getenv_opt "TPDF_BENCH_ONLY" with
    | None -> None
    | Some s ->
        Some (List.map String.trim (String.split_on_char ',' s))
  in
  List.iter
    (fun (id, f) ->
      match only with Some ids when not (List.mem id ids) -> () | _ -> f ())
    experiments;
  print_newline ()
