(* tpdf_tool — command-line front end for the TPDF analyses.

   Examples:
     tpdf_tool list
     tpdf_tool analyze fig2 -p p=4
     tpdf_tool liveness fig4b -p p=3
     tpdf_tool schedule fig2 -p p=2 --pes 4
     tpdf_tool buffers ofdm-tpdf -p beta=10 -p N=512 -p L=1 -s DUP=qpsk -s TRAN=qpsk
     tpdf_tool export fig2 my_graph.tpdf   # then: tpdf_tool analyze my_graph.tpdf
     tpdf_tool dot fig2 *)

open Cmdliner
open Tpdf_core
open Tpdf_param
module Csdf = Tpdf_csdf
module Sched = Tpdf_sched
module Platform = Tpdf_platform.Platform
module Apps = Tpdf_apps
module Obs = Tpdf_obs.Obs
module Sim = Tpdf_sim

let graphs : (string * (string * (unit -> Graph.t))) list =
  [
    ("fig1", ("CSDF example of Fig. 1", fun () -> Graph.of_csdf (Csdf.Examples.fig1 ())));
    ("fig2", ("TPDF running example of Fig. 2 (parameter p)", fun () -> (Examples.fig2 ()).Examples.graph));
    ("fig3", ("Select-duplicate example of Fig. 3", Examples.fig3));
    ("fig4a", ("live cycle of Fig. 4(a) (parameter p)", Examples.fig4a));
    ("fig4b", ("late-schedule cycle of Fig. 4(b) (parameter p)", Examples.fig4b));
    ("unsafe", ("rate-safety violation example", Examples.unsafe_control));
    ("spdf", ("SPDF-style two-parameter pipeline (p, q)", Examples.spdf_sample_rate));
    ("edge", ("edge-detection application of Fig. 6", fun () -> fst (Apps.Edge_app.graph ())));
    ("ofdm-tpdf", ("OFDM demodulator of Fig. 7 (beta, N, L)", fun () -> fst (Apps.Ofdm_app.tpdf_graph ())));
    ("ofdm-csdf", ("CSDF baseline of the OFDM demodulator", fun () -> fst (Apps.Ofdm_app.csdf_graph ())));
    ("fm", ("FM-radio equalizer (8 bands)", fun () -> Apps.Fm_radio.graph ()));
  ]

let lookup_graph name =
  match List.assoc_opt name graphs with
  | Some (_, mk) -> Ok (mk ())
  | None ->
      if Sys.file_exists name then
        match Serial.load name with
        | Ok g -> Ok g
        | Error msg -> (
            (* Serial diagnoses as "line N: reason"; rehome that on the
               file so the shell sees a clickable file:line: message. *)
            match Scanf.sscanf_opt msg "line %d" (fun n -> n) with
            | Some n -> (
                match String.index_opt msg ':' with
                | Some i ->
                    let rest =
                      String.trim
                        (String.sub msg (i + 1) (String.length msg - i - 1))
                    in
                    Error (Printf.sprintf "%s:%d: %s" name n rest)
                | None -> Error (Printf.sprintf "%s:%d: %s" name n msg))
            | None -> Error (Printf.sprintf "%s: %s" name msg))
      else
        Error
          (Printf.sprintf "unknown graph %S; try a .tpdf file or one of: %s"
             name
             (String.concat ", " (List.map fst graphs)))

let graph_arg =
  let doc = "Built-in graph name (see the $(b,list) command)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"GRAPH" ~doc)

let param_arg =
  let parse s =
    match String.split_on_char '=' s with
    | [ k; v ] -> (
        match int_of_string_opt v with
        | Some n when n > 0 -> Ok (k, n)
        | _ -> Error (`Msg "parameter values are positive integers"))
    | _ -> Error (`Msg "expected name=value")
  in
  let print ppf (k, v) = Format.fprintf ppf "%s=%d" k v in
  let kv_conv = Arg.conv (parse, print) in
  let doc = "Bind integer parameter $(docv) (repeatable)." in
  Arg.(value & opt_all kv_conv [] & info [ "p"; "param" ] ~docv:"NAME=VALUE" ~doc)

let scenario_arg =
  let parse s =
    match String.split_on_char '=' s with
    | [ k; m ] -> Ok (k, m)
    | _ -> Error (`Msg "expected kernel=mode")
  in
  let print ppf (k, m) = Format.fprintf ppf "%s=%s" k m in
  let km_conv = Arg.conv (parse, print) in
  let doc = "Pin kernel $(docv) to a mode for the buffer analysis (repeatable)." in
  Arg.(value & opt_all km_conv [] & info [ "s"; "scenario" ] ~docv:"KERNEL=MODE" ~doc)

let pes_arg =
  let doc = "Number of processing elements." in
  Arg.(value & opt int 4 & info [ "pes" ] ~docv:"N" ~doc)

let iterations_arg =
  let doc = "Number of graph iterations." in
  Arg.(value & opt int 1 & info [ "iterations"; "i" ] ~docv:"N" ~doc)

let backend_arg =
  let doc =
    "Execute with the compiled static-schedule backend instead of the \
     event interpreter.  Output is byte-identical; the engine falls back \
     to the interpreter transparently when the backend cannot engage \
     (clocked actors, domain pools, non-uniform firing durations)."
  in
  Term.(
    app
      (const (fun c -> if c then `Compiled else `Event))
      Arg.(value & flag & info [ "compiled" ] ~doc))

let valuation_of params =
  try Ok (Valuation.of_list params) with Invalid_argument m -> Error m

let or_die = function
  | Ok v -> v
  | Error msg ->
      prerr_endline ("tpdf_tool: " ^ msg);
      exit 1

let need_valuation g params =
  let v = or_die (valuation_of params) in
  let missing =
    List.filter (fun p -> not (Valuation.mem v p)) (Graph.parameters g)
  in
  if missing <> [] then
    or_die
      (Error
         (Printf.sprintf "missing parameter(s): %s (bind with -p name=value)"
            (String.concat ", " missing)))
  else v

(* ------------------------------------------------------------------ *)
(* Commands                                                            *)
(* ------------------------------------------------------------------ *)

let cmd_list () =
  List.iter
    (fun (name, (doc, _)) -> Printf.printf "%-10s %s\n" name doc)
    graphs

let cmd_analyze name params =
  let g = or_die (lookup_graph name) in
  Format.printf "%a@." Graph.pp g;
  (match Graph.validate g with
  | Ok () -> Format.printf "structure: ok@."
  | Error msgs ->
      List.iter (fun m -> Format.printf "structure: %s@." m) msgs);
  (match Analysis.repetition g with
  | rep ->
      Format.printf "%a@." Csdf.Repetition.pp rep;
      (match params with
      | [] -> ()
      | _ ->
          let v = or_die (valuation_of params) in
          Format.printf "under %a: %s@." Valuation.pp v
            (String.concat ", "
               (List.map
                  (fun (a, n) -> Printf.sprintf "%s:%d" a n)
                  (Csdf.Repetition.q_int rep v))));
      List.iter
        (fun a -> Format.printf "%a@." Analysis.pp_area a)
        (Analysis.areas g);
      (match Analysis.rate_safety g with
      | Ok () -> Format.printf "rate safety: ok@."
      | Error vs ->
          List.iter
            (fun (viol : Analysis.violation) ->
              Format.printf "rate safety: [%s, e%d] %s@." viol.Analysis.control
                viol.Analysis.channel viol.Analysis.reason)
            vs);
      let b =
        Analysis.check_boundedness g ~samples:(Liveness.default_samples g)
      in
      Format.printf
        "boundedness: consistent=%b rate_safe=%b live=%b => bounded=%b@."
        b.Analysis.consistent b.Analysis.rate_safe b.Analysis.live
        b.Analysis.bounded
  | exception Csdf.Repetition.Inconsistent msg ->
      Format.printf "INCONSISTENT: %s@." msg
  | exception Csdf.Repetition.Disconnected ->
      Format.printf "DISCONNECTED graph@.")

let cmd_liveness name params =
  let g = or_die (lookup_graph name) in
  let samples =
    match params with
    | [] -> Liveness.default_samples g
    | _ -> [ need_valuation g params ]
  in
  List.iter
    (fun v -> Format.printf "%a@." Liveness.pp_report (Liveness.check g v))
    samples

let cmd_schedule name params pes =
  let g = or_die (lookup_graph name) in
  let v = need_valuation g params in
  let conc = Csdf.Concrete.make (Graph.skeleton g) v in
  let period = Sched.Canonical_period.build conc in
  Format.printf "canonical period: %d firings, %d dependencies@."
    (Sched.Canonical_period.node_count period)
    (List.length (Sched.Canonical_period.deps period));
  let platform = Platform.uniform pes in
  let s = Sched.List_scheduler.run ~graph:g period platform in
  print_string (Sched.Gantt.render platform s)

let cmd_buffers name params scenario minimize =
  let g = or_die (lookup_graph name) in
  let v = need_valuation g params in
  (match Buffers.analyze g v ~scenario with
  | report -> Format.printf "%a@." Csdf.Buffers.pp report
  | exception Invalid_argument m -> or_die (Error m)
  | exception Failure m -> or_die (Error m));
  if minimize then begin
    let conc = Csdf.Concrete.make (Graph.skeleton g) v in
    match Csdf.Bounded.minimize conc with
    | r ->
        Format.printf "back-pressure minimum (all channels active):@.";
        List.iter
          (fun (id, cap) -> Format.printf "  e%d: %d@." id cap)
          r.Csdf.Bounded.capacities;
        Format.printf "  total: %d (%d relaxation(s))@." r.Csdf.Bounded.total
          r.Csdf.Bounded.relaxations
    | exception Failure m -> or_die (Error m)
  end

let cmd_simulate name params iterations trace backend =
  let g = or_die (lookup_graph name) in
  let v = need_valuation g params in
  let eng = Tpdf_sim.Engine.create ~graph:g ~valuation:v ~default:0 () in
  match Tpdf_sim.Engine.run ~backend ~iterations eng with
  | stats ->
      if trace then print_string (Tpdf_sim.Trace.gantt stats);
      Format.printf "completed at %.3f ms@." stats.Tpdf_sim.Engine.end_ms;
      List.iter
        (fun (a, n) -> Format.printf "  %-12s fired %4d time(s)@." a n)
        stats.Tpdf_sim.Engine.firings;
      List.iter
        (fun (ch, n) ->
          if n > 0 then Format.printf "  e%-3d dropped %d rejected token(s)@." ch n)
        stats.Tpdf_sim.Engine.dropped
  | exception Failure m -> or_die (Error m)

let cmd_throughput name params pes =
  let g = or_die (lookup_graph name) in
  let v = need_valuation g params in
  let conc = Csdf.Concrete.make (Graph.skeleton g) v in
  let mcr = Sched.Mcr.iteration_period_ms (Sched.Mcr.build conc) in
  Format.printf "intrinsic bound (max cycle ratio): %.3f ms/iteration@." mcr;
  let platform = Platform.uniform pes in
  let period = Sched.Throughput.iteration_period_ms ~graph:g conc platform in
  Format.printf "list-scheduled on %d PE(s):          %.3f ms/iteration (%.1f it/s)@."
    pes period (1000.0 /. period);
  match Csdf.Sas.find conc with
  | Some s -> Format.printf "single-appearance schedule: %a@." Csdf.Sas.pp s
  | None -> Format.printf "no single-appearance schedule (interleaving required)@."

(* TPDF_DOMAINS=d runs the simulation sweeps on a d-domain pool.  The
   engine's determinism contract makes the outputs bit-identical to the
   sequential run, so this is safe to honor silently; it exists to
   exercise and time the parallel runtime from the CLI. *)
let with_env_pool f =
  match Sys.getenv_opt "TPDF_DOMAINS" with
  | None -> f None
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some d when d > 1 ->
          let pool = Tpdf_par.Pool.create ~domains:d in
          Fun.protect
            ~finally:(fun () -> Tpdf_par.Pool.shutdown pool)
            (fun () -> f (Some pool))
      | Some d when d >= 0 -> f None
      | _ ->
          or_die
            (Error (Printf.sprintf "TPDF_DOMAINS: expected a count, got %S" s)))

(* Run everything — analyses, scheduling and a mode-scenario simulation
   sweep — under one collector. *)
let instrumented_run name params pes iterations backend =
  let g = or_die (lookup_graph name) in
  let v = need_valuation g params in
  let obs = Obs.create () in
  (* Static analyses. *)
  (try
     ignore (Analysis.repetition ~obs g);
     ignore (Analysis.rate_safety ~obs g);
     ignore
       (Analysis.check_boundedness ~obs g
          ~samples:(Liveness.default_samples g))
   with Csdf.Repetition.Inconsistent _ | Csdf.Repetition.Disconnected -> ());
  (* Scheduling analyses. *)
  let conc = Csdf.Concrete.make (Graph.skeleton g) v in
  (try
     ignore
       (Sched.Mcr.iteration_period_ms ~obs (Sched.Mcr.build ~obs conc))
   with Failure _ -> ());
  let platform = Platform.uniform pes in
  (try
     let period = Sched.Canonical_period.build conc in
     ignore (Sched.List_scheduler.run ~obs ~graph:g period platform);
     ignore (Sched.Throughput.iteration_period_ms ~obs ~graph:g conc platform)
   with Failure _ -> ());
  (* Simulation: sweep every mode scenario so each kernel exercises each of
     its modes (and `reconfig` instants mark the boundaries). *)
  (match
     with_env_pool @@ fun pool ->
     Sim.Reconfigure.run_scenarios ~graph:g ~backend ~obs ~iterations ?pool
       ~valuation:v ~default:0
       (Sim.Reconfigure.mode_scenarios g)
   with
  | (_ : Sim.Reconfigure.report) -> ()
  | exception Failure m -> or_die (Error m));
  obs

let cmd_profile name params pes iterations openmetrics backend =
  let obs = instrumented_run name params pes iterations backend in
  print_string
    (Tpdf_obs.Report.summary ~metrics:(Obs.metrics obs) (Obs.events obs));
  match openmetrics with
  | None -> ()
  | Some path ->
      Tpdf_util.Atomic_file.write path
        (Tpdf_obs.Openmetrics.render (Obs.metrics obs));
      Printf.printf "wrote %s\n" path

let cmd_trace name params pes iterations format output backend =
  let obs = instrumented_run name params pes iterations backend in
  let events = Obs.events obs in
  let text =
    match format with
    | `Chrome -> Tpdf_obs.Chrome.json_of_events events
    | `Csv -> Tpdf_obs.Report.csv_of_events events
    | `Summary ->
        Tpdf_obs.Report.summary ~metrics:(Obs.metrics obs) events
  in
  match output with
  | None -> print_string text
  | Some path -> (
      match open_out path with
      | oc ->
          output_string oc text;
          close_out oc;
          Printf.printf "wrote %s (%d events)\n" path (Obs.event_count obs)
      | exception Sys_error m -> or_die (Error m))

(* ------------------------------------------------------------------ *)
(* Telemetry v2: production collector, live per-actor table, and       *)
(* trace-derived critical-path analysis (tpdf_obs v2).                 *)
(* ------------------------------------------------------------------ *)

module Ring = Tpdf_obs.Ring
module Critpath = Tpdf_obs.Critpath
module Metrics = Tpdf_obs.Metrics

let write_openmetrics obs = function
  | None -> ()
  | Some path ->
      Tpdf_util.Atomic_file.write path
        (Tpdf_obs.Openmetrics.render (Obs.metrics obs));
      Printf.printf "wrote %s\n" path

(* The production collector: no unbounded event list — a sampled engine
   stream feeds a bounded flight-recorder ring, and metrics aggregate
   everything.  [sample <= 1] keeps every span (full fidelity, still
   bounded memory). *)
let production_obs ~sample ~ring_cap =
  let sampling = { Obs.span_every = max 1 sample; occupancy_every = 0 } in
  let obs = Obs.create ~keep_events:false ~sampling () in
  let ring =
    Ring.attach
      ~config:{ Ring.default_config with capacity = max 16 ring_cap }
      obs
  in
  (obs, ring)

let cmd_top name params iterations refresh_ms sample ring_cap limit
    openmetrics =
  let g = or_die (lookup_graph name) in
  let v = need_valuation g params in
  let skel = Graph.skeleton g in
  let obs, ring = production_obs ~sample ~ring_cap in
  with_env_pool @@ fun pool ->
  let eng = Sim.Engine.create ~graph:g ~valuation:v ~obs ?pool ~default:0 () in
  let in_ids =
    List.map
      (fun a ->
        ( a,
          List.map
            (fun (e : (string, Csdf.Graph.channel) Tpdf_graph.Digraph.edge) ->
              e.Tpdf_graph.Digraph.id)
            (Csdf.Graph.in_channels skel a) ))
      (Graph.actors g)
  in
  let is_tty = Unix.isatty Unix.stdout in
  let frame k (stats : Sim.Engine.stats) =
    let m = Obs.metrics obs in
    let end_ms = stats.Sim.Engine.end_ms in
    if is_tty then print_string "\027[2J\027[H";
    Format.printf
      "tpdf top — %s  iteration %d/%d  t=%.3f ms  events %d seen, ring %d/%d@."
      name k iterations end_ms (Ring.seen ring) (Ring.retained ring)
      (Ring.capacity ring);
    Format.printf "%-14s %8s %7s %9s %5s %8s %9s@." "ACTOR" "FIRINGS" "BUSY%"
      "BUSY ms" "OCC" "RETRIES" "DEGRADES";
    let rows =
      List.map
        (fun (a, n) ->
          let busy =
            Option.value ~default:0.0 (Metrics.gauge m ("engine.busy_ms." ^ a))
          in
          let occ =
            List.fold_left
              (fun acc id ->
                match List.assoc_opt id stats.Sim.Engine.max_occupancy with
                | Some o -> max acc o
                | None -> acc)
              0
              (Option.value ~default:[] (List.assoc_opt a in_ids))
          in
          ( a,
            n,
            busy,
            occ,
            Metrics.counter m ("supervisor.retries." ^ a),
            Metrics.counter m ("supervisor.degrades." ^ a) ))
        stats.Sim.Engine.firings
    in
    let rows =
      List.sort
        (fun (a1, _, b1, _, _, _) (a2, _, b2, _, _, _) ->
          match compare b2 b1 with 0 -> compare a1 a2 | c -> c)
        rows
    in
    List.iteri
      (fun i (a, n, busy, occ, retries, degrades) ->
        if i < limit then
          let pct = if end_ms > 0.0 then 100.0 *. busy /. end_ms else 0.0 in
          Format.printf "%-14s %8d %6.1f%% %9.3f %5d %8d %9d@." a n pct busy
            occ retries degrades)
      rows;
    let hidden = List.length rows - limit in
    if hidden > 0 then Format.printf "  … %d more actor(s)@." hidden
  in
  (try
     for k = 1 to iterations do
       (* Cumulative chunked runs on one engine: iteration k resumes where
          k-1 stopped, so each frame shows live totals. *)
       let stats = Sim.Engine.run ~iterations:k eng in
       frame k stats;
       if refresh_ms > 0 && k < iterations then
         Unix.sleepf (float_of_int refresh_ms /. 1000.0)
     done
   with Failure m -> or_die (Error m));
  write_openmetrics obs openmetrics

(* analyze-trace: execute every mode scenario, measure the settled
   observed iteration period from cumulative-run marginals, and diff it
   against the scheduler-side predictions — the proven MCR lower bound
   (observed below it is an analysis bug: exit 2) and the list-schedule
   steady period (deviation beyond tolerance: exit 1).  Clock-driven
   graphs pace the run by wall of the clock, so only the bound check
   applies there. *)
let cmd_analyze_trace name params tolerance max_iters show_path =
  let g = or_die (lookup_graph name) in
  let v = need_valuation g params in
  let actors = Graph.actors g in
  let conc = Csdf.Concrete.make (Graph.skeleton g) v in
  let clocked =
    List.exists (fun a -> Graph.clock_period_ms g a <> None) actors
  in
  let pes = max 2 (List.length actors) in
  let platform = Platform.uniform pes in
  let scenarios = Sim.Reconfigure.mode_scenarios g in
  let mismatches = ref 0 and bound_bugs = ref 0 in
  with_env_pool @@ fun pool ->
  List.iter
    (fun scenario ->
      Format.printf "@[<v>scenario %s@,"
        (Sim.Reconfigure.pp_scenario scenario);
      let starved = Sim.Reconfigure.starved_actors g scenario in
      let behaviors =
        List.filter_map
          (fun a ->
            if Graph.clock_period_ms g a <> None then None
            else
              Some (a, Sim.Reconfigure.scenario_control_behavior g scenario))
          (Graph.control_actors g)
      in
      let targets = List.map (fun a -> (a, 0)) starved in
      (* A run's firing limits stop actors from racing into iteration k+1,
         so resuming one engine serializes at every boundary and the
         marginal measures latency.  Instead each window k gets a fresh
         engine whose single run pipelines all k iterations; the marginal
         makespan(k) - makespan(k-1) then settles to the steady iteration
         period, exactly like [Throughput.steady_period_ms]. *)
      let obs = ref Obs.disabled in
      let run_window k =
        let o = Obs.create () in
        let eng =
          Sim.Engine.create ~graph:g ~valuation:v ~behaviors ~obs:o ?pool
            ~default:0 ()
        in
        let stats = Sim.Engine.run ~iterations:k ~targets eng in
        obs := o;
        stats.Sim.Engine.end_ms
      in
      let eps = 1e-6 in
      let ends = Array.make (max_iters + 1) 0.0 in
      let observed = ref Float.nan in
      let failed = ref None in
      (try
         let k = ref 1 in
         while Float.is_nan !observed && !k <= max_iters do
           ends.(!k) <- run_window !k;
           (if !k >= 3 then
              let m1 = ends.(!k) -. ends.(!k - 1)
              and m2 = ends.(!k - 1) -. ends.(!k - 2)
              and m3 = ends.(!k - 2) -. ends.(!k - 3) in
              if Float.abs (m1 -. m2) <= eps && Float.abs (m2 -. m3) <= eps
              then observed := m1);
           incr k
         done;
         if Float.is_nan !observed then
           observed := ends.(max_iters) -. ends.(max_iters - 1)
       with Failure m -> failed := Some m);
      (match !failed with
      | Some m ->
          incr mismatches;
          Format.printf "  run FAILED: %s@," m
      | None ->
          let obs_p = !observed in
          if starved <> [] then
            Format.printf "  starved (target 0): %s@,"
              (String.concat ", " starved);
          Format.printf "  observed period   %8.3f ms/iteration@," obs_p;
          let mcr_durations (nd : Sched.Mcr.node) =
            if List.mem nd.Sched.Mcr.actor starved then 0.0 else 1.0
          in
          (match
             Sched.Mcr.iteration_period_ms ~durations:mcr_durations
               (Sched.Mcr.build conc)
           with
          | proven ->
              Format.printf "  proven bound      %8.3f ms (max cycle ratio)@,"
                proven;
              if obs_p < proven -. eps then begin
                incr bound_bugs;
                Format.printf
                  "  ERROR: observed beats the proven bound by %.3f ms — \
                   analysis bug@,"
                  (proven -. obs_p)
              end
          | exception Failure _ ->
              Format.printf "  proven bound      (unavailable)@,");
          let sched_durations (nd : Sched.Canonical_period.node) =
            if List.mem nd.Sched.Canonical_period.actor starved then 0.0
            else 1.0
          in
          (if clocked then
             Format.printf "  predicted period  (skipped: clock-driven run)@,"
           else
             match
               Sched.Throughput.steady_period_ms ~durations:sched_durations
                 ~include_actor:(fun a -> not (List.mem a starved))
                 ~graph:g conc platform
             with
             | predicted when predicted > 0.0 ->
                 let dev = Float.abs (obs_p -. predicted) /. predicted in
                 Format.printf
                   "  predicted period  %8.3f ms (list schedule, %d PEs), \
                    deviation %.1f%%@,"
                   predicted pes (100.0 *. dev);
                 if dev *. 100.0 > tolerance then begin
                   incr mismatches;
                   Format.printf "  MISMATCH: beyond tolerance %.1f%%@,"
                     tolerance
                 end
             | _ -> ()
             | exception (Failure _ | Invalid_argument _) ->
                 Format.printf "  predicted period  (unavailable)@,");
          (match Critpath.of_events (Obs.events !obs) with
          | None -> Format.printf "  no firing spans recorded@,"
          | Some r ->
              let total_busy =
                List.fold_left
                  (fun acc (_, b) -> acc +. b)
                  0.0 r.Critpath.busy_ms
              in
              Format.printf
                "  critical path     %8.3f ms over %d of %d span(s)%s@,"
                r.Critpath.cp_ms
                (List.length r.Critpath.critical_path)
                r.Critpath.span_count
                (if total_busy > 0.0 then
                   Printf.sprintf " (%.0f%% of %.3f ms busy)"
                     (100.0 *. r.Critpath.cp_ms /. total_busy)
                     total_busy
                 else "");
              if show_path then Format.printf "%a@," Critpath.pp_path r;
              (match Critpath.suspects r with
              | [] -> ()
              | sus ->
                  Format.printf "  cliff suspects:   %s@,"
                    (String.concat ", "
                       (List.map
                          (fun (a, s) ->
                            Printf.sprintf "%s (%.0f%% busy)" a (100.0 *. s))
                          sus)))));
      Format.printf "@]@.")
    scenarios;
  if !bound_bugs > 0 then exit 2
  else if !mismatches > 0 then exit 1
  else
    Format.printf "all %d scenario(s) consistent with the analyses@."
      (List.length scenarios)

module Fault = Tpdf_fault

(* Duration behaviours for the chaos run: the OFDM graphs get the shared
   per-actor cost model (so 16-QAM really is slower than QPSK and deadline
   pressure is meaningful); other graphs keep the 1 ms default. *)
let chaos_behaviors g v =
  if
    Valuation.mem v "beta" && Valuation.mem v "N"
    && List.for_all
         (fun a -> Csdf.Graph.mem_actor (Graph.skeleton g) a)
         [ "FFT"; "DUP"; "TRAN" ]
  then
    let beta = Valuation.find v "beta" and n = Valuation.find v "N" in
    List.filter_map
      (fun a ->
        if Graph.is_control g a then None
        else
          Some
            ( a,
              Sim.Behavior.fill 0
                ~duration_ms:(fun _ -> Apps.Ofdm_app.model_cost_ms ~beta ~n a)
            ))
      (Graph.actors g)
  else []

(* ------------------------------------------------------------------ *)
(* Checkpointed execution: run / chaos / resume                        *)
(* ------------------------------------------------------------------ *)

module Ckpt = Tpdf_ckpt.Ckpt

let meta_or_die file key =
  match Ckpt.meta file key with
  | Some v -> v
  | None ->
      or_die (Error (Printf.sprintf "checkpoint: missing meta key %S" key))

let int_meta file key =
  match int_of_string_opt (meta_or_die file key) with
  | Some n -> n
  | None ->
      or_die
        (Error (Printf.sprintf "checkpoint: meta %S is not an integer" key))

let float_meta file key =
  match float_of_string_opt (meta_or_die file key) with
  | Some f -> f
  | None ->
      or_die (Error (Printf.sprintf "checkpoint: meta %S is not a number" key))

let split_kv what s =
  if s = "" then []
  else
    List.map
      (fun item ->
        match String.index_opt item '=' with
        | Some i ->
            ( String.sub item 0 i,
              String.sub item (i + 1) (String.length item - i - 1) )
        | None ->
            or_die
              (Error (Printf.sprintf "checkpoint: bad %s entry %S" what item)))
      (String.split_on_char ',' s)

let join_kv kvs = String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)

let open_store = function
  | Some dir -> Some (Ckpt.Store.open_dir dir)
  | None -> None

(* Every checkpointed command shares the flag contract: checkpoints and
   kills need somewhere to write. *)
let check_ckpt_flags ~every ~kill_at ~store =
  (match every with
  | Some n when n < 1 -> or_die (Error "--checkpoint-every must be >= 1")
  | _ -> ());
  (match kill_at with
  | Some t when t < 0.0 -> or_die (Error "--kill-at-ms must be >= 0")
  | _ -> ());
  if (every <> None || kill_at <> None) && store = None then
    or_die (Error "--checkpoint-every and --kill-at-ms need --checkpoint-dir")

(* Everything the chaos command needs to reconstruct an identical
   supervised run in a fresh process; persisted as checkpoint metadata. *)
type chaos_cfg = {
  cc_name : string;
  cc_seed : int;
  cc_faults : string;  (** raw spec string; [""] = none *)
  cc_iterations : int;
  cc_retries : int;
  cc_backoff : float;
  cc_degrade_after : int;
  cc_max_restarts : int;
  cc_deadlines : (string * string) list;
  cc_scenario : (string * string) list;
}

(* Supervisor state travels in the same meta list under a "sup." prefix
   so its keys ("retries", ...) cannot collide with the command args. *)
let sup_prefix = "sup."

let chaos_ckpt cfg g v (ck : Fault.Supervisor.checkpoint) =
  {
    Ckpt.kind = "chaos";
    meta =
      [
        ("graph", cfg.cc_name);
        ("seed", string_of_int cfg.cc_seed);
        ("faults", cfg.cc_faults);
        ("iterations", string_of_int cfg.cc_iterations);
        ("retries", string_of_int cfg.cc_retries);
        ("backoff", Printf.sprintf "%h" cfg.cc_backoff);
        ("degrade_after", string_of_int cfg.cc_degrade_after);
        ("max_restarts", string_of_int cfg.cc_max_restarts);
        ("deadlines", join_kv cfg.cc_deadlines);
        ("scenario", join_kv cfg.cc_scenario);
      ]
      @ List.map
          (fun (k, v) -> (sup_prefix ^ k, v))
          (Fault.Supervisor.checkpoint_meta ck);
    graph_src = Serial.to_string g;
    valuation = Valuation.bindings v;
    snapshot = ck.Fault.Supervisor.ck_engine;
  }

let chaos_seq (ck : Fault.Supervisor.checkpoint) =
  ck.Fault.Supervisor.ck_iterations_run
  + match ck.Fault.Supervisor.ck_engine with None -> 0 | Some _ -> 1

let chaos_cfg_of_meta file =
  {
    cc_name = meta_or_die file "graph";
    cc_seed = int_meta file "seed";
    cc_faults = meta_or_die file "faults";
    cc_iterations = int_meta file "iterations";
    cc_retries = int_meta file "retries";
    cc_backoff = float_meta file "backoff";
    cc_degrade_after = int_meta file "degrade_after";
    cc_max_restarts = int_meta file "max_restarts";
    cc_deadlines = split_kv "deadline" (meta_or_die file "deadlines");
    cc_scenario = split_kv "scenario" (meta_or_die file "scenario");
  }

(* The shared chaos driver: fresh runs and resumes print the same thing,
   so a resumed run's output is byte-identical to the uninterrupted
   golden one.  Exit 3 = killed (checkpoint written), 1 = unrecovered. *)
let run_chaos cfg g v ~store ~every ~kill_at ~resume ~trace_out =
  check_ckpt_flags ~every ~kill_at ~store;
  let specs =
    if cfg.cc_faults = "" then []
    else or_die (Fault.Fault.parse_specs cfg.cc_faults)
  in
  let deadlines_ms =
    List.map
      (fun (a, ms) ->
        match float_of_string_opt ms with
        | Some f -> (a, f)
        | None ->
            or_die (Error (Printf.sprintf "bad deadline %S for %s" ms a)))
      cfg.cc_deadlines
  in
  let policy =
    match
      Fault.Policy.make ~max_retries:cfg.cc_retries
        ~retry_backoff_ms:cfg.cc_backoff ~deadlines_ms
        ~degrade_after:cfg.cc_degrade_after
        ~max_restarts:cfg.cc_max_restarts
        ~fallbacks:(Fault.Chaos.default_fallbacks g) ()
    with
    | p -> p
    | exception Invalid_argument m -> or_die (Error m)
  in
  let scenario = match cfg.cc_scenario with [] -> None | s -> Some s in
  let save st ck =
    ignore (Ckpt.Store.save st ~seq:(chaos_seq ck) (chaos_ckpt cfg g v ck))
  in
  let on_checkpoint =
    match (store, every) with
    | Some st, Some _ -> Some (fun ck -> save st ck)
    | _ -> None
  in
  let obs = Obs.create () in
  let summary =
    match
      with_env_pool @@ fun pool ->
      Fault.Chaos.run ~graph:g ~seed:cfg.cc_seed ~specs ~policy ?scenario
        ~iterations:cfg.cc_iterations ~obs ?pool ~valuation:v
        ~behaviors:(chaos_behaviors g v) ?kill_at_ms:kill_at
        ?checkpoint_every:every ?on_checkpoint ?resume ()
    with
    | s -> s
    | exception Invalid_argument m -> or_die (Error m)
  in
  Format.printf "seed %d, faults %s@." cfg.cc_seed
    (if specs = [] then "none" else Fault.Fault.specs_to_string specs);
  Format.printf "%a@." Fault.Supervisor.pp_summary summary;
  (match trace_out with
  | None -> ()
  | Some path -> (
      match open_out path with
      | oc ->
          output_string oc (Tpdf_obs.Chrome.json_of_events (Obs.events obs));
          close_out oc;
          Printf.printf "wrote %s (%d events)\n" path (Obs.event_count obs)
      | exception Sys_error m -> or_die (Error m)));
  match summary.Fault.Supervisor.killed with
  | Some ck ->
      let st = Option.get store in
      save st ck;
      Format.printf "resume with: tpdf_tool resume %s@." (Ckpt.Store.dir st);
      exit 3
  | None -> if not (Fault.Chaos.recovered summary) then exit 1

let cmd_chaos name params seed faults iterations scenario deadlines retries
    backoff degrade_after max_restarts trace_out every dir kill_at =
  let g = or_die (lookup_graph name) in
  let v = need_valuation g params in
  let cfg =
    {
      cc_name = name;
      cc_seed = seed;
      cc_faults = (match faults with None -> "" | Some s -> s);
      cc_iterations = iterations;
      cc_retries = retries;
      cc_backoff = backoff;
      cc_degrade_after = degrade_after;
      cc_max_restarts = max_restarts;
      cc_deadlines = deadlines;
      cc_scenario = scenario;
    }
  in
  run_chaos cfg g v ~store:(open_store dir) ~every ~kill_at ~resume:None
    ~trace_out

let print_run_stats iterations (stats : Sim.Engine.stats) =
  Format.printf "completed %d iteration(s) at %.3f ms@." iterations
    stats.Sim.Engine.end_ms;
  List.iter
    (fun (a, n) -> Format.printf "  %-12s fired %4d time(s)@." a n)
    stats.Sim.Engine.firings;
  List.iter
    (fun (ch, n) ->
      if n > 0 then
        Format.printf "  e%-3d dropped %d rejected token(s)@." ch n)
    stats.Sim.Engine.dropped

(* Drive one engine through the remaining iterations in single-iteration
   chunks: every boundary is then a checkpoint opportunity, and because
   the engine's limits are cumulative over its lifetime (snapshots carry
   the counts), a restored engine picks up exactly where the killed one
   stopped and the final chunk's stats are the whole run's stats. *)
let drive_run ~name ~graph ~valuation ~store ~every ~kill_at ~iterations ~from
    ~backend eng =
  let make_ck ~done_ =
    {
      Ckpt.kind = "run";
      meta =
        [
          ("graph", name);
          ("iterations", string_of_int iterations);
          ("done", string_of_int done_);
        ];
      graph_src = Serial.to_string graph;
      valuation = Valuation.bindings valuation;
      snapshot = Some (Sim.Engine.snapshot ~encode:string_of_int eng);
    }
  in
  let write_ck st ~seq ~done_ =
    ignore (Ckpt.Store.save st ~seq (make_ck ~done_))
  in
  let rec go i =
    match
      Sim.Engine.run_outcome ~backend ~iterations:(i + 1) ?until_ms:kill_at eng
    with
    | Sim.Engine.Completed stats ->
        if i + 1 < iterations then begin
          (match (store, every) with
          | Some st, Some n when (i + 1) mod n = 0 ->
              write_ck st ~seq:(i + 1) ~done_:(i + 1)
          | _ -> ());
          go (i + 1)
        end
        else print_run_stats iterations stats
    | Sim.Engine.Stalled _
      when kill_at <> None && Sim.Engine.pending_events eng > 0 ->
        (* The cap cut the run short mid-iteration: simulate the crash by
           checkpointing the live engine and exiting 3 (resumable). *)
        let st = Option.get store in
        write_ck st ~seq:(i + 1) ~done_:i;
        Format.printf
          "killed at %.3f ms in iteration %d/%d; resume with: tpdf_tool \
           resume %s@."
          (Option.get kill_at) (i + 1) iterations (Ckpt.Store.dir st);
        exit 3
    | Sim.Engine.Stalled (s, _) ->
        or_die (Error (Format.asprintf "stalled: %a" Sim.Engine.pp_stall s))
    | Sim.Engine.Budget_exceeded _ -> or_die (Error "event budget exceeded")
    | exception Sim.Engine.Error e ->
        or_die (Error (Sim.Engine.error_message e))
  in
  if from >= iterations then
    or_die
      (Error
         (Printf.sprintf "checkpoint already covers all %d iteration(s)"
            iterations))
  else go from

let cmd_run name params iterations every dir kill_at backend =
  let g = or_die (lookup_graph name) in
  let v = need_valuation g params in
  if iterations < 1 then or_die (Error "iterations must be >= 1");
  let store = open_store dir in
  check_ckpt_flags ~every ~kill_at ~store;
  with_env_pool @@ fun pool ->
  let eng = Sim.Engine.create ~graph:g ~valuation:v ?pool ~default:0 () in
  drive_run ~name ~graph:g ~valuation:v ~store ~every ~kill_at ~iterations
    ~from:0 ~backend eng

let resume_run file ~store ~every ~kill_at ~backend =
  let g = or_die (Serial.of_string file.Ckpt.graph_src) in
  let v = or_die (valuation_of file.Ckpt.valuation) in
  let name = meta_or_die file "graph" in
  let iterations = int_meta file "iterations" in
  let done_ = int_meta file "done" in
  let snap =
    match file.Ckpt.snapshot with
    | Some s -> s
    | None -> or_die (Error "checkpoint: run checkpoint carries no snapshot")
  in
  with_env_pool @@ fun pool ->
  let eng =
    match
      Sim.Engine.restore ~graph:g ~valuation:v ?pool ~default:0
        ~decode:int_of_string snap
    with
    | eng -> eng
    | exception Invalid_argument m -> or_die (Error ("checkpoint: " ^ m))
  in
  drive_run ~name ~graph:g ~valuation:v ~store ~every ~kill_at ~iterations
    ~from:done_ ~backend eng

let resume_chaos file ~store ~every ~kill_at =
  let g = or_die (Serial.of_string file.Ckpt.graph_src) in
  let v = or_die (valuation_of file.Ckpt.valuation) in
  let cfg = chaos_cfg_of_meta file in
  let sup_meta =
    List.filter_map
      (fun (k, v) ->
        let pl = String.length sup_prefix in
        if String.length k > pl && String.sub k 0 pl = sup_prefix then
          Some (String.sub k pl (String.length k - pl), v)
        else None)
      file.Ckpt.meta
  in
  let ck =
    or_die
      (Fault.Supervisor.checkpoint_of_meta ?snapshot:file.Ckpt.snapshot
         sup_meta)
  in
  run_chaos cfg g v ~store ~every ~kill_at ~resume:(Some ck) ~trace_out:None

let cmd_resume path every dir kill_at backend =
  if not (Sys.file_exists path) then
    or_die (Error (Printf.sprintf "%s: no such file or directory" path));
  let file =
    if Sys.is_directory path then
      match Ckpt.Store.latest (Ckpt.Store.open_dir path) with
      | Some (_, p, file) ->
          (* stderr, so stdout stays comparable to the uninterrupted run *)
          Printf.eprintf "resuming from %s\n%!" p;
          file
      | None ->
          or_die (Error (Printf.sprintf "%s: no valid checkpoint found" path))
    else
      match Ckpt.read path with
      | Ok file -> file
      | Error m -> or_die (Error (Printf.sprintf "%s: %s" path m))
  in
  let store = open_store dir in
  check_ckpt_flags ~every ~kill_at ~store;
  match file.Ckpt.kind with
  | "run" -> resume_run file ~store ~every ~kill_at ~backend
  | "chaos" -> resume_chaos file ~store ~every ~kill_at
  | k -> or_die (Error (Printf.sprintf "checkpoint: unknown kind %S" k))

let cmd_dot name =
  let g = or_die (lookup_graph name) in
  Format.printf "%a@." Graph.pp_dot g

let cmd_export name path =
  let g = or_die (lookup_graph name) in
  match path with
  | None -> print_string (Serial.to_string g)
  | Some p ->
      Serial.save p g;
      Printf.printf "wrote %s\n" p

(* ------------------------------------------------------------------ *)
(* Cmdliner wiring                                                     *)
(* ------------------------------------------------------------------ *)

let list_cmd =
  Cmd.v (Cmd.info "list" ~doc:"List the built-in graphs")
    Term.(const cmd_list $ const ())

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze" ~doc:"Run the static analyses on a graph")
    Term.(const cmd_analyze $ graph_arg $ param_arg)

let liveness_cmd =
  Cmd.v
    (Cmd.info "liveness" ~doc:"Check liveness (cycles, late schedules)")
    Term.(const cmd_liveness $ graph_arg $ param_arg)

let schedule_cmd =
  Cmd.v
    (Cmd.info "schedule" ~doc:"Expand the canonical period and list-schedule it")
    Term.(const cmd_schedule $ graph_arg $ param_arg $ pes_arg)

let buffers_cmd =
  let minimize_arg =
    let doc = "Also search for minimal back-pressure capacities." in
    Arg.(value & flag & info [ "minimize" ] ~doc)
  in
  Cmd.v
    (Cmd.info "buffers" ~doc:"Minimum buffer sizes under a mode scenario")
    Term.(const cmd_buffers $ graph_arg $ param_arg $ scenario_arg $ minimize_arg)

let simulate_cmd =
  let trace_arg =
    let doc = "Print a Gantt chart of the execution trace." in
    Arg.(value & flag & info [ "trace" ] ~doc)
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Execute the graph with default behaviours")
    Term.(
      const cmd_simulate $ graph_arg $ param_arg $ iterations_arg $ trace_arg
      $ backend_arg)

let throughput_cmd =
  Cmd.v
    (Cmd.info "throughput"
       ~doc:"Iteration-period bounds: max cycle ratio vs list scheduling")
    Term.(const cmd_throughput $ graph_arg $ param_arg $ pes_arg)

let openmetrics_arg =
  let doc =
    "Also write the metrics registry to $(docv) in OpenMetrics text format \
     (atomic rename, Prometheus-scrapable)."
  in
  Arg.(
    value & opt (some string) None & info [ "openmetrics" ] ~docv:"FILE" ~doc)

let profile_cmd =
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run analyses, scheduling and a mode-scenario simulation sweep \
          under the observability collector and print the metrics summary")
    Term.(
      const cmd_profile $ graph_arg $ param_arg $ pes_arg $ iterations_arg
      $ openmetrics_arg $ backend_arg)

let top_cmd =
  let iters_arg =
    let doc = "Total iterations to execute (one table frame per iteration)." in
    Arg.(value & opt int 8 & info [ "i"; "iterations" ] ~docv:"N" ~doc)
  in
  let refresh_arg =
    let doc = "Wall-clock delay between frames, in ms (0 = no delay)." in
    Arg.(value & opt int 0 & info [ "refresh-ms" ] ~docv:"MS" ~doc)
  in
  let sample_arg =
    let doc =
      "Keep one in $(docv) firing spans in the flight recorder (1 = all; \
       counters and instants are never sampled)."
    in
    Arg.(
      value
      & opt int Obs.default_sampling.Obs.span_every
      & info [ "sample" ] ~docv:"K" ~doc)
  in
  let ring_arg =
    let doc = "Flight-recorder capacity, in events." in
    Arg.(value & opt int 8192 & info [ "ring" ] ~docv:"N" ~doc)
  in
  let limit_arg =
    let doc = "Show at most $(docv) actors (busiest first)." in
    Arg.(value & opt int 20 & info [ "limit" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Execute the graph under the production telemetry collector \
          (bounded flight-recorder ring, sampled spans) and render a \
          refreshing per-actor table: firings, busy time, queue occupancy, \
          retries and degrades.  $(b,TPDF_METRICS_OUT) additionally \
          exports OpenMetrics snapshots during the run.")
    Term.(
      const cmd_top $ graph_arg $ param_arg $ iters_arg $ refresh_arg
      $ sample_arg $ ring_arg $ limit_arg $ openmetrics_arg)

let analyze_trace_cmd =
  let tolerance_arg =
    let doc =
      "Accepted relative deviation between the observed and the predicted \
       iteration period, in percent."
    in
    Arg.(value & opt float 10.0 & info [ "tolerance" ] ~docv:"PCT" ~doc)
  in
  let iters_arg =
    let doc =
      "Maximum cumulative iterations while waiting for the marginal \
       iteration cost to settle."
    in
    Arg.(value & opt int 16 & info [ "max-iterations" ] ~docv:"N" ~doc)
  in
  let path_arg =
    let doc = "Print every span of the reconstructed critical path." in
    Arg.(value & flag & info [ "show-path" ] ~doc)
  in
  Cmd.v
    (Cmd.info "analyze-trace"
       ~doc:
         "Execute every mode scenario, reconstruct the observed critical \
          path and iteration period from the recorded firing spans, and \
          diff them against the scheduler analyses: exits 2 when the \
          observed period beats the proven MCR bound (an analysis bug) and \
          1 when it deviates from the throughput prediction beyond \
          $(b,--tolerance).")
    Term.(
      const cmd_analyze_trace $ graph_arg $ param_arg $ tolerance_arg
      $ iters_arg $ path_arg)

let trace_cmd =
  let format_arg =
    let doc = "Output format: $(b,chrome) (trace-event JSON for Perfetto / \
               chrome://tracing), $(b,csv) or $(b,summary)." in
    Arg.(
      value
      & opt (enum [ ("chrome", `Chrome); ("csv", `Csv); ("summary", `Summary) ]) `Chrome
      & info [ "format"; "f" ] ~docv:"FORMAT" ~doc)
  in
  let output_arg =
    let doc = "Destination file (stdout when omitted)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Record an instrumented run (analyses + mode-scenario simulation) \
          and export the event stream")
    Term.(
      const cmd_trace $ graph_arg $ param_arg $ pes_arg $ iterations_arg
      $ format_arg $ output_arg $ backend_arg)

let ckpt_every_arg =
  let doc =
    "Write a checkpoint after every $(docv)-th completed iteration \
     (needs $(b,--checkpoint-dir))."
  in
  Arg.(value & opt (some int) None & info [ "checkpoint-every" ] ~docv:"N" ~doc)

let ckpt_dir_arg =
  let doc = "Directory for numbered checkpoint files (created if missing)." in
  Arg.(
    value & opt (some string) None & info [ "checkpoint-dir" ] ~docv:"DIR" ~doc)

let kill_at_arg =
  let doc =
    "Simulate a crash at virtual instant $(docv) ms: write a checkpoint \
     (mid-iteration if needed) and exit 3."
  in
  Arg.(value & opt (some float) None & info [ "kill-at-ms" ] ~docv:"MS" ~doc)

let run_cmd =
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Execute the graph like $(b,simulate), with crash-consistent \
          checkpoints at iteration boundaries and an optional simulated \
          crash; a killed run exits 3 and continues under $(b,resume) with \
          output byte-identical to the uninterrupted run.")
    Term.(
      const cmd_run $ graph_arg $ param_arg $ iterations_arg $ ckpt_every_arg
      $ ckpt_dir_arg $ kill_at_arg $ backend_arg)

let resume_cmd =
  let path_arg =
    let doc =
      "Checkpoint file, or a checkpoint directory (the newest file that \
       still passes its checksum wins)."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CKPT" ~doc)
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:
         "Continue a killed $(b,run) or $(b,chaos) execution from a \
          checkpoint.  The completed output matches the uninterrupted run \
          byte for byte; $(b,--kill-at-ms) may kill it again later.")
    Term.(
      const cmd_resume $ path_arg $ ckpt_every_arg $ ckpt_dir_arg $ kill_at_arg
      $ backend_arg)

let chaos_cmd =
  let seed_arg =
    let doc = "PRNG seed for the deterministic fault plan." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let faults_arg =
    let doc =
      "Fault specs, comma-separated $(b,KIND:TARGET:PROB[:ARG]) items with \
       kinds $(b,fail), $(b,overrun), $(b,jitter), $(b,corrupt), \
       $(b,ctrl-loss); $(b,*) targets every actor.  E.g. \
       $(b,overrun:QAM:0.8:8,fail:FFT:0.2)."
    in
    Arg.(value & opt (some string) None & info [ "faults" ] ~docv:"SPEC" ~doc)
  in
  let deadline_arg =
    let parse s =
      match String.split_on_char '=' s with
      | [ a; ms ] -> Ok (a, ms)
      | _ -> Error (`Msg "expected actor=ms")
    in
    let print ppf (a, ms) = Format.fprintf ppf "%s=%s" a ms in
    let doc = "Per-firing deadline for $(docv) in ms (repeatable)." in
    Arg.(
      value
      & opt_all (Arg.conv (parse, print)) []
      & info [ "deadline" ] ~docv:"ACTOR=MS" ~doc)
  in
  let retries_arg =
    let doc = "Retry budget per firing." in
    Arg.(value & opt int 2 & info [ "retries" ] ~docv:"N" ~doc)
  in
  let backoff_arg =
    let doc = "Virtual-time backoff per retry, in ms." in
    Arg.(value & opt float 0.5 & info [ "backoff" ] ~docv:"MS" ~doc)
  in
  let degrade_arg =
    let doc =
      "Consecutive deadline misses or skips before a kernel is degraded to \
       its fallback mode."
    in
    Arg.(value & opt int 3 & info [ "degrade-after" ] ~docv:"K" ~doc)
  in
  let restarts_arg =
    let doc =
      "Failed-iteration restart budget: roll the iteration back, escalate \
       to every fallback mode and retry, up to $(docv) times."
    in
    Arg.(value & opt int 0 & info [ "max-restarts" ] ~docv:"N" ~doc)
  in
  let trace_arg =
    let doc = "Also write the Chrome trace of the run to $(docv)." in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Seeded fault-injection run under the supervisor: bounded retry, \
          skip-and-substitute, deadline watchdog, mode fallback and \
          restart-from-checkpoint.  Exits 1 when the run does not recover, \
          3 when $(b,--kill-at-ms) cut it short (resumable).")
    Term.(
      const cmd_chaos $ graph_arg $ param_arg $ seed_arg $ faults_arg
      $ iterations_arg $ scenario_arg $ deadline_arg $ retries_arg
      $ backoff_arg $ degrade_arg $ restarts_arg $ trace_arg
      $ ckpt_every_arg $ ckpt_dir_arg $ kill_at_arg)

(* ---------- serve / client ---------- *)

module Serve = Tpdf_serve

let json_line fields = Serve.Json.to_string (Serve.Json.Obj fields)

(* Peer dialing for live migration: each dial is one resilient logical
   request through the same retry/backoff client the CLI uses. *)
let mk_dial () =
  let dial_op = ref 0 in
  fun addr line ->
    match Serve.Server.parse_endpoint addr with
    | Error e -> Error e
    | Ok ep ->
        let tr = Serve.Client.socket_transport ep in
        let op = !dial_op in
        Stdlib.incr dial_op;
        (Serve.Client.call Serve.Client.default_policy tr ~op line)
          .Serve.Client.response

let cmd_serve socket state_dir max_tenants max_resident capacity max_queue
    max_advance checkpoint_every request_timeout_ms retry_after_ms
    quarantine_skips default_budget metrics_out rid_cache crash_at netfault
    netfault_seed max_conns max_line_bytes read_deadline_ms conn_bytes conn_ms
    drain =
  let endpoint = or_die (Serve.Server.parse_endpoint socket) in
  if drain then begin
    (* Graceful drain of the daemon already running on SOCKET: persist
       every tenant, refuse new submissions, stop once in-flight
       requests are answered (nginx -s quit style). *)
    let tr = Serve.Client.socket_transport endpoint in
    let line =
      json_line
        [
          ("op", Serve.Json.String "drain"); ("stop", Serve.Json.Bool true);
        ]
    in
    let out = Serve.Client.call Serve.Client.default_policy tr ~op:0 line in
    print_endline (or_die out.Serve.Client.response)
  end
  else begin
    let netfault =
      match netfault with
      | None -> Serve.Netfault.none
      | Some spec ->
          Serve.Netfault.make ~seed:netfault_seed
            (or_die (Serve.Netfault.parse_specs spec))
    in
    let limits =
      {
        Serve.Server.max_conns;
        max_line_bytes;
        read_deadline_ms;
        conn_bytes;
        conn_ms;
      }
    in
    let cfg =
      {
        Serve.Daemon.state_dir;
        max_tenants;
        max_resident;
        capacity;
        max_queue;
        max_advance;
        checkpoint_every;
        request_timeout_ms;
        retry_after_ms;
        quarantine_skips;
        default_budget;
        metrics_out;
        rid_cache;
        crash_at;
      }
    in
    with_env_pool @@ fun pool ->
    let daemon = or_die (Serve.Daemon.create ?pool ~dial:(mk_dial ()) cfg) in
    Printf.eprintf "tpdf_tool: serving on %s\n%!" socket;
    match Serve.Server.serve ~limits ~netfault daemon endpoint with
    | r -> or_die r
    | exception Serve.Daemon.Injected_crash point ->
        (* Make the injected crash a *real* kill -9: no atexit, no
           flushing, no final persist — exactly what the state
           directory must survive. *)
        Printf.eprintf "tpdf_tool: injected crash at %s\n%!" point;
        Unix.kill (Unix.getpid ()) Sys.sigkill
  end

let cmd_client socket request timeout_ms deadline_ms retries backoff_ms
    backoff_max_ms seed rid drain stop migrate migrate_to resolve =
  let endpoint = or_die (Serve.Server.parse_endpoint socket) in
  let policy =
    { Serve.Client.deadline_ms; retries; backoff_ms; backoff_max_ms; seed }
  in
  let send ~op line =
    let line =
      match rid with
      | Some r -> Serve.Client.ensure_rid line ~rid:r
      | None -> line
    in
    let tr = Serve.Client.socket_transport endpoint in
    let out = Serve.Client.call policy tr ~op line in
    print_endline (or_die out.Serve.Client.response)
  in
  match (drain, migrate, resolve, request) with
  | true, _, _, _ ->
      send ~op:0
        (json_line
           [
             ("op", Serve.Json.String "drain"); ("stop", Serve.Json.Bool stop);
           ])
  | _, Some name, _, _ ->
      let to_addr =
        match migrate_to with
        | Some a -> a
        | None -> or_die (Error "--migrate requires --to ADDR")
      in
      send ~op:0
        (json_line
           [
             ("op", Serve.Json.String "migrate");
             ("name", Serve.Json.String name);
             ("to", Serve.Json.String to_addr);
             ("from", Serve.Json.String socket);
           ])
  | _, _, Some name, _ ->
      send ~op:0
        (json_line
           [
             ("op", Serve.Json.String "resolve");
             ("name", Serve.Json.String name);
           ])
  | _, _, _, Some line -> send ~op:0 line
  | _ ->
      or_die
        (Serve.Server.session endpoint ~connect_timeout_ms:timeout_ms stdin
           stdout)

let socket_arg =
  let doc =
    "Daemon endpoint: a Unix-domain socket path, or $(b,HOST:PORT) for TCP."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SOCKET" ~doc)

let serve_cmd =
  let dc = Serve.Daemon.default_config in
  let state_dir_arg =
    let doc =
      "State directory for crash-consistent tenant checkpoints and the fleet \
       manifest; without it the daemon is memory-only (no restart recovery, \
       no eviction)."
    in
    Arg.(value & opt (some string) None & info [ "state-dir" ] ~docv:"DIR" ~doc)
  in
  let max_tenants_arg =
    let doc = "Registry size cap; further submissions are shed." in
    Arg.(
      value
      & opt int dc.Serve.Daemon.max_tenants
      & info [ "max-tenants" ] ~docv:"N" ~doc)
  in
  let max_resident_arg =
    let doc =
      "Keep at most $(docv) tenants hot in memory, evicting the coldest to \
       their checkpoints (needs $(b,--state-dir)); 0 keeps everything hot."
    in
    Arg.(
      value
      & opt int dc.Serve.Daemon.max_resident
      & info [ "max-resident" ] ~docv:"N" ~doc)
  in
  let capacity_arg =
    let doc =
      "Fleet capacity in firings per iteration: tenants whose summed \
       per-iteration cost would exceed it are queued; 0 means unlimited."
    in
    Arg.(
      value
      & opt int dc.Serve.Daemon.capacity
      & info [ "capacity" ] ~docv:"FIRINGS" ~doc)
  in
  let max_queue_arg =
    let doc = "Admission queue bound; a full queue sheds with $(b,overloaded)." in
    Arg.(
      value
      & opt int dc.Serve.Daemon.max_queue
      & info [ "max-queue" ] ~docv:"N" ~doc)
  in
  let max_advance_arg =
    let doc = "Largest iteration count accepted in one advance request." in
    Arg.(
      value
      & opt int dc.Serve.Daemon.max_advance
      & info [ "max-advance" ] ~docv:"N" ~doc)
  in
  let checkpoint_every_arg =
    let doc = "Persist a tenant after every $(docv)-th new iteration." in
    Arg.(
      value
      & opt int dc.Serve.Daemon.checkpoint_every
      & info [ "checkpoint-every" ] ~docv:"N" ~doc)
  in
  let timeout_arg =
    let doc =
      "Wall-clock budget per advance request: a longer advance returns \
       partial progress plus a retry hint; 0 disables the cut."
    in
    Arg.(
      value
      & opt float dc.Serve.Daemon.request_timeout_ms
      & info [ "request-timeout-ms" ] ~docv:"MS" ~doc)
  in
  let retry_after_arg =
    let doc = "Backoff hint attached to shed and timeout responses." in
    Arg.(
      value
      & opt int dc.Serve.Daemon.retry_after_ms
      & info [ "retry-after-ms" ] ~docv:"MS" ~doc)
  in
  let quarantine_arg =
    let doc =
      "Quarantine a tenant once its cumulative substituted firings reach \
       $(docv); 0 quarantines only unrecovered runs."
    in
    Arg.(
      value
      & opt int dc.Serve.Daemon.quarantine_skips
      & info [ "quarantine-skips" ] ~docv:"N" ~doc)
  in
  let budget_arg =
    let doc =
      "Default per-tenant admission budget in firings per iteration \
       (overridable per submission)."
    in
    Arg.(
      value & opt (some int) None & info [ "budget" ] ~docv:"FIRINGS" ~doc)
  in
  let metrics_out_arg =
    let doc = "Rewrite an OpenMetrics snapshot of the fleet to $(docv) \
               atomically after every request." in
    Arg.(
      value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)
  in
  let rid_cache_arg =
    let doc =
      "Idempotency-key cache capacity: responses to requests carrying a \
       $(b,rid) field are replayed byte-identically on retry instead of \
       re-executed; 0 disables."
    in
    Arg.(
      value
      & opt int dc.Serve.Daemon.rid_cache
      & info [ "rid-cache" ] ~docv:"N" ~doc)
  in
  let crash_at_arg =
    let doc =
      "Fault injection for migration tests: SIGKILL this daemon the moment \
       the named migration point (e.g. $(b,src_after_commit), \
       $(b,dst_after_prepare)) is reached."
    in
    Arg.(value & opt (some string) None & info [ "kill-at" ] ~docv:"POINT" ~doc)
  in
  let netfault_arg =
    let doc =
      "Inject seeded wire faults into every accepted connection: \
       comma-separated $(b,KIND:PROB[:ARG]) with kinds $(b,shortread), \
       $(b,shortwrite), $(b,tear), $(b,stall), $(b,disconnect), $(b,delay), \
       $(b,dup).  E.g. $(b,tear:0.01,disconnect:0.005,shortread:0.2:7)."
    in
    Arg.(value & opt (some string) None & info [ "netfault" ] ~docv:"SPEC" ~doc)
  in
  let netfault_seed_arg =
    let doc = "Seed for the $(b,--netfault) plan (bit-reproducible)." in
    Arg.(value & opt int 0 & info [ "netfault-seed" ] ~docv:"N" ~doc)
  in
  let dl = Serve.Server.default_limits in
  let max_conns_arg =
    let doc =
      "Accepted-connection cap; an overflowing connection gets one \
       $(b,overloaded) error line and is closed.  0 means unlimited."
    in
    Arg.(
      value
      & opt int dl.Serve.Server.max_conns
      & info [ "max-conns" ] ~docv:"N" ~doc)
  in
  let max_line_bytes_arg =
    let doc =
      "Longest request line accepted (terminated or not): longer frames get \
       a $(b,too_large) error and the connection is closed, bounding \
       per-connection buffering.  0 means unlimited."
    in
    Arg.(
      value
      & opt int dl.Serve.Server.max_line_bytes
      & info [ "max-line-bytes" ] ~docv:"BYTES" ~doc)
  in
  let read_deadline_arg =
    let doc =
      "Cut a connection that has sent part of a frame and then stalled for \
       $(docv) ms (slow-loris defence); 0 never cuts."
    in
    Arg.(
      value
      & opt float dl.Serve.Server.read_deadline_ms
      & info [ "read-deadline-ms" ] ~docv:"MS" ~doc)
  in
  let conn_bytes_arg =
    let doc =
      "Per-connection lifetime inbound byte budget; 0 means unlimited."
    in
    Arg.(
      value
      & opt int dl.Serve.Server.conn_bytes
      & info [ "conn-bytes" ] ~docv:"BYTES" ~doc)
  in
  let conn_ms_arg =
    let doc = "Per-connection lifetime wall budget in ms; 0 means unlimited." in
    Arg.(
      value
      & opt float dl.Serve.Server.conn_ms
      & info [ "conn-ms" ] ~docv:"MS" ~doc)
  in
  let drain_arg =
    let doc =
      "Do not start a daemon: gracefully drain the one already running on \
       $(i,SOCKET) — persist every tenant, refuse new submissions, stop \
       after in-flight requests are answered."
    in
    Arg.(value & flag & info [ "drain" ] ~doc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the multi-tenant streaming daemon: host many TPDF graph \
          instances over newline-delimited JSON on $(i,SOCKET), with \
          admission control (rate-safety, boundedness and MCR checks at \
          submit time), FIFO queueing and load shedding, per-tenant fault \
          isolation with quarantine, and crash-consistent checkpoints — \
          $(b,kill -9) plus a restart on the same $(b,--state-dir) resumes \
          every tenant byte-identically.  Live migration ($(b,tpdf_tool \
          client --migrate)) hands a tenant to a peer daemon through a \
          two-phase checksummed checkpoint transfer that survives \
          $(b,kill -9) of either side.  $(b,TPDF_DOMAINS) shards \
          $(b,tick) batches across a domain pool.")
    Term.(
      const cmd_serve $ socket_arg $ state_dir_arg $ max_tenants_arg
      $ max_resident_arg $ capacity_arg $ max_queue_arg $ max_advance_arg
      $ checkpoint_every_arg $ timeout_arg $ retry_after_arg $ quarantine_arg
      $ budget_arg $ metrics_out_arg $ rid_cache_arg $ crash_at_arg
      $ netfault_arg $ netfault_seed_arg $ max_conns_arg $ max_line_bytes_arg
      $ read_deadline_arg $ conn_bytes_arg $ conn_ms_arg $ drain_arg)

let client_cmd =
  let request_arg =
    let doc =
      "Send this single JSON request and print the response instead of \
       running a scripted session from stdin."
    in
    Arg.(
      value & opt (some string) None & info [ "e"; "request" ] ~docv:"JSON" ~doc)
  in
  let timeout_arg =
    let doc =
      "Keep retrying the initial connect for up to $(docv) ms, so scripts \
       can race the daemon's startup."
    in
    Arg.(value & opt float 5000.0 & info [ "connect-timeout-ms" ] ~docv:"MS" ~doc)
  in
  let pc = Serve.Client.default_policy in
  let deadline_arg =
    let doc = "Per-attempt response deadline in ms." in
    Arg.(
      value
      & opt float pc.Serve.Client.deadline_ms
      & info [ "deadline-ms" ] ~docv:"MS" ~doc)
  in
  let retries_arg =
    let doc =
      "Re-send a request up to $(docv) times after transport failures \
       (timeouts, resets, torn responses); well-formed error responses are \
       never retried."
    in
    Arg.(
      value
      & opt int pc.Serve.Client.retries
      & info [ "retries" ] ~docv:"N" ~doc)
  in
  let backoff_arg =
    let doc = "Base backoff between attempts in ms (exponential, jittered)." in
    Arg.(
      value
      & opt float pc.Serve.Client.backoff_ms
      & info [ "backoff-ms" ] ~docv:"MS" ~doc)
  in
  let backoff_max_arg =
    let doc = "Backoff cap in ms, before jitter." in
    Arg.(
      value
      & opt float pc.Serve.Client.backoff_max_ms
      & info [ "backoff-max-ms" ] ~docv:"MS" ~doc)
  in
  let seed_arg =
    let doc = "Seed of the deterministic backoff-jitter stream." in
    Arg.(value & opt int pc.Serve.Client.seed & info [ "seed" ] ~docv:"N" ~doc)
  in
  let rid_arg =
    let doc =
      "Attach this idempotency key to the request (a $(b,rid) field): the \
       daemon replays the cached response byte-identically if a retry \
       re-delivers the request."
    in
    Arg.(value & opt (some string) None & info [ "rid" ] ~docv:"ID" ~doc)
  in
  let drain_arg =
    let doc = "Send a $(b,drain) request instead of reading stdin." in
    Arg.(value & flag & info [ "drain" ] ~doc)
  in
  let stop_arg =
    let doc = "With $(b,--drain): also stop the daemon once drained." in
    Arg.(value & flag & info [ "stop" ] ~doc)
  in
  let migrate_arg =
    let doc =
      "Live-migrate tenant $(docv) from the daemon on $(i,SOCKET) to the \
       daemon at $(b,--to): two-phase checkpoint handoff, crash-safe on \
       both sides."
    in
    Arg.(
      value & opt (some string) None & info [ "migrate" ] ~docv:"TENANT" ~doc)
  in
  let to_arg =
    let doc = "Destination daemon endpoint for $(b,--migrate)." in
    Arg.(value & opt (some string) None & info [ "to" ] ~docv:"ADDR" ~doc)
  in
  let resolve_arg =
    let doc =
      "Finish an interrupted migration of tenant $(docv) from whichever \
       side's persisted state survives."
    in
    Arg.(
      value & opt (some string) None & info [ "resolve" ] ~docv:"TENANT" ~doc)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Resilient client for $(b,tpdf_tool serve): read JSON request lines \
          from stdin (blank lines and $(b,#) comments skipped), send each to \
          $(i,SOCKET), and print one response line per request.  Single \
          requests ($(b,-e), $(b,--drain), $(b,--migrate), $(b,--resolve)) \
          ride the deadline/retry/backoff transport and may carry an \
          idempotency key.")
    Term.(
      const cmd_client $ socket_arg $ request_arg $ timeout_arg $ deadline_arg
      $ retries_arg $ backoff_arg $ backoff_max_arg $ seed_arg $ rid_arg
      $ drain_arg $ stop_arg $ migrate_arg $ to_arg $ resolve_arg)

let dot_cmd =
  Cmd.v (Cmd.info "dot" ~doc:"Emit Graphviz") Term.(const cmd_dot $ graph_arg)

let export_cmd =
  let file_arg =
    let doc = "Destination file (stdout when omitted)." in
    Arg.(value & pos 1 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  Cmd.v
    (Cmd.info "export" ~doc:"Serialize a graph to the textual .tpdf format")
    Term.(const cmd_export $ graph_arg $ file_arg)

(* The one exit-code contract shared by every subcommand; scripts (and
   ci/check.sh) key off these numbers, so keep the table in sync with
   README.md. *)
let exit_table =
  [
    Cmd.Exit.info 0 ~doc:"on success.";
    Cmd.Exit.info 1
      ~doc:
        "on a runtime failure: invalid input, an analysis that rejects the \
         graph, an observed/predicted mismatch beyond tolerance, or a chaos \
         run that did not recover.";
    Cmd.Exit.info 2
      ~doc:
        "when an observed execution beats a proven analysis bound — an \
         analysis bug, never an input error.";
    Cmd.Exit.info 3
      ~doc:
        "when $(b,--kill-at-ms) cut a checkpointed run short; $(b,tpdf_tool \
         resume) continues it byte-identically.";
    Cmd.Exit.info Cmd.Exit.cli_error ~doc:"on command line parsing errors.";
    Cmd.Exit.info Cmd.Exit.internal_error
      ~doc:"on unexpected internal errors (bugs).";
  ]

let () =
  let info =
    Cmd.info "tpdf_tool" ~version:"1.0.0" ~exits:exit_table
      ~doc:"Transaction Parameterized Dataflow analyses (DATE 2016 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            analyze_cmd;
            liveness_cmd;
            schedule_cmd;
            buffers_cmd;
            simulate_cmd;
            run_cmd;
            resume_cmd;
            throughput_cmd;
            chaos_cmd;
            profile_cmd;
            trace_cmd;
            top_cmd;
            analyze_trace_cmd;
            dot_cmd;
            export_cmd;
            serve_cmd;
            client_cmd;
          ]))
