open Tpdf_param
open Tpdf_util
module Csdf = Tpdf_csdf
module Digraph = Tpdf_graph.Digraph
module Obs = Tpdf_obs.Obs
module Metrics = Tpdf_obs.Metrics

type cycle_report = {
  members : string list;
  local_counts : (string * int) list;
  local_schedule : (string * int) list option;
}

type report = {
  valuation : Valuation.t;
  cycles : cycle_report list;
  live : bool;
  stuck : string list;
}

let default_samples g =
  match Graph.parameters g with
  | [] -> [ Valuation.empty ]
  | params ->
      List.map
        (fun v -> Valuation.of_list (List.map (fun p -> (p, v)) params))
        [ 1; 2; 3; 7 ]

let internal_channels skel members =
  let mem a = List.mem a members in
  List.filter_map
    (fun (e : (string, Csdf.Graph.channel) Digraph.edge) ->
      if mem e.src && mem e.dst then Some e.id else None)
    (Csdf.Graph.channels skel)

let check_cycle conc members =
  let skel = Csdf.Concrete.graph conc in
  let members = List.sort compare members in
  let q_g =
    List.fold_left
      (fun acc a ->
        Intmath.gcd acc (Csdf.Concrete.q conc a / Csdf.Graph.phases skel a))
      0 members
  in
  let local_counts =
    List.map (fun a -> (a, Csdf.Concrete.q conc a / q_g)) members
  in
  let internal = internal_channels skel members in
  let outcome =
    Csdf.Schedule.run ~policy:Csdf.Schedule.Late_first ~targets:local_counts
      ~active_channel:(fun id -> List.mem id internal)
      conc
  in
  let local_schedule =
    match outcome with
    | Csdf.Schedule.Complete t -> Some (Csdf.Schedule.compress t.firings)
    | Csdf.Schedule.Deadlock _ -> None
  in
  { members; local_counts; local_schedule }

let check ?(obs = Obs.disabled) g valuation =
  Obs.wall_span obs "liveness.check" (fun () ->
      let skel = Graph.skeleton g in
      let conc = Csdf.Concrete.make skel valuation in
      let cycles =
        List.map (check_cycle conc)
          (Digraph.nontrivial_sccs (Csdf.Graph.digraph skel))
      in
      (* Whole-graph schedule run as the final word: a maximal data-driven
         execution either completes the iteration or exhibits the deadlock. *)
      let live, stuck, fired =
        match Csdf.Schedule.run ~policy:Csdf.Schedule.Late_first conc with
        | Csdf.Schedule.Complete t -> (true, [], List.length t.Csdf.Schedule.firings)
        | Csdf.Schedule.Deadlock { stuck; fired; _ } ->
            (false, stuck, List.length fired)
      in
      if Obs.enabled obs then begin
        let m = Obs.metrics obs in
        Metrics.incr m "liveness.checks";
        Metrics.incr ~by:(List.length cycles) m "liveness.cycles_checked";
        Metrics.incr ~by:fired m "liveness.schedule_firings";
        if not live then Metrics.incr m "liveness.deadlocks"
      end;
      { valuation; cycles; live; stuck })

let check_samples g vs = List.map (check g) vs

let is_live g v = (check g v).live

let fresh_name skel base =
  if not (Csdf.Graph.mem_actor skel base) then base
  else
    let rec go i =
      let name = Printf.sprintf "%s_%d" base i in
      if Csdf.Graph.mem_actor skel name then go (i + 1) else name
    in
    go 1

let cluster_cycle g rep members =
  let skel = Graph.skeleton g in
  let q_g = Symbolic.local_scaling rep members in
  let in_cycle a = List.mem a members in
  let local a =
    Frac.div
      (Frac.of_poly (List.assoc a rep.Csdf.Repetition.q))
      (Frac.of_poly q_g)
  in
  let omega = fresh_name skel "Omega" in
  let clustered = Csdf.Graph.create () in
  List.iter
    (fun a ->
      if not (in_cycle a) then
        Csdf.Graph.add_actor clustered a ~phases:(Csdf.Graph.phases skel a))
    (Csdf.Graph.actors skel);
  Csdf.Graph.add_actor clustered omega ~phases:1;
  let exception Failed of string in
  let adjusted what rates a =
    match Symbolic.cumulative_symbolic rates (local a) with
    | Some f -> (
        match Frac.to_poly f with
        | Some p -> [| p |]
        | None ->
            raise
              (Failed
                 (Format.asprintf
                    "clustered %s rate of %s is not polynomial: %a" what a
                    Frac.pp f)))
    | None ->
        raise
          (Failed
             (Format.asprintf
                "cannot express %s rate of %s over %a firings symbolically"
                what a Frac.pp (local a)))
  in
  match
    List.iter
      (fun (e : (string, Csdf.Graph.channel) Digraph.edge) ->
        let src_in = in_cycle e.src and dst_in = in_cycle e.dst in
        if src_in && dst_in then () (* internal: absorbed by Omega *)
        else
          let src, prod =
            if src_in then (omega, adjusted "production" e.label.prod e.src)
            else (e.src, e.label.prod)
          in
          let dst, cons =
            if dst_in then (omega, adjusted "consumption" e.label.cons e.dst)
            else (e.dst, e.label.cons)
          in
          ignore
            (Csdf.Graph.add_channel clustered ~src ~dst ~prod ~cons
               ~init:e.label.init ()))
      (Csdf.Graph.channels skel)
  with
  | () -> Ok clustered
  | exception Failed msg -> Error msg

let pp_report ppf r =
  Format.fprintf ppf "@[<v>liveness under %a: %s@," Valuation.pp r.valuation
    (if r.live then "live" else "DEADLOCK");
  List.iter
    (fun c ->
      Format.fprintf ppf "  cycle {%s}: "
        (String.concat ", " c.members);
      (match c.local_schedule with
      | Some s ->
          Format.fprintf ppf "local schedule %a@," Csdf.Schedule.pp_compressed s
      | None -> Format.fprintf ppf "locally deadlocked@,"))
    r.cycles;
  if not r.live then
    Format.fprintf ppf "  stuck actors: %s@," (String.concat ", " r.stuck);
  Format.fprintf ppf "@]"
