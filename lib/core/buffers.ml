module Csdf = Tpdf_csdf

type scenario = (string * string) list

let active_channels g scenario =
  let mode_of kernel =
    match List.assoc_opt kernel scenario with
    | None -> None
    | Some name -> (
        match Graph.find_mode g kernel name with
        | m -> Some m
        | exception Not_found ->
            invalid_arg
              (Printf.sprintf "Buffers.active_channels: kernel %s has no mode %s"
                 kernel name))
  in
  (* Resolve once per scenario, not per query. *)
  let cache = Hashtbl.create 16 in
  List.iter
    (fun (k, _) ->
      if not (Csdf.Graph.mem_actor (Graph.skeleton g) k) then
        invalid_arg
          (Printf.sprintf "Buffers.active_channels: unknown kernel %s" k);
      Hashtbl.replace cache k (mode_of k))
    scenario;
  fun id ->
    Graph.is_control_channel g id
    ||
    let e = Csdf.Graph.channel (Graph.skeleton g) id in
    let src_ok =
      match Hashtbl.find_opt cache e.src with
      | Some (Some m) -> Mode.output_may_be_active m id
      | _ -> true
    in
    let dst_ok =
      match Hashtbl.find_opt cache e.dst with
      | Some (Some m) -> Mode.input_statically_active m id
      | _ -> true
    in
    src_ok && dst_ok

let analyze ?(policy = Csdf.Schedule.Min_buffer) g valuation ~scenario =
  let skel = Graph.skeleton g in
  let conc = Csdf.Concrete.make skel valuation in
  let act = active_channels g scenario in
  match Csdf.Schedule.run ~policy ~active_channel:act conc with
  | Csdf.Schedule.Deadlock { stuck; _ } ->
      failwith
        (Printf.sprintf "Tpdf.Buffers.analyze: deadlock (stuck: %s)"
           (String.concat ", " stuck))
  | Csdf.Schedule.Complete t ->
      {
        Csdf.Buffers.per_channel = t.max_occupancy;
        total = List.fold_left (fun acc (_, n) -> acc + n) 0 t.max_occupancy;
      }

let worst_case ?policy g valuation ~scenarios =
  if scenarios = [] then invalid_arg "Buffers.worst_case: no scenarios";
  let reports = List.map (fun s -> analyze ?policy g valuation ~scenario:s) scenarios in
  let all_channels =
    List.map
      (fun (e : (string, Csdf.Graph.channel) Tpdf_graph.Digraph.edge) -> e.id)
      (Csdf.Graph.channels (Graph.skeleton g))
  in
  let per_channel =
    List.map
      (fun id ->
        let cap =
          List.fold_left
            (fun acc (r : Csdf.Buffers.report) ->
              match List.assoc_opt id r.Csdf.Buffers.per_channel with
              | Some n -> max acc n
              | None -> acc)
            0 reports
        in
        (id, cap))
      all_channels
  in
  {
    Csdf.Buffers.per_channel;
    total = List.fold_left (fun acc (_, n) -> acc + n) 0 per_channel;
  }

let csdf_equivalent ?(policy = Csdf.Schedule.Min_buffer) g valuation =
  analyze ~policy g valuation ~scenario:[]

let capacity_hint ~cons ~prod ~init =
  let burst = Array.fold_left max 0 in
  max 8 (init + burst prod + burst cons)
