open Tpdf_param
module Csdf = Tpdf_csdf
module Digraph = Tpdf_graph.Digraph

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let pp_rates ppf seq =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Poly.pp)
    (Array.to_list seq)

let kind_keyword = function
  | Graph.Plain_kernel -> None
  | Graph.Select_duplicate -> Some "select_duplicate"
  | Graph.Transaction -> Some "transaction"

let chan_name id = Printf.sprintf "e%d" id

(* Shortest decimal rendering that parses back to the same float —
   "%g" alone loses precision past 6 significant digits, which would
   make [of_string (to_string g)] drift on clock periods (checkpoint
   files embed graphs in this syntax, so drift becomes a restore bug). *)
let float_repr f =
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let pp_mode g ppf (m : Mode.t) =
  let pp_ids ppf ids =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
      (fun ppf id -> Format.pp_print_string ppf (chan_name id))
      ppf ids
  in
  ignore g;
  Format.fprintf ppf "%s" m.Mode.name;
  (match m.Mode.inputs with
  | Mode.All_inputs -> ()
  | Mode.Highest_priority_available -> Format.fprintf ppf " inputs(priority)"
  | Mode.Input_subset ids -> Format.fprintf ppf " inputs(%a)" pp_ids ids);
  (match m.Mode.outputs with
  | Mode.All_outputs -> ()
  | Mode.Output_subset ids -> Format.fprintf ppf " outputs(%a)" pp_ids ids);
  Format.fprintf ppf ";"

let to_string g =
  let buf = Buffer.create 512 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "@[<v>tpdf graph {@,";
  let skel = Graph.skeleton g in
  List.iter
    (fun a ->
      let phases = Csdf.Graph.phases skel a in
      let phases_attr = if phases > 1 then Printf.sprintf " phases=%d" phases else "" in
      match Graph.kind g a with
      | Graph.Kernel k ->
          let kind_attr =
            match kind_keyword k with
            | None -> ""
            | Some kw -> Printf.sprintf " kind=%s" kw
          in
          Format.fprintf ppf "  kernel %s%s%s;@," a phases_attr kind_attr
      | Graph.Control { clock_period_ms = None } ->
          Format.fprintf ppf "  control %s%s;@," a phases_attr
      | Graph.Control { clock_period_ms = Some p } ->
          Format.fprintf ppf "  control %s%s clock=%s;@," a phases_attr
            (float_repr p))
    (Graph.actors g);
  List.iter
    (fun (e : (string, Csdf.Graph.channel) Digraph.edge) ->
      let kw = if Graph.is_control_channel g e.id then "ctrl   " else "channel" in
      Format.fprintf ppf "  %s %s = %s %a -> %a %s" kw (chan_name e.id) e.src
        pp_rates e.label.prod pp_rates e.label.cons e.dst;
      if e.label.init > 0 then Format.fprintf ppf " init=%d" e.label.init;
      let pr = Graph.priority g e.id in
      if pr <> 0 then Format.fprintf ppf " priority=%d" pr;
      Format.fprintf ppf ";@,")
    (Csdf.Graph.channels skel);
  List.iter
    (fun a ->
      match Graph.modes g a with
      | [ m ] when m == Mode.default -> ()
      | [] -> ()
      | ms ->
          Format.fprintf ppf "  modes %s {" a;
          List.iter (fun m -> Format.fprintf ppf " %a" (pp_mode g) m) ms;
          Format.fprintf ppf " }@,")
    (Graph.kernels g);
  Format.fprintf ppf "}@]@.";
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type token =
  | Ident of string
  | Number of string
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Semi
  | Comma
  | Eq
  | Arrow
  | Star
  | Op of char

exception Err of int * string

let tokenize src =
  let tokens = ref [] in
  let line = ref 1 in
  let n = String.length src in
  let i = ref 0 in
  let push t = tokens := (!line, t) :: !tokens in
  let ident_char = function
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
    | _ -> false
  in
  while !i < n do
    (match src.[!i] with
    | '\n' ->
        incr line;
        incr i
    | ' ' | '\t' | '\r' -> incr i
    | '#' ->
        while !i < n && src.[!i] <> '\n' do
          incr i
        done
    | '{' -> push Lbrace; incr i
    | '}' -> push Rbrace; incr i
    | '(' -> push Lparen; incr i
    | ')' -> push Rparen; incr i
    | '[' -> push Lbracket; incr i
    | ']' -> push Rbracket; incr i
    | ';' -> push Semi; incr i
    | ',' -> push Comma; incr i
    | '=' -> push Eq; incr i
    | '*' -> push Star; incr i
    | '-' ->
        if !i + 1 < n && src.[!i + 1] = '>' then begin
          push Arrow;
          i := !i + 2
        end
        else begin
          push (Op '-');
          incr i
        end
    | ('+' | '/' | '^') as c ->
        push (Op c);
        incr i
    | '0' .. '9' | '.' ->
        let j = ref !i in
        while
          !j < n
          && (match src.[!j] with '0' .. '9' | '.' -> true | _ -> false)
        do
          incr j
        done;
        (* Exponent suffix ("1e+06", "2.5E-3"): only when digits follow,
           so an identifier starting with 'e' after a number still lexes
           as its own token. *)
        (if !j < n && (src.[!j] = 'e' || src.[!j] = 'E') then
           let k =
             if
               !j + 1 < n
               && (src.[!j + 1] = '+' || src.[!j + 1] = '-')
             then !j + 2
             else !j + 1
           in
           if k < n && (match src.[k] with '0' .. '9' -> true | _ -> false)
           then begin
             j := k;
             while
               !j < n && (match src.[!j] with '0' .. '9' -> true | _ -> false)
             do
               incr j
             done
           end);
        push (Number (String.sub src !i (!j - !i)));
        i := !j
    | 'a' .. 'z' | 'A' .. 'Z' | '_' ->
        let j = ref !i in
        while !j < n && ident_char src.[!j] do
          incr j
        done;
        push (Ident (String.sub src !i (!j - !i)));
        i := !j
    | c -> raise (Err (!line, Printf.sprintf "unexpected character %C" c)));
  done;
  List.rev !tokens

type parser_state = { mutable toks : (int * token) list }

let peek st = match st.toks with [] -> None | (_, t) :: _ -> Some t

let line st = match st.toks with [] -> 0 | (l, _) :: _ -> l

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect st t what =
  match st.toks with
  | (_, t') :: rest when t' = t ->
      st.toks <- rest
  | _ -> raise (Err (line st, "expected " ^ what))

let ident st what =
  match st.toks with
  | (_, Ident s) :: rest ->
      st.toks <- rest;
      s
  | _ -> raise (Err (line st, "expected " ^ what))

(* Rate sequence: '[' expr (',' expr)* ']' where expr is collected
   token-by-token until ',' or ']' and handed to the Expr parser. *)
let rates st =
  expect st Lbracket "'['";
  let entries = ref [] in
  let buf = Buffer.create 16 in
  let flush_entry () =
    let s = Buffer.contents buf in
    Buffer.clear buf;
    if String.trim s = "" then raise (Err (line st, "empty rate expression"));
    match Expr.parse_poly s with
    | p -> entries := p :: !entries
    | exception Expr.Parse_error m ->
        raise (Err (line st, "bad rate expression: " ^ m))
  in
  let depth = ref 0 in
  let rec go () =
    match st.toks with
    | [] -> raise (Err (0, "unterminated rate sequence"))
    | (_, Rbracket) :: rest when !depth = 0 ->
        st.toks <- rest;
        flush_entry ()
    | (_, Comma) :: rest when !depth = 0 ->
        st.toks <- rest;
        flush_entry ();
        go ()
    | (_, t) :: rest ->
        (match t with
        | Lparen ->
            incr depth;
            Buffer.add_char buf '('
        | Rparen ->
            decr depth;
            Buffer.add_char buf ')'
        | Ident s -> Buffer.add_string buf s
        | Number s -> Buffer.add_string buf s
        | Star -> Buffer.add_char buf '*'
        | Op c -> Buffer.add_char buf c
        | Arrow -> raise (Err (line st, "'->' inside rates"))
        | _ -> raise (Err (line st, "unexpected token in rates")));
        st.toks <- rest;
        Buffer.add_char buf ' ';
        go ()
  in
  go ();
  Array.of_list (List.rev !entries)

(* Attribute values may be negative (e.g. priority=-1): a leading '-'
   lexes as [Op '-'], folded back into the literal here. *)
let int_attr st what =
  match st.toks with
  | (_, Number s) :: rest | (_, Op '-') :: (_, Number s) :: rest -> (
      let neg = match st.toks with (_, Op '-') :: _ -> true | _ -> false in
      st.toks <- rest;
      match int_of_string_opt s with
      | Some v -> if neg then -v else v
      | None -> raise (Err (line st, "bad integer for " ^ what)))
  | _ -> raise (Err (line st, "expected integer for " ^ what))

let float_attr st what =
  match st.toks with
  | (_, Number s) :: rest | (_, Op '-') :: (_, Number s) :: rest -> (
      let neg = match st.toks with (_, Op '-') :: _ -> true | _ -> false in
      st.toks <- rest;
      match float_of_string_opt s with
      | Some v -> if neg then -.v else v
      | None -> raise (Err (line st, "bad number for " ^ what)))
  | _ -> raise (Err (line st, "expected number for " ^ what))

type pending_mode = {
  kernel : string;
  mode_name : string;
  inputs : [ `All | `Priority | `Subset of string list ];
  outputs : [ `All | `Subset of string list ];
}

let of_string src =
  try
    let st = { toks = tokenize src } in
    expect st (Ident "tpdf") "'tpdf'";
    (match peek st with Some (Ident _) -> advance st | _ -> ());
    expect st Lbrace "'{'";
    let g = Graph.create () in
    let chan_ids : (string, int) Hashtbl.t = Hashtbl.create 16 in
    let pending_modes = ref [] in
    let parse_actor_attrs () =
      let phases = ref 1 and kind = ref Graph.Plain_kernel in
      let clock = ref None in
      let rec go () =
        match peek st with
        | Some (Ident "phases") ->
            advance st;
            expect st Eq "'='";
            phases := int_attr st "phases";
            go ()
        | Some (Ident "kind") ->
            advance st;
            expect st Eq "'='";
            (match ident st "kernel kind" with
            | "plain" -> kind := Graph.Plain_kernel
            | "select_duplicate" -> kind := Graph.Select_duplicate
            | "transaction" -> kind := Graph.Transaction
            | k -> raise (Err (line st, "unknown kernel kind " ^ k)));
            go ()
        | Some (Ident "clock") ->
            advance st;
            expect st Eq "'='";
            clock := Some (float_attr st "clock");
            go ()
        | _ -> ()
      in
      go ();
      (!phases, !kind, !clock)
    in
    let parse_channel ~ctrl =
      let name = ident st "channel name" in
      if Hashtbl.mem chan_ids name then
        raise (Err (line st, "duplicate channel " ^ name));
      expect st Eq "'='";
      let src_actor = ident st "source actor" in
      let prod = rates st in
      expect st Arrow "'->'";
      let cons = rates st in
      let dst_actor = ident st "destination actor" in
      let init = ref 0 and priority = ref 0 in
      let rec attrs () =
        match peek st with
        | Some (Ident "init") ->
            advance st;
            expect st Eq "'='";
            init := int_attr st "init";
            attrs ()
        | Some (Ident "priority") ->
            advance st;
            expect st Eq "'='";
            priority := int_attr st "priority";
            attrs ()
        | _ -> ()
      in
      attrs ();
      if ctrl && !priority <> 0 then
        (* The graph model has no priority on control channels; silently
           dropping the attribute would break print/parse round-trips. *)
        raise (Err (line st, "control channels have no priority"));
      expect st Semi "';'";
      let id =
        try
          if ctrl then
            Graph.add_control_channel g ~src:src_actor ~dst:dst_actor ~prod
              ~cons ~init:!init ()
          else
            Graph.add_channel g ~src:src_actor ~dst:dst_actor ~prod ~cons
              ~init:!init ~priority:!priority ()
        with Invalid_argument m -> raise (Err (line st, m))
      in
      Hashtbl.replace chan_ids name id
    in
    let parse_port_set () =
      expect st Lparen "'('";
      match peek st with
      | Some Star ->
          advance st;
          expect st Rparen "')'";
          `All
      | Some (Ident "priority") ->
          advance st;
          expect st Rparen "')'";
          `Priority
      | _ ->
          let rec names acc =
            let n = ident st "channel name" in
            match peek st with
            | Some Comma ->
                advance st;
                names (n :: acc)
            | _ ->
                expect st Rparen "')'";
                List.rev (n :: acc)
          in
          `Subset (names [])
    in
    let parse_modes () =
      let kernel = ident st "kernel name" in
      expect st Lbrace "'{'";
      let rec go () =
        match peek st with
        | Some Rbrace -> advance st
        | _ ->
            let mode_name = ident st "mode name" in
            let inputs = ref `All and outputs = ref `All in
            let rec clauses () =
              match peek st with
              | Some (Ident "inputs") ->
                  advance st;
                  inputs := parse_port_set ();
                  clauses ()
              | Some (Ident "outputs") ->
                  advance st;
                  (match parse_port_set () with
                  | `Priority ->
                      raise (Err (line st, "outputs(priority) is not a policy"))
                  | (`All | `Subset _) as o -> outputs := o);
                  clauses ()
              | _ -> ()
            in
            clauses ();
            expect st Semi "';'";
            pending_modes :=
              { kernel; mode_name; inputs = !inputs; outputs = !outputs }
              :: !pending_modes;
            go ()
      in
      go ()
    in
    let rec body () =
      match peek st with
      | Some Rbrace -> advance st
      | Some (Ident "kernel") ->
          advance st;
          let name = ident st "kernel name" in
          let phases, kind, clock = parse_actor_attrs () in
          if clock <> None then
            raise (Err (line st, "kernels cannot have a clock"));
          expect st Semi "';'";
          (try Graph.add_kernel g ~phases ~kind name
           with Invalid_argument m -> raise (Err (line st, m)));
          body ()
      | Some (Ident "control") ->
          advance st;
          let name = ident st "control name" in
          let phases, kind, clock = parse_actor_attrs () in
          if kind <> Graph.Plain_kernel then
            raise (Err (line st, "control actors have no kernel kind"));
          expect st Semi "';'";
          (try Graph.add_control g ~phases ?clock_period_ms:clock name
           with Invalid_argument m -> raise (Err (line st, m)));
          body ()
      | Some (Ident "channel") ->
          advance st;
          parse_channel ~ctrl:false;
          body ()
      | Some (Ident "ctrl") ->
          advance st;
          parse_channel ~ctrl:true;
          body ()
      | Some (Ident "modes") ->
          advance st;
          parse_modes ();
          body ()
      | Some _ -> raise (Err (line st, "expected a declaration"))
      | None -> raise (Err (0, "unterminated graph (missing '}')"))
    in
    body ();
    (match st.toks with
    | [] -> ()
    | (l, _) :: _ -> raise (Err (l, "trailing input after '}'")));
    (* Resolve mode channel names and install mode tables. *)
    let resolve names =
      List.map
        (fun n ->
          match Hashtbl.find_opt chan_ids n with
          | Some id -> id
          | None -> raise (Err (0, "mode references unknown channel " ^ n)))
        names
    in
    let by_kernel = Hashtbl.create 8 in
    List.iter
      (fun pm ->
        let prev =
          match Hashtbl.find_opt by_kernel pm.kernel with
          | Some l -> l
          | None -> []
        in
        Hashtbl.replace by_kernel pm.kernel (pm :: prev))
      !pending_modes;
    Hashtbl.iter
      (fun kernel pms ->
        let modes =
          List.map
            (fun pm ->
              let inputs =
                match pm.inputs with
                | `All -> Mode.All_inputs
                | `Priority -> Mode.Highest_priority_available
                | `Subset names -> Mode.Input_subset (resolve names)
              in
              let outputs =
                match pm.outputs with
                | `All -> Mode.All_outputs
                | `Subset names -> Mode.Output_subset (resolve names)
              in
              Mode.make ~inputs ~outputs pm.mode_name)
            pms
        in
        try Graph.set_modes g kernel modes
        with Invalid_argument m -> raise (Err (0, m)))
      by_kernel;
    Ok g
  with Err (l, msg) -> Error (Printf.sprintf "line %d: %s" l msg)

let save path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | src -> of_string src
  | exception Sys_error m -> Error m
