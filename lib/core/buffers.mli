(** Scenario-based buffer-size analysis for TPDF graphs.

    The dynamic topology of TPDF lets a control decision remove channels
    from an iteration: tokens are simply never produced on (or are rejected
    from) the branches a mode does not select.  The minimum buffer sizes of
    one iteration are therefore computed on the {e reduced} topology while
    keeping the {e unique iteration vector} of the full skeleton (§III-A).
    This is the analysis behind Fig. 8, where the TPDF OFDM demodulator
    needs ~29% less buffer space than its CSDF counterpart (which must keep
    every branch alive). *)

open Tpdf_param

type scenario = (string * string) list
(** One (kernel, mode name) choice per moded kernel.  Kernels absent from
    the scenario keep all their channels active. *)

val active_channels : Graph.t -> scenario -> int -> bool
(** A channel is inactive when the chosen mode of its source kernel does
    not produce on it, or the chosen mode of its destination kernel does
    not read it.  Control channels are always active. *)

val analyze :
  ?policy:Tpdf_csdf.Schedule.policy ->
  Graph.t ->
  Valuation.t ->
  scenario:scenario ->
  Tpdf_csdf.Buffers.report
(** Minimum per-channel capacities (max occupancy over one iteration) under
    the reduced topology; default policy [Min_buffer].
    @raise Failure on deadlock
    @raise Invalid_argument on unknown kernels/modes in the scenario. *)

val worst_case :
  ?policy:Tpdf_csdf.Schedule.policy ->
  Graph.t ->
  Valuation.t ->
  scenarios:scenario list ->
  Tpdf_csdf.Buffers.report
(** Buffer {e provisioning}: per-channel maximum over the given scenarios
    (a channel must be sized for whichever mode uses it most).  Channels
    inactive in every scenario are reported with capacity 0.  This is the
    quantity plotted for TPDF in Fig. 8.
    @raise Invalid_argument on an empty scenario list. *)

val csdf_equivalent :
  ?policy:Tpdf_csdf.Schedule.policy ->
  Graph.t ->
  Valuation.t ->
  Tpdf_csdf.Buffers.report
(** The CSDF baseline: every channel of the skeleton stays active (a static
    dataflow implementation must compute every branch). *)

val capacity_hint : cons:int array -> prod:int array -> init:int -> int
(** Cheap per-channel preallocation hint for runtime ring buffers: the
    initial token count plus one producer burst plus one consumer burst
    (the per-phase maxima of the concrete rate vectors), floored at 8.
    Unlike {!analyze} this is O(phases) and needs no schedule; it is not
    a bound — runtime buffers grow past it — it just makes fixed-rate
    channels allocation-free from the first iteration. *)
