(** Static analyses of TPDF graphs (§III of the paper).

    - {b Rate consistency} (§III-A): the balance equations of the full
      skeleton (all channels present, parametric rates) must admit a
      non-trivial solution; removing channels only removes equations, so
      consistency of the skeleton implies consistency of every runtime
      configuration.
    - {b Control areas} (Definition 3) and {b local solutions}
      (Definition 4) delimit the region a control actor reconfigures and
      how many firings of each member make up one local iteration.
    - {b Rate safety} (Definition 5): each control actor fires exactly once
      per local iteration of its area, which makes reconfiguration safe and
      (with consistency and liveness) yields boundedness (Theorem 2). *)

open Tpdf_param

val repetition : ?obs:Tpdf_obs.Obs.t -> Graph.t -> Tpdf_csdf.Repetition.t
(** Symbolic repetition vector of the skeleton.
    @raise Tpdf_csdf.Repetition.Inconsistent / Disconnected. *)

val consistent : Graph.t -> bool

type area = {
  control : string;
  predecessors : string list;  (** prec(g) *)
  successors : string list;  (** succ(g) *)
  influenced : string list;  (** infl(g) = succ(prec g) ∩ prec(succ g) \ g *)
  members : string list;  (** the union, sorted — Area(g) *)
}

val control_area : Graph.t -> string -> area
(** @raise Invalid_argument if the actor is not a control actor. *)

val areas : Graph.t -> area list
(** One per control actor. *)

val local_scaling : Graph.t -> Tpdf_csdf.Repetition.t -> string list -> Poly.t
(** q{_G}(Z) of Definition 4: the greatest common divisor of the cycle
    counts q{_ai}/τ{_i} over the subset.  Symbolic GCD is computed on
    numeric content and parameter powers (exact for monomial entries, a
    valid common divisor otherwise). *)

val local_solution :
  Graph.t -> Tpdf_csdf.Repetition.t -> string list -> (string * Frac.t) list
(** q{^L}{_ai} = q{_ai} / q{_G}(Z) for each member of the subset
    (Definition 4). *)

val cumulative_symbolic : Poly.t array -> Frac.t -> Frac.t option
(** [cumulative_symbolic rates n]: total tokens over the first [n] firings
    of a cyclic rate sequence, when it can be expressed symbolically —
    either [n] is a multiple of the sequence length, all phase rates are
    equal, or [n] is a concrete integer.  [None] otherwise. *)

type violation = { control : string; channel : int; reason : string }

val rate_safety : ?obs:Tpdf_obs.Obs.t -> Graph.t -> (unit, violation list) result
(** Definition 5, checked for every control actor over every channel that
    connects it to its area.  With an enabled [obs], records a wall-clock
    ["analysis.rate_safety"] span plus [analysis.areas_checked] /
    [analysis.rate_violations] counters — as do {!repetition},
    {!check_boundedness} and {!Liveness.check} for their phases. *)

val rate_safe : Graph.t -> bool

type boundedness = {
  consistent : bool;
  rate_safe : bool;
  live : bool;
  bounded : bool;  (** the conjunction — Theorem 2 *)
  notes : string list;
}

val check_boundedness :
  ?obs:Tpdf_obs.Obs.t -> Graph.t -> samples:Valuation.t list -> boundedness
(** Theorem 2: a rate consistent, safe and live TPDF graph returns to its
    initial state at the end of each iteration and can run in bounded
    memory.  Liveness is validated on the sample valuations (the paper's
    inductive argument over parameter values). *)

val pp_area : Format.formatter -> area -> unit
