open Tpdf_param
module Csdf = Tpdf_csdf
module Digraph = Tpdf_graph.Digraph
module Obs = Tpdf_obs.Obs
module Metrics = Tpdf_obs.Metrics

(* Publish the symbolic-kernel cache statistics (memo hit/miss totals,
   memo-table and intern-table sizes) as gauges after every symbolic
   analysis, so solver runs show up in the OpenMetrics export. *)
let record_param_gauges obs =
  if Obs.enabled obs then begin
    let m = Obs.metrics obs in
    List.iter (fun (k, v) -> Metrics.set_gauge m k v) (Memo.gauges ())
  end

let repetition ?(obs = Obs.disabled) g =
  Obs.wall_span obs "analysis.repetition" (fun () ->
      let r = Csdf.Repetition.solve (Graph.skeleton g) in
      record_param_gauges obs;
      r)

let consistent g = Csdf.Repetition.is_consistent (Graph.skeleton g)

type area = {
  control : string;
  predecessors : string list;
  successors : string list;
  influenced : string list;
  members : string list;
}

let control_area g ctrl =
  if not (Graph.is_control g ctrl) then
    invalid_arg
      (Printf.sprintf "Analysis.control_area: %s is not a control actor" ctrl);
  let dg = Csdf.Graph.digraph (Graph.skeleton g) in
  let prec = Digraph.pred dg ctrl and succ = Digraph.succ dg ctrl in
  let union_map f l =
    List.sort_uniq compare (List.concat_map f l)
  in
  let succ_of_prec = union_map (Digraph.succ dg) prec in
  let prec_of_succ = union_map (Digraph.pred dg) succ in
  let influenced =
    List.filter
      (fun a -> a <> ctrl && List.mem a prec_of_succ)
      succ_of_prec
  in
  let members =
    List.sort_uniq compare (prec @ succ @ influenced)
  in
  {
    control = ctrl;
    predecessors = List.sort compare prec;
    successors = List.sort compare succ;
    influenced = List.sort compare influenced;
    members;
  }

let areas g = List.map (control_area g) (Graph.control_actors g)

let local_scaling _g rep members = Symbolic.local_scaling rep members

let local_solution _g (rep : Csdf.Repetition.t) members =
  let q_g = Symbolic.local_scaling rep members in
  List.map
    (fun a ->
      ( a,
        Frac.div
          (Frac.of_poly (List.assoc a rep.Csdf.Repetition.q))
          (Frac.of_poly q_g) ))
    members

let cumulative_symbolic = Symbolic.cumulative_symbolic

type violation = { control : string; channel : int; reason : string }

let check_control g rep ctrl =
  let skel = Graph.skeleton g in
  let area = control_area g ctrl in
  let q_g = Symbolic.local_scaling rep area.members in
  let local a =
    Frac.div
      (Frac.of_poly (List.assoc a rep.Csdf.Repetition.q))
      (Frac.of_poly q_g)
  in
  let violations = ref [] in
  let fail channel fmt =
    Format.kasprintf
      (fun reason -> violations := { control = ctrl; channel; reason } :: !violations)
      fmt
  in
  (* The control actor must fire exactly once per local iteration. *)
  let q_ctrl = List.assoc ctrl rep.Csdf.Repetition.q in
  let tau_ctrl = Csdf.Graph.phases skel ctrl in
  let fires_per_local =
    Frac.div
      (Frac.of_poly q_ctrl)
      (Frac.mul (Frac.of_int tau_ctrl) (Frac.of_poly q_g))
  in
  if not (Frac.equal fires_per_local Frac.one) then
    fail (-1) "control actor fires %a times per local iteration, expected 1"
      Frac.pp fires_per_local;
  (* Equation (9) on every channel between the control actor and its area. *)
  let check_channel (e : (string, Csdf.Graph.channel) Digraph.edge) =
    if e.src = ctrl && List.mem e.dst area.members then begin
      (* g produces: X_g(1) = Y_i(qL_i) *)
      let lhs = Frac.of_poly e.label.prod.(0) in
      match Symbolic.cumulative_symbolic e.label.cons (local e.dst) with
      | None ->
          fail e.id
            "cannot evaluate consumption of %s over %a firings symbolically"
            e.dst Frac.pp (local e.dst)
      | Some rhs ->
          if not (Frac.equal lhs rhs) then
            fail e.id "X_%s(1) = %a but Y_%s(q^L) = %a" ctrl Frac.pp lhs e.dst
              Frac.pp rhs
    end
    else if e.dst = ctrl && List.mem e.src area.members then begin
      (* g consumes: Y_g(1) = X_i(qL_i) *)
      let lhs = Frac.of_poly e.label.cons.(0) in
      match Symbolic.cumulative_symbolic e.label.prod (local e.src) with
      | None ->
          fail e.id
            "cannot evaluate production of %s over %a firings symbolically"
            e.src Frac.pp (local e.src)
      | Some rhs ->
          if not (Frac.equal lhs rhs) then
            fail e.id "Y_%s(1) = %a but X_%s(q^L) = %a" ctrl Frac.pp lhs e.src
              Frac.pp rhs
    end
  in
  List.iter check_channel (Csdf.Graph.channels skel);
  List.rev !violations

let rate_safety ?(obs = Obs.disabled) g =
  Obs.wall_span obs "analysis.rate_safety" (fun () ->
      let result =
        match repetition g with
        | exception Csdf.Repetition.Inconsistent msg ->
            Error
              [ { control = "-"; channel = -1; reason = "inconsistent: " ^ msg } ]
        | exception Csdf.Repetition.Disconnected ->
            Error
              [ { control = "-"; channel = -1; reason = "graph is disconnected" } ]
        | rep -> (
            match
              List.concat_map (check_control g rep) (Graph.control_actors g)
            with
            | [] -> Ok ()
            | l -> Error l)
      in
      if Obs.enabled obs then begin
        let m = Obs.metrics obs in
        Metrics.incr ~by:(List.length (Graph.control_actors g)) m
          "analysis.areas_checked";
        match result with
        | Ok () -> ()
        | Error l -> Metrics.incr ~by:(List.length l) m "analysis.rate_violations"
      end;
      record_param_gauges obs;
      result)

let rate_safe g = match rate_safety g with Ok () -> true | Error _ -> false

type boundedness = {
  consistent : bool;
  rate_safe : bool;
  live : bool;
  bounded : bool;
  notes : string list;
}

let check_boundedness ?(obs = Obs.disabled) g ~samples =
  let notes = ref [] in
  let note fmt = Format.kasprintf (fun s -> notes := s :: !notes) fmt in
  let consistent =
    Obs.wall_span obs "analysis.consistency" (fun () ->
        match repetition g with
        | _ -> true
        | exception Csdf.Repetition.Inconsistent msg ->
            note "inconsistent: %s" msg;
            false
        | exception Csdf.Repetition.Disconnected ->
            note "disconnected";
            false)
  in
  let safe =
    if not consistent then false
    else
      match rate_safety ~obs g with
      | Ok () -> true
      | Error vs ->
          List.iter
            (fun v -> note "rate safety (%s, e%d): %s" v.control v.channel v.reason)
            vs;
          false
  in
  let live =
    consistent
    && List.for_all
         (fun v ->
           let r = Liveness.check ~obs g v in
           if not r.Liveness.live then
             note "deadlock under %a (stuck: %s)" Valuation.pp v
               (String.concat ", " r.Liveness.stuck);
           r.Liveness.live)
         samples
  in
  {
    consistent;
    rate_safe = safe;
    live;
    bounded = consistent && safe && live;
    notes = List.rev !notes;
  }

let pp_area ppf (a : area) =
  Format.fprintf ppf "Area(%s) = {%s} (prec: %s; succ: %s; infl: %s)" a.control
    (String.concat ", " a.members)
    (String.concat ", " a.predecessors)
    (String.concat ", " a.successors)
    (String.concat ", " a.influenced)
