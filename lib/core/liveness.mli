(** Liveness analysis (§III-C of the paper).

    Control tokens never add firing constraints (selection only rejects
    data), so a TPDF graph can deadlock only through its cycles.  Following
    the paper we:

    + decompose the skeleton into strongly connected components;
    + for every non-trivial component, compute the {e local solution}
      (Definition 4, concretely: q{^L}{_a} = q{_a} / gcd{_Z}(q/τ)) and look
      for a local schedule assuming external inputs are abundant — the
      [Late_first] policy reproduces the {e late schedules} of ref.\[8\]
      ([B C C B] for Fig. 4(b));
    + cluster each live cycle into a single actor Ω with external rates
      adjusted to one local iteration (Fig. 4(c)) — the condensed graph is
      acyclic, hence live.

    Parametric firing counts are validated on sample valuations, the
    paper's “inductive reasoning” made executable. *)

open Tpdf_param

type cycle_report = {
  members : string list;  (** sorted *)
  local_counts : (string * int) list;  (** q{^L} under the valuation *)
  local_schedule : (string * int) list option;
      (** compressed late schedule when the cycle is live, [None] when it
          deadlocks *)
}

type report = {
  valuation : Valuation.t;
  cycles : cycle_report list;
  live : bool;
  stuck : string list;  (** actors unable to finish when not live *)
}

val check : ?obs:Tpdf_obs.Obs.t -> Graph.t -> Valuation.t -> report
(** Full analysis under one valuation: per-cycle local schedules plus a
    whole-graph schedule run as the final word.  With an enabled [obs],
    records a wall-clock ["liveness.check"] span and solver counters
    (cycles checked, abstract firings, deadlocks). *)

val check_samples : Graph.t -> Valuation.t list -> report list

val is_live : Graph.t -> Valuation.t -> bool

val default_samples : Graph.t -> Valuation.t list
(** Valuations assigning each parameter the values 1, 2, 3 and 7 —
    exercising the degenerate and generic cases. *)

val cluster_cycle :
  Graph.t -> Tpdf_csdf.Repetition.t -> string list -> (Tpdf_csdf.Graph.t, string) result
(** Replace the given cycle by a single actor [Ω] whose external rates are
    the per-local-iteration totals (the clustering of §III-C, Fig. 4(c)).
    Fails with an explanation when a rate total cannot be expressed
    symbolically. *)

val pp_report : Format.formatter -> report -> unit
