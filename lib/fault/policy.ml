module Tpdf = Tpdf_core
module Csdf = Tpdf_csdf

type fallback = { watch : string; pins : (string * string) list }

type t = {
  max_retries : int;
  retry_backoff_ms : float;
  deadlines_ms : (string * float) list;
  degrade_after : int;
  fallbacks : fallback list;
  max_restarts : int;
}

let make ?(max_retries = 2) ?(retry_backoff_ms = 0.5) ?(deadlines_ms = [])
    ?(degrade_after = 3) ?(fallbacks = []) ?(max_restarts = 0) () =
  if max_retries < 0 then invalid_arg "Policy.make: negative retry budget";
  if retry_backoff_ms < 0.0 then invalid_arg "Policy.make: negative backoff";
  if degrade_after < 1 then
    invalid_arg "Policy.make: degrade_after must be >= 1";
  if max_restarts < 0 then invalid_arg "Policy.make: negative restart budget";
  List.iter
    (fun (a, d) ->
      if d <= 0.0 then
        invalid_arg
          (Printf.sprintf "Policy.make: non-positive deadline for %s" a))
    deadlines_ms;
  {
    max_retries;
    retry_backoff_ms;
    deadlines_ms;
    degrade_after;
    fallbacks;
    max_restarts;
  }

let default = make ()

let validate graph t =
  let skel = Tpdf.Graph.skeleton graph in
  let check_actor what a =
    if not (Csdf.Graph.mem_actor skel a) then
      Error (Printf.sprintf "policy %s names unknown actor %s" what a)
    else Ok ()
  in
  let ( let* ) = Result.bind in
  let rec each f = function
    | [] -> Ok ()
    | x :: rest ->
        let* () = f x in
        each f rest
  in
  let* () = each (fun (a, _) -> check_actor "deadline" a) t.deadlines_ms in
  each
    (fun fb ->
      let* () = check_actor "fallback watch" fb.watch in
      each
        (fun (k, m) ->
          let* () = check_actor "fallback pin" k in
          if Tpdf.Graph.control_port graph k = None then
            Error
              (Printf.sprintf "fallback pins %s, which has no control port" k)
          else
            match Tpdf.Graph.find_mode graph k m with
            | (_ : Tpdf.Mode.t) -> Ok ()
            | exception Not_found ->
                Error
                  (Printf.sprintf "fallback pins %s to undeclared mode %S" k m))
        fb.pins)
    t.fallbacks

let deadline_of t actor = List.assoc_opt actor t.deadlines_ms
