(** Chaos harness: seeded fault-injection runs with sensible defaults.

    This is the entry point behind [tpdf_tool chaos] and the resilience
    benchmarks: given a graph, a seed and fault specs, it assembles a
    {!Plan} and a default degradation story — start every controlled
    kernel in its {e last} declared mode (by convention the most ambitious
    one, e.g. 16-QAM in the OFDM demodulator) and fall back to its
    {e first} declared mode (QPSK) when the supervisor trips — then runs
    {!Supervisor.run}.  Token payloads are [int] with default [0]. *)

val default_scenario : Tpdf_core.Graph.t -> Tpdf_sim.Reconfigure.scenario
(** Pin every controlled kernel to its last declared mode. *)

val default_fallbacks : Tpdf_core.Graph.t -> Policy.fallback list
(** The generic degradation story: pin every controlled kernel with at
    least two declared modes to its first one.  The trip is watched on the
    controlled kernels themselves {e and} on every actor the degraded
    scenario starves ({!Tpdf_sim.Reconfigure.starved_actors}) — the
    ambitious-branch actors, such as the 16-QAM demapper, whose consecutive
    deadline misses or skips should trigger the fallback.  Empty when no
    kernel has a mode to fall back to. *)

val run :
  graph:Tpdf_core.Graph.t ->
  seed:int ->
  specs:Fault.spec list ->
  ?backend:[ `Event | `Compiled ] ->
  ?policy:Policy.t ->
  ?scenario:Tpdf_sim.Reconfigure.scenario ->
  ?iterations:int ->
  ?obs:Tpdf_obs.Obs.t ->
  ?behaviors:(string * int Tpdf_sim.Behavior.t) list ->
  ?pool:Tpdf_par.Pool.t ->
  ?kill_at_ms:float ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(Supervisor.checkpoint -> unit) ->
  ?resume:Supervisor.checkpoint ->
  valuation:Tpdf_param.Valuation.t ->
  unit ->
  Supervisor.summary
(** Run the supervised chaos experiment.  [scenario] defaults to
    {!default_scenario}; [policy] defaults to {!Policy.default} extended
    with {!default_fallbacks}; [iterations] defaults to 1; [behaviors]
    (e.g. realistic durations) are passed through to the supervisor.
    [kill_at_ms], [checkpoint_every], [on_checkpoint] and [resume] are
    {!Supervisor.run}'s checkpointing controls, with the [int] payload
    codec supplied ([string_of_int]/[int_of_string]).  Deterministic:
    equal arguments produce byte-identical summaries and event streams,
    and a killed run resumed from its checkpoint matches the
    uninterrupted one byte for byte.
    @raise Invalid_argument as {!Supervisor.run}. *)

val recovered : Supervisor.summary -> bool
(** [true] when the run completed every iteration ([unrecovered = None]). *)
