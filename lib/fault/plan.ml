module Prng = Tpdf_util.Prng

type t = { seed : int; specs : Fault.spec list }

let make ~seed specs = { seed; specs }
let none = { seed = 0; specs = [] }
let seed t = t.seed
let specs t = t.specs

(* FNV-1a over the actor name folded into the seed, then the firing index;
   the resulting 64-bit key seeds an independent splitmix64 stream per
   (actor, index).  Pure, so draws are order-independent. *)
let fnv_prime = 0x100000001B3L

let fnv h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let firing_rng t ~actor ~index =
  let h = fnv (Int64.of_int t.seed) actor in
  let h = Int64.mul (Int64.logxor h (Int64.of_int index)) fnv_prime in
  Prng.create (Int64.to_int h)

let draw t ~actor ~index =
  match t.specs with
  | [] -> []
  | specs ->
      let rng = firing_rng t ~actor ~index in
      List.filter_map
        (fun (s : Fault.spec) ->
          (* Draw for every spec, applicable or not, so one actor's faults
             do not shift another actor's stream when specs are edited. *)
          let u = Prng.float rng 1.0 in
          if not (Fault.applies_to s actor && u < s.prob) then None
          else
            match s.kind with
            | Fault.Jitter max_ms -> Some (Fault.Jitter (Prng.float rng max_ms))
            | k -> Some k)
        specs

let pp ppf t =
  Format.fprintf ppf "seed=%d %s" t.seed (Fault.specs_to_string t.specs)
