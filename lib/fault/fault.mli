(** Fault kinds and the injection spec language.

    A {!spec} describes one class of fault to inject: a kind, a per-firing
    probability, and an optional target actor.  Specs are resolved into
    concrete per-firing injections by {!Plan}, deterministically from a
    seed, so a chaos run is exactly reproducible.

    The textual form used by [tpdf_tool chaos --faults] is a
    comma-separated list of [KIND:TARGET:PROB[:ARG]] items, e.g.
    [overrun:QAM:0.8:8,fail:FFT:0.2:1,jitter:*:0.1:0.5]. *)

type kind =
  | Fail of int
      (** [n] consecutive transient failures of the firing attempt; the
          supervisor retries within its budget, then substitutes *)
  | Overrun of float  (** multiply the firing duration by this factor *)
  | Jitter of float
      (** add execution-time jitter: in a spec, the maximum added ms; in a
          drawn injection (see {!Plan.draw}), the resolved added ms *)
  | Corrupt  (** corrupt the data tokens produced by the firing *)
  | Ctrl_loss
      (** lose the control tokens emitted by the firing: the previously
          emitted mode is re-sent instead, so the mode {e update} is lost
          while declared rates are preserved *)

type spec = {
  target : string option;  (** actor name; [None] (["*"]) = every actor *)
  prob : float;  (** per-firing injection probability, in [\[0, 1\]] *)
  kind : kind;
}

val spec : ?target:string -> prob:float -> kind -> spec
(** @raise Invalid_argument if [prob] is outside [\[0, 1\]], a [Fail] count
    is non-positive, or an [Overrun]/[Jitter] argument is negative. *)

val applies_to : spec -> string -> bool

val parse_specs : string -> (spec list, string) result
(** Parse the textual form above.  Kinds and default arguments:
    [fail] (failures, default 1), [overrun] (factor, default 2.0),
    [jitter] (max ms, default 1.0), [corrupt], [ctrl-loss]. *)

val specs_to_string : spec list -> string
(** Inverse of {!parse_specs} (canonical form). *)

val pp_kind : Format.formatter -> kind -> unit
