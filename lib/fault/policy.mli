(** Supervision policy: how the supervisor reacts to faulted firings.

    The policy combines per-firing recovery (bounded retry with
    virtual-time backoff, then skip-and-substitute), a per-firing deadline
    watchdog, and {e mode fallback}: after [degrade_after] consecutive
    deadline misses or exhausted-retry skips in a watched actor, the
    supervisor drives the associated kernels' control actors to a declared
    degraded mode — the OFDM demodulator dropping from 16-QAM to QPSK under
    deadline pressure (paper §IV). *)

type fallback = {
  watch : string;
      (** actor whose consecutive deadline misses / skips trip the
          fallback *)
  pins : (string * string) list;
      (** [(kernel, degraded_mode)] scenario pins applied at the next
          iteration boundary *)
}

type t = {
  max_retries : int;  (** retry budget per firing (default 2) *)
  retry_backoff_ms : float;
      (** virtual time added to the firing per retry (default 0.5) *)
  deadlines_ms : (string * float) list;
      (** per-actor firing deadline for the watchdog *)
  degrade_after : int;
      (** consecutive misses/skips before a fallback trips (default 3) *)
  fallbacks : fallback list;
  max_restarts : int;
      (** iteration restarts from the boundary checkpoint before the
          supervisor gives up on a failed iteration (default 0: a stall,
          event-budget blowout or behaviour error ends the run).  A
          restart rolls the aborted attempt back — counters, obs events
          and metrics — and escalates by applying {e every} fallback's
          pins before retrying. *)
}

val make :
  ?max_retries:int ->
  ?retry_backoff_ms:float ->
  ?deadlines_ms:(string * float) list ->
  ?degrade_after:int ->
  ?fallbacks:fallback list ->
  ?max_restarts:int ->
  unit ->
  t
(** @raise Invalid_argument on a negative retry or restart budget, a
    negative backoff, a non-positive [degrade_after], or a non-positive
    deadline. *)

val default : t
(** [make ()]: 2 retries, 0.5 ms backoff, no deadlines, no fallbacks, no
    restarts. *)

val validate : Tpdf_core.Graph.t -> t -> (unit, string) result
(** Check that every watched/deadlined actor exists and that every
    fallback pin names a controlled kernel and one of its declared
    modes. *)

val deadline_of : t -> string -> float option
