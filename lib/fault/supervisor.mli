(** Supervised execution: fault-injected runs with recovery and graceful
    degradation.

    The supervisor layers on {!Tpdf_sim.Engine} without changing its
    semantics: it wraps every actor behaviour so that the faults drawn from
    a {!Plan} are injected into the firing's work and duration, and applies
    the {!Policy}:

    - {b bounded retry}: a firing hit by transient failures within the
      retry budget succeeds after the injected failures, its duration
      extended by [retry_backoff_ms] per retry (virtual-time backoff);
    - {b skip-and-substitute}: past the budget, the firing is skipped and
      the supervisor re-emits the declared rates with default tokens, so
      rate consistency — and with it Theorem 2's boundedness — is
      preserved;
    - {b deadline watchdog}: firings of actors with a declared deadline are
      checked against it (after overrun/jitter/backoff);
    - {b mode fallback}: after [degrade_after] consecutive deadline misses
      or skips in a watched actor, the fallback's [(kernel, mode)] pins are
      applied at the next iteration boundary by steering the kernels'
      control actors ({!Tpdf_sim.Reconfigure.scenario_control_behavior}),
      and a ["degrade"] instant is recorded.

    Execution proceeds one graph iteration per activation, exactly like
    {!Tpdf_sim.Reconfigure.run_scenarios}: reconfiguration — including
    degradation — happens at iteration boundaries, where the boundary
    invariant makes it safe.  Everything is deterministic given the plan
    seed: two runs with equal arguments produce byte-identical statistics
    and event streams. *)

(** Everything needed to continue a supervised run in a fresh process:
    summary counters, recovery tables, the effective scenario of the most
    recent (possibly in-flight) iteration, and — for a mid-iteration kill
    — the engine snapshot.  Produced at iteration boundaries
    ([checkpoint_every]/[on_checkpoint]) and at the kill instant
    ([kill_at_ms]); fed back through [resume].  [Tpdf_ckpt] persists it
    (see {!checkpoint_meta}). *)
type checkpoint = {
  ck_iterations_run : int;  (** iterations fully completed *)
  ck_offset_ms : float;  (** accumulated virtual time at the boundary *)
  ck_retries : int;
  ck_skips : int;
  ck_corrupted : int;
  ck_ctrl_lost : int;
  ck_deadline_misses : int;
  ck_deadline_hits : int;
  ck_restarts : int;
  ck_degrades : (string * string) list;  (** newest first *)
  ck_consecutive : (string * int) list;
  ck_tripped : string list;
  ck_degraded : (string * string) list;
  ck_base_index : (string * int) list;
  ck_last_ctrl : (int * string) list;
  ck_scenario : Tpdf_sim.Reconfigure.scenario;
      (** effective scenario of the most recent iteration *)
  ck_engine : Tpdf_sim.Snapshot.t option;
      (** [Some] iff the kill landed mid-iteration *)
}

val checkpoint_meta : checkpoint -> (string * string) list
(** Everything except [ck_engine] as string metadata (for
    [Tpdf_ckpt.t.meta]; the snapshot travels in [Tpdf_ckpt.t.snapshot]).
    @raise Invalid_argument if an actor or mode name contains a tab or
    newline (the list separators; impossible for parsed graphs). *)

val checkpoint_of_meta :
  ?snapshot:Tpdf_sim.Snapshot.t ->
  (string * string) list ->
  (checkpoint, string) result
(** Inverse of {!checkpoint_meta}; [snapshot] becomes [ck_engine]. *)

type summary = {
  iterations_run : int;
  total_end_ms : float;
  retries : int;  (** transient failures absorbed by retry *)
  skips : int;  (** firings substituted after exhausting the budget *)
  corrupted : int;  (** data tokens corrupted *)
  ctrl_lost : int;  (** control tokens whose mode update was lost *)
  deadline_misses : int;
  deadline_hits : int;
  restarts : int;  (** failed iterations rolled back and retried *)
  degrades : (string * string) list;
      (** [(kernel, degraded_mode)] in trip order *)
  unrecovered : string option;
      (** stall / budget / behaviour-error diagnosis when the run could not
          complete; [None] on full recovery *)
  killed : checkpoint option;
      (** the checkpoint taken when [kill_at_ms] ended the run early *)
  per_iteration : Tpdf_sim.Engine.stats list;
}

val pp_summary : Format.formatter -> summary -> unit

val run :
  graph:Tpdf_core.Graph.t ->
  plan:Plan.t ->
  ?backend:[ `Event | `Compiled ] ->
  ?policy:Policy.t ->
  ?obs:Tpdf_obs.Obs.t ->
  ?behaviors:(string * 'a Tpdf_sim.Behavior.t) list ->
  ?scenario:Tpdf_sim.Reconfigure.scenario ->
  ?iterations:int ->
  ?corrupt:('a -> 'a) ->
  ?pool:Tpdf_par.Pool.t ->
  ?kill_at_ms:float ->
  ?checkpoint_every:int ->
  ?on_checkpoint:(checkpoint -> unit) ->
  ?resume:checkpoint ->
  ?encode:('a -> string) ->
  ?decode:(string -> 'a) ->
  valuation:Tpdf_param.Valuation.t ->
  default:'a ->
  unit ->
  summary
(** Run [iterations] (default 1) supervised graph iterations.  [scenario]
    pins the initial modes of controlled kernels (their first declared mode
    when unpinned); fallback pins override it once tripped.  Actors without
    an explicit behaviour get {!Tpdf_sim.Behavior.fill}[ default] (kernels)
    or the scenario control behaviour (control actors, clocks included).
    [corrupt] transforms a data payload hit by a [Corrupt] fault (default:
    replace with [default]).

    [obs] records the whole run on one timeline: engine events per
    iteration (shifted as in {!Tpdf_sim.Reconfigure}), ["reconfig"]
    instants at boundaries where the effective scenario changed, ["fault"]
    instants (["retry"], ["corrupt"], ["ctrl-loss"]) and ["supervisor"]
    instants (["skip"], ["deadline-miss"], ["degrade"], ["stall"]), plus
    [supervisor.*] counters in the metrics registry.

    [pool] is handed to every engine the supervisor creates: iterations
    execute in deterministic parallel mode (see {!Tpdf_sim.Engine.create})
    and the summary and event streams stay byte-identical to a sequential
    run.  The wrappers' bookkeeping is lock-protected for this; the one
    caveat is the order of [degrades] entries when two distinct watch
    actors trip at the same virtual instant.

    Stalls, event-budget exhaustion and behaviour-contract violations do
    not raise: while the policy's restart budget lasts, the failed
    iteration is {e rolled back} — its staged obs events and metrics
    discarded, its counter and table updates undone — every fallback pin
    is applied (escalation, with a ["restart"] instant and a
    [supervisor.restarts] counter), and the iteration is retried from
    the boundary; past the budget they end the run early with the
    diagnosis in [unrecovered] (the final attempt's events are kept).

    {b Checkpoints.}  With [checkpoint_every = n], [on_checkpoint]
    receives a boundary {!checkpoint} after every [n]-th completed
    iteration.  [kill_at_ms] simulates a crash at a virtual instant on
    the global timeline: the run stops there — mid-iteration if the
    instant falls inside one, with the engine snapshotted via [encode] —
    and the checkpoint is returned in [summary.killed].  Feeding it back
    through [resume] (same graph, plan, policy, behaviours, [decode]
    inverse of [encode]) continues the run so that outcomes, stats and
    obs streams are byte-identical to the uninterrupted run.
    @raise Invalid_argument on an invalid scenario or policy,
    [iterations < 1], [checkpoint_every < 1], a negative [kill_at_ms],
    [kill_at_ms] without [encode], or a mid-iteration [resume] without
    [decode]. *)
