(** Supervised execution: fault-injected runs with recovery and graceful
    degradation.

    The supervisor layers on {!Tpdf_sim.Engine} without changing its
    semantics: it wraps every actor behaviour so that the faults drawn from
    a {!Plan} are injected into the firing's work and duration, and applies
    the {!Policy}:

    - {b bounded retry}: a firing hit by transient failures within the
      retry budget succeeds after the injected failures, its duration
      extended by [retry_backoff_ms] per retry (virtual-time backoff);
    - {b skip-and-substitute}: past the budget, the firing is skipped and
      the supervisor re-emits the declared rates with default tokens, so
      rate consistency — and with it Theorem 2's boundedness — is
      preserved;
    - {b deadline watchdog}: firings of actors with a declared deadline are
      checked against it (after overrun/jitter/backoff);
    - {b mode fallback}: after [degrade_after] consecutive deadline misses
      or skips in a watched actor, the fallback's [(kernel, mode)] pins are
      applied at the next iteration boundary by steering the kernels'
      control actors ({!Tpdf_sim.Reconfigure.scenario_control_behavior}),
      and a ["degrade"] instant is recorded.

    Execution proceeds one graph iteration per activation, exactly like
    {!Tpdf_sim.Reconfigure.run_scenarios}: reconfiguration — including
    degradation — happens at iteration boundaries, where the boundary
    invariant makes it safe.  Everything is deterministic given the plan
    seed: two runs with equal arguments produce byte-identical statistics
    and event streams. *)

type summary = {
  iterations_run : int;
  total_end_ms : float;
  retries : int;  (** transient failures absorbed by retry *)
  skips : int;  (** firings substituted after exhausting the budget *)
  corrupted : int;  (** data tokens corrupted *)
  ctrl_lost : int;  (** control tokens whose mode update was lost *)
  deadline_misses : int;
  deadline_hits : int;
  degrades : (string * string) list;
      (** [(kernel, degraded_mode)] in trip order *)
  unrecovered : string option;
      (** stall / budget / behaviour-error diagnosis when the run could not
          complete; [None] on full recovery *)
  per_iteration : Tpdf_sim.Engine.stats list;
}

val pp_summary : Format.formatter -> summary -> unit

val run :
  graph:Tpdf_core.Graph.t ->
  plan:Plan.t ->
  ?policy:Policy.t ->
  ?obs:Tpdf_obs.Obs.t ->
  ?behaviors:(string * 'a Tpdf_sim.Behavior.t) list ->
  ?scenario:Tpdf_sim.Reconfigure.scenario ->
  ?iterations:int ->
  ?corrupt:('a -> 'a) ->
  ?pool:Tpdf_par.Pool.t ->
  valuation:Tpdf_param.Valuation.t ->
  default:'a ->
  unit ->
  summary
(** Run [iterations] (default 1) supervised graph iterations.  [scenario]
    pins the initial modes of controlled kernels (their first declared mode
    when unpinned); fallback pins override it once tripped.  Actors without
    an explicit behaviour get {!Tpdf_sim.Behavior.fill}[ default] (kernels)
    or the scenario control behaviour (control actors, clocks included).
    [corrupt] transforms a data payload hit by a [Corrupt] fault (default:
    replace with [default]).

    [obs] records the whole run on one timeline: engine events per
    iteration (shifted as in {!Tpdf_sim.Reconfigure}), ["reconfig"]
    instants at boundaries where the effective scenario changed, ["fault"]
    instants (["retry"], ["corrupt"], ["ctrl-loss"]) and ["supervisor"]
    instants (["skip"], ["deadline-miss"], ["degrade"], ["stall"]), plus
    [supervisor.*] counters in the metrics registry.

    [pool] is handed to every engine the supervisor creates: iterations
    execute in deterministic parallel mode (see {!Tpdf_sim.Engine.create})
    and the summary and event streams stay byte-identical to a sequential
    run.  The wrappers' bookkeeping is lock-protected for this; the one
    caveat is the order of [degrades] entries when two distinct watch
    actors trip at the same virtual instant.

    Stalls, event-budget exhaustion and behaviour-contract violations do
    not raise: they end the run early with the diagnosis in [unrecovered].
    @raise Invalid_argument on an invalid scenario or policy, or
    [iterations < 1]. *)
