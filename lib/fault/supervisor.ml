module Tpdf = Tpdf_core
module Csdf = Tpdf_csdf
module Engine = Tpdf_sim.Engine
module Behavior = Tpdf_sim.Behavior
module Reconfigure = Tpdf_sim.Reconfigure
module Token = Tpdf_sim.Token
module Obs = Tpdf_obs.Obs
module Ev = Tpdf_obs.Event
module Metrics = Tpdf_obs.Metrics

(* Everything the supervisor needs to continue a run after a crash: the
   summary counters, the recovery tables, the effective scenario of the
   most recent (possibly in-flight) iteration, and — when the kill landed
   mid-iteration — the engine snapshot.  [Tpdf_ckpt] persists this via
   {!checkpoint_meta}; the supervisor itself stays byte-format-agnostic. *)
type checkpoint = {
  ck_iterations_run : int;  (** iterations fully completed *)
  ck_offset_ms : float;
  ck_retries : int;
  ck_skips : int;
  ck_corrupted : int;
  ck_ctrl_lost : int;
  ck_deadline_misses : int;
  ck_deadline_hits : int;
  ck_restarts : int;
  ck_degrades : (string * string) list;  (** newest first, as kept live *)
  ck_consecutive : (string * int) list;
  ck_tripped : string list;
  ck_degraded : (string * string) list;
  ck_base_index : (string * int) list;
  ck_last_ctrl : (int * string) list;
  ck_scenario : Reconfigure.scenario;
  ck_engine : Tpdf_sim.Snapshot.t option;  (** [None]: at a boundary *)
}

type summary = {
  iterations_run : int;
  total_end_ms : float;
  retries : int;
  skips : int;
  corrupted : int;
  ctrl_lost : int;
  deadline_misses : int;
  deadline_hits : int;
  restarts : int;
  degrades : (string * string) list;
  unrecovered : string option;
  killed : checkpoint option;
  per_iteration : Engine.stats list;
}

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>%d iteration(s), %.3f ms total@,\
     retries %d, skips %d, corrupted %d, ctrl lost %d@,\
     deadline hits %d, misses %d"
    s.iterations_run s.total_end_ms s.retries s.skips s.corrupted s.ctrl_lost
    s.deadline_hits s.deadline_misses;
  if s.restarts > 0 then Format.fprintf ppf "@,restarts %d" s.restarts;
  List.iter
    (fun (k, m) -> Format.fprintf ppf "@,degraded %s -> %s" k m)
    s.degrades;
  (match s.unrecovered with
  | Some why -> Format.fprintf ppf "@,UNRECOVERED: %s" why
  | None -> ());
  (match s.killed with
  | Some ck ->
      Format.fprintf ppf "@,KILLED after %d iteration(s)%s" ck.ck_iterations_run
        (if ck.ck_engine = None then "" else " (mid-iteration)")
  | None -> ());
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Checkpoint <-> string-assoc codec                                   *)
(*                                                                     *)
(* The supervisor stays independent of the on-disk format: it trades   *)
(* checkpoints as [(key, value)] metadata (lists packed with newline/  *)
(* tab separators — names in a graph cannot contain either) plus the   *)
(* engine snapshot, which [Tpdf_ckpt] carries natively.                *)
(* ------------------------------------------------------------------ *)

let ck_atom what s =
  if String.exists (fun c -> c = '\t' || c = '\n') s then
    invalid_arg
      (Printf.sprintf "Supervisor.checkpoint_meta: %s %S contains tab/newline"
         what s)
  else s

let enc_list enc items = String.concat "\n" (List.map enc items)
let enc_pair what (a, b) = ck_atom what a ^ "\t" ^ ck_atom what b

let dec_list dec s =
  if s = "" then Ok []
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | item :: rest -> (
          match dec item with
          | Ok v -> go (v :: acc) rest
          | Error _ as e -> e)
    in
    go [] (String.split_on_char '\n' s)

let dec_pair item =
  match String.split_on_char '\t' item with
  | [ a; b ] -> Ok (a, b)
  | _ -> Error (Printf.sprintf "malformed pair %S" item)

let checkpoint_meta ck =
  let pair_list what l = enc_list (enc_pair what) l in
  [
    ("iterations_run", string_of_int ck.ck_iterations_run);
    ("offset_ms", Printf.sprintf "%h" ck.ck_offset_ms);
    ("retries", string_of_int ck.ck_retries);
    ("skips", string_of_int ck.ck_skips);
    ("corrupted", string_of_int ck.ck_corrupted);
    ("ctrl_lost", string_of_int ck.ck_ctrl_lost);
    ("deadline_misses", string_of_int ck.ck_deadline_misses);
    ("deadline_hits", string_of_int ck.ck_deadline_hits);
    ("restarts", string_of_int ck.ck_restarts);
    ("degrades", pair_list "degrade" ck.ck_degrades);
    ( "consecutive",
      pair_list "actor"
        (List.map (fun (a, n) -> (a, string_of_int n)) ck.ck_consecutive) );
    ("tripped", enc_list (ck_atom "actor") ck.ck_tripped);
    ("degraded", pair_list "pin" ck.ck_degraded);
    ( "base_index",
      pair_list "actor"
        (List.map (fun (a, n) -> (a, string_of_int n)) ck.ck_base_index) );
    ( "last_ctrl",
      pair_list "mode"
        (List.map (fun (ch, m) -> (string_of_int ch, m)) ck.ck_last_ctrl) );
    ("scenario", pair_list "pin" ck.ck_scenario);
  ]

let checkpoint_of_meta ?snapshot meta =
  let ( let* ) = Result.bind in
  let get key =
    match List.assoc_opt key meta with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "checkpoint metadata misses %S" key)
  in
  let int_field key =
    let* v = get key in
    match int_of_string_opt v with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "checkpoint field %s: bad integer %S" key v)
  in
  let int_snd (a, b) =
    match int_of_string_opt b with
    | Some n -> Ok (a, n)
    | None -> Error (Printf.sprintf "bad integer %S" b)
  in
  let pair_list key dec =
    let* v = get key in
    dec_list (fun item -> Result.bind (dec_pair item) dec) v
  in
  let* ck_iterations_run = int_field "iterations_run" in
  let* ck_offset_ms =
    let* v = get "offset_ms" in
    match float_of_string_opt v with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "checkpoint field offset_ms: bad float %S" v)
  in
  let* ck_retries = int_field "retries" in
  let* ck_skips = int_field "skips" in
  let* ck_corrupted = int_field "corrupted" in
  let* ck_ctrl_lost = int_field "ctrl_lost" in
  let* ck_deadline_misses = int_field "deadline_misses" in
  let* ck_deadline_hits = int_field "deadline_hits" in
  let* ck_restarts = int_field "restarts" in
  let* ck_degrades = pair_list "degrades" Result.ok in
  let* ck_consecutive = pair_list "consecutive" int_snd in
  let* ck_tripped = Result.bind (get "tripped") (dec_list Result.ok) in
  let* ck_degraded = pair_list "degraded" Result.ok in
  let* ck_base_index = pair_list "base_index" int_snd in
  let* ck_last_ctrl =
    pair_list "last_ctrl" (fun (ch, m) ->
        match int_of_string_opt ch with
        | Some ch -> Ok (ch, m)
        | None -> Error (Printf.sprintf "bad channel id %S" ch))
  in
  let* ck_scenario = pair_list "scenario" Result.ok in
  Ok
    {
      ck_iterations_run;
      ck_offset_ms;
      ck_retries;
      ck_skips;
      ck_corrupted;
      ck_ctrl_lost;
      ck_deadline_misses;
      ck_deadline_hits;
      ck_restarts;
      ck_degrades;
      ck_consecutive;
      ck_tripped;
      ck_degraded;
      ck_base_index;
      ck_last_ctrl;
      ck_scenario;
      ck_engine = snapshot;
    }

type state = {
  graph : Tpdf.Graph.t;
  plan : Plan.t;
  policy : Policy.t;
  mutable obs : Obs.t;  (* shifted view for the current iteration *)
  mutable retries : int;
  mutable skips : int;
  mutable corrupted : int;
  mutable ctrl_lost : int;
  mutable deadline_misses : int;
  mutable deadline_hits : int;
  mutable degrades : (string * string) list;  (* newest first *)
  consecutive : (string, int) Hashtbl.t;  (* watch actor -> bad streak *)
  tripped : (string, unit) Hashtbl.t;  (* watch actors already degraded *)
  degraded : (string, string) Hashtbl.t;  (* kernel -> pinned fallback mode *)
  base_index : (string, int) Hashtbl.t;  (* firings before this iteration *)
  skipped_now : (string, unit) Hashtbl.t;  (* actors whose current firing
                                              was substituted *)
  last_ctrl : (int, string) Hashtbl.t;  (* control channel -> last mode *)
  lock : Mutex.t;
      (* With a pooled engine the [work] wrappers of same-instant firings
         run on different domains; every access to the mutable state
         above goes through [locked].  The final values are still
         deterministic — counters commute and the hashtables are keyed
         per actor / per control channel, which same-instant firings
         touch disjointly — with one documented exception: if two watch
         actors trip at the same virtual instant, the order of their
         [degrades] entries follows actor scheduling (obs streams and
         metrics are unaffected; they are capture-spliced by the
         engine).  Firings of the same actor never overlap, so the
         wrapper's read-modify-write sequences stay atomic enough under
         the single lock. *)
}

let get tbl key = match Hashtbl.find_opt tbl key with Some v -> v | None -> 0

let locked st f =
  Mutex.lock st.lock;
  match f () with
  | v ->
      Mutex.unlock st.lock;
      v
  | exception e ->
      Mutex.unlock st.lock;
      raise e

let metric st name actor =
  let m = Obs.metrics st.obs in
  Metrics.incr m ("supervisor." ^ name);
  Metrics.incr m ("supervisor." ^ name ^ "." ^ actor)

let instant st ~cat ~track ~name ~ts args =
  if Obs.enabled st.obs then
    Obs.instant st.obs ~cat ~track ~name ~ts_ms:ts ~args ()

(* Trip every fallback watching [actor]: apply its pins for the following
   iterations and record the degrade instants. *)
let trip st ~actor ~ts =
  List.iter
    (fun (fb : Policy.fallback) ->
      if fb.watch = actor then
        List.iter
          (fun (kernel, mode) ->
            if Hashtbl.find_opt st.degraded kernel <> Some mode then begin
              Hashtbl.replace st.degraded kernel mode;
              st.degrades <- (kernel, mode) :: st.degrades;
              metric st "degrades" kernel;
              instant st ~cat:"supervisor" ~track:kernel ~name:"degrade" ~ts
                [
                  ("kernel", Ev.Str kernel);
                  ("mode", Ev.Str mode);
                  ("watch", Ev.Str actor);
                ]
            end)
          fb.pins)
    st.policy.Policy.fallbacks

let note_bad st ~actor ~ts =
  Hashtbl.replace st.consecutive actor (get st.consecutive actor + 1);
  if
    get st.consecutive actor >= st.policy.Policy.degrade_after
    && not (Hashtbl.mem st.tripped actor)
  then begin
    Hashtbl.replace st.tripped actor ();
    Hashtbl.replace st.consecutive actor 0;
    trip st ~actor ~ts
  end

let note_good st ~actor = Hashtbl.replace st.consecutive actor 0

let fail_count faults =
  List.fold_left
    (fun acc -> function Fault.Fail n -> acc + n | _ -> acc)
    0 faults

(* The mode a substituted control token should carry: the last mode emitted
   on that channel, else the mode the effective scenario pins the
   destination to. *)
let substitute_mode st ch =
  match Hashtbl.find_opt st.last_ctrl ch with
  | Some m -> m
  | None -> (
      let e = Csdf.Graph.channel (Tpdf.Graph.skeleton st.graph) ch in
      match Hashtbl.find_opt st.degraded e.Tpdf_graph.Digraph.dst with
      | Some m -> m
      | None -> (
          match Tpdf.Graph.modes st.graph e.Tpdf_graph.Digraph.dst with
          | m :: _ -> m.Tpdf.Mode.name
          | [] -> "default"))

let wrap st ~default ~corrupt actor (b : 'a Behavior.t) : 'a Behavior.t =
  let is_ctrl_chan = Tpdf.Graph.is_control_channel st.graph in
  let global_index ctx = get st.base_index actor + ctx.Behavior.index in
  let work ctx =
    let faults = Plan.draw st.plan ~actor ~index:(global_index ctx) in
    let ts = ctx.Behavior.now_ms in
    let fails = fail_count faults in
    locked st (fun () -> Hashtbl.remove st.skipped_now actor);
    let outputs =
      if fails = 0 then b.Behavior.work ctx
      else begin
        let budget = st.policy.Policy.max_retries in
        let absorbed = min fails budget in
        locked st (fun () -> st.retries <- st.retries + absorbed);
        Metrics.incr ~by:absorbed (Obs.metrics st.obs) "supervisor.retries";
        Metrics.incr ~by:absorbed (Obs.metrics st.obs)
          ("supervisor.retries." ^ actor);
        instant st ~cat:"fault" ~track:actor ~name:"retry" ~ts
          [ ("count", Ev.Int absorbed); ("injected", Ev.Int fails) ];
        if fails <= budget then b.Behavior.work ctx
        else begin
          (* Retry budget exhausted: skip the firing and substitute default
             tokens at the declared rates, preserving rate consistency. *)
          locked st (fun () ->
              st.skips <- st.skips + 1;
              metric st "skips" actor;
              Hashtbl.replace st.skipped_now actor ();
              instant st ~cat:"supervisor" ~track:actor ~name:"skip" ~ts
                [ ("injected", Ev.Int fails) ];
              note_bad st ~actor ~ts;
              Behavior.produce_at_rates ctx (fun ch _ ->
                  if is_ctrl_chan ch then Token.Ctrl (substitute_mode st ch)
                  else Token.Data default))
        end
      end
    in
    let outputs =
      if
        List.mem Fault.Corrupt faults
        && not (locked st (fun () -> Hashtbl.mem st.skipped_now actor))
      then
        List.map
          (fun (ch, toks) ->
            if is_ctrl_chan ch then (ch, toks)
            else begin
              let n = ref 0 in
              let toks =
                List.map
                  (function
                    | Token.Data v ->
                        incr n;
                        Token.Data (corrupt v)
                    | tok -> tok)
                  toks
              in
              locked st (fun () -> st.corrupted <- st.corrupted + !n);
              Metrics.incr ~by:!n (Obs.metrics st.obs) "supervisor.corrupted";
              Metrics.incr ~by:!n (Obs.metrics st.obs)
                ("supervisor.corrupted." ^ actor);
              instant st ~cat:"fault" ~track:actor ~name:"corrupt" ~ts
                [ ("count", Ev.Int !n); ("channel", Ev.Int ch) ];
              (ch, toks)
            end)
          outputs
      else outputs
    in
    let outputs =
      if List.mem Fault.Ctrl_loss faults then
        List.map
          (fun (ch, toks) ->
            if not (is_ctrl_chan ch) then (ch, toks)
            else
              match locked st (fun () -> Hashtbl.find_opt st.last_ctrl ch) with
              | None -> (ch, toks) (* nothing emitted yet: loss is moot *)
              | Some prev ->
                  let n = List.length toks in
                  locked st (fun () -> st.ctrl_lost <- st.ctrl_lost + n);
                  Metrics.incr ~by:n (Obs.metrics st.obs)
                    "supervisor.ctrl_lost";
                  Metrics.incr ~by:n (Obs.metrics st.obs)
                    ("supervisor.ctrl_lost." ^ actor);
                  instant st ~cat:"fault" ~track:actor ~name:"ctrl-loss" ~ts
                    [ ("count", Ev.Int n); ("mode", Ev.Str prev) ];
                  (ch, List.map (fun _ -> Token.Ctrl prev) toks))
          outputs
      else outputs
    in
    (* Remember the mode each control channel last carried. *)
    locked st (fun () ->
        List.iter
          (fun (ch, toks) ->
            if is_ctrl_chan ch then
              List.iter
                (function
                  | Token.Ctrl m -> Hashtbl.replace st.last_ctrl ch m
                  | Token.Data _ -> ())
                toks)
          outputs);
    outputs
  in
  let duration_ms ctx =
    let faults = Plan.draw st.plan ~actor ~index:(global_index ctx) in
    let ts = ctx.Behavior.now_ms in
    let d = b.Behavior.duration_ms ctx in
    let d =
      List.fold_left
        (fun d -> function
          | Fault.Overrun f -> d *. f
          | Fault.Jitter j -> d +. j
          | _ -> d)
        d faults
    in
    let d =
      d
      +. float_of_int (min (fail_count faults) st.policy.Policy.max_retries)
         *. st.policy.Policy.retry_backoff_ms
    in
    (* [duration_ms] runs on the orchestrating domain (the pooled engine
       commits sequentially), but take the lock anyway: it is cheap and
       keeps the wrapper safe under any caller. *)
    locked st (fun () ->
        match Policy.deadline_of st.policy actor with
        | Some deadline when not (Hashtbl.mem st.skipped_now actor) ->
            if d > deadline then begin
              st.deadline_misses <- st.deadline_misses + 1;
              metric st "deadline_misses" actor;
              instant st ~cat:"supervisor" ~track:actor ~name:"deadline-miss"
                ~ts
                [
                  ("duration_ms", Ev.Float d); ("deadline_ms", Ev.Float deadline);
                ];
              note_bad st ~actor ~ts
            end
            else begin
              st.deadline_hits <- st.deadline_hits + 1;
              metric st "deadline_hits" actor;
              note_good st ~actor
            end
        | _ -> ());
    d
  in
  { Behavior.work; duration_ms }

let effective_scenario st scenario =
  let pins =
    Hashtbl.fold (fun k m acc -> (k, m) :: acc) st.degraded []
    |> List.sort compare
  in
  pins @ List.filter (fun (k, _) -> not (Hashtbl.mem st.degraded k)) scenario

let dump_tbl tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let fill_tbl tbl items =
  Hashtbl.reset tbl;
  List.iter (fun (k, v) -> Hashtbl.replace tbl k v) items

(* Mutable state saved before an iteration attempt, restored when a
   restart rolls the attempt back. *)
type attempt_saved = {
  s_retries : int;
  s_skips : int;
  s_corrupted : int;
  s_ctrl_lost : int;
  s_deadline_misses : int;
  s_deadline_hits : int;
  s_degrades : (string * string) list;
  s_consecutive : (string * int) list;
  s_tripped : (string * unit) list;
  s_degraded : (string * string) list;
  s_last_ctrl : (int * string) list;
}

let save_attempt st =
  {
    s_retries = st.retries;
    s_skips = st.skips;
    s_corrupted = st.corrupted;
    s_ctrl_lost = st.ctrl_lost;
    s_deadline_misses = st.deadline_misses;
    s_deadline_hits = st.deadline_hits;
    s_degrades = st.degrades;
    s_consecutive = dump_tbl st.consecutive;
    s_tripped = dump_tbl st.tripped;
    s_degraded = dump_tbl st.degraded;
    s_last_ctrl = dump_tbl st.last_ctrl;
  }

(* [base_index] only changes in the post-iteration accounting, so a
   failed attempt cannot have touched it; [skipped_now] is per-firing
   scratch that every firing's [work] resets before use. *)
let restore_attempt st s =
  st.retries <- s.s_retries;
  st.skips <- s.s_skips;
  st.corrupted <- s.s_corrupted;
  st.ctrl_lost <- s.s_ctrl_lost;
  st.deadline_misses <- s.s_deadline_misses;
  st.deadline_hits <- s.s_deadline_hits;
  st.degrades <- s.s_degrades;
  fill_tbl st.consecutive s.s_consecutive;
  fill_tbl st.tripped s.s_tripped;
  fill_tbl st.degraded s.s_degraded;
  fill_tbl st.last_ctrl s.s_last_ctrl;
  Hashtbl.reset st.skipped_now

(* Restart escalation: apply {e every} fallback's pins (and mark the
   watches tripped), so the retried iteration runs degraded and the
   replayed fault plan meets different behaviours. *)
let escalate st ~ts =
  List.iter
    (fun (fb : Policy.fallback) ->
      Hashtbl.replace st.tripped fb.watch ();
      Hashtbl.replace st.consecutive fb.watch 0;
      List.iter
        (fun (kernel, mode) ->
          if Hashtbl.find_opt st.degraded kernel <> Some mode then begin
            Hashtbl.replace st.degraded kernel mode;
            st.degrades <- (kernel, mode) :: st.degrades;
            metric st "degrades" kernel;
            instant st ~cat:"supervisor" ~track:kernel ~name:"degrade" ~ts
              [
                ("kernel", Ev.Str kernel);
                ("mode", Ev.Str mode);
                ("watch", Ev.Str "restart");
              ]
          end)
        fb.pins)
    st.policy.Policy.fallbacks

let run ~graph ~plan ?backend ?(policy = Policy.default) ?(obs = Obs.disabled)
    ?(behaviors = []) ?(scenario = []) ?(iterations = 1) ?corrupt ?pool
    ?kill_at_ms ?checkpoint_every ?on_checkpoint ?resume ?encode ?decode
    ~valuation ~default () =
  if iterations < 1 then invalid_arg "Supervisor.run: iterations must be >= 1";
  Reconfigure.validate_scenario graph scenario;
  (match Policy.validate graph policy with
  | Ok () -> ()
  | Error m -> invalid_arg ("Supervisor.run: " ^ m));
  (match checkpoint_every with
  | Some n when n < 1 ->
      invalid_arg "Supervisor.run: checkpoint_every must be >= 1"
  | _ -> ());
  (match kill_at_ms with
  | Some k when k < 0.0 -> invalid_arg "Supervisor.run: negative kill_at_ms"
  | Some _ when encode = None ->
      invalid_arg
        "Supervisor.run: kill_at_ms needs ~encode (mid-iteration snapshots)"
  | _ -> ());
  (match resume with
  | Some { ck_engine = Some _; _ } when decode = None ->
      invalid_arg
        "Supervisor.run: resuming a mid-iteration checkpoint needs ~decode"
  | _ -> ());
  let corrupt = match corrupt with Some f -> f | None -> fun _ -> default in
  let st =
    {
      graph;
      plan;
      policy;
      obs;
      retries = 0;
      skips = 0;
      corrupted = 0;
      ctrl_lost = 0;
      deadline_misses = 0;
      deadline_hits = 0;
      degrades = [];
      consecutive = Hashtbl.create 8;
      tripped = Hashtbl.create 8;
      degraded = Hashtbl.create 8;
      base_index = Hashtbl.create 16;
      skipped_now = Hashtbl.create 8;
      last_ctrl = Hashtbl.create 8;
      lock = Mutex.create ();
    }
  in
  let offset = ref 0.0 in
  let per_iteration = ref [] in
  let unrecovered = ref None in
  let iterations_run = ref 0 in
  let restarts = ref 0 in
  let killed = ref None in
  let previous_scenario = ref None in
  let resume_engine = ref None in
  (match resume with
  | None -> ()
  | Some ck ->
      iterations_run := ck.ck_iterations_run;
      offset := ck.ck_offset_ms;
      restarts := ck.ck_restarts;
      st.retries <- ck.ck_retries;
      st.skips <- ck.ck_skips;
      st.corrupted <- ck.ck_corrupted;
      st.ctrl_lost <- ck.ck_ctrl_lost;
      st.deadline_misses <- ck.ck_deadline_misses;
      st.deadline_hits <- ck.ck_deadline_hits;
      st.degrades <- ck.ck_degrades;
      fill_tbl st.consecutive ck.ck_consecutive;
      fill_tbl st.tripped (List.map (fun a -> (a, ())) ck.ck_tripped);
      fill_tbl st.degraded ck.ck_degraded;
      fill_tbl st.base_index ck.ck_base_index;
      fill_tbl st.last_ctrl ck.ck_last_ctrl;
      previous_scenario := Some ck.ck_scenario;
      (match ck.ck_engine with
      | None -> ()
      | Some snap -> resume_engine := Some (snap, ck.ck_scenario)));
  let make_ck ~completed ~eff ~engine =
    {
      ck_iterations_run = completed;
      ck_offset_ms = !offset;
      ck_retries = st.retries;
      ck_skips = st.skips;
      ck_corrupted = st.corrupted;
      ck_ctrl_lost = st.ctrl_lost;
      ck_deadline_misses = st.deadline_misses;
      ck_deadline_hits = st.deadline_hits;
      ck_restarts = !restarts;
      ck_degrades = st.degrades;
      ck_consecutive = dump_tbl st.consecutive;
      ck_tripped = List.map fst (dump_tbl st.tripped);
      ck_degraded = dump_tbl st.degraded;
      ck_base_index = dump_tbl st.base_index;
      ck_last_ctrl = dump_tbl st.last_ctrl;
      ck_scenario = eff;
      ck_engine = engine;
    }
  in
  while !unrecovered = None && !killed = None && !iterations_run < iterations do
    match kill_at_ms with
    | Some k when !offset >= k ->
        (* The kill instant falls on (or before) this boundary: take a
           boundary checkpoint — no engine in flight. *)
        let eff =
          match !previous_scenario with
          | Some e -> e
          | None -> effective_scenario st scenario
        in
        killed :=
          Some (make_ck ~completed:!iterations_run ~eff ~engine:None)
    | _ ->
        incr iterations_run;
        (* One iteration as a supervised transaction: the attempt's
           events and metrics are staged in an [Obs] capture.  Spliced on
           completion (or on final failure, keeping the historical stream
           of unrecovered runs); discarded wholesale when a restart rolls
           the attempt back — no half-iteration firings or double-counted
           supervisor metrics survive. *)
        let rec attempt () =
          let saved = save_attempt st in
          let resuming = !resume_engine in
          resume_engine := None;
          let eff =
            match resuming with
            | Some (_, sc) -> sc
            | None -> effective_scenario st scenario
          in
          st.obs <- Obs.shift obs !offset;
          let cap = Obs.capture_begin obs in
          if
            resuming = None && Obs.enabled obs
            && !previous_scenario <> Some eff
          then begin
            Obs.instant st.obs ~cat:"reconfig" ~track:"supervisor"
              ~name:"reconfigure" ~ts_ms:0.0
              ~args:[ ("scenario", Ev.Str (Reconfigure.pp_scenario eff)) ]
              ();
            Metrics.incr (Obs.metrics obs) "engine.reconfigurations"
          end;
          let wrapped =
            List.map
              (fun a ->
                let b =
                  match List.assoc_opt a behaviors with
                  | Some b -> b
                  | None ->
                      if Tpdf.Graph.is_control graph a then
                        Reconfigure.scenario_control_behavior graph eff
                      else Behavior.fill default
                in
                (a, wrap st ~default ~corrupt a b))
              (Tpdf.Graph.actors graph)
          in
          let targets =
            List.map (fun a -> (a, 0)) (Reconfigure.starved_actors graph eff)
          in
          let until_ms =
            match kill_at_ms with Some k -> Some (k -. !offset) | None -> None
          in
          let commit () =
            Obs.capture_end obs cap;
            Obs.splice obs cap;
            previous_scenario := Some eff
          in
          let finish (stats : Engine.stats) =
            per_iteration := stats :: !per_iteration;
            offset := !offset +. stats.Engine.end_ms;
            List.iter
              (fun (a, n) ->
                Hashtbl.replace st.base_index a (get st.base_index a + n))
              stats.Engine.firings
          in
          let give_up why (partial : Engine.stats) =
            unrecovered := Some why;
            Metrics.incr (Obs.metrics obs) "supervisor.unrecovered";
            instant st ~cat:"supervisor" ~track:"supervisor" ~name:"stall"
              ~ts:partial.Engine.end_ms
              [ ("why", Ev.Str why) ];
            finish partial
          in
          (* A failed attempt: roll back and restart (escalating to every
             fallback pin) while the restart budget lasts, then give up
             with the attempt's events committed, as an unsupervised run
             would have. *)
          let fail_with why partial =
            Obs.capture_end obs cap;
            if !restarts < policy.Policy.max_restarts then begin
              restore_attempt st saved;
              incr restarts;
              st.obs <- Obs.shift obs !offset;
              Metrics.incr (Obs.metrics obs) "supervisor.restarts";
              instant st ~cat:"supervisor" ~track:"supervisor" ~name:"restart"
                ~ts:0.0
                [ ("why", Ev.Str why) ];
              escalate st ~ts:0.0;
              attempt ()
            end
            else begin
              Obs.splice obs cap;
              previous_scenario := Some eff;
              match partial with
              | Some partial -> give_up why partial
              | None ->
                  unrecovered := Some why;
                  Metrics.incr (Obs.metrics obs) "supervisor.unrecovered"
            end
          in
          match
            let eng =
              match resuming with
              | Some (snap, _) ->
                  Engine.restore ~graph ~valuation ~behaviors:wrapped
                    ~obs:st.obs ?pool ~default ~decode:(Option.get decode)
                    snap
              | None ->
                  Engine.create ~graph ~valuation ~behaviors:wrapped
                    ~obs:st.obs ?pool ~default ()
            in
            (Engine.run_outcome ?backend ?until_ms ~targets eng, eng)
          with
          | Engine.Completed stats, _ ->
              commit ();
              finish stats;
              (match (checkpoint_every, on_checkpoint) with
              | Some n, Some cb when !iterations_run mod n = 0 ->
                  cb (make_ck ~completed:!iterations_run ~eff ~engine:None)
              | _ -> ())
          | Engine.Stalled (_, _), eng
            when until_ms <> None && Engine.pending_events eng > 0 ->
              (* Not a deadlock: the [until_ms] cap — i.e. the kill
                 instant — stopped the run with events still queued.
                 Commit the partial iteration's stream (it happened) and
                 checkpoint the in-flight engine. *)
              commit ();
              let snap = Engine.snapshot ~encode:(Option.get encode) eng in
              killed :=
                Some
                  (make_ck ~completed:(!iterations_run - 1) ~eff
                     ~engine:(Some snap))
          | Engine.Stalled (s, partial), _ ->
              fail_with (Format.asprintf "%a" Engine.pp_stall s) (Some partial)
          | Engine.Budget_exceeded { steps; at_ms; partial }, _ ->
              fail_with
                (Printf.sprintf
                   "event budget exceeded after %d steps at %.3f ms" steps
                   at_ms)
                (Some partial)
          | exception Engine.Error e -> fail_with (Engine.error_message e) None
        in
        attempt ()
  done;
  let total = st.deadline_hits + st.deadline_misses in
  if Obs.enabled obs && total > 0 then
    Metrics.set_gauge (Obs.metrics obs) "supervisor.deadline_hit_ratio"
      (float_of_int st.deadline_hits /. float_of_int total);
  {
    iterations_run = !iterations_run;
    total_end_ms = !offset;
    retries = st.retries;
    skips = st.skips;
    corrupted = st.corrupted;
    ctrl_lost = st.ctrl_lost;
    deadline_misses = st.deadline_misses;
    deadline_hits = st.deadline_hits;
    restarts = !restarts;
    degrades = List.rev st.degrades;
    unrecovered = !unrecovered;
    killed = !killed;
    per_iteration = List.rev !per_iteration;
  }
