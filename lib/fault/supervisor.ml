module Tpdf = Tpdf_core
module Csdf = Tpdf_csdf
module Engine = Tpdf_sim.Engine
module Behavior = Tpdf_sim.Behavior
module Reconfigure = Tpdf_sim.Reconfigure
module Token = Tpdf_sim.Token
module Obs = Tpdf_obs.Obs
module Ev = Tpdf_obs.Event
module Metrics = Tpdf_obs.Metrics

type summary = {
  iterations_run : int;
  total_end_ms : float;
  retries : int;
  skips : int;
  corrupted : int;
  ctrl_lost : int;
  deadline_misses : int;
  deadline_hits : int;
  degrades : (string * string) list;
  unrecovered : string option;
  per_iteration : Engine.stats list;
}

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>%d iteration(s), %.3f ms total@,\
     retries %d, skips %d, corrupted %d, ctrl lost %d@,\
     deadline hits %d, misses %d"
    s.iterations_run s.total_end_ms s.retries s.skips s.corrupted s.ctrl_lost
    s.deadline_hits s.deadline_misses;
  List.iter
    (fun (k, m) -> Format.fprintf ppf "@,degraded %s -> %s" k m)
    s.degrades;
  (match s.unrecovered with
  | Some why -> Format.fprintf ppf "@,UNRECOVERED: %s" why
  | None -> ());
  Format.fprintf ppf "@]"

type state = {
  graph : Tpdf.Graph.t;
  plan : Plan.t;
  policy : Policy.t;
  mutable obs : Obs.t;  (* shifted view for the current iteration *)
  mutable retries : int;
  mutable skips : int;
  mutable corrupted : int;
  mutable ctrl_lost : int;
  mutable deadline_misses : int;
  mutable deadline_hits : int;
  mutable degrades : (string * string) list;  (* newest first *)
  consecutive : (string, int) Hashtbl.t;  (* watch actor -> bad streak *)
  tripped : (string, unit) Hashtbl.t;  (* watch actors already degraded *)
  degraded : (string, string) Hashtbl.t;  (* kernel -> pinned fallback mode *)
  base_index : (string, int) Hashtbl.t;  (* firings before this iteration *)
  skipped_now : (string, unit) Hashtbl.t;  (* actors whose current firing
                                              was substituted *)
  last_ctrl : (int, string) Hashtbl.t;  (* control channel -> last mode *)
  lock : Mutex.t;
      (* With a pooled engine the [work] wrappers of same-instant firings
         run on different domains; every access to the mutable state
         above goes through [locked].  The final values are still
         deterministic — counters commute and the hashtables are keyed
         per actor / per control channel, which same-instant firings
         touch disjointly — with one documented exception: if two watch
         actors trip at the same virtual instant, the order of their
         [degrades] entries follows actor scheduling (obs streams and
         metrics are unaffected; they are capture-spliced by the
         engine).  Firings of the same actor never overlap, so the
         wrapper's read-modify-write sequences stay atomic enough under
         the single lock. *)
}

let get tbl key = match Hashtbl.find_opt tbl key with Some v -> v | None -> 0

let locked st f =
  Mutex.lock st.lock;
  match f () with
  | v ->
      Mutex.unlock st.lock;
      v
  | exception e ->
      Mutex.unlock st.lock;
      raise e

let metric st name actor =
  let m = Obs.metrics st.obs in
  Metrics.incr m ("supervisor." ^ name);
  Metrics.incr m ("supervisor." ^ name ^ "." ^ actor)

let instant st ~cat ~track ~name ~ts args =
  if Obs.enabled st.obs then
    Obs.instant st.obs ~cat ~track ~name ~ts_ms:ts ~args ()

(* Trip every fallback watching [actor]: apply its pins for the following
   iterations and record the degrade instants. *)
let trip st ~actor ~ts =
  List.iter
    (fun (fb : Policy.fallback) ->
      if fb.watch = actor then
        List.iter
          (fun (kernel, mode) ->
            if Hashtbl.find_opt st.degraded kernel <> Some mode then begin
              Hashtbl.replace st.degraded kernel mode;
              st.degrades <- (kernel, mode) :: st.degrades;
              metric st "degrades" kernel;
              instant st ~cat:"supervisor" ~track:kernel ~name:"degrade" ~ts
                [
                  ("kernel", Ev.Str kernel);
                  ("mode", Ev.Str mode);
                  ("watch", Ev.Str actor);
                ]
            end)
          fb.pins)
    st.policy.Policy.fallbacks

let note_bad st ~actor ~ts =
  Hashtbl.replace st.consecutive actor (get st.consecutive actor + 1);
  if
    get st.consecutive actor >= st.policy.Policy.degrade_after
    && not (Hashtbl.mem st.tripped actor)
  then begin
    Hashtbl.replace st.tripped actor ();
    Hashtbl.replace st.consecutive actor 0;
    trip st ~actor ~ts
  end

let note_good st ~actor = Hashtbl.replace st.consecutive actor 0

let fail_count faults =
  List.fold_left
    (fun acc -> function Fault.Fail n -> acc + n | _ -> acc)
    0 faults

(* The mode a substituted control token should carry: the last mode emitted
   on that channel, else the mode the effective scenario pins the
   destination to. *)
let substitute_mode st ch =
  match Hashtbl.find_opt st.last_ctrl ch with
  | Some m -> m
  | None -> (
      let e = Csdf.Graph.channel (Tpdf.Graph.skeleton st.graph) ch in
      match Hashtbl.find_opt st.degraded e.Tpdf_graph.Digraph.dst with
      | Some m -> m
      | None -> (
          match Tpdf.Graph.modes st.graph e.Tpdf_graph.Digraph.dst with
          | m :: _ -> m.Tpdf.Mode.name
          | [] -> "default"))

let wrap st ~default ~corrupt actor (b : 'a Behavior.t) : 'a Behavior.t =
  let is_ctrl_chan = Tpdf.Graph.is_control_channel st.graph in
  let global_index ctx = get st.base_index actor + ctx.Behavior.index in
  let work ctx =
    let faults = Plan.draw st.plan ~actor ~index:(global_index ctx) in
    let ts = ctx.Behavior.now_ms in
    let fails = fail_count faults in
    locked st (fun () -> Hashtbl.remove st.skipped_now actor);
    let outputs =
      if fails = 0 then b.Behavior.work ctx
      else begin
        let budget = st.policy.Policy.max_retries in
        let absorbed = min fails budget in
        locked st (fun () -> st.retries <- st.retries + absorbed);
        Metrics.incr ~by:absorbed (Obs.metrics st.obs) "supervisor.retries";
        Metrics.incr ~by:absorbed (Obs.metrics st.obs)
          ("supervisor.retries." ^ actor);
        instant st ~cat:"fault" ~track:actor ~name:"retry" ~ts
          [ ("count", Ev.Int absorbed); ("injected", Ev.Int fails) ];
        if fails <= budget then b.Behavior.work ctx
        else begin
          (* Retry budget exhausted: skip the firing and substitute default
             tokens at the declared rates, preserving rate consistency. *)
          locked st (fun () ->
              st.skips <- st.skips + 1;
              metric st "skips" actor;
              Hashtbl.replace st.skipped_now actor ();
              instant st ~cat:"supervisor" ~track:actor ~name:"skip" ~ts
                [ ("injected", Ev.Int fails) ];
              note_bad st ~actor ~ts;
              Behavior.produce_at_rates ctx (fun ch _ ->
                  if is_ctrl_chan ch then Token.Ctrl (substitute_mode st ch)
                  else Token.Data default))
        end
      end
    in
    let outputs =
      if
        List.mem Fault.Corrupt faults
        && not (locked st (fun () -> Hashtbl.mem st.skipped_now actor))
      then
        List.map
          (fun (ch, toks) ->
            if is_ctrl_chan ch then (ch, toks)
            else begin
              let n = ref 0 in
              let toks =
                List.map
                  (function
                    | Token.Data v ->
                        incr n;
                        Token.Data (corrupt v)
                    | tok -> tok)
                  toks
              in
              locked st (fun () -> st.corrupted <- st.corrupted + !n);
              Metrics.incr ~by:!n (Obs.metrics st.obs) "supervisor.corrupted";
              Metrics.incr ~by:!n (Obs.metrics st.obs)
                ("supervisor.corrupted." ^ actor);
              instant st ~cat:"fault" ~track:actor ~name:"corrupt" ~ts
                [ ("count", Ev.Int !n); ("channel", Ev.Int ch) ];
              (ch, toks)
            end)
          outputs
      else outputs
    in
    let outputs =
      if List.mem Fault.Ctrl_loss faults then
        List.map
          (fun (ch, toks) ->
            if not (is_ctrl_chan ch) then (ch, toks)
            else
              match locked st (fun () -> Hashtbl.find_opt st.last_ctrl ch) with
              | None -> (ch, toks) (* nothing emitted yet: loss is moot *)
              | Some prev ->
                  let n = List.length toks in
                  locked st (fun () -> st.ctrl_lost <- st.ctrl_lost + n);
                  Metrics.incr ~by:n (Obs.metrics st.obs)
                    "supervisor.ctrl_lost";
                  Metrics.incr ~by:n (Obs.metrics st.obs)
                    ("supervisor.ctrl_lost." ^ actor);
                  instant st ~cat:"fault" ~track:actor ~name:"ctrl-loss" ~ts
                    [ ("count", Ev.Int n); ("mode", Ev.Str prev) ];
                  (ch, List.map (fun _ -> Token.Ctrl prev) toks))
          outputs
      else outputs
    in
    (* Remember the mode each control channel last carried. *)
    locked st (fun () ->
        List.iter
          (fun (ch, toks) ->
            if is_ctrl_chan ch then
              List.iter
                (function
                  | Token.Ctrl m -> Hashtbl.replace st.last_ctrl ch m
                  | Token.Data _ -> ())
                toks)
          outputs);
    outputs
  in
  let duration_ms ctx =
    let faults = Plan.draw st.plan ~actor ~index:(global_index ctx) in
    let ts = ctx.Behavior.now_ms in
    let d = b.Behavior.duration_ms ctx in
    let d =
      List.fold_left
        (fun d -> function
          | Fault.Overrun f -> d *. f
          | Fault.Jitter j -> d +. j
          | _ -> d)
        d faults
    in
    let d =
      d
      +. float_of_int (min (fail_count faults) st.policy.Policy.max_retries)
         *. st.policy.Policy.retry_backoff_ms
    in
    (* [duration_ms] runs on the orchestrating domain (the pooled engine
       commits sequentially), but take the lock anyway: it is cheap and
       keeps the wrapper safe under any caller. *)
    locked st (fun () ->
        match Policy.deadline_of st.policy actor with
        | Some deadline when not (Hashtbl.mem st.skipped_now actor) ->
            if d > deadline then begin
              st.deadline_misses <- st.deadline_misses + 1;
              metric st "deadline_misses" actor;
              instant st ~cat:"supervisor" ~track:actor ~name:"deadline-miss"
                ~ts
                [
                  ("duration_ms", Ev.Float d); ("deadline_ms", Ev.Float deadline);
                ];
              note_bad st ~actor ~ts
            end
            else begin
              st.deadline_hits <- st.deadline_hits + 1;
              metric st "deadline_hits" actor;
              note_good st ~actor
            end
        | _ -> ());
    d
  in
  { Behavior.work; duration_ms }

let effective_scenario st scenario =
  let pins =
    Hashtbl.fold (fun k m acc -> (k, m) :: acc) st.degraded []
    |> List.sort compare
  in
  pins @ List.filter (fun (k, _) -> not (Hashtbl.mem st.degraded k)) scenario

let run ~graph ~plan ?(policy = Policy.default) ?(obs = Obs.disabled)
    ?(behaviors = []) ?(scenario = []) ?(iterations = 1) ?corrupt ?pool
    ~valuation ~default () =
  if iterations < 1 then invalid_arg "Supervisor.run: iterations must be >= 1";
  Reconfigure.validate_scenario graph scenario;
  (match Policy.validate graph policy with
  | Ok () -> ()
  | Error m -> invalid_arg ("Supervisor.run: " ^ m));
  let corrupt = match corrupt with Some f -> f | None -> fun _ -> default in
  let st =
    {
      graph;
      plan;
      policy;
      obs;
      retries = 0;
      skips = 0;
      corrupted = 0;
      ctrl_lost = 0;
      deadline_misses = 0;
      deadline_hits = 0;
      degrades = [];
      consecutive = Hashtbl.create 8;
      tripped = Hashtbl.create 8;
      degraded = Hashtbl.create 8;
      base_index = Hashtbl.create 16;
      skipped_now = Hashtbl.create 8;
      last_ctrl = Hashtbl.create 8;
      lock = Mutex.create ();
    }
  in
  let offset = ref 0.0 in
  let per_iteration = ref [] in
  let unrecovered = ref None in
  let iterations_run = ref 0 in
  let previous_scenario = ref None in
  while !unrecovered = None && !iterations_run < iterations do
    incr iterations_run;
    let eff = effective_scenario st scenario in
    st.obs <- Obs.shift obs !offset;
    if Obs.enabled obs && !previous_scenario <> Some eff then begin
      Obs.instant st.obs ~cat:"reconfig" ~track:"supervisor"
        ~name:"reconfigure" ~ts_ms:0.0
        ~args:[ ("scenario", Ev.Str (Reconfigure.pp_scenario eff)) ]
        ();
      Metrics.incr (Obs.metrics obs) "engine.reconfigurations"
    end;
    previous_scenario := Some eff;
    let wrapped =
      List.map
        (fun a ->
          let b =
            match List.assoc_opt a behaviors with
            | Some b -> b
            | None ->
                if Tpdf.Graph.is_control graph a then
                  Reconfigure.scenario_control_behavior graph eff
                else Behavior.fill default
          in
          (a, wrap st ~default ~corrupt a b))
        (Tpdf.Graph.actors graph)
    in
    let targets =
      List.map (fun a -> (a, 0)) (Reconfigure.starved_actors graph eff)
    in
    let finish (stats : Engine.stats) =
      per_iteration := stats :: !per_iteration;
      offset := !offset +. stats.Engine.end_ms;
      List.iter
        (fun (a, n) -> Hashtbl.replace st.base_index a (get st.base_index a + n))
        stats.Engine.firings
    in
    let give_up why (partial : Engine.stats) =
      unrecovered := Some why;
      Metrics.incr (Obs.metrics obs) "supervisor.unrecovered";
      instant st ~cat:"supervisor" ~track:"supervisor" ~name:"stall"
        ~ts:partial.Engine.end_ms
        [ ("why", Ev.Str why) ];
      finish partial
    in
    match
      let eng =
        Engine.create ~graph ~valuation ~behaviors:wrapped ~obs:st.obs ?pool
          ~default ()
      in
      Engine.run_outcome ~targets eng
    with
    | Engine.Completed stats -> finish stats
    | Engine.Stalled (s, partial) ->
        give_up (Format.asprintf "%a" Engine.pp_stall s) partial
    | Engine.Budget_exceeded { steps; at_ms; partial } ->
        give_up
          (Printf.sprintf "event budget exceeded after %d steps at %.3f ms"
             steps at_ms)
          partial
    | exception Engine.Error e -> (
        unrecovered := Some (Engine.error_message e);
        Metrics.incr (Obs.metrics obs) "supervisor.unrecovered")
  done;
  let total = st.deadline_hits + st.deadline_misses in
  if Obs.enabled obs && total > 0 then
    Metrics.set_gauge (Obs.metrics obs) "supervisor.deadline_hit_ratio"
      (float_of_int st.deadline_hits /. float_of_int total);
  {
    iterations_run = !iterations_run;
    total_end_ms = !offset;
    retries = st.retries;
    skips = st.skips;
    corrupted = st.corrupted;
    ctrl_lost = st.ctrl_lost;
    deadline_misses = st.deadline_misses;
    deadline_hits = st.deadline_hits;
    degrades = List.rev st.degrades;
    unrecovered = !unrecovered;
    per_iteration = List.rev !per_iteration;
  }
