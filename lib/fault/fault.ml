type kind =
  | Fail of int
  | Overrun of float
  | Jitter of float
  | Corrupt
  | Ctrl_loss

type spec = { target : string option; prob : float; kind : kind }

let spec ?target ~prob kind =
  if not (prob >= 0.0 && prob <= 1.0) then
    invalid_arg "Fault.spec: probability must be in [0, 1]";
  (match kind with
  | Fail n when n <= 0 -> invalid_arg "Fault.spec: fail count must be positive"
  | Overrun f when f < 0.0 -> invalid_arg "Fault.spec: negative overrun factor"
  | Jitter j when j < 0.0 -> invalid_arg "Fault.spec: negative jitter"
  | _ -> ());
  { target; prob; kind }

let applies_to s actor =
  match s.target with None -> true | Some a -> a = actor

let kind_name = function
  | Fail _ -> "fail"
  | Overrun _ -> "overrun"
  | Jitter _ -> "jitter"
  | Corrupt -> "corrupt"
  | Ctrl_loss -> "ctrl-loss"

let pp_kind ppf = function
  | Fail n -> Format.fprintf ppf "fail(%d)" n
  | Overrun f -> Format.fprintf ppf "overrun(x%g)" f
  | Jitter j -> Format.fprintf ppf "jitter(%gms)" j
  | Corrupt -> Format.pp_print_string ppf "corrupt"
  | Ctrl_loss -> Format.pp_print_string ppf "ctrl-loss"

let specs_to_string specs =
  String.concat ","
    (List.map
       (fun s ->
         let target = match s.target with None -> "*" | Some a -> a in
         let arg =
           match s.kind with
           | Fail n -> Printf.sprintf ":%d" n
           | Overrun f -> Printf.sprintf ":%g" f
           | Jitter j -> Printf.sprintf ":%g" j
           | Corrupt | Ctrl_loss -> ""
         in
         Printf.sprintf "%s:%s:%g%s" (kind_name s.kind) target s.prob arg)
       specs)

let parse_item item =
  let fields = String.split_on_char ':' (String.trim item) in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let num name v k =
    match float_of_string_opt v with
    | Some f -> k f
    | None -> fail "%s: %S is not a number" name v
  in
  match fields with
  | kind :: target :: prob :: rest -> (
      let target = if target = "*" then None else Some target in
      num "probability" prob @@ fun prob ->
      if not (prob >= 0.0 && prob <= 1.0) then
        fail "probability %g is outside [0, 1]" prob
      else
        let arg ~default =
          match rest with
          | [] -> Ok default
          | [ v ] -> (
              match float_of_string_opt v with
              | Some f when f >= 0.0 -> Ok f
              | _ -> fail "%s: bad argument %S" kind v)
          | _ -> fail "%s: too many fields" kind
        in
        let no_arg k =
          match rest with
          | [] -> Ok { target; prob; kind = k }
          | _ -> fail "%s takes no argument" kind
        in
        match kind with
        | "fail" ->
            Result.bind (arg ~default:1.0) (fun n ->
                if n < 1.0 || Float.of_int (int_of_float n) <> n then
                  fail "fail: argument must be a positive integer"
                else Ok { target; prob; kind = Fail (int_of_float n) })
        | "overrun" ->
            Result.map
              (fun f -> { target; prob; kind = Overrun f })
              (arg ~default:2.0)
        | "jitter" ->
            Result.map
              (fun j -> { target; prob; kind = Jitter j })
              (arg ~default:1.0)
        | "corrupt" -> no_arg Corrupt
        | "ctrl-loss" -> no_arg Ctrl_loss
        | _ ->
            fail
              "unknown fault kind %S (expected fail, overrun, jitter, \
               corrupt or ctrl-loss)"
              kind)
  | _ -> fail "expected KIND:TARGET:PROB[:ARG], got %S" item

let parse_specs s =
  let items =
    List.filter
      (fun i -> String.trim i <> "")
      (String.split_on_char ',' s)
  in
  if items = [] then Error "empty fault spec"
  else
    List.fold_left
      (fun acc item ->
        Result.bind acc (fun specs ->
            Result.map (fun s -> s :: specs) (parse_item item)))
      (Ok []) items
    |> Result.map List.rev
