module Tpdf = Tpdf_core

let controlled graph =
  List.filter
    (fun a -> Tpdf.Graph.control_port graph a <> None)
    (Tpdf.Graph.actors graph)

let default_scenario graph =
  List.filter_map
    (fun k ->
      match List.rev (Tpdf.Graph.modes graph k) with
      | last :: _ -> Some (k, last.Tpdf.Mode.name)
      | [] -> None)
    (controlled graph)

let degraded_scenario graph =
  List.filter_map
    (fun k ->
      match Tpdf.Graph.modes graph k with
      | first :: _ :: _ -> Some (k, first.Tpdf.Mode.name)
      | _ -> None)
    (controlled graph)

let default_fallbacks graph =
  match degraded_scenario graph with
  | [] -> []
  | pins ->
      (* Watch the controlled kernels themselves and every actor the
         degraded scenario suppresses — the latter are exactly the
         ambitious-branch actors (QAM in the OFDM demodulator) whose
         deadline misses should trigger the fallback. *)
      let watches =
        List.map fst pins
        @ Tpdf_sim.Reconfigure.starved_actors graph pins
      in
      List.map (fun watch -> { Policy.watch; pins }) watches

let run ~graph ~seed ~specs ?backend ?policy ?scenario ?iterations ?obs
    ?behaviors ?pool ?kill_at_ms ?checkpoint_every ?on_checkpoint ?resume
    ~valuation () =
  let policy =
    match policy with
    | Some p -> p
    | None -> { Policy.default with fallbacks = default_fallbacks graph }
  in
  let scenario =
    match scenario with Some s -> s | None -> default_scenario graph
  in
  let plan = Plan.make ~seed specs in
  Supervisor.run ~graph ~plan ?backend ~policy ?obs ?behaviors ~scenario
    ?iterations ?pool ?kill_at_ms ?checkpoint_every ?on_checkpoint ?resume
    ~encode:string_of_int ~decode:int_of_string ~valuation ~default:0 ()

let recovered (s : Supervisor.summary) = s.unrecovered = None
