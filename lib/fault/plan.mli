(** Deterministic fault plans.

    A plan is a seed plus a list of {!Fault.spec}s.  {!draw} resolves the
    specs into the concrete faults injected into one firing, as a {e pure
    function} of [(seed, actor, index)]: the per-firing randomness comes
    from a splitmix64 generator ({!Tpdf_util.Prng}) keyed by hashing the
    actor name and firing index into the seed, so draws are independent of
    evaluation order and a whole chaos run is bit-for-bit reproducible from
    the seed. *)

type t

val make : seed:int -> Fault.spec list -> t
val none : t
(** The empty plan: {!draw} always returns []. *)

val seed : t -> int
val specs : t -> Fault.spec list

val draw : t -> actor:string -> index:int -> Fault.kind list
(** Faults injected into firing [index] of [actor], in spec order.  In the
    result, [Jitter j] carries the {e resolved} added milliseconds (drawn
    uniformly from [\[0, max)] of the spec).  Equal [(seed, actor, index)]
    always give equal results. *)

val pp : Format.formatter -> t -> unit
