module Tpdf = Tpdf_core
module Csdf = Tpdf_csdf
module Digraph = Tpdf_graph.Digraph
module Obs = Tpdf_obs.Obs
module Ev = Tpdf_obs.Event
module Metrics = Tpdf_obs.Metrics

type iteration_stats = {
  valuation : Tpdf_param.Valuation.t;
  stats : Engine.stats;
}

type abort = { abort_index : int; abort_what : string; abort_reason : string }

type report = {
  iterations : iteration_stats list;
  total_end_ms : float;
  max_occupancy : (int * int) list;
  aborts : abort list;
}

let merge_occupancy iterations =
  match iterations with
  | [] -> []
  | first :: rest ->
      List.fold_left
        (fun acc it ->
          List.map
            (fun (ch, occ) ->
              match List.assoc_opt ch it.stats.Engine.max_occupancy with
              | Some occ' -> (ch, max occ occ')
              | None -> (ch, occ))
            acc)
        first.stats.Engine.max_occupancy rest

let reconfigure_instant obs ~offset ~what detail =
  if Obs.enabled obs then begin
    Obs.instant obs ~cat:"reconfig" ~track:"engine" ~name:"reconfigure"
      ~ts_ms:offset
      ~args:[ (what, Ev.Str detail) ]
      ();
    Metrics.incr (Obs.metrics obs) "engine.reconfigurations"
  end

(* ------------------------------------------------------------------ *)
(* Transactional validate-then-commit                                  *)
(* ------------------------------------------------------------------ *)

let txn_instant obs ~offset ~name args =
  if Obs.enabled obs then
    Obs.instant obs ~cat:"txn" ~track:"engine" ~name ~ts_ms:offset
      ~args:(List.map (fun (k, v) -> (k, Ev.Str v)) args)
      ()

(* Static admission check for a new valuation: every parameter bound,
   rate safety, boundedness (Theorem 2) with the valuation as the
   liveness sample.  Runs without [obs] — a rejected transaction must
   leave no trace beyond its [txn.abort]. *)
let validate_valuation graph valuation =
  let missing =
    List.filter
      (fun p -> not (Tpdf_param.Valuation.mem valuation p))
      (Tpdf.Graph.parameters graph)
  in
  if missing <> [] then
    Error ("unbound parameter(s): " ^ String.concat ", " missing)
  else
    match Tpdf.Analysis.rate_safety graph with
    | Error (v :: _) ->
        Error
          (Printf.sprintf "rate safety violated at %s/channel %d: %s"
             v.Tpdf.Analysis.control v.Tpdf.Analysis.channel
             v.Tpdf.Analysis.reason)
    | Error [] -> Error "rate safety violated"
    | Ok () -> (
        let b = Tpdf.Analysis.check_boundedness graph ~samples:[ valuation ] in
        if not b.Tpdf.Analysis.bounded then
          Error
            ("not bounded under this valuation: "
            ^ String.concat "; " b.Tpdf.Analysis.notes)
        else
          match Tpdf.Liveness.check graph valuation with
          | r when r.Tpdf.Liveness.live -> Ok ()
          | r ->
              Error
                ("not live under this valuation; stuck: "
                ^ String.concat ", " r.Tpdf.Liveness.stuck))

type staged =
  | St_committed of Engine.stats
  | St_aborted of string  (** reason; every effect rolled back *)

(* Run one iteration with its instrumentation staged in a capture:
   committed (spliced) only when the run completes back at the iteration
   boundary, discarded wholesale otherwise.  [run ()] must create its
   engine(s) under [obs]-derived collectors so their emissions land in
   the capture. *)
let staged_iteration obs ~run : staged =
  let cap = Obs.capture_begin obs in
  let result =
    match run () with
    | Engine.Completed stats, eng ->
        if Engine.at_boundary eng then St_committed stats
        else St_aborted "completed away from the iteration boundary"
    | Engine.Stalled (stall, _), _ ->
        St_aborted
          (Format.asprintf "stalled at %g ms (%a)" stall.Engine.at_ms
             Engine.pp_stall stall)
    | Engine.Budget_exceeded { steps; at_ms; _ }, _ ->
        St_aborted
          (Printf.sprintf "event budget exhausted (%d steps, at %g ms)" steps
             at_ms)
    | exception Engine.Error e -> St_aborted (Engine.error_message e)
  in
  Obs.capture_end obs cap;
  (match result with
  | St_committed _ -> Obs.splice obs cap
  | St_aborted _ -> (* dropping the buffer rolls everything back *) ());
  result

let record_abort obs ~offset ~index ~what reason =
  txn_instant obs ~offset:!offset ~name:"txn.abort"
    [ ("what", what); ("reason", reason) ];
  if Obs.enabled obs then
    Metrics.incr (Obs.metrics obs) "reconfigure.aborts";
  { abort_index = index; abort_what = what; abort_reason = reason }

let run_sequence ~graph ?backend ?(obs = Obs.disabled) ?(behaviors = [])
    ?targets ?pool ?(txn = false) ~default valuations =
  if valuations = [] then
    invalid_arg "Reconfigure.run_sequence: empty valuation sequence";
  let offset = ref 0.0 in
  let aborts = ref [] in
  let committed = ref None in
  (* The plain (non-transactional) iteration body: reconfigure instant,
     fresh engine on the shifted timeline, one iteration. *)
  let plain valuation =
    reconfigure_instant obs ~offset:!offset ~what:"valuation"
      (Format.asprintf "%a" Tpdf_param.Valuation.pp valuation);
    let eng =
      Engine.create ~graph ~valuation ~behaviors
        ~obs:(Obs.shift obs !offset) ?pool ~default ()
    in
    let targets =
      match targets with None -> None | Some f -> Some (f valuation)
    in
    let stats = Engine.run ?backend ?targets eng in
    offset := !offset +. stats.Engine.end_ms;
    { valuation; stats }
  in
  let iterations =
    List.mapi
      (fun index valuation ->
        if not txn then plain valuation
        else begin
          let what =
            Format.asprintf "%a" Tpdf_param.Valuation.pp valuation
          in
          txn_instant obs ~offset:!offset ~name:"txn.begin"
            [ ("valuation", what) ];
          let staged =
            match validate_valuation graph valuation with
            | Error reason -> St_aborted reason
            | Ok () ->
                staged_iteration obs ~run:(fun () ->
                    reconfigure_instant obs ~offset:!offset ~what:"valuation"
                      what;
                    let eng =
                      Engine.create ~graph ~valuation ~behaviors
                        ~obs:(Obs.shift obs !offset) ?pool ~default ()
                    in
                    let targets =
                      match targets with
                      | None -> None
                      | Some f -> Some (f valuation)
                    in
                    (Engine.run_outcome ?backend ?targets eng, eng))
          in
          match staged with
          | St_committed stats ->
              offset := !offset +. stats.Engine.end_ms;
              txn_instant obs ~offset:!offset ~name:"txn.commit"
                [ ("valuation", what) ];
              committed := Some valuation;
              { valuation; stats }
          | St_aborted reason -> (
              aborts := record_abort obs ~offset ~index ~what reason :: !aborts;
              match !committed with
              | Some prev -> plain prev
              | None ->
                  failwith
                    (Printf.sprintf
                       "Reconfigure.run_sequence: initial valuation rejected \
                        (%s) and no previous valuation to roll back to"
                       reason))
        end)
      valuations
  in
  {
    iterations;
    total_end_ms =
      List.fold_left (fun acc it -> acc +. it.stats.Engine.end_ms) 0.0 iterations;
    max_occupancy = merge_occupancy iterations;
    aborts = List.rev !aborts;
  }

(* ------------------------------------------------------------------ *)
(* Mode-scenario sweeps                                                *)
(* ------------------------------------------------------------------ *)

type scenario = (string * string) list

let mode_scenarios graph =
  let controlled =
    List.filter
      (fun a -> Tpdf.Graph.control_port graph a <> None)
      (Tpdf.Graph.actors graph)
  in
  if controlled = [] then [ [] ]
  else
    let runs =
      List.fold_left
        (fun acc k -> max acc (List.length (Tpdf.Graph.modes graph k)))
        1 controlled
    in
    List.init runs (fun i ->
        List.map
          (fun k ->
            let modes = Tpdf.Graph.modes graph k in
            let m = List.nth modes (i mod List.length modes) in
            (k, m.Tpdf.Mode.name))
          controlled)

let validate_scenario graph scenario =
  List.iter
    (fun (k, m) ->
      if not (Csdf.Graph.mem_actor (Tpdf.Graph.skeleton graph) k) then
        invalid_arg
          (Printf.sprintf "Reconfigure: scenario names unknown actor %s" k);
      match Tpdf.Graph.find_mode graph k m with
      | (_ : Tpdf.Mode.t) -> ()
      | exception Not_found ->
          invalid_arg
            (Printf.sprintf
               "Reconfigure: scenario pins %s to undeclared mode %S" k m))
    scenario

let pp_scenario scenario =
  if scenario = [] then "default"
  else
    String.concat ","
      (List.map (fun (k, m) -> Printf.sprintf "%s=%s" k m) scenario)

(* Actors that cannot complete any firing under [scenario] because some
   producer upstream keeps a needed input empty.  Fixpoint of "an input
   channel is dead when its source suppresses it (pinned mode) or its
   source is itself starved".  An actor whose pinned mode waits on the
   highest-priority available input only starves when {e all} its data
   inputs are dead; everyone else starves as soon as one needed input is. *)
let starved_actors graph scenario =
  validate_scenario graph scenario;
  let skel = Tpdf.Graph.skeleton graph in
  let pinned a =
    match List.assoc_opt a scenario with
    | Some name -> Some (Tpdf.Graph.find_mode graph a name)
    | None -> None
  in
  let suppressed_by_src (e : (string, Csdf.Graph.channel) Digraph.edge) =
    match pinned e.src with
    | Some m -> not (Tpdf.Mode.output_may_be_active m e.id)
    | None -> false
  in
  let starved = Hashtbl.create 8 in
  let dead (e : (string, Csdf.Graph.channel) Digraph.edge) =
    suppressed_by_src e || Hashtbl.mem starved e.src
  in
  let data_ins a =
    List.filter
      (fun (e : (string, Csdf.Graph.channel) Digraph.edge) ->
        not (Tpdf.Graph.is_control_channel graph e.id))
      (Csdf.Graph.in_channels skel a)
  in
  let ctrl_in a =
    List.filter
      (fun (e : (string, Csdf.Graph.channel) Digraph.edge) ->
        Tpdf.Graph.is_control_channel graph e.id)
      (Csdf.Graph.in_channels skel a)
  in
  let is_starved a =
    Tpdf.Graph.clock_period_ms graph a = None
    && (List.exists dead (ctrl_in a)
       ||
       let ins = data_ins a in
       match pinned a with
       | Some m when m.Tpdf.Mode.inputs = Tpdf.Mode.Highest_priority_available
         ->
           ins <> [] && List.for_all dead ins
       | Some m ->
           List.exists
             (fun (e : (string, Csdf.Graph.channel) Digraph.edge) ->
               dead e && Tpdf.Mode.input_statically_active m e.id)
             ins
       | None -> List.exists dead ins)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun a ->
        if (not (Hashtbl.mem starved a)) && is_starved a then begin
          Hashtbl.replace starved a ();
          changed := true
        end)
      (Tpdf.Graph.actors graph)
  done;
  List.filter (Hashtbl.mem starved) (Tpdf.Graph.actors graph)

(* A behaviour for a control actor that emits, on each control channel, the
   mode [scenario] pins that channel's destination kernel to. *)
let scenario_control_behavior graph scenario =
  let skel = Tpdf.Graph.skeleton graph in
  let mode_for ch =
    let e = Csdf.Graph.channel skel ch in
    match List.assoc_opt e.Digraph.dst scenario with
    | Some name -> name
    | None -> (
        match Tpdf.Graph.modes graph e.Digraph.dst with
        | m :: _ -> m.Tpdf.Mode.name
        | [] -> "default")
  in
  Behavior.make (fun ctx ->
      Behavior.produce_at_rates ctx (fun ch _ -> Token.Ctrl (mode_for ch)))

let run_scenarios ~graph ?backend ?(obs = Obs.disabled) ?(behaviors = [])
    ?(iterations = 1) ?pool ?(txn = false) ~valuation ~default scenarios =
  if scenarios = [] then
    invalid_arg "Reconfigure.run_scenarios: empty scenario sequence";
  if not txn then List.iter (validate_scenario graph) scenarios;
  let offset = ref 0.0 in
  let aborts = ref [] in
  let committed = ref None in
  let plain scenario =
    reconfigure_instant obs ~offset:!offset ~what:"scenario"
      (pp_scenario scenario);
    let ctrl_behaviors =
      List.filter_map
        (fun a ->
          if List.mem_assoc a behaviors then None
          else if Tpdf.Graph.clock_period_ms graph a <> None then None
          else Some (a, scenario_control_behavior graph scenario))
        (Tpdf.Graph.control_actors graph)
    in
    let targets = List.map (fun a -> (a, 0)) (starved_actors graph scenario) in
    let eng =
      Engine.create ~graph ~valuation
        ~behaviors:(behaviors @ ctrl_behaviors)
        ~obs:(Obs.shift obs !offset) ?pool ~default ()
    in
    let stats = Engine.run ?backend ~iterations ~targets eng in
    offset := !offset +. stats.Engine.end_ms;
    { valuation; stats }
  in
  let runs =
    List.mapi
      (fun index scenario ->
        if not txn then plain scenario
        else begin
          let what = pp_scenario scenario in
          txn_instant obs ~offset:!offset ~name:"txn.begin"
            [ ("scenario", what) ];
          let staged =
            match validate_scenario graph scenario with
            | exception Invalid_argument reason -> St_aborted reason
            | () ->
                staged_iteration obs ~run:(fun () ->
                    reconfigure_instant obs ~offset:!offset ~what:"scenario"
                      what;
                    let ctrl_behaviors =
                      List.filter_map
                        (fun a ->
                          if List.mem_assoc a behaviors then None
                          else if Tpdf.Graph.clock_period_ms graph a <> None
                          then None
                          else
                            Some (a, scenario_control_behavior graph scenario))
                        (Tpdf.Graph.control_actors graph)
                    in
                    let targets =
                      List.map
                        (fun a -> (a, 0))
                        (starved_actors graph scenario)
                    in
                    let eng =
                      Engine.create ~graph ~valuation
                        ~behaviors:(behaviors @ ctrl_behaviors)
                        ~obs:(Obs.shift obs !offset) ?pool ~default ()
                    in
                    (Engine.run_outcome ?backend ~iterations ~targets eng, eng))
          in
          match staged with
          | St_committed stats ->
              offset := !offset +. stats.Engine.end_ms;
              txn_instant obs ~offset:!offset ~name:"txn.commit"
                [ ("scenario", what) ];
              committed := Some scenario;
              { valuation; stats }
          | St_aborted reason -> (
              aborts := record_abort obs ~offset ~index ~what reason :: !aborts;
              match !committed with
              | Some prev -> plain prev
              | None ->
                  failwith
                    (Printf.sprintf
                       "Reconfigure.run_scenarios: initial scenario rejected \
                        (%s) and no previous scenario to roll back to"
                       reason))
        end)
      scenarios
  in
  {
    iterations = runs;
    total_end_ms =
      List.fold_left (fun acc it -> acc +. it.stats.Engine.end_ms) 0.0 runs;
    max_occupancy = merge_occupancy runs;
    aborts = List.rev !aborts;
  }
