module Tpdf = Tpdf_core
module Csdf = Tpdf_csdf
module Digraph = Tpdf_graph.Digraph
module Obs = Tpdf_obs.Obs
module Ev = Tpdf_obs.Event
module Metrics = Tpdf_obs.Metrics

type iteration_stats = {
  valuation : Tpdf_param.Valuation.t;
  stats : Engine.stats;
}

type report = {
  iterations : iteration_stats list;
  total_end_ms : float;
  max_occupancy : (int * int) list;
}

let merge_occupancy iterations =
  match iterations with
  | [] -> []
  | first :: rest ->
      List.fold_left
        (fun acc it ->
          List.map
            (fun (ch, occ) ->
              match List.assoc_opt ch it.stats.Engine.max_occupancy with
              | Some occ' -> (ch, max occ occ')
              | None -> (ch, occ))
            acc)
        first.stats.Engine.max_occupancy rest

let reconfigure_instant obs ~offset ~what detail =
  if Obs.enabled obs then begin
    Obs.instant obs ~cat:"reconfig" ~track:"engine" ~name:"reconfigure"
      ~ts_ms:offset
      ~args:[ (what, Ev.Str detail) ]
      ();
    Metrics.incr (Obs.metrics obs) "engine.reconfigurations"
  end

let run_sequence ~graph ?(obs = Obs.disabled) ?(behaviors = []) ?targets
    ?pool ~default valuations =
  if valuations = [] then
    invalid_arg "Reconfigure.run_sequence: empty valuation sequence";
  let offset = ref 0.0 in
  let iterations =
    List.map
      (fun valuation ->
        reconfigure_instant obs ~offset:!offset ~what:"valuation"
          (Format.asprintf "%a" Tpdf_param.Valuation.pp valuation);
        let eng =
          Engine.create ~graph ~valuation ~behaviors
            ~obs:(Obs.shift obs !offset) ?pool ~default ()
        in
        let targets =
          match targets with None -> None | Some f -> Some (f valuation)
        in
        let stats = Engine.run ?targets eng in
        offset := !offset +. stats.Engine.end_ms;
        { valuation; stats })
      valuations
  in
  {
    iterations;
    total_end_ms =
      List.fold_left (fun acc it -> acc +. it.stats.Engine.end_ms) 0.0 iterations;
    max_occupancy = merge_occupancy iterations;
  }

(* ------------------------------------------------------------------ *)
(* Mode-scenario sweeps                                                *)
(* ------------------------------------------------------------------ *)

type scenario = (string * string) list

let mode_scenarios graph =
  let controlled =
    List.filter
      (fun a -> Tpdf.Graph.control_port graph a <> None)
      (Tpdf.Graph.actors graph)
  in
  if controlled = [] then [ [] ]
  else
    let runs =
      List.fold_left
        (fun acc k -> max acc (List.length (Tpdf.Graph.modes graph k)))
        1 controlled
    in
    List.init runs (fun i ->
        List.map
          (fun k ->
            let modes = Tpdf.Graph.modes graph k in
            let m = List.nth modes (i mod List.length modes) in
            (k, m.Tpdf.Mode.name))
          controlled)

let validate_scenario graph scenario =
  List.iter
    (fun (k, m) ->
      if not (Csdf.Graph.mem_actor (Tpdf.Graph.skeleton graph) k) then
        invalid_arg
          (Printf.sprintf "Reconfigure: scenario names unknown actor %s" k);
      match Tpdf.Graph.find_mode graph k m with
      | (_ : Tpdf.Mode.t) -> ()
      | exception Not_found ->
          invalid_arg
            (Printf.sprintf
               "Reconfigure: scenario pins %s to undeclared mode %S" k m))
    scenario

let pp_scenario scenario =
  if scenario = [] then "default"
  else
    String.concat ","
      (List.map (fun (k, m) -> Printf.sprintf "%s=%s" k m) scenario)

(* Actors that cannot complete any firing under [scenario] because some
   producer upstream keeps a needed input empty.  Fixpoint of "an input
   channel is dead when its source suppresses it (pinned mode) or its
   source is itself starved".  An actor whose pinned mode waits on the
   highest-priority available input only starves when {e all} its data
   inputs are dead; everyone else starves as soon as one needed input is. *)
let starved_actors graph scenario =
  validate_scenario graph scenario;
  let skel = Tpdf.Graph.skeleton graph in
  let pinned a =
    match List.assoc_opt a scenario with
    | Some name -> Some (Tpdf.Graph.find_mode graph a name)
    | None -> None
  in
  let suppressed_by_src (e : (string, Csdf.Graph.channel) Digraph.edge) =
    match pinned e.src with
    | Some m -> not (Tpdf.Mode.output_may_be_active m e.id)
    | None -> false
  in
  let starved = Hashtbl.create 8 in
  let dead (e : (string, Csdf.Graph.channel) Digraph.edge) =
    suppressed_by_src e || Hashtbl.mem starved e.src
  in
  let data_ins a =
    List.filter
      (fun (e : (string, Csdf.Graph.channel) Digraph.edge) ->
        not (Tpdf.Graph.is_control_channel graph e.id))
      (Csdf.Graph.in_channels skel a)
  in
  let ctrl_in a =
    List.filter
      (fun (e : (string, Csdf.Graph.channel) Digraph.edge) ->
        Tpdf.Graph.is_control_channel graph e.id)
      (Csdf.Graph.in_channels skel a)
  in
  let is_starved a =
    Tpdf.Graph.clock_period_ms graph a = None
    && (List.exists dead (ctrl_in a)
       ||
       let ins = data_ins a in
       match pinned a with
       | Some m when m.Tpdf.Mode.inputs = Tpdf.Mode.Highest_priority_available
         ->
           ins <> [] && List.for_all dead ins
       | Some m ->
           List.exists
             (fun (e : (string, Csdf.Graph.channel) Digraph.edge) ->
               dead e && Tpdf.Mode.input_statically_active m e.id)
             ins
       | None -> List.exists dead ins)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun a ->
        if (not (Hashtbl.mem starved a)) && is_starved a then begin
          Hashtbl.replace starved a ();
          changed := true
        end)
      (Tpdf.Graph.actors graph)
  done;
  List.filter (Hashtbl.mem starved) (Tpdf.Graph.actors graph)

(* A behaviour for a control actor that emits, on each control channel, the
   mode [scenario] pins that channel's destination kernel to. *)
let scenario_control_behavior graph scenario =
  let skel = Tpdf.Graph.skeleton graph in
  let mode_for ch =
    let e = Csdf.Graph.channel skel ch in
    match List.assoc_opt e.Digraph.dst scenario with
    | Some name -> name
    | None -> (
        match Tpdf.Graph.modes graph e.Digraph.dst with
        | m :: _ -> m.Tpdf.Mode.name
        | [] -> "default")
  in
  Behavior.make (fun ctx ->
      Behavior.produce_at_rates ctx (fun ch _ -> Token.Ctrl (mode_for ch)))

let run_scenarios ~graph ?(obs = Obs.disabled) ?(behaviors = [])
    ?(iterations = 1) ?pool ~valuation ~default scenarios =
  if scenarios = [] then
    invalid_arg "Reconfigure.run_scenarios: empty scenario sequence";
  List.iter (validate_scenario graph) scenarios;
  let offset = ref 0.0 in
  let runs =
    List.map
      (fun scenario ->
        reconfigure_instant obs ~offset:!offset ~what:"scenario"
          (pp_scenario scenario);
        let ctrl_behaviors =
          List.filter_map
            (fun a ->
              if List.mem_assoc a behaviors then None
              else if Tpdf.Graph.clock_period_ms graph a <> None then None
              else Some (a, scenario_control_behavior graph scenario))
            (Tpdf.Graph.control_actors graph)
        in
        let targets =
          List.map (fun a -> (a, 0)) (starved_actors graph scenario)
        in
        let eng =
          Engine.create ~graph ~valuation
            ~behaviors:(behaviors @ ctrl_behaviors)
            ~obs:(Obs.shift obs !offset) ?pool ~default ()
        in
        let stats = Engine.run ~iterations ~targets eng in
        offset := !offset +. stats.Engine.end_ms;
        { valuation; stats })
      scenarios
  in
  {
    iterations = runs;
    total_end_ms =
      List.fold_left (fun acc it -> acc +. it.stats.Engine.end_ms) 0.0 runs;
    max_occupancy = merge_occupancy runs;
  }
