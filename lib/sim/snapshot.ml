(* Plain-data image of a running engine.  Lives below [Engine] so that
   [Tpdf_ckpt] can serialize run state without a dependency cycle: the
   engine produces/consumes this type, the checkpoint library turns it
   into bytes.  Token payloads are already encoded to strings here — the
   snapshot is monomorphic even though the engine is ['a t]. *)

type token = Data of string | Ctrl of string

type firing = {
  f_actor : string;
  f_index : int;
  f_phase : int;
  f_mode : string;
  f_start_ms : float;
  f_finish_ms : float;
}

type heap_event =
  | Complete of {
      c_actor : string;
      c_outputs : (int * token list) list;
      c_record : firing;
    }
  | Tick of string

type heap_entry = { h_time : float; h_seq : int; h_event : heap_event }

type actor_state = {
  a_name : string;
  a_count : int;  (* firings started *)
  a_completed : int;
  a_busy : bool;
  a_last_mode : string;
}

type channel_state = {
  c_id : int;
  c_tokens : token list;  (* front of the queue first *)
  c_debt : int;
  c_dropped : int;
  c_max_occ : int;
}

type t = {
  now : float;
  armed : bool;  (* clock Ticks already scheduled by a previous run *)
  heap_seq : int;  (* the heap's insertion counter *)
  actors : actor_state list;  (* in dense-actor-id order *)
  channels : channel_state list;  (* in skeleton channel order *)
  heap : heap_entry list;  (* in (time, seq) order *)
  trace : firing list;  (* completion order, oldest first *)
}
