(* Support for the engine's compiled static-schedule backend.

   A consistent TPDF graph × mode scenario admits a static schedule
   (PAPER §III-D): per iteration every actor fires exactly its
   repetition-vector count, and with the uniform firing durations the
   default behaviours use, the ASAP execution the event engine computes
   degenerates into *rounds* — all firings started at time T complete
   together at T + d, enabling the next wave.  The engine exploits this:
   instead of a binary heap ordered by (time, seq) it keeps two flat
   FIFOs of pending completions (the current round and the next), which
   replicate the heap's pop order exactly — entries within a round share
   their timestamp and FIFO order is seq order — at O(1) per event, with
   zero allocation.  The uniformity assumption is checked at run time;
   the first non-uniform duration hands the pending entries (original
   timestamps and sequence numbers intact) back to the event heap and
   the run continues under the interpreter, byte-identically.

   This module provides the allocation-free pending-completion FIFO the
   round executor runs on, and the repetition-vector firing plan the
   backend's firing counts are checked against (test_engine_equiv's
   qcheck).  The executor itself lives in [Engine] — it is an execution
   mode of the engine's state, not a separate machine. *)

module Csdf = Tpdf_csdf

(* Why the engine declined to engage the compiled backend for a run. *)
type ineligible =
  | Clocked_actors  (** clock ticks need the timed event queue *)
  | Pool_attached  (** staged parallel commits go through the heap *)
  | Pending_events  (** restored / resumed mid-flight: heap not empty *)
  | Busy_actors  (** in-flight firings from a previous capped run *)

let pp_ineligible ppf r =
  Format.pp_print_string ppf
    (match r with
    | Clocked_actors -> "clocked actors"
    | Pool_attached -> "domain pool attached"
    | Pending_events -> "pending events in the heap"
    | Busy_actors -> "in-flight firings")

(* The static firing plan of a consistent graph: per-iteration counts are
   the repetition vector, so [iterations] iterations fire each actor
   [iterations × q] times.  This is what the compiled backend's observed
   firing counts must equal on a completed run (clock actors excepted —
   they are unbounded and force the event engine anyway). *)
let firing_counts conc ~iterations actors =
  List.map (fun a -> (a, iterations * Csdf.Concrete.q conc a)) actors

(* Flat FIFO of pending completions in parallel arrays: timestamps and
   sequence numbers stay unboxed, payloads ('u = delivered outputs,
   'v = the firing record) sit in their own slots, so a push/advance
   pair allocates nothing.  Head access is by field — returning a tuple
   would box one per event, which is the cost this replaces. *)
module Fifo = struct
  type ('u, 'v) t = {
    dummy_u : 'u;
    dummy_v : 'v;
    mutable times : float array;
    mutable seqs : int array;
    mutable ais : int array;
    mutable us : 'u array;
    mutable vs : 'v array;
    mutable head : int;
    mutable len : int;
  }

  exception Empty

  let create ?(capacity = 64) ~dummy_u ~dummy_v () =
    let capacity = max capacity 1 in
    {
      dummy_u;
      dummy_v;
      times = Array.make capacity 0.0;
      seqs = Array.make capacity 0;
      ais = Array.make capacity 0;
      us = Array.make capacity dummy_u;
      vs = Array.make capacity dummy_v;
      head = 0;
      len = 0;
    }

  let length t = t.len
  let is_empty t = t.len = 0

  (* Copy the ring's logical contents (unrolled, oldest first) into a
     fresh backing array.  Top-level so it stays polymorphic across the
     five parallel arrays. *)
  let unroll ~head ~len src dst =
    let cap = Array.length src in
    let tail = cap - head in
    Array.blit src head dst 0 (min len tail);
    if len > tail then Array.blit src 0 dst tail (len - tail)

  let grow t =
    let cap = Array.length t.times in
    let cap' = 2 * cap in
    let swap mk old =
      let dst = mk cap' in
      unroll ~head:t.head ~len:t.len old dst;
      dst
    in
    t.times <- swap (fun c -> Array.make c 0.0) t.times;
    t.seqs <- swap (fun c -> Array.make c 0) t.seqs;
    t.ais <- swap (fun c -> Array.make c 0) t.ais;
    t.us <- swap (fun c -> Array.make c t.dummy_u) t.us;
    t.vs <- swap (fun c -> Array.make c t.dummy_v) t.vs;
    t.head <- 0

  let push t ~time ~seq ~ai u v =
    if t.len = Array.length t.times then grow t;
    let cap = Array.length t.times in
    let i = t.head + t.len in
    let i = if i >= cap then i - cap else i in
    t.times.(i) <- time;
    t.seqs.(i) <- seq;
    t.ais.(i) <- ai;
    t.us.(i) <- u;
    t.vs.(i) <- v;
    t.len <- t.len + 1

  let head_time t = if t.len = 0 then raise Empty else t.times.(t.head)
  let head_seq t = if t.len = 0 then raise Empty else t.seqs.(t.head)
  let head_ai t = if t.len = 0 then raise Empty else t.ais.(t.head)
  let head_u t = if t.len = 0 then raise Empty else t.us.(t.head)
  let head_v t = if t.len = 0 then raise Empty else t.vs.(t.head)

  let advance t =
    if t.len = 0 then raise Empty;
    t.us.(t.head) <- t.dummy_u;
    t.vs.(t.head) <- t.dummy_v;
    let h = t.head + 1 in
    t.head <- (if h = Array.length t.times then 0 else h);
    t.len <- t.len - 1

  (* Pending entries oldest-first, for handing back to the event heap on
     deoptimisation or an early stop (until_ms / event budget). *)
  let entries t =
    let out = ref [] in
    let cap = Array.length t.times in
    for k = t.len - 1 downto 0 do
      let i = t.head + k in
      let i = if i >= cap then i - cap else i in
      out := (t.times.(i), t.seqs.(i), t.ais.(i), t.us.(i), t.vs.(i)) :: !out
    done;
    !out
end
