(** Functional behaviour of actors in the discrete-event runtime.

    The static model fixes {e how many} tokens move; a behaviour says
    {e what} they contain and {e how long} a firing takes.  The engine
    calls [work] once per firing with the consumed tokens and expects the
    produced tokens back, exactly matching the declared rates of the
    active output channels. *)

type 'a ctx = {
  actor : string;
  mode : string;  (** mode selected by the control token ("default" else) *)
  phase : int;  (** cyclo-static phase of this firing *)
  index : int;  (** 0-based firing number *)
  now_ms : float;  (** simulation time at firing start *)
  inputs : (int * 'a Token.t list) list;
      (** consumed tokens, per active input channel id *)
  out_rates : (int * int) list;
      (** tokens expected on each output channel for this firing (0 for
          outputs the mode rejects) *)
}

type 'a t = {
  work : 'a ctx -> (int * 'a Token.t list) list;
  duration_ms : 'a ctx -> float;
}

val make : ?duration_ms:('a ctx -> float) -> ('a ctx -> (int * 'a Token.t list) list) -> 'a t
(** Default duration: 1.0 ms per firing. *)

val fill : ?duration_ms:('a ctx -> float) -> 'a -> 'a t
(** Produce copies of the given value at the expected rates on every active
    output channel — sources and placeholder kernels. *)

val forward : ?duration_ms:('a ctx -> float) -> unit -> 'a t
(** Concatenate all consumed data tokens and redistribute them over the
    active output channels at the expected rates.
    @raise Failure at run time if the token counts cannot match. *)

val sink : ?duration_ms:('a ctx -> float) -> ('a ctx -> unit) -> 'a t
(** Consume tokens, call the callback for its side effect, produce
    nothing. *)

val emit_mode : ?duration_ms:('a ctx -> float) -> ('a ctx -> string) -> 'a t
(** Control-actor behaviour: emit the computed mode name as control tokens
    at the expected rates on every output channel. *)

val const_duration : float -> 'a ctx -> float

val produce_at_rates : 'a ctx -> (int -> int -> 'a Token.t) -> (int * 'a Token.t list) list
(** [produce_at_rates ctx mk] builds the output list from [mk channel i],
    honouring [ctx.out_rates] and skipping inactive (rate-0) outputs — the
    building block of {!fill} and {!emit_mode}. *)
