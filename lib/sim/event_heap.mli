(** Binary min-heap of timed events with a deterministic FIFO tie-break.

    The engine's event queue: O(log n) insertion and extraction, ordered by
    [(time, seq)] where [seq] is the insertion index.  Two events scheduled
    for the same instant therefore pop in the order they were added — the
    determinism contract golden traces, [tpdf_obs] streams and seeded
    [tpdf_fault] runs rely on (see DESIGN.md, "Engine internals"). *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> float -> 'a -> unit
(** [add t time v] schedules [v] at [time]; O(log n). *)

val pop : 'a t -> (float * 'a) option
(** Extract the earliest event ([(time, seq)]-minimal); O(log n). *)

val peek_time : 'a t -> float option
(** Timestamp of the earliest event without removing it; O(1). *)

val is_empty : 'a t -> bool
val length : 'a t -> int

(** {2 Introspection for snapshots}

    A heap's observable state is the multiset of pending [(time, seq)]
    entries plus the insertion counter; [entries]/[load] expose exactly
    that, so [Tpdf_ckpt] can serialize the queue and rebuild one whose
    pop order — including FIFO ties against events added later — is
    identical. *)

val next_seq : 'a t -> int
(** The seq the next {!add} will stamp (monotonic insertion counter). *)

val entries : 'a t -> (float * int * 'a) list
(** Pending entries in [(time, seq)] order, i.e. pop order; O(n log n). *)

val load : 'a t -> next_seq:int -> (float * int * 'a) list -> unit
(** Replace [t]'s contents with [entries] (any order) and set the
    insertion counter.  After [load t ~next_seq:(next_seq h) (entries h)],
    [t] pops identically to [h].
    @raise Invalid_argument if an entry carries [seq >= next_seq]. *)

val of_entries : next_seq:int -> (float * int * 'a) list -> 'a t
(** Fresh heap; [load] on {!create}. *)
