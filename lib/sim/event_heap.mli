(** Binary min-heap of timed events with a deterministic FIFO tie-break.

    The engine's event queue: O(log n) insertion and extraction, ordered by
    [(time, seq)] where [seq] is the insertion index.  Two events scheduled
    for the same instant therefore pop in the order they were added — the
    determinism contract golden traces, [tpdf_obs] streams and seeded
    [tpdf_fault] runs rely on (see DESIGN.md, "Engine internals"). *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> float -> 'a -> unit
(** [add t time v] schedules [v] at [time]; O(log n). *)

val pop : 'a t -> (float * 'a) option
(** Extract the earliest event ([(time, seq)]-minimal); O(log n). *)

val peek_time : 'a t -> float option
(** Timestamp of the earliest event without removing it; O(1). *)

val is_empty : 'a t -> bool
val length : 'a t -> int
