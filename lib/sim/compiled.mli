(** Support for the engine's compiled static-schedule backend.

    A consistent graph × mode scenario admits a static schedule (PAPER
    §III-D).  Under the uniform firing durations the default behaviours
    use, the engine's ASAP execution proceeds in rounds, and the round
    executor in {!Engine} replays the event heap's exact (time, seq) pop
    order with two flat FIFOs — no heap, no per-event allocation.  See
    DESIGN.md §8 for when the backend engages, the runtime uniformity
    guard, and the deoptimisation path back to the interpreter. *)

(** Why the engine declined to engage the compiled backend for a run
    (it silently falls back to the event interpreter). *)
type ineligible =
  | Clocked_actors  (** clock ticks need the timed event queue *)
  | Pool_attached  (** staged parallel commits go through the heap *)
  | Pending_events  (** restored / resumed mid-flight: heap not empty *)
  | Busy_actors  (** in-flight firings from a previous capped run *)

val pp_ineligible : Format.formatter -> ineligible -> unit

val firing_counts :
  Tpdf_csdf.Concrete.t -> iterations:int -> string list -> (string * int) list
(** The static firing plan: each listed actor fires
    [iterations × q(actor)] times on a completed run — what the compiled
    backend's observed counts must equal (and the event engine's too). *)

(** Flat FIFO of pending completions in parallel arrays (unboxed
    timestamps and sequence numbers, payload slots for the delivered
    outputs and the firing record).  Push/advance allocate nothing;
    head access is per-field to avoid boxing a tuple per event. *)
module Fifo : sig
  type ('u, 'v) t = {
    dummy_u : 'u;
    dummy_v : 'v;
    mutable times : float array;
    mutable seqs : int array;
    mutable ais : int array;
    mutable us : 'u array;
    mutable vs : 'v array;
    mutable head : int;  (** index of the oldest entry *)
    mutable len : int;
  }
  (** The representation is exposed so the engine's compiled hot loop can
      read the head slots without a cross-module call per field; treat it
      as read-only outside [Compiled] and use {!advance}/{!push} to
      mutate. Invariant: the [len] live entries start at [head] and wrap
      around the parallel arrays, which always share one capacity. *)

  exception Empty

  val create : ?capacity:int -> dummy_u:'u -> dummy_v:'v -> unit -> ('u, 'v) t
  val length : _ t -> int
  val is_empty : _ t -> bool
  val push : ('u, 'v) t -> time:float -> seq:int -> ai:int -> 'u -> 'v -> unit

  val head_time : _ t -> float
  (** @raise Empty when empty (same for the other head accessors). *)

  val head_seq : _ t -> int
  val head_ai : _ t -> int
  val head_u : ('u, _) t -> 'u
  val head_v : (_, 'v) t -> 'v

  val advance : _ t -> unit
  (** Drop the head entry (payload slots are reset to the dummies). *)

  val entries : ('u, 'v) t -> (float * int * int * 'u * 'v) list
  (** Pending entries oldest-first: [(time, seq, actor, outputs, record)],
      for handing back to the event heap on deopt or an early stop. *)
end
