module Csdf = Tpdf_csdf
module Tpdf = Tpdf_core
module Digraph = Tpdf_graph.Digraph
module Obs = Tpdf_obs.Obs
module Ev = Tpdf_obs.Event
module Metrics = Tpdf_obs.Metrics
module Om = Tpdf_obs.Openmetrics
module Pool = Tpdf_par.Pool
module Ringbuf = Tpdf_util.Ringbuf
module Cfifo = Compiled.Fifo

type firing_record = {
  actor : string;
  index : int;
  phase : int;
  mode : string;
  start_ms : float;
  finish_ms : float;
}

type stats = {
  end_ms : float;
  firings : (string * int) list;
  max_occupancy : (int * int) list;
  dropped : (int * int) list;
  trace : firing_record list;
}

type error =
  | Unknown_mode of { actor : string; token : string }
  | Data_on_control_port of { actor : string }
  | Rate_mismatch of { actor : string; channel : int; expected : int; produced : int }
  | Foreign_channel of { actor : string; channel : int }
  | Token_class_mismatch of { actor : string; channel : int; control_channel : bool }
  | Negative_duration of { actor : string; duration_ms : float }

exception Error of error

let error_message = function
  | Unknown_mode { actor; token } ->
      Printf.sprintf "Engine: control token %S does not name a mode of %s"
        token actor
  | Data_on_control_port { actor } ->
      Printf.sprintf "Engine: data token on control port of %s" actor
  | Rate_mismatch { actor; channel; expected; produced } ->
      Printf.sprintf
        "Engine: behaviour of %s produced %d token(s) on e%d, expected %d"
        actor produced channel expected
  | Foreign_channel { actor; channel } ->
      Printf.sprintf "Engine: behaviour of %s wrote to foreign channel e%d"
        actor channel
  | Token_class_mismatch { actor; channel; control_channel } ->
      Printf.sprintf
        "Engine: behaviour of %s produced a %s token on %s channel e%d" actor
        (if control_channel then "data" else "control")
        (if control_channel then "control" else "data")
        channel
  | Negative_duration { actor; _ } ->
      Printf.sprintf "Engine: negative duration for %s" actor

type stall = {
  at_ms : float;
  blocked_actors : (string * int * int) list;
  channel_states : (int * int) list;
}

type outcome =
  | Completed of stats
  | Stalled of stall * stats
  | Budget_exceeded of { steps : int; at_ms : float; partial : stats }

let pp_stall ppf (s : stall) =
  Format.fprintf ppf "@[<v>stalled at %.3f ms@," s.at_ms;
  List.iter
    (fun (a, got, want) ->
      Format.fprintf ppf "  %s completed %d of %d firing(s)@," a got want)
    s.blocked_actors;
  Format.fprintf ppf "  channel occupancy:";
  List.iter
    (fun (ch, occ) -> if occ > 0 then Format.fprintf ppf " e%d:%d" ch occ)
    s.channel_states;
  Format.fprintf ppf "@]"

type 'a event_kind =
  | Complete of int * (int * 'a Token.t list) list * firing_record
  | Tick of int

(* A mode of a specific actor, compiled against the engine's dense channel
   ids: which data inputs the mode waits on and, per phase, the exact
   [out_rates] list the behaviour context receives (suppressed outputs at
   rate 0, control channels always at their declared rate).  Sharing the
   per-phase list across firings is safe — contexts never mutate it. *)
type compiled_mode = {
  cm : Tpdf.Mode.t;
  cm_selected : bool array; (* aligned with the actor's [data_ins] *)
  cm_out_rates : (int * int) list array; (* per phase *)
}

(* How the engine instruments itself, decided once at [create] from the
   collector's advertised {!Obs.sampling} policy.  [Obs_full] is the
   historical byte-golden stream (one span per firing, one occupancy
   sample per push, per-firing registry updates) — pinned by
   test_engine_equiv.  [Obs_sampled] is the always-on production
   profile: dense per-actor aggregates flushed to the registry at run
   end, a deterministic 1-in-K subset of firing spans, and no per-push
   occupancy sampling unless asked — cheap enough to leave attached
   (bounded by E20's <=5% overhead criterion).  Rare events (drops,
   ticks, reconfigure/txn/supervisor instants emitted by the layers
   above) are emitted in both modes. *)
type obs_mode = Obs_off | Obs_full | Obs_sampled of Obs.sampling

(* The engine compiles the graph once at [create]: actors and channels get
   dense int ids, and every per-firing query (rates, control ports, phase
   counts, priorities, adjacency) becomes an array read.  The event queue
   is a binary heap ordered by (time, seq) — FIFO on ties — and scheduling
   uses a dirty-actor worklist instead of a global rescan.  The observable
   semantics (stats, traces, tpdf_obs streams) are bit-for-bit those of the
   seed engine, enforced by test/test_engine_equiv.ml. *)
type 'a t = {
  graph : Tpdf.Graph.t;
  conc : Csdf.Concrete.t;
  obs : Obs.t;
  pool : Pool.t option;
  (* compiled actor tables; index = dense actor id in [actors] order *)
  actor_names : string array;
  actor_ids : (string, int) Hashtbl.t;
  behaviors : 'a Behavior.t array;
  phases : int array;
  is_ctrl_actor : bool array;
  clock_period : float option array;
  ctrl_port : int array; (* control-port channel id; -1 when none *)
  data_ins : int array array; (* data input channel ids, forward order *)
  outs : int array array; (* all output channel ids, forward order *)
  cmodes : compiled_mode array array; (* declared-order; head = default *)
  mode_by_name : (string, compiled_mode) Hashtbl.t array;
  tick_rates : (int * int) list array array; (* clock actors, per phase *)
  (* compiled channel tables; index = channel id *)
  chan_exists : bool array;
  chan_order : int array; (* ids in skeleton channel order, for stats *)
  cons : int array array; (* per channel, per consumer phase *)
  prod : int array array; (* per channel, per producer phase *)
  is_ctrl_chan : bool array;
  chan_prio : int array;
  chan_dst : int array; (* consumer actor id *)
  has_clock : bool; (* any clocked control actor in the graph *)
  queues : 'a Token.t Ringbuf.t array;
      (* flat circular buffers: pushes/pops move cursors, no per-token
         cell; preallocated to Buffers.capacity_hint, grown on demand *)
  (* mutable simulation state *)
  debt : int array;
  dropped : int array;
  max_occ : int array;
  count : int array; (* firings started *)
  completed : int array; (* firings finished *)
  busy : bool array;
  last_mode : compiled_mode array;
  dirty : bool array;
  dirty_buf : int array; (* worklist: first [dirty_len] entries are dirty *)
  mutable dirty_len : int;
  sc_prod : int array; (* validate_outputs scratch, per channel; -1 idle *)
  sc_exp : bool array; (* validate_outputs scratch, per channel *)
  mutable remaining : int; (* actors still short of their firing limit *)
  events : 'a event_kind Event_heap.t;
  mutable now : float;
  mutable trace : firing_record list;
  mutable armed : bool; (* clock Ticks scheduled; armed once per engine *)
  (* telemetry (not simulation state; excluded from snapshots) *)
  mutable ran_compiled : bool; (* last run_outcome used the compiled backend *)
  omode : obs_mode;
  s_busy : float array; (* sampled: per-actor busy virtual ms *)
  s_ctrl : int array; (* sampled: per-actor control reads *)
  s_flushed : int array; (* firings already flushed to the registry *)
  s_flushed_ctrl : int array;
  occ_seen : int array; (* per-channel occupancy samples offered *)
  firing_metric : string array; (* "engine.firing_ms.<actor>", precomputed *)
  dom_fire : int array; (* staged firings per pool slot; slot 0 = caller *)
  gc_base : Gc.stat;
  exporter : Om.Exporter.t option; (* TPDF_METRICS_OUT *)
}

let first_mode graph kernel =
  match Tpdf.Graph.modes graph kernel with
  | m :: _ -> m.Tpdf.Mode.name
  | [] -> "default"

let default_behavior graph actor default =
  if Tpdf.Graph.is_control graph actor then
    (* Emit the first declared mode of each target kernel; when several
       targets disagree the first channel's target wins — explicit
       behaviours should be given in that case. *)
    let skel = Tpdf.Graph.skeleton graph in
    let target_mode =
      match Csdf.Graph.out_channels skel actor with
      | (e : (string, Csdf.Graph.channel) Digraph.edge) :: _ ->
          first_mode graph e.dst
      | [] -> "default"
    in
    Behavior.emit_mode (fun _ -> target_mode)
  else Behavior.fill default

let ch_track ch = "e" ^ string_of_int ch
let occ_metric ch = Printf.sprintf "channel.e%d.occupancy" ch

(* All instrumentation below is guarded by the compiled [omode]: with no
   collector attached the engine allocates nothing for observability,
   and the sampled profile touches only dense arrays on the hot path. *)
let emit_occupancy t ch =
  let occ = float_of_int (Ringbuf.length t.queues.(ch)) in
  Obs.counter t.obs ~cat:"channel" ~track:(ch_track ch) ~name:"occupancy"
    ~ts_ms:t.now occ;
  Metrics.observe (Obs.metrics t.obs) (occ_metric ch) occ

let sample_occupancy t ch =
  match t.omode with
  | Obs_off -> ()
  | Obs_full -> emit_occupancy t ch
  | Obs_sampled s ->
      if s.Obs.occupancy_every > 0 then begin
        let k = t.occ_seen.(ch) in
        t.occ_seen.(ch) <- k + 1;
        if k mod s.Obs.occupancy_every = 0 then emit_occupancy t ch
      end

let create_engine ~emit_initial ~graph ~valuation ?init_token ?(behaviors = [])
    ?(obs = Obs.disabled) ?pool ~default () =
  (match Tpdf.Graph.validate graph with
  | Ok () -> ()
  | Error msgs ->
      invalid_arg ("Engine.create: invalid graph: " ^ String.concat "; " msgs));
  let skel = Tpdf.Graph.skeleton graph in
  let conc = Csdf.Concrete.make skel valuation in
  let actors = Tpdf.Graph.actors graph in
  let channels = Csdf.Graph.channels skel in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      if not (Csdf.Graph.mem_actor skel a) then
        invalid_arg (Printf.sprintf "Engine.create: unknown actor %s" a);
      Hashtbl.replace tbl a b)
    behaviors;
  List.iter
    (fun a ->
      if not (Hashtbl.mem tbl a) then
        Hashtbl.replace tbl a (default_behavior graph a default))
    actors;
  let n = List.length actors in
  let actor_names = Array.of_list actors in
  let actor_ids = Hashtbl.create (2 * n) in
  Array.iteri (fun i a -> Hashtbl.replace actor_ids a i) actor_names;
  let nch =
    List.fold_left
      (fun acc (e : (string, Csdf.Graph.channel) Digraph.edge) ->
        max acc (e.id + 1))
      0 channels
  in
  let chan_exists = Array.make nch false in
  let cons = Array.make nch [||] in
  let prod = Array.make nch [||] in
  let is_ctrl_chan = Array.make nch false in
  let chan_prio = Array.make nch 0 in
  let chan_dst = Array.make nch 0 in
  let tok_dummy = Token.Ctrl "" in
  let queues = Array.make nch (Ringbuf.create ~capacity:1 ~dummy:tok_dummy ()) in
  let max_occ = Array.make nch 0 in
  let chan_order =
    Array.of_list
      (List.map
         (fun (e : (string, Csdf.Graph.channel) Digraph.edge) -> e.id)
         channels)
  in
  List.iter
    (fun (e : (string, Csdf.Graph.channel) Digraph.edge) ->
      let c = Csdf.Concrete.chan conc e.id in
      chan_exists.(e.id) <- true;
      cons.(e.id) <- c.Csdf.Concrete.cons;
      prod.(e.id) <- c.Csdf.Concrete.prod;
      is_ctrl_chan.(e.id) <- Tpdf.Graph.is_control_channel graph e.id;
      chan_prio.(e.id) <- Tpdf.Graph.priority graph e.id;
      chan_dst.(e.id) <- Hashtbl.find actor_ids e.dst;
      queues.(e.id) <-
        Ringbuf.create
          ~capacity:
            (Tpdf.Buffers.capacity_hint ~cons:c.Csdf.Concrete.cons
               ~prod:c.Csdf.Concrete.prod ~init:e.label.init)
          ~dummy:tok_dummy ();
      let mk =
        match init_token with
        | Some f -> f e.id
        | None ->
            fun _ ->
              if is_ctrl_chan.(e.id) then Token.Ctrl (first_mode graph e.dst)
              else Token.Data default
      in
      for i = 0 to e.label.init - 1 do
        Ringbuf.push queues.(e.id) (mk i)
      done;
      max_occ.(e.id) <- e.label.init)
    channels;
  let phases = Array.map (fun a -> Csdf.Graph.phases skel a) actor_names in
  let is_ctrl_actor =
    Array.map (fun a -> Tpdf.Graph.is_control graph a) actor_names
  in
  let clock_period =
    Array.map (fun a -> Tpdf.Graph.clock_period_ms graph a) actor_names
  in
  let ctrl_port =
    Array.map
      (fun a ->
        match Tpdf.Graph.control_port graph a with Some c -> c | None -> -1)
      actor_names
  in
  let data_ins =
    Array.map
      (fun a ->
        Array.of_list
          (List.filter_map
             (fun (e : (string, Csdf.Graph.channel) Digraph.edge) ->
               if is_ctrl_chan.(e.id) then None else Some e.id)
             (Csdf.Graph.in_channels skel a)))
      actor_names
  in
  let outs =
    Array.map
      (fun a ->
        Array.of_list
          (List.map
             (fun (e : (string, Csdf.Graph.channel) Digraph.edge) -> e.id)
             (Csdf.Graph.out_channels skel a)))
      actor_names
  in
  let compile_mode ai (m : Tpdf.Mode.t) =
    let ins = data_ins.(ai) in
    let sel =
      match m.Tpdf.Mode.inputs with
      | Tpdf.Mode.Input_subset l -> Array.map (fun ch -> List.mem ch l) ins
      | Tpdf.Mode.All_inputs | Tpdf.Mode.Highest_priority_available ->
          Array.map (fun _ -> true) ins
    in
    let out_list = Array.to_list outs.(ai) in
    let out_rates =
      Array.init phases.(ai) (fun ph ->
          List.map
            (fun ch ->
              let r = prod.(ch).(ph) in
              let r =
                if is_ctrl_chan.(ch) || Tpdf.Mode.output_may_be_active m ch
                then r
                else 0
              in
              (ch, r))
            out_list)
    in
    { cm = m; cm_selected = sel; cm_out_rates = out_rates }
  in
  let cmodes =
    Array.init n (fun ai ->
        Array.of_list
          (List.map (compile_mode ai)
             (Tpdf.Graph.modes graph actor_names.(ai))))
  in
  let mode_by_name =
    Array.init n (fun ai ->
        let h = Hashtbl.create 8 in
        Array.iter
          (fun cm ->
            if not (Hashtbl.mem h cm.cm.Tpdf.Mode.name) then
              Hashtbl.add h cm.cm.Tpdf.Mode.name cm)
          cmodes.(ai);
        h)
  in
  let tick_rates =
    Array.init n (fun ai ->
        match clock_period.(ai) with
        | None -> [||]
        | Some _ ->
            Array.init phases.(ai) (fun ph ->
                List.map
                  (fun ch -> (ch, prod.(ch).(ph)))
                  (Array.to_list outs.(ai))))
  in
  let last_mode =
    Array.init n (fun ai ->
        if Array.length cmodes.(ai) > 0 then cmodes.(ai).(0)
        else compile_mode ai Tpdf.Mode.default)
  in
  let behaviors_arr =
    Array.map (fun a -> Hashtbl.find tbl a) actor_names
  in
  let omode =
    if not (Obs.enabled obs) then Obs_off
    else
      match Obs.sampling obs with
      | None -> Obs_full
      | Some s -> Obs_sampled s
  in
  let exporter =
    if not (Obs.enabled obs) then None
    else
      match Sys.getenv_opt "TPDF_METRICS_OUT" with
      | Some path when path <> "" ->
          let interval_ms =
            match Sys.getenv_opt "TPDF_METRICS_INTERVAL_MS" with
            | Some s -> ( try float_of_string s with Failure _ -> 1000.0)
            | None -> 1000.0
          in
          Some (Om.Exporter.create ~path ~interval_ms (Obs.metrics obs))
      | _ -> None
  in
  let t =
    {
      graph;
      conc;
      obs;
      pool;
      actor_names;
      actor_ids;
      behaviors = behaviors_arr;
      phases;
      is_ctrl_actor;
      clock_period;
      ctrl_port;
      data_ins;
      outs;
      cmodes;
      mode_by_name;
      tick_rates;
      chan_exists;
      chan_order;
      cons;
      prod;
      is_ctrl_chan;
      chan_prio;
      chan_dst;
      has_clock =
        Array.exists (function Some _ -> true | None -> false) clock_period;
      queues;
      debt = Array.make nch 0;
      dropped = Array.make nch 0;
      max_occ;
      count = Array.make n 0;
      completed = Array.make n 0;
      busy = Array.make n false;
      last_mode;
      dirty = Array.make n false;
      dirty_buf = Array.make (max n 1) 0;
      dirty_len = 0;
      sc_prod = Array.make (max nch 1) (-1);
      sc_exp = Array.make (max nch 1) false;
      remaining = 0;
      events = Event_heap.create ();
      now = 0.0;
      trace = [];
      armed = false;
      ran_compiled = false;
      omode;
      s_busy = Array.make n 0.0;
      s_ctrl = Array.make n 0;
      s_flushed = Array.make n 0;
      s_flushed_ctrl = Array.make n 0;
      occ_seen = Array.make nch 0;
      firing_metric =
        Array.map (fun a -> "engine.firing_ms." ^ a) actor_names;
      dom_fire =
        Array.make (match pool with Some p -> Pool.domains p | None -> 1) 0;
      gc_base = Gc.quick_stat ();
      exporter;
    }
  in
  (* One occupancy sample per channel at t=0 so every channel has a series
     even if it never carries traffic.  Suppressed on restore: the
     original engine already emitted them. *)
  if emit_initial && Obs.enabled obs then
    Array.iter (fun ch -> sample_occupancy t ch) chan_order;
  t

let create ~graph ~valuation ?init_token ?behaviors ?obs ?pool ~default () =
  create_engine ~emit_initial:true ~graph ~valuation ?init_token ?behaviors
    ?obs ?pool ~default ()

let mark_dirty t ai =
  if not t.dirty.(ai) then begin
    t.dirty.(ai) <- true;
    t.dirty_buf.(t.dirty_len) <- ai;
    t.dirty_len <- t.dirty_len + 1
  end

(* In-place ascending sort of [a.(0 .. len-1)].  Worklists are tiny (a
   completion wakes the actor and its consumers) or nearly sorted (a wide
   fan-out marks consumers in channel order), so insertion sort wins; the
   heapsort branch keeps adversarial orders O(k log k).  Either way: no
   allocation, unlike the former [List.sort] per drain. *)
let sort_worklist a len =
  if len > 1 then
    if len <= 32 then
      for i = 1 to len - 1 do
        let v = a.(i) in
        let j = ref (i - 1) in
        while !j >= 0 && a.(!j) > v do
          a.(!j + 1) <- a.(!j);
          decr j
        done;
        a.(!j + 1) <- v
      done
    else begin
      let swap i j =
        let tmp = a.(i) in
        a.(i) <- a.(j);
        a.(j) <- tmp
      in
      let rec sift i len =
        let l = (2 * i) + 1 and r = (2 * i) + 2 in
        let m = ref i in
        if l < len && a.(l) > a.(!m) then m := l;
        if r < len && a.(r) > a.(!m) then m := r;
        if !m <> i then begin
          swap i !m;
          sift !m len
        end
      in
      for i = (len / 2) - 1 downto 0 do
        sift i len
      done;
      for i = len - 1 downto 1 do
        swap 0 i;
        sift 0 i
      done
    end

(* Discharge rejection debt against the tokens currently in the channel. *)
let purge t ch =
  let d = t.debt.(ch) in
  if d > 0 then begin
    let q = t.queues.(ch) in
    let dropped = ref 0 in
    while !dropped < d && not (Ringbuf.is_empty q) do
      ignore (Ringbuf.pop q);
      incr dropped
    done;
    t.debt.(ch) <- d - !dropped;
    t.dropped.(ch) <- t.dropped.(ch) + !dropped;
    if Obs.enabled t.obs && !dropped > 0 then begin
      Obs.instant t.obs ~cat:"channel" ~track:(ch_track ch) ~name:"drop"
        ~ts_ms:t.now
        ~args:[ ("count", Ev.Int !dropped) ]
        ();
      Metrics.incr ~by:!dropped (Obs.metrics t.obs)
        (Printf.sprintf "channel.e%d.dropped" ch)
    end
  end

let push_tokens t ch toks =
  let q = t.queues.(ch) in
  List.iter (fun tok -> Ringbuf.push q tok) toks;
  purge t ch;
  let occ = Ringbuf.length q in
  if occ > t.max_occ.(ch) then t.max_occ.(ch) <- occ;
  sample_occupancy t ch;
  (* wakeup rule: the channel's consumer may have become fireable *)
  mark_dirty t t.chan_dst.(ch)

(* First declared mode of the actor; mirrors the seed's [List.hd]. *)
let head_mode t ai =
  let ms = t.cmodes.(ai) in
  if Array.length ms = 0 then failwith "hd" else ms.(0)

let mode_of_token t ai =
  let cid = t.ctrl_port.(ai) in
  if cid < 0 then head_mode t ai
  else
    let phase = t.count.(ai) mod t.phases.(ai) in
    if t.cons.(cid).(phase) = 0 then
      (* No control token this phase: the previous mode persists. *)
      t.last_mode.(ai)
    else
      let q = t.queues.(cid) in
      if Ringbuf.is_empty q then raise Exit
      else
        match Ringbuf.peek q with
        | Token.Ctrl name -> (
            match Hashtbl.find_opt t.mode_by_name.(ai) name with
            | Some cm -> cm
            | None ->
                raise
                  (Error
                     (Unknown_mode { actor = t.actor_names.(ai); token = name })))
        | Token.Data _ ->
            raise (Error (Data_on_control_port { actor = t.actor_names.(ai) }))

(* Which inputs a firing consumes: the mode's selected-input mask, or the
   single input a Transaction picked. *)
type active = Selected | Single of int

(* Decide whether actor [ai] can fire now; if so return the compiled mode
   and the selected active inputs. *)
let fireable t ai =
  match mode_of_token t ai with
  | exception Exit -> None (* waiting for a control token *)
  | cm -> (
      let phase = t.count.(ai) mod t.phases.(ai) in
      let ins = t.data_ins.(ai) in
      let has_enough ch =
        Ringbuf.length t.queues.(ch) >= t.cons.(ch).(phase)
      in
      match cm.cm.Tpdf.Mode.inputs with
      | Tpdf.Mode.All_inputs | Tpdf.Mode.Input_subset _ ->
          let sel = cm.cm_selected in
          let ok = ref true in
          Array.iteri
            (fun i ch -> if sel.(i) && not (has_enough ch) then ok := false)
            ins;
          if !ok then Some (cm, Selected) else None
      | Tpdf.Mode.Highest_priority_available ->
          (* first ready input wins ties; later ones only on strictly
             higher priority — the seed's fold order *)
          let best = ref (-1) in
          Array.iter
            (fun ch ->
              if has_enough ch then
                if !best < 0 || t.chan_prio.(ch) > t.chan_prio.(!best) then
                  best := ch)
            ins;
          if !best < 0 then None (* wait for the first input available *)
          else Some (cm, Single !best))

let consume t ai cm active phase =
  (* Control token first. *)
  (let cid = t.ctrl_port.(ai) in
   if cid >= 0 && t.cons.(cid).(phase) > 0 then begin
     ignore (Ringbuf.pop t.queues.(cid));
     t.last_mode.(ai) <- cm;
     match t.omode with
     | Obs_off -> ()
     | Obs_full ->
         let a = t.actor_names.(ai) in
         Obs.instant t.obs ~cat:"control" ~track:a ~name:"ctrl-read"
           ~ts_ms:t.now
           ~args:
             [ ("mode", Ev.Str cm.cm.Tpdf.Mode.name); ("channel", Ev.Int cid) ]
           ();
         Metrics.incr (Obs.metrics t.obs) ("engine.ctrl_reads." ^ a);
         sample_occupancy t cid
     | Obs_sampled _ ->
         (* dense aggregate, flushed to the registry at run end *)
         t.s_ctrl.(ai) <- t.s_ctrl.(ai) + 1;
         sample_occupancy t cid
   end);
  let ins = t.data_ins.(ai) in
  let n = Array.length ins in
  let is_active i ch =
    match active with Selected -> cm.cm_selected.(i) | Single c -> ch = c
  in
  let rec build i =
    if i >= n then []
    else
      let ch = ins.(i) in
      let rate = t.cons.(ch).(phase) in
      if is_active i ch then begin
        let toks = List.init rate (fun _ -> Ringbuf.pop t.queues.(ch)) in
        if rate > 0 then sample_occupancy t ch;
        if rate = 0 then build (i + 1) else (ch, toks) :: build (i + 1)
      end
      else begin
        (* Rejected input: its tokens are discarded as they arrive. *)
        if rate > 0 then begin
          t.debt.(ch) <- t.debt.(ch) + rate;
          purge t ch;
          sample_occupancy t ch
        end;
        build (i + 1)
      end
  in
  build 0

(* Output-contract checks shared by both implementations below: rate
   errors are reported in expected-list order, then foreign channels and
   token classes in output order; the first binding wins when a behaviour
   repeats a channel (the seed's [List.assoc_opt]). *)
let check_rate a ch rate produced =
  if produced <> rate then
    raise
      (Error (Rate_mismatch { actor = a; channel = ch; expected = rate; produced }))

let check_classes t a ch toks =
  let is_ctrl_chan = t.is_ctrl_chan.(ch) in
  List.iter
    (fun tok ->
      if Token.is_ctrl tok <> is_ctrl_chan then
        raise
          (Error
             (Token_class_mismatch
                { actor = a; channel = ch; control_channel = is_ctrl_chan })))
    toks

(* O(degree): per-channel scratch tables replace the seed's quadratic
   [List.assoc] scans over the output list — the fan-graph cliff, where a
   1e4-way source paid O(width²) list walks per firing.  The scratch slots
   are always restored (even on the error path, so a caught [Error] leaves
   the tables clean), but they are engine-global: parallel staged firings
   use {!validate_outputs_list} instead. *)
let validate_outputs t ai expected outputs =
  let a = t.actor_names.(ai) in
  let nch = Array.length t.chan_exists in
  let sc_prod = t.sc_prod and sc_exp = t.sc_exp in
  List.iter
    (fun (ch, toks) ->
      if ch >= 0 && ch < nch && sc_prod.(ch) < 0 then
        sc_prod.(ch) <- List.length toks)
    outputs;
  List.iter (fun ((ch, _) : int * int) -> sc_exp.(ch) <- true) expected;
  let err =
    try
      List.iter
        (fun (ch, rate) ->
          check_rate a ch rate (if sc_prod.(ch) >= 0 then sc_prod.(ch) else 0))
        expected;
      List.iter
        (fun (ch, toks) ->
          if ch < 0 || ch >= nch || not sc_exp.(ch) then
            raise (Error (Foreign_channel { actor = a; channel = ch }));
          check_classes t a ch toks)
        outputs;
      None
    with Error e -> Some e
  in
  List.iter
    (fun (ch, _) -> if ch >= 0 && ch < nch then sc_prod.(ch) <- -1)
    outputs;
  List.iter (fun ((ch, _) : int * int) -> sc_exp.(ch) <- false) expected;
  match err with None -> () | Some e -> raise (Error e)

(* Allocation-free but quadratic in the actor's degree; used only by
   pool-staged firings, which run concurrently and must not share the
   engine's scratch tables. *)
let validate_outputs_list t ai expected outputs =
  let a = t.actor_names.(ai) in
  List.iter
    (fun (ch, rate) ->
      let produced =
        match List.assoc_opt ch outputs with Some l -> List.length l | None -> 0
      in
      check_rate a ch rate produced)
    expected;
  List.iter
    (fun (ch, toks) ->
      if not (List.mem_assoc ch expected) then
        raise (Error (Foreign_channel { actor = a; channel = ch }));
      check_classes t a ch toks)
    outputs

(* A firing is split in two.  The {e stage} — consume inputs, run the
   behaviour's [work], validate the outputs — touches only the actor's
   own channels (every channel has exactly one consumer and outputs are
   delivered later, at [Complete]), so the stages of all firings that
   start at the same drain are independent and may run on a domain pool.
   The {e commit} — [duration_ms], the firing record, the event-heap
   push — runs on the orchestrating domain, in ascending actor id, which
   keeps event sequence numbers, traces, supervisor bookkeeping and obs
   streams bit-identical to a sequential run. *)
let fire_stage ?(par = false) t ai cm active =
  let index = t.count.(ai) in
  let phase = index mod t.phases.(ai) in
  let inputs = consume t ai cm active phase in
  let rates = cm.cm_out_rates.(phase) in
  let ctx =
    {
      Behavior.actor = t.actor_names.(ai);
      mode = cm.cm.Tpdf.Mode.name;
      phase;
      index;
      now_ms = t.now;
      inputs;
      out_rates = rates;
    }
  in
  let outputs = t.behaviors.(ai).Behavior.work ctx in
  if par then validate_outputs_list t ai rates outputs
  else validate_outputs t ai rates outputs;
  (ctx, outputs)

let fire_commit t ai (ctx, outputs) =
  let b = t.behaviors.(ai) in
  let d = b.Behavior.duration_ms ctx in
  if d < 0.0 then
    raise
      (Error (Negative_duration { actor = ctx.Behavior.actor; duration_ms = d }));
  let record =
    {
      actor = ctx.Behavior.actor;
      index = ctx.Behavior.index;
      phase = ctx.Behavior.phase;
      mode = ctx.Behavior.mode;
      start_ms = t.now;
      finish_ms = t.now +. d;
    }
  in
  t.count.(ai) <- ctx.Behavior.index + 1;
  t.busy.(ai) <- true;
  Event_heap.add t.events (t.now +. d) (Complete (ai, outputs, record))

let start_firing t ai cm active =
  (match t.omode with
  | Obs_off -> ()
  | _ ->
      (* inline staging always happens on the orchestrating domain *)
      t.dom_fire.(0) <- t.dom_fire.(0) + 1);
  fire_commit t ai (fire_stage t ai cm active)

(* Run the stages of [jobs] (same-instant, independent by construction)
   on the pool, then commit in job order (= ascending actor id).  Each
   task captures its obs/metrics emissions into a private buffer;
   splicing the buffers in job order reconstructs the sequential stream.
   A job may carry an exception instead of work — either pre-raised by
   [fireable] or raised inside the stage: it is re-raised at its commit
   slot, after the buffers of all earlier jobs (and its own partial one)
   have been spliced, exactly where the sequential run would have
   raised.  Later stages have already run by then; their token
   consumption is unobservable because the raise aborts the run. *)
let fire_parallel t pool jobs =
  let span_every =
    match t.omode with Obs_sampled s -> s.Obs.span_every | _ -> 0
  in
  let obs_on = match t.omode with Obs_off -> false | _ -> true in
  let tasks =
    Array.map
      (fun (ai, job) () ->
        let cap = Obs.capture_begin t.obs in
        let di = if obs_on then Pool.self_index () else 0 in
        if obs_on && di < Array.length t.dom_fire then
          t.dom_fire.(di) <- t.dom_fire.(di) + 1;
        (* In sampled mode, 1-in-K staged firings get a wall-clock span
           stamped with the executing domain — the raw material for
           Perfetto's per-domain lanes (see Chrome.domain_of).  Wall
           events never enter the deterministic retained stream (the
           ring excludes them by default). *)
        let t0w = if span_every > 0 then Obs.now_wall_ms () else 0.0 in
        let res =
          match job with
          | `Fire (cm, active) -> (
              try Result.Ok (fire_stage ~par:true t ai cm active)
              with e -> Result.Error e)
          | `Raise e -> Result.Error e
        in
        if span_every > 0 && t.count.(ai) mod span_every = 0 then
          Obs.span t.obs ~clock:Ev.Wall ~cat:"par" ~track:"stage"
            ~name:t.actor_names.(ai) ~ts_ms:t0w
            ~dur_ms:(Obs.now_wall_ms () -. t0w)
            ~args:[ ("domain", Ev.Int di); ("index", Ev.Int t.count.(ai)) ]
            ();
        Obs.capture_end t.obs cap;
        (res, cap))
      jobs
  in
  let results = Pool.run pool tasks in
  Array.iteri
    (fun k (res, cap) ->
      Obs.splice t.obs cap;
      match res with
      | Result.Error e -> raise e
      | Result.Ok staged ->
          let ai, _ = jobs.(k) in
          fire_commit t ai staged)
    results

(* GC / allocation gauges: deltas of [Gc.quick_stat] against the
   engine's creation baseline, refreshed at exporter ticks and at run
   end.  Gauges only — never events — so the byte-golden full-capture
   event stream is untouched. *)
let update_gc_gauges t =
  match t.omode with
  | Obs_off -> ()
  | _ ->
      let m = Obs.metrics t.obs in
      let s = Gc.quick_stat () in
      Metrics.set_gauge m "gc.minor_words"
        (s.Gc.minor_words -. t.gc_base.Gc.minor_words);
      Metrics.set_gauge m "gc.major_words"
        (s.Gc.major_words -. t.gc_base.Gc.major_words);
      Metrics.set_gauge m "gc.promoted_words"
        (s.Gc.promoted_words -. t.gc_base.Gc.promoted_words);
      Metrics.set_gauge m "gc.compactions"
        (float_of_int (s.Gc.compactions - t.gc_base.Gc.compactions));
      Metrics.set_gauge m "gc.heap_words" (float_of_int s.Gc.heap_words)

(* Sampled mode keeps per-firing bookkeeping in dense arrays; this
   reconciles the registry with them (idempotent: counters advance by
   the delta since the last flush).  Metrics calls route through any
   active capture, so a transactionally staged run stays abortable. *)
let flush_sampled t pool =
  match t.omode with
  | Obs_off | Obs_full -> ()
  | Obs_sampled _ ->
      let m = Obs.metrics t.obs in
      Array.iteri
        (fun ai a ->
          let df = t.completed.(ai) - t.s_flushed.(ai) in
          if df > 0 then begin
            t.s_flushed.(ai) <- t.completed.(ai);
            Metrics.incr ~by:df m ("engine.firings." ^ a)
          end;
          let dc = t.s_ctrl.(ai) - t.s_flushed_ctrl.(ai) in
          if dc > 0 then begin
            t.s_flushed_ctrl.(ai) <- t.s_ctrl.(ai);
            Metrics.incr ~by:dc m ("engine.ctrl_reads." ^ a)
          end;
          if t.s_busy.(ai) > 0.0 then
            Metrics.set_gauge m ("engine.busy_ms." ^ a) t.s_busy.(ai))
        t.actor_names;
      Array.iteri
        (fun d n ->
          if n > 0 then
            Metrics.set_gauge m
              (Printf.sprintf "domain.%d.firings" d)
              (float_of_int n))
        t.dom_fire;
      (match pool with
      | Some p ->
          Array.iteri
            (fun d n ->
              if n > 0 then
                Metrics.set_gauge m
                  (Printf.sprintf "domain.%d.tasks" d)
                  (float_of_int n))
            (Pool.tasks_per_domain p)
      | None -> ())

(* Process one completion: deliver outputs, wake consumers, record the
   trace and obs span.  Shared verbatim by the event loop and the
   compiled round executor — identical processing order plus identical
   processing code is what makes the two backends byte-equivalent. *)
let complete_event t ~limit ai outputs record =
  t.busy.(ai) <- false;
  let c = t.completed.(ai) + 1 in
  t.completed.(ai) <- c;
  if limit.(ai) <> max_int && c = limit.(ai) then
    t.remaining <- t.remaining - 1;
  List.iter (fun (ch, toks) -> push_tokens t ch toks) outputs;
  mark_dirty t ai;
  t.trace <- record :: t.trace;
  match t.omode with
  | Obs_off -> ()
  | Obs_full ->
      let a = t.actor_names.(ai) in
      Obs.span t.obs ~cat:"firing" ~track:a ~name:(a ^ "/" ^ record.mode)
        ~ts_ms:record.start_ms
        ~dur_ms:(record.finish_ms -. record.start_ms)
        ~args:
          [
            ("index", Ev.Int record.index);
            ("phase", Ev.Int record.phase);
            ("mode", Ev.Str record.mode);
          ]
        ();
      Metrics.incr (Obs.metrics t.obs) ("engine.firings." ^ a);
      Metrics.observe (Obs.metrics t.obs) t.firing_metric.(ai)
        (record.finish_ms -. record.start_ms)
  | Obs_sampled s ->
      (* hot path: two dense-array writes; the k-th completion of each
         actor keeps its span iff (k-1) mod span_every = 0 — a pure
         function of the deterministic completion order.  The span name
         is the bare actor (no "/mode" concat): the mode is still
         carried in the args, and the sampled stream has no byte-golden
         to preserve. *)
      let dur = record.finish_ms -. record.start_ms in
      t.s_busy.(ai) <- t.s_busy.(ai) +. dur;
      if (c - 1) mod s.Obs.span_every = 0 then begin
        let a = t.actor_names.(ai) in
        Obs.span t.obs ~cat:"firing" ~track:a ~name:a ~ts_ms:record.start_ms
          ~dur_ms:dur
          ~args:
            [
              ("index", Ev.Int record.index);
              ("phase", Ev.Int record.phase);
              ("mode", Ev.Str record.mode);
            ]
          ();
        Metrics.observe (Obs.metrics t.obs) t.firing_metric.(ai) dur
      end

(* A clock firing: no inputs, emits control tokens now. *)
let tick_event t ai =
  let a = t.actor_names.(ai) in
  let index = t.count.(ai) in
  let phase = index mod t.phases.(ai) in
  let rates = t.tick_rates.(ai).(phase) in
  let ctx =
    {
      Behavior.actor = a;
      mode = "tick";
      phase;
      index;
      now_ms = t.now;
      inputs = [];
      out_rates = rates;
    }
  in
  let b = t.behaviors.(ai) in
  let outputs = b.Behavior.work ctx in
  validate_outputs t ai rates outputs;
  t.count.(ai) <- index + 1;
  List.iter (fun (ch, toks) -> push_tokens t ch toks) outputs;
  t.trace <-
    { actor = a; index; phase; mode = "tick"; start_ms = t.now; finish_ms = t.now }
    :: t.trace;
  if Obs.enabled t.obs then begin
    Obs.instant t.obs ~cat:"clock" ~track:a ~name:(a ^ "/tick") ~ts_ms:t.now
      ~args:[ ("index", Ev.Int index); ("phase", Ev.Int phase) ]
      ();
    Metrics.incr (Obs.metrics t.obs) ("engine.ticks." ^ a)
  end;
  match t.clock_period.(ai) with
  | Some p -> Event_heap.add t.events (t.now +. p) (Tick ai)
  | None -> ()

(* Compiled-backend specialisations of the completion path and the output
   check, for [Obs_off] runs.  They replay [complete_event] and
   [validate_outputs] step for step minus the observability hooks — same
   state writes, same token pushes, same errors — but as top-level
   recursive functions, so the per-event closure allocations ([List.iter]
   thunks, the scratch-table passes) disappear from the hot loop. *)
let rec push_all q = function
  | [] -> ()
  | tok :: rest ->
      (* Ringbuf.push, hand-inlined minus the growth branch *)
      let cap = Array.length q.Ringbuf.arr in
      if q.Ringbuf.len = cap then Ringbuf.push q tok
      else begin
        let i = q.Ringbuf.head + q.Ringbuf.len in
        q.Ringbuf.arr.(if i >= cap then i - cap else i) <- tok;
        q.Ringbuf.len <- q.Ringbuf.len + 1
      end;
      push_all q rest

(* Delivery without [mark_dirty]: the compiled loop walks the actor's
   precomputed wake list instead of a dirty worklist, so the flags must
   stay untouched (all-false) here. *)
let rec deliver_fast t = function
  | [] -> ()
  | (ch, toks) :: rest ->
      let q = t.queues.(ch) in
      push_all q toks;
      if t.debt.(ch) > 0 then purge t ch;
      let occ = q.Ringbuf.len in
      if occ > t.max_occ.(ch) then t.max_occ.(ch) <- occ;
      deliver_fast t rest

let complete_fast t ~limit ai outputs record =
  t.busy.(ai) <- false;
  let c = t.completed.(ai) + 1 in
  t.completed.(ai) <- c;
  if limit.(ai) <> max_int && c = limit.(ai) then
    t.remaining <- t.remaining - 1;
  deliver_fast t outputs;
  t.trace <- record :: t.trace

(* [true] iff [toks] has exactly [want] tokens, all of channel [ch]'s
   class. *)
let rec toks_ok t ch want = function
  | [] -> want = 0
  | tok :: rest ->
      want > 0
      && Token.is_ctrl tok = t.is_ctrl_chan.(ch)
      && toks_ok t ch (want - 1) rest

(* Lockstep output check: [true] when [outputs] lists exactly the expected
   channels in declaration order (rate-0 entries omitted) with the right
   counts and token classes — then [validate_outputs] is guaranteed to
   pass and can be skipped.  Any deviation returns [false] and the caller
   falls back to the full check, which either passes (e.g. an explicit
   [(ch, [])] for a rate-0 channel) or raises with the canonical error. *)
let rec validate_fast t expected outputs =
  match expected with
  | (ch, rate) :: erest -> (
      match outputs with
      | (ch', toks) :: orest when ch' = ch && rate > 0 ->
          toks_ok t ch rate toks && validate_fast t erest orest
      | _ -> rate = 0 && validate_fast t erest outputs)
  | [] -> ( match outputs with [] -> true | _ :: _ -> false)

(* Stats-tail helpers, top-level so the 100k-record walks stay
   closure-free.  [trace_sorted] is conservative under NaN (returns
   [false], falling back to the sort — identical result either way). *)
let rec max_finish acc = function
  | [] -> acc
  | r :: rest -> max_finish (if r.finish_ms > acc then r.finish_ms else acc) rest

let rec trace_sorted = function
  | a :: (b :: _ as rest) ->
      (a.start_ms < b.start_ms
      || (a.start_ms = b.start_ms && a.finish_ms <= b.finish_ms))
      && trace_sorted rest
  | _ -> true

let dummy_record =
  { actor = ""; index = 0; phase = 0; mode = ""; start_ms = 0.0; finish_ms = 0.0 }

let run_outcome ?(backend = `Event) ?(iterations = 1) ?targets ?until_ms
    ?(max_events = 1_000_000) ?pool t =
  if iterations < 1 then invalid_arg "Engine.run: iterations must be >= 1";
  let pool = match pool with Some _ as p -> p | None -> t.pool in
  (match targets with
  | None -> ()
  | Some l ->
      List.iter
        (fun (a, n) ->
          if not (Hashtbl.mem t.actor_ids a) then
            invalid_arg
              (Printf.sprintf "Engine.run: unknown target actor %s" a);
          if n < 0 then
            invalid_arg
              (Printf.sprintf "Engine.run: negative target %d for %s" n a))
        l);
  let n = Array.length t.actor_names in
  (* Per-run firing limits, compiled to an array; clocks are unlimited. *)
  let limit = Array.make n max_int in
  Array.iteri
    (fun ai a ->
      if t.clock_period.(ai) = None then
        let base =
          match targets with
          | None -> Csdf.Concrete.q t.conc a
          | Some l -> (
              match List.assoc_opt a l with
              | Some k -> k
              | None -> Csdf.Concrete.q t.conc a)
        in
        limit.(ai) <- iterations * base)
    t.actor_names;
  (* An iteration is done when every firing has also *completed*: in-flight
     firings still deliver their tokens (e.g. a slow speculative path whose
     result must be rejected).  [remaining] counts actors still short of
     their limit, so the check per event is O(1). *)
  t.remaining <- 0;
  for ai = 0 to n - 1 do
    if limit.(ai) <> max_int && t.completed.(ai) < limit.(ai) then
      t.remaining <- t.remaining + 1
  done;
  (* Arm the clocks — once per engine.  A second [run_outcome] call (a
     resumed capped run, or chunked cumulative iterations) must not
     re-schedule the initial Ticks: the periodic re-arm in the Tick
     handler keeps them alive. *)
  if not t.armed then begin
    t.armed <- true;
    for ai = 0 to n - 1 do
      if t.is_ctrl_actor.(ai) then
        match t.clock_period.(ai) with
        | Some p -> Event_heap.add t.events p (Tick ai)
        | None -> ()
    done
  end;
  let eligible ai =
    (not t.busy.(ai))
    && t.clock_period.(ai) = None
    && t.count.(ai) < limit.(ai)
  in
  let try_start ai =
    if eligible ai then
      match fireable t ai with
      | Some (cm, active) -> start_firing t ai cm active
      | None -> ()
  in
  (* Drain the dirty worklist in ascending actor id — the same stable
     order as the seed's global rescan, so scheduling decisions and the
     resulting traces are identical.  With a pool, the fireable set is
     decided first (firings that start together cannot enable or disable
     one another: outputs are delivered at [Complete], and consumption
     touches only the firing actor's own input channels), the stages run
     in parallel, and the commits replay in the same ascending order. *)
  (* Sorting and flag-clearing are shared: the worklist prefix is stable
     while it is walked, because nothing inside [try_start] marks actors
     dirty (outputs are delivered at [Complete], not at start). *)
  let take_worklist () =
    let len = t.dirty_len in
    if len > 0 then begin
      sort_worklist t.dirty_buf len;
      t.dirty_len <- 0;
      for k = 0 to len - 1 do
        t.dirty.(t.dirty_buf.(k)) <- false
      done
    end;
    len
  in
  let drain =
    match pool with
    | None ->
        fun () ->
          let len = take_worklist () in
          for k = 0 to len - 1 do
            try_start t.dirty_buf.(k)
          done
    | Some pool -> (
        fun () ->
          let len = take_worklist () in
          if len > 0 then begin
            let jobs = ref [] in
            for k = len - 1 downto 0 do
              let ai = t.dirty_buf.(k) in
              if eligible ai then
                match fireable t ai with
                | Some (cm, active) -> jobs := (ai, `Fire (cm, active)) :: !jobs
                | None -> ()
                | exception e -> jobs := (ai, `Raise e) :: !jobs
            done;
            match !jobs with
            | [] -> ()
            | [ (ai, `Fire (cm, active)) ] -> start_firing t ai cm active
            | [ (_, `Raise e) ] -> raise e
            | jobs -> fire_parallel t pool (Array.of_list jobs)
          end)
  in
  let steps = ref 0 in
  let stop = ref false in
  let budget_hit = ref false in
  let exporter_tick () =
    match t.exporter with
    | Some e when !steps land 1023 = 0 ->
        (* periodic snapshot export: refresh aggregates, then atomically
           rewrite TPDF_METRICS_OUT if the interval elapsed *)
        flush_sampled t pool;
        update_gc_gauges t;
        Om.Exporter.tick e
    | _ -> ()
  in
  (* The compiled static-schedule backend (see Compiled and DESIGN.md §8)
     engages only from a clean start it can fully model: no clocks, no
     pool, nothing in flight.  Everything else — including a run it
     deoptimised out of — goes through the event heap. *)
  let compiled =
    backend = `Compiled && pool = None && (not t.has_clock)
    && Event_heap.is_empty t.events
    && Array.for_all not t.busy
  in
  t.ran_compiled <- compiled;
  if compiled then begin
    (* Round executor: pending completions live in two flat FIFOs — the
       round being delivered ([cur], all at one timestamp) and the round
       it enables ([nxt], one uniform duration later).  Pop order equals
       the heap's (time, seq) order as long as every firing takes the
       same duration; the first firing that does not trips [deopt] and
       the pending entries (timestamps and seq numbers intact) reload
       into the heap, where the ordinary loop below resumes. *)
    let cur =
      ref (Compiled.Fifo.create ~dummy_u:[] ~dummy_v:dummy_record ())
    in
    let nxt =
      ref (Compiled.Fifo.create ~dummy_u:[] ~dummy_v:dummy_record ())
    in
    let cseq = ref (Event_heap.next_seq t.events) in
    let dur = ref neg_infinity (* negative = not yet discovered *) in
    let deopt = ref false in
    let commit ai (ctx, outputs) =
      let b = t.behaviors.(ai) in
      let d = b.Behavior.duration_ms ctx in
      if d < 0.0 then
        raise
          (Error
             (Negative_duration { actor = ctx.Behavior.actor; duration_ms = d }));
      let record =
        {
          actor = ctx.Behavior.actor;
          index = ctx.Behavior.index;
          phase = ctx.Behavior.phase;
          mode = ctx.Behavior.mode;
          start_ms = t.now;
          finish_ms = t.now +. d;
        }
      in
      t.count.(ai) <- ctx.Behavior.index + 1;
      t.busy.(ai) <- true;
      if !dur < 0.0 then dur := d else if d <> !dur then deopt := true;
      Compiled.Fifo.push !nxt ~time:(t.now +. d) ~seq:!cseq ~ai outputs record;
      incr cseq
    in
    (* Static actors — no control port, head mode reads [All_inputs] —
       never change mode, never reject an input and never touch the
       control machinery, so (under [Obs_off], where no occupancy
       sampling interleaves) their firings can be fused into one
       allocation-light check-consume-commit.  Everything it does is a
       step-for-step replay of [fireable]/[fire_stage]/[commit] for that
       shape: same pops, same error order, same records. *)
    let static =
      let fast = t.omode = Obs_off in
      Array.init n (fun ai ->
          fast
          && t.ctrl_port.(ai) < 0
          && Array.length t.cmodes.(ai) > 0
          &&
          match t.cmodes.(ai).(0).cm.Tpdf.Mode.inputs with
          | Tpdf.Mode.All_inputs -> true
          | _ -> false)
    in
    let start_static ai =
      (* [eligible] without the clock test: compiled never engages on a
         graph with clocked actors. *)
      if (not t.busy.(ai)) && t.count.(ai) < limit.(ai) then begin
        let index = t.count.(ai) in
        let ph = t.phases.(ai) in
        let phase = if ph = 1 then 0 else index mod ph in
        let ins = t.data_ins.(ai) in
        let nin = Array.length ins in
        let ok = ref true in
        for i = 0 to nin - 1 do
          let ch = ins.(i) in
          if Ringbuf.length t.queues.(ch) < t.cons.(ch).(phase) then
            ok := false
        done;
        if !ok then begin
          let cm = t.cmodes.(ai).(0) in
          let inputs = ref [] in
          (* per-channel pops in FIFO order; channels are disjoint, so
             walking them in reverse builds the ascending assoc list
             [consume] would. *)
          for i = nin - 1 downto 0 do
            let ch = ins.(i) in
            let rate = t.cons.(ch).(phase) in
            if rate > 0 then begin
              let q = t.queues.(ch) in
              let toks =
                if rate = 1 && q.Ringbuf.len > 0 then begin
                  (* Ringbuf.pop, hand-inlined (the fireable check above
                     guarantees non-empty; the guard keeps the raise
                     path identical regardless) *)
                  let h = q.Ringbuf.head in
                  let v = q.Ringbuf.arr.(h) in
                  q.Ringbuf.arr.(h) <- q.Ringbuf.dummy;
                  let h1 = h + 1 in
                  q.Ringbuf.head <-
                    (if h1 = Array.length q.Ringbuf.arr then 0 else h1);
                  q.Ringbuf.len <- q.Ringbuf.len - 1;
                  [ v ]
                end
                else if rate = 1 then [ Ringbuf.pop q ]
                else List.init rate (fun _ -> Ringbuf.pop q)
              in
              inputs := (ch, toks) :: !inputs
            end
          done;
          let rates = cm.cm_out_rates.(phase) in
          let ctx =
            {
              Behavior.actor = t.actor_names.(ai);
              mode = cm.cm.Tpdf.Mode.name;
              phase;
              index;
              now_ms = t.now;
              inputs = !inputs;
              out_rates = rates;
            }
          in
          let outputs = t.behaviors.(ai).Behavior.work ctx in
          let valid =
            (* single-output rate-1 firings (every chain/fan/grid kernel)
               resolve in one match; anything else takes the general
               lockstep walk *)
            match (rates, outputs) with
            | [ (ch, 1) ], [ (ch', [ tok ]) ] ->
                ch' = ch && Token.is_ctrl tok = t.is_ctrl_chan.(ch)
            | _ -> validate_fast t rates outputs
          in
          if not valid then validate_outputs t ai rates outputs;
          let d = t.behaviors.(ai).Behavior.duration_ms ctx in
          if d < 0.0 then
            raise
              (Error
                 (Negative_duration
                    { actor = ctx.Behavior.actor; duration_ms = d }));
          let fin = t.now +. d in
          let record =
            {
              actor = ctx.Behavior.actor;
              index;
              phase;
              mode = ctx.Behavior.mode;
              start_ms = t.now;
              finish_ms = fin;
            }
          in
          t.count.(ai) <- index + 1;
          t.busy.(ai) <- true;
          if !dur < 0.0 then dur := d else if d <> !dur then deopt := true;
          (* Cfifo.push, hand-inlined minus the growth branch (ocamlopt
             without flambda will not inline the cross-module call) *)
          let fq = !nxt in
          let cap = Array.length fq.Cfifo.times in
          if fq.Cfifo.len = cap then
            Cfifo.push fq ~time:fin ~seq:!cseq ~ai outputs record
          else begin
            let i = fq.Cfifo.head + fq.Cfifo.len in
            let i = if i >= cap then i - cap else i in
            fq.Cfifo.times.(i) <- fin;
            fq.Cfifo.seqs.(i) <- !cseq;
            fq.Cfifo.ais.(i) <- ai;
            fq.Cfifo.us.(i) <- outputs;
            fq.Cfifo.vs.(i) <- record;
            fq.Cfifo.len <- fq.Cfifo.len + 1
          end;
          incr cseq
        end
      end
    in
    let try_start_gen ai =
      if eligible ai then
        match fireable t ai with
        | Some (cm, active) ->
            (match t.omode with
            | Obs_off -> ()
            | _ -> t.dom_fire.(0) <- t.dom_fire.(0) + 1);
            commit ai (fire_stage t ai cm active)
        | None -> ()
    in
    (* Who a completion of [ai] can wake: [ai] itself plus the consumer
       of every declared output channel, ascending and deduplicated —
       the dirty set [complete_event] would have built, precomputed (a
       superset when a phase produces nothing on some channel, which is
       harmless: an actor outside the true dirty set is never fireable,
       so trying it is a no-op).  Walking this in the steady loop
       replaces the whole mark/sort/clear worklist dance per event. *)
    let wake =
      let seen = Array.make n false in
      Array.init n (fun ai ->
          seen.(ai) <- true;
          let acc = ref [ ai ] in
          Array.iter
            (fun cm ->
              Array.iter
                (List.iter (fun ((ch, _) : int * int) ->
                     let dst = t.chan_dst.(ch) in
                     if not seen.(dst) then begin
                       seen.(dst) <- true;
                       acc := dst :: !acc
                     end))
                cm.cm_out_rates)
            t.cmodes.(ai);
          let arr = Array.of_list !acc in
          Array.iter (fun a -> seen.(a) <- false) arr;
          Array.sort (fun (a : int) b -> compare a b) arr;
          arr)
    in
    (* [take_worklist] fused in: flags clear before the starts, and
       nothing in either start path marks actors dirty, so the walked
       prefix is stable — same argument as the event loop's drain *)
    let drain_c () =
      let len = t.dirty_len in
      if len > 0 then begin
        sort_worklist t.dirty_buf len;
        t.dirty_len <- 0;
        for k = 0 to len - 1 do
          t.dirty.(t.dirty_buf.(k)) <- false
        done;
        for k = 0 to len - 1 do
          let ai = t.dirty_buf.(k) in
          if static.(ai) then start_static ai else try_start_gen ai
        done
      end
    in
    for ai = 0 to n - 1 do
      mark_dirty t ai
    done;
    drain_c ();
    let obs_off = t.omode = Obs_off in
    let exporter_on = match t.exporter with Some _ -> true | None -> false in
    let cap = match until_ms with Some c -> c | None -> infinity in
    let finished = ref false in
    while
      (not !finished) && (not !deopt)
      && not ((!cur).Cfifo.len = 0 && (!nxt).Cfifo.len = 0)
    do
      if (!cur).Cfifo.len = 0 then begin
        let tmp = !cur in
        cur := !nxt;
        nxt := tmp
      end;
      let q = !cur in
      let h = q.Cfifo.head in
      let tm = q.Cfifo.times.(h) in
      if tm > cap then begin
        finished := true;
        stop := true
      end
      else begin
        incr steps;
        if !steps > max_events then begin
          budget_hit := true;
          stop := true;
          finished := true
        end
        else if t.remaining = 0 then begin
          stop := true;
          finished := true
        end
        else begin
          let ai = q.Cfifo.ais.(h) in
          let outputs = q.Cfifo.us.(h) in
          let record = q.Cfifo.vs.(h) in
          t.now <- tm;
          (* Cfifo.advance, hand-inlined *)
          q.Cfifo.us.(h) <- q.Cfifo.dummy_u;
          q.Cfifo.vs.(h) <- q.Cfifo.dummy_v;
          let h1 = h + 1 in
          q.Cfifo.head <-
            (if h1 = Array.length q.Cfifo.times then 0 else h1);
          q.Cfifo.len <- q.Cfifo.len - 1;
          if obs_off then begin
            complete_fast t ~limit ai outputs record;
            let wl = wake.(ai) in
            for k = 0 to Array.length wl - 1 do
              let aj = wl.(k) in
              if static.(aj) then start_static aj else try_start_gen aj
            done
          end
          else begin
            complete_event t ~limit ai outputs record;
            drain_c ()
          end;
          if exporter_on then exporter_tick ()
        end
      end
    done;
    (* Hand the pending entries (if any) back to the heap — deopt
       continues under the loop below, an early stop leaves a resumable
       engine — and sync the heap's seq counter either way, so later
       runs and snapshots number events exactly as the interpreter
       would have. *)
    let pending =
      List.map
        (fun (time, seq, ai, outputs, record) ->
          (time, seq, Complete (ai, outputs, record)))
        (Compiled.Fifo.entries !cur @ Compiled.Fifo.entries !nxt)
    in
    Event_heap.load t.events ~next_seq:!cseq pending
  end
  else begin
    for ai = 0 to n - 1 do
      mark_dirty t ai
    done;
    drain ()
  end;
  while (not !stop) && not (Event_heap.is_empty t.events) do
    (* Peek before popping: an event past [until_ms] stays in the queue,
       so the state at the cap is faithful and [steps] only counts
       processed events. *)
    (match (until_ms, Event_heap.peek_time t.events) with
    | Some cap, Some time when time > cap -> stop := true
    | _ -> ());
    if not !stop then begin
      incr steps;
      if !steps > max_events then begin
        budget_hit := true;
        stop := true
      end
      else if t.remaining = 0 then stop := true
      else
        match Event_heap.pop t.events with
        | None -> stop := true
        | Some (time, ev) ->
            t.now <- time;
            (match ev with
            | Complete (ai, outputs, record) ->
                complete_event t ~limit ai outputs record
            | Tick ai -> tick_event t ai);
            drain ();
            exporter_tick ()
    end
  done;
  let end_ms = max_finish 0.0 t.trace in
  if Obs.enabled t.obs then begin
    let m = Obs.metrics t.obs in
    Metrics.set_gauge m "engine.end_ms" end_ms;
    Metrics.set_gauge m "engine.steps" (float_of_int !steps);
    (* which backend executed this run, as a pair of 0/1 gauges — the
       OpenMetrics exporter maps them to tpdf_engine_backend{backend=…}.
       Gauges only: nothing enters the obs event stream, so the
       byte-equivalence contract between backends is unaffected. *)
    let c = if t.ran_compiled then 1.0 else 0.0 in
    Metrics.set_gauge m "engine.backend.compiled" c;
    Metrics.set_gauge m "engine.backend.event" (1.0 -. c);
    flush_sampled t pool;
    update_gc_gauges t;
    match t.exporter with Some e -> Om.Exporter.flush e | None -> ()
  end;
  let stats =
    {
      end_ms;
      firings =
        Array.to_list
          (Array.mapi (fun ai a -> (a, t.count.(ai))) t.actor_names);
      max_occupancy =
        Array.to_list
          (Array.map (fun ch -> (ch, t.max_occ.(ch))) t.chan_order);
      dropped =
        Array.to_list
          (Array.map (fun ch -> (ch, t.dropped.(ch))) t.chan_order);
      trace =
        (let rev = List.rev t.trace in
         (* completion order is already start-time order under uniform
            durations (every compiled run, most event runs); skip the
            sort then — stable_sort leaves a sorted list untouched, so
            the result is identical either way *)
         if trace_sorted rev then rev
         else
           List.stable_sort
             (fun a b ->
               let c = Float.compare a.start_ms b.start_ms in
               if c <> 0 then c else Float.compare a.finish_ms b.finish_ms)
             rev);
    }
  in
  if !budget_hit then
    Budget_exceeded { steps = !steps; at_ms = t.now; partial = stats }
  else if t.remaining > 0 then begin
    let blocked = ref [] in
    for ai = n - 1 downto 0 do
      if limit.(ai) <> max_int && t.completed.(ai) < limit.(ai) then
        blocked := (t.actor_names.(ai), t.completed.(ai), limit.(ai)) :: !blocked
    done;
    Stalled
      ( {
          at_ms = t.now;
          blocked_actors = !blocked;
          channel_states =
            Array.to_list
              (Array.map
                 (fun ch -> (ch, Ringbuf.length t.queues.(ch)))
                 t.chan_order);
        },
        stats )
  end
  else Completed stats

let run ?backend ?iterations ?targets ?until_ms ?max_events ?pool t =
  match run_outcome ?backend ?iterations ?targets ?until_ms ?max_events ?pool t with
  | Completed stats -> stats
  | Stalled (s, _) ->
      failwith
        (Printf.sprintf "Engine.run: stalled at %.3f ms (stuck: %s)" s.at_ms
           (String.concat ", "
              (List.map (fun (a, _, _) -> a) s.blocked_actors)))
  | Budget_exceeded _ ->
      failwith "Engine.run: event budget exceeded (runaway simulation?)"
  | exception Error e -> failwith (error_message e)

let channel_tokens t ch =
  if ch < 0 || ch >= Array.length t.chan_exists || not t.chan_exists.(ch) then
    raise Not_found;
  Ringbuf.to_list t.queues.(ch)

let pending_events t = Event_heap.length t.events

(* ------------------------------------------------------------------ *)
(* Snapshot / restore                                                  *)
(* ------------------------------------------------------------------ *)

let at_boundary t =
  let skel = Tpdf.Graph.skeleton t.graph in
  Array.for_all not t.busy
  && Array.for_all (fun d -> d = 0) t.debt
  && List.for_all
       (fun (e : (string, Csdf.Graph.channel) Digraph.edge) ->
         Ringbuf.length t.queues.(e.id) = e.label.init)
       (Csdf.Graph.channels skel)
  && List.for_all
       (fun (_, _, ev) -> match ev with Tick _ -> true | Complete _ -> false)
       (Event_heap.entries t.events)

let snapshot ~encode t =
  let tok = function
    | Token.Data v -> Snapshot.Data (encode v)
    | Token.Ctrl m -> Snapshot.Ctrl m
  in
  let firing (r : firing_record) =
    {
      Snapshot.f_actor = r.actor;
      f_index = r.index;
      f_phase = r.phase;
      f_mode = r.mode;
      f_start_ms = r.start_ms;
      f_finish_ms = r.finish_ms;
    }
  in
  let actors =
    Array.to_list
      (Array.mapi
         (fun ai name ->
           {
             Snapshot.a_name = name;
             a_count = t.count.(ai);
             a_completed = t.completed.(ai);
             a_busy = t.busy.(ai);
             a_last_mode = t.last_mode.(ai).cm.Tpdf.Mode.name;
           })
         t.actor_names)
  in
  let channels =
    Array.to_list
      (Array.map
         (fun ch ->
           {
             Snapshot.c_id = ch;
             c_tokens = List.map tok (Ringbuf.to_list t.queues.(ch));
             c_debt = t.debt.(ch);
             c_dropped = t.dropped.(ch);
             c_max_occ = t.max_occ.(ch);
           })
         t.chan_order)
  in
  let heap =
    List.map
      (fun (time, seq, ev) ->
        let h_event =
          match ev with
          | Complete (ai, outputs, record) ->
              Snapshot.Complete
                {
                  c_actor = t.actor_names.(ai);
                  c_outputs =
                    List.map
                      (fun (ch, toks) -> (ch, List.map tok toks))
                      outputs;
                  c_record = firing record;
                }
          | Tick ai -> Snapshot.Tick t.actor_names.(ai)
        in
        { Snapshot.h_time = time; h_seq = seq; h_event })
      (Event_heap.entries t.events)
  in
  {
    Snapshot.now = t.now;
    armed = t.armed;
    heap_seq = Event_heap.next_seq t.events;
    actors;
    channels;
    heap;
    trace = List.rev_map firing t.trace;
  }

let restore ~graph ~valuation ?init_token ?behaviors ?obs ?pool ~default
    ~decode (s : Snapshot.t) =
  let t =
    create_engine ~emit_initial:false ~graph ~valuation ?init_token ?behaviors
      ?obs ?pool ~default ()
  in
  let fail fmt =
    Printf.ksprintf (fun m -> invalid_arg ("Engine.restore: " ^ m)) fmt
  in
  let aid name =
    match Hashtbl.find_opt t.actor_ids name with
    | Some i -> i
    | None -> fail "snapshot names unknown actor %s" name
  in
  let tok = function
    | Snapshot.Data v -> Token.Data (decode v)
    | Snapshot.Ctrl m -> Token.Ctrl m
  in
  let firing (f : Snapshot.firing) =
    {
      actor = f.f_actor;
      index = f.f_index;
      phase = f.f_phase;
      mode = f.f_mode;
      start_ms = f.f_start_ms;
      finish_ms = f.f_finish_ms;
    }
  in
  if List.length s.actors <> Array.length t.actor_names then
    fail "snapshot has %d actor(s), graph has %d" (List.length s.actors)
      (Array.length t.actor_names);
  List.iter
    (fun (a : Snapshot.actor_state) ->
      let ai = aid a.a_name in
      t.count.(ai) <- a.a_count;
      t.completed.(ai) <- a.a_completed;
      t.busy.(ai) <- a.a_busy;
      match Hashtbl.find_opt t.mode_by_name.(ai) a.a_last_mode with
      | Some cm -> t.last_mode.(ai) <- cm
      | None ->
          (* Actors without declared modes snapshot the synthetic default
             mode name; their compiled default is already installed. *)
          if Array.length t.cmodes.(ai) > 0 then
            fail "snapshot pins %s to unknown mode %S" a.a_name a.a_last_mode)
    s.actors;
  if List.length s.channels <> Array.length t.chan_order then
    fail "snapshot has %d channel(s), graph has %d" (List.length s.channels)
      (Array.length t.chan_order);
  List.iter
    (fun (c : Snapshot.channel_state) ->
      let ch = c.c_id in
      if ch < 0 || ch >= Array.length t.chan_exists || not t.chan_exists.(ch)
      then fail "snapshot names unknown channel e%d" ch;
      let q = t.queues.(ch) in
      Ringbuf.clear q;
      List.iter (fun tk -> Ringbuf.push q (tok tk)) c.c_tokens;
      t.debt.(ch) <- c.c_debt;
      t.dropped.(ch) <- c.c_dropped;
      t.max_occ.(ch) <- c.c_max_occ)
    s.channels;
  let event = function
    | Snapshot.Tick a -> Tick (aid a)
    | Snapshot.Complete { c_actor; c_outputs; c_record } ->
        Complete
          ( aid c_actor,
            List.map
              (fun (ch, toks) ->
                if
                  ch < 0
                  || ch >= Array.length t.chan_exists
                  || not t.chan_exists.(ch)
                then fail "snapshot output on unknown channel e%d" ch;
                (ch, List.map tok toks))
              c_outputs,
            firing c_record )
  in
  Event_heap.load t.events ~next_seq:s.heap_seq
    (List.map
       (fun (e : Snapshot.heap_entry) -> (e.h_time, e.h_seq, event e.h_event))
       s.heap);
  t.now <- s.now;
  t.armed <- s.armed;
  t.trace <- List.rev_map firing s.trace;
  t
