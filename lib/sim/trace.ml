module Ev = Tpdf_obs.Event

(* Both renderers run over firing records; they can be fed either by the
   legacy [Engine.stats.trace] list or by the observability event stream
   (the ["firing"] spans and ["clock"] tick instants the engine emits). *)

let actors_in_order records =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (r : Engine.firing_record) ->
      if Hashtbl.mem seen r.Engine.actor then None
      else begin
        Hashtbl.replace seen r.Engine.actor ();
        Some r.Engine.actor
      end)
    records

let end_of_records records =
  List.fold_left
    (fun acc (r : Engine.firing_record) -> Float.max acc r.Engine.finish_ms)
    0.0 records

let gantt_of_records ?(width = 72) records =
  let buf = Buffer.create 256 in
  let end_ms = end_of_records records in
  let span = Float.max end_ms 1e-9 in
  let col t =
    min (width - 1) (int_of_float (float_of_int (width - 1) *. t /. span))
  in
  List.iter
    (fun actor ->
      let row = Bytes.make width '.' in
      List.iter
        (fun (r : Engine.firing_record) ->
          if r.Engine.actor = actor then
            if r.Engine.finish_ms <= r.Engine.start_ms then
              Bytes.set row (col r.Engine.start_ms) '|'
            else
              for i = col r.Engine.start_ms to max (col r.Engine.start_ms)
                                                  (col r.Engine.finish_ms - 1) do
                Bytes.set row i '#'
              done)
        records;
      Buffer.add_string buf (Printf.sprintf "%-12s |%s|\n" actor (Bytes.to_string row)))
    (actors_in_order records);
  Buffer.add_string buf (Printf.sprintf "%-12s  0 ms %*s %.3f ms\n" "" (width - 12) "" end_ms);
  Buffer.contents buf

let csv_of_records records =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "actor,index,phase,mode,start_ms,finish_ms\n";
  List.iter
    (fun (r : Engine.firing_record) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%d,%d,%s,%.6f,%.6f\n" r.Engine.actor r.Engine.index
           r.Engine.phase r.Engine.mode r.Engine.start_ms r.Engine.finish_ms))
    records;
  Buffer.contents buf

let gantt ?width (stats : Engine.stats) =
  gantt_of_records ?width stats.Engine.trace

let to_csv (stats : Engine.stats) = csv_of_records stats.Engine.trace

(* ------------------------------------------------------------------ *)
(* Event-stream front end                                              *)
(* ------------------------------------------------------------------ *)

let int_arg args name =
  match List.assoc_opt name args with Some (Ev.Int i) -> Some i | _ -> None

let str_arg args name =
  match List.assoc_opt name args with Some (Ev.Str s) -> Some s | _ -> None

let records_of_events events =
  let records =
    List.filter_map
      (fun (ev : Ev.t) ->
        let record mode finish_ms =
          match (int_arg ev.args "index", int_arg ev.args "phase") with
          | Some index, Some phase ->
              Some
                {
                  Engine.actor = ev.track;
                  index;
                  phase;
                  mode;
                  start_ms = ev.ts_ms;
                  finish_ms;
                }
          | _ -> None
        in
        match (ev.cat, ev.payload) with
        | "firing", Ev.Span dur ->
            let mode =
              match str_arg ev.args "mode" with Some m -> m | None -> ev.name
            in
            record mode (ev.ts_ms +. dur)
        | "clock", Ev.Instant -> record "tick" ev.ts_ms
        | _ -> None)
      events
  in
  (* Same presentation order as [Engine.stats.trace]: the engine emits
     firing events in completion order, and the stable sort below matches
     the one [Engine.run] applies. *)
  List.stable_sort
    (fun (a : Engine.firing_record) (b : Engine.firing_record) ->
      compare (a.Engine.start_ms, a.Engine.finish_ms)
        (b.Engine.start_ms, b.Engine.finish_ms))
    records

let gantt_of_events ?width events = gantt_of_records ?width (records_of_events events)

let csv_of_events events = csv_of_records (records_of_events events)
