type 'a ctx = {
  actor : string;
  mode : string;
  phase : int;
  index : int;
  now_ms : float;
  inputs : (int * 'a Token.t list) list;
  out_rates : (int * int) list;
}

type 'a t = {
  work : 'a ctx -> (int * 'a Token.t list) list;
  duration_ms : 'a ctx -> float;
}

let const_duration d _ = d

let make ?(duration_ms = const_duration 1.0) work = { work; duration_ms }

let produce_at_rates ctx mk =
  List.filter_map
    (fun (ch, rate) ->
      if rate = 0 then None
      else if rate = 1 then Some (ch, [ mk ch 0 ])
      else Some (ch, List.init rate (fun i -> mk ch i)))
    ctx.out_rates

let fill ?duration_ms v =
  (* one shared token and one shared [mk], not a fresh box and closure
     per firing — [fill] is the default kernel behaviour, so this is on
     every benchmark's hot path *)
  let tok = Token.Data v in
  let mk _ _ = tok in
  make ?duration_ms (fun ctx -> produce_at_rates ctx mk)

let forward ?duration_ms () =
  make ?duration_ms (fun ctx ->
      let pool =
        List.concat_map
          (fun (_, toks) -> List.filter (fun t -> not (Token.is_ctrl t)) toks)
          ctx.inputs
      in
      let pool = ref pool in
      let take ch =
        match !pool with
        | [] ->
            failwith
              (Printf.sprintf
                 "Behavior.forward (%s): not enough input tokens for channel \
                  e%d"
                 ctx.actor ch)
        | t :: rest ->
            pool := rest;
            t
      in
      produce_at_rates ctx (fun ch _ -> take ch))

let sink ?duration_ms f =
  make ?duration_ms (fun ctx ->
      f ctx;
      [])

let emit_mode ?duration_ms f =
  make ?duration_ms (fun ctx ->
      let m = f ctx in
      produce_at_rates ctx (fun _ _ -> Token.Ctrl m))
