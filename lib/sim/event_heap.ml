(* Array-backed binary min-heap of timed events, ordered by (time, seq).
   [seq] is a monotonically increasing insertion counter, so events with
   equal timestamps pop in FIFO order — the tie-break golden traces and
   seeded fault runs depend on.  The (time, seq) pair is a total order,
   which makes pop order fully deterministic regardless of heap layout. *)

type 'a entry = { time : float; seq : int; value : 'a }

type 'a t = {
  mutable arr : 'a entry array;
  mutable len : int;
  mutable seq : int;
}

let create () = { arr = [||]; len = 0; seq = 0 }

let length t = t.len

let is_empty t = t.len = 0

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t entry =
  let cap = Array.length t.arr in
  let cap' = if cap = 0 then 16 else 2 * cap in
  let arr' = Array.make cap' entry in
  Array.blit t.arr 0 arr' 0 t.len;
  t.arr <- arr'

let add t time value =
  let entry = { time; seq = t.seq; value } in
  t.seq <- t.seq + 1;
  if t.len = Array.length t.arr then grow t entry;
  (* sift up *)
  let i = ref t.len in
  t.len <- t.len + 1;
  let arr = t.arr in
  arr.(!i) <- entry;
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    lt entry arr.(parent)
  do
    let parent = (!i - 1) / 2 in
    arr.(!i) <- arr.(parent);
    arr.(parent) <- entry;
    i := parent
  done

let peek_time t = if t.len = 0 then None else Some t.arr.(0).time

let next_seq t = t.seq

let entries t =
  let l = ref [] in
  for i = t.len - 1 downto 0 do
    let e = t.arr.(i) in
    l := (e.time, e.seq, e.value) :: !l
  done;
  List.sort
    (fun (t1, s1, _) (t2, s2, _) -> compare (t1, s1) (t2, s2))
    !l

let load t ~next_seq entries =
  let entries =
    List.sort
      (fun (t1, s1, _) (t2, s2, _) -> compare (t1, s1) (t2, s2))
      entries
  in
  List.iter
    (fun (_, seq, _) ->
      if seq >= next_seq then
        invalid_arg "Event_heap.load: entry seq >= next_seq")
    entries;
  (* A (time, seq)-sorted array satisfies the heap invariant directly:
     every parent precedes its children in the total order. *)
  let arr =
    Array.of_list
      (List.map (fun (time, seq, value) -> { time; seq; value }) entries)
  in
  t.arr <- arr;
  t.len <- Array.length arr;
  t.seq <- next_seq

let of_entries ~next_seq entries =
  let t = create () in
  load t ~next_seq entries;
  t

let pop t =
  if t.len = 0 then None
  else begin
    let arr = t.arr in
    let root = arr.(0) in
    let last = arr.(t.len - 1) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      arr.(0) <- last;
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && lt arr.(l) arr.(!smallest) then smallest := l;
        if r < t.len && lt arr.(r) arr.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = arr.(!i) in
          arr.(!i) <- arr.(!smallest);
          arr.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    Some (root.time, root.value)
  end
