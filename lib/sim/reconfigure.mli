(** Iteration-boundary reconfiguration.

    TPDF parameters are set at run time: in the OFDM demodulator the
    vectorization degree β “varies between 1 and 100” across activations.
    Rate consistency guarantees that a (consistent, safe, live) graph
    returns to its initial channel state after every iteration — which is
    exactly the moment a parameter may change without breaking any firing
    in flight.  This module runs a sequence of iterations, each under its
    own valuation, checking the boundary invariant between them. *)

type iteration_stats = {
  valuation : Tpdf_param.Valuation.t;
  stats : Engine.stats;
}

type abort = {
  abort_index : int;  (** position in the requested sequence *)
  abort_what : string;  (** the rejected valuation or scenario, rendered *)
  abort_reason : string;
}

type report = {
  iterations : iteration_stats list;
  total_end_ms : float;  (** sum of per-iteration end times *)
  max_occupancy : (int * int) list;  (** per channel, across iterations *)
  aborts : abort list;  (** transactions rolled back ([] when [txn] off) *)
}

val run_sequence :
  graph:Tpdf_core.Graph.t ->
  ?backend:[ `Event | `Compiled ] ->
  ?obs:Tpdf_obs.Obs.t ->
  ?behaviors:(string * 'a Behavior.t) list ->
  ?targets:(Tpdf_param.Valuation.t -> (string * int) list) ->
  ?pool:Tpdf_par.Pool.t ->
  ?txn:bool ->
  default:'a ->
  Tpdf_param.Valuation.t list ->
  report
(** Execute one iteration per valuation.  Each iteration starts from the
    graph's initial channel state (the boundary invariant the analyses
    guarantee); behaviours are re-instantiated per iteration with the
    current valuation's rates.  [targets] can deselect branch actors per
    valuation (see {!Engine.run}).

    [obs] records the whole sequence on one virtual timeline: a
    ["reconfig"] instant (with the valuation) marks each iteration
    boundary, and each iteration's engine events are shifted by the
    accumulated end time of the previous ones.  [pool] is handed to every
    engine created (deterministic parallel mode, byte-identical results —
    see {!Engine.create}).

    [txn] (default [false]) makes each reconfiguration a {e transaction}
    with validate-then-commit semantics.  A ["txn.begin"] instant opens
    the boundary; the new valuation is re-validated (all parameters
    bound, rate safety, boundedness with the valuation as liveness
    sample) and the iteration runs with its events and metrics staged in
    an [Obs] capture.  If validation passes, the run completes, and the
    engine ends back at the iteration boundary, the capture is spliced
    and a ["txn.commit"] instant recorded; otherwise {e nothing} of the
    attempt reaches [obs] — a ["txn.abort"] instant (with the reason) and
    a [reconfigure.aborts] counter bump are recorded, the abort is
    appended to {!field:report.aborts}, and the iteration re-runs under
    the previous committed valuation.
    @raise Invalid_argument on an empty sequence
    @raise Failure if any iteration stalls irrecoverably — with [txn],
    only when the very first valuation is rejected (nothing to roll back
    to) or the rollback run itself stalls. *)

(** {2 Mode-scenario sweeps}

    Reconfiguration of the {e topology} rather than the parameters: run the
    same graph and valuation under a sequence of mode scenarios (one mode
    pinned per controlled kernel), e.g. the OFDM demodulator switching from
    QPSK to 16-QAM between iterations. *)

type scenario = (string * string) list
(** [(kernel, mode)] pins, as in {!Tpdf_core.Buffers.scenario}. *)

val mode_scenarios : Tpdf_core.Graph.t -> scenario list
(** A covering sweep: scenario [i] pins every controlled kernel to its
    [i]-th declared mode (modulo its mode count); the number of scenarios
    is the largest mode count.  [[[]]] when the graph has no controlled
    kernel, so the sweep degenerates to one plain run. *)

val pp_scenario : scenario -> string

val validate_scenario : Tpdf_core.Graph.t -> scenario -> unit
(** @raise Invalid_argument when a pin names an unknown actor or a mode the
    kernel does not declare.  Called by {!starved_actors} and
    {!run_scenarios}. *)

val scenario_control_behavior :
  Tpdf_core.Graph.t -> scenario -> 'a Behavior.t
(** A control-actor behaviour that emits, on each control channel, the mode
    the scenario pins that channel's destination kernel to (the kernel's
    first declared mode when unpinned).  This is what {!run_scenarios}
    installs on control actors without an explicit behaviour; exposed so
    supervisors can steer kernels into a degraded mode through the model's
    own control machinery. *)

val starved_actors : Tpdf_core.Graph.t -> scenario -> string list
(** Actors that cannot fire under the scenario because a pinned mode
    upstream suppresses (transitively) an input they need.  Used to zero
    their firing targets when executing the scenario. *)

val run_scenarios :
  graph:Tpdf_core.Graph.t ->
  ?backend:[ `Event | `Compiled ] ->
  ?obs:Tpdf_obs.Obs.t ->
  ?behaviors:(string * 'a Behavior.t) list ->
  ?iterations:int ->
  ?pool:Tpdf_par.Pool.t ->
  ?txn:bool ->
  valuation:Tpdf_param.Valuation.t ->
  default:'a ->
  scenario list ->
  report
(** Execute [iterations] (default 1) graph iterations per scenario, on one
    virtual timeline with ["reconfig"] instants at scenario boundaries (see
    [run_sequence]).  Control actors not given an explicit behaviour emit
    the scenario's pinned mode of each target kernel; actors starved by the
    scenario get a zero firing target.

    With [txn] (default [false]) each scenario switch is a transaction:
    the pins are validated at the boundary (instead of up front, so an
    invalid scenario mid-sequence aborts rather than raises), the run is
    staged in an [Obs] capture, and a failed or non-boundary run is
    rolled back and re-run under the previous committed scenario — see
    {!run_sequence} for the protocol and {!field:report.aborts}.
    @raise Invalid_argument on an empty scenario list (or, without
    [txn], an invalid scenario anywhere in it)
    @raise Failure if a run stalls irrecoverably (see {!run_sequence}). *)
