(** Iteration-boundary reconfiguration.

    TPDF parameters are set at run time: in the OFDM demodulator the
    vectorization degree β “varies between 1 and 100” across activations.
    Rate consistency guarantees that a (consistent, safe, live) graph
    returns to its initial channel state after every iteration — which is
    exactly the moment a parameter may change without breaking any firing
    in flight.  This module runs a sequence of iterations, each under its
    own valuation, checking the boundary invariant between them. *)

type iteration_stats = {
  valuation : Tpdf_param.Valuation.t;
  stats : Engine.stats;
}

type report = {
  iterations : iteration_stats list;
  total_end_ms : float;  (** sum of per-iteration end times *)
  max_occupancy : (int * int) list;  (** per channel, across iterations *)
}

val run_sequence :
  graph:Tpdf_core.Graph.t ->
  ?obs:Tpdf_obs.Obs.t ->
  ?behaviors:(string * 'a Behavior.t) list ->
  ?targets:(Tpdf_param.Valuation.t -> (string * int) list) ->
  ?pool:Tpdf_par.Pool.t ->
  default:'a ->
  Tpdf_param.Valuation.t list ->
  report
(** Execute one iteration per valuation.  Each iteration starts from the
    graph's initial channel state (the boundary invariant the analyses
    guarantee); behaviours are re-instantiated per iteration with the
    current valuation's rates.  [targets] can deselect branch actors per
    valuation (see {!Engine.run}).

    [obs] records the whole sequence on one virtual timeline: a
    ["reconfig"] instant (with the valuation) marks each iteration
    boundary, and each iteration's engine events are shifted by the
    accumulated end time of the previous ones.  [pool] is handed to every
    engine created (deterministic parallel mode, byte-identical results —
    see {!Engine.create}).
    @raise Invalid_argument on an empty sequence
    @raise Failure if any iteration stalls. *)

(** {2 Mode-scenario sweeps}

    Reconfiguration of the {e topology} rather than the parameters: run the
    same graph and valuation under a sequence of mode scenarios (one mode
    pinned per controlled kernel), e.g. the OFDM demodulator switching from
    QPSK to 16-QAM between iterations. *)

type scenario = (string * string) list
(** [(kernel, mode)] pins, as in {!Tpdf_core.Buffers.scenario}. *)

val mode_scenarios : Tpdf_core.Graph.t -> scenario list
(** A covering sweep: scenario [i] pins every controlled kernel to its
    [i]-th declared mode (modulo its mode count); the number of scenarios
    is the largest mode count.  [[[]]] when the graph has no controlled
    kernel, so the sweep degenerates to one plain run. *)

val pp_scenario : scenario -> string

val validate_scenario : Tpdf_core.Graph.t -> scenario -> unit
(** @raise Invalid_argument when a pin names an unknown actor or a mode the
    kernel does not declare.  Called by {!starved_actors} and
    {!run_scenarios}. *)

val scenario_control_behavior :
  Tpdf_core.Graph.t -> scenario -> 'a Behavior.t
(** A control-actor behaviour that emits, on each control channel, the mode
    the scenario pins that channel's destination kernel to (the kernel's
    first declared mode when unpinned).  This is what {!run_scenarios}
    installs on control actors without an explicit behaviour; exposed so
    supervisors can steer kernels into a degraded mode through the model's
    own control machinery. *)

val starved_actors : Tpdf_core.Graph.t -> scenario -> string list
(** Actors that cannot fire under the scenario because a pinned mode
    upstream suppresses (transitively) an input they need.  Used to zero
    their firing targets when executing the scenario. *)

val run_scenarios :
  graph:Tpdf_core.Graph.t ->
  ?obs:Tpdf_obs.Obs.t ->
  ?behaviors:(string * 'a Behavior.t) list ->
  ?iterations:int ->
  ?pool:Tpdf_par.Pool.t ->
  valuation:Tpdf_param.Valuation.t ->
  default:'a ->
  scenario list ->
  report
(** Execute [iterations] (default 1) graph iterations per scenario, on one
    virtual timeline with ["reconfig"] instants at scenario boundaries (see
    [run_sequence]).  Control actors not given an explicit behaviour emit
    the scenario's pinned mode of each target kernel; actors starved by the
    scenario get a zero firing target.
    @raise Invalid_argument on an empty scenario list
    @raise Failure if a run stalls. *)
