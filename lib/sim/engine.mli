(** Discrete-event execution of TPDF graphs.

    The engine implements the runtime semantics of §II-B and §III-D on an
    unbounded-parallelism platform (every actor is its own sequential
    process; firings take the durations given by the behaviours):

    - a kernel with a control port first reads one control token (when the
      current phase's control rate is 1), which selects its mode;
    - depending on the mode it waits for all inputs, a subset, or — for the
      Transaction box's deadline behaviour — the {e highest-priority input
      available} at that moment (falling back to the first input to become
      available when none is ready);
    - tokens on rejected inputs are {e discarded}, keeping every buffer
      bounded exactly as Theorem 2 promises;
    - {e clock} control actors fire on their period, independently of data;
    - everything is deterministic given the behaviours.

    Internally the graph is compiled once at {!create} into dense arrays
    (rates, control ports, adjacency, per-mode tables), events live in an
    {!Event_heap} ordered by [(time, seq)], and scheduling re-examines only
    actors woken by token arrivals or their own completion — see DESIGN.md,
    "Engine internals", for the structure and the determinism contract. *)

type firing_record = {
  actor : string;
  index : int;
  phase : int;
  mode : string;
  start_ms : float;
  finish_ms : float;
}

type stats = {
  end_ms : float;  (** completion time of the last firing *)
  firings : (string * int) list;  (** per actor *)
  max_occupancy : (int * int) list;  (** per channel id, incl. initial *)
  dropped : (int * int) list;  (** rejected tokens per channel id *)
  trace : firing_record list;  (** in start order *)
}

(** {2 Typed run diagnoses}

    Behaviour-contract violations are programming errors and carry a typed
    {!error}; abnormal run terminations (deadlock, runaway) are execution
    facts and are reported as an {!outcome} so a supervisor can react to
    them — see [Tpdf_fault.Supervisor]. *)

type error =
  | Unknown_mode of { actor : string; token : string }
      (** a control token named a mode the kernel does not declare *)
  | Data_on_control_port of { actor : string }
  | Rate_mismatch of {
      actor : string;
      channel : int;
      expected : int;
      produced : int;
    }  (** behaviour produced the wrong token count on a channel *)
  | Foreign_channel of { actor : string; channel : int }
  | Token_class_mismatch of {
      actor : string;
      channel : int;
      control_channel : bool;
    }  (** data token on a control channel or vice versa *)
  | Negative_duration of { actor : string; duration_ms : float }

exception Error of error

val error_message : error -> string
(** The human-readable rendering {!run} uses when re-raising as [Failure]. *)

type stall = {
  at_ms : float;  (** virtual time at which no event remained *)
  blocked_actors : (string * int * int) list;
      (** [(actor, completed, required)] for every actor short of its
          firing target *)
  channel_states : (int * int) list;
      (** per-channel occupancy at stall time *)
}

type outcome =
  | Completed of stats
  | Stalled of stall * stats  (** deadlock; partial stats included *)
  | Budget_exceeded of { steps : int; at_ms : float; partial : stats }
      (** [max_events] exhausted (runaway guard) *)

val pp_stall : Format.formatter -> stall -> unit

type 'a t

val create :
  graph:Tpdf_core.Graph.t ->
  valuation:Tpdf_param.Valuation.t ->
  ?init_token:(int -> int -> 'a Token.t) ->
  ?behaviors:(string * 'a Behavior.t) list ->
  ?obs:Tpdf_obs.Obs.t ->
  ?pool:Tpdf_par.Pool.t ->
  default:'a ->
  unit ->
  'a t
(** Builds a runnable instance.  [init_token ch i] gives the i-th initial
    token of channel [ch] (default: [Data default] on data channels and the
    first mode name on control channels).  Actors without an explicit
    behaviour source [default] values ({!Behavior.fill}); control actors
    default to emitting their destination's first mode name.

    [obs] (default {!Tpdf_obs.Obs.disabled}) receives the run's virtual-time
    event stream: one ["firing"] span per completed firing, ["clock"] tick
    instants, ["control"] token-read instants, ["channel"] occupancy counter
    samples (one per channel at t=0, then on every push/pop) and token-drop
    instants, plus per-actor/per-channel metrics.  With the disabled
    collector every instrumentation point is a single branch and allocates
    nothing, so simulation results and timings are unchanged.

    [pool] turns on deterministic parallel execution: the behaviours of
    all firings that start at the same drain — independent by
    construction, since outputs are delivered at completion and each
    channel has a single consumer — run on the pool's domains, and their
    results are committed in ascending actor id.  Outcomes, stats,
    traces, metrics and obs event streams are bit-identical to a
    sequential run (enforced by [test/test_engine_equiv.ml]); behaviours
    must only be thread-safe {e against each other} (shared mutable state
    between different actors' behaviours needs locking — see
    [Tpdf_fault.Supervisor]).
    @raise Invalid_argument on unknown behaviour actors, or if the graph
    fails {!Tpdf_core.Graph.validate}. *)

val run_outcome :
  ?backend:[ `Event | `Compiled ] ->
  ?iterations:int ->
  ?targets:(string * int) list ->
  ?until_ms:float ->
  ?max_events:int ->
  ?pool:Tpdf_par.Pool.t ->
  'a t ->
  outcome
(** Execute [iterations] (default 1) graph iterations: every non-clock
    actor fires [iterations × q] times; clocks tick until the rest of the
    graph finishes.  [targets] overrides the per-iteration count of listed
    actors — pass 0 for actors on a branch the scenario never activates.
    [until_ms] caps simulated time, [max_events] (default 1_000_000) caps
    engine steps as a runaway guard.  When [until_ms] cuts a run short the
    first event past the cap stays queued, so a later [run_outcome] call on
    the same instance resumes where the capped run stopped.

    [backend] (default [`Event]) selects the execution strategy, never
    the semantics: [`Compiled] replays the static-schedule rounds of
    §III-D with two flat FIFOs instead of the event heap, and is
    byte-equivalent to [`Event] — outcomes, stats, traces, obs streams
    and snapshot images are identical (enforced by
    [test/test_engine_equiv.ml]).  It engages when the run starts clean
    (no clocked actors, no pool, no pending events or in-flight firings)
    and firing durations are uniform; any other situation — including
    the first non-uniform duration mid-run — falls back to the event
    interpreter transparently, continuing the same run.  See DESIGN.md
    §8.

    A run that cannot complete its firing targets returns {!Stalled} with a
    full diagnosis (blocked actors with their completed/required counts,
    per-channel occupancy at stall time); exhausting the event budget
    returns {!Budget_exceeded}.  Partial statistics are carried in both.
    [pool] overrides the pool given at {!create} for this run (the engine
    stays usable sequentially and in parallel on the same instance).
    @raise Invalid_argument on a [targets] entry naming an unknown actor or
    carrying a negative count, or if [iterations < 1].
    @raise Error if a behaviour violates its contract (wrong token counts,
    bad control tokens, negative durations). *)

val run :
  ?backend:[ `Event | `Compiled ] ->
  ?iterations:int ->
  ?targets:(string * int) list ->
  ?until_ms:float ->
  ?max_events:int ->
  ?pool:Tpdf_par.Pool.t ->
  'a t ->
  stats
(** Compatibility wrapper around {!run_outcome}: returns the stats of a
    {!Completed} run.
    @raise Invalid_argument as {!run_outcome}.
    @raise Failure if the graph stalls before completing the iterations
    (deadlock at run time), the event budget is exhausted, or a behaviour
    violates its contract ({!Error} is rendered with {!error_message}). *)

val channel_tokens : 'a t -> int -> 'a Token.t list
(** Current contents of a channel (after {!run}: leftovers). *)

val pending_events : 'a t -> int
(** Events still queued.  After a capped {!run_outcome} this is how a
    caller distinguishes "stopped at [until_ms]" (events pending) from a
    genuine deadlock (queue drained). *)

(** {2 Snapshot / restore}

    The engine's complete deterministic run state as plain data (see
    {!Snapshot}): restore-then-continue is byte-identical to an
    uninterrupted run — outcomes, stats, traces and [tpdf_obs] streams —
    at any iteration boundary or mid-iteration point, sequentially or on
    a pool.  Enforced by [test/test_ckpt.ml]. *)

val at_boundary : 'a t -> bool
(** The iteration-boundary invariant (PAPER §III): no firing in flight,
    no undischarged rejection debt, every channel back to its initial
    token {e count}, and no pending event other than clock ticks.  This
    is the state in which a parameter change is safe. *)

val snapshot : encode:('a -> string) -> 'a t -> Snapshot.t
(** Capture the run state.  [encode] serializes data-token payloads;
    it must be the inverse of the [decode] later given to {!restore}. *)

val restore :
  graph:Tpdf_core.Graph.t ->
  valuation:Tpdf_param.Valuation.t ->
  ?init_token:(int -> int -> 'a Token.t) ->
  ?behaviors:(string * 'a Behavior.t) list ->
  ?obs:Tpdf_obs.Obs.t ->
  ?pool:Tpdf_par.Pool.t ->
  default:'a ->
  decode:(string -> 'a) ->
  Snapshot.t ->
  'a t
(** Rebuild a runnable engine in the snapshotted state.  [graph],
    [valuation] and [behaviors] must match the original {!create} call
    (the snapshot carries state, not code); the t=0 occupancy samples
    are {e not} re-emitted, so the [obs] stream of the restored engine
    continues exactly where the original's left off.
    @raise Invalid_argument when the snapshot does not fit the graph
    (unknown actors/channels/modes, wrong counts). *)
