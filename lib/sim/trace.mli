(** Rendering and exporting execution traces of the runtime engine.

    The renderers accept either the legacy {!Engine.stats} record or the
    observability event stream produced when the engine runs with an
    enabled {!Tpdf_obs.Obs.t} collector; both inputs yield byte-identical
    output for the same run. *)

val gantt : ?width:int -> Engine.stats -> string
(** ASCII Gantt chart of the firing records, one row per actor (actors in
    first-firing order); instantaneous firings (clock ticks) are marked
    with ['|'].  [width] is the time-axis width (default 72). *)

val to_csv : Engine.stats -> string
(** One line per firing: [actor,index,phase,mode,start_ms,finish_ms],
    with a header row. *)

val records_of_events : Tpdf_obs.Event.t list -> Engine.firing_record list
(** Reconstruct the firing records from the engine's ["firing"] spans and
    ["clock"] tick instants, in the presentation order of
    [Engine.stats.trace].  Events of other categories are ignored. *)

val gantt_of_events : ?width:int -> Tpdf_obs.Event.t list -> string
val csv_of_events : Tpdf_obs.Event.t list -> string

val gantt_of_records : ?width:int -> Engine.firing_record list -> string
val csv_of_records : Engine.firing_record list -> string
