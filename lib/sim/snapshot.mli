(** Plain-data image of a running {!Engine}.

    Captures the complete deterministic run state: the virtual clock,
    every pending event-heap entry with its [(time, seq)] key (and the
    heap's insertion counter, so FIFO ties against future events are
    preserved), per-channel token queues and drop/occupancy statistics,
    per-actor firing indices and last-read control modes, and the
    accumulated trace.  [Engine.snapshot]/[Engine.restore] convert
    to/from a live engine; [Tpdf_ckpt] serializes this type to the
    versioned, checksummed on-disk checkpoint format.

    Token payloads are pre-encoded to strings (the caller supplies the
    codec), so the type is monomorphic. *)

type token = Data of string | Ctrl of string

type firing = {
  f_actor : string;
  f_index : int;
  f_phase : int;
  f_mode : string;
  f_start_ms : float;
  f_finish_ms : float;
}

type heap_event =
  | Complete of {
      c_actor : string;
      c_outputs : (int * token list) list;
      c_record : firing;
    }  (** an in-flight firing and the tokens it will deliver *)
  | Tick of string  (** a scheduled clock tick of the named control actor *)

type heap_entry = { h_time : float; h_seq : int; h_event : heap_event }

type actor_state = {
  a_name : string;
  a_count : int;  (** firings started *)
  a_completed : int;  (** firings finished *)
  a_busy : bool;
  a_last_mode : string;  (** mode persisting across zero-rate control phases *)
}

type channel_state = {
  c_id : int;
  c_tokens : token list;  (** front of the queue first *)
  c_debt : int;  (** rejection debt not yet discharged *)
  c_dropped : int;
  c_max_occ : int;
}

type t = {
  now : float;
  armed : bool;
      (** clocks already armed: a restored engine must not re-schedule
          the initial [Tick]s *)
  heap_seq : int;
  actors : actor_state list;  (** in dense-actor-id order *)
  channels : channel_state list;  (** in skeleton channel order *)
  heap : heap_entry list;  (** in [(time, seq)] order *)
  trace : firing list;  (** completion order, oldest first *)
}
