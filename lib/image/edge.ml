type detector = Quick_mask | Sobel | Prewitt | Kirsch | Canny

let all = [ Quick_mask; Sobel; Prewitt; Kirsch; Canny ]

let name = function
  | Quick_mask -> "quick_mask"
  | Sobel -> "sobel"
  | Prewitt -> "prewitt"
  | Kirsch -> "kirsch"
  | Canny -> "canny"

let quality = function
  | Quick_mask -> 1
  | Sobel -> 2
  | Prewitt -> 3
  | Kirsch -> 4
  | Canny -> 5

(* The quick mask has only five non-zero coefficients; one fused pass. *)
let quick_mask ?pool ?(threshold = 30.0) img =
  let w = Image.width img and h = Image.height img in
  let response =
    Image.par_init ?pool ~width:w ~height:h (fun x y ->
        abs_float
          ((4.0 *. Image.get img x y)
          -. Image.get img (x - 1) (y - 1)
          -. Image.get img (x + 1) (y - 1)
          -. Image.get img (x - 1) (y + 1)
          -. Image.get img (x + 1) (y + 1)))
  in
  Image.threshold response threshold

(* Both Sobel responses in one fused traversal of the neighbourhood. *)
let gradient_magnitude ?pool img =
  let w = Image.width img and h = Image.height img in
  Image.par_init ?pool ~width:w ~height:h (fun x y ->
      let p00 = Image.get img (x - 1) (y - 1)
      and p10 = Image.get img x (y - 1)
      and p20 = Image.get img (x + 1) (y - 1)
      and p01 = Image.get img (x - 1) y
      and p21 = Image.get img (x + 1) y
      and p02 = Image.get img (x - 1) (y + 1)
      and p12 = Image.get img x (y + 1)
      and p22 = Image.get img (x + 1) (y + 1) in
      let a = p20 +. (2.0 *. p21) +. p22 -. p00 -. (2.0 *. p01) -. p02 in
      let b = p02 +. (2.0 *. p12) +. p22 -. p00 -. (2.0 *. p10) -. p20 in
      sqrt ((a *. a) +. (b *. b)))

let sobel ?pool ?(threshold = 120.0) img =
  Image.threshold (gradient_magnitude ?pool img) threshold

(* All eight compass responses are evaluated in a single fused pass over
   the 3x3 neighbourhood — one image traversal instead of eight
   convolutions. *)
let compass masks ?pool ?(threshold = 120.0) img =
  let w = Image.width img and h = Image.height img in
  let mag = Image.create ~width:w ~height:h in
  let mdata = Image.data mag in
  (* [nb] is the caller's scratch for one row: the parallel path hands
     every row its own nine floats, so domains never share scratch. *)
  let row nb y =
    let base = y * w in
    for x = 0 to w - 1 do
      let i = ref 0 in
      for dy = -1 to 1 do
        for dx = -1 to 1 do
          nb.(!i) <- Image.get img (x + dx) (y + dy);
          incr i
        done
      done;
      let best = ref 0.0 in
      Array.iter
        (fun mask ->
          let acc = ref 0.0 in
          for j = 0 to 8 do
            acc := !acc +. (mask.(j) *. nb.(j))
          done;
          let v = abs_float !acc in
          if v > !best then best := v)
        masks;
      mdata.(base + x) <- !best
    done
  in
  (match pool with
  | None ->
      let nb = Array.make 9 0.0 in
      for y = 0 to h - 1 do
        row nb y
      done
  | Some pool ->
      Tpdf_par.Pool.parallel_for pool ~lo:0 ~hi:h (fun y ->
          row (Array.make 9 0.0) y));
  Image.threshold mag threshold

let prewitt ?pool ?threshold img =
  compass Kernels.prewitt_compass ?pool ?threshold img

let kirsch ?pool ?(threshold = 400.0) img =
  compass Kernels.kirsch_compass ?pool ~threshold img

let canny ?pool ?(low = 40.0) ?(high = 90.0) img =
  let w = Image.width img and h = Image.height img in
  let blurred = Kernels.convolve ?pool img ~size:5 Kernels.gaussian5 in
  let gx = Kernels.convolve3 ?pool blurred Kernels.sobel_x in
  let gy = Kernels.convolve3 ?pool blurred Kernels.sobel_y in
  let mag =
    Image.par_init ?pool ~width:w ~height:h (fun x y ->
        let a = Image.get gx x y and b = Image.get gy x y in
        sqrt ((a *. a) +. (b *. b)))
  in
  (* Non-maximum suppression along the quantized gradient direction. *)
  let nms =
    Image.par_init ?pool ~width:w ~height:h (fun x y ->
        let m = Image.get mag x y in
        if m = 0.0 then 0.0
        else
          let a = Image.get gx x y and b = Image.get gy x y in
          let angle = atan2 b a in
          let sector =
            let deg = angle *. 180.0 /. Float.pi in
            let deg = if deg < 0.0 then deg +. 180.0 else deg in
            if deg < 22.5 || deg >= 157.5 then `H
            else if deg < 67.5 then `D1
            else if deg < 112.5 then `V
            else `D2
          in
          let n1, n2 =
            match sector with
            | `H -> (Image.get mag (x - 1) y, Image.get mag (x + 1) y)
            | `V -> (Image.get mag x (y - 1), Image.get mag x (y + 1))
            | `D1 -> (Image.get mag (x + 1) (y - 1), Image.get mag (x - 1) (y + 1))
            | `D2 -> (Image.get mag (x - 1) (y - 1), Image.get mag (x + 1) (y + 1))
          in
          if m >= n1 && m >= n2 then m else 0.0)
  in
  (* Double threshold + hysteresis: BFS from strong pixels through weak
     ones. *)
  let out = Image.create ~width:w ~height:h in
  let stack = Stack.create () in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      if Image.get nms x y >= high then begin
        Image.set out x y 255.0;
        Stack.push (x, y) stack
      end
    done
  done;
  while not (Stack.is_empty stack) do
    let x, y = Stack.pop stack in
    for dy = -1 to 1 do
      for dx = -1 to 1 do
        let nx = x + dx and ny = y + dy in
        if
          nx >= 0 && nx < w && ny >= 0 && ny < h
          && Image.get out nx ny = 0.0
          && Image.get nms nx ny >= low
        then begin
          Image.set out nx ny 255.0;
          Stack.push (nx, ny) stack
        end
      done
    done
  done;
  out

let run ?pool d img =
  match d with
  | Quick_mask -> quick_mask ?pool img
  | Sobel -> sobel ?pool img
  | Prewitt -> prewitt ?pool img
  | Kirsch -> kirsch ?pool img
  | Canny -> canny ?pool img

(* Milliseconds per megapixel, fitted to the paper's Fig. 6 table
   (1024x1024 ~ 1.05 Mpix: 200 / 473 / 522 / 1040 ms); Kirsch, not measured
   by the paper, is modelled like Prewitt (same 8-mask structure). *)
let ms_per_mpix = function
  | Quick_mask -> 190.0
  | Sobel -> 450.0
  | Prewitt -> 498.0
  | Kirsch -> 505.0
  | Canny -> 992.0

let model_duration_ms d ~width ~height =
  ms_per_mpix d *. (float_of_int (width * height) /. 1.0e6)
