type vector = { dx : int; dy : int }

type field = {
  block : int;
  blocks_x : int;
  blocks_y : int;
  vectors : vector array;
}

let estimate_cost_ops kind ~block ~range =
  let per_block =
    match kind with
    | `Zero -> 1
    | `Tss -> 25 (* three rounds of 8 neighbours + centre *)
    | `Full ->
        let side = (2 * range) + 1 in
        side * side
  in
  per_block * block * block

let check_frames ~block reference current =
  let w = Image.width current and h = Image.height current in
  if Image.width reference <> w || Image.height reference <> h then
    invalid_arg "Motion: frame dimensions differ";
  if block < 1 || w mod block <> 0 || h mod block <> 0 then
    invalid_arg "Motion: dimensions must be divisible by the block size";
  (w / block, h / block)

(* Sum of absolute differences between the current block and the reference
   block displaced by (dx, dy); clamped reads keep borders cheap. *)
let sad ~block reference current ~bx ~by ~dx ~dy =
  let x0 = bx * block and y0 = by * block in
  let acc = ref 0.0 in
  for y = 0 to block - 1 do
    for x = 0 to block - 1 do
      acc :=
        !acc
        +. abs_float
             (Image.get current (x0 + x) (y0 + y)
             -. Image.get reference (x0 + x - dx) (y0 + y - dy))
    done
  done;
  !acc

(* Blocks are independent, so the vector field can be filled in any
   order: the pooled path writes disjoint slots of a pre-sized array and
   matches [Array.init] exactly. *)
let make_field ?pool ~block ~blocks_x ~blocks_y f =
  let n = blocks_x * blocks_y in
  let vectors =
    match pool with
    | None -> Array.init n (fun i -> f (i mod blocks_x) (i / blocks_x))
    | Some pool ->
        let v = Array.make n { dx = 0; dy = 0 } in
        Tpdf_par.Pool.parallel_for pool ~lo:0 ~hi:n (fun i ->
            v.(i) <- f (i mod blocks_x) (i / blocks_x));
        v
  in
  { block; blocks_x; blocks_y; vectors }

let zero_motion ?(block = 16) ~reference current =
  let blocks_x, blocks_y = check_frames ~block reference current in
  make_field ~block ~blocks_x ~blocks_y (fun _ _ -> { dx = 0; dy = 0 })

let full_search ?pool ?(block = 16) ?(range = 7) ~reference current =
  let blocks_x, blocks_y = check_frames ~block reference current in
  make_field ?pool ~block ~blocks_x ~blocks_y (fun bx by ->
      let best = ref { dx = 0; dy = 0 } in
      let best_sad = ref infinity in
      for dy = -range to range do
        for dx = -range to range do
          let s = sad ~block reference current ~bx ~by ~dx ~dy in
          if s < !best_sad then begin
            best_sad := s;
            best := { dx; dy }
          end
        done
      done;
      !best)

let three_step_search ?pool ?(block = 16) ?(range = 7) ~reference current =
  let blocks_x, blocks_y = check_frames ~block reference current in
  make_field ?pool ~block ~blocks_x ~blocks_y (fun bx by ->
      let centre = ref { dx = 0; dy = 0 } in
      let best_sad =
        ref (sad ~block reference current ~bx ~by ~dx:0 ~dy:0)
      in
      let step = ref (max 1 ((range + 1) / 2)) in
      while !step >= 1 do
        let c = !centre in
        for sy = -1 to 1 do
          for sx = -1 to 1 do
            if sx <> 0 || sy <> 0 then begin
              let dx = c.dx + (sx * !step) and dy = c.dy + (sy * !step) in
              if abs dx <= range && abs dy <= range then begin
                let s = sad ~block reference current ~bx ~by ~dx ~dy in
                if s < !best_sad then begin
                  best_sad := s;
                  centre := { dx; dy }
                end
              end
            end
          done
        done;
        step := !step / 2
      done;
      !centre)

let compensate ~reference field =
  let w = field.blocks_x * field.block and h = field.blocks_y * field.block in
  Image.init ~width:w ~height:h (fun x y ->
      let bx = x / field.block and by = y / field.block in
      let v = field.vectors.((by * field.blocks_x) + bx) in
      Image.get reference (x - v.dx) (y - v.dy))

let residual_energy ~current ~prediction =
  let w = Image.width current and h = Image.height current in
  if Image.width prediction <> w || Image.height prediction <> h then
    invalid_arg "Motion.residual_energy: dimension mismatch";
  let acc = ref 0.0 in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let d = Image.get current x y -. Image.get prediction x y in
      acc := !acc +. (d *. d)
    done
  done;
  !acc /. float_of_int (w * h)
