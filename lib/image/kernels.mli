(** Convolution and the classic 3×3 edge masks. *)

val convolve3 : ?pool:Tpdf_par.Pool.t -> Image.t -> float array -> Image.t
(** 3×3 convolution (row-major 9-element kernel), clamped borders. *)

val convolve :
  ?pool:Tpdf_par.Pool.t -> Image.t -> size:int -> float array -> Image.t
(** Square odd-sized convolution.  Interior pixels (window fully inside)
    address the backing array directly; only the border pays for clamped
    reads.  With [pool], rows are chunked across its domains — output is
    bit-identical to the sequential run, whatever the domain count.
    @raise Invalid_argument on even size or kernel length mismatch. *)

val gaussian5 : float array
(** 5×5 Gaussian blur kernel (σ ≈ 1.4), normalized, as used by Canny. *)

val quick_mask : float array
(** The single “quick mask” of Phillips' classic implementation:
    {v -1  0 -1 / 0 4 0 / -1 0 -1 v} *)

val sobel_x : float array
val sobel_y : float array

val prewitt_compass : float array array
(** The 8 compass orientations of the Prewitt operator. *)

val kirsch_compass : float array array
(** The 8 compass orientations of the Kirsch operator. *)
