(** The edge detectors of the §IV-A case study.

    Relative costs follow their structure, matching the ordering the paper
    measured (Fig. 6's table): Quick Mask applies one 3×3 mask, Sobel two,
    Prewitt and Kirsch eight compass masks each, and Canny adds Gaussian
    smoothing, non-maximum suppression and hysteresis — with an execution
    time that depends on the image {e content}, which is exactly why the
    application needs a deadline-driven Transaction box.

    All detectors return a binary edge map (0 / 255). *)

type detector = Quick_mask | Sobel | Prewitt | Kirsch | Canny

val all : detector list
(** In increasing quality order: Quick Mask, Sobel, Prewitt, Kirsch,
    Canny. *)

val name : detector -> string

val quality : detector -> int
(** Priority rank used by the Transaction box: Canny > Kirsch > Prewitt >
    Sobel > Quick Mask (the paper's order, with Kirsch inserted). *)

val quick_mask : ?pool:Tpdf_par.Pool.t -> ?threshold:float -> Image.t -> Image.t
val sobel : ?pool:Tpdf_par.Pool.t -> ?threshold:float -> Image.t -> Image.t
val prewitt : ?pool:Tpdf_par.Pool.t -> ?threshold:float -> Image.t -> Image.t
val kirsch : ?pool:Tpdf_par.Pool.t -> ?threshold:float -> Image.t -> Image.t

val canny :
  ?pool:Tpdf_par.Pool.t -> ?low:float -> ?high:float -> Image.t -> Image.t
(** Gaussian blur → Sobel gradients → non-maximum suppression → double
    threshold with hysteresis (weak edges kept only when connected to a
    strong edge).  The convolutions, gradient and suppression passes are
    row-parallel under [pool]; hysteresis is inherently sequential. *)

val run : ?pool:Tpdf_par.Pool.t -> detector -> Image.t -> Image.t
(** Dispatch with default thresholds.  Every detector is row-parallel
    under [pool] (the compass operators give each chunk its own
    neighbourhood scratch) and returns the same pixels as the sequential
    run — bit-identical, not approximately. *)

val gradient_magnitude : ?pool:Tpdf_par.Pool.t -> Image.t -> Image.t
(** Sobel gradient magnitude (shared by {!sobel} and {!canny}); exposed for
    tests. *)

val model_duration_ms : detector -> width:int -> height:int -> float
(** Calibrated cost model reproducing the shape of the paper's Fig. 6 table
    (200 / 473 / 522 / 1040 ms at 1024×1024 on their Core i3): milliseconds
    proportional to pixel count, with the per-detector constants fitted to
    the paper's measurements.  Used when deterministic durations are needed
    (tests, schedulers); benchmarks measure real wall-clock instead. *)
