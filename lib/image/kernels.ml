let convolve ?pool img ~size kernel =
  if size mod 2 = 0 || size < 1 then
    invalid_arg "Kernels.convolve: size must be odd and positive";
  if Array.length kernel <> size * size then
    invalid_arg "Kernels.convolve: kernel length mismatch";
  let half = size / 2 in
  let w = Image.width img and h = Image.height img in
  let out = Image.create ~width:w ~height:h in
  let odata = Image.data out and idata = Image.data img in
  (* Clamped-read fallback, used wherever the window leaves the image. *)
  let clamped x y =
    let acc = ref 0.0 in
    for ky = 0 to size - 1 do
      for kx = 0 to size - 1 do
        acc :=
          !acc
          +. (kernel.((ky * size) + kx)
             *. Image.get img (x + kx - half) (y + ky - half))
      done
    done;
    !acc
  in
  let row y =
    let base = y * w in
    if y >= half && y + half < h && w > 2 * half then begin
      for x = 0 to half - 1 do
        odata.(base + x) <- clamped x y
      done;
      (* Interior: the window is fully inside the image, so address the
         backing array directly.  Accumulation order matches the clamped
         path (ky outer, kx inner), so the sums are bit-identical. *)
      for x = half to w - half - 1 do
        let acc = ref 0.0 in
        for ky = 0 to size - 1 do
          let irow = ((y + ky - half) * w) + x - half in
          let krow = ky * size in
          for kx = 0 to size - 1 do
            acc :=
              !acc
              +. (Array.unsafe_get kernel (krow + kx)
                 *. Array.unsafe_get idata (irow + kx))
          done
        done;
        odata.(base + x) <- !acc
      done;
      for x = w - half to w - 1 do
        odata.(base + x) <- clamped x y
      done
    end
    else
      for x = 0 to w - 1 do
        odata.(base + x) <- clamped x y
      done
  in
  (match pool with
  | None ->
      for y = 0 to h - 1 do
        row y
      done
  | Some pool -> Tpdf_par.Pool.parallel_for pool ~lo:0 ~hi:h row);
  out

let convolve3 ?pool img kernel = convolve ?pool img ~size:3 kernel

let gaussian5 =
  let raw =
    [|
      2.; 4.; 5.; 4.; 2.;
      4.; 9.; 12.; 9.; 4.;
      5.; 12.; 15.; 12.; 5.;
      4.; 9.; 12.; 9.; 4.;
      2.; 4.; 5.; 4.; 2.;
    |]
  in
  let sum = Array.fold_left ( +. ) 0.0 raw in
  Array.map (fun v -> v /. sum) raw

let quick_mask = [| -1.; 0.; -1.; 0.; 4.; 0.; -1.; 0.; -1. |]

let sobel_x = [| -1.; 0.; 1.; -2.; 0.; 2.; -1.; 0.; 1. |]

let sobel_y = [| -1.; -2.; -1.; 0.; 0.; 0.; 1.; 2.; 1. |]

(* The eight 45-degree rotations of the base compass template. *)
let rotations base =
  (* ring positions clockwise starting top-left; center stays put *)
  let ring = [| 0; 1; 2; 5; 8; 7; 6; 3 |] in
  Array.init 8 (fun r ->
      let k = Array.make 9 base.(4) in
      Array.iteri
        (fun i pos ->
          let src = ring.((i + (8 - r)) mod 8) in
          k.(pos) <- base.(src))
        ring;
      k)

let prewitt_compass =
  rotations [| 1.; 1.; 1.; 1.; -2.; 1.; -1.; -1.; -1. |]

let kirsch_compass =
  rotations [| 5.; 5.; 5.; -3.; 0.; -3.; -3.; -3.; -3. |]
