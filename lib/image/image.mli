(** Grayscale images for the edge-detection case study (§IV-A).

    Pixels are floats (conventionally 0.0-255.0) stored row-major.
    Out-of-bounds reads clamp to the nearest edge pixel, the usual
    convolution boundary handling. *)

type t

val create : width:int -> height:int -> t
(** Zero-filled.  @raise Invalid_argument on non-positive sizes. *)

val width : t -> int
val height : t -> int

val get : t -> int -> int -> float
(** [get img x y] with clamped coordinates. *)

val get_exn : t -> int -> int -> float
(** @raise Invalid_argument when out of bounds. *)

val set : t -> int -> int -> float -> unit
(** @raise Invalid_argument when out of bounds. *)

val fill : t -> float -> unit
val copy : t -> t
val map : (float -> float) -> t -> t
val init : width:int -> height:int -> (int -> int -> float) -> t

val data : t -> float array
(** The row-major backing array itself (no copy).  Pixel [(x, y)] lives at
    index [y * width + x].  Exposed so kernels can address interior pixels
    without the clamping arithmetic of {!get}; treat it as borrowed. *)

val par_init :
  ?pool:Tpdf_par.Pool.t -> width:int -> height:int -> (int -> int -> float) -> t
(** {!init} with the row loop chunked over [pool].  [f] must be pure (it
    may run on any domain, in any row order); the result is pixel-identical
    to the sequential {!init}.  Without [pool] this {e is} {!init}. *)

val fold : ('a -> float -> 'a) -> 'a -> t -> 'a

val mean : t -> float
val max_value : t -> float
val min_value : t -> float

val threshold : t -> float -> t
(** Binary image: 255 where strictly above the threshold, else 0. *)

val equal : t -> t -> bool
(** Same dimensions and exactly equal pixels. *)

val nonzero_count : t -> int

val pp_stats : Format.formatter -> t -> unit
(** One-line dimension / range / mean summary. *)
