type t = { w : int; h : int; data : float array }

let create ~width ~height =
  if width < 1 || height < 1 then
    invalid_arg "Image.create: dimensions must be positive";
  { w = width; h = height; data = Array.make (width * height) 0.0 }

let width t = t.w
let height t = t.h

let clamp v lo hi = if v < lo then lo else if v > hi then hi else v

let get t x y =
  let x = clamp x 0 (t.w - 1) and y = clamp y 0 (t.h - 1) in
  Array.unsafe_get t.data ((y * t.w) + x)

let check t x y =
  if x < 0 || x >= t.w || y < 0 || y >= t.h then
    invalid_arg (Printf.sprintf "Image: (%d,%d) out of %dx%d" x y t.w t.h)

let get_exn t x y =
  check t x y;
  t.data.((y * t.w) + x)

let set t x y v =
  check t x y;
  t.data.((y * t.w) + x) <- v

let fill t v = Array.fill t.data 0 (Array.length t.data) v

let copy t = { t with data = Array.copy t.data }

let map f t = { t with data = Array.map f t.data }

let init ~width ~height f =
  let t = create ~width ~height in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      t.data.((y * width) + x) <- f x y
    done
  done;
  t

let data t = t.data

(* Rows are disjoint slices of the backing array, so chunking the row
   range over a pool writes without overlap and produces exactly the
   pixels [init] would. *)
let par_init ?pool ~width ~height f =
  match pool with
  | None -> init ~width ~height f
  | Some pool ->
      let t = create ~width ~height in
      Tpdf_par.Pool.parallel_for pool ~lo:0 ~hi:height (fun y ->
          let base = y * width in
          for x = 0 to width - 1 do
            Array.unsafe_set t.data (base + x) (f x y)
          done);
      t

let fold f acc t = Array.fold_left f acc t.data

let mean t = fold ( +. ) 0.0 t /. float_of_int (t.w * t.h)

let max_value t = fold max neg_infinity t

let min_value t = fold min infinity t

let threshold t thr = map (fun v -> if v > thr then 255.0 else 0.0) t

let equal a b = a.w = b.w && a.h = b.h && a.data = b.data

let nonzero_count t = fold (fun acc v -> if v <> 0.0 then acc + 1 else acc) 0 t

let pp_stats ppf t =
  Format.fprintf ppf "%dx%d [%.1f, %.1f] mean %.2f" t.w t.h (min_value t)
    (max_value t) (mean t)
