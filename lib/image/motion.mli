(** Block-matching motion estimation.

    Substrate for the AVC-encoder discussion of §V: the paper improves a
    video encoder by using a Transaction kernel with a quality threshold to
    “choose dynamically the highest quality video available within
    real-time constraints”.  Motion estimation is the part whose cost/
    quality trade-off drives that choice; three standard algorithms with
    very different costs are provided:

    - {!zero_motion} — free, worst prediction;
    - {!three_step_search} — logarithmic cost, good prediction;
    - {!full_search} — exhaustive, best prediction, costly. *)

type vector = { dx : int; dy : int }

type field = {
  block : int;  (** block size in pixels *)
  blocks_x : int;
  blocks_y : int;
  vectors : vector array;  (** row-major, [blocks_x * blocks_y] entries *)
}

val estimate_cost_ops : [ `Zero | `Tss | `Full ] -> block:int -> range:int -> int
(** Approximate SAD evaluations per block (1, 25-ish, (2r+1)²). *)

val zero_motion : ?block:int -> reference:Image.t -> Image.t -> field
(** All-zero vectors.  @raise Invalid_argument on dimension mismatch or
    dimensions not divisible by the block size. *)

val full_search :
  ?pool:Tpdf_par.Pool.t ->
  ?block:int -> ?range:int -> reference:Image.t -> Image.t -> field
(** Exhaustive search in [\[-range, range\]²] (default block 16, range 7).
    Blocks are searched in parallel under [pool]; the field is identical
    to the sequential one. *)

val three_step_search :
  ?pool:Tpdf_par.Pool.t ->
  ?block:int -> ?range:int -> reference:Image.t -> Image.t -> field
(** Classic TSS: halving step sizes around the best candidate.  Blocks are
    searched in parallel under [pool]. *)

val compensate : reference:Image.t -> field -> Image.t
(** Motion-compensated prediction built from the reference frame. *)

val residual_energy : current:Image.t -> prediction:Image.t -> float
(** Mean squared error of the prediction — the quality metric (lower is
    better).  @raise Invalid_argument on dimension mismatch. *)
