type ('v, 'e) edge = { id : int; src : 'v; dst : 'v; label : 'e }

(* Accessors hand out forward-order lists; building those from the
   reverse-order insertion lists used to allocate a fresh [List.rev] per
   call, which dominated the simulation hot path.  Forward lists are now
   cached and invalidated on mutation ([add_vertex]/[add_edge] and the
   manual edge push of [subgraph]); analyses that treat the graph as
   immutable input hit the cache every time. *)
type ('v, 'e) t = {
  mutable order : 'v list; (* reverse insertion order *)
  mutable vertices_fwd : 'v list option; (* cached forward order *)
  mutable vertex_count : int;
  present : ('v, unit) Hashtbl.t;
  mutable edge_list : ('v, 'e) edge list; (* reverse insertion order *)
  mutable edges_fwd : ('v, 'e) edge list option; (* cached forward order *)
  by_id : (int, ('v, 'e) edge) Hashtbl.t;
  out_tbl : ('v, ('v, 'e) edge list) Hashtbl.t; (* reverse order *)
  in_tbl : ('v, ('v, 'e) edge list) Hashtbl.t;
  out_fwd : ('v, ('v, 'e) edge list) Hashtbl.t; (* forward-order cache *)
  in_fwd : ('v, ('v, 'e) edge list) Hashtbl.t;
  mutable next_id : int;
}

let create () =
  {
    order = [];
    vertices_fwd = None;
    vertex_count = 0;
    present = Hashtbl.create 16;
    edge_list = [];
    edges_fwd = None;
    by_id = Hashtbl.create 16;
    out_tbl = Hashtbl.create 16;
    in_tbl = Hashtbl.create 16;
    out_fwd = Hashtbl.create 16;
    in_fwd = Hashtbl.create 16;
    next_id = 0;
  }

let mem_vertex g v = Hashtbl.mem g.present v

let add_vertex g v =
  if not (mem_vertex g v) then begin
    Hashtbl.replace g.present v ();
    g.order <- v :: g.order;
    g.vertices_fwd <- None;
    g.vertex_count <- g.vertex_count + 1
  end

let push tbl key e =
  let old = match Hashtbl.find_opt tbl key with Some l -> l | None -> [] in
  Hashtbl.replace tbl key (e :: old)

(* Register an edge record, keeping every cache coherent.  Shared by
   [add_edge] (fresh id) and [subgraph] (preserved id). *)
let register_edge g e =
  g.edge_list <- e :: g.edge_list;
  g.edges_fwd <- None;
  Hashtbl.replace g.by_id e.id e;
  push g.out_tbl e.src e;
  push g.in_tbl e.dst e;
  Hashtbl.remove g.out_fwd e.src;
  Hashtbl.remove g.in_fwd e.dst

let add_edge g src dst label =
  add_vertex g src;
  add_vertex g dst;
  let id = g.next_id in
  g.next_id <- id + 1;
  register_edge g { id; src; dst; label };
  id

let vertices g =
  match g.vertices_fwd with
  | Some l -> l
  | None ->
      let l = List.rev g.order in
      g.vertices_fwd <- Some l;
      l

let edges g =
  match g.edges_fwd with
  | Some l -> l
  | None ->
      let l = List.rev g.edge_list in
      g.edges_fwd <- Some l;
      l

let find_edge g id = Hashtbl.find g.by_id id

let nb_vertices g = g.vertex_count

let nb_edges g = g.next_id

let out_edges g v =
  match Hashtbl.find_opt g.out_fwd v with
  | Some l -> l
  | None ->
      let l =
        match Hashtbl.find_opt g.out_tbl v with
        | Some l -> List.rev l
        | None -> []
      in
      if Hashtbl.mem g.present v then Hashtbl.replace g.out_fwd v l;
      l

let in_edges g v =
  match Hashtbl.find_opt g.in_fwd v with
  | Some l -> l
  | None ->
      let l =
        match Hashtbl.find_opt g.in_tbl v with
        | Some l -> List.rev l
        | None -> []
      in
      if Hashtbl.mem g.present v then Hashtbl.replace g.in_fwd v l;
      l

let dedup l =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun v ->
      if Hashtbl.mem seen v then false
      else begin
        Hashtbl.replace seen v ();
        true
      end)
    l

let succ g v = dedup (List.map (fun e -> e.dst) (out_edges g v))

let pred g v = dedup (List.map (fun e -> e.src) (in_edges g v))

let incident g v =
  out_edges g v @ List.filter (fun e -> not (e.src = v && e.dst = v)) (in_edges g v)

let is_weakly_connected g =
  match vertices g with
  | [] -> true
  | root :: _ as vs ->
      let visited = Hashtbl.create 16 in
      let rec dfs v =
        if not (Hashtbl.mem visited v) then begin
          Hashtbl.replace visited v ();
          List.iter
            (fun e ->
              dfs e.src;
              dfs e.dst)
            (incident g v)
        end
      in
      dfs root;
      List.for_all (Hashtbl.mem visited) vs

(* Tarjan's strongly-connected-components algorithm, iterative-friendly
   recursion (graphs here are small). *)
let sccs g =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (succ g v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if w = v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  List.iter
    (fun v -> if not (Hashtbl.mem index v) then strongconnect v)
    (vertices g);
  List.rev !components

let has_self_loop g v = List.exists (fun e -> e.dst = v) (out_edges g v)

let nontrivial_sccs g =
  List.filter
    (fun comp ->
      match comp with [ v ] -> has_self_loop g v | _ :: _ :: _ -> true | [] -> false)
    (sccs g)

let has_cycle g = nontrivial_sccs g <> []

let topological_sort g =
  if has_cycle g then None
  else begin
    let indeg = Hashtbl.create 16 in
    List.iter (fun v -> Hashtbl.replace indeg v (List.length (in_edges g v))) (vertices g);
    let ready = Queue.create () in
    List.iter
      (fun v -> if Hashtbl.find indeg v = 0 then Queue.add v ready)
      (vertices g);
    let out = ref [] in
    while not (Queue.is_empty ready) do
      let v = Queue.pop ready in
      out := v :: !out;
      List.iter
        (fun e ->
          let d = Hashtbl.find indeg e.dst - 1 in
          Hashtbl.replace indeg e.dst d;
          if d = 0 then Queue.add e.dst ready)
        (out_edges g v)
    done;
    Some (List.rev !out)
  end

let map_edges g fv fe =
  let g' = create () in
  List.iter (fun v -> add_vertex g' (fv v)) (vertices g);
  List.iter
    (fun e -> ignore (add_edge g' (fv e.src) (fv e.dst) (fe e)))
    (edges g);
  g'

let subgraph g keep =
  let g' = create () in
  List.iter (fun v -> if keep v then add_vertex g' v) (vertices g);
  List.iter
    (fun e ->
      if keep e.src && keep e.dst then begin
        (* Preserve ids so callers can correlate with the parent graph. *)
        g'.next_id <- max g'.next_id (e.id + 1);
        register_edge g' e
      end)
    (edges g);
  g'

let pp_dot ~vertex_name ?(vertex_attrs = fun _ -> []) ?(edge_attrs = fun _ -> [])
    ?(graph_name = "g") ppf g =
  let quote s = "\"" ^ String.concat "\\\"" (String.split_on_char '"' s) ^ "\"" in
  let attrs ppf l =
    match l with
    | [] -> ()
    | _ ->
        Format.fprintf ppf " [%s]"
          (String.concat ", "
             (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (quote v)) l))
  in
  Format.fprintf ppf "digraph %s {@\n" graph_name;
  List.iter
    (fun v ->
      Format.fprintf ppf "  %s%a;@\n" (quote (vertex_name v)) attrs (vertex_attrs v))
    (vertices g);
  List.iter
    (fun e ->
      Format.fprintf ppf "  %s -> %s%a;@\n"
        (quote (vertex_name e.src))
        (quote (vertex_name e.dst))
        attrs (edge_attrs e))
    (edges g);
  Format.fprintf ppf "}@\n"
