let enabled_ref =
  ref
    (match Sys.getenv_opt "TPDF_PARAM_MEMO" with
    | Some ("0" | "false" | "no" | "off") -> false
    | _ -> true)

let enabled () = !enabled_ref
let set_enabled b = enabled_ref := b

let gauge_registry : (string * (unit -> float)) list ref = ref []
let register_gauge name f = gauge_registry := !gauge_registry @ [ (name, f) ]

(* (hits, misses) readers, one per memo table, evaluated in the calling
   domain. *)
let counter_registry : (unit -> int * int) list ref = ref []

type ('k, 'v) state = {
  h : ('k, 'v) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

type ('k, 'v) t = { cap : int; state : ('k, 'v) state Domain.DLS.key }

let create ~name ?(cap = 1 lsl 20) () =
  let state =
    Domain.DLS.new_key (fun () ->
        { h = Hashtbl.create 256; hits = 0; misses = 0 })
  in
  register_gauge
    ("param.memo." ^ name ^ ".size")
    (fun () -> float_of_int (Hashtbl.length (Domain.DLS.get state).h));
  counter_registry :=
    (fun () ->
      let s = Domain.DLS.get state in
      (s.hits, s.misses))
    :: !counter_registry;
  { cap; state }

let find t k compute =
  if not !enabled_ref then compute k
  else
    let s = Domain.DLS.get t.state in
    match Hashtbl.find_opt s.h k with
    | Some v ->
        s.hits <- s.hits + 1;
        v
    | None ->
        s.misses <- s.misses + 1;
        let v = compute k in
        if Hashtbl.length s.h >= t.cap then Hashtbl.reset s.h;
        Hashtbl.add s.h k v;
        v

let hits () = List.fold_left (fun acc f -> acc + fst (f ())) 0 !counter_registry

let misses () =
  List.fold_left (fun acc f -> acc + snd (f ())) 0 !counter_registry

let gauges () =
  ("param.memo.hits", float_of_int (hits ()))
  :: ("param.memo.misses", float_of_int (misses ()))
  :: List.map (fun (n, f) -> (n, f ())) !gauge_registry
