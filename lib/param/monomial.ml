open Tpdf_util

(* Sorted (name, exponent) array; exponents strictly positive, names strictly
   increasing.  Descriptors are interned in a per-domain unique table, so
   structurally equal monomials built in the same domain are physically equal
   and carry a precomputed structural hash and total degree. *)
type desc = { vs : (string * int) array; deg : int }

module H = Hashcons.Make (struct
  type t = desc

  let equal a b =
    let n = Array.length a.vs in
    n = Array.length b.vs
    &&
    let rec go i =
      i >= n
      ||
      let va, ea = Array.unsafe_get a.vs i
      and vb, eb = Array.unsafe_get b.vs i in
      ea = eb && String.equal va vb && go (i + 1)
    in
    go 0

  (* FNV-1a over the characters: parameter names are short, and wide
     monomials hash one name per factor on every interning, so an inlined
     char fold beats a generic-hash call per name. *)
  let string_hash s =
    let h = ref 0x811c9dc5 in
    for i = 0 to String.length s - 1 do
      h := (!h lxor Char.code (String.unsafe_get s i)) * 0x01000193
    done;
    !h

  let hash a =
    Array.fold_left
      (fun acc (v, e) -> ((acc * 31) + string_hash v) * 31 + e)
      17 a.vs
end)

type t = desc Hashcons.hash_consed

let table_key = Domain.DLS.new_key (fun () -> H.create 1024)
let table () = Domain.DLS.get table_key

let () =
  Memo.register_gauge "param.intern.monomials" (fun () ->
      float_of_int (H.count (table ())))

let intern_array vs =
  H.intern (table ())
    { vs; deg = Array.fold_left (fun acc (_, e) -> acc + e) 0 vs }

let one = intern_array [||]
let var v = intern_array [| (v, 1) |]

let of_list l =
  let l = List.sort (fun (a, _) (b, _) -> String.compare a b) l in
  let rec check = function
    | [] -> ()
    | (_, e) :: _ when e <= 0 ->
        invalid_arg "Monomial.of_list: non-positive exponent"
    | (a, _) :: ((b, _) :: _ as rest) ->
        if String.equal a b then
          invalid_arg "Monomial.of_list: duplicate parameter"
        else check rest
    | [ _ ] -> ()
  in
  check l;
  intern_array (Array.of_list l)

(* Bulk constructor for producers that already hold the canonical order
   (e.g. the repetition-vector fast path, which emits thousands of wide
   monomials): skips the sort, validates the invariant in one pass.  The
   array is owned by the monomial afterwards — callers must not mutate
   it. *)
let of_sorted_array vs =
  Array.iteri
    (fun i (v, e) ->
      if e <= 0 then
        invalid_arg "Monomial.of_sorted_array: non-positive exponent";
      if i > 0 && String.compare (fst vs.(i - 1)) v >= 0 then
        invalid_arg "Monomial.of_sorted_array: not strictly sorted")
    vs;
  intern_array vs

let to_list (t : t) = Array.to_list t.node.vs
let is_one (t : t) = Array.length t.node.vs = 0
let degree (t : t) = t.node.deg

let exponent (t : t) v =
  let vs = t.node.vs in
  let n = Array.length vs in
  let rec go i =
    if i >= n then 0
    else
      let v', e = Array.unsafe_get vs i in
      if String.equal v v' then e else go (i + 1)
  in
  go 0

(* Merge two sorted exponent arrays; [f] combines exponents (0 for the
   missing side), zero results are dropped. *)
let merge f (a : t) (b : t) : t =
  let va = a.node.vs and vb = b.node.vs in
  let na = Array.length va and nb = Array.length vb in
  let out = Array.make (na + nb) ("", 0) in
  let k = ref 0 in
  let push v e =
    if e <> 0 then begin
      out.(!k) <- (v, e);
      incr k
    end
  in
  let i = ref 0 and j = ref 0 in
  while !i < na || !j < nb do
    if !i >= na then begin
      let v, e = vb.(!j) in
      push v (f 0 e);
      incr j
    end
    else if !j >= nb then begin
      let v, e = va.(!i) in
      push v (f e 0);
      incr i
    end
    else begin
      let v1, e1 = va.(!i) and v2, e2 = vb.(!j) in
      let c = String.compare v1 v2 in
      if c < 0 then begin
        push v1 (f e1 0);
        incr i
      end
      else if c > 0 then begin
        push v2 (f 0 e2);
        incr j
      end
      else begin
        push v1 (f e1 e2);
        incr i;
        incr j
      end
    end
  done;
  intern_array (Array.sub out 0 !k)

let mul a b = merge ( + ) a b

let divides (a : t) (b : t) =
  Array.for_all (fun (v, e) -> exponent b v >= e) a.node.vs

let div b a =
  if not (divides a b) then invalid_arg "Monomial.div: not divisible";
  merge ( - ) b a

let gcd (a : t) (b : t) =
  let l =
    Array.to_list a.node.vs
    |> List.filter_map (fun (v, e) ->
           let e' = min e (exponent b v) in
           if e' > 0 then Some (v, e') else None)
  in
  intern_array (Array.of_list l)

let lcm a b = merge max a b

let pow (t : t) n =
  if n < 0 then invalid_arg "Monomial.pow: negative exponent";
  if n = 0 then one
  else intern_array (Array.map (fun (v, e) -> (v, e * n)) t.node.vs)

let compare (a : t) (b : t) =
  if a == b then 0
  else
    let c = Int.compare a.node.deg b.node.deg in
    if c <> 0 then c
    else
      (* Lexicographic on the sorted variable/exponent sequence: a variable
         earlier in the alphabet with a higher exponent compares greater. *)
      let va = a.node.vs and vb = b.node.vs in
      let na = Array.length va and nb = Array.length vb in
      let rec lex i =
        if i >= na then if i >= nb then 0 else -1
        else if i >= nb then 1
        else
          let v1, e1 = Array.unsafe_get va i
          and v2, e2 = Array.unsafe_get vb i in
          let c = String.compare v2 v1 in
          if c <> 0 then c
          else
            let c = Int.compare e1 e2 in
            if c <> 0 then c else lex (i + 1)
      in
      lex 0

let equal (a : t) (b : t) =
  a == b
  || (a.hkey = b.hkey
     &&
     let n = Array.length a.node.vs in
     n = Array.length b.node.vs
     &&
     let rec go i =
       i >= n
       ||
       let va, ea = a.node.vs.(i) and vb, eb = b.node.vs.(i) in
       ea = eb && String.equal va vb && go (i + 1)
     in
     go 0)

let hash (t : t) = t.hkey
let id (t : t) = t.tag
let vars (t : t) = Array.to_list (Array.map fst t.node.vs)

let eval env (t : t) =
  Array.fold_left
    (fun acc (v, e) -> Intmath.mul_exn acc (Intmath.pow (env v) e))
    1 t.node.vs

let pp ppf (t : t) =
  match Array.to_list t.node.vs with
  | [] -> Format.pp_print_string ppf "1"
  | l ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "*")
        (fun ppf (v, e) ->
          if e = 1 then Format.pp_print_string ppf v
          else Format.fprintf ppf "%s^%d" v e)
        ppf l
