(** Memoization support for the symbolic kernel.

    Tables are per-domain ([Domain.DLS]), so worker domains spawned by
    [tpdf_par] never contend on them, and size-capped (the table is dropped
    wholesale when it reaches its cap, bounding memory).  Every memoized
    operation is value-deterministic, so hits, misses, cap evictions and the
    [TPDF_PARAM_MEMO=0] kill-switch can never change a result — only how
    fast it is produced.  CI pins this by running the analysis test suites
    once with the switch off. *)

val enabled : unit -> bool
(** Initialized from [TPDF_PARAM_MEMO] ([0]/[false]/[no]/[off] disable;
    default on).  Interning is unaffected — only memo tables are skipped. *)

val set_enabled : bool -> unit
(** Override the environment setting (used by tests and benches). *)

type ('k, 'v) t
(** A named, capped, per-domain memo table. *)

val create : name:string -> ?cap:int -> unit -> ('k, 'v) t
(** Create a table and register its size gauge as
    [param.memo.<name>.size].  Call at module-initialization time only.
    [cap] defaults to 2^20 entries. *)

val find : ('k, 'v) t -> 'k -> ('k -> 'v) -> 'v
(** [find t k compute] returns the cached value for [k], computing and
    caching it on a miss.  When memoization is disabled, simply runs
    [compute k].  If [compute] raises, nothing is cached. *)

val register_gauge : string -> (unit -> float) -> unit
(** Register an extra gauge (used by the intern tables).  The thunk is
    evaluated in the calling domain. *)

val hits : unit -> int
(** Total memo hits across all tables, current domain. *)

val misses : unit -> int
(** Total memo misses across all tables, current domain. *)

val gauges : unit -> (string * float) list
(** All kernel gauges for the calling domain: [param.memo.hits],
    [param.memo.misses], per-table sizes, and intern-table statistics.
    Wired into the analysis spans by [tpdf_core]. *)
