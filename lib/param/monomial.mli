(** Power products of integer parameters, e.g. [p], [beta*N], [p^2*q].

    A monomial maps parameter names to strictly positive exponents.  The
    empty monomial is the constant [1].  Monomials are ordered by graded
    lexicographic order, the order used by the polynomial layer for division
    and canonical printing. *)

type t

val one : t
(** The empty power product (constant 1). *)

val var : string -> t
(** [var "p"] is the monomial [p]. *)

val of_list : (string * int) list -> t
(** Build from (parameter, exponent) pairs; exponents must be positive and
    parameters distinct.  @raise Invalid_argument otherwise. *)

val of_sorted_array : (string * int) array -> t
(** Bulk constructor for callers that already hold the pairs sorted by
    strictly increasing parameter name: validated in one linear pass
    instead of [of_list]'s sort.  The array is owned by the monomial
    afterwards and must not be mutated.  @raise Invalid_argument on
    non-positive exponents or out-of-order names. *)

val to_list : t -> (string * int) list
(** Sorted (parameter, exponent) pairs. *)

val is_one : t -> bool

val degree : t -> int
(** Total degree (sum of exponents). *)

val exponent : t -> string -> int
(** Exponent of a parameter, 0 when absent. *)

val mul : t -> t -> t

val divides : t -> t -> bool
(** [divides a b] iff [a] divides [b] componentwise. *)

val div : t -> t -> t
(** Exact quotient.  @raise Invalid_argument when [divides] is false. *)

val gcd : t -> t -> t
val lcm : t -> t -> t

val pow : t -> int -> t
(** @raise Invalid_argument on negative exponent. *)

val compare : t -> t -> int
(** Graded lexicographic order; [one] is the smallest monomial.  Physical
    equality of interned nodes short-circuits to 0. *)

val equal : t -> t -> bool

val hash : t -> int
(** Structural hash, precomputed at interning time.  Deterministic across
    runs and domains; agrees with {!equal}. *)

val id : t -> int
(** Interning tag: process-unique identity, constant for the node's
    lifetime.  Suitable as a memo key within a domain; NOT stable across
    runs — never let it influence results, only caching. *)

val vars : t -> string list
(** Parameters occurring in the monomial, sorted. *)

val eval : (string -> int) -> t -> int
(** Evaluate under a parameter assignment (overflow-checked). *)

val pp : Format.formatter -> t -> unit
(** Prints e.g. ["p^2*q"]; the constant monomial prints as ["1"]. *)
