(** Rational functions of the integer parameters.

    Solutions of the symbolic balance equations (§III-A of the paper) live in
    the field of fractions of the polynomial ring: the raw solution for the
    Fig. 2 graph is [r = \[1, p, p/2, p/2, p, p/2\]].  A value of this type is
    a quotient [num/den] of two polynomials with [den <> 0], normalized by
    exact cancellation (monomial content, numeric content, and full exact
    division when it applies).  Equality is decided by cross-multiplication
    and is therefore exact even when a common polynomial factor survived
    normalization. *)

open Tpdf_util

type t

val make : Poly.t -> Poly.t -> t
(** [make num den].  @raise Division_by_zero when [den] is zero. *)

val of_poly : Poly.t -> t
val of_int : int -> t
val of_q : Q.t -> t
val var : string -> t

val zero : t
val one : t

val num : t -> Poly.t
val den : t -> Poly.t

val is_zero : t -> bool

val to_poly : t -> Poly.t option
(** [Some p] when the denominator normalized to 1. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero when dividing by {!zero}. *)

val inv : t -> t
(** @raise Division_by_zero on {!zero}. *)

val equal : t -> t -> bool
(** Exact mathematical equality: physical equality of the interned
    canonical forms short-circuits, cross-multiplication decides the
    rest. *)

val compare : t -> t -> int
(** Total order on the canonical representation (numerator first, then
    denominator).  Consistent with {!equal} whenever normalization fully
    reduced both sides — always, unless the polynomial GCD hit its
    integer-overflow fallback and a common factor survived. *)

val hash : t -> int
(** Structural hash of the canonical form, precomputed at interning time;
    deterministic across runs and domains. *)

val subst : string -> Poly.t -> t -> t
(** Substitute a parameter by a polynomial in both numerator and
    denominator.  @raise Division_by_zero if the denominator collapses to
    zero. *)

val eval : (string -> int) -> t -> Q.t
(** Evaluate under a parameter assignment.
    @raise Division_by_zero if the denominator vanishes at that point. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
end
