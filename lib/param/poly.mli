(** Multivariate polynomials over the rationals.

    Rates in a TPDF graph are polynomial expressions in the integer
    parameters (e.g. [2*beta*N], [beta*(N+L)]).  Balance-equation solving
    manipulates them exactly.  Polynomials are kept in canonical form (terms
    sorted by decreasing monomial order, no zero coefficients), so
    {!equal} is structural. *)

open Tpdf_util

type t

val zero : t
val one : t
val const : Q.t -> t
val of_int : int -> t
val var : string -> t
val monomial : Q.t -> Monomial.t -> t

val is_zero : t -> bool
val is_const : t -> bool

val to_const : t -> Q.t option
(** [Some c] when the polynomial is the constant [c]. *)

val terms : t -> (Monomial.t * Q.t) list
(** Terms in decreasing monomial order. *)

val leading : t -> Monomial.t * Q.t
(** Leading term.  @raise Invalid_argument on {!zero}. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t
val mul : t -> t -> t
val scale : Q.t -> t -> t
val pow : t -> int -> t

val gcd : t -> t -> t
(** Exact multivariate {e primitive} GCD (primitive-PRS Euclid over a
    recursive univariate view): the result has coprime integer
    coefficients and a positive leading one, so the GCD of two nonzero
    constants is 1 and [gcd p zero] is [p] made primitive.  Combine with
    {!content} for a ℤ\[params\]-style GCD that keeps numeric factors
    (see [Tpdf_core.Symbolic]).  Exact whenever native-int coefficient
    arithmetic suffices (always, for the polynomial sizes of dataflow
    rates); on overflow it falls back to the common monomial divisor,
    which is still a valid common divisor. *)

val divide : t -> t -> t option
(** [divide a b] is [Some q] when [a = q*b] exactly, [None] otherwise.
    @raise Division_by_zero when [b] is {!zero}. *)

val lcm : t -> t -> t
(** A least common multiple up to content: [a * (b / gcd a b)].  Exact
    whenever {!gcd} is; if the gcd fell back to the monomial divisor the
    result is still a common multiple, just not least.  Zero if either
    argument is zero. *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Term-wise total order, consistent with {!equal}: terms are compared
    pairwise by monomial order then coefficient value, then by term count.
    Physical equality of interned nodes short-circuits to 0. *)

val hash : t -> int
(** Structural hash, precomputed at interning time.  Deterministic across
    runs and domains; agrees with {!equal}. *)

val id : t -> int
(** Interning tag: process-unique identity, constant for the node's
    lifetime.  Suitable as a memo key within a domain; NOT stable across
    runs — never let it influence results, only caching. *)

val degree : t -> int
(** Total degree; [-1] for {!zero} by convention. *)

val vars : t -> string list
(** Parameters occurring in the polynomial, sorted, without duplicates. *)

val content : t -> Q.t
(** Rational content: the positive rational [c] such that [t/c] has coprime
    integer coefficients.  {!Q.zero} for the zero polynomial. *)

val monomial_gcd : t -> Monomial.t
(** GCD of all monomials of the polynomial ({!Monomial.one} for {!zero}). *)

val is_monomial : t -> bool
(** True when the polynomial has at most one term. *)

val subst : string -> t -> t -> t
(** [subst x q p] replaces every occurrence of parameter [x] in [p] by the
    polynomial [q] (partial evaluation keeps the rest symbolic). *)

val eval : (string -> int) -> t -> Q.t
(** Evaluate under a parameter assignment. *)

val eval_int : (string -> int) -> t -> int
(** Evaluate and require an integer result.
    @raise Invalid_argument if the value is fractional. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
