open Tpdf_util

(* Canonical quotient of interned polynomials.  Normalization happens in
   [make] (memoized on the interned ids of the raw inputs), and the
   resulting descriptor is itself interned, so equal canonical fractions
   built in the same domain are physically equal. *)
type desc = { num : Poly.t; den : Poly.t }

module H = Hashcons.Make (struct
  type t = desc

  let equal a b = Poly.equal a.num b.num && Poly.equal a.den b.den
  let hash a = (Poly.hash a.num * 31) + Poly.hash a.den
end)

type t = desc Hashcons.hash_consed

let table_key = Domain.DLS.new_key (fun () -> H.create 256)
let table () = Domain.DLS.get table_key

let () =
  Memo.register_gauge "param.intern.fracs" (fun () ->
      float_of_int (H.count (table ())))

let intern num den = H.intern (table ()) { num; den }

let make_tbl : (int * int, t) Memo.t = Memo.create ~name:"frac_make" ()

(* Normalization: cancel exactly.
   1. zero numerator short-circuits;
   2. full exact division one way or the other;
   3. common monomial factor;
   4. full polynomial GCD (memoized in the Poly layer) — skipped when both
      sides are single terms, where step 3 already cancelled everything;
   5. scale so the denominator has coprime integer coefficients and a
      positive leading coefficient. *)
let make_raw num den =
  let num, den =
    match Poly.divide num den with
    | Some q -> (q, Poly.one)
    | None -> (
        match Poly.divide den num with
        | Some q ->
            (* num/den = 1/q *)
            (Poly.one, q)
        | None -> (num, den))
  in
  let num, den =
    let mg = Monomial.gcd (Poly.monomial_gcd num) (Poly.monomial_gcd den) in
    if Monomial.is_one mg then (num, den)
    else
      let strip p =
        match Poly.divide p (Poly.monomial Q.one mg) with
        | Some q -> q
        | None -> assert false
      in
      (strip num, strip den)
  in
  let num, den =
    if Poly.equal den Poly.one || (Poly.is_monomial num && Poly.is_monomial den)
    then (num, den)
    else
      let g = Poly.gcd num den in
      if Poly.is_const g then (num, den)
      else
        match (Poly.divide num g, Poly.divide den g) with
        | Some qn, Some qd -> (qn, qd)
        | _ ->
            (* The overflow fallback of [Poly.gcd] can return a divisor of
               only the monomial parts; cancellation already happened in
               step 3 then. *)
            (num, den)
  in
  let c = Poly.content den in
  let c = if Q.sign (snd (Poly.leading den)) < 0 then Q.neg c else c in
  let inv_c = Q.inv c in
  intern (Poly.scale inv_c num) (Poly.scale inv_c den)

let make num den =
  if Poly.is_zero den then raise Division_by_zero;
  if Poly.is_zero num then intern Poly.zero Poly.one
  else
    Memo.find make_tbl (Poly.id num, Poly.id den) (fun _ -> make_raw num den)

let of_poly p = make p Poly.one
let of_int n = of_poly (Poly.of_int n)
let of_q q = of_poly (Poly.const q)
let var v = of_poly (Poly.var v)
let zero = of_int 0
let one = of_int 1
let num (t : t) = t.node.num
let den (t : t) = t.node.den
let is_zero (t : t) = Poly.is_zero t.node.num

let to_poly (t : t) =
  if Poly.equal t.node.den Poly.one then Some t.node.num else None

let add (a : t) (b : t) =
  let a = a.node and b = b.node in
  make
    (Poly.add (Poly.mul a.num b.den) (Poly.mul b.num a.den))
    (Poly.mul a.den b.den)

(* Negating the numerator preserves every canonicity invariant (the
   denominator's sign and content are untouched), so skip [make]. *)
let neg (a : t) = intern (Poly.neg a.node.num) a.node.den
let sub a b = add a (neg b)

let mul (a : t) (b : t) =
  (* Cross-cancel before multiplying to keep degrees low. *)
  let a = a.node and b = b.node in
  let x = make a.num b.den and y = make b.num a.den in
  make (Poly.mul x.node.num y.node.num) (Poly.mul x.node.den y.node.den)

let inv (a : t) =
  if is_zero a then raise Division_by_zero;
  make a.node.den a.node.num

let div a b = mul a (inv b)

let equal (a : t) (b : t) =
  a == b
  || Poly.equal
       (Poly.mul a.node.num b.node.den)
       (Poly.mul b.node.num a.node.den)

(* Total order on the canonical representation (numerator, then
   denominator).  Coincides with {!equal} whenever normalization fully
   reduced both sides — always, unless the polynomial GCD hit its integer
   overflow fallback. *)
let compare (a : t) (b : t) =
  if a == b then 0
  else
    let c = Poly.compare a.node.num b.node.num in
    if c <> 0 then c else Poly.compare a.node.den b.node.den

let hash (t : t) = t.hkey
let subst x q (t : t) = make (Poly.subst x q t.node.num) (Poly.subst x q t.node.den)

let eval env (t : t) =
  let d = Poly.eval env t.node.den in
  if Q.is_zero d then raise Division_by_zero;
  Q.div (Poly.eval env t.node.num) d

(* A denominator needs no parentheses only when it is a bare variable power
   ([x], [x^2]): [num/x*y] would re-parse as [(num/x)*y].  Denominators are
   primitive with a positive leading coefficient, so a single-term
   denominator always has coefficient 1. *)
let den_atomic p =
  match Poly.terms p with
  | [ (m, c) ] -> Q.equal c Q.one && List.length (Monomial.to_list m) <= 1
  | _ -> false

let pp ppf (t : t) =
  let t = t.node in
  if Poly.equal t.den Poly.one then Poly.pp ppf t.num
  else
    let wrap atomic ppf p =
      if atomic p then Poly.pp ppf p else Format.fprintf ppf "(%a)" Poly.pp p
    in
    Format.fprintf ppf "%a/%a"
      (wrap Poly.is_monomial)
      t.num (wrap den_atomic) t.den

let to_string t = Format.asprintf "%a" pp t

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
end
