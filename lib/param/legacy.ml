(* Frozen pre-rewrite symbolic kernel: the assoc-list Monomial/Poly/Frac
   implementation exactly as it stood before the hash-consed rewrite.

   Kept for two purposes only:
   - bench E21 measures the rewrite's speedup against this baseline;
   - the differential qcheck suite in test/test_param.ml cross-checks that
     the rewritten kernel prints byte-identical results for every
     operation.

   Do not modify and do not use in new code. *)

open Tpdf_util

module Monomial = struct
  (* Sorted association list from parameter name to exponent; exponents are
     strictly positive, names strictly increasing. *)
  type t = (string * int) list

  let one = []
  let var v = [ (v, 1) ]

  let of_list l =
    let l = List.sort (fun (a, _) (b, _) -> String.compare a b) l in
    let rec check = function
      | [] -> ()
      | (_, e) :: _ when e <= 0 ->
          invalid_arg "Monomial.of_list: non-positive exponent"
      | (a, _) :: ((b, _) :: _ as rest) ->
          if String.equal a b then
            invalid_arg "Monomial.of_list: duplicate parameter"
          else check rest
      | [ _ ] -> ()
    in
    check l;
    l

  let to_list t = t
  let is_one t = t = []
  let degree t = List.fold_left (fun acc (_, e) -> acc + e) 0 t
  let exponent t v = match List.assoc_opt v t with Some e -> e | None -> 0

  let rec merge f a b =
    match (a, b) with
    | [], rest | rest, [] ->
        List.filter_map
          (fun (v, e) -> match f e 0 with 0 -> None | e -> Some (v, e))
          rest
    | (va, ea) :: ra, (vb, eb) :: rb -> (
        let c = String.compare va vb in
        if c < 0 then
          match f ea 0 with
          | 0 -> merge f ra b
          | e -> (va, e) :: merge f ra b
        else if c > 0 then
          match f eb 0 with
          | 0 -> merge f a rb
          | e -> (vb, e) :: merge f a rb
        else
          match f ea eb with
          | 0 -> merge f ra rb
          | e -> (va, e) :: merge f ra rb)

  let mul a b = merge ( + ) a b
  let divides a b = List.for_all (fun (v, e) -> exponent b v >= e) a

  let div b a =
    if not (divides a b) then invalid_arg "Monomial.div: not divisible";
    merge ( - ) b a

  let gcd a b =
    List.filter_map
      (fun (v, e) ->
        let e' = min e (exponent b v) in
        if e' > 0 then Some (v, e') else None)
      a

  let lcm a b = merge max a b

  let pow t n =
    if n < 0 then invalid_arg "Monomial.pow: negative exponent";
    if n = 0 then one else List.map (fun (v, e) -> (v, e * n)) t

  let compare a b =
    let c = Int.compare (degree a) (degree b) in
    if c <> 0 then c
    else
      let rec lex a b =
        match (a, b) with
        | [], [] -> 0
        | [], _ -> -1
        | _, [] -> 1
        | (va, ea) :: ra, (vb, eb) :: rb ->
            let c = String.compare vb va in
            if c <> 0 then c
            else
              let c = Int.compare ea eb in
              if c <> 0 then c else lex ra rb
      in
      lex a b

  let equal a b = compare a b = 0
  let vars t = List.map fst t

  let eval env t =
    List.fold_left
      (fun acc (v, e) -> Intmath.mul_exn acc (Intmath.pow (env v) e))
      1 t

  let pp ppf t =
    match t with
    | [] -> Format.pp_print_string ppf "1"
    | _ ->
        Format.pp_print_list
          ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "*")
          (fun ppf (v, e) ->
            if e = 1 then Format.pp_print_string ppf v
            else Format.fprintf ppf "%s^%d" v e)
          ppf t
end

module Poly = struct
  (* Terms sorted by strictly decreasing monomial order; no zero
     coefficient. *)
  type t = (Monomial.t * Q.t) list

  let zero = []
  let const c = if Q.is_zero c then [] else [ (Monomial.one, c) ]
  let one = const Q.one
  let of_int n = const (Q.of_int n)
  let monomial c m = if Q.is_zero c then [] else [ (m, c) ]
  let var v = monomial Q.one (Monomial.var v)
  let is_zero t = t = []

  let is_const t =
    match t with [] -> true | [ (m, _) ] -> Monomial.is_one m | _ -> false

  let to_const t =
    match t with
    | [] -> Some Q.zero
    | [ (m, c) ] when Monomial.is_one m -> Some c
    | _ -> None

  let terms t = t

  let leading t =
    match t with
    | [] -> invalid_arg "Poly.leading: zero polynomial"
    | hd :: _ -> hd

  let rec add a b =
    match (a, b) with
    | [], rest | rest, [] -> rest
    | (ma, ca) :: ra, (mb, cb) :: rb ->
        let cmp = Monomial.compare ma mb in
        if cmp > 0 then (ma, ca) :: add ra b
        else if cmp < 0 then (mb, cb) :: add a rb
        else
          let c = Q.add ca cb in
          if Q.is_zero c then add ra rb else (ma, c) :: add ra rb

  let neg t = List.map (fun (m, c) -> (m, Q.neg c)) t
  let sub a b = add a (neg b)

  let scale k t =
    if Q.is_zero k then [] else List.map (fun (m, c) -> (m, Q.mul k c)) t

  let mul_term (m, c) t =
    List.map (fun (m', c') -> (Monomial.mul m m', Q.mul c c')) t

  let mul a b = List.fold_left (fun acc term -> add acc (mul_term term b)) zero a

  let pow t n =
    if n < 0 then invalid_arg "Poly.pow: negative exponent";
    let rec go acc t n =
      if n = 0 then acc
      else if n land 1 = 1 then go (mul acc t) (mul t t) (n asr 1)
      else go acc (mul t t) (n asr 1)
    in
    go one t n

  let divide a b =
    if is_zero b then raise Division_by_zero;
    let mb, cb = leading b in
    let rec go quo rem =
      match rem with
      | [] -> Some (List.rev quo)
      | (mr, cr) :: _ ->
          if not (Monomial.divides mb mr) then None
          else
            let qm = Monomial.div mr mb and qc = Q.div cr cb in
            let rem = sub rem (mul_term (qm, qc) b) in
            go ((qm, qc) :: quo) rem
    in
    match go [] a with
    | None -> None
    | Some q -> Some (List.fold_left (fun acc term -> add acc [ term ]) zero q)

  let equal a b = sub a b = []
  let compare a b = Stdlib.compare (a : t) b

  let degree t =
    List.fold_left (fun acc (m, _) -> max acc (Monomial.degree m)) (-1) t

  let vars t =
    List.sort_uniq String.compare
      (List.concat_map (fun (m, _) -> Monomial.vars m) t)

  let content t = List.fold_left (fun acc (_, c) -> Q.gcd acc c) Q.zero t

  let monomial_gcd t =
    match t with
    | [] -> Monomial.one
    | (m, _) :: rest ->
        List.fold_left (fun acc (m', _) -> Monomial.gcd acc m') m rest

  let is_monomial t = match t with [] | [ _ ] -> true | _ -> false

  let normalize_sign_content t =
    match t with
    | [] -> []
    | (_, lead) :: _ ->
        let c =
          List.fold_left (fun acc (_, coeff) -> Q.gcd acc coeff) Q.zero t
        in
        let c = if Q.sign lead < 0 then Q.neg c else c in
        scale (Q.inv c) t

  let to_univar t x =
    let deg_x =
      List.fold_left (fun acc (m, _) -> max acc (Monomial.exponent m x)) 0 t
    in
    let coeffs = Array.make (deg_x + 1) zero in
    List.iter
      (fun (m, c) ->
        let e = Monomial.exponent m x in
        let rest =
          Monomial.of_list
            (List.filter (fun (v, _) -> v <> x) (Monomial.to_list m))
        in
        coeffs.(e) <- add coeffs.(e) (monomial c rest))
      t;
    coeffs

  let of_univar coeffs x =
    let acc = ref zero in
    Array.iteri
      (fun e coeff ->
        acc :=
          add !acc
            (mul coeff (monomial Q.one (Monomial.pow (Monomial.var x) e))))
      coeffs;
    !acc

  let univar_degree coeffs =
    let d = ref (-1) in
    Array.iteri (fun e c -> if not (is_zero c) then d := e) coeffs;
    !d

  let rec gcd_exn a b =
    if is_zero a then normalize_sign_content b
    else if is_zero b then normalize_sign_content a
    else
      match (to_const a, to_const b) with
      | Some _, Some _ -> one
      | _ ->
          let all_vars = List.sort_uniq String.compare (vars a @ vars b) in
          let x = List.hd all_vars in
          let ua = to_univar a x and ub = to_univar b x in
          let content_of u = Array.fold_left gcd_exn zero u in
          let ca = content_of ua and cb = content_of ub in
          let divide_exn p d =
            match divide p d with Some q -> q | None -> assert false
          in
          let primitive u c = Array.map (fun coeff -> divide_exn coeff c) u in
          let pa = primitive ua ca and pb = primitive ub cb in
          let rec euclid u v =
            let dv = univar_degree v in
            if dv < 0 then u
            else if dv = 0 then [| one |]
            else begin
              let du = univar_degree u in
              if du < dv then euclid v u
              else begin
                let r = Array.map (fun c -> c) u in
                let lv = v.(dv) in
                for k = du downto dv do
                  let lead = r.(k) in
                  if not (is_zero lead) then begin
                    for i = 0 to Array.length r - 1 do
                      r.(i) <- mul lv r.(i)
                    done;
                    for i = 0 to dv do
                      r.(i + k - dv) <- sub r.(i + k - dv) (mul lead v.(i))
                    done
                  end
                done;
                for i = dv to Array.length r - 1 do
                  r.(i) <- zero
                done;
                let rc = Array.fold_left gcd_exn zero r in
                let r =
                  if is_zero rc then r
                  else Array.map (fun c -> divide_exn c rc) r
                in
                let rn =
                  Array.fold_left (fun acc p -> Q.gcd acc (content p)) Q.zero r
                in
                let r =
                  if Q.is_zero rn || Q.equal rn Q.one then r
                  else Array.map (fun p -> scale (Q.inv rn) p) r
                in
                euclid v r
              end
            end
          in
          let prim_gcd =
            let g = euclid pa pb in
            let gc = Array.fold_left gcd_exn zero g in
            let g =
              if is_zero gc then g else Array.map (fun c -> divide_exn c gc) g
            in
            of_univar g x
          in
          normalize_sign_content (mul (gcd_exn ca cb) prim_gcd)

  let gcd a b =
    match gcd_exn a b with
    | g -> g
    | exception Intmath.Overflow ->
        if is_zero a && is_zero b then zero
        else
          let mg =
            if is_zero a then monomial_gcd b
            else if is_zero b then monomial_gcd a
            else Monomial.gcd (monomial_gcd a) (monomial_gcd b)
          in
          monomial Q.one mg

  let subst x q t =
    List.fold_left
      (fun acc (m, c) ->
        let e = Monomial.exponent m x in
        if e = 0 then add acc [ (m, c) ]
        else
          let rest =
            Monomial.of_list
              (List.filter (fun (v, _) -> v <> x) (Monomial.to_list m))
          in
          add acc (mul (monomial c rest) (pow q e)))
      zero t

  let eval env t =
    List.fold_left
      (fun acc (m, c) -> Q.add acc (Q.mul c (Q.of_int (Monomial.eval env m))))
      Q.zero t

  let eval_int env t =
    let v = eval env t in
    if not (Q.is_integer v) then invalid_arg "Poly.eval_int: fractional value";
    Q.to_int v

  let pp ppf t =
    match t with
    | [] -> Format.pp_print_string ppf "0"
    | _ ->
        List.iteri
          (fun i (m, c) ->
            let c =
              if i = 0 then (
                if Q.sign c < 0 then Format.pp_print_string ppf "-";
                Q.abs c)
              else (
                Format.pp_print_string ppf
                  (if Q.sign c < 0 then " - " else " + ");
                Q.abs c)
            in
            if Monomial.is_one m then Format.fprintf ppf "%a" Q.pp c
            else if Q.equal c Q.one then Monomial.pp ppf m
            else Format.fprintf ppf "%a*%a" Q.pp c Monomial.pp m)
          t

  let to_string t = Format.asprintf "%a" pp t
end

module Frac = struct
  type t = { num : Poly.t; den : Poly.t }

  let make num den =
    if Poly.is_zero den then raise Division_by_zero;
    if Poly.is_zero num then { num = Poly.zero; den = Poly.one }
    else
      let num, den =
        match Poly.divide num den with
        | Some q -> (q, Poly.one)
        | None -> (
            match Poly.divide den num with
            | Some q -> (Poly.one, q)
            | None -> (num, den))
      in
      let num, den =
        let mg =
          Monomial.gcd (Poly.monomial_gcd num) (Poly.monomial_gcd den)
        in
        if Monomial.is_one mg then (num, den)
        else
          let strip p =
            match Poly.divide p (Poly.monomial Q.one mg) with
            | Some q -> q
            | None -> assert false
          in
          (strip num, strip den)
      in
      let c = Poly.content den in
      let c = if Q.sign (snd (Poly.leading den)) < 0 then Q.neg c else c in
      let inv_c = Q.inv c in
      { num = Poly.scale inv_c num; den = Poly.scale inv_c den }

  let of_poly p = make p Poly.one
  let of_int n = of_poly (Poly.of_int n)
  let of_q q = of_poly (Poly.const q)
  let var v = of_poly (Poly.var v)
  let zero = of_int 0
  let one = of_int 1
  let num t = t.num
  let den t = t.den
  let is_zero t = Poly.is_zero t.num
  let to_poly t = if Poly.equal t.den Poly.one then Some t.num else None

  let add a b =
    make
      (Poly.add (Poly.mul a.num b.den) (Poly.mul b.num a.den))
      (Poly.mul a.den b.den)

  let neg a = { a with num = Poly.neg a.num }
  let sub a b = add a (neg b)

  let mul a b =
    let x = make a.num b.den and y = make b.num a.den in
    make (Poly.mul x.num y.num) (Poly.mul x.den y.den)

  let inv a =
    if is_zero a then raise Division_by_zero;
    make a.den a.num

  let div a b = mul a (inv b)
  let equal a b = Poly.equal (Poly.mul a.num b.den) (Poly.mul b.num a.den)
  let subst x q t = make (Poly.subst x q t.num) (Poly.subst x q t.den)

  let eval env t =
    let d = Poly.eval env t.den in
    if Q.is_zero d then raise Division_by_zero;
    Q.div (Poly.eval env t.num) d

  let pp ppf t =
    if Poly.equal t.den Poly.one then Poly.pp ppf t.num
    else
      let wrap ppf p =
        if Poly.is_monomial p then Poly.pp ppf p
        else Format.fprintf ppf "(%a)" Poly.pp p
      in
      Format.fprintf ppf "%a/%a" wrap t.num wrap t.den

  let to_string t = Format.asprintf "%a" pp t

  module Infix = struct
    let ( + ) = add
    let ( - ) = sub
    let ( * ) = mul
    let ( / ) = div
  end
end
