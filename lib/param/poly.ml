open Tpdf_util

(* Terms sorted by strictly decreasing monomial order; no zero coefficient.
   The canonical term array is interned in a per-domain unique table:
   structurally equal polynomials built in the same domain are physically
   equal, carry a precomputed structural hash, and their interning tag keys
   the memo tables for gcd/subst/eval and Frac normalization. *)
type desc = { ts : (Monomial.t * Q.t) array }

module H = Hashcons.Make (struct
  type t = desc

  let equal a b =
    let n = Array.length a.ts in
    n = Array.length b.ts
    &&
    let rec go i =
      i >= n
      ||
      let ma, ca = Array.unsafe_get a.ts i
      and mb, cb = Array.unsafe_get b.ts i in
      Monomial.equal ma mb && Q.equal ca cb && go (i + 1)
    in
    go 0

  let hash a =
    Array.fold_left
      (fun acc (m, c) -> ((acc * 31) + Monomial.hash m) * 31 + Q.hash c)
      19 a.ts
end)

type t = desc Hashcons.hash_consed

let table_key = Domain.DLS.new_key (fun () -> H.create 1024)
let table () = Domain.DLS.get table_key

let () =
  Memo.register_gauge "param.intern.polys" (fun () ->
      float_of_int (H.count (table ())))

let intern ts = H.intern (table ()) { ts }
let dummy_term = (Monomial.one, Q.zero)
let zero = intern [||]
let const c = if Q.is_zero c then zero else intern [| (Monomial.one, c) |]
let one = const Q.one
let of_int n = const (Q.of_int n)
let monomial c m = if Q.is_zero c then zero else intern [| (m, c) |]
let var v = monomial Q.one (Monomial.var v)
let is_zero (t : t) = Array.length t.node.ts = 0

let is_const (t : t) =
  match t.node.ts with
  | [||] -> true
  | [| (m, _) |] -> Monomial.is_one m
  | _ -> false

let to_const (t : t) =
  match t.node.ts with
  | [||] -> Some Q.zero
  | [| (m, c) |] when Monomial.is_one m -> Some c
  | _ -> None

let terms (t : t) = Array.to_list t.node.ts

let leading (t : t) =
  match t.node.ts with
  | [||] -> invalid_arg "Poly.leading: zero polynomial"
  | ts -> ts.(0)

let add (a : t) (b : t) =
  let ta = a.node.ts and tb = b.node.ts in
  let na = Array.length ta and nb = Array.length tb in
  if na = 0 then b
  else if nb = 0 then a
  else begin
    let out = Array.make (na + nb) dummy_term in
    let k = ref 0 and i = ref 0 and j = ref 0 in
    while !i < na && !j < nb do
      let ma, ca = Array.unsafe_get ta !i and mb, cb = Array.unsafe_get tb !j in
      let cmp = Monomial.compare ma mb in
      if cmp > 0 then begin
        out.(!k) <- (ma, ca);
        incr k;
        incr i
      end
      else if cmp < 0 then begin
        out.(!k) <- (mb, cb);
        incr k;
        incr j
      end
      else begin
        let c = Q.add ca cb in
        if not (Q.is_zero c) then begin
          out.(!k) <- (ma, c);
          incr k
        end;
        incr i;
        incr j
      end
    done;
    while !i < na do
      out.(!k) <- ta.(!i);
      incr k;
      incr i
    done;
    while !j < nb do
      out.(!k) <- tb.(!j);
      incr k;
      incr j
    done;
    intern (Array.sub out 0 !k)
  end

let neg (t : t) =
  if is_zero t then t
  else intern (Array.map (fun (m, c) -> (m, Q.neg c)) t.node.ts)

let sub a b = add a (neg b)

let scale k (t : t) =
  if Q.is_zero k then zero
  else intern (Array.map (fun (m, c) -> (m, Q.mul k c)) t.node.ts)

(* Multiplying every monomial by the same monomial preserves the strictly
   decreasing order (graded lex is a monomial order), and products of
   nonzero rationals are nonzero, so the mapped array is canonical. *)
let mul_term (m, c) (t : t) =
  intern (Array.map (fun (m', c') -> (Monomial.mul m m', Q.mul c c')) t.node.ts)

let mul (a : t) (b : t) =
  let na = Array.length a.node.ts and nb = Array.length b.node.ts in
  if na = 0 || nb = 0 then zero
  else if a == one then b
  else if b == one then a
  else if na = 1 then mul_term a.node.ts.(0) b
  else if nb = 1 then mul_term b.node.ts.(0) a
  else
    Array.fold_left (fun acc tm -> add acc (mul_term tm b)) zero a.node.ts

let pow t n =
  if n < 0 then invalid_arg "Poly.pow: negative exponent";
  let rec go acc t n =
    if n = 0 then acc
    else if n land 1 = 1 then go (mul acc t) (mul t t) (n asr 1)
    else go acc (mul t t) (n asr 1)
  in
  go one t n

(* Division by a single divisor with respect to the monomial order: the
   quotient exists exactly when the remainder vanishes. *)
let divide a b =
  if is_zero b then raise Division_by_zero;
  let mb, cb = leading b in
  let rec go quo rem =
    if is_zero rem then Some (List.rev quo)
    else
      let mr, cr = leading rem in
      if not (Monomial.divides mb mr) then None
      else
        let qm = Monomial.div mr mb and qc = Q.div cr cb in
        let rem = sub rem (mul_term (qm, qc) b) in
        go ((qm, qc) :: quo) rem
  in
  match go [] a with
  | None -> None
  | Some q ->
      Some (List.fold_left (fun acc (m, c) -> add acc (monomial c m)) zero q)

let equal (a : t) (b : t) =
  a == b
  || (a.hkey = b.hkey
     &&
     let n = Array.length a.node.ts in
     n = Array.length b.node.ts
     &&
     let rec go i =
       i >= n
       ||
       let ma, ca = a.node.ts.(i) and mb, cb = b.node.ts.(i) in
       Monomial.equal ma mb && Q.equal ca cb && go (i + 1)
     in
     go 0)

(* Numeric coefficient order, degrading to a structural order on the
   (always canonical) num/den pair if the cross-multiplication would
   overflow — still a total order consistent with [Q.equal] there. *)
let compare_coeff c1 c2 =
  if Q.equal c1 c2 then 0
  else
    match Q.compare c1 c2 with
    | c -> c
    | exception Intmath.Overflow ->
        let c = Int.compare c1.Q.num c2.Q.num in
        if c <> 0 then c else Int.compare c1.Q.den c2.Q.den

let compare (a : t) (b : t) =
  if a == b then 0
  else
    let ta = a.node.ts and tb = b.node.ts in
    let na = Array.length ta and nb = Array.length tb in
    let rec go i =
      if i >= na || i >= nb then Int.compare na nb
      else
        let ma, ca = ta.(i) and mb, cb = tb.(i) in
        let c = Monomial.compare ma mb in
        if c <> 0 then c
        else
          let c = compare_coeff ca cb in
          if c <> 0 then c else go (i + 1)
    in
    go 0

let hash (t : t) = t.hkey
let id (t : t) = t.tag

let degree (t : t) =
  Array.fold_left (fun acc (m, _) -> max acc (Monomial.degree m)) (-1) t.node.ts

let vars (t : t) =
  List.sort_uniq String.compare
    (List.concat_map (fun (m, _) -> Monomial.vars m) (terms t))

let content (t : t) =
  Array.fold_left (fun acc (_, c) -> Q.gcd acc c) Q.zero t.node.ts

let monomial_gcd (t : t) =
  match t.node.ts with
  | [||] -> Monomial.one
  | ts ->
      let acc = ref (fst ts.(0)) in
      for i = 1 to Array.length ts - 1 do
        acc := Monomial.gcd !acc (fst ts.(i))
      done;
      !acc

let is_monomial (t : t) = Array.length t.node.ts <= 1

(* --- exact multivariate GCD ----------------------------------------- *)

(* Normalize to coprime integer coefficients with a positive leading one. *)
let normalize_sign_content (t : t) =
  if is_zero t then t
  else
    let _, lead = leading t in
    let c = content t in
    let c = if Q.sign lead < 0 then Q.neg c else c in
    scale (Q.inv c) t

(* View [t] as a univariate polynomial in [x]: an array of coefficient
   polynomials (not containing x), index = power of x. *)
let to_univar (t : t) x =
  let deg_x =
    Array.fold_left
      (fun acc (m, _) -> max acc (Monomial.exponent m x))
      0 t.node.ts
  in
  let coeffs = Array.make (deg_x + 1) zero in
  Array.iter
    (fun (m, c) ->
      let e = Monomial.exponent m x in
      let rest =
        Monomial.of_list
          (List.filter (fun (v, _) -> v <> x) (Monomial.to_list m))
      in
      coeffs.(e) <- add coeffs.(e) (monomial c rest))
    t.node.ts;
  coeffs

let of_univar coeffs x =
  let acc = ref zero in
  Array.iteri
    (fun e coeff ->
      acc :=
        add !acc
          (mul coeff (monomial Q.one (Monomial.pow (Monomial.var x) e))))
    coeffs;
  !acc

let univar_degree coeffs =
  let d = ref (-1) in
  Array.iteri (fun e c -> if not (is_zero c) then d := e) coeffs;
  !d

let gcd_exn_tbl : (int * int, t) Memo.t = Memo.create ~name:"poly_gcd" ()

let rec gcd_exn a b =
  Memo.find gcd_exn_tbl (a.Hashcons.tag, b.Hashcons.tag) (fun _ ->
      gcd_exn_body a b)

and gcd_exn_body a b =
  if is_zero a then normalize_sign_content b
  else if is_zero b then normalize_sign_content a
  else
    match (to_const a, to_const b) with
    | Some _, Some _ -> one (* primitive gcd of nonzero constants *)
    | _ ->
        if is_monomial a && is_monomial b then
          (* Single-term inputs: the primitive-PRS recursion below reduces
             to the componentwise minimum of the exponents with numeric
             content stripped — compute that directly. *)
          monomial Q.one (Monomial.gcd (fst (leading a)) (fst (leading b)))
        else
          let all_vars = List.sort_uniq String.compare (vars a @ vars b) in
          let x = List.hd all_vars in
          let ua = to_univar a x and ub = to_univar b x in
          let content_of u = Array.fold_left gcd_exn zero u in
          let ca = content_of ua and cb = content_of ub in
          let divide_exn p d =
            match divide p d with Some q -> q | None -> assert false
          in
          let primitive u c = Array.map (fun coeff -> divide_exn coeff c) u in
          let pa = primitive ua ca and pb = primitive ub cb in
          (* primitive pseudo-remainder sequence in x *)
          let rec euclid u v =
            let dv = univar_degree v in
            if dv < 0 then u
            else if dv = 0 then [| one |]
            else begin
              (* pseudo-remainder: lc(v)^(du-dv+1) * u mod v *)
              let du = univar_degree u in
              if du < dv then euclid v u
              else begin
                let r = Array.map (fun c -> c) u in
                let lv = v.(dv) in
                for k = du downto dv do
                  let lead = r.(k) in
                  if not (is_zero lead) then begin
                    (* r := lv * r - lead * x^(k-dv) * v *)
                    for i = 0 to Array.length r - 1 do
                      r.(i) <- mul lv r.(i)
                    done;
                    for i = 0 to dv do
                      r.(i + k - dv) <- sub r.(i + k - dv) (mul lead v.(i))
                    done
                  end
                done;
                for i = dv to Array.length r - 1 do
                  r.(i) <- zero
                done;
                (* Primitive PRS: strip the polynomial content, then the
                   numeric content the primitive gcd ignores, keeping the
                   coefficients small between steps. *)
                let rc = Array.fold_left gcd_exn zero r in
                let r =
                  if is_zero rc then r
                  else Array.map (fun c -> divide_exn c rc) r
                in
                let rn =
                  Array.fold_left (fun acc p -> Q.gcd acc (content p)) Q.zero r
                in
                let r =
                  if Q.is_zero rn || Q.equal rn Q.one then r
                  else Array.map (fun p -> scale (Q.inv rn) p) r
                in
                euclid v r
              end
            end
          in
          let prim_gcd =
            let g = euclid pa pb in
            let gc = Array.fold_left gcd_exn zero g in
            let g =
              if is_zero gc then g else Array.map (fun c -> divide_exn c gc) g
            in
            of_univar g x
          in
          normalize_sign_content (mul (gcd_exn ca cb) prim_gcd)

let gcd_tbl : (int * int, t) Memo.t = Memo.create ~name:"poly_gcd_total" ()

(* Native-int coefficient growth in the remainder sequence can overflow on
   adversarial inputs; fall back to the always-valid monomial common
   divisor in that case. *)
let gcd a b =
  Memo.find gcd_tbl (a.Hashcons.tag, b.Hashcons.tag) (fun _ ->
      match gcd_exn a b with
      | g -> g
      | exception Intmath.Overflow ->
          if is_zero a && is_zero b then zero
          else
            let mg =
              if is_zero a then monomial_gcd b
              else if is_zero b then monomial_gcd a
              else Monomial.gcd (monomial_gcd a) (monomial_gcd b)
            in
            monomial Q.one mg)

let lcm a b =
  if is_zero a || is_zero b then zero
  else
    let g = gcd a b in
    match divide b g with
    | Some q -> mul a q
    | None ->
        (* Only reachable when the gcd fell back to a partial divisor that
           does not divide [b]; the plain product is still a common
           multiple. *)
        mul a b

let subst_tbl : (string * int * int, t) Memo.t =
  Memo.create ~name:"poly_subst" ()

let subst_raw x q (t : t) =
  Array.fold_left
    (fun acc (m, c) ->
      let e = Monomial.exponent m x in
      if e = 0 then add acc (monomial c m)
      else
        let rest =
          Monomial.of_list
            (List.filter (fun (v, _) -> v <> x) (Monomial.to_list m))
        in
        add acc (mul (monomial c rest) (pow q e)))
    zero t.node.ts

let subst x q (t : t) =
  Memo.find subst_tbl
    (x, q.Hashcons.tag, t.Hashcons.tag)
    (fun _ -> subst_raw x q t)

let eval_direct env (t : t) =
  Array.fold_left
    (fun acc (m, c) -> Q.add acc (Q.mul c (Q.of_int (Monomial.eval env m))))
    Q.zero t.node.ts

let eval_tbl : (int * int list, Q.t) Memo.t = Memo.create ~name:"poly_eval" ()

(* Memoize only non-trivial polynomials: for small ones, building the
   (tag, values-of-vars) key costs as much as evaluating directly. *)
let eval env (t : t) =
  if Array.length t.node.ts < 8 || not (Memo.enabled ()) then
    eval_direct env t
  else
    let key = (t.tag, List.map env (vars t)) in
    Memo.find eval_tbl key (fun _ -> eval_direct env t)

let eval_int env t =
  let v = eval env t in
  if not (Q.is_integer v) then invalid_arg "Poly.eval_int: fractional value";
  Q.to_int v

let pp ppf (t : t) =
  match t.node.ts with
  | [||] -> Format.pp_print_string ppf "0"
  | ts ->
      Array.iteri
        (fun i (m, c) ->
          let c =
            if i = 0 then (
              if Q.sign c < 0 then Format.pp_print_string ppf "-";
              Q.abs c)
            else (
              Format.pp_print_string ppf (if Q.sign c < 0 then " - " else " + ");
              Q.abs c)
          in
          if Monomial.is_one m then Format.fprintf ppf "%a" Q.pp c
          else if Q.equal c Q.one then Monomial.pp ppf m
          else Format.fprintf ppf "%a*%a" Q.pp c Monomial.pp m)
        ts

let to_string t = Format.asprintf "%a" pp t
