(** Crash-consistent checkpoint files.

    A checkpoint is a self-contained, versioned, line-oriented text
    file carrying everything a resume needs: a kind tag, free-form
    metadata, the full graph source, the valuation, and optionally an
    {!Tpdf_sim.Snapshot.t} of the running engine.  The last line is an
    FNV-1a checksum of everything before it; {!of_string} verifies it,
    so a torn or corrupted file is always rejected, never silently
    resumed from.  {!write} is crash-consistent (temp file + fsync +
    rename): a crash at any byte offset leaves either the previous file
    intact or a rejected partial. *)

type t = {
  kind : string;  (** e.g. ["run"] or ["chaos"]; a bare atom *)
  meta : (string * string) list;
      (** free-form key/value pairs (keys are bare atoms) *)
  graph_src : string;  (** full [Tpdf_core.Serial] source of the graph *)
  valuation : (string * int) list;  (** parameter bindings *)
  snapshot : Tpdf_sim.Snapshot.t option;
      (** [None] means "at an iteration boundary with a fresh engine" *)
}

val meta : t -> string -> string option
(** First binding of the key in {!field:t.meta}. *)

val to_string : t -> string
(** Serialize, appending the checksum line.
    @raise Invalid_argument when [kind], a meta key, or a parameter name
    is not a bare atom (empty, or containing spaces, quotes or
    backslashes). *)

val of_string : string -> (t, string) result
(** Parse and verify.  Any truncation, corruption, or checksum mismatch
    yields [Error] with a one-line reason. *)

val write : string -> t -> unit
(** Atomic, durable write: serialize to [path ^ ".tmp"], [fsync], then
    [rename] over [path] (and best-effort fsync the directory).
    @raise Unix.Unix_error on IO failure. *)

val read : string -> (t, string) result
(** [of_string] of the file contents; IO errors become [Error]. *)

val fnv1a64 : string -> int64
(** The checksum primitive (FNV-1a, 64-bit), exposed for tests. *)

(** A directory of numbered checkpoints ([ckpt-<seq>.tpdfckpt]).
    {!Store.latest} falls back to the newest file that still verifies,
    so a crash mid-write of checkpoint [n] resumes from [n-1]. *)
module Store : sig
  type ckpt = t
  type t

  val open_dir : string -> t
  (** Creates the directory (and parents) if missing. *)

  val dir : t -> string

  val path : t -> int -> string
  (** The file path used for sequence number [seq]. *)

  val save : t -> seq:int -> ckpt -> string
  (** Crash-consistent {!write} to {!path}; returns the path. *)

  val seqs : t -> int list
  (** Sequence numbers present (canonically named files only), sorted
      ascending.  Presence does not imply validity. *)

  val latest : t -> (int * string * ckpt) option
  (** Newest checkpoint that parses and passes its checksum, skipping
      corrupt or torn files. *)
end
