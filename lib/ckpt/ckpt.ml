(* Crash-consistent checkpoints.

   A checkpoint is a self-contained, line-oriented text file: a version
   header, a kind tag, free-form metadata, the full graph source (so a
   resume needs no other input), the valuation, an optional engine
   snapshot, and a trailing FNV-1a checksum over everything before it.
   Writes go through a temp file + fsync + rename, so a crash at any
   byte offset leaves either the previous checkpoint or a file the
   reader rejects — never a silently divergent resume.  [Store] manages
   a directory of numbered checkpoints and falls back to the newest one
   that still verifies. *)

module Snapshot = Tpdf_sim.Snapshot

let version_line = "tpdf-ckpt 1"

type t = {
  kind : string;
  meta : (string * string) list;
  graph_src : string;
  valuation : (string * int) list;
  snapshot : Snapshot.t option;
}

let meta t key = List.assoc_opt key t.meta

(* ---------- FNV-1a (64-bit) ---------- *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv1a64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

(* ---------- printing ---------- *)

(* Strings are emitted OCaml-escaped in double quotes (newlines and
   quotes stay on one line); floats in hexadecimal so every bit round
   trips; everything else as bare atoms separated by single spaces. *)

let pr_str b s =
  Buffer.add_char b '"';
  Buffer.add_string b (String.escaped s);
  Buffer.add_char b '"'

let pr_float b f = Buffer.add_string b (Printf.sprintf "%h" f)

let pr_token b = function
  | Snapshot.Data s ->
      Buffer.add_string b "tok d ";
      pr_str b s;
      Buffer.add_char b '\n'
  | Snapshot.Ctrl s ->
      Buffer.add_string b "tok c ";
      pr_str b s;
      Buffer.add_char b '\n'

let pr_firing b key (f : Snapshot.firing) =
  Buffer.add_string b key;
  Buffer.add_char b ' ';
  pr_str b f.f_actor;
  Buffer.add_string b (Printf.sprintf " %d %d " f.f_index f.f_phase);
  pr_str b f.f_mode;
  Buffer.add_char b ' ';
  pr_float b f.f_start_ms;
  Buffer.add_char b ' ';
  pr_float b f.f_finish_ms;
  Buffer.add_char b '\n'

let pr_snapshot b (s : Snapshot.t) =
  Buffer.add_string b "now ";
  pr_float b s.now;
  Buffer.add_char b '\n';
  Buffer.add_string b
    (Printf.sprintf "armed %d\nheapseq %d\n"
       (if s.armed then 1 else 0)
       s.heap_seq);
  Buffer.add_string b (Printf.sprintf "actors %d\n" (List.length s.actors));
  List.iter
    (fun (a : Snapshot.actor_state) ->
      Buffer.add_string b "actor ";
      pr_str b a.a_name;
      Buffer.add_string b
        (Printf.sprintf " %d %d %d " a.a_count a.a_completed
           (if a.a_busy then 1 else 0));
      pr_str b a.a_last_mode;
      Buffer.add_char b '\n')
    s.actors;
  Buffer.add_string b (Printf.sprintf "channels %d\n" (List.length s.channels));
  List.iter
    (fun (c : Snapshot.channel_state) ->
      Buffer.add_string b
        (Printf.sprintf "channel %d %d %d %d %d\n" c.c_id
           (List.length c.c_tokens) c.c_debt c.c_dropped c.c_max_occ);
      List.iter (pr_token b) c.c_tokens)
    s.channels;
  Buffer.add_string b (Printf.sprintf "events %d\n" (List.length s.heap));
  List.iter
    (fun (e : Snapshot.heap_entry) ->
      Buffer.add_string b "event ";
      pr_float b e.h_time;
      Buffer.add_string b (Printf.sprintf " %d " e.h_seq);
      match e.h_event with
      | Snapshot.Tick actor ->
          Buffer.add_string b "tick ";
          pr_str b actor;
          Buffer.add_char b '\n'
      | Snapshot.Complete { c_actor; c_outputs; c_record } ->
          Buffer.add_string b "complete ";
          pr_str b c_actor;
          Buffer.add_string b
            (Printf.sprintf " %d\n" (List.length c_outputs));
          List.iter
            (fun (port, toks) ->
              Buffer.add_string b
                (Printf.sprintf "out %d %d\n" port (List.length toks));
              List.iter (pr_token b) toks)
            c_outputs;
          pr_firing b "record" c_record)
    s.heap;
  Buffer.add_string b (Printf.sprintf "trace %d\n" (List.length s.trace));
  List.iter (pr_firing b "firing") s.trace

let valid_atom s =
  s <> "" && String.for_all (fun c -> c > ' ' && c <> '"' && c <> '\\') s

let to_string t =
  if not (valid_atom t.kind) then
    invalid_arg "Ckpt.to_string: kind must be a non-empty bare atom";
  let b = Buffer.create 4096 in
  Buffer.add_string b version_line;
  Buffer.add_char b '\n';
  Buffer.add_string b ("kind " ^ t.kind ^ "\n");
  List.iter
    (fun (k, v) ->
      if not (valid_atom k) then
        invalid_arg "Ckpt.to_string: meta key must be a bare atom";
      Buffer.add_string b ("meta " ^ k ^ " ");
      pr_str b v;
      Buffer.add_char b '\n')
    t.meta;
  let graph_lines = String.split_on_char '\n' t.graph_src in
  (* a trailing newline yields a final empty element; drop it so the
     reconstruction (join + "\n") is stable *)
  let graph_lines =
    match List.rev graph_lines with
    | "" :: rev -> List.rev rev
    | _ -> graph_lines
  in
  Buffer.add_string b (Printf.sprintf "graph %d\n" (List.length graph_lines));
  List.iter
    (fun ln ->
      Buffer.add_string b ln;
      Buffer.add_char b '\n')
    graph_lines;
  Buffer.add_string b
    (Printf.sprintf "valuation %d\n" (List.length t.valuation));
  List.iter
    (fun (name, v) ->
      if not (valid_atom name) then
        invalid_arg "Ckpt.to_string: parameter name must be a bare atom";
      Buffer.add_string b (Printf.sprintf "bind %s %d\n" name v))
    t.valuation;
  (match t.snapshot with
  | None -> Buffer.add_string b "snapshot 0\n"
  | Some s ->
      Buffer.add_string b "snapshot 1\n";
      pr_snapshot b s);
  Buffer.add_string b "end\n";
  let body = Buffer.contents b in
  body ^ Printf.sprintf "checksum %016Lx\n" (fnv1a64 body)

(* ---------- parsing ---------- *)

exception Parse of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse m)) fmt

(* Split a line into fields: bare atoms and double-quoted,
   OCaml-escaped strings, separated by spaces. *)
let split_fields ln =
  let n = String.length ln in
  let rec go i acc =
    if i >= n then List.rev acc
    else if ln.[i] = ' ' then go (i + 1) acc
    else if ln.[i] = '"' then begin
      let fin = ref (-1) in
      let esc = ref false in
      let j = ref (i + 1) in
      while !fin < 0 && !j < n do
        (if !esc then esc := false
         else if ln.[!j] = '\\' then esc := true
         else if ln.[!j] = '"' then fin := !j);
        incr j
      done;
      if !fin < 0 then fail "unterminated string";
      let raw = String.sub ln (i + 1) (!fin - i - 1) in
      let v =
        try Scanf.unescaped raw
        with Scanf.Scan_failure _ | Failure _ -> fail "bad string escape"
      in
      go (!fin + 1) (v :: acc)
    end
    else begin
      let j = ref i in
      while !j < n && ln.[!j] <> ' ' do
        incr j
      done;
      go !j (String.sub ln i (!j - i) :: acc)
    end
  in
  go 0 []

type cursor = { lines : string array; mutable pos : int }

let next_line cur =
  if cur.pos >= Array.length cur.lines then fail "unexpected end of file"
  else begin
    let ln = cur.lines.(cur.pos) in
    cur.pos <- cur.pos + 1;
    ln
  end

let next_fields cur = split_fields (next_line cur)

let int_of s = try int_of_string s with _ -> fail "expected integer, got %S" s

let float_of s =
  try float_of_string s with _ -> fail "expected float, got %S" s

let bool_of s =
  match s with
  | "0" -> false
  | "1" -> true
  | _ -> fail "expected 0 or 1, got %S" s

let expect_count cur key =
  match next_fields cur with
  | [ k; n ] when k = key ->
      let n = int_of n in
      if n < 0 then fail "negative %s count" key else n
  | _ -> fail "expected %S line" key

let rec times n f acc = if n = 0 then List.rev acc else times (n - 1) f (f () :: acc)

let parse_token cur =
  match next_fields cur with
  | [ "tok"; "d"; s ] -> Snapshot.Data s
  | [ "tok"; "c"; s ] -> Snapshot.Ctrl s
  | _ -> fail "expected token line"

let parse_firing key cur : Snapshot.firing =
  match next_fields cur with
  | [ k; actor; index; phase; mode; start_ms; finish_ms ] when k = key ->
      {
        f_actor = actor;
        f_index = int_of index;
        f_phase = int_of phase;
        f_mode = mode;
        f_start_ms = float_of start_ms;
        f_finish_ms = float_of finish_ms;
      }
  | _ -> fail "expected %S line" key

let parse_snapshot cur : Snapshot.t =
  let now =
    match next_fields cur with
    | [ "now"; f ] -> float_of f
    | _ -> fail "expected \"now\" line"
  in
  let armed =
    match next_fields cur with
    | [ "armed"; b ] -> bool_of b
    | _ -> fail "expected \"armed\" line"
  in
  let heap_seq =
    match next_fields cur with
    | [ "heapseq"; n ] -> int_of n
    | _ -> fail "expected \"heapseq\" line"
  in
  let n_actors = expect_count cur "actors" in
  let actors =
    times n_actors
      (fun () : Snapshot.actor_state ->
        match next_fields cur with
        | [ "actor"; name; count; completed; busy; last_mode ] ->
            {
              a_name = name;
              a_count = int_of count;
              a_completed = int_of completed;
              a_busy = bool_of busy;
              a_last_mode = last_mode;
            }
        | _ -> fail "expected \"actor\" line")
      []
  in
  let n_channels = expect_count cur "channels" in
  let channels =
    times n_channels
      (fun () : Snapshot.channel_state ->
        match next_fields cur with
        | [ "channel"; id; n_tokens; debt; dropped; max_occ ] ->
            let n_tokens = int_of n_tokens in
            if n_tokens < 0 then fail "negative token count";
            let tokens = times n_tokens (fun () -> parse_token cur) [] in
            {
              c_id = int_of id;
              c_tokens = tokens;
              c_debt = int_of debt;
              c_dropped = int_of dropped;
              c_max_occ = int_of max_occ;
            }
        | _ -> fail "expected \"channel\" line")
      []
  in
  let n_events = expect_count cur "events" in
  let heap =
    times n_events
      (fun () : Snapshot.heap_entry ->
        match next_fields cur with
        | [ "event"; time; seq; "tick"; actor ] ->
            {
              h_time = float_of time;
              h_seq = int_of seq;
              h_event = Snapshot.Tick actor;
            }
        | [ "event"; time; seq; "complete"; actor; n_out ] ->
            let n_out = int_of n_out in
            if n_out < 0 then fail "negative output count";
            let outputs =
              times n_out
                (fun () ->
                  match next_fields cur with
                  | [ "out"; port; n_toks ] ->
                      let n_toks = int_of n_toks in
                      if n_toks < 0 then fail "negative token count";
                      (int_of port, times n_toks (fun () -> parse_token cur) [])
                  | _ -> fail "expected \"out\" line")
                []
            in
            let record = parse_firing "record" cur in
            {
              h_time = float_of time;
              h_seq = int_of seq;
              h_event =
                Snapshot.Complete { c_actor = actor; c_outputs = outputs; c_record = record };
            }
        | _ -> fail "expected \"event\" line")
      []
  in
  let n_trace = expect_count cur "trace" in
  let trace = times n_trace (fun () -> parse_firing "firing" cur) [] in
  { now; armed; heap_seq; actors; channels; heap; trace }

let of_string s =
  try
    (* Locate and verify the trailing checksum first: everything up to
       and including the newline before the checksum line is the body it
       covers.  A torn write truncates the file, so either the marker is
       missing or the digest no longer matches — both rejected here. *)
    let marker = "\nchecksum " in
    let mpos =
      let rec last_from i best =
        match String.index_from_opt s i '\n' with
        | None -> best
        | Some j ->
            let best =
              if
                j + String.length marker <= String.length s
                && String.sub s j (String.length marker) = marker
              then Some j
              else best
            in
            last_from (j + 1) best
      in
      match last_from 0 None with
      | Some j -> j
      | None -> fail "missing checksum line"
    in
    let body = String.sub s 0 (mpos + 1) in
    let rest = String.sub s (mpos + 1) (String.length s - mpos - 1) in
    (* the terminating newline is part of the format: a write torn one
       byte before the end must not verify *)
    if String.length rest = 0 || rest.[String.length rest - 1] <> '\n' then
      fail "checkpoint not newline-terminated";
    let digest =
      match split_fields (String.trim rest) with
      | [ "checksum"; hex ] -> (
          if String.length hex <> 16 then fail "malformed checksum digest";
          try Int64.of_string ("0x" ^ hex)
          with _ -> fail "malformed checksum digest")
      | _ -> fail "malformed checksum line"
    in
    if
      String.exists (fun c -> c = '\n') (String.trim rest)
      || not (String.for_all (fun c -> c <> '\000') rest)
    then fail "trailing garbage after checksum";
    if fnv1a64 body <> digest then fail "checksum mismatch";
    let lines =
      match String.split_on_char '\n' body with
      | ls -> (
          match List.rev ls with
          | "" :: rev -> Array.of_list (List.rev rev)
          | _ -> Array.of_list ls)
    in
    let cur = { lines; pos = 0 } in
    (match next_line cur with
    | l when l = version_line -> ()
    | l -> fail "unsupported format/version %S" l);
    let kind =
      match next_fields cur with
      | [ "kind"; k ] -> k
      | _ -> fail "expected \"kind\" line"
    in
    let rec metas acc =
      match split_fields cur.lines.(cur.pos) with
      | "meta" :: _ -> (
          match next_fields cur with
          | [ "meta"; k; v ] -> metas ((k, v) :: acc)
          | _ -> fail "malformed \"meta\" line")
      | _ -> List.rev acc
      | exception Invalid_argument _ -> fail "unexpected end of file"
    in
    let meta = metas [] in
    let n_graph = expect_count cur "graph" in
    let graph_lines = times n_graph (fun () -> next_line cur) [] in
    let graph_src = String.concat "\n" graph_lines ^ "\n" in
    let n_bind = expect_count cur "valuation" in
    let valuation =
      times n_bind
        (fun () ->
          match next_fields cur with
          | [ "bind"; name; v ] -> (name, int_of v)
          | _ -> fail "expected \"bind\" line")
        []
    in
    let snapshot =
      match next_fields cur with
      | [ "snapshot"; "0" ] -> None
      | [ "snapshot"; "1" ] -> Some (parse_snapshot cur)
      | _ -> fail "expected \"snapshot\" line"
    in
    (match next_line cur with
    | "end" -> ()
    | _ -> fail "expected \"end\" line");
    if cur.pos <> Array.length cur.lines then fail "trailing lines before checksum";
    Ok { kind; meta; graph_src; valuation; snapshot }
  with Parse m -> Error ("checkpoint: " ^ m)

(* ---------- crash-consistent IO ---------- *)

(* The temp-file + fsync + rename protocol lives in [Tpdf_util.Atomic_file]
   (shared with the obs-layer metric exporter); a crash at any point leaves
   either the previous or the new complete checkpoint. *)
let write_string path data = Tpdf_util.Atomic_file.write path data

let write path t = write_string path (to_string t)

let read path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error m -> Error ("checkpoint: " ^ m)

(* ---------- checkpoint directories ---------- *)

module Store = struct
  type ckpt = t
  type nonrec t = { dir : string }

  let rec mkdir_p dir =
    if not (Sys.file_exists dir) then begin
      let parent = Filename.dirname dir in
      if parent <> dir then mkdir_p parent;
      try Unix.mkdir dir 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end

  let open_dir dir =
    mkdir_p dir;
    { dir }

  let dir t = t.dir
  let path t seq = Filename.concat t.dir (Printf.sprintf "ckpt-%08d.tpdfckpt" seq)

  let save t ~seq ckpt =
    let p = path t seq in
    write p ckpt;
    p

  let seqs t =
    Sys.readdir t.dir |> Array.to_list
    |> List.filter_map (fun name ->
           match Scanf.sscanf_opt name "ckpt-%8d.tpdfckpt%!" (fun n -> n) with
           | Some n when path t n = Filename.concat t.dir name -> Some n
           | _ -> None)
    |> List.sort compare

  let latest t =
    let rec pick = function
      | [] -> None
      | seq :: older -> (
          match read (path t seq) with
          | Ok c -> Some (seq, path t seq, c)
          | Error _ -> pick older)
    in
    pick (List.rev (seqs t))
end
