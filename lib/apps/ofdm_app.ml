open Tpdf_core
open Tpdf_sim
open Tpdf_param
open Tpdf_dsp
open Tpdf_util
module Csdf = Tpdf_csdf

type token =
  | Samp of Complex.t
  | Freq of Complex.t
  | Bit of int
  | Sym of int array
  | M_signal of int

type ids = {
  src_con : int;
  src_rcp : int;
  rcp_fft : int;
  fft_dup : int;
  dup_qpsk : int;
  dup_qam : int;
  qpsk_tran : int;
  qam_tran : int;
  tran_snk : int;
  con_dup : int;
  con_tran : int;
}

let r1 = Csdf.Graph.const_rates [ 1 ]
let rs s = Csdf.Graph.rates [ s ]

let chain_actors g =
  Graph.add_kernel g "SRC";
  Graph.add_kernel g "RCP";
  Graph.add_kernel g "FFT";
  Graph.add_kernel g ~kind:Graph.Select_duplicate "DUP";
  Graph.add_kernel g "QPSK";
  Graph.add_kernel g "QAM";
  Graph.add_kernel g ~kind:Graph.Transaction "TRAN";
  Graph.add_kernel g "SNK"

let chain_channels g =
  let src_rcp =
    Graph.add_channel g ~src:"SRC" ~dst:"RCP" ~prod:(rs "beta*(N+L)")
      ~cons:(rs "beta*(N+L)") ()
  in
  let rcp_fft =
    Graph.add_channel g ~src:"RCP" ~dst:"FFT" ~prod:(rs "beta*N")
      ~cons:(rs "beta*N") ()
  in
  let fft_dup =
    Graph.add_channel g ~src:"FFT" ~dst:"DUP" ~prod:(rs "beta*N")
      ~cons:(rs "beta*N") ()
  in
  let dup_qpsk =
    Graph.add_channel g ~src:"DUP" ~dst:"QPSK" ~prod:(rs "beta*N")
      ~cons:(rs "beta*N") ()
  in
  let dup_qam =
    Graph.add_channel g ~src:"DUP" ~dst:"QAM" ~prod:(rs "beta*N")
      ~cons:(rs "beta*N") ()
  in
  let qpsk_tran =
    Graph.add_channel g ~src:"QPSK" ~dst:"TRAN" ~prod:(rs "2*beta*N")
      ~cons:(rs "2*beta*N") ()
  in
  let qam_tran =
    Graph.add_channel g ~src:"QAM" ~dst:"TRAN" ~prod:(rs "4*beta*N")
      ~cons:(rs "4*beta*N") ()
  in
  (src_rcp, rcp_fft, fft_dup, dup_qpsk, dup_qam, qpsk_tran, qam_tran)

let tpdf_graph () =
  let g = Graph.create () in
  chain_actors g;
  Graph.add_control g "CON";
  let src_con = Graph.add_channel g ~src:"SRC" ~dst:"CON" ~prod:r1 ~cons:r1 () in
  let src_rcp, rcp_fft, fft_dup, dup_qpsk, dup_qam, qpsk_tran, qam_tran =
    chain_channels g
  in
  let tran_snk =
    Graph.add_channel g ~src:"TRAN" ~dst:"SNK" ~prod:(rs "beta*N")
      ~cons:(rs "beta*N") ()
  in
  let con_dup =
    Graph.add_control_channel g ~src:"CON" ~dst:"DUP" ~prod:r1 ~cons:r1 ()
  in
  let con_tran =
    Graph.add_control_channel g ~src:"CON" ~dst:"TRAN" ~prod:r1 ~cons:r1 ()
  in
  Graph.set_modes g "DUP"
    [
      Mode.make ~outputs:(Mode.Output_subset [ dup_qpsk ]) "qpsk";
      Mode.make ~outputs:(Mode.Output_subset [ dup_qam ]) "qam";
    ];
  Graph.set_modes g "TRAN"
    [
      Mode.make ~inputs:(Mode.Input_subset [ qpsk_tran ]) "qpsk";
      Mode.make ~inputs:(Mode.Input_subset [ qam_tran ]) "qam";
    ];
  ( g,
    {
      src_con;
      src_rcp;
      rcp_fft;
      fft_dup;
      dup_qpsk;
      dup_qam;
      qpsk_tran;
      qam_tran;
      tran_snk;
      con_dup;
      con_tran;
    } )

let csdf_graph () =
  let g = Graph.create () in
  chain_actors g;
  let src_rcp, rcp_fft, fft_dup, dup_qpsk, dup_qam, qpsk_tran, qam_tran =
    chain_channels g
  in
  (* No control: the selection stage must carry both demapped streams. *)
  let tran_snk =
    Graph.add_channel g ~src:"TRAN" ~dst:"SNK" ~prod:(rs "6*beta*N")
      ~cons:(rs "6*beta*N") ()
  in
  ( g,
    {
      src_con = -1;
      src_rcp;
      rcp_fft;
      fft_dup;
      dup_qpsk;
      dup_qam;
      qpsk_tran;
      qam_tran;
      tran_snk;
      con_dup = -1;
      con_tran = -1;
    } )

let valuation ~beta ~n ~l =
  Valuation.of_list [ ("beta", beta); ("N", n); ("L", l) ]

let scenario_qpsk = [ ("DUP", "qpsk"); ("TRAN", "qpsk") ]
let scenario_qam = [ ("DUP", "qam"); ("TRAN", "qam") ]

let tpdf_buffers ~beta ~n ~l =
  let g, _ = tpdf_graph () in
  Buffers.worst_case g (valuation ~beta ~n ~l)
    ~scenarios:[ scenario_qpsk; scenario_qam ]

let csdf_buffers ~beta ~n ~l =
  let g, _ = csdf_graph () in
  Buffers.csdf_equivalent g (valuation ~beta ~n ~l)

let tpdf_buffer_formula ~beta ~n ~l = 3 + (beta * ((12 * n) + l))

let csdf_buffer_formula ~beta ~n ~l = beta * ((17 * n) + l)

(* Per-firing cost model, microseconds scaled to ms: linear in the block
   size βN handled by the actor.  The 16-QAM demapper is twice as expensive
   as QPSK, which is what makes the deadline-driven fallback to QPSK a
   meaningful degradation. *)
let model_cost_ms ~beta ~n actor =
  let bn = float_of_int (beta * n) /. 1000.0 in
  match actor with
  | "SRC" | "SNK" -> 0.05 *. bn
  | "RCP" -> 0.1 *. bn
  | "FFT" -> 0.6 *. bn
  | "DUP" -> 0.05 *. bn
  | "QPSK" -> 0.4 *. bn
  | "QAM" -> 0.8 *. bn
  | "TRAN" -> 0.1 *. bn
  | "CON" -> 0.01
  | _ -> 0.1

(* ------------------------------------------------------------------ *)
(* Functional link simulation                                          *)
(* ------------------------------------------------------------------ *)

type link_report = {
  sent_bits : int;
  ber : float;
  firings : (string * int) list;
  max_occupancy_total : int;
}

let chunk arr size =
  let n = Array.length arr in
  assert (n mod size = 0);
  List.init (n / size) (fun i -> Array.sub arr (i * size) size)

let data_tokens mk arr = List.map (fun v -> Token.Data (mk v)) (Array.to_list arr)

let run_link ?(seed = 1234) ?(snr_db = None) ~beta ~n ~l ~m ~iterations () =
  let scheme = Modulation.scheme_of_m m in
  let k = Modulation.bits_per_symbol scheme in
  let cfg = Ofdm.config ~n ~l in
  let rng = Prng.create seed in
  let total_syms = iterations * beta in
  let bits = Array.init (total_syms * n * k) (fun _ -> Prng.int rng 2) in
  let stream, sent = Ofdm.transmit_bits cfg scheme bits in
  let stream =
    match snr_db with
    | None -> stream
    | Some snr -> Channel.awgn (Prng.create (seed + 1)) ~snr_db:snr stream
  in
  let g, ids = tpdf_graph () in
  let sps = n + l in
  let per_firing = beta * sps in
  let received = ref [] in
  let input_data ctx =
    Array.of_list
      (List.concat_map
         (fun (_, toks) -> List.map Token.data toks)
         ctx.Behavior.inputs)
  in
  let behaviors =
    [
      ( "SRC",
        Behavior.make (fun ctx ->
            let i = ctx.Behavior.index in
            let slice = Array.sub stream (i * per_firing) per_firing in
            List.map
              (fun (ch, rate) ->
                if ch = ids.src_con then
                  (ch, List.init rate (fun _ -> Token.Data (M_signal m)))
                else begin
                  assert (rate = per_firing);
                  (ch, data_tokens (fun c -> Samp c) slice)
                end)
              ctx.Behavior.out_rates) );
      ( "CON",
        Behavior.emit_mode (fun ctx ->
            match input_data ctx with
            | [| M_signal 2 |] -> "qpsk"
            | [| M_signal 4 |] -> "qam"
            | _ -> failwith "CON expects one M_signal token") );
      ( "RCP",
        Behavior.make (fun ctx ->
            let samples =
              Array.map (function Samp c -> c | _ -> failwith "RCP: bad token")
                (input_data ctx)
            in
            let out =
              Array.concat
                (List.map (Ofdm.remove_cyclic_prefix cfg) (chunk samples sps))
            in
            List.map
              (fun (ch, rate) ->
                assert (rate = Array.length out);
                (ch, data_tokens (fun c -> Samp c) out))
              ctx.Behavior.out_rates) );
      ( "FFT",
        Behavior.make (fun ctx ->
            let samples =
              Array.map (function Samp c -> c | _ -> failwith "FFT: bad token")
                (input_data ctx)
            in
            let out = Array.concat (List.map Fft.fft (chunk samples n)) in
            List.map
              (fun (ch, rate) ->
                assert (rate = Array.length out);
                (ch, data_tokens (fun c -> Freq c) out))
              ctx.Behavior.out_rates) );
      ( "DUP",
        Behavior.make (fun ctx ->
            let toks =
              List.concat_map (fun (_, l) -> l) ctx.Behavior.inputs
            in
            List.filter_map
              (fun (ch, rate) ->
                if rate = 0 then None
                else begin
                  assert (rate = List.length toks);
                  Some (ch, toks)
                end)
              ctx.Behavior.out_rates) );
      ( "QPSK",
        Behavior.make (fun ctx ->
            let freq =
              Array.map (function Freq c -> c | _ -> failwith "QPSK: bad token")
                (input_data ctx)
            in
            let out = Modulation.demodulate Modulation.Qpsk freq in
            List.map
              (fun (ch, rate) ->
                assert (rate = Array.length out);
                (ch, data_tokens (fun b -> Bit b) out))
              ctx.Behavior.out_rates) );
      ( "QAM",
        Behavior.make (fun ctx ->
            let freq =
              Array.map (function Freq c -> c | _ -> failwith "QAM: bad token")
                (input_data ctx)
            in
            let out = Modulation.demodulate Modulation.Qam16 freq in
            List.map
              (fun (ch, rate) ->
                assert (rate = Array.length out);
                (ch, data_tokens (fun b -> Bit b) out))
              ctx.Behavior.out_rates) );
      ( "TRAN",
        Behavior.make (fun ctx ->
            let bits =
              Array.map (function Bit b -> b | _ -> failwith "TRAN: bad token")
                (input_data ctx)
            in
            let groups = chunk bits k in
            List.map
              (fun (ch, rate) ->
                assert (rate = List.length groups);
                (ch, List.map (fun grp -> Token.Data (Sym grp)) groups))
              ctx.Behavior.out_rates) );
      ( "SNK",
        Behavior.sink (fun ctx ->
            List.iter
              (fun (_, toks) ->
                List.iter
                  (fun t ->
                    match Token.data t with
                    | Sym grp -> received := grp :: !received
                    | _ -> failwith "SNK: bad token")
                  toks)
              ctx.Behavior.inputs) );
    ]
  in
  let eng =
    Engine.create ~graph:g ~valuation:(valuation ~beta ~n ~l) ~behaviors
      ~default:(Bit 0) ()
  in
  let targets = [ ((if m = 2 then "QAM" else "QPSK"), 0) ] in
  let stats = Engine.run ~iterations ~targets eng in
  let recovered = Array.concat (List.rev !received) in
  let ber = Modulation.bit_error_rate ~sent ~received:recovered in
  {
    sent_bits = Array.length sent;
    ber;
    firings = stats.Engine.firings;
    max_occupancy_total =
      List.fold_left (fun acc (_, occ) -> acc + occ) 0 stats.Engine.max_occupancy;
  }
