(** The runtime-reconfigurable OFDM demodulator of §IV-B (Fig. 7, Fig. 8).

    The TPDF graph is SRC → RCP → FFT → DUP → {QPSK | QAM} → TRAN → SNK
    with a control actor CON: when SRC fires it also sends CON a data token
    carrying the current value of M; CON steers the Select-duplicate DUP
    and the Transaction TRAN so that only the selected demapper's branch is
    computed.  Parameters (symbolic in the graph): β — vectorization degree
    (OFDM symbols per activation, 1…100), N — symbol length (512 or 1024),
    L — cyclic-prefix length, M — bits per symbol (2 = QPSK, 4 = 16-QAM,
    resolved by the control actor at run time, not a rate parameter).

    The CSDF baseline cannot reconfigure: both demappers always run and the
    selection stage must accept both streams (2βN + 4βN tokens), which is
    precisely where the extra β·5N buffer space of Fig. 8 comes from:
    TPDF needs 3 + β(12N+L) buffer slots, CSDF β(17N+L) — a ≈29%
    saving. *)

open Tpdf_param

type token =
  | Samp of Complex.t  (** one time-domain sample *)
  | Freq of Complex.t  (** one frequency-domain value *)
  | Bit of int
  | Sym of int array  (** the demapped bits of one subcarrier *)
  | M_signal of int  (** SRC → CON: the requested modulation order *)

type ids = {
  src_con : int;
  src_rcp : int;
  rcp_fft : int;
  fft_dup : int;
  dup_qpsk : int;
  dup_qam : int;
  qpsk_tran : int;
  qam_tran : int;
  tran_snk : int;
  con_dup : int;  (** control *)
  con_tran : int;  (** control *)
}

val tpdf_graph : unit -> Tpdf_core.Graph.t * ids
(** Symbolic rates over parameters ["beta"], ["N"], ["L"]. *)

val csdf_graph : unit -> Tpdf_core.Graph.t * ids
(** Static baseline: same chain, no control actor or channels ([src_con],
    [con_dup], [con_tran] are [-1]), TRAN consumes {e both} demapped
    streams and forwards 6βN tokens to SNK. *)

val valuation : beta:int -> n:int -> l:int -> Valuation.t

val scenario_qpsk : Tpdf_core.Buffers.scenario
val scenario_qam : Tpdf_core.Buffers.scenario

val tpdf_buffers : beta:int -> n:int -> l:int -> Tpdf_csdf.Buffers.report
(** Worst-case provisioning over the QPSK and QAM scenarios (Fig. 8's TPDF
    series). *)

val csdf_buffers : beta:int -> n:int -> l:int -> Tpdf_csdf.Buffers.report

val tpdf_buffer_formula : beta:int -> n:int -> l:int -> int
(** The paper's closed form 3 + β(12N+L). *)

val csdf_buffer_formula : beta:int -> n:int -> l:int -> int
(** The paper's closed form β(17N+L). *)

val model_cost_ms : beta:int -> n:int -> string -> float
(** Per-firing cost model of the demodulator's actors (linear in βN; the
    16-QAM demapper twice the cost of QPSK), shared by the scheduling
    benchmarks and the chaos harness. *)

type link_report = {
  sent_bits : int;
  ber : float;
  firings : (string * int) list;
  max_occupancy_total : int;
}

val run_link :
  ?seed:int ->
  ?snr_db:float option ->
  beta:int ->
  n:int ->
  l:int ->
  m:int ->
  iterations:int ->
  unit ->
  link_report
(** End-to-end functional simulation of the TPDF graph: a matching OFDM
    transmitter generates the sample stream (plus optional AWGN), the graph
    demodulates it, and the recovered bits are compared with the
    transmitted ones.  Noiseless runs must achieve BER = 0.
    @raise Invalid_argument on m ∉ {2,4}. *)
