(* OpenMetrics / Prometheus text exposition over a [Metrics] registry.

   The registry's dotted names are mechanically mapped to metric
   families with labels: the per-subject suffix of a known prefix
   becomes a label value ("engine.firings.FFT" ->
   tpdf_engine_firings_total{actor="FFT"}), so a scraper sees one
   family per subsystem rather than one per actor.  Unknown names fall
   back to a sanitized family of their own.  Counters render as
   counters ("_total" sample suffix), gauges as gauges, histograms as
   summaries (quantile series + _sum/_count).  Output is sorted, so a
   given registry state renders to one canonical string. *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let escape_label s =
  let buf = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* (family, labels) for a registry name.  Injective: distinct registry
   names always map to distinct series. *)
let family_of name =
  let strip p = if String.starts_with ~prefix:p name then
      Some (String.sub name (String.length p) (String.length name - String.length p))
    else None
  in
  let try_actor p fam =
    match strip p with
    | Some rest when rest <> "" -> Some (fam, [ ("actor", rest) ])
    | _ -> None
  in
  let try_channel () =
    (* channel.e<N>.occupancy / channel.e<N>.dropped *)
    match strip "channel." with
    | Some rest -> (
        match String.index_opt rest '.' with
        | Some i ->
            let ch = String.sub rest 0 i in
            let what = String.sub rest (i + 1) (String.length rest - i - 1) in
            if ch <> "" && (what = "occupancy" || what = "dropped") then
              Some ("tpdf_channel_" ^ what, [ ("channel", ch) ])
            else None
        | None -> None)
    | None -> None
  in
  let try_domain () =
    (* domain.<N>.<what> *)
    match strip "domain." with
    | Some rest -> (
        match String.index_opt rest '.' with
        | Some i ->
            let d = String.sub rest 0 i in
            let what = String.sub rest (i + 1) (String.length rest - i - 1) in
            if d <> "" && what <> "" && not (String.contains what '.') then
              Some ("tpdf_domain_" ^ sanitize what, [ ("domain", d) ])
            else None
        | None -> None)
    | None -> None
  in
  let try_supervisor () =
    (* supervisor.<what>.<actor> with a dot-free <what> *)
    match strip "supervisor." with
    | Some rest -> (
        match String.index_opt rest '.' with
        | Some i ->
            let what = String.sub rest 0 i in
            let actor = String.sub rest (i + 1) (String.length rest - i - 1) in
            if what <> "" && actor <> "" then
              Some ("tpdf_supervisor_" ^ sanitize what, [ ("actor", actor) ])
            else None
        | None -> None)
    | None -> None
  in
  let try_backend () =
    (* engine.backend.<name>: which execution backend ran (0/1 gauges) *)
    match strip "engine.backend." with
    | Some rest when rest <> "" && not (String.contains rest '.') ->
        Some ("tpdf_engine_backend", [ ("backend", rest) ])
    | _ -> None
  in
  let try_serve () =
    (* serve.tenant.<what>.<name> with a dot-free <what>; tenant names
       are dot-free by the serve daemon's naming rule *)
    match strip "serve.tenant." with
    | Some rest -> (
        match String.index_opt rest '.' with
        | Some i ->
            let what = String.sub rest 0 i in
            let tenant = String.sub rest (i + 1) (String.length rest - i - 1) in
            if what <> "" && tenant <> "" then
              Some ("tpdf_serve_tenant_" ^ sanitize what, [ ("tenant", tenant) ])
            else None
        | None -> None)
    | None -> None
  in
  let ( <|> ) a b = match a with Some _ -> a | None -> b () in
  let mapped =
    try_actor "engine.firings." "tpdf_engine_firings"
    <|> fun () ->
    try_actor "engine.firing_ms." "tpdf_engine_firing_ms"
    <|> fun () ->
    try_actor "engine.busy_ms." "tpdf_engine_busy_ms"
    <|> fun () ->
    try_actor "engine.ctrl_reads." "tpdf_engine_ctrl_reads"
    <|> fun () ->
    try_actor "engine.ticks." "tpdf_engine_ticks"
    <|> fun () ->
    try_backend ()
    <|> fun () -> try_channel () <|> fun () -> try_domain ()
    <|> fun () -> try_supervisor () <|> fun () -> try_serve ()
  in
  match mapped with
  | Some fl -> fl
  | None -> ("tpdf_" ^ sanitize name, [])

let render_labels = function
  | [] -> ""
  | labels ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> k ^ "=\"" ^ escape_label v ^ "\"")
             labels)
      ^ "}"

let fmt_float f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

type kind = Counter | Gauge | Summary

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Summary -> "summary"

let render metrics =
  (* family -> (kind, sample lines) *)
  let families : (string, kind * string list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let add fam kind lines =
    match Hashtbl.find_opt families fam with
    | Some (k, acc) ->
        (* A kind clash would make the exposition invalid; distinct
           kinds get distinct family names by construction, but guard
           against a registry using one dotted name both ways. *)
        if k = kind then acc := lines @ !acc
    | None -> Hashtbl.replace families fam (kind, ref lines)
  in
  List.iter
    (fun (name, v) ->
      let fam, labels = family_of name in
      add fam Counter
        [ Printf.sprintf "%s_total%s %d" fam (render_labels labels) v ])
    (Metrics.counters metrics);
  List.iter
    (fun (name, v) ->
      let fam, labels = family_of name in
      add fam Gauge
        [ Printf.sprintf "%s%s %s" fam (render_labels labels) (fmt_float v) ])
    (Metrics.gauges metrics);
  List.iter
    (fun (name, (s : Metrics.histogram_stats)) ->
      let fam, labels = family_of name in
      let q v =
        render_labels (labels @ [ ("quantile", v) ])
      in
      add fam Summary
        [
          Printf.sprintf "%s%s %s" fam (q "0.5") (fmt_float s.Metrics.p50);
          Printf.sprintf "%s%s %s" fam (q "0.95") (fmt_float s.Metrics.p95);
          Printf.sprintf "%s_sum%s %s" fam (render_labels labels)
            (fmt_float s.Metrics.sum);
          Printf.sprintf "%s_count%s %d" fam (render_labels labels)
            s.Metrics.count;
        ])
    (Metrics.histograms metrics);
  let buf = Buffer.create 4096 in
  Hashtbl.fold (fun fam (kind, lines) acc -> (fam, kind, !lines) :: acc)
    families []
  |> List.sort compare
  |> List.iter (fun (fam, kind, lines) ->
         Buffer.add_string buf
           (Printf.sprintf "# TYPE %s %s\n" fam (kind_name kind));
         List.iter
           (fun l ->
             Buffer.add_string buf l;
             Buffer.add_char buf '\n')
           (List.sort compare lines));
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* Periodic snapshot export: rewrite [path] atomically (temp + fsync +
   rename, shared with the checkpoint layer) at most once per
   [interval_ms].  Readers always see a complete exposition. *)
module Exporter = struct
  type t = {
    path : string;
    interval_ms : float;
    metrics : Metrics.t;
    mutable last_ms : float;
  }

  let create ~path ?(interval_ms = 1000.0) metrics =
    { path; interval_ms; metrics; last_ms = neg_infinity }

  let flush t = Tpdf_util.Atomic_file.write t.path (render t.metrics)

  let try_flush t =
    match Tpdf_util.Atomic_file.write_result t.path (render t.metrics) with
    | Ok () -> Ok ()
    | Error e -> Error (Printf.sprintf "metrics export to %s: %s" t.path e)

  let tick t =
    let now = Unix.gettimeofday () *. 1000.0 in
    if now -. t.last_ms >= t.interval_ms then begin
      t.last_ms <- now;
      flush t
    end
end
