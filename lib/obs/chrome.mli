(** Chrome trace-event JSON export ([chrome://tracing] / Perfetto).

    Spans become complete ("X") events, instants "i" events and counters
    "C" series.  Virtual-time events live in process 1, wall-clock events
    in process 2, and every {!Event.t.track} becomes a named thread. *)

val json_of_events : ?process_names:string * string -> Event.t list -> string
(** [process_names] are the (virtual, wall) process labels. *)

val write_file : string -> Event.t list -> unit
