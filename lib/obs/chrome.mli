(** Chrome trace-event JSON export ([chrome://tracing] / Perfetto).

    Spans become complete ("X") events, instants "i" events and counters
    "C" series.  Virtual-time events live in process 1, wall-clock events
    in process 2, and every {!Event.t.track} becomes a named thread.
    Events carrying a [("domain", Int d)] argument — the parallel
    engine's per-domain stage spans — are grouped into a process of
    their own (pid [3 + d]) with a ["domain d (tpdf_par)"] process-name
    metadata record, so Perfetto shows one lane per domain. *)

val json_of_events : ?process_names:string * string -> Event.t list -> string
(** [process_names] are the (virtual, wall) process labels. *)

val write_file : string -> Event.t list -> unit
