(* Flight recorder: a fixed-capacity ring over the collector's event
   stream.  The ring sits behind [Obs]'s deliver path (an [add_sink]
   consumer), so it observes events in the exact deterministic order the
   collector delivers them — including pooled-engine captures, which are
   spliced in commit order before any sink runs.  Retention is therefore
   a pure function of the delivered stream: same stream, same retained
   events, at any domain count. *)

type config = {
  capacity : int;
  span_every : int;
  counter_every : int;
  keep_wall : bool;
  keep_cats : string list;
}

let default_config =
  {
    capacity = 8192;
    span_every = 1;
    counter_every = 1;
    keep_wall = false;
    keep_cats = [ "reconfig"; "txn"; "supervisor"; "fault"; "ckpt" ];
  }

let sampled_config =
  {
    default_config with
    span_every = 16;
    counter_every = 64;
  }

type t = {
  config : config;
  buf : Event.t array;
  mutable head : int; (* next write slot *)
  mutable size : int; (* retained count, <= capacity *)
  mutable seen : int;
  mutable kept : int;
  mutable spans_seen : int;
  mutable counters_seen : int;
}

let dummy : Event.t =
  {
    Event.name = "";
    cat = "";
    track = "";
    clock = Event.Virtual;
    ts_ms = 0.0;
    payload = Event.Instant;
    args = [];
  }

let create ?(config = default_config) () =
  if config.capacity < 1 then invalid_arg "Ring.create: capacity must be >= 1";
  {
    config;
    buf = Array.make config.capacity dummy;
    head = 0;
    size = 0;
    seen = 0;
    kept = 0;
    spans_seen = 0;
    counters_seen = 0;
  }

let push t ev =
  t.buf.(t.head) <- ev;
  t.head <- (t.head + 1) mod t.config.capacity;
  if t.size < t.config.capacity then t.size <- t.size + 1;
  t.kept <- t.kept + 1

(* Counter-based (not randomized) sampling: the decision for the k-th
   span is [(k - 1) mod span_every = 0], a pure function of the stream
   position, so retention is reproducible run to run. *)
let offer t (ev : Event.t) =
  t.seen <- t.seen + 1;
  if ev.Event.clock <> Event.Wall || t.config.keep_wall then begin
    let keep_kind =
      match ev.Event.payload with
      | Event.Span _ ->
          let k = t.spans_seen in
          t.spans_seen <- k + 1;
          t.config.span_every > 0 && k mod t.config.span_every = 0
      | Event.Counter _ ->
          let k = t.counters_seen in
          t.counters_seen <- k + 1;
          t.config.counter_every > 0 && k mod t.config.counter_every = 0
      | Event.Instant -> true
    in
    if keep_kind || List.mem ev.Event.cat t.config.keep_cats then push t ev
  end

let sink t ev = offer t ev
let attach ?config obs =
  let t = create ?config () in
  Obs.add_sink obs (sink t);
  t

let events t =
  let rec collect i acc =
    if i < 0 then acc
    else
      let slot =
        (t.head - 1 - i + (2 * t.config.capacity)) mod t.config.capacity
      in
      collect (i - 1) (t.buf.(slot) :: acc)
  in
  (* oldest first: walk back [size] slots from the write head *)
  List.rev (collect (t.size - 1) [])

let capacity t = t.config.capacity
let retained t = t.size
let seen t = t.seen
let kept t = t.kept
let evicted t = t.kept - t.size
let config t = t.config
