(** Structured observability events.

    Every event carries a clock domain: [Virtual] timestamps come from the
    simulator's deterministic virtual time (milliseconds since the start of
    the run), [Wall] timestamps from the host's wall clock (milliseconds
    since an arbitrary origin) and are used by the static analyses. *)

type clock = Virtual | Wall

type arg = Str of string | Int of int | Float of float

type payload =
  | Span of float  (** a duration in ms, starting at [ts_ms] *)
  | Instant  (** a point event *)
  | Counter of float  (** a sampled series value *)

type t = {
  name : string;  (** what happened, e.g. ["FFT/qpsk"] or ["drop"] *)
  cat : string;  (** event family: ["firing"], ["channel"], ["analysis"], … *)
  track : string;  (** lane the event belongs to: actor, channel, PE, phase *)
  clock : clock;
  ts_ms : float;
  payload : payload;
  args : (string * arg) list;
}

val clock_name : clock -> string
val payload_kind : payload -> string

val duration_ms : t -> float
(** [0.0] for instants and counters. *)

val value : t -> float option
(** The sampled value of a counter event. *)

val string_of_arg : arg -> string
