type sink = Event.t -> unit

type store = {
  mutable rev_events : Event.t list;
  mutable n_events : int;
  mutable sinks : sink list;
  keep : bool;
}

type t = {
  enabled : bool;
  offset_ms : float; (* added to virtual timestamps; see [shift] *)
  store : store;
  metrics : Metrics.t;
}

let disabled =
  {
    enabled = false;
    offset_ms = 0.0;
    store = { rev_events = []; n_events = 0; sinks = []; keep = false };
    metrics = Metrics.create ();
  }

let create ?(keep_events = true) () =
  {
    enabled = true;
    offset_ms = 0.0;
    store = { rev_events = []; n_events = 0; sinks = []; keep = keep_events };
    metrics = Metrics.create ();
  }

let enabled t = t.enabled
let metrics t = t.metrics
let events t = List.rev t.store.rev_events
let event_count t = t.store.n_events

let add_sink t sink =
  if t.enabled then t.store.sinks <- t.store.sinks @ [ sink ]

let shift t offset_ms =
  if not t.enabled then t
  else { t with offset_ms = t.offset_ms +. offset_ms }

let emit t (ev : Event.t) =
  if t.enabled then begin
    let ev =
      if ev.Event.clock = Event.Virtual && t.offset_ms <> 0.0 then
        { ev with Event.ts_ms = ev.Event.ts_ms +. t.offset_ms }
      else ev
    in
    if t.store.keep then t.store.rev_events <- ev :: t.store.rev_events;
    t.store.n_events <- t.store.n_events + 1;
    List.iter (fun s -> s ev) t.store.sinks
  end

let span ?(clock = Event.Virtual) ?(args = []) t ~cat ~track ~name ~ts_ms
    ~dur_ms () =
  if t.enabled then
    emit t
      {
        Event.name;
        cat;
        track;
        clock;
        ts_ms;
        payload = Event.Span dur_ms;
        args;
      }

let instant ?(clock = Event.Virtual) ?(args = []) t ~cat ~track ~name ~ts_ms ()
    =
  if t.enabled then
    emit t
      { Event.name; cat; track; clock; ts_ms; payload = Event.Instant; args }

let counter ?(clock = Event.Virtual) ?(args = []) t ~cat ~track ~name ~ts_ms
    value =
  if t.enabled then
    emit t
      {
        Event.name;
        cat;
        track;
        clock;
        ts_ms;
        payload = Event.Counter value;
        args;
      }

let now_wall_ms () = Unix.gettimeofday () *. 1000.0

let wall_span ?(cat = "analysis") ?(track = "analysis") t name f =
  if not t.enabled then f ()
  else begin
    let t0 = now_wall_ms () in
    let finally () =
      let t1 = now_wall_ms () in
      span ~clock:Event.Wall t ~cat ~track ~name ~ts_ms:t0 ~dur_ms:(t1 -. t0)
        ();
      Metrics.observe t.metrics (name ^ "_ms") (t1 -. t0)
    in
    match f () with
    | v ->
        finally ();
        v
    | exception e ->
        finally ();
        raise e
  end
