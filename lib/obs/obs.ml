type sink = Event.t -> unit

type store = {
  mutable rev_events : Event.t list;
  mutable n_events : int;
  mutable sinks : sink list;
  keep : bool;
}

(* Sampling policy advertised to instrumented hot paths (the engine):
   emit one of every [span_every] firing spans, and one of every
   [occupancy_every] channel-occupancy samples (0 = none).  The policy
   lives on the collector so that every component the collector is
   threaded through — supervisors and reconfiguration sequences create
   engines internally — inherits it without new plumbing. *)
type sampling = { span_every : int; occupancy_every : int }

let default_sampling = { span_every = 64; occupancy_every = 0 }

type t = {
  enabled : bool;
  offset_ms : float; (* added to virtual timestamps; see [shift] *)
  store : store;
  metrics : Metrics.t;
  sampling : sampling option; (* None = full capture *)
}

let disabled =
  {
    enabled = false;
    offset_ms = 0.0;
    store = { rev_events = []; n_events = 0; sinks = []; keep = false };
    metrics = Metrics.create ();
    sampling = None;
  }

let create ?(keep_events = true) ?sampling () =
  (match sampling with
  | Some s when s.span_every < 1 || s.occupancy_every < 0 ->
      invalid_arg "Obs.create: span_every >= 1, occupancy_every >= 0"
  | _ -> ());
  {
    enabled = true;
    offset_ms = 0.0;
    store = { rev_events = []; n_events = 0; sinks = []; keep = keep_events };
    metrics = Metrics.create ();
    sampling;
  }

let enabled t = t.enabled
let metrics t = t.metrics
let sampling t = t.sampling
let events t = List.rev t.store.rev_events
let event_count t = t.store.n_events

let add_sink t sink =
  if t.enabled then t.store.sinks <- t.store.sinks @ [ sink ]

let shift t offset_ms =
  if not t.enabled then t
  else { t with offset_ms = t.offset_ms +. offset_ms }

(* Domain-local capture (see the .mli): while active on the current
   domain, events bound for the captured store are diverted — already
   offset-adjusted, so [shift] views behave identically — into a buffer
   that [splice] later feeds through the normal store path (in-memory
   sink, event counting, attached sinks).  Metrics updates are captured
   alongside through [Metrics].  The store itself is never touched from
   more than one domain: capturing tasks write only their own buffers. *)
type capture = {
  cap_store : store;
  mutable rev_captured : Event.t list;
  cap_metrics : Metrics.capture option; (* None on a disabled collector *)
}

(* Captures nest as a per-domain stack (mirroring [Metrics]): the
   innermost capture targeting a store receives its events, and a
   [splice] executed while an enclosing capture is active re-stages the
   buffer into it instead of delivering — so the parallel engine's
   per-firing captures compose with a transaction capture staging a
   whole iteration for possible rollback. *)
let capture_slot : capture list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let active_capture store =
  let rec find = function
    | [] -> None
    | c :: rest -> if c.cap_store == store then Some c else find rest
  in
  find !(Domain.DLS.get capture_slot)

let capture_begin t =
  if not t.enabled then
    { cap_store = t.store; rev_captured = []; cap_metrics = None }
  else begin
    let slot = Domain.DLS.get capture_slot in
    let c =
      {
        cap_store = t.store;
        rev_captured = [];
        cap_metrics = Some (Metrics.capture_begin t.metrics);
      }
    in
    slot := c :: !slot;
    c
  end

let capture_end t c =
  if t.enabled then begin
    let slot = Domain.DLS.get capture_slot in
    (match !slot with
    | active :: rest when active == c -> slot := rest
    | _ -> invalid_arg "Obs.capture_end: capture not innermost on this domain");
    match c.cap_metrics with
    | Some mc -> Metrics.capture_end mc
    | None -> ()
  end

let deliver store ev =
  if store.keep then store.rev_events <- ev :: store.rev_events;
  store.n_events <- store.n_events + 1;
  List.iter (fun s -> s ev) store.sinks

let splice t c =
  if t.enabled then begin
    if not (c.cap_store == t.store) then
      invalid_arg "Obs.splice: buffer belongs to another store";
    (match active_capture t.store with
    | Some outer -> outer.rev_captured <- c.rev_captured @ outer.rev_captured
    | None -> List.iter (deliver t.store) (List.rev c.rev_captured));
    match c.cap_metrics with
    | Some mc -> Metrics.replay t.metrics mc
    | None -> ()
  end

let emit t (ev : Event.t) =
  if t.enabled then begin
    let ev =
      if ev.Event.clock = Event.Virtual && t.offset_ms <> 0.0 then
        { ev with Event.ts_ms = ev.Event.ts_ms +. t.offset_ms }
      else ev
    in
    match active_capture t.store with
    | Some c -> c.rev_captured <- ev :: c.rev_captured
    | None -> deliver t.store ev
  end

let span ?(clock = Event.Virtual) ?(args = []) t ~cat ~track ~name ~ts_ms
    ~dur_ms () =
  if t.enabled then
    emit t
      {
        Event.name;
        cat;
        track;
        clock;
        ts_ms;
        payload = Event.Span dur_ms;
        args;
      }

let instant ?(clock = Event.Virtual) ?(args = []) t ~cat ~track ~name ~ts_ms ()
    =
  if t.enabled then
    emit t
      { Event.name; cat; track; clock; ts_ms; payload = Event.Instant; args }

let counter ?(clock = Event.Virtual) ?(args = []) t ~cat ~track ~name ~ts_ms
    value =
  if t.enabled then
    emit t
      {
        Event.name;
        cat;
        track;
        clock;
        ts_ms;
        payload = Event.Counter value;
        args;
      }

let now_wall_ms () = Unix.gettimeofday () *. 1000.0

let wall_span ?(cat = "analysis") ?(track = "analysis") t name f =
  if not t.enabled then f ()
  else begin
    let t0 = now_wall_ms () in
    let finally () =
      let t1 = now_wall_ms () in
      span ~clock:Event.Wall t ~cat ~track ~name ~ts_ms:t0 ~dur_ms:(t1 -. t0)
        ();
      Metrics.observe t.metrics (name ^ "_ms") (t1 -. t0)
    in
    match f () with
    | v ->
        finally ();
        v
    | exception e ->
        finally ();
        raise e
  end
