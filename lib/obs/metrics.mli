(** Metrics registry: monotonic counters, gauges and summary histograms,
    keyed by name.  The convention used across the instrumented layers is
    dotted names scoped by subsystem and subject, e.g.
    ["engine.firings.FFT"], ["channel.e3.dropped"], ["analysis.liveness_ms"]. *)

type t

val create : unit -> t

val incr : ?by:int -> t -> string -> unit
(** Bump a counter.  @raise Invalid_argument on negative [by]: counters are
    monotonic. *)

val set_gauge : t -> string -> float -> unit
val observe : t -> string -> float -> unit

val counter : t -> string -> int
(** 0 when never incremented. *)

val gauge : t -> string -> float option

type histogram_stats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;  (** nearest-rank median *)
  p95 : float;  (** nearest-rank 95th percentile *)
}

val histogram : t -> string -> histogram_stats option

val counters : t -> (string * int) list
(** Sorted by name; likewise below. *)

val gauges : t -> (string * float) list
val histograms : t -> (string * histogram_stats) list
val is_empty : t -> bool
