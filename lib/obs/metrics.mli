(** Metrics registry: monotonic counters, gauges and summary histograms,
    keyed by name.  The convention used across the instrumented layers is
    dotted names scoped by subsystem and subject, e.g.
    ["engine.firings.FFT"], ["channel.e3.dropped"], ["analysis.liveness_ms"]. *)

type t

val create : unit -> t

val incr : ?by:int -> t -> string -> unit
(** Bump a counter.  @raise Invalid_argument on negative [by]: counters are
    monotonic. *)

val set_gauge : t -> string -> float -> unit
val observe : t -> string -> float -> unit

val counter : t -> string -> int
(** 0 when never incremented. *)

val gauge : t -> string -> float option

type histogram_stats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;  (** interpolated median *)
  p95 : float;
      (** interpolated 95th percentile (Hyndman–Fan type 7): small
          sample counts interpolate between straddling order statistics
          instead of degenerating to the max *)
}

val histogram : t -> string -> histogram_stats option

(** {2 Domain-local capture}

    Machinery for deterministic parallel instrumentation (used by the
    engine's pool mode through [Obs]): between {!capture_begin} and
    {!capture_end}, updates to the captured registry made {e on the
    current domain} are recorded into the returned buffer instead of
    being applied; {!replay} later applies them in recorded order.
    Replaying per-task buffers in a fixed task order makes the final
    registry bit-identical to the sequential run.  Captures nest as a
    per-domain stack — the innermost capture of a registry receives its
    updates, and a {!replay} under an enclosing capture re-stages into
    it (mirroring [Obs] capture nesting).  A registry is not otherwise
    thread-safe: uncaptured updates must stay on the domain that owns
    it. *)

type capture

val capture_begin : t -> capture
(** Start capturing this registry's updates on the current domain
    (pushed on the domain's capture stack). *)

val capture_end : capture -> unit
(** Stop capturing.  @raise Invalid_argument if [capture] is not the
    innermost capture of the current domain. *)

val replay : t -> capture -> unit
(** Apply the buffered updates in the order they were recorded — or,
    when a capture of the same registry is still active on this domain,
    append them to its buffer (kept staged for the enclosing scope).
    @raise Invalid_argument if the buffer was captured from another
    registry. *)

val counters : t -> (string * int) list
(** Sorted by name; likewise below. *)

val gauges : t -> (string * float) list
val histograms : t -> (string * histogram_stats) list
val is_empty : t -> bool
