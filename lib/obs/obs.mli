(** Observability collector: a stream of {!Event.t} plus a {!Metrics.t}
    registry, with pluggable sinks.

    The collector is either {e enabled} ({!create}) or the shared
    {!disabled} instance.  Every emission function returns immediately on a
    disabled collector; instrumented hot paths additionally guard argument
    construction behind {!enabled} so that running with no collector
    attached allocates nothing and costs one branch. *)

type t

type sink = Event.t -> unit
(** Streaming consumers attached with {!add_sink}; called once per event in
    emission order.  The built-in in-memory sink (see {!events}) is
    independent of attached sinks. *)

val disabled : t
(** The shared no-op collector: {!enabled} is [false], nothing is recorded. *)

type sampling = {
  span_every : int;  (** emit one of every K firing spans (K >= 1) *)
  occupancy_every : int;
      (** emit one of every K per-channel occupancy samples; 0 = none *)
}
(** Production sampling policy.  A collector created with a policy tells
    instrumented hot paths (the simulation engine) to emit a
    deterministic 1-in-K subset of high-frequency events and to keep
    per-firing bookkeeping in dense aggregates flushed at run end,
    instead of one event + registry update per firing.  Rare events —
    reconfigure, transaction, fault/supervisor and drop instants — are
    always emitted.  The subset is chosen by counters, never randomness,
    so the emitted stream is identical run to run and at any domain
    count. *)

val default_sampling : sampling
(** [{ span_every = 64; occupancy_every = 0 }] — the always-on profile
    benchmarked by E20.  1-in-64 keeps the overhead on an engine that
    completes a firing every ~800 ns under 5%: a retained span costs
    about 1 us end to end (event construction, ring admission, and the
    extra minor-GC pressure of the survivors the ring keeps alive). *)

val create : ?keep_events:bool -> ?sampling:sampling -> unit -> t
(** An enabled collector.  [keep_events] (default [true]) controls the
    in-memory sink; pass [false] for long runs feeding a streaming sink
    such as {!Ring}.  [sampling] (default [None] = full capture)
    advertises a sampling policy to instrumented components; the
    collector itself records whatever is emitted either way. *)

val enabled : t -> bool
val metrics : t -> Metrics.t

val sampling : t -> sampling option
(** The policy given to {!create}; [None] on {!disabled} and on
    full-capture collectors. *)

val events : t -> Event.t list
(** Recorded events, oldest first. *)

val event_count : t -> int
(** Total events emitted (counted even when [keep_events] is [false]). *)

val add_sink : t -> sink -> unit
(** No-op on the disabled collector. *)

val shift : t -> float -> t
(** [shift t d] is a view of [t] adding [d] milliseconds to the virtual
    timestamp of every event emitted through it (wall-clock events are
    untouched).  The view shares the store and metrics of [t].  Used to
    concatenate consecutive simulator runs — e.g. reconfiguration
    sequences — on one global timeline. *)

val emit : t -> Event.t -> unit

(** {2 Domain-local capture}

    Support for the engine's deterministic pool mode: a task running on
    any domain brackets its instrumentation with
    {!capture_begin}/{!capture_end}, which diverts every event bound for
    this collector's store — including emissions through {!shift} views,
    which share the store — into a private buffer, together with the
    collector's metrics updates (see [Metrics] capture).  The
    orchestrating domain then applies the buffers in a deterministic
    order with {!splice}, reproducing the sequential event stream and
    registry bit for bit.  The store itself is only ever touched by one
    domain at a time: capturing tasks write their own buffers, and
    splicing happens after the batch has been joined.

    Captures {e nest} (a per-domain stack): the innermost capture of a
    store receives emissions, and a {!splice} performed while an
    enclosing capture is active re-stages the buffer into the enclosing
    one instead of delivering.  [Tpdf_sim.Reconfigure] and
    [Tpdf_fault.Supervisor] rely on this to stage a whole iteration —
    pooled engine included — and discard it on transaction abort. *)

type capture

val capture_begin : t -> capture
(** Start diverting this collector's emissions on the current domain
    (pushed on the domain's capture stack).  On a disabled collector
    this is a no-op returning an empty buffer. *)

val capture_end : t -> capture -> unit
(** Stop diverting.  Call before handing the buffer to another domain.
    @raise Invalid_argument if [capture] is not the innermost capture of
    the current domain. *)

val splice : t -> capture -> unit
(** Feed the buffered events through the store (in-memory sink, event
    count, attached sinks, in buffered order) and replay the buffered
    metrics updates; if a capture of the same store is still active on
    this domain the buffer is appended to it instead (see nesting
    above).  Discarding a buffer without splicing rolls its events and
    metrics back.  No-op on a disabled collector.
    @raise Invalid_argument if the buffer was captured from a different
    collector's store. *)

val span :
  ?clock:Event.clock ->
  ?args:(string * Event.arg) list ->
  t ->
  cat:string ->
  track:string ->
  name:string ->
  ts_ms:float ->
  dur_ms:float ->
  unit ->
  unit

val instant :
  ?clock:Event.clock ->
  ?args:(string * Event.arg) list ->
  t ->
  cat:string ->
  track:string ->
  name:string ->
  ts_ms:float ->
  unit ->
  unit

val counter :
  ?clock:Event.clock ->
  ?args:(string * Event.arg) list ->
  t ->
  cat:string ->
  track:string ->
  name:string ->
  ts_ms:float ->
  float ->
  unit

val now_wall_ms : unit -> float
(** Wall-clock milliseconds since an arbitrary origin. *)

val wall_span : ?cat:string -> ?track:string -> t -> string -> (unit -> 'a) -> 'a
(** [wall_span t name f] runs [f] and, on an enabled collector, records a
    wall-clock span named [name] (default category and track ["analysis"])
    plus a [name ^ "_ms"] histogram observation.  Exceptions propagate, the
    span is still recorded. *)
