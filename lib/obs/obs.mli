(** Observability collector: a stream of {!Event.t} plus a {!Metrics.t}
    registry, with pluggable sinks.

    The collector is either {e enabled} ({!create}) or the shared
    {!disabled} instance.  Every emission function returns immediately on a
    disabled collector; instrumented hot paths additionally guard argument
    construction behind {!enabled} so that running with no collector
    attached allocates nothing and costs one branch. *)

type t

type sink = Event.t -> unit
(** Streaming consumers attached with {!add_sink}; called once per event in
    emission order.  The built-in in-memory sink (see {!events}) is
    independent of attached sinks. *)

val disabled : t
(** The shared no-op collector: {!enabled} is [false], nothing is recorded. *)

val create : ?keep_events:bool -> unit -> t
(** An enabled collector.  [keep_events] (default [true]) controls the
    in-memory sink; pass [false] for long runs feeding a streaming sink. *)

val enabled : t -> bool
val metrics : t -> Metrics.t

val events : t -> Event.t list
(** Recorded events, oldest first. *)

val event_count : t -> int
(** Total events emitted (counted even when [keep_events] is [false]). *)

val add_sink : t -> sink -> unit
(** No-op on the disabled collector. *)

val shift : t -> float -> t
(** [shift t d] is a view of [t] adding [d] milliseconds to the virtual
    timestamp of every event emitted through it (wall-clock events are
    untouched).  The view shares the store and metrics of [t].  Used to
    concatenate consecutive simulator runs — e.g. reconfiguration
    sequences — on one global timeline. *)

val emit : t -> Event.t -> unit

val span :
  ?clock:Event.clock ->
  ?args:(string * Event.arg) list ->
  t ->
  cat:string ->
  track:string ->
  name:string ->
  ts_ms:float ->
  dur_ms:float ->
  unit ->
  unit

val instant :
  ?clock:Event.clock ->
  ?args:(string * Event.arg) list ->
  t ->
  cat:string ->
  track:string ->
  name:string ->
  ts_ms:float ->
  unit ->
  unit

val counter :
  ?clock:Event.clock ->
  ?args:(string * Event.arg) list ->
  t ->
  cat:string ->
  track:string ->
  name:string ->
  ts_ms:float ->
  float ->
  unit

val now_wall_ms : unit -> float
(** Wall-clock milliseconds since an arbitrary origin. *)

val wall_span : ?cat:string -> ?track:string -> t -> string -> (unit -> 'a) -> 'a
(** [wall_span t name f] runs [f] and, on an enabled collector, records a
    wall-clock span named [name] (default category and track ["analysis"])
    plus a [name ^ "_ms"] histogram observation.  Exceptions propagate, the
    span is still recorded. *)
