type clock = Virtual | Wall

type arg = Str of string | Int of int | Float of float

type payload =
  | Span of float  (* duration, ms *)
  | Instant
  | Counter of float  (* sampled value *)

type t = {
  name : string;
  cat : string;
  track : string;
  clock : clock;
  ts_ms : float;
  payload : payload;
  args : (string * arg) list;
}

let clock_name = function Virtual -> "virtual" | Wall -> "wall"

let payload_kind = function
  | Span _ -> "span"
  | Instant -> "instant"
  | Counter _ -> "counter"

let duration_ms t = match t.payload with Span d -> d | _ -> 0.0

let value t = match t.payload with Counter v -> Some v | _ -> None

let string_of_arg = function
  | Str s -> s
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
