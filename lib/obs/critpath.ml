(* Trace-derived critical path.

   Input: the virtual-clock firing spans of a recorded run (category
   "firing"; full capture or a sampled/ring-retained subset).  The
   dependency chain is reconstructed greedily from timing alone: walk
   back from the last finisher, at each step picking the latest
   finisher whose finish does not exceed the current span's start —
   in an event-driven schedule a firing starts exactly when its last
   enabling token arrives, so the latest finisher at (or before) the
   start instant is the binding predecessor.  The result is an
   observed critical path whose length can be diffed against the
   analytical MCR / throughput predictions (see tpdf_tool
   analyze-trace). *)

type span = {
  track : string;
  mode : string;
  index : int;
  start_ms : float;
  finish_ms : float;
}

type report = {
  t0 : float;
  t1 : float;
  span_count : int;
  busy_ms : (string * float) list; (* per track, busiest first *)
  critical_path : span list; (* oldest first *)
  cp_ms : float; (* summed span durations along the path *)
  cp_share : (string * float) list; (* share of cp_ms per track *)
}

let span_of_event (ev : Event.t) =
  match (ev.Event.clock, ev.Event.payload) with
  | Event.Virtual, Event.Span dur when ev.Event.cat = "firing" ->
      let arg_int k d =
        match List.assoc_opt k ev.Event.args with
        | Some (Event.Int i) -> i
        | _ -> d
      in
      let arg_str k d =
        match List.assoc_opt k ev.Event.args with
        | Some (Event.Str s) -> s
        | _ -> d
      in
      Some
        {
          track = ev.Event.track;
          mode = arg_str "mode" "";
          index = arg_int "index" (-1);
          start_ms = ev.Event.ts_ms;
          finish_ms = ev.Event.ts_ms +. dur;
        }
  | _ -> None

let desc_by_value l =
  List.sort
    (fun (ka, va) (kb, vb) ->
      match compare vb va with 0 -> compare ka kb | c -> c)
    l

let of_events ?(eps = 1e-9) events =
  let spans = List.filter_map span_of_event events in
  match spans with
  | [] -> None
  | _ ->
      let arr = Array.of_list spans in
      (* sort by (finish, start, track, index): the rightmost entry
         with finish <= bound is the deterministic "latest finisher" *)
      Array.sort
        (fun a b ->
          compare
            (a.finish_ms, a.start_ms, a.track, a.index)
            (b.finish_ms, b.start_ms, b.track, b.index))
        arr;
      let n = Array.length arr in
      let t0 =
        Array.fold_left (fun acc s -> Float.min acc s.start_ms) infinity arr
      in
      let t1 = arr.(n - 1).finish_ms in
      (* rightmost index with finish <= bound, or -1 *)
      let latest_before bound =
        let lo = ref 0 and hi = ref n in
        while !lo < !hi do
          let mid = (!lo + !hi) / 2 in
          if arr.(mid).finish_ms <= bound then lo := mid + 1 else hi := mid
        done;
        !lo - 1
      in
      let rec chain acc cur guard =
        if guard <= 0 then acc
        else
          let i = latest_before (cur.start_ms +. eps) in
          if i < 0 then acc
          else
            let pred = arr.(i) in
            (* A zero-duration predecessor at the same instant could
               recurse forever; require strict progress. *)
            if pred.finish_ms >= cur.finish_ms -. eps && pred.start_ms >= cur.start_ms -. eps
            then acc
            else chain (pred :: acc) pred (guard - 1)
      in
      let last = arr.(n - 1) in
      let path = chain [ last ] last n in
      let add tbl k v =
        Hashtbl.replace tbl k
          (v +. (Option.value ~default:0.0 (Hashtbl.find_opt tbl k)))
      in
      let busy = Hashtbl.create 16 in
      Array.iter (fun s -> add busy s.track (s.finish_ms -. s.start_ms)) arr;
      let cp_ms =
        List.fold_left (fun acc s -> acc +. (s.finish_ms -. s.start_ms)) 0.0 path
      in
      let shares = Hashtbl.create 16 in
      List.iter
        (fun s ->
          if cp_ms > 0.0 then
            add shares s.track ((s.finish_ms -. s.start_ms) /. cp_ms))
        path;
      let to_list tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
      Some
        {
          t0;
          t1;
          span_count = n;
          busy_ms = desc_by_value (to_list busy);
          critical_path = path;
          cp_ms;
          cp_share = desc_by_value (to_list shares);
        }

let suspects ?(threshold = 0.25) report =
  let total =
    List.fold_left (fun acc (_, v) -> acc +. v) 0.0 report.busy_ms
  in
  if total <= 0.0 then []
  else
    List.filter_map
      (fun (k, v) ->
        let share = v /. total in
        if share >= threshold then Some (k, share) else None)
      report.busy_ms

let pp_path ppf report =
  Format.fprintf ppf "@[<v>critical path (%.3f ms over %d span(s)):@,"
    report.cp_ms
    (List.length report.critical_path);
  List.iter
    (fun s ->
      Format.fprintf ppf "  %8.3f .. %8.3f  %s%s@," s.start_ms s.finish_ms
        s.track
        (if s.mode = "" then "" else "/" ^ s.mode))
    report.critical_path;
  Format.fprintf ppf "@]"
