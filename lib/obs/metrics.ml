type histogram = {
  mutable samples : float list; (* reverse insertion order *)
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 32;
    histograms = Hashtbl.create 32;
  }

(* Domain-local capture: while a registry is being captured on the
   current domain, its updates are recorded into a buffer instead of
   being applied, and {!replay} applies them later in recorded order.
   This is how the parallel engine keeps metrics bit-identical to a
   sequential run: each same-instant firing records on its own domain,
   and the buffers are replayed in ascending actor id at commit time.
   Registries are not otherwise synchronized — uncaptured updates must
   stay on the owning domain. *)
type op =
  | Op_incr of string * int
  | Op_gauge of string * float
  | Op_observe of string * float

type capture = { cap_target : t; mutable rev_ops : op list }

(* Captures nest as a per-domain stack: the innermost (most recent)
   capture targeting a registry receives its updates, so e.g. the
   parallel engine's per-firing captures compose with an enclosing
   transaction capture staging a whole iteration. *)
let capture_slot : capture list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let captured t =
  let rec find = function
    | [] -> None
    | buf :: rest -> if buf.cap_target == t then Some buf else find rest
  in
  find !(Domain.DLS.get capture_slot)

let capture_begin t =
  let slot = Domain.DLS.get capture_slot in
  let buf = { cap_target = t; rev_ops = [] } in
  slot := buf :: !slot;
  buf

let capture_end buf =
  let slot = Domain.DLS.get capture_slot in
  match !slot with
  | b :: rest when b == buf -> slot := rest
  | _ -> invalid_arg "Metrics.capture_end: capture not innermost on this domain"

let apply_incr t name by =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let apply_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.replace t.gauges name (ref v)

let apply_observe t name v =
  match Hashtbl.find_opt t.histograms name with
  | Some h ->
      h.samples <- v :: h.samples;
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v;
      if v < h.h_min then h.h_min <- v;
      if v > h.h_max then h.h_max <- v
  | None ->
      Hashtbl.replace t.histograms name
        { samples = [ v ]; h_count = 1; h_sum = v; h_min = v; h_max = v }

let replay t buf =
  if not (buf.cap_target == t) then
    invalid_arg "Metrics.replay: buffer belongs to another registry";
  (* Route through any capture still active on this domain, so a replay
     inside an enclosing (e.g. transaction) capture stays staged and can
     be rolled back with it. *)
  match captured t with
  | Some outer -> outer.rev_ops <- buf.rev_ops @ outer.rev_ops
  | None ->
      List.iter
        (function
          | Op_incr (name, by) -> apply_incr t name by
          | Op_gauge (name, v) -> apply_gauge t name v
          | Op_observe (name, v) -> apply_observe t name v)
        (List.rev buf.rev_ops)

let incr ?(by = 1) t name =
  if by < 0 then invalid_arg "Metrics.incr: counters are monotonic";
  match captured t with
  | Some buf -> buf.rev_ops <- Op_incr (name, by) :: buf.rev_ops
  | None -> apply_incr t name by

let set_gauge t name v =
  match captured t with
  | Some buf -> buf.rev_ops <- Op_gauge (name, v) :: buf.rev_ops
  | None -> apply_gauge t name v

let observe t name v =
  match captured t with
  | Some buf -> buf.rev_ops <- Op_observe (name, v) :: buf.rev_ops
  | None -> apply_observe t name v

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let gauge t name =
  match Hashtbl.find_opt t.gauges name with Some r -> Some !r | None -> None

type histogram_stats = {
  count : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
}

(* Interpolated nearest-rank percentile (Hyndman–Fan type 7, the R /
   NumPy default) over the sorted samples.  Plain nearest-rank
   degenerates on small counts — the 95th percentile of anything under
   20 observations is just the max; interpolating between the two
   straddling order statistics keeps small-sample estimates usable. *)
let percentile sorted n p =
  if n = 1 then sorted.(0)
  else begin
    let h = p /. 100.0 *. float_of_int (n - 1) in
    let h = Float.max 0.0 (Float.min (float_of_int (n - 1)) h) in
    let lo = int_of_float (Float.floor h) in
    let hi = Stdlib.min (n - 1) (lo + 1) in
    sorted.(lo) +. ((h -. float_of_int lo) *. (sorted.(hi) -. sorted.(lo)))
  end

let stats_of h =
  let sorted = Array.of_list h.samples in
  Array.sort compare sorted;
  let n = h.h_count in
  {
    count = n;
    sum = h.h_sum;
    min = h.h_min;
    max = h.h_max;
    p50 = percentile sorted n 50.0;
    p95 = percentile sorted n 95.0;
  }

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> Some (stats_of h)
  | None -> None

let sorted_bindings tbl f =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl [])

let counters t = sorted_bindings t.counters (fun r -> !r)
let gauges t = sorted_bindings t.gauges (fun r -> !r)
let histograms t = sorted_bindings t.histograms stats_of

let is_empty t =
  Hashtbl.length t.counters = 0
  && Hashtbl.length t.gauges = 0
  && Hashtbl.length t.histograms = 0
