(** Textual renderings of an event stream. *)

val csv_of_events : Event.t list -> string
(** One row per event:
    [clock,cat,track,kind,name,ts_ms,dur_ms,value,args]. *)

val summary : ?metrics:Metrics.t -> Event.t list -> string
(** Human-readable report: event counts per category, per-track virtual
    busy time and utilization, and — when [metrics] is given — the counter,
    gauge and histogram tables. *)
