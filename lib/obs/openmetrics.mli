(** OpenMetrics / Prometheus text exposition for a {!Metrics} registry.

    {b Naming scheme.}  Registry names are dotted
    [subsystem.metric.subject]; the renderer maps known prefixes to one
    family per metric with the subject as a label:
    {ul
    {- [engine.firings.FFT] → [tpdf_engine_firings_total{actor="FFT"}]}
    {- [channel.e3.dropped] → [tpdf_channel_dropped_total{channel="e3"}]}
    {- [domain.2.firings] → [tpdf_domain_firings{domain="2"}]}
    {- [supervisor.retries.EQ] → [tpdf_supervisor_retries_total{actor="EQ"}]}}
    Anything else becomes its own sanitized [tpdf_]-prefixed family.
    Counters render with the ["_total"] sample suffix, gauges as-is,
    histograms as summaries ([{quantile="0.5"}], [{quantile="0.95"}],
    [_sum], [_count]).  The mapping is injective — no two registry
    entries collide into one series — and the output is fully sorted,
    ending with [# EOF]. *)

val render : Metrics.t -> string

val family_of : string -> string * (string * string) list
(** The family name and labels a registry name maps to (exposed for
    tests and tooling). *)

(** Periodic snapshot export to a file, for scrape-by-file collectors
    (e.g. node_exporter's textfile collector).  Each rewrite goes
    through [Tpdf_util.Atomic_file] — the checkpoint layer's temp +
    fsync + rename path — so readers never observe a torn exposition.
    The simulation engine drives this from its run loop when
    [TPDF_METRICS_OUT] is set. *)
module Exporter : sig
  type t

  val create : path:string -> ?interval_ms:float -> Metrics.t -> t
  (** [interval_ms] defaults to 1000. *)

  val tick : t -> unit
  (** Rewrite if at least [interval_ms] of wall time has passed since
      the last rewrite; cheap otherwise. *)

  val flush : t -> unit
  (** Unconditional rewrite (used at end of run).
      @raise Unix.Unix_error on IO failure. *)

  val try_flush : t -> (unit, string) result
  (** {!flush} with IO failures surfaced as [Error] instead of raised —
      the form long-running exporters (the serve daemon) use so an
      unwritable path degrades to a counted error. *)
end
