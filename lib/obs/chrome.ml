(* Chrome trace-event JSON (the "JSON Object Format" with a traceEvents
   array), loadable by chrome://tracing and by Perfetto.  Virtual-time
   events go to pid 1, wall-clock events to pid 2; each track becomes a
   named thread.  Timestamps are microseconds. *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float f =
  if not (Float.is_finite f) then "0"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let json_of_arg = function
  | Event.Str s -> "\"" ^ escape s ^ "\""
  | Event.Int i -> string_of_int i
  | Event.Float f -> json_float f

let json_of_args args =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> "\"" ^ escape k ^ "\":" ^ json_of_arg v) args)
  ^ "}"

let pid_of = function Event.Virtual -> 1 | Event.Wall -> 2

(* Events stamped with a ("domain", Int d) argument — the parallel
   engine's per-domain stage spans — get a process of their own (pid
   3 + d), so Perfetto groups them per domain instead of one flat
   track. *)
let domain_of (ev : Event.t) =
  match List.assoc_opt "domain" ev.args with
  | Some (Event.Int d) when d >= 0 -> Some d
  | _ -> None

let domain_pid d = 3 + d

(* Microsecond timestamps with sub-microsecond precision preserved. *)
let us ms = Printf.sprintf "%.4f" (ms *. 1000.0)

let add_meta buf ~pid ~tid ~what ~name =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"ph\":\"M\",\"pid\":%d%s,\"name\":\"%s\",\"args\":{\"name\":\"%s\"}}"
       pid
       (match tid with None -> "" | Some tid -> Printf.sprintf ",\"tid\":%d" tid)
       what (escape name))

let json_of_events ?(process_names = ("simulation (virtual time)", "analyses (wall clock)")) events =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string buf ",\n"
  in
  (* Stable thread ids per (pid, track), in order of first appearance. *)
  let tids = Hashtbl.create 16 in
  let next_tid = ref 0 in
  let tid_of pid track =
    let key = (pid, track) in
    match Hashtbl.find_opt tids key with
    | Some tid -> tid
    | None ->
        incr next_tid;
        let tid = !next_tid in
        Hashtbl.replace tids key tid;
        sep ();
        add_meta buf ~pid ~tid:(Some tid) ~what:"thread_name" ~name:track;
        tid
  in
  let seen_pids = Hashtbl.create 2 in
  let pid_of_event clock domain =
    let pid, name =
      match domain with
      | Some d -> (domain_pid d, Printf.sprintf "domain %d (tpdf_par)" d)
      | None ->
          let vname, wname = process_names in
          ( pid_of clock,
            match clock with Event.Virtual -> vname | Event.Wall -> wname )
    in
    if not (Hashtbl.mem seen_pids pid) then begin
      Hashtbl.replace seen_pids pid ();
      sep ();
      add_meta buf ~pid ~tid:None ~what:"process_name" ~name
    end;
    pid
  in
  List.iter
    (fun (ev : Event.t) ->
      let pid = pid_of_event ev.clock (domain_of ev) in
      let tid = tid_of pid ev.track in
      let common =
        Printf.sprintf
          "\"name\":\"%s\",\"cat\":\"%s\",\"pid\":%d,\"tid\":%d,\"ts\":%s"
          (escape ev.name) (escape ev.cat) pid tid (us ev.ts_ms)
      in
      let args = json_of_args ev.args in
      sep ();
      (match ev.payload with
      | Event.Span dur ->
          Buffer.add_string buf
            (Printf.sprintf "{\"ph\":\"X\",%s,\"dur\":%s,\"args\":%s}" common
               (us dur) args)
      | Event.Instant ->
          Buffer.add_string buf
            (Printf.sprintf "{\"ph\":\"i\",\"s\":\"t\",%s,\"args\":%s}" common
               args)
      | Event.Counter v ->
          (* Counter series take their value from args; keep any extra args
             out of the series to avoid one lane per argument. *)
          Buffer.add_string buf
            (Printf.sprintf "{\"ph\":\"C\",%s,\"args\":{\"value\":%s}}" common
               (json_float v))))
    events;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let write_file path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (json_of_events events))
