(* Flat CSV and human-readable summary renderings of an event stream. *)

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv_of_events events =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "clock,cat,track,kind,name,ts_ms,dur_ms,value,args\n";
  List.iter
    (fun (ev : Event.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%s,%s,%s,%s,%s,%.6f,%.6f,%s,%s\n"
           (Event.clock_name ev.clock) (csv_escape ev.cat)
           (csv_escape ev.track)
           (Event.payload_kind ev.payload)
           (csv_escape ev.name) ev.ts_ms (Event.duration_ms ev)
           (match Event.value ev with
           | Some v -> Printf.sprintf "%g" v
           | None -> "")
           (csv_escape
              (String.concat ";"
                 (List.map
                    (fun (k, v) -> k ^ "=" ^ Event.string_of_arg v)
                    ev.args)))))
    events;
  Buffer.contents buf

let summary ?metrics events =
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (* Per-category event counts. *)
  let by_cat = Hashtbl.create 8 in
  let bump tbl key =
    Hashtbl.replace tbl key
      (1 + match Hashtbl.find_opt tbl key with Some n -> n | None -> 0)
  in
  (* Per-track virtual busy time (sum of span durations). *)
  let busy = Hashtbl.create 8 in
  let add_busy track d =
    Hashtbl.replace busy track
      (d +. match Hashtbl.find_opt busy track with Some x -> x | None -> 0.0)
  in
  let virt_end = ref 0.0 in
  List.iter
    (fun (ev : Event.t) ->
      bump by_cat ev.cat;
      (match ev.payload with
      | Event.Span d when ev.clock = Event.Virtual -> add_busy ev.track d
      | _ -> ());
      if ev.clock = Event.Virtual then
        virt_end := Float.max !virt_end (ev.ts_ms +. Event.duration_ms ev))
    events;
  pr "== events ==\n";
  pr "%-28s %8d\n" "total" (List.length events);
  List.iter
    (fun (cat, n) -> pr "%-28s %8d\n" ("cat " ^ cat) n)
    (List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_cat []));
  let busy_rows =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) busy [])
  in
  if busy_rows <> [] then begin
    pr "\n== virtual-time spans (end of timeline: %.3f ms) ==\n" !virt_end;
    pr "%-20s %12s %9s\n" "track" "busy ms" "util";
    List.iter
      (fun (track, b) ->
        pr "%-20s %12.3f %8.1f%%\n" track b
          (if !virt_end > 0.0 then 100.0 *. b /. !virt_end else 0.0))
      busy_rows
  end;
  (match metrics with
  | Some m when not (Metrics.is_empty m) ->
      (* Resilience: populated by the fault supervisor (lib/fault) and the
         engine's drop accounting; omitted entirely for unsupervised,
         drop-free runs. *)
      let sup name = Metrics.counter m ("supervisor." ^ name) in
      let retries = sup "retries" in
      let skips = sup "skips" in
      let corrupted = sup "corrupted" in
      let ctrl_lost = sup "ctrl_lost" in
      let hits = sup "deadline_hits" in
      let misses = sup "deadline_misses" in
      let degrades = sup "degrades" in
      let unrecovered = sup "unrecovered" in
      let dropped =
        List.fold_left
          (fun acc (name, n) ->
            if
              String.length name > 8
              && String.sub name (String.length name - 8) 8 = ".dropped"
            then acc + n
            else acc)
          0 (Metrics.counters m)
      in
      if
        retries + skips + corrupted + ctrl_lost + hits + misses + degrades
        + unrecovered + dropped
        > 0
      then begin
        pr "\n== resilience ==\n";
        pr "%-28s %8d\n" "retries" retries;
        pr "%-28s %8d\n" "skipped firings" skips;
        pr "%-28s %8d\n" "corrupted tokens" corrupted;
        pr "%-28s %8d\n" "lost ctrl tokens" ctrl_lost;
        pr "%-28s %8d\n" "dropped tokens" dropped;
        pr "%-28s %8d\n" "deadline hits" hits;
        pr "%-28s %8d\n" "deadline misses" misses;
        (match Metrics.gauge m "supervisor.deadline_hit_ratio" with
        | Some r -> pr "%-28s %7.1f%%\n" "deadline hit ratio" (100.0 *. r)
        | None -> ());
        pr "%-28s %8d\n" "mode degrades" degrades;
        List.iter
          (fun (ev : Event.t) ->
            if ev.cat = "supervisor" && ev.name = "degrade" then
              pr "  @ %10.3f ms  %s\n" ev.ts_ms
                (String.concat " "
                   (List.map
                      (fun (k, v) -> k ^ "=" ^ Event.string_of_arg v)
                      ev.args)))
          events;
        if unrecovered > 0 then pr "%-28s %8d\n" "UNRECOVERED runs" unrecovered
      end;
      let counters = Metrics.counters m in
      if counters <> [] then begin
        pr "\n== counters ==\n";
        List.iter (fun (name, n) -> pr "%-40s %12d\n" name n) counters
      end;
      let gauges = Metrics.gauges m in
      if gauges <> [] then begin
        pr "\n== gauges ==\n";
        List.iter (fun (name, v) -> pr "%-40s %12.4f\n" name v) gauges
      end;
      let histograms = Metrics.histograms m in
      if histograms <> [] then begin
        pr "\n== histograms ==\n";
        pr "%-40s %8s %10s %10s %10s %10s\n" "name" "count" "p50" "p95" "max"
          "sum";
        List.iter
          (fun (name, (s : Metrics.histogram_stats)) ->
            pr "%-40s %8d %10.4f %10.4f %10.4f %10.4f\n" name s.Metrics.count
              s.Metrics.p50 s.Metrics.p95 s.Metrics.max s.Metrics.sum)
          histograms
      end
  | _ -> ());
  Buffer.contents buf
