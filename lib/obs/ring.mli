(** Flight recorder: bounded in-memory retention of the event stream.

    A ring keeps the last [capacity] retained events.  It plugs into a
    collector as a sink ({!attach}), so it sees events in the exact
    order {!Obs} delivers them — for a pooled engine that is the
    spliced commit order, which is byte-identical to a sequential run.

    {b Invariants.}
    {ul
    {- [retained t <= capacity t] always; memory is [O(capacity)]
       regardless of run length.}
    {- Retention is deterministic: whether the k-th span (or counter)
       of the stream is kept depends only on [k] and the config —
       counter-based 1-in-K sampling, no randomness — so the same
       delivered stream yields the same retained stream at 1, 2 or 4
       domains.}
    {- Instants are always retained (subject only to capacity), as is
       any event whose category is in [keep_cats] — reconfigure,
       transaction and fault/supervisor markers survive even aggressive
       span sampling.}
    {- Wall-clock events are excluded by default ([keep_wall = false]):
       their payloads are timing-dependent and would break retained-
       stream reproducibility.}} *)

type config = {
  capacity : int;  (** max retained events, >= 1 *)
  span_every : int;  (** keep 1 of every K spans; 0 = none *)
  counter_every : int;  (** keep 1 of every K counter samples; 0 = none *)
  keep_wall : bool;  (** admit wall-clock events (default no) *)
  keep_cats : string list;  (** categories always admitted *)
}

val default_config : config
(** Capacity 8192; keeps every event it is offered (sampling left to the
    emitter, see {!Obs.sampling}); virtual-clock only; always admits
    ["reconfig"], ["txn"], ["supervisor"], ["fault"], ["ckpt"]. *)

val sampled_config : config
(** {!default_config} with 1-in-16 spans and 1-in-64 counter samples:
    for attaching a bounded recorder to a {e full-capture} collector. *)

type t

val create : ?config:config -> unit -> t
(** @raise Invalid_argument when [capacity < 1]. *)

val attach : ?config:config -> Obs.t -> t
(** [create] + {!Obs.add_sink}.  On a disabled collector the ring is
    returned but never fed. *)

val sink : t -> Obs.sink
val offer : t -> Event.t -> unit

val events : t -> Event.t list
(** Retained events, oldest first. *)

val capacity : t -> int
val retained : t -> int
val seen : t -> int  (** events offered *)

val kept : t -> int  (** events admitted (retained + evicted) *)

val evicted : t -> int  (** admitted events overwritten by newer ones *)

val config : t -> config
