(** Trace-derived critical-path analysis.

    Reconstructs a dependency chain from recorded virtual-clock firing
    spans (category ["firing"]) by walking back from the last finisher:
    in an event-driven schedule a firing starts exactly when its last
    enabling token arrives, so the latest finisher at or before a
    span's start is taken as its binding predecessor.  Works on any
    event list — a full capture, a {!Ring}'s retained stream, or a
    sampled subset (with sampling the chain is an approximation whose
    per-actor shares remain representative).

    [tpdf_tool analyze-trace] combines this with the scheduler-side
    [Mcr]/[Throughput] predictions: observed iteration period below the
    proven MCR bound is reported as an analysis bug, and actors whose
    busy-time share crosses {!suspects}' threshold are flagged as
    fan-out-cliff suspects. *)

type span = {
  track : string;
  mode : string;
  index : int;
  start_ms : float;
  finish_ms : float;
}

type report = {
  t0 : float;  (** earliest observed start *)
  t1 : float;  (** latest observed finish *)
  span_count : int;
  busy_ms : (string * float) list;  (** per actor, busiest first *)
  critical_path : span list;  (** oldest first *)
  cp_ms : float;  (** summed durations along the path *)
  cp_share : (string * float) list;
      (** per-actor share of [cp_ms], largest first *)
}

val of_events : ?eps:float -> Event.t list -> report option
(** [None] when the list contains no firing spans.  [eps] (default
    1e-9 ms) is the timestamp tolerance for "finished at or before". *)

val suspects : ?threshold:float -> report -> (string * float) list
(** Actors whose share of total observed busy time is at least
    [threshold] (default 0.25), with their shares, largest first. *)

val pp_path : Format.formatter -> report -> unit
