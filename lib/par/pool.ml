type t = {
  n_domains : int;
  mutable workers : unit Domain.t list;
  lock : Mutex.t;
  work_ready : Condition.t; (* tasks queued, or shutdown requested *)
  batch_done : Condition.t; (* a batch's remaining-counter hit zero *)
  queue : (unit -> unit) Queue.t;
  mutable live : bool;
  mutable in_batch : bool;
  tasks_run : int array; (* per-domain task counts; slot 0 = caller *)
}

(* Which pool slot the current domain occupies: 0 for the orchestrating
   (caller) domain, 1..n-1 for workers.  Keyed per domain so telemetry
   (per-domain firing counters, Perfetto lanes) can attribute work
   without any shared state or locking: each slot of [tasks_run] is
   written only by the domain that owns it. *)
let slot_key : int Domain.DLS.key = Domain.DLS.new_key (fun () -> 0)

let self_index () = Domain.DLS.get slot_key

let count_task t =
  let i = Domain.DLS.get slot_key in
  let i = if i < Array.length t.tasks_run then i else 0 in
  t.tasks_run.(i) <- t.tasks_run.(i) + 1

let tasks_per_domain t = Array.copy t.tasks_run

(* Workers block here between batches.  On shutdown they drain whatever
   is still queued (so a batch in flight always completes) and exit. *)
let rec worker_loop t =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && t.live do
    Condition.wait t.work_ready t.lock
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.lock (* shut down *)
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.lock;
    task ();
    worker_loop t
  end

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    {
      n_domains = domains;
      workers = [];
      lock = Mutex.create ();
      work_ready = Condition.create ();
      batch_done = Condition.create ();
      queue = Queue.create ();
      live = true;
      in_batch = false;
      tasks_run = Array.make domains 0;
    }
  in
  t.workers <-
    List.init (domains - 1) (fun i ->
        Domain.spawn (fun () ->
            Domain.DLS.set slot_key (i + 1);
            worker_loop t));
  t

let domains t = t.n_domains
let recommended () = Domain.recommended_domain_count ()

(* Run all of [thunks] on the calling domain, with the same contract as
   the parallel path: attempt everything, then re-raise the
   lowest-indexed failure. *)
let run_inline thunks =
  let n = Array.length thunks in
  let results = Array.make n None in
  let first_err = ref None in
  for i = 0 to n - 1 do
    match thunks.(i) () with
    | v -> results.(i) <- Some v
    | exception e -> if !first_err = None then first_err := Some e
  done;
  match !first_err with
  | Some e -> raise e
  | None ->
      Array.map (function Some v -> v | None -> assert false) results

let run t thunks =
  let n = Array.length thunks in
  if n = 0 then [||]
  else if n = 1 || t.n_domains = 1 || t.workers = [] then
    run_inline
      (Array.map
         (fun f () ->
           count_task t;
           f ())
         thunks)
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let remaining = ref n in
    (* Each queued closure owns one task index: it records its result or
       exception, then decrements the batch counter under the lock. *)
    let task i () =
      count_task t;
      (match thunks.(i) () with
      | v -> results.(i) <- Some v
      | exception e -> errors.(i) <- Some e);
      Mutex.lock t.lock;
      decr remaining;
      if !remaining = 0 then Condition.broadcast t.batch_done;
      Mutex.unlock t.lock
    in
    Mutex.lock t.lock;
    if t.in_batch then begin
      Mutex.unlock t.lock;
      invalid_arg "Pool.run: pool is not reentrant"
    end;
    t.in_batch <- true;
    for i = 0 to n - 1 do
      Queue.add (task i) t.queue
    done;
    Condition.broadcast t.work_ready;
    (* The caller participates: pull tasks until the queue is empty, then
       wait for the stragglers running on workers. *)
    let continue = ref true in
    while !continue do
      match Queue.take_opt t.queue with
      | Some task ->
          Mutex.unlock t.lock;
          task ();
          Mutex.lock t.lock
      | None -> continue := false
    done;
    while !remaining > 0 do
      Condition.wait t.batch_done t.lock
    done;
    t.in_batch <- false;
    Mutex.unlock t.lock;
    (* The lock hand-off above is the synchronization point: every
       [results]/[errors] write happened before its counter decrement. *)
    let first_err = ref None in
    for i = n - 1 downto 0 do
      match errors.(i) with Some e -> first_err := Some e | None -> ()
    done;
    match !first_err with
    | Some e -> raise e
    | None ->
        Array.map (function Some v -> v | None -> assert false) results
  end

let check_chunk = function
  | Some c when c < 1 -> invalid_arg "Pool: chunk must be >= 1"
  | Some c -> Some c
  | None -> None

(* About four chunks per domain: enough slack to absorb uneven task
   costs without drowning in per-chunk overhead. *)
let effective_chunk chunk t ~lo ~hi =
  match check_chunk chunk with
  | Some c -> c
  | None -> max 1 ((hi - lo + (4 * t.n_domains) - 1) / (4 * t.n_domains))

let chunks_of ~lo ~hi chunk = (hi - lo + chunk - 1) / chunk

let parallel_for ?chunk t ~lo ~hi body =
  if hi > lo then begin
    let chunk = effective_chunk chunk t ~lo ~hi in
    let nchunks = chunks_of ~lo ~hi chunk in
    if nchunks = 1 || t.n_domains = 1 || t.workers = [] then
      for i = lo to hi - 1 do
        body i
      done
    else
      ignore
        (run t
           (Array.init nchunks (fun c () ->
                let c_lo = lo + (c * chunk) in
                let c_hi = min hi (c_lo + chunk) in
                for i = c_lo to c_hi - 1 do
                  body i
                done)))
  end
  else ignore (check_chunk chunk)

let parallel_for_reduce ?chunk t ~lo ~hi ~init ~body ~merge =
  if hi <= lo then begin
    ignore (check_chunk chunk);
    init
  end
  else begin
    let chunk = effective_chunk chunk t ~lo ~hi in
    let nchunks = chunks_of ~lo ~hi chunk in
    let fold_range lo hi =
      let acc = ref init in
      for i = lo to hi - 1 do
        acc := body !acc i
      done;
      !acc
    in
    if nchunks = 1 || t.n_domains = 1 || t.workers = [] then fold_range lo hi
    else
      let partials =
        run t
          (Array.init nchunks (fun c () ->
               let c_lo = lo + (c * chunk) in
               fold_range c_lo (min hi (c_lo + chunk))))
      in
      (* Ascending chunk order: index 0 first, exactly the sequential
         left-to-right sweep. *)
      Array.fold_left merge init partials
  end

let shutdown t =
  Mutex.lock t.lock;
  if t.live then begin
    t.live <- false;
    Condition.broadcast t.work_ready;
    let ws = t.workers in
    t.workers <- [];
    Mutex.unlock t.lock;
    List.iter Domain.join ws
  end
  else Mutex.unlock t.lock
