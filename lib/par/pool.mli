(** A fixed-size domain pool with deterministic batch semantics.

    OCaml 5 gives us one systhread-free unit of parallelism per [Domain];
    this pool owns [domains - 1] worker domains (the caller is the last
    participant) and runs batches of independent tasks on them.  It is
    built directly on [Domain]/[Mutex]/[Condition] — no external
    dependencies — and designed for the determinism contract of the TPDF
    engine: results always come back in task-index order, chunk merges
    happen in ascending chunk order, and the lowest-indexed exception
    wins, so a program that treats the pool as a black box cannot observe
    how work was interleaved.

    A pool is owned by one orchestrating domain: batches are issued one
    at a time ([run] is not reentrant — a task must not submit to the
    pool it runs on).  Worker domains idle on a condition variable
    between batches and are joined by {!shutdown}. *)

type t

val create : domains:int -> t
(** A pool with total parallelism [domains]: [domains - 1] worker domains
    are spawned immediately; the caller participates in every batch, so
    [create ~domains:1] spawns nothing and runs every batch inline.
    @raise Invalid_argument when [domains < 1]. *)

val domains : t -> int
(** The configured total parallelism (not the spawned worker count). *)

val recommended : unit -> int
(** [Domain.recommended_domain_count ()] — what the machine can actually
    run in parallel.  Exposed for benchmarks and [TPDF_DOMAINS] plumbing. *)

val run : t -> (unit -> 'a) array -> 'a array
(** Execute one batch.  Every task is attempted exactly once (tasks after
    a failing one still run); results are returned in task-index order.
    If any task raised, the exception of the {e lowest-indexed} failing
    task is re-raised once the whole batch has finished — workers never
    hold unfinished tasks and no domain is leaked, whatever the tasks do.
    Tasks run concurrently on up to [domains] domains (including the
    calling one); a single-task batch, a 1-domain pool, or a pool that
    was already {!shutdown} runs inline on the caller.
    @raise Invalid_argument when called from inside one of its own
    tasks (the pool is not reentrant). *)

val parallel_for : ?chunk:int -> t -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for pool ~lo ~hi body] runs [body i] for every
    [lo <= i < hi], split into contiguous index chunks executed as one
    {!run} batch.  [chunk] is the maximum chunk length (default: enough
    chunks to give each domain about four).  Iterations must be
    independent; within a chunk they run in ascending order.
    @raise Invalid_argument when [chunk < 1]. *)

val parallel_for_reduce :
  ?chunk:int ->
  t ->
  lo:int ->
  hi:int ->
  init:'acc ->
  body:('acc -> int -> 'acc) ->
  merge:('acc -> 'acc -> 'acc) ->
  'acc
(** Chunked fold: each contiguous chunk is folded with [body] starting
    from [init], and the per-chunk partials are combined with [merge] in
    {e ascending chunk order} — deterministic for a given [(lo, hi,
    chunk)] regardless of domain count or scheduling.  Equals the
    sequential [fold_left] whenever [init] is an identity for [merge]
    and [merge] is associative (e.g. sums, maxima, list concatenation).
    @raise Invalid_argument when [chunk < 1]. *)

val self_index : unit -> int
(** The pool slot of the calling domain: 0 on the orchestrating (caller)
    domain — or on any domain not owned by a pool — and [1 .. domains-1]
    on workers.  Telemetry uses this to attribute work per domain
    without contention. *)

val tasks_per_domain : t -> int array
(** Tasks executed per pool slot (index 0 = the caller) since [create].
    Each slot is written only by its owning domain; read it from the
    orchestrating domain between batches. *)

val shutdown : t -> unit
(** Signal the workers to exit and join them all.  Idempotent.  The pool
    remains usable afterwards, degraded to inline execution. *)
