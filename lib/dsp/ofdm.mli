(** OFDM symbol processing (§IV-B).

    A wideband OFDM symbol stream is a sequence of vectors of length N
    (the subcarrier count), each padded with a cyclic prefix of length L to
    reduce inter-symbol interference.  The transmitter here generates the
    sample stream the paper's SRC actor models with random values; the
    receiver-side helpers implement the RCP (remove cyclic prefix) and FFT
    actors of Fig. 7. *)

type config = { n : int;  (** symbol length, power of two *) l : int  (** cyclic prefix length, 0 ≤ l ≤ n *) }

val config : n:int -> l:int -> config
(** @raise Invalid_argument on invalid dimensions. *)

val samples_per_symbol : config -> int
(** N + L. *)

val transmit_symbol : config -> Complex.t array -> Complex.t array
(** Frequency-domain vector of length N → time-domain samples of length
    N+L (IFFT plus cyclic prefix).  @raise Invalid_argument on length. *)

val remove_cyclic_prefix : config -> Complex.t array -> Complex.t array
(** The RCP actor: N+L samples → N samples. *)

val receive_symbol : config -> Complex.t array -> Complex.t array
(** RCP then FFT: N+L time-domain samples → N frequency-domain values. *)

val transmit_bits :
  ?pool:Tpdf_par.Pool.t ->
  config -> Modulation.scheme -> int array -> Complex.t array * int array
(** [transmit_bits cfg scheme bits] pads [bits] to fill a whole number of
    OFDM symbols, returning the serialized time-domain stream and the
    (padded) bit vector actually sent.  Symbols are modulated and
    IFFT-transformed in parallel under [pool]; the stream is identical to
    the sequential one. *)

val receive_bits :
  ?pool:Tpdf_par.Pool.t ->
  config -> Modulation.scheme -> Complex.t array -> int array
(** Demodulate a serialized stream produced by {!transmit_bits}.  The
    per-symbol FFT + demap runs batch-parallel under [pool]. *)
