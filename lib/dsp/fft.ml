let is_power_of_two n = n > 0 && n land (n - 1) = 0

(* Twiddle factors for one butterfly stage: w^k = e^(sign*2πik/len) for
   k < len/2.  Each entry comes straight from cos/sin instead of the
   classic w := w * wlen running product, whose rounding error compounds
   across the stage (~len accumulated ulps by the last butterfly). *)
let stage_twiddles ~sign len =
  let half = len / 2 in
  let step = sign *. 2.0 *. Float.pi /. float_of_int len in
  Array.init half (fun k ->
      let ang = step *. float_of_int k in
      { Complex.re = cos ang; im = sin ang })

(* In-place iterative radix-2 with bit-reversal permutation. *)
let transform ~inverse x =
  let n = Array.length x in
  if not (is_power_of_two n) then
    invalid_arg "Fft: length must be a positive power of two";
  let a = Array.copy x in
  (* Bit reversal. *)
  let j = ref 0 in
  for i = 0 to n - 2 do
    if i < !j then begin
      let t = a.(i) in
      a.(i) <- a.(!j);
      a.(!j) <- t
    end;
    let m = ref (n lsr 1) in
    while !m >= 1 && !j land !m <> 0 do
      j := !j lxor !m;
      m := !m lsr 1
    done;
    j := !j lor !m
  done;
  (* Butterflies, one precomputed twiddle table per stage. *)
  let sign = if inverse then 1.0 else -1.0 in
  let len = ref 2 in
  while !len <= n do
    let tw = stage_twiddles ~sign !len in
    let half = !len / 2 in
    let i = ref 0 in
    while !i < n do
      for k = 0 to half - 1 do
        let u = a.(!i + k) in
        let v = Complex.mul a.(!i + k + half) tw.(k) in
        a.(!i + k) <- Complex.add u v;
        a.(!i + k + half) <- Complex.sub u v
      done;
      i := !i + !len
    done;
    len := !len lsl 1
  done;
  if inverse then
    Array.map
      (fun c -> { Complex.re = c.Complex.re /. float_of_int n; im = c.Complex.im /. float_of_int n })
      a
  else a

let fft x = transform ~inverse:false x

let ifft x = transform ~inverse:true x

let dft_naive x =
  let n = Array.length x in
  Array.init n (fun k ->
      let acc = ref Complex.zero in
      for t = 0 to n - 1 do
        let ang = -2.0 *. Float.pi *. float_of_int k *. float_of_int t /. float_of_int n in
        acc :=
          Complex.add !acc
            (Complex.mul x.(t) { Complex.re = cos ang; im = sin ang })
      done;
      !acc)

let magnitude_spectrum x = Array.map Complex.norm x
