(** Fast Fourier transform on complex vectors.

    Iterative radix-2 Cooley-Tukey, used by the OFDM demodulator case study
    (the FFT actor of Fig. 7) and its matching transmitter.  Lengths must
    be powers of two (OFDM symbol lengths are 512 or 1024 in the paper).

    Each butterfly stage uses a table of twiddle factors computed directly
    from [cos]/[sin] rather than a running complex product, keeping the
    error of every butterfly at a few ulps independent of the transform
    length (the recurrence drifts linearly in the stage length). *)

val is_power_of_two : int -> bool

val fft : Complex.t array -> Complex.t array
(** Forward DFT.  @raise Invalid_argument unless the length is a positive
    power of two. *)

val ifft : Complex.t array -> Complex.t array
(** Inverse DFT, normalized by 1/n ([ifft (fft x) = x]). *)

val dft_naive : Complex.t array -> Complex.t array
(** O(n²) reference implementation (any length), for testing. *)

val magnitude_spectrum : Complex.t array -> float array
