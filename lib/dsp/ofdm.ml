type config = { n : int; l : int }

let config ~n ~l =
  if not (Fft.is_power_of_two n) then
    invalid_arg "Ofdm.config: N must be a power of two";
  if l < 0 || l > n then invalid_arg "Ofdm.config: need 0 <= L <= N";
  { n; l }

let samples_per_symbol cfg = cfg.n + cfg.l

let transmit_symbol cfg freq =
  if Array.length freq <> cfg.n then
    invalid_arg "Ofdm.transmit_symbol: expected N frequency values";
  let time = Fft.ifft freq in
  (* Cyclic prefix: the last L samples, prepended. *)
  Array.append (Array.sub time (cfg.n - cfg.l) cfg.l) time

let remove_cyclic_prefix cfg samples =
  if Array.length samples <> cfg.n + cfg.l then
    invalid_arg "Ofdm.remove_cyclic_prefix: expected N+L samples";
  Array.sub samples cfg.l cfg.n

let receive_symbol cfg samples = Fft.fft (remove_cyclic_prefix cfg samples)

(* Symbols are independent — each is its own (I)FFT — so a batch maps
   over a pool without any cross-symbol state.  Slots are filled in index
   order (or disjointly in parallel) and concatenated, so the stream is
   identical whatever the domain count. *)
let map_symbols ?pool n f =
  let out =
    match pool with
    | None -> Array.init n f
    | Some pool ->
        let out = Array.make n [||] in
        Tpdf_par.Pool.parallel_for pool ~lo:0 ~hi:n (fun s -> out.(s) <- f s);
        out
  in
  Array.concat (Array.to_list out)

let transmit_bits ?pool cfg scheme bits =
  let k = Modulation.bits_per_symbol scheme in
  let per_sym = cfg.n * k in
  let total =
    let n = Array.length bits in
    if n mod per_sym = 0 && n > 0 then n else ((n / per_sym) + 1) * per_sym
  in
  let padded = Array.make total 0 in
  Array.blit bits 0 padded 0 (Array.length bits);
  let nsym = total / per_sym in
  let stream =
    map_symbols ?pool nsym (fun s ->
        let chunk = Array.sub padded (s * per_sym) per_sym in
        transmit_symbol cfg (Modulation.modulate scheme chunk))
  in
  (stream, padded)

let receive_bits ?pool cfg scheme stream =
  let sps = samples_per_symbol cfg in
  let len = Array.length stream in
  if len mod sps <> 0 then
    invalid_arg "Ofdm.receive_bits: stream is not a whole number of symbols";
  let nsym = len / sps in
  map_symbols ?pool nsym (fun s ->
      let chunk = Array.sub stream (s * sps) sps in
      Modulation.demodulate scheme (receive_symbol cfg chunk))
