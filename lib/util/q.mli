(** Exact rational numbers on native integers.

    Values are kept in canonical form: the denominator is positive and
    numerator/denominator are coprime, so structural equality coincides with
    mathematical equality. *)

type t = private { num : int; den : int }
(** Canonical fraction [num/den], [den > 0], [gcd num den = 1]. *)

val make : int -> int -> t
(** [make num den] normalizes the fraction.  @raise Division_by_zero if
    [den = 0]. *)

val of_int : int -> t

val zero : t
val one : t
val minus_one : t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero when dividing by {!zero}. *)

val neg : t -> t
val inv : t -> t
(** @raise Division_by_zero on {!zero}. *)

val abs : t -> t

val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Deterministic across runs (content-derived); agrees with {!equal}. *)

val sign : t -> int
val is_zero : t -> bool
val is_integer : t -> bool

val to_int : t -> int
(** @raise Invalid_argument if the value is not an integer. *)

val to_float : t -> float

val gcd : t -> t -> t
(** Rational GCD: [gcd (a/b) (c/d) = gcd(a,c) / lcm(b,d)].  The largest
    rational dividing both arguments to integers. *)

val lcm : t -> t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(* Infix aliases, intended for local [let open Q.Infix in]. *)
module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( = ) : t -> t -> bool
  val ( < ) : t -> t -> bool
  val ( <= ) : t -> t -> bool
end
