type 'a hash_consed = { node : 'a; tag : int; hkey : int }

module type HashedType = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

module Make (H : HashedType) = struct
  module W = Weak.Make (struct
    type t = H.t hash_consed

    let equal a b = H.equal a.node b.node
    let hash a = a.hkey
  end)

  type t = {
    tbl : W.t;
    mutable next_tag : int;
    mutable hits : int;
    mutable misses : int;
  }

  let create n = { tbl = W.create (max 7 n); next_tag = 0; hits = 0; misses = 0 }

  let intern t node =
    let hkey = H.hash node land max_int in
    let candidate = { node; tag = t.next_tag; hkey } in
    let r = W.merge t.tbl candidate in
    if r == candidate then begin
      t.next_tag <- t.next_tag + 1;
      t.misses <- t.misses + 1
    end
    else t.hits <- t.hits + 1;
    r

  let count t = W.count t.tbl
  let hits t = t.hits
  let misses t = t.misses
  let clear t = W.clear t.tbl
end
