type t = { num : int; den : int }

let make num den =
  if den = 0 then raise Division_by_zero;
  let sign = if den < 0 then -1 else 1 in
  let num = sign * num and den = sign * den in
  let g = Intmath.gcd num den in
  if g = 0 then { num = 0; den = 1 } else { num = num / g; den = den / g }

let of_int n = { num = n; den = 1 }

let zero = of_int 0
let one = of_int 1
let minus_one = of_int (-1)

let add a b =
  (* Reduce before multiplying to keep intermediates small. *)
  let g = Intmath.gcd a.den b.den in
  let da = a.den / g and db = b.den / g in
  make
    (Intmath.add_exn (Intmath.mul_exn a.num db) (Intmath.mul_exn b.num da))
    (Intmath.mul_exn a.den db)

let neg a = { a with num = -a.num }

let sub a b = add a (neg b)

let mul a b =
  let g1 = Intmath.gcd a.num b.den and g2 = Intmath.gcd b.num a.den in
  let g1 = max g1 1 and g2 = max g2 1 in
  make
    (Intmath.mul_exn (a.num / g1) (b.num / g2))
    (Intmath.mul_exn (a.den / g2) (b.den / g1))

let inv a =
  if a.num = 0 then raise Division_by_zero;
  make a.den a.num

let div a b = mul a (inv b)

let abs a = { a with num = Stdlib.abs a.num }

let equal a b = a.num = b.num && a.den = b.den

let compare a b =
  Stdlib.compare (Intmath.mul_exn a.num b.den) (Intmath.mul_exn b.num a.den)

let hash a = (a.num * 65599) lxor a.den

let sign a = Stdlib.compare a.num 0

let is_zero a = a.num = 0

let is_integer a = a.den = 1

let to_int a =
  if a.den <> 1 then invalid_arg "Q.to_int: not an integer";
  a.num

let to_float a = float_of_int a.num /. float_of_int a.den

let gcd a b =
  if is_zero a then abs b
  else if is_zero b then abs a
  else make (Intmath.gcd a.num b.num) (Intmath.lcm a.den b.den)

let lcm a b =
  if is_zero a || is_zero b then zero
  else make (Intmath.lcm a.num b.num) (Intmath.gcd a.den b.den)

let pp ppf a =
  if a.den = 1 then Format.fprintf ppf "%d" a.num
  else Format.fprintf ppf "%d/%d" a.num a.den

let to_string a = Format.asprintf "%a" pp a

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( = ) = equal
  let ( < ) a b = compare a b < 0
  let ( <= ) a b = compare a b <= 0
end
