(* Flat circular FIFO buffer.  Elements live in a single preallocated
   array; [push]/[pop] move two integer cursors, so the steady state
   allocates nothing (unlike [Queue.t], which boxes one cell per
   element).  The buffer grows by doubling when full, so a capacity
   hint is an optimisation, never a correctness bound.  Vacated slots
   are overwritten with [dummy] so popped elements do not leak. *)

type 'a t = {
  dummy : 'a;
  mutable arr : 'a array;
  mutable head : int; (* index of the oldest element *)
  mutable len : int;
}

exception Empty

let create ?(capacity = 8) ~dummy () =
  let capacity = max capacity 1 in
  { dummy; arr = Array.make capacity dummy; head = 0; len = 0 }

let length t = t.len
let is_empty t = t.len = 0
let capacity t = Array.length t.arr

let grow t =
  let cap = Array.length t.arr in
  let arr' = Array.make (2 * cap) t.dummy in
  (* unroll the ring: oldest element lands at index 0 *)
  let tail = cap - t.head in
  Array.blit t.arr t.head arr' 0 (min t.len tail);
  if t.len > tail then Array.blit t.arr 0 arr' tail (t.len - tail);
  t.arr <- arr';
  t.head <- 0

let push t v =
  if t.len = Array.length t.arr then grow t;
  let cap = Array.length t.arr in
  let i = t.head + t.len in
  t.arr.(if i >= cap then i - cap else i) <- v;
  t.len <- t.len + 1

let pop t =
  if t.len = 0 then raise Empty;
  let v = t.arr.(t.head) in
  t.arr.(t.head) <- t.dummy;
  let h = t.head + 1 in
  t.head <- (if h = Array.length t.arr then 0 else h);
  t.len <- t.len - 1;
  v

let peek t = if t.len = 0 then raise Empty else t.arr.(t.head)

let clear t =
  Array.fill t.arr 0 (Array.length t.arr) t.dummy;
  t.head <- 0;
  t.len <- 0

let iter f t =
  let cap = Array.length t.arr in
  for k = 0 to t.len - 1 do
    let i = t.head + k in
    f t.arr.(if i >= cap then i - cap else i)
  done

let fold f acc t =
  let acc = ref acc in
  iter (fun v -> acc := f !acc v) t;
  !acc

let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)
