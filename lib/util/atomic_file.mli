(** Crash-consistent whole-file writes.

    [write path data] writes [data] to a [path ^ ".tmp"] sibling, fsyncs
    it, renames it over [path], then fsyncs the directory.  A crash at
    any point leaves either the previous complete file or the new
    complete file — never a torn mix.  This is the write path shared by
    [Tpdf_ckpt] (checkpoint files) and [Tpdf_obs.Openmetrics] (metric
    snapshot export); readers on the same filesystem always observe a
    complete snapshot.

    A stale [path ^ ".tmp"] left by an earlier crash is harmless: the
    next write truncates and replaces it. *)

val write : string -> string -> unit
(** @raise Unix.Unix_error on IO failure (the temp file may be left
    behind; a later retry truncates it). *)

val write_result : string -> string -> (unit, string) result
(** {!write} with every failure surfaced to the caller instead of
    raised: [Error] carries a one-line [errno: path] diagnosis.  This is
    the form long-running callers (the metrics exporter, the serve
    daemon) use — an unwritable export path must degrade to a counted
    error, not kill the process. *)

val fsync_dir : string -> unit
(** Best-effort fsync of a directory, for callers sequencing their own
    renames. *)
