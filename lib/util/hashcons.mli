(** Hash-consing: unique-table interning of immutable values.

    [intern] returns a canonical physical representative for every value
    that is [H.equal] to a previously interned one, so structural equality
    degrades to physical equality ([==]) for nodes from the same table and
    deep hashing degrades to reading the precomputed [hkey].  Tables hold
    their nodes weakly: nodes unreachable from outside the table are
    collected, and their tags are never reused (the counter is monotonic),
    so a tag is a process-unique identity usable as a memo key.

    [H.hash] must be deterministic across runs and domains (derive it from
    the value's content only, never from addresses or tags), because the
    [hkey] of composite nodes is typically folded into the hashes of the
    structures that contain them. *)

type 'a hash_consed = private { node : 'a; tag : int; hkey : int }

module type HashedType = sig
  type t

  val equal : t -> t -> bool

  val hash : t -> int
  (** Deterministic across runs and domains. *)
end

module Make (H : HashedType) : sig
  type t
  (** A unique table.  Not thread-safe: share per domain (e.g. via
      [Domain.DLS]), not across domains. *)

  val create : int -> t
  (** [create n] with initial capacity hint [n]. *)

  val intern : t -> H.t -> H.t hash_consed
  (** Canonical node for the value: physically the same result for
      [H.equal] inputs for as long as the node stays reachable. *)

  val count : t -> int
  (** Number of live interned nodes. *)

  val hits : t -> int
  (** Interning requests answered with an existing node. *)

  val misses : t -> int
  (** Interning requests that allocated a fresh node. *)

  val clear : t -> unit
  (** Drop every entry (tags keep increasing afterwards). *)
end
