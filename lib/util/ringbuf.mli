(** Flat circular FIFO buffer: a preallocated array and two cursors.

    Push/pop allocate nothing in the steady state — unlike [Queue.t],
    which boxes a cell per element — which is what makes fixed-rate
    dataflow channels allocation-free once warmed up.  When full the
    buffer doubles, so variable-rate channels work too; the initial
    [capacity] is only a hint.  [dummy] fills vacant slots so popped
    values are not retained by the buffer. *)

type 'a t = {
  dummy : 'a;
  mutable arr : 'a array;
  mutable head : int;  (** index of the oldest element *)
  mutable len : int;
}
(** The representation is exposed so the simulator's hot loops can
    hand-inline [push]/[pop] (ocamlopt without flambda keeps them as
    cross-module calls otherwise); treat it as read-only elsewhere.
    Invariant: the [len] live elements start at [head] and wrap around
    [arr]; vacant slots hold [dummy]. *)

exception Empty

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val capacity : 'a t -> int

val push : 'a t -> 'a -> unit
(** Append at the back; doubles the backing array when full. *)

val pop : 'a t -> 'a
(** Remove and return the oldest element.  @raise Empty when empty. *)

val peek : 'a t -> 'a
(** Return the oldest element without removing it.
    @raise Empty when empty. *)

val clear : 'a t -> unit
(** Drop every element (slots are reset to [dummy]); keeps capacity. *)

val iter : ('a -> unit) -> 'a t -> unit
(** Oldest-to-newest iteration. *)

val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val to_list : 'a t -> 'a list
