let fsync_dir dir =
  (* Make the rename itself durable.  Some filesystems refuse to fsync a
     directory fd; that only weakens durability, not consistency. *)
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd
  | exception Unix.Unix_error _ -> ()

let write path data =
  let dir = Filename.dirname path in
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let n = String.length data in
      let pos = ref 0 in
      while !pos < n do
        pos := !pos + Unix.write_substring fd data !pos (n - !pos)
      done;
      Unix.fsync fd);
  Unix.rename tmp path;
  fsync_dir dir

let write_result path data =
  match write path data with
  | () -> Ok ()
  | exception Unix.Unix_error (err, syscall, arg) ->
      Error
        (Printf.sprintf "%s: %s(%s)" (Unix.error_message err) syscall
           (if arg = "" then path else arg))
