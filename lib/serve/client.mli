(** Resilient request/response client: per-request deadlines,
    idempotency keys, and seeded jittered exponential backoff.

    The daemon's protocol is one line in, one line out — but the wire
    can tear a frame, stall, or drop the connection at any byte.  The
    client's contract makes one {e logical} request survive all of
    that: each attempt gets a fresh transport call bounded by a
    deadline; a failed attempt backs off (exponential, jittered from a
    seeded stream, so retry storms decorrelate deterministically) and
    re-sends the {e same} line.  Pairing the line with an idempotency
    key (["rid"] field, {!ensure_rid}) makes the re-send safe: the
    daemon caches the response per key and replays it byte-identically
    instead of re-executing the mutation, so a response lost on the
    wire never double-advances a tenant.

    The transport is abstract: {!socket_transport} speaks to a real
    daemon (one connection per attempt, immune to server-side drops),
    while tests and the E23 load generator plug in an in-process
    chaotic transport whose failures and delays are virtual — the whole
    retry schedule is then a pure function of the seeds. *)

type policy = {
  deadline_ms : float;  (** per-attempt response deadline (default 2000) *)
  retries : int;  (** re-sends after the first attempt (default 4) *)
  backoff_ms : float;  (** backoff base (default 25) *)
  backoff_max_ms : float;  (** backoff cap before jitter (default 1000) *)
  seed : int;  (** jitter stream seed (default 0) *)
}

val default_policy : policy

val backoff_ms : policy -> op:int -> attempt:int -> float
(** The jittered backoff before re-send [attempt] (1-based) of logical
    request [op]: [min (backoff_ms * 2^(attempt-1)) backoff_max_ms]
    scaled by a uniform draw in [\[0.5, 1.0)] keyed by
    [(seed, op, attempt)] — pure, so a whole retry schedule is
    reproducible from the seed. *)

type failure =
  | Timeout  (** no full response line within the attempt's deadline *)
  | Conn of string  (** connect/send/receive failure *)

(** One attempt's transport: send a request line, await one response
    line.  [sleep] is how backoff passes time — [Unix.sleepf] against a
    real daemon, a virtual-time accumulator in tests and benches. *)
type transport = {
  call : deadline_ms:float -> string -> (string, failure) result;
  sleep : float -> unit;  (** argument in milliseconds *)
}

type outcome = {
  response : (string, string) result;
      (** the response line, or the last attempt's failure *)
  attempts : int;  (** total attempts made (>= 1) *)
  slept_ms : float;  (** total backoff slept through [transport.sleep] *)
}

val call : policy -> transport -> op:int -> string -> outcome
(** Send one logical request line, retrying transport failures under
    the policy.  A well-formed response — even an error response — is
    never retried; only {!failure}s are. *)

val ensure_rid : string -> rid:string -> string
(** Add an ["rid"] idempotency key to a request line (parsed as JSON;
    returned unchanged if it already has one or is not an object). *)

val socket_transport : ?max_line_bytes:int -> Server.endpoint -> transport
(** One fresh connection per attempt: connect (bounded by the attempt
    deadline), send the line, read one newline-terminated response
    within the remaining deadline, close.  Responses longer than
    [max_line_bytes] (default 16 MiB) fail the attempt. *)
