module Prng = Tpdf_util.Prng

type kind =
  | Short_read of int
  | Short_write of int
  | Tear
  | Stall of float
  | Disconnect
  | Delay of float
  | Dup

type spec = { prob : float; kind : kind }

let spec ~prob kind =
  if not (prob >= 0.0 && prob <= 1.0) then
    invalid_arg "Netfault.spec: probability must be in [0, 1]";
  (match kind with
  | Short_read n | Short_write n ->
      if n <= 0 then invalid_arg "Netfault.spec: chunk must be positive"
  | Stall ms | Delay ms ->
      if ms < 0.0 then invalid_arg "Netfault.spec: negative delay"
  | Tear | Disconnect | Dup -> ());
  { prob; kind }

let kind_name = function
  | Short_read _ -> "shortread"
  | Short_write _ -> "shortwrite"
  | Tear -> "tear"
  | Stall _ -> "stall"
  | Disconnect -> "disconnect"
  | Delay _ -> "delay"
  | Dup -> "dup"

let specs_to_string specs =
  String.concat ","
    (List.map
       (fun s ->
         let arg =
           match s.kind with
           | Short_read n | Short_write n -> Printf.sprintf ":%d" n
           | Stall ms | Delay ms -> Printf.sprintf ":%g" ms
           | Tear | Disconnect | Dup -> ""
         in
         Printf.sprintf "%s:%g%s" (kind_name s.kind) s.prob arg)
       specs)

let parse_item item =
  let fields = String.split_on_char ':' (String.trim item) in
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  match fields with
  | kind :: prob :: rest -> (
      match float_of_string_opt prob with
      | None -> fail "probability: %S is not a number" prob
      | Some prob ->
          if not (prob >= 0.0 && prob <= 1.0) then
            fail "probability %g is outside [0, 1]" prob
          else
            let arg ~default =
              match rest with
              | [] -> Ok default
              | [ v ] -> (
                  match float_of_string_opt v with
                  | Some f when f >= 0.0 -> Ok f
                  | _ -> fail "%s: bad argument %S" kind v)
              | _ -> fail "%s: too many fields" kind
            in
            let no_arg k =
              match rest with
              | [] -> Ok { prob; kind = k }
              | _ -> fail "%s takes no argument" kind
            in
            let chunk k =
              Result.bind (arg ~default:1.0) (fun n ->
                  if n < 1.0 || Float.of_int (int_of_float n) <> n then
                    fail "%s: argument must be a positive integer" kind
                  else Ok { prob; kind = k (int_of_float n) })
            in
            (match kind with
            | "shortread" -> chunk (fun n -> Short_read n)
            | "shortwrite" -> chunk (fun n -> Short_write n)
            | "tear" -> no_arg Tear
            | "stall" ->
                Result.map (fun ms -> { prob; kind = Stall ms })
                  (arg ~default:10.0)
            | "disconnect" -> no_arg Disconnect
            | "delay" ->
                Result.map (fun ms -> { prob; kind = Delay ms })
                  (arg ~default:5.0)
            | "dup" -> no_arg Dup
            | _ ->
                fail
                  "unknown network fault kind %S (expected shortread, \
                   shortwrite, tear, stall, disconnect, delay or dup)"
                  kind))
  | _ -> fail "expected KIND:PROB[:ARG], got %S" item

let parse_specs s =
  let items =
    List.filter (fun i -> String.trim i <> "") (String.split_on_char ',' s)
  in
  if items = [] then Error "empty network fault spec"
  else
    List.fold_left
      (fun acc item ->
        Result.bind acc (fun specs ->
            Result.map (fun s -> s :: specs) (parse_item item)))
      (Ok []) items
    |> Result.map List.rev

type t = { n_seed : int; n_specs : spec list }

let make ~seed specs = { n_seed = seed; n_specs = specs }
let none = { n_seed = 0; n_specs = [] }
let is_none t = t.n_specs = []
let seed t = t.n_seed
let specs t = t.n_specs

let pp ppf t =
  Format.fprintf ppf "seed=%d %s" t.n_seed (specs_to_string t.n_specs)

type verdict = {
  v_chunk : int option;
  v_tear_at : int option;
  v_drop : bool;
  v_dup : bool;
  v_delay_ms : float;
}

let clean =
  { v_chunk = None; v_tear_at = None; v_drop = false; v_dup = false;
    v_delay_ms = 0.0 }

(* Same keying idiom as Tpdf_fault.Plan: FNV-1a over a label folded
   into the seed, then the operation index, seeding an independent
   splitmix64 stream per (conn, op). *)
let fnv_prime = 0x100000001B3L

let fnv h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let op_rng t ~conn ~op =
  let h = fnv (Int64.of_int t.n_seed) (Printf.sprintf "conn%d" conn) in
  let h = Int64.mul (Int64.logxor h (Int64.of_int op)) fnv_prime in
  Prng.create (Int64.to_int h)

let verdict t ~conn ~op ~len =
  match t.n_specs with
  | [] -> clean
  | specs ->
      let rng = op_rng t ~conn ~op in
      List.fold_left
        (fun v (s : spec) ->
          (* Draw for every spec, firing or not, so editing one spec
             never shifts another spec's stream; Tear consumes its
             position draw likewise. *)
          let u = Prng.float rng 1.0 in
          let fired = u < s.prob in
          match s.kind with
          | Tear ->
              let at = if len > 0 then Prng.int rng len else 0 in
              if fired then { v with v_tear_at = Some at } else v
          | Short_read n | Short_write n ->
              if fired then
                { v with
                  v_chunk =
                    Some (match v.v_chunk with Some m -> min m n | None -> n)
                }
              else v
          | Stall ms | Delay ms ->
              let d = Prng.float rng ms in
              if fired then { v with v_delay_ms = v.v_delay_ms +. d } else v
          | Disconnect -> if fired then { v with v_drop = true } else v
          | Dup -> if fired then { v with v_dup = true } else v)
        clean specs

module Io = struct
  type conn = {
    plan : t;
    id : int;
    c_fd : Unix.file_descr;
    mutable rops : int;
    mutable wops : int;
  }

  let wrap plan ~conn fd = { plan; id = conn; c_fd = fd; rops = 0; wops = 0 }
  let fd c = c.c_fd

  let sleep_ms ms = if ms > 0.0 then Unix.sleepf (ms /. 1000.0)

  let reset syscall =
    raise (Unix.Unix_error (Unix.ECONNRESET, syscall, "injected"))

  (* Reads draw at even op indices, writes at odd: the two directions
     never share a stream, so e.g. an extra read retry cannot shift
     which response gets torn. *)
  let read c buf pos len =
    if is_none c.plan then Unix.read c.c_fd buf pos len
    else begin
      let v = verdict c.plan ~conn:c.id ~op:(2 * c.rops) ~len in
      c.rops <- c.rops + 1;
      sleep_ms v.v_delay_ms;
      if v.v_drop then reset "read";
      let len = match v.v_chunk with Some n -> min n len | None -> len in
      Unix.read c.c_fd buf pos (max 1 len)
    end

  let write_substring c data pos len =
    if is_none c.plan then Unix.write_substring c.c_fd data pos len
    else begin
      let v = verdict c.plan ~conn:c.id ~op:((2 * c.wops) + 1) ~len in
      c.wops <- c.wops + 1;
      sleep_ms v.v_delay_ms;
      if v.v_drop then reset "write";
      (match v.v_tear_at with
      | Some at ->
          (* Push the prefix out, then reset: the peer sees a torn
             frame with no terminator. *)
          let torn = min at len in
          let written = ref 0 in
          while !written < torn do
            written :=
              !written
              + Unix.write_substring c.c_fd data (pos + !written)
                  (torn - !written)
          done;
          reset "write"
      | None -> ());
      if v.v_dup then begin
        (* Deliver the whole window twice, reporting the single-copy
           count so the caller's short-write loop terminates normally. *)
        let put () =
          let written = ref 0 in
          while !written < len do
            written :=
              !written
              + Unix.write_substring c.c_fd data (pos + !written)
                  (len - !written)
          done
        in
        put ();
        put ();
        len
      end
      else
        let len = match v.v_chunk with Some n -> min n len | None -> len in
        Unix.write_substring c.c_fd data pos (max 1 len)
    end
end
