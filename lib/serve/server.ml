type endpoint = Unix_path of string | Tcp of string * int

let parse_tcp ~orig spec =
  match String.rindex_opt spec ':' with
  | Some i -> (
      let host = String.sub spec 0 i in
      let port = String.sub spec (i + 1) (String.length spec - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 && host <> "" -> Ok (Tcp (host, p))
      | _ ->
          Error
            (Printf.sprintf "bad endpoint %S: expected tcp:HOST:PORT" orig))
  | None ->
      Error (Printf.sprintf "bad endpoint %S: expected tcp:HOST:PORT" orig)

let strip_prefix prefix s =
  let np = String.length prefix in
  if String.length s > np && String.sub s 0 np = prefix then
    Some (String.sub s np (String.length s - np))
  else None

let parse_endpoint s =
  if s = "" then Error "empty endpoint"
  else
    match strip_prefix "tcp:" s with
    | Some spec -> parse_tcp ~orig:s spec
    | None -> (
        match strip_prefix "unix:" s with
        | Some path -> Ok (Unix_path path)
        | None -> (
            (* No scheme: HOST:PORT with a numeric port is TCP, anything
               else is a Unix socket path. *)
            match String.rindex_opt s ':' with
            | Some i -> (
                let host = String.sub s 0 i in
                let port = String.sub s (i + 1) (String.length s - i - 1) in
                match int_of_string_opt port with
                | Some p when p > 0 && p < 65536 && host <> "" ->
                    Ok (Tcp (host, p))
                | _ ->
                    if String.contains s '/' then Ok (Unix_path s)
                    else
                      Error
                        (Printf.sprintf
                           "bad endpoint %S: expected PATH or HOST:PORT" s))
            | None -> Ok (Unix_path s)))

let sockaddr_of = function
  | Unix_path path -> Ok (Unix.ADDR_UNIX path)
  | Tcp (host, port) -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
          Error (Printf.sprintf "no address for host %S" host)
      | h -> Ok (Unix.ADDR_INET (h.Unix.h_addr_list.(0), port))
      | exception Not_found ->
          Error (Printf.sprintf "unknown host %S" host))

(* ---------- server ---------- *)

type limits = {
  max_conns : int;
  max_line_bytes : int;
  read_deadline_ms : float;
  conn_bytes : int;
  conn_ms : float;
}

let default_limits =
  {
    max_conns = 64;
    max_line_bytes = 1024 * 1024;
    read_deadline_ms = 10_000.0;
    conn_bytes = 0;
    conn_ms = 0.0;
  }

type conn = {
  io : Netfault.Io.conn;
  buf : Buffer.t;
  opened : float;  (** [now_ms] at accept *)
  mutable last : float;  (** [now_ms] at the last byte received *)
  mutable bytes_in : int;
}

let now_ms () = Unix.gettimeofday () *. 1000.0

let err_line ~code msg =
  Json.to_string (Protocol.err ~id:Json.Null ~code msg)

let serve ?(limits = default_limits) ?(netfault = Netfault.none) daemon
    endpoint =
  match sockaddr_of endpoint with
  | Error e -> Error e
  | Ok addr -> (
      (* A dead client must surface as EPIPE on write, not kill us. *)
      (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
       with Invalid_argument _ -> ());
      (match endpoint with
      | Unix_path path when Sys.file_exists path -> (
          try Unix.unlink path with Unix.Unix_error _ -> ())
      | _ -> ());
      let listen_fd =
        Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0
      in
      match
        Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
        Unix.bind listen_fd addr;
        Unix.listen listen_fd 64
      with
      | exception Unix.Unix_error (err, syscall, _) ->
          (try Unix.close listen_fd with Unix.Unix_error _ -> ());
          Error
            (Printf.sprintf "cannot listen: %s: %s" syscall
               (Unix.error_message err))
      | () ->
          let bump name = Tpdf_obs.Metrics.incr (Daemon.metrics daemon) name in
          let conns = ref [] in
          let next_conn = ref 0 in
          let fd_of c = Netfault.Io.fd c.io in
          let alive c = List.exists (fun c' -> c' == c) !conns in
          let drop c =
            conns := List.filter (fun c' -> c' != c) !conns;
            try Unix.close (fd_of c) with Unix.Unix_error _ -> ()
          in
          (* Loop on short writes; EINTR retries, EAGAIN waits for the
             socket to drain, any other error (EPIPE, ECONNRESET, ...)
             is that one connection's death — never the daemon's. *)
          let send_line c line =
            let data = line ^ "\n" in
            let n = String.length data in
            let rec wr pos =
              if pos >= n then true
              else
                match Netfault.Io.write_substring c.io data pos (n - pos) with
                | k -> wr (pos + k)
                | exception Unix.Unix_error (Unix.EINTR, _, _) -> wr pos
                | exception
                    Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
                  ->
                    (match Unix.select [] [ fd_of c ] [] 1.0 with
                    | _ -> ()
                    | exception Unix.Unix_error _ -> ());
                    wr pos
                | exception Unix.Unix_error _ -> false
            in
            if not (wr 0) then begin
              bump "serve.conn_errors";
              drop c
            end
          in
          let refuse c code msg counter =
            bump counter;
            send_line c (err_line ~code msg);
            if alive c then drop c
          in
          (* Consume every complete line buffered for this connection. *)
          let rec pump c =
            let data = Buffer.contents c.buf in
            match String.index_opt data '\n' with
            | None ->
                if
                  limits.max_line_bytes > 0
                  && String.length data > limits.max_line_bytes
                then
                  refuse c "too_large"
                    (Printf.sprintf
                       "request line exceeds %d bytes without a terminator"
                       limits.max_line_bytes)
                    "serve.too_large"
            | Some i ->
                let line = String.sub data 0 i in
                Buffer.clear c.buf;
                Buffer.add_substring c.buf data (i + 1)
                  (String.length data - i - 1);
                if
                  limits.max_line_bytes > 0
                  && String.length line > limits.max_line_bytes
                then
                  refuse c "too_large"
                    (Printf.sprintf "request line exceeds %d bytes"
                       limits.max_line_bytes)
                    "serve.too_large"
                else begin
                  let line = String.trim line in
                  if line <> "" then
                    send_line c (Daemon.handle_line daemon line);
                  if (not (Daemon.stopping daemon)) && alive c then pump c
                end
          in
          (* Per-round budget sweep: cut stalled mid-frame connections
             (slow-loris) and connections past their byte/time budget. *)
          let sweep () =
            let now = now_ms () in
            List.iter
              (fun c ->
                if not (alive c) then ()
                else if limits.conn_ms > 0.0 && now -. c.opened > limits.conn_ms
                then
                  refuse c "conn_budget" "connection time budget exhausted"
                    "serve.conn_budget_cut"
                else if
                  limits.read_deadline_ms > 0.0
                  && Buffer.length c.buf > 0
                  && now -. c.last > limits.read_deadline_ms
                then begin
                  (* The frame is incomplete, so no reply can be framed:
                     just cut the stall. *)
                  bump "serve.stall_cut";
                  drop c
                end)
              !conns
          in
          let chunk = Bytes.create 65536 in
          (try
             while not (Daemon.stopping daemon) do
               let fds = listen_fd :: List.map fd_of !conns in
               (match Unix.select fds [] [] 1.0 with
               | readable, _, _ ->
                   List.iter
                     (fun fd ->
                       if fd == listen_fd then begin
                         match Unix.accept listen_fd with
                         | client, _ ->
                             let now = now_ms () in
                             let id = !next_conn in
                             Stdlib.incr next_conn;
                             let c =
                               {
                                 io = Netfault.Io.wrap netfault ~conn:id client;
                                 buf = Buffer.create 256;
                                 opened = now;
                                 last = now;
                                 bytes_in = 0;
                               }
                             in
                             if
                               limits.max_conns > 0
                               && List.length !conns >= limits.max_conns
                             then begin
                               (* Register so the error line goes through
                                  the normal short-write path, then cut. *)
                               conns := c :: !conns;
                               refuse c "overloaded"
                                 (Printf.sprintf
                                    "connection limit %d reached"
                                    limits.max_conns)
                                 "serve.conn_overflow"
                             end
                             else conns := c :: !conns
                         | exception Unix.Unix_error _ -> ()
                       end
                       else
                         match
                           List.find_opt (fun c -> fd_of c == fd) !conns
                         with
                         | None -> ()
                         | Some c -> (
                             match
                               Netfault.Io.read c.io chunk 0
                                 (Bytes.length chunk)
                             with
                             | 0 -> drop c
                             | n ->
                                 c.last <- now_ms ();
                                 c.bytes_in <- c.bytes_in + n;
                                 Buffer.add_subbytes c.buf chunk 0 n;
                                 if
                                   limits.conn_bytes > 0
                                   && c.bytes_in > limits.conn_bytes
                                 then
                                   refuse c "conn_budget"
                                     (Printf.sprintf
                                        "connection byte budget %d exhausted"
                                        limits.conn_bytes)
                                     "serve.conn_budget_cut"
                                 else pump c
                             | exception Unix.Unix_error (Unix.EINTR, _, _)
                               ->
                                 ()
                             | exception Unix.Unix_error _ ->
                                 bump "serve.conn_errors";
                                 drop c))
                     readable
               | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
               sweep ()
             done
           with e ->
             List.iter (fun c -> try Unix.close (fd_of c) with _ -> ()) !conns;
             (try Unix.close listen_fd with _ -> ());
             raise e);
          List.iter (fun c -> try Unix.close (fd_of c) with _ -> ()) !conns;
          (try Unix.close listen_fd with Unix.Unix_error _ -> ());
          (match endpoint with
          | Unix_path path -> (
              try Unix.unlink path with Unix.Unix_error _ -> ())
          | _ -> ());
          Daemon.persist daemon;
          Ok ())

(* ---------- client ---------- *)

let connect ?(timeout_ms = 5000.0) endpoint =
  match sockaddr_of endpoint with
  | Error e -> Error e
  | Ok addr ->
      let deadline = Unix.gettimeofday () +. (timeout_ms /. 1000.0) in
      let rec attempt () =
        let fd = Unix.socket (Unix.domain_of_sockaddr addr) Unix.SOCK_STREAM 0 in
        match Unix.connect fd addr with
        | () -> Ok fd
        | exception Unix.Unix_error (err, _, _) ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            if Unix.gettimeofday () < deadline then begin
              ignore (Unix.select [] [] [] 0.05);
              attempt ()
            end
            else
              Error
                (Printf.sprintf "cannot connect: %s" (Unix.error_message err))
      in
      attempt ()

let with_io fd f =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> f ic oc)

let roundtrip ic oc line =
  match
    output_string oc line;
    output_char oc '\n';
    flush oc;
    input_line ic
  with
  | resp -> Ok resp
  | exception End_of_file -> Error "connection closed by the daemon"
  | exception Sys_error e -> Error e

let request endpoint line =
  match connect endpoint with
  | Error e -> Error e
  | Ok fd -> with_io fd (fun ic oc -> roundtrip ic oc line)

let session endpoint ?(connect_timeout_ms = 5000.0) input output =
  match connect ~timeout_ms:connect_timeout_ms endpoint with
  | Error e -> Error e
  | Ok fd ->
      with_io fd (fun ic oc ->
          let rec loop () =
            match input_line input with
            | exception End_of_file -> Ok ()
            | line ->
                let line = String.trim line in
                if line = "" || String.length line > 0 && line.[0] = '#' then
                  loop ()
                else
                  match roundtrip ic oc line with
                  | Ok resp ->
                      output_string output resp;
                      output_char output '\n';
                      flush output;
                      loop ()
                  | Error e -> Error e
          in
          loop ())
