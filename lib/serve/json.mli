(** Minimal JSON for the serving protocol.

    The daemon speaks line-delimited JSON over a socket; the repo has no
    JSON dependency, so this is a small self-contained value type with a
    recursive-descent parser and a canonical printer.  The printer is
    deterministic — object fields render in the order given, numbers
    have one canonical spelling — so byte-comparing protocol transcripts
    is meaningful (the serve tests and `make serve-smoke` rely on it). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact canonical rendering (no insignificant whitespace, fields in
    list order).  Strings are escaped per RFC 8259; non-finite floats
    render as [null] (JSON has no spelling for them). *)

val of_string : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed; trailing
    garbage is an error).  Numbers without [.]/[e] that fit in [int]
    parse as [Int], everything else as [Float]. *)

val member : string -> t -> t option
(** First binding of the field in an [Obj]; [None] otherwise. *)
