let ok ~id fields = Json.Obj ((("id", id) :: ("ok", Json.Bool true) :: fields))

let err ~id ~code ?retry_after_ms ?(fields = []) msg =
  let error =
    [ ("code", Json.String code); ("msg", Json.String msg) ]
    @
    match retry_after_ms with
    | Some ms -> [ ("retry_after_ms", Json.Int ms) ]
    | None -> []
  in
  Json.Obj
    ((("id", id) :: ("ok", Json.Bool false) :: fields)
    @ [ ("error", Json.Obj error) ])

let id_of req = match Json.member "id" req with Some v -> v | None -> Json.Null

let opt_string req key =
  match Json.member key req with
  | None | Some Json.Null -> Ok None
  | Some (Json.String s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S must be a string" key)

let req_string req key =
  match opt_string req key with
  | Ok (Some s) -> Ok s
  | Ok None -> Error (Printf.sprintf "missing field %S" key)
  | Error e -> Error e

let opt_int req key =
  match Json.member key req with
  | None | Some Json.Null -> Ok None
  | Some (Json.Int n) -> Ok (Some n)
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" key)

let opt_float req key =
  match Json.member key req with
  | None | Some Json.Null -> Ok None
  | Some (Json.Int n) -> Ok (Some (float_of_int n))
  | Some (Json.Float f) -> Ok (Some f)
  | Some _ -> Error (Printf.sprintf "field %S must be a number" key)

let opt_bool req key =
  match Json.member key req with
  | None | Some Json.Null -> Ok None
  | Some (Json.Bool b) -> Ok (Some b)
  | Some _ -> Error (Printf.sprintf "field %S must be a boolean" key)

let opt_params req key =
  match Json.member key req with
  | None | Some Json.Null -> Ok []
  | Some (Json.Obj fields) ->
      List.fold_left
        (fun acc (k, v) ->
          match (acc, v) with
          | Error e, _ -> Error e
          | Ok acc, Json.Int n when n > 0 -> Ok ((k, n) :: acc)
          | Ok _, _ ->
              Error
                (Printf.sprintf
                   "field %S: parameter %S must be a positive integer" key k))
        (Ok []) fields
      |> Result.map List.rev
  | Some _ -> Error (Printf.sprintf "field %S must be an object" key)

let opt_string_map req key =
  match Json.member key req with
  | None | Some Json.Null -> Ok []
  | Some (Json.Obj fields) ->
      List.fold_left
        (fun acc (k, v) ->
          match (acc, v) with
          | Error e, _ -> Error e
          | Ok acc, Json.Int n -> Ok ((k, float_of_int n) :: acc)
          | Ok acc, Json.Float f -> Ok ((k, f) :: acc)
          | Ok _, _ ->
              Error
                (Printf.sprintf "field %S: entry %S must be a number" key k))
        (Ok []) fields
      |> Result.map List.rev
  | Some _ -> Error (Printf.sprintf "field %S must be an object" key)
