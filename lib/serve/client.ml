module Prng = Tpdf_util.Prng

type policy = {
  deadline_ms : float;
  retries : int;
  backoff_ms : float;
  backoff_max_ms : float;
  seed : int;
}

let default_policy =
  {
    deadline_ms = 2000.0;
    retries = 4;
    backoff_ms = 25.0;
    backoff_max_ms = 1000.0;
    seed = 0;
  }

(* FNV-1a keying, as in Netfault and Tpdf_fault.Plan: the jitter for
   (op, attempt) is an independent pure draw. *)
let fnv_prime = 0x100000001B3L

let fnv h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  !h

let backoff_ms p ~op ~attempt =
  let base =
    Float.min (p.backoff_ms *. Float.pow 2.0 (float_of_int (attempt - 1)))
      p.backoff_max_ms
  in
  let h = fnv (Int64.of_int p.seed) (Printf.sprintf "op%d" op) in
  let h = Int64.mul (Int64.logxor h (Int64.of_int attempt)) fnv_prime in
  let rng = Prng.create (Int64.to_int h) in
  base *. (0.5 +. Prng.float rng 0.5)

type failure = Timeout | Conn of string

type transport = {
  call : deadline_ms:float -> string -> (string, failure) result;
  sleep : float -> unit;
}

type outcome = {
  response : (string, string) result;
  attempts : int;
  slept_ms : float;
}

let describe = function
  | Timeout -> "request timed out"
  | Conn e -> e

let call p transport ~op line =
  let slept = ref 0.0 in
  let rec attempt n =
    match transport.call ~deadline_ms:p.deadline_ms line with
    | Ok resp ->
        { response = Ok resp; attempts = n; slept_ms = !slept }
    | Error f ->
        if n > p.retries then
          { response = Error (describe f); attempts = n; slept_ms = !slept }
        else begin
          let ms = backoff_ms p ~op ~attempt:n in
          slept := !slept +. ms;
          transport.sleep ms;
          attempt (n + 1)
        end
  in
  attempt 1

let ensure_rid line ~rid =
  match Json.of_string line with
  | Ok (Json.Obj fields) when not (List.mem_assoc "rid" fields) ->
      Json.to_string (Json.Obj (("rid", Json.String rid) :: fields))
  | _ -> line

(* ---------- socket transport ---------- *)

let now_ms () = Unix.gettimeofday () *. 1000.0

(* Read one newline-terminated line from [fd] before [deadline] (an
   absolute now_ms instant), without over-reading past the newline —
   the connection is closed after each attempt anyway, but byte-exact
   framing keeps the code honest. *)
let recv_line ~max_line_bytes fd deadline =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    let remaining = (deadline -. now_ms ()) /. 1000.0 in
    if remaining <= 0.0 then Error Timeout
    else
      match Unix.select [ fd ] [] [] remaining with
      | [], _, _ -> Error Timeout
      | _ -> (
          match Unix.read fd chunk 0 (Bytes.length chunk) with
          | 0 -> Error (Conn "connection closed by the daemon")
          | n -> (
              Buffer.add_subbytes buf chunk 0 n;
              if Buffer.length buf > max_line_bytes then
                Error (Conn "response line too long")
              else
                let data = Buffer.contents buf in
                match String.index_opt data '\n' with
                | Some i -> Ok (String.sub data 0 i)
                | None -> go ())
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
          | exception Unix.Unix_error (e, _, _) ->
              Error (Conn (Unix.error_message e)))
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
  in
  go ()

let send_line fd line deadline =
  let data = line ^ "\n" in
  let n = String.length data in
  let rec wr pos =
    if pos >= n then Ok ()
    else if now_ms () > deadline then Error Timeout
    else
      match Unix.write_substring fd data pos (n - pos) with
      | k -> wr (pos + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> wr pos
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ignore (Unix.select [] [ fd ] [] 0.05);
          wr pos
      | exception Unix.Unix_error (e, _, _) ->
          Error (Conn (Unix.error_message e))
  in
  wr 0

let socket_transport ?(max_line_bytes = 16 * 1024 * 1024) endpoint =
  let call ~deadline_ms line =
    let deadline = now_ms () +. deadline_ms in
    match Server.connect ~timeout_ms:deadline_ms endpoint with
    | Error e -> Error (Conn e)
    | Ok fd ->
        Fun.protect
          ~finally:(fun () ->
            try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            match send_line fd line deadline with
            | Error f -> Error f
            | Ok () -> recv_line ~max_line_bytes fd deadline)
  in
  { call; sleep = (fun ms -> if ms > 0.0 then Unix.sleepf (ms /. 1000.0)) }
