(** Tenant registry: the daemon's table of hosted graph instances and
    their crash-consistent persistence.

    A tenant is, between requests, plain data: its immutable submit-time
    configuration ({!cfg}), the current valuation, and the newest
    {!Tpdf_fault.Supervisor.checkpoint} — always taken at an iteration
    boundary, so no engine snapshot travels with it.  A {e cold}
    (evicted) tenant drops even that and lives only in its checkpoint
    store until the next touch revives it.

    Persistence layout under the daemon state directory:
    {ul
    {- [tenants/<name>/ckpt-<seq>.tpdfckpt] — one [serve-tenant]
       checkpoint per persisted boundary ([seq] = iterations done); the
       newest valid file wins, the previous one is kept as the
       torn-write fallback, older ones are pruned;}
    {- [manifest/ckpt-<seq>.tpdfckpt] — the [serve-manifest]: every
       tenant's status line, the admission queue order and the fleet
       counters, rewritten after each mutating request.}}

    Recovery invariant: the manifest names the fleet, each tenant file
    is authoritative for that tenant's progress, and a tenant file is
    never older than its manifest row (tenant saves precede the manifest
    save in every request) — so [kill -9] at any byte offset restores a
    state the daemon actually passed through. *)

open Tpdf_core
module Fault = Tpdf_fault

type cfg = {
  c_graph : Graph.t;
  c_src : string;  (** canonical [Serial] rendering of [c_graph] *)
  c_seed : int;
  c_faults : string;  (** canonical fault-spec string; [""] = none *)
  c_specs : Fault.Fault.spec list;
  c_retries : int;
  c_backoff_ms : float;
  c_degrade_after : int;
  c_max_restarts : int;
  c_deadlines_ms : (string * float) list;
  c_deadline_ms : float option;  (** admission deadline *)
  c_budget : int option;  (** admission per-iteration firing budget *)
}

(** In-memory half of a resident tenant. *)
type hot = {
  h_cfg : cfg;
  mutable h_val : Tpdf_param.Valuation.t;
  mutable h_ck : Fault.Supervisor.checkpoint option;
      (** [None] before the first advance *)
}

(** [Migrating addr]: this daemon still owns the tenant but is moving
    it to the daemon at [addr] (two-phase handoff, source side).
    [Prepared addr]: this daemon holds an offered copy from the daemon
    at [addr] but does {e not} own it yet — the copy becomes [Running]
    only at commit, and is dropped on abort.  Both survive restarts so
    an interrupted handoff can be resolved. *)
type status =
  | Running
  | Queued
  | Quarantined of string
  | Migrating of string
  | Prepared of string

type tenant = {
  t_name : string;
  mutable t_status : status;
  mutable t_done : int;  (** iterations completed *)
  mutable t_cost : int;  (** admission cost (firings / iteration) *)
  mutable t_period_ms : float;  (** admission MCR bound *)
  mutable t_skips : int;  (** cumulative substituted firings *)
  mutable t_hot : hot option;  (** [None] = evicted to checkpoint *)
  mutable t_touch : int;  (** LRU clock at last touch *)
  mutable t_persisted : int;  (** [t_done] at last persist; -1 = never *)
}

val owned : tenant -> bool
(** Whether this daemon is the tenant's owner: true for every status
    except [Prepared] (an uncommitted offered copy). *)

type t

val create : ?dir:string -> unit -> t
(** Empty registry; [dir] enables persistence (created on demand). *)

val dir : t -> string option
val find : t -> string -> tenant option
val add : t -> tenant -> unit
val remove : t -> string -> unit
(** Drops the tenant from the table, the queue and — when persistent —
    its on-disk store, so a later submit under the same name starts
    fresh. *)

val names : t -> string list
(** Sorted. *)

val tenants : t -> tenant list
(** In sorted name order. *)

val count : t -> int
val touch : t -> tenant -> unit

val queue : t -> string list
(** Admission queue, oldest first. *)

val enqueue : t -> string -> unit
val dequeue_if : t -> (tenant -> bool) -> tenant list
(** Promote the longest-queued tenants while the predicate accepts the
    head — strict FIFO, no reordering — marking them [Running]. *)

val running_cost : t -> int
(** Sum of [t_cost] over [Running] and [Migrating] tenants (resident or
    cold) — a migrating tenant still occupies its source's capacity
    until the handoff commits. *)

val export : tenant -> (string, string) result
(** The tenant's boundary state as a portable [serve-tenant] checkpoint
    string ({!Tpdf_ckpt.Ckpt.to_string}: checksummed, byte-stable).
    Fails when the tenant is cold. *)

val install :
  t -> name:string -> status:status -> string -> (tenant, string) result
(** Install an {!export}ed checkpoint string as tenant [name] with the
    given status, replacing any existing record under that name: the
    migration destination's half of the transfer.  Validates the
    checksum, kind and embedded name, makes the tenant resident, and
    persists it when the registry has a directory. *)

val mk_tenant : name:string -> cfg:cfg -> valuation:Tpdf_param.Valuation.t ->
  cost:int -> period_ms:float -> status:status -> tenant

val save_tenant : t -> tenant -> unit
(** Persist a resident tenant's boundary checkpoint (no-op when the
    registry has no directory or the tenant is cold). *)

val save_manifest : t -> counters:(string * int) list -> unit

val load : dir:string -> (t * (string * int) list, string) result
(** Restore a registry from the newest valid manifest: tenants come back
    cold, the queue and statuses as persisted; returns the saved fleet
    counters.  [Ok] with an empty registry when no manifest exists. *)

val revive : t -> tenant -> (hot, string) result
(** Load a cold tenant's newest valid checkpoint, adopt its progress
    (authoritative over the manifest row) and make it resident.
    Resident tenants return their existing {!hot}. *)

val evict : t -> tenant -> (unit, string) result
(** Persist then drop the in-memory half.  Fails without a directory. *)

val resident : t -> int
(** Number of resident (hot) tenants. *)
