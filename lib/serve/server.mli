(** Socket front end: a thin line pump around {!Daemon}.

    The daemon listens on a Unix-domain socket (or TCP on loopback),
    reads newline-delimited JSON requests per connection, and answers
    each with one response line in order.  The loop is single-threaded
    [select]-based — requests from all connections are serialized into
    the daemon, which keeps the protocol deterministic and the daemon
    free of locks.  A client disconnect mid-request never disturbs
    other connections; [kill -9] of the whole process is the crash the
    state directory is designed for. *)

type endpoint = Unix_path of string | Tcp of string * int

val parse_endpoint : string -> (endpoint, string) result
(** ["tcp:host:port"] is TCP and ["unix:path"] a Unix-domain socket
    path, explicitly.  Without a scheme, ["host:port"] (with a numeric
    port) is TCP and anything else a socket path. *)

(** Hardening knobs for the accept loop.  A violation costs exactly one
    connection — the offender gets a framed error line where one can
    still be framed ([too_large], [conn_budget], [overloaded]) and is
    closed; every other connection is untouched. *)
type limits = {
  max_conns : int;  (** accepted connections; 0 = unlimited (default 64) *)
  max_line_bytes : int;
      (** longest request line, terminated or not; 0 = unlimited
          (default 1 MiB) — bounds per-connection buffering *)
  read_deadline_ms : float;
      (** cut a connection stalled {e mid-frame} this long (slow-loris);
          0 = never (default 10000) *)
  conn_bytes : int;  (** lifetime inbound bytes; 0 = unlimited (default) *)
  conn_ms : float;  (** lifetime wall budget; 0 = unlimited (default) *)
}

val default_limits : limits

val serve :
  ?limits:limits -> ?netfault:Netfault.t -> Daemon.t -> endpoint ->
  (unit, string) result
(** Bind, listen and pump requests until a [shutdown] request flips
    {!Daemon.stopping}.  A pre-existing Unix socket path is replaced.
    Persists the daemon once more on orderly exit.  [netfault] wraps
    every accepted connection in {!Netfault.Io} — chaos testing against
    a real daemon with reproducible wire faults. *)

val connect :
  ?timeout_ms:float -> endpoint -> (Unix.file_descr, string) result
(** Connect to a daemon, retrying refused connections until
    [timeout_ms] (default 5000) so clients can race daemon startup.
    The caller owns (and must close) the descriptor. *)

val request : endpoint -> string -> (string, string) result
(** One-shot client helper: connect, send one request line, read one
    response line. *)

val session :
  endpoint ->
  ?connect_timeout_ms:float ->
  in_channel ->
  out_channel ->
  (unit, string) result
(** Scripted client session: read request lines from the input channel
    (blank lines and [#] comments skipped), send each, write each
    response line to the output channel.  Retries the initial connect
    until [connect_timeout_ms] (default 5000) so scripts can race the
    daemon's startup. *)
