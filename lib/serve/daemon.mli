(** The multi-tenant daemon core: a pure request → response state
    machine over {!Json} values.

    Everything the daemon does — admission, advancing, quarantine,
    eviction, crash-consistent persistence — lives here, with no socket
    in sight: {!handle} maps one request object to one response object,
    so tests and benchmarks drive the daemon in-process and the socket
    front end ({!Server}) is a thin line pump.  All response fields
    derive from deterministic per-tenant virtual state (wall-clock time
    only feeds metrics histograms), which is what makes protocol
    transcripts byte-comparable across runs, restarts and fleet sizes.

    {b Robustness ladder.}  A faulting tenant is retried and degraded by
    its own {!Tpdf_fault.Supervisor} within each advance; the daemon
    adds the final rung, {e quarantine}: a tenant whose run ends
    unrecovered, or whose cumulative substituted firings cross
    [quarantine_skips], is parked ([Quarantined]) — it stops consuming
    capacity and rejects further advances, while every other tenant is
    untouched (their supervisors, plans and engines share no state).

    {b Admission & shedding.}  [submit] runs {!Admission.check}; an
    admitted tenant runs if its per-iteration cost fits the fleet
    [capacity], queues (FIFO) while it does not, and is shed with an
    [overloaded] + [retry_after_ms] response when the queue is full.
    Oversized advances are refused, and a [request_timeout_ms] budget
    turns a long advance into partial progress plus a retry hint. *)

type config = {
  state_dir : string option;  (** enables persistence and eviction *)
  max_tenants : int;  (** registry size cap (default 256) *)
  max_resident : int;  (** LRU-evict beyond this; 0 = unlimited *)
  capacity : int;
      (** fleet budget in firings/iteration; 0 = unlimited *)
  max_queue : int;  (** admission queue bound (default 16) *)
  max_advance : int;  (** iterations per advance request (default 1024) *)
  checkpoint_every : int;
      (** persist a tenant after this many new iterations (default 1) *)
  request_timeout_ms : float;
      (** wall budget per advance request; 0 = unlimited (default) *)
  retry_after_ms : int;  (** backoff hint on shed responses (default 50) *)
  quarantine_skips : int;
      (** quarantine once cumulative skips reach this; 0 = only
          unrecovered runs quarantine (default) *)
  default_budget : int option;  (** default per-tenant admission budget *)
  metrics_out : string option;
      (** OpenMetrics snapshot file, rewritten atomically per request *)
  rid_cache : int;
      (** idempotency-key cache capacity, FIFO; 0 disables (default 256) *)
  crash_at : string option;
      (** fault injection: raise {!Injected_crash} at this named
          migration point (e.g. ["src_after_commit"]); [None] in
          production *)
}

val default_config : config

exception Injected_crash of string
(** Raised mid-handler when [crash_at] matches, {e after} the durable
    writes that precede the point and before everything else — the
    in-process analogue of [kill -9] there.  Deliberately not caught by
    {!handle}: the process front end turns it into a real [SIGKILL],
    tests catch it and reload the daemon from its state directory. *)

type dial = string -> string -> (string, string) result
(** [dial addr line] sends one request line to the daemon at [addr] and
    returns its response line — how a daemon speaks to a peer during
    migration without knowing about sockets.  [Error] means transport
    failure (the peer's own error responses come back as [Ok line]). *)

type t

val create : ?pool:Tpdf_par.Pool.t -> ?dial:dial -> config -> (t, string) result
(** A fresh daemon; with [state_dir] set, restores the fleet from the
    newest valid manifest (tenants come back cold and revive lazily).
    [pool] shards [tick] batches across its domains; [dial] enables the
    [migrate] and [resolve] ops (without it they fail cleanly). *)

val handle : t -> Json.t -> Json.t
(** Process one request object. *)

val handle_line : t -> string -> string
(** Parse one request line, {!handle} it, render the response line
    (without the trailing newline).  This layer also implements
    idempotency keys: a request carrying a ["rid"] field whose response
    was already delivered is answered from the cache, byte for byte,
    without re-executing — so a client retry after a lost response
    never double-advances a tenant.  Responses with transient error
    codes ([overloaded], [queued], [draining], [migrating],
    [unresolved], [internal]) are never cached. *)

val metrics : t -> Tpdf_obs.Metrics.t
val stopping : t -> bool
(** Set once a [shutdown] request was handled; the server loop exits. *)

val draining : t -> bool
(** Set once a [drain] request was handled: the daemon keeps serving
    existing tenants but rejects new [submit]s and inbound migration
    offers with code [draining]. *)

val persist : t -> unit
(** Checkpoint every resident tenant and the manifest (no-op without a
    state directory). *)
