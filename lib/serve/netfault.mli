(** Seeded, bit-reproducible network fault injection.

    The serving analogue of {!Tpdf_fault.Plan}: a fault plan is a seed
    plus a list of {!spec}s, and the faults injected into one I/O
    operation are a {e pure function} of [(seed, conn, op)] — the
    per-operation randomness comes from a splitmix64 generator keyed by
    folding the connection id and operation index into the seed with
    FNV-1a, so draws are independent of evaluation order and a whole
    chaos run is reproducible bit for bit from the seed.

    Two consumers share the plan:
    {ul
    {- {!Io}: an in-process wrapper over real socket file descriptors,
       used by {!Server.serve} (and tests) to inject short reads and
       writes, torn frames, stalled connections, mid-request
       disconnects, and delayed or duplicated response lines on the
       wire;}
    {- {!verdict}: the pure channel form used by the in-process load
       generator (bench E23) and the migration torture tests, where the
       same decisions apply to whole request/response lines and delays
       accumulate in virtual time instead of [sleep].}}

    Fault kinds and the spec grammar ([KIND:PROB[:ARG]], comma
    separated, mirroring [tpdf_fault]'s [KIND:TARGET:PROB[:ARG]]):
    {ul
    {- [shortread:P[:MAX]] — deliver at most [MAX] (default 1) bytes
       per read call, forcing re-assembly of split frames;}
    {- [shortwrite:P[:MAX]] — accept at most [MAX] (default 1) bytes
       per write call, forcing the writer's short-write loop;}
    {- [tear:P] — torn frame: only a strict prefix of the payload
       reaches the peer, then the connection drops;}
    {- [stall:P[:MS]] — slow-loris: the operation stalls [MS] (default
       10) milliseconds before proceeding;}
    {- [disconnect:P] — the connection resets before the operation;}
    {- [delay:P[:MS]] — the response is delayed [MS] (default 5)
       milliseconds but delivered intact;}
    {- [dup:P] — the payload is delivered twice.}} *)

type kind =
  | Short_read of int
  | Short_write of int
  | Tear
  | Stall of float
  | Disconnect
  | Delay of float
  | Dup

type spec = { prob : float; kind : kind }

val spec : prob:float -> kind -> spec
(** @raise Invalid_argument on a probability outside [0, 1] or a
    non-positive argument. *)

val parse_specs : string -> (spec list, string) result
(** Parse the [KIND:PROB[:ARG]] grammar above. *)

val specs_to_string : spec list -> string
(** Canonical inverse of {!parse_specs}. *)

type t

val make : seed:int -> spec list -> t
val none : t
(** The empty plan: every verdict is {!clean}. *)

val is_none : t -> bool
val seed : t -> int
val specs : t -> spec list
val pp : Format.formatter -> t -> unit

(** The resolved faults for one operation, in a form both the fd layer
    and the pure channel layer can apply. *)
type verdict = {
  v_chunk : int option;  (** short read/write: at most this many bytes *)
  v_tear_at : int option;
      (** torn frame: only the first [n] bytes (a strict prefix, drawn
          uniformly, 0 allowed) are delivered, then the connection
          drops *)
  v_drop : bool;  (** connection reset before the operation *)
  v_dup : bool;  (** payload delivered twice *)
  v_delay_ms : float;  (** total stall + delay, milliseconds *)
}

val clean : verdict

val verdict : t -> conn:int -> op:int -> len:int -> verdict
(** Pure: equal [(seed, conn, op, len)] give equal verdicts.  One
    uniform draw is consumed per spec whether or not it fires, so
    editing one spec never shifts another spec's stream. *)

(** Fault-injecting wrappers over socket file descriptors.  Operation
    indices count per direction ([read] and [write] draw from
    independent streams via distinct op parities), so a read-side fault
    never shifts the write-side stream. *)
module Io : sig
  type conn

  val wrap : t -> conn:int -> Unix.file_descr -> conn
  (** Wrap [fd] as connection [conn] of the plan.  With {!none} every
      call is a transparent passthrough. *)

  val fd : conn -> Unix.file_descr

  val read : conn -> bytes -> int -> int -> int
  (** Like [Unix.read], after applying the verdict for this operation:
      an injected disconnect raises [Unix.Unix_error (ECONNRESET, ...)],
      a stall sleeps, a short read caps the requested length. *)

  val write_substring : conn -> string -> int -> int -> int
  (** Like [Unix.write_substring] with the verdict applied: a torn
      frame writes a prefix then raises [ECONNRESET]; a duplicate
      writes the window twice (returning the original count); a short
      write caps the window. *)
end
