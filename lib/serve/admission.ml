open Tpdf_core
module Csdf = Tpdf_csdf
module Sched = Tpdf_sched

type verdict = { cost : int; period_ms : float }
type outcome = Admitted of verdict | Rejected of string

let check ~graph ~valuation ?deadline_ms ?max_cost () =
  let reject fmt = Printf.ksprintf (fun m -> Rejected m) fmt in
  match Graph.validate graph with
  | Error msgs -> reject "invalid graph: %s" (String.concat "; " msgs)
  | Ok () -> (
      let missing =
        List.filter
          (fun p -> not (Tpdf_param.Valuation.mem valuation p))
          (Graph.parameters graph)
      in
      if missing <> [] then
        reject "unbound parameter(s): %s" (String.concat ", " missing)
      else
        match Analysis.repetition graph with
        | exception Csdf.Repetition.Inconsistent m ->
            reject "rate inconsistent: %s" m
        | exception Csdf.Repetition.Disconnected ->
            reject "graph is disconnected"
        | rep -> (
            match Analysis.rate_safety graph with
            | Error (v :: _) ->
                reject "rate unsafe: control %s on channel e%d: %s"
                  v.Analysis.control v.Analysis.channel v.Analysis.reason
            | Error [] -> reject "rate unsafe"
            | Ok () ->
                let b =
                  Analysis.check_boundedness graph ~samples:[ valuation ]
                in
                if not b.Analysis.bounded then
                  reject "not bounded: %s"
                    (match b.Analysis.notes with
                    | [] -> "liveness check failed on the valuation"
                    | notes -> String.concat "; " notes)
                else
                  let cost =
                    List.fold_left
                      (fun acc (_, q) -> acc + q)
                      0
                      (Csdf.Repetition.q_int rep valuation)
                  in
                  match max_cost with
                  | Some budget when cost > budget ->
                      reject
                        "per-iteration cost %d firings exceeds the budget \
                         of %d"
                        cost budget
                  | _ -> (
                      let period_ms =
                        match
                          Sched.Mcr.iteration_period_ms
                            (Sched.Mcr.build
                               (Csdf.Concrete.make (Graph.skeleton graph)
                                  valuation))
                        with
                        | p -> p
                        | exception Failure _ -> Float.nan
                      in
                      match deadline_ms with
                      | Some d
                        when (not (Float.is_nan period_ms))
                             && period_ms > d ->
                          reject
                            "MCR iteration period %.3f ms exceeds the \
                             %.3f ms deadline"
                            period_ms d
                      | _ -> Admitted { cost; period_ms })))
