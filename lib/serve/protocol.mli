(** The line-delimited JSON request/response protocol.

    One request per line, one response line per request, in order:

    {v
    -> {"op":"submit","id":1,"name":"t1","graph":"tpdf g { ... }",
        "params":{"p":2},"seed":7,"faults":"fail:A:0.2:1"}
    <- {"id":1,"ok":true,"tenant":"t1","status":"running","cost":12,
        "period_ms":3.0}
    -> {"op":"advance","id":2,"name":"t1","iterations":4}
    <- {"id":2,"ok":true,"tenant":"t1","done":4,"end_ms":12.0,...}
    v}

    Every response carries the request's ["id"] back (or [null]) and an
    ["ok"] flag; failures add an ["error"] object with a stable [code],
    a human [msg], and — for load-shedding responses — a
    [retry_after_ms] backoff hint.  Stable error codes:
    [bad_request], [unknown_op], [unknown_tenant], [exists],
    [inadmissible], [overloaded], [queued], [quarantined], [timeout],
    [no_state_dir], [internal]; from the hardened socket layer
    [too_large] (oversized or unterminated request line) and
    [conn_budget] (per-connection byte/time budget exhausted); and from
    drain and live migration [draining], [migrating], [not_owner],
    [committed], [unresolved], [migrate_failed].

    A request may carry a ["rid"] string — an {e idempotency key}: the
    daemon caches the response under it and replays it byte-identically
    if the same key is re-delivered (responses with transient codes —
    [overloaded], [queued], [draining], [migrating], [unresolved],
    [internal] — are never cached), so client retries after a lost
    response cannot double-execute a mutation. *)

val ok : id:Json.t -> (string * Json.t) list -> Json.t
(** [{"id":id,"ok":true,<fields>}]. *)

val err :
  id:Json.t ->
  code:string ->
  ?retry_after_ms:int ->
  ?fields:(string * Json.t) list ->
  string ->
  Json.t
(** [{"id":id,"ok":false,<fields>,"error":{"code":..,"msg":..
    [,"retry_after_ms":..]}}]. *)

val id_of : Json.t -> Json.t
(** The request's ["id"] field, [Null] when absent. *)

(** Field accessors over a request object; [req_*] fail with a
    [bad_request]-worthy message when the field is missing. *)

val opt_string : Json.t -> string -> (string option, string) result
val req_string : Json.t -> string -> (string, string) result
val opt_int : Json.t -> string -> (int option, string) result
val opt_float : Json.t -> string -> (float option, string) result
(** Accepts both [Int] and [Float]. *)

val opt_bool : Json.t -> string -> (bool option, string) result

val opt_params : Json.t -> string -> ((string * int) list, string) result
(** An object of positive-integer parameter bindings, [[]] when
    absent. *)

val opt_string_map : Json.t -> string -> ((string * float) list, string) result
(** An object of numeric bindings (e.g. per-actor deadlines). *)
