open Tpdf_core
module Fault = Tpdf_fault
module Ckpt = Tpdf_ckpt.Ckpt
module Valuation = Tpdf_param.Valuation

type cfg = {
  c_graph : Graph.t;
  c_src : string;
  c_seed : int;
  c_faults : string;
  c_specs : Fault.Fault.spec list;
  c_retries : int;
  c_backoff_ms : float;
  c_degrade_after : int;
  c_max_restarts : int;
  c_deadlines_ms : (string * float) list;
  c_deadline_ms : float option;
  c_budget : int option;
}

type hot = {
  h_cfg : cfg;
  mutable h_val : Valuation.t;
  mutable h_ck : Fault.Supervisor.checkpoint option;
}

type status =
  | Running
  | Queued
  | Quarantined of string
  | Migrating of string
  | Prepared of string

type tenant = {
  t_name : string;
  mutable t_status : status;
  mutable t_done : int;
  mutable t_cost : int;
  mutable t_period_ms : float;
  mutable t_skips : int;
  mutable t_hot : hot option;
  mutable t_touch : int;
  mutable t_persisted : int;
}

type t = {
  table : (string, tenant) Hashtbl.t;
  mutable q : string list;  (* FIFO, oldest first *)
  mutable clock : int;
  root : string option;
  mutable manifest_seq : int;
}

let create ?dir () =
  { table = Hashtbl.create 64; q = []; clock = 0; root = dir; manifest_seq = 0 }

let dir t = t.root
let find t name = Hashtbl.find_opt t.table name
let count t = Hashtbl.length t.table
let queue t = t.q
let enqueue t name = t.q <- t.q @ [ name ]

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.table []
  |> List.sort String.compare

let tenants t = List.filter_map (find t) (names t)

let touch t tenant =
  t.clock <- t.clock + 1;
  tenant.t_touch <- t.clock

(* A tenant mid-migration is still owned here until released, so it
   still holds its capacity share: an aborted handoff must not find the
   fleet oversubscribed. *)
let running_cost t =
  Hashtbl.fold
    (fun _ tn acc ->
      match tn.t_status with
      | Running | Migrating _ -> acc + tn.t_cost
      | _ -> acc)
    t.table 0

let owned tn =
  match tn.t_status with
  | Running | Queued | Quarantined _ | Migrating _ -> true
  | Prepared _ -> false

let resident t =
  Hashtbl.fold
    (fun _ tn acc -> if tn.t_hot <> None then acc + 1 else acc)
    t.table 0

let dequeue_if t pred =
  let rec loop acc =
    match t.q with
    | head :: rest -> (
        match find t head with
        | None ->
            (* stale queue entry (removed tenant) — drop and continue *)
            t.q <- rest;
            loop acc
        | Some tn when pred tn ->
            t.q <- rest;
            tn.t_status <- Running;
            loop (tn :: acc)
        | Some _ -> List.rev acc)
    | [] -> List.rev acc
  in
  loop []

let mk_tenant ~name ~cfg ~valuation ~cost ~period_ms ~status =
  {
    t_name = name;
    t_status = status;
    t_done = 0;
    t_cost = cost;
    t_period_ms = period_ms;
    t_skips = 0;
    t_hot = Some { h_cfg = cfg; h_val = valuation; h_ck = None };
    t_touch = 0;
    t_persisted = -1;
  }

(* ---------- persistence ---------- *)

let sup_prefix = "sup."
let join_kv kvs = String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)

let split_kv s =
  if s = "" then Ok []
  else
    let items = String.split_on_char ',' s in
    let rec loop acc = function
      | [] -> Ok (List.rev acc)
      | item :: rest -> (
          match String.index_opt item '=' with
          | Some i ->
              loop
                (( String.sub item 0 i,
                   String.sub item (i + 1) (String.length item - i - 1) )
                 :: acc)
                rest
          | None -> Error (Printf.sprintf "bad key=value entry %S" item))
    in
    loop [] items

let status_atom = function
  | Running -> "running"
  | Queued -> "queued"
  | Quarantined _ -> "quarantined"
  | Migrating _ -> "migrating"
  | Prepared _ -> "prepared"

(* The reason column carries the quarantine diagnostic — or, for the
   migration states, the peer daemon's address. *)
let status_of_atom atom reason =
  match atom with
  | "running" -> Ok Running
  | "queued" -> Ok Queued
  | "quarantined" -> Ok (Quarantined reason)
  | "migrating" -> Ok (Migrating reason)
  | "prepared" -> Ok (Prepared reason)
  | s -> Error (Printf.sprintf "unknown tenant status %S" s)

let tenant_store t name =
  match t.root with
  | None -> None
  | Some root ->
      Some (Ckpt.Store.open_dir (Filename.concat (Filename.concat root "tenants") name))

let manifest_store t =
  match t.root with
  | None -> None
  | Some root -> Some (Ckpt.Store.open_dir (Filename.concat root "manifest"))

(* Keep the newest two files: the current state plus one fallback in
   case the newest write was torn mid-crash. *)
let prune store =
  match List.rev (Ckpt.Store.seqs store) with
  | _ :: _ :: old ->
      List.iter
        (fun seq -> try Sys.remove (Ckpt.Store.path store seq) with Sys_error _ -> ())
        old
  | _ -> ()

let opt_float = function None -> "" | Some f -> Printf.sprintf "%h" f
let opt_int = function None -> "" | Some n -> string_of_int n

let status_reason = function
  | Quarantined r -> r
  | Migrating addr | Prepared addr -> addr
  | Running | Queued -> ""

let tenant_ckpt tenant hot =
  let cfg = hot.h_cfg in
  let sup_meta =
    match hot.h_ck with
    | None -> []
    | Some ck ->
        List.map
          (fun (k, v) -> (sup_prefix ^ k, v))
          (Fault.Supervisor.checkpoint_meta ck)
  in
  {
    Ckpt.kind = "serve-tenant";
    meta =
      [
        ("name", tenant.t_name);
        ("seed", string_of_int cfg.c_seed);
        ("faults", cfg.c_faults);
        ("retries", string_of_int cfg.c_retries);
        ("backoff", Printf.sprintf "%h" cfg.c_backoff_ms);
        ("degrade_after", string_of_int cfg.c_degrade_after);
        ("max_restarts", string_of_int cfg.c_max_restarts);
        ( "deadlines",
          join_kv
            (List.map
               (fun (a, ms) -> (a, Printf.sprintf "%h" ms))
               cfg.c_deadlines_ms) );
        ("deadline_ms", opt_float cfg.c_deadline_ms);
        ("budget", opt_int cfg.c_budget);
        ("cost", string_of_int tenant.t_cost);
        ("period_ms", Printf.sprintf "%h" tenant.t_period_ms);
        ("done", string_of_int tenant.t_done);
        ("skips", string_of_int tenant.t_skips);
        ("status", status_atom tenant.t_status);
        ("reason", status_reason tenant.t_status);
      ]
      @ sup_meta;
    graph_src = cfg.c_src;
    valuation = Valuation.bindings hot.h_val;
    snapshot =
      (match hot.h_ck with
      | Some ck -> ck.Fault.Supervisor.ck_engine
      | None -> None);
  }

let save_tenant t tenant =
  match (tenant.t_hot, tenant_store t tenant.t_name) with
  | Some hot, Some store ->
      ignore (Ckpt.Store.save store ~seq:tenant.t_done (tenant_ckpt tenant hot));
      prune store;
      tenant.t_persisted <- tenant.t_done
  | _ -> ()

let manifest_row tenant =
  String.concat "\t"
    [
      status_atom tenant.t_status;
      string_of_int tenant.t_done;
      string_of_int tenant.t_cost;
      Printf.sprintf "%h" tenant.t_period_ms;
      string_of_int tenant.t_skips;
      status_reason tenant.t_status;
    ]

let save_manifest t ~counters =
  match manifest_store t with
  | None -> ()
  | Some store ->
      let rows =
        List.map
          (fun tn -> ("t." ^ tn.t_name, manifest_row tn))
          (tenants t)
      in
      let file =
        {
          Ckpt.kind = "serve-manifest";
          meta =
            [
              ("version", "1");
              ("queue", String.concat "," t.q);
              ( "counters",
                join_kv (List.map (fun (k, v) -> (k, string_of_int v)) counters)
              );
            ]
            @ rows;
          graph_src = "";
          valuation = [];
          snapshot = None;
        }
      in
      t.manifest_seq <- t.manifest_seq + 1;
      ignore (Ckpt.Store.save store ~seq:t.manifest_seq file);
      prune store

let parse_row name value =
  match String.split_on_char '\t' value with
  | status :: done_ :: cost :: period :: skips :: reason_parts -> (
      let reason = String.concat "\t" reason_parts in
      match
        ( status_of_atom status reason,
          int_of_string_opt done_,
          int_of_string_opt cost,
          float_of_string_opt period,
          int_of_string_opt skips )
      with
      | Ok st, Some d, Some c, Some p, Some s ->
          Ok
            {
              t_name = name;
              t_status = st;
              t_done = d;
              t_cost = c;
              t_period_ms = p;
              t_skips = s;
              t_hot = None;
              t_touch = 0;
              t_persisted = d;
            }
      | Error e, _, _, _, _ -> Error e
      | _ -> Error (Printf.sprintf "bad manifest row for %S" name))
  | _ -> Error (Printf.sprintf "bad manifest row for %S" name)

let load ~dir =
  let t = create ~dir () in
  match manifest_store t with
  | None -> Ok (t, [])
  | Some store -> (
      match Ckpt.Store.latest store with
      | None -> Ok (t, [])
      | Some (seq, _path, file) ->
          if file.Ckpt.kind <> "serve-manifest" then
            Error
              (Printf.sprintf "manifest has kind %S, expected serve-manifest"
                 file.Ckpt.kind)
          else begin
            t.manifest_seq <- seq;
            let rec rows acc = function
              | [] -> Ok (List.rev acc)
              | (key, value) :: rest
                when String.starts_with ~prefix:"t." key ->
                  let name =
                    String.sub key 2 (String.length key - 2)
                  in
                  (match parse_row name value with
                  | Ok tenant -> rows (tenant :: acc) rest
                  | Error e -> Error e)
              | _ :: rest -> rows acc rest
            in
            match rows [] file.Ckpt.meta with
            | Error e -> Error e
            | Ok tenants ->
                List.iter (fun tn -> Hashtbl.replace t.table tn.t_name tn) tenants;
                (match Ckpt.meta file "queue" with
                | Some "" | None -> ()
                | Some q ->
                    t.q <-
                      List.filter
                        (fun n -> Hashtbl.mem t.table n)
                        (String.split_on_char ',' q));
                let counters =
                  match Ckpt.meta file "counters" with
                  | Some s -> (
                      match split_kv s with
                      | Ok kvs ->
                          List.filter_map
                            (fun (k, v) ->
                              match int_of_string_opt v with
                              | Some n -> Some (k, n)
                              | None -> None)
                            kvs
                      | Error _ -> [])
                  | None -> []
                in
                Ok (t, counters)
          end)

(* ---------- revive / evict ---------- *)

let meta_req file key =
  match Ckpt.meta file key with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "tenant checkpoint: missing meta %S" key)

let ( let* ) = Result.bind

let int_req file key =
  let* v = meta_req file key in
  match int_of_string_opt v with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "tenant checkpoint: meta %S not an int" key)

let float_req file key =
  let* v = meta_req file key in
  match float_of_string_opt v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "tenant checkpoint: meta %S not a float" key)

let hot_of_file file =
  let* graph =
    match Serial.of_string file.Ckpt.graph_src with
    | Ok g -> Ok g
    | Error e -> Error ("tenant checkpoint graph: " ^ e)
  in
  let* faults = meta_req file "faults" in
  let* specs =
    if faults = "" then Ok [] else Fault.Fault.parse_specs faults
  in
  let* seed = int_req file "seed" in
  let* retries = int_req file "retries" in
  let* backoff = float_req file "backoff" in
  let* degrade_after = int_req file "degrade_after" in
  let* max_restarts = int_req file "max_restarts" in
  let* deadlines_raw = meta_req file "deadlines" in
  let* deadlines_kv = split_kv deadlines_raw in
  let* deadlines_ms =
    List.fold_left
      (fun acc (a, ms) ->
        let* acc = acc in
        match float_of_string_opt ms with
        | Some f -> Ok ((a, f) :: acc)
        | None -> Error (Printf.sprintf "bad deadline %S for %s" ms a))
      (Ok []) deadlines_kv
    |> Result.map List.rev
  in
  let* deadline_raw = meta_req file "deadline_ms" in
  let* deadline_ms =
    if deadline_raw = "" then Ok None
    else
      match float_of_string_opt deadline_raw with
      | Some f -> Ok (Some f)
      | None -> Error "bad deadline_ms"
  in
  let* budget_raw = meta_req file "budget" in
  let* budget =
    if budget_raw = "" then Ok None
    else
      match int_of_string_opt budget_raw with
      | Some n -> Ok (Some n)
      | None -> Error "bad budget"
  in
  let sup_meta =
    List.filter_map
      (fun (k, v) ->
        if String.starts_with ~prefix:sup_prefix k then
          Some
            (String.sub k (String.length sup_prefix)
               (String.length k - String.length sup_prefix), v)
        else None)
      file.Ckpt.meta
  in
  let* ck =
    if sup_meta = [] then Ok None
    else
      Result.map Option.some
        (Fault.Supervisor.checkpoint_of_meta ?snapshot:file.Ckpt.snapshot
           sup_meta)
  in
  let valuation =
    try Valuation.of_list file.Ckpt.valuation
    with Invalid_argument _ -> Valuation.empty
  in
  Ok
    {
      h_cfg =
        {
          c_graph = graph;
          c_src = file.Ckpt.graph_src;
          c_seed = seed;
          c_faults = faults;
          c_specs = specs;
          c_retries = retries;
          c_backoff_ms = backoff;
          c_degrade_after = degrade_after;
          c_max_restarts = max_restarts;
          c_deadlines_ms = deadlines_ms;
          c_deadline_ms = deadline_ms;
          c_budget = budget;
        };
      h_val = valuation;
      h_ck = ck;
    }

let revive t tenant =
  match tenant.t_hot with
  | Some hot -> Ok hot
  | None -> (
      match tenant_store t tenant.t_name with
      | None ->
          Error
            (Printf.sprintf "tenant %S is cold and no state directory is set"
               tenant.t_name)
      | Some store -> (
          match Ckpt.Store.latest store with
          | None ->
              Error
                (Printf.sprintf "tenant %S has no valid checkpoint on disk"
                   tenant.t_name)
          | Some (_seq, _path, file) ->
              let* hot = hot_of_file file in
              (* The tenant file is authoritative for {e progress} —
                 every advance force-saves it before the counters move.
                 It is NOT authoritative for status: handoff and
                 quarantine transitions on a cold tenant commit through
                 the manifest alone, so the file's status meta can be
                 one transition stale (e.g. "migrating" written at the
                 mark, reverted after a crash).  Keep the registry's. *)
              let* done_ = int_req file "done" in
              let* skips = int_req file "skips" in
              let* cost = int_req file "cost" in
              let* period_ms = float_req file "period_ms" in
              tenant.t_done <- done_;
              tenant.t_skips <- skips;
              tenant.t_cost <- cost;
              tenant.t_period_ms <- period_ms;
              tenant.t_persisted <- done_;
              tenant.t_hot <- Some hot;
              Ok hot))

let evict t tenant =
  match tenant.t_hot with
  | None -> Ok ()
  | Some _ ->
      if t.root = None then
        Error "eviction needs a state directory (--state-dir)"
      else begin
        save_tenant t tenant;
        tenant.t_hot <- None;
        Ok ()
      end

let remove t name =
  Hashtbl.remove t.table name;
  t.q <- List.filter (fun n -> n <> name) t.q;
  match tenant_store t name with
  | None -> ()
  | Some store ->
      List.iter
        (fun seq ->
          try Sys.remove (Ckpt.Store.path store seq) with Sys_error _ -> ())
        (Ckpt.Store.seqs store)

let add t tenant =
  (* A fresh submit under a previously-used name must not inherit stale
     on-disk state. *)
  (match tenant_store t tenant.t_name with
  | Some store ->
      List.iter
        (fun seq ->
          try Sys.remove (Ckpt.Store.path store seq) with Sys_error _ -> ())
        (Ckpt.Store.seqs store)
  | None -> ());
  Hashtbl.replace t.table tenant.t_name tenant

(* ---------- migration transfer ---------- *)

let export tenant =
  match tenant.t_hot with
  | None -> Error (Printf.sprintf "tenant %S is not resident" tenant.t_name)
  | Some hot -> Ok (Ckpt.to_string (tenant_ckpt tenant hot))

let install t ~name ~status src =
  match Ckpt.of_string src with
  | Error e -> Error ("checkpoint: " ^ e)
  | Ok file ->
      if file.Ckpt.kind <> "serve-tenant" then
        Error
          (Printf.sprintf "checkpoint has kind %S, expected serve-tenant"
             file.Ckpt.kind)
      else
        let* mname = meta_req file "name" in
        if mname <> name then
          Error
            (Printf.sprintf "checkpoint is for tenant %S, not %S" mname name)
        else
          let* hot = hot_of_file file in
          let* done_ = int_req file "done" in
          let* skips = int_req file "skips" in
          let* cost = int_req file "cost" in
          let* period_ms = float_req file "period_ms" in
          let tn =
            {
              t_name = name;
              t_status = status;
              t_done = done_;
              t_cost = cost;
              t_period_ms = period_ms;
              t_skips = skips;
              t_hot = Some hot;
              t_touch = 0;
              t_persisted = -1;
            }
          in
          t.q <- List.filter (fun n -> n <> name) t.q;
          add t tn;
          touch t tn;
          save_tenant t tn;
          Ok tn
