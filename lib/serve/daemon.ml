open Tpdf_core
module Fault = Tpdf_fault
module Valuation = Tpdf_param.Valuation
module Metrics = Tpdf_obs.Metrics
module Obs = Tpdf_obs.Obs
module R = Registry
module P = Protocol

type config = {
  state_dir : string option;
  max_tenants : int;
  max_resident : int;
  capacity : int;
  max_queue : int;
  max_advance : int;
  checkpoint_every : int;
  request_timeout_ms : float;
  retry_after_ms : int;
  quarantine_skips : int;
  default_budget : int option;
  metrics_out : string option;
  rid_cache : int;
  crash_at : string option;
}

let default_config =
  {
    state_dir = None;
    max_tenants = 256;
    max_resident = 0;
    capacity = 0;
    max_queue = 16;
    max_advance = 1024;
    checkpoint_every = 1;
    request_timeout_ms = 0.0;
    retry_after_ms = 50;
    quarantine_skips = 0;
    default_budget = None;
    metrics_out = None;
    rid_cache = 256;
    crash_at = None;
  }

exception Injected_crash of string

type dial = string -> string -> (string, string) result

type t = {
  cfg : config;
  reg : R.t;
  metrics : Metrics.t;
  pool : Tpdf_par.Pool.t option;
  exporter : Tpdf_obs.Openmetrics.Exporter.t option;
  dial : dial;
  rids : (string, string) Hashtbl.t;  (** rid -> cached response line *)
  rid_q : string Queue.t;  (** FIFO of cached rids, oldest first *)
  mutable draining : bool;
  mutable stop : bool;
}

let metrics d = d.metrics
let stopping d = d.stop
let draining d = d.draining
let incr ?by d name = Metrics.incr ?by d.metrics name

(* Crash injection for migration torture tests: when the configured
   point is reached, the daemon "dies" mid-handler — after whatever it
   has already persisted, before anything else.  [tpdf_tool serve]
   turns this into a literal [SIGKILL] of its own process; in-process
   tests catch the exception and reload the daemon from its state
   directory.  Either way nothing below the raise runs, which is the
   whole point. *)
let maybe_crash d point =
  match d.cfg.crash_at with
  | Some p when p = point -> raise (Injected_crash point)
  | _ -> ()

(* ---------- persistence ---------- *)

let serve_counters d =
  List.filter
    (fun (k, _) -> String.starts_with ~prefix:"serve." k)
    (Metrics.counters d.metrics)

let persist_manifest d =
  if R.dir d.reg <> None then R.save_manifest d.reg ~counters:(serve_counters d)

let persist_tenant ?(force = false) d tn =
  if R.dir d.reg <> None && tn.R.t_hot <> None then
    if
      force || tn.R.t_persisted < 0
      || tn.R.t_done - tn.R.t_persisted >= d.cfg.checkpoint_every
    then begin
      R.save_tenant d.reg tn;
      incr d "serve.checkpoints"
    end

let persist d =
  List.iter
    (fun tn -> if tn.R.t_hot <> None then persist_tenant ~force:true d tn)
    (R.tenants d.reg);
  persist_manifest d

(* LRU eviction of cold-able tenants past the residency cap.  [keep] is
   the tenant just touched by this request — never evict it. *)
let evict_lru d ~keep =
  if d.cfg.max_resident > 0 && R.dir d.reg <> None then
    while
      R.resident d.reg > d.cfg.max_resident
      &&
      let victims =
        List.filter
          (fun tn -> tn.R.t_hot <> None && tn.R.t_name <> keep)
          (R.tenants d.reg)
      in
      match
        List.sort (fun a b -> compare a.R.t_touch b.R.t_touch) victims
      with
      | [] -> false
      | victim :: _ -> (
          match R.evict d.reg victim with
          | Ok () ->
              incr d "serve.evicted";
              true
          | Error _ -> false)
    do
      ()
    done

(* ---------- capacity, queue, quarantine ---------- *)

let fits d extra_cost =
  d.cfg.capacity = 0 || R.running_cost d.reg + extra_cost <= d.cfg.capacity

let drain_queue d =
  let promoted = R.dequeue_if d.reg (fun tn -> fits d tn.R.t_cost) in
  List.iter
    (fun tn ->
      incr d "serve.promoted";
      persist_tenant ~force:true d tn)
    promoted;
  promoted

let quarantine d tn reason =
  (match tn.R.t_status with
  | R.Quarantined _ -> ()
  | _ ->
      tn.R.t_status <- R.Quarantined reason;
      incr d "serve.quarantined";
      ignore (drain_queue d));
  persist_tenant ~force:true d tn

(* ---------- tenants ---------- *)

let name_ok name =
  name <> ""
  && String.length name <= 64
  && String.for_all
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
         | _ -> false)
       name

let revive d tn =
  let was_cold = tn.R.t_hot = None in
  match R.revive d.reg tn with
  | Ok hot ->
      if was_cold then incr d "serve.revived";
      Ok hot
  | Error e -> Error e

let policy_of (cfg : R.cfg) =
  Fault.Policy.make ~max_retries:cfg.R.c_retries
    ~retry_backoff_ms:cfg.R.c_backoff_ms ~deadlines_ms:cfg.R.c_deadlines_ms
    ~degrade_after:cfg.R.c_degrade_after ~max_restarts:cfg.R.c_max_restarts
    ~fallbacks:(Fault.Chaos.default_fallbacks cfg.R.c_graph) ()

type advance_end =
  | Completed
  | Timed_out
  | Quarantine of string

(* Advance a resident tenant by up to [n] iterations, one supervised
   iteration per step so the wall-clock budget can cut the request into
   partial progress at a boundary.  Byte-identity across chunkings is
   the supervisor's resume contract; all counters live in the boundary
   checkpoint, so the response derives from deterministic virtual state
   only. *)
let advance_hot dcfg tn hot n ~wall_deadline =
  let cfg = hot.R.h_cfg in
  let policy = policy_of cfg in
  let fired = ref 0 in
  let rec loop remaining =
    if remaining = 0 then Completed
    else if
      match wall_deadline with
      | Some dl -> Obs.now_wall_ms () > dl
      | None -> false
    then Timed_out
    else begin
      let target = tn.R.t_done + 1 in
      let last = ref hot.R.h_ck in
      let summary =
        Fault.Chaos.run ~graph:cfg.R.c_graph ~seed:cfg.R.c_seed
          ~specs:cfg.R.c_specs ~policy ~iterations:target ~checkpoint_every:1
          ~on_checkpoint:(fun ck -> last := Some ck)
          ?resume:hot.R.h_ck ~valuation:hot.R.h_val ()
      in
      List.iter
        (fun (st : Tpdf_sim.Engine.stats) ->
          List.iter (fun (_, k) -> fired := !fired + k) st.firings)
        summary.Fault.Supervisor.per_iteration;
      hot.R.h_ck <- !last;
      (match !last with
      | Some ck ->
          tn.R.t_done <- ck.Fault.Supervisor.ck_iterations_run;
          tn.R.t_skips <- ck.Fault.Supervisor.ck_skips
      | None -> ());
      match summary.Fault.Supervisor.unrecovered with
      | Some diag -> Quarantine diag
      | None ->
          if
            dcfg.quarantine_skips > 0
            && tn.R.t_skips >= dcfg.quarantine_skips
          then
            Quarantine
              (Printf.sprintf
                 "skip budget exhausted: %d substituted firings >= %d"
                 tn.R.t_skips dcfg.quarantine_skips)
          else loop (remaining - 1)
    end
  in
  let outcome = loop n in
  (outcome, !fired)

let status_json tn =
  Json.String
    (match tn.R.t_status with
    | R.Running -> "running"
    | R.Queued -> "queued"
    | R.Quarantined _ -> "quarantined"
    | R.Migrating _ -> "migrating"
    | R.Prepared _ -> "prepared")

(* Cumulative per-tenant counters, all from the boundary checkpoint. *)
let progress_fields tn =
  let base = [ ("tenant", Json.String tn.R.t_name); ("done", Json.Int tn.R.t_done) ] in
  match tn.R.t_hot with
  | Some { R.h_ck = Some ck; _ } ->
      base
      @ [
          ("end_ms", Json.Float ck.Fault.Supervisor.ck_offset_ms);
          ("retries", Json.Int ck.Fault.Supervisor.ck_retries);
          ("skips", Json.Int ck.Fault.Supervisor.ck_skips);
          ("corrupted", Json.Int ck.Fault.Supervisor.ck_corrupted);
          ("ctrl_lost", Json.Int ck.Fault.Supervisor.ck_ctrl_lost);
          ("deadline_misses", Json.Int ck.Fault.Supervisor.ck_deadline_misses);
          ("restarts", Json.Int ck.Fault.Supervisor.ck_restarts);
          ( "degraded",
            Json.List
              (List.map
                 (fun (k, m) -> Json.List [ Json.String k; Json.String m ])
                 (List.sort compare ck.Fault.Supervisor.ck_degraded)) );
        ]
  | _ ->
      base
      @ [
          ("end_ms", Json.Float 0.0);
          ("retries", Json.Int 0);
          ("skips", Json.Int tn.R.t_skips);
          ("corrupted", Json.Int 0);
          ("ctrl_lost", Json.Int 0);
          ("deadline_misses", Json.Int 0);
          ("restarts", Json.Int 0);
          ("degraded", Json.List []);
        ]

(* ---------- request handlers ---------- *)

let ( let* ) v f = match v with Ok x -> f x | Error e -> Error e

(* Map field-level failures onto a [bad_request] response. *)
let with_fields ~id result =
  match result with Ok resp -> resp | Error msg -> P.err ~id ~code:"bad_request" msg

let h_submit d ~id req =
  with_fields ~id
  @@ let* name = P.req_string req "name" in
     if d.draining then
       Ok
         (P.err ~id ~code:"draining"
            "daemon is draining; submit to another daemon")
     else if not (name_ok name) then
       Ok
         (P.err ~id ~code:"bad_request"
            "tenant names are 1-64 chars of [A-Za-z0-9_-]")
     else if R.find d.reg name <> None then
       Ok
         (P.err ~id ~code:"exists"
            (Printf.sprintf "tenant %S already exists" name))
     else if R.count d.reg >= d.cfg.max_tenants then begin
       incr d "serve.shed";
       Ok
         (P.err ~id ~code:"overloaded" ~retry_after_ms:d.cfg.retry_after_ms
            (Printf.sprintf "tenant table is full (%d)" d.cfg.max_tenants))
     end
     else
       let* graph_src = P.req_string req "graph" in
       let* params = P.opt_params req "params" in
       let* seed = P.opt_int req "seed" in
       let* faults = P.opt_string req "faults" in
       let* retries = P.opt_int req "retries" in
       let* backoff_ms = P.opt_float req "backoff_ms" in
       let* degrade_after = P.opt_int req "degrade_after" in
       let* max_restarts = P.opt_int req "max_restarts" in
       let* deadlines_ms = P.opt_string_map req "deadlines" in
       let* deadline_ms = P.opt_float req "deadline_ms" in
       let* budget = P.opt_int req "budget" in
       match Serial.of_string graph_src with
       | Error e ->
           incr d "serve.rejected";
           Ok (P.err ~id ~code:"inadmissible" ("graph: " ^ e))
       | Ok graph -> (
           let* specs =
             match faults with
             | None | Some "" -> Ok []
             | Some s -> (
                 match Fault.Fault.parse_specs s with
                 | Ok specs -> Ok specs
                 | Error e -> Error ("faults: " ^ e))
           in
           let valuation =
             try Ok (Valuation.of_list params)
             with Invalid_argument m -> Error m
           in
           let* valuation = valuation in
           let max_cost =
             match budget with Some _ -> budget | None -> d.cfg.default_budget
           in
           match
             Admission.check ~graph ~valuation ?deadline_ms ?max_cost ()
           with
           | Admission.Rejected reason ->
               incr d "serve.rejected";
               Ok (P.err ~id ~code:"inadmissible" reason)
           | Admission.Admitted { Admission.cost; period_ms } -> (
               let cfg : R.cfg =
                 {
                   R.c_graph = graph;
                   c_src = Serial.to_string graph;
                   c_seed = Option.value seed ~default:0;
                   c_faults =
                     (if specs = [] then ""
                      else Fault.Fault.specs_to_string specs);
                   c_specs = specs;
                   c_retries = Option.value retries ~default:2;
                   c_backoff_ms = Option.value backoff_ms ~default:0.5;
                   c_degrade_after = Option.value degrade_after ~default:3;
                   c_max_restarts = Option.value max_restarts ~default:0;
                   c_deadlines_ms = deadlines_ms;
                   c_deadline_ms = deadline_ms;
                   c_budget = budget;
                 }
               in
               let* policy =
                 match policy_of cfg with
                 | p -> Ok p
                 | exception Invalid_argument m -> Error m
               in
               let* () = Fault.Policy.validate graph policy in
               let admit status =
                 let tn =
                   R.mk_tenant ~name ~cfg ~valuation ~cost ~period_ms ~status
                 in
                 R.add d.reg tn;
                 R.touch d.reg tn;
                 incr d "serve.admitted";
                 if status = R.Queued then begin
                   R.enqueue d.reg name;
                   incr d "serve.queued"
                 end;
                 persist_tenant ~force:true d tn;
                 evict_lru d ~keep:name;
                 persist_manifest d;
                 P.ok ~id
                   [
                     ("tenant", Json.String name);
                     ("status", status_json tn);
                     ("cost", Json.Int cost);
                     ("period_ms", Json.Float period_ms);
                   ]
               in
               if fits d cost then Ok (admit R.Running)
               else if List.length (R.queue d.reg) < d.cfg.max_queue then
                 Ok (admit R.Queued)
               else begin
                 incr d "serve.shed";
                 incr d "serve.rejected";
                 Ok
                   (P.err ~id ~code:"overloaded"
                      ~retry_after_ms:d.cfg.retry_after_ms
                      (Printf.sprintf
                         "fleet capacity %d full and admission queue at its \
                          bound %d"
                         d.cfg.capacity d.cfg.max_queue))
               end))

let find_tenant d ~id name k =
  match R.find d.reg name with
  | None ->
      P.err ~id ~code:"unknown_tenant"
        (Printf.sprintf "no tenant %S" name)
  | Some tn -> k tn

let h_advance d ~id req =
  with_fields ~id
  @@ let* name = P.req_string req "name" in
     let* n = P.opt_int req "iterations" in
     let n = Option.value n ~default:1 in
     if n < 1 then Ok (P.err ~id ~code:"bad_request" "iterations must be >= 1")
     else if n > d.cfg.max_advance then begin
       incr d "serve.shed";
       Ok
         (P.err ~id ~code:"overloaded"
            (Printf.sprintf
               "advance of %d iterations exceeds the per-request cap %d; \
                split the request"
               n d.cfg.max_advance))
     end
     else
       Ok
         (find_tenant d ~id name @@ fun tn ->
          R.touch d.reg tn;
          match tn.R.t_status with
          | R.Quarantined reason ->
              P.err ~id ~code:"quarantined" ~fields:(progress_fields tn) reason
          | R.Queued ->
              P.err ~id ~code:"queued" ~retry_after_ms:d.cfg.retry_after_ms
                ~fields:[ ("tenant", Json.String name) ]
                "tenant is waiting for fleet capacity"
          | R.Migrating addr ->
              P.err ~id ~code:"migrating"
                ~retry_after_ms:d.cfg.retry_after_ms
                (Printf.sprintf "tenant is migrating to %s" addr)
          | R.Prepared addr ->
              P.err ~id ~code:"not_owner"
                (Printf.sprintf
                   "tenant is an uncommitted copy offered by %s" addr)
          | R.Running -> (
              match revive d tn with
              | Error e ->
                  quarantine d tn ("revive failed: " ^ e);
                  persist_manifest d;
                  P.err ~id ~code:"quarantined" ("revive failed: " ^ e)
              | Ok hot ->
                  let wall_deadline =
                    if d.cfg.request_timeout_ms > 0.0 then
                      Some (Obs.now_wall_ms () +. d.cfg.request_timeout_ms)
                    else None
                  in
                  let before = tn.R.t_done in
                  let outcome, fired =
                    advance_hot d.cfg tn hot n ~wall_deadline
                  in
                  incr d ~by:(tn.R.t_done - before) "serve.iterations";
                  incr d ~by:fired "serve.firings";
                  let finish resp =
                    persist_tenant d tn;
                    evict_lru d ~keep:name;
                    persist_manifest d;
                    resp
                  in
                  (match outcome with
                  | Quarantine reason ->
                      quarantine d tn reason;
                      finish
                        (P.err ~id ~code:"quarantined"
                           ~fields:(progress_fields tn) reason)
                  | Timed_out ->
                      incr d "serve.timeouts";
                      finish
                        (P.ok ~id
                           (progress_fields tn
                           @ [
                               ("status", status_json tn);
                               ("timeout", Json.Bool true);
                               ( "retry_after_ms",
                                 Json.Int d.cfg.retry_after_ms );
                             ]))
                  | Completed ->
                      finish
                        (P.ok ~id
                           (progress_fields tn
                           @ [ ("status", status_json tn) ])))))

let h_tick d ~id req =
  with_fields ~id
  @@ let* n = P.opt_int req "iterations" in
     let n = Option.value n ~default:1 in
     if n < 1 then Ok (P.err ~id ~code:"bad_request" "iterations must be >= 1")
     else if n > d.cfg.max_advance then
       Ok
         (P.err ~id ~code:"overloaded"
            (Printf.sprintf "tick of %d iterations exceeds the cap %d" n
               d.cfg.max_advance))
     else begin
       (* Revive every running tenant first; a tenant that cannot come
          back is quarantined rather than blocking the batch. *)
       let runnable =
         List.filter_map
           (fun tn ->
             match tn.R.t_status with
             | R.Running -> (
                 match revive d tn with
                 | Ok hot -> Some (tn, hot)
                 | Error e ->
                     quarantine d tn ("revive failed: " ^ e);
                     None)
             | _ -> None)
           (R.tenants d.reg)
       in
       let shards =
         match d.pool with
         | Some pool -> max 1 (Tpdf_par.Pool.domains pool)
         | None -> 1
       in
       let work = Array.make shards [] in
       List.iteri
         (fun i (tn, hot) -> work.(i mod shards) <- (tn, hot) :: work.(i mod shards))
         runnable;
       Array.iteri (fun i l -> work.(i) <- List.rev l) work;
       (* Tenants are disjoint across shards, so shard tasks touch
          disjoint records; engines run pool-less inside pool tasks
          (Pool.run is not reentrant).  Exceptions are confined to the
          tenant that raised. *)
       let task shard () =
         List.map
           (fun (tn, hot) ->
             match advance_hot d.cfg tn hot n ~wall_deadline:None with
             | outcome, fired -> (tn, Ok outcome, fired)
             | exception e -> (tn, Error (Printexc.to_string e), 0))
           work.(shard)
       in
       let results =
         match d.pool with
         | Some pool when shards > 1 ->
             Tpdf_par.Pool.run pool (Array.init shards (fun i -> task i))
         | _ -> Array.init shards (fun i -> task i ())
       in
       (* Deterministic commit in sorted tenant order. *)
       let outcomes =
         Array.to_list results |> List.concat
         |> List.sort (fun (a, _, _) (b, _, _) ->
                String.compare a.R.t_name b.R.t_name)
       in
       let advanced = ref 0 and quarantined = ref [] in
       List.iter
         (fun (tn, outcome, fired) ->
           incr d ~by:fired "serve.firings";
           (match outcome with
           | Ok Completed | Ok Timed_out -> Stdlib.incr advanced
           | Ok (Quarantine reason) ->
               quarantine d tn reason;
               quarantined := tn.R.t_name :: !quarantined
           | Error e ->
               quarantine d tn ("tick failed: " ^ e);
               quarantined := tn.R.t_name :: !quarantined);
           persist_tenant d tn)
         outcomes;
       incr d ~by:(n * !advanced) "serve.iterations";
       ignore (drain_queue d);
       persist_manifest d;
       Ok
         (P.ok ~id
            [
              ("advanced", Json.Int !advanced);
              ("iterations", Json.Int n);
              ( "quarantined",
                Json.List
                  (List.map
                     (fun n -> Json.String n)
                     (List.sort String.compare !quarantined)) );
            ])
     end

let h_query d ~id req =
  with_fields ~id
  @@ let* name = P.req_string req "name" in
     Ok
       (find_tenant d ~id name @@ fun tn ->
        let queue_pos =
          let rec idx i = function
            | [] -> None
            | x :: _ when x = name -> Some i
            | _ :: rest -> idx (i + 1) rest
          in
          idx 0 (R.queue d.reg)
        in
        P.ok ~id
          ([
             ("tenant", Json.String name);
             ("status", status_json tn);
             ("done", Json.Int tn.R.t_done);
             ("cost", Json.Int tn.R.t_cost);
             ("period_ms", Json.Float tn.R.t_period_ms);
             ("skips", Json.Int tn.R.t_skips);
             ("resident", Json.Bool (tn.R.t_hot <> None));
           ]
          @ (match tn.R.t_status with
            | R.Quarantined reason -> [ ("reason", Json.String reason) ]
            | R.Migrating addr | R.Prepared addr ->
                [ ("peer", Json.String addr) ]
            | R.Running | R.Queued -> [])
          @
          match queue_pos with
          | Some i -> [ ("queue_position", Json.Int i) ]
          | None -> []))

let h_list d ~id _req =
  P.ok ~id
    [
      ( "tenants",
        Json.List
          (List.map
             (fun tn ->
               Json.Obj
                 [
                   ("name", Json.String tn.R.t_name);
                   ("status", status_json tn);
                   ("done", Json.Int tn.R.t_done);
                   ("cost", Json.Int tn.R.t_cost);
                   ("resident", Json.Bool (tn.R.t_hot <> None));
                 ])
             (R.tenants d.reg)) );
      ( "queue",
        Json.List (List.map (fun n -> Json.String n) (R.queue d.reg)) );
    ]

let h_remove d ~id req =
  with_fields ~id
  @@ let* name = P.req_string req "name" in
     Ok
       (find_tenant d ~id name @@ fun _tn ->
        R.remove d.reg name;
        incr d "serve.removed";
        ignore (drain_queue d);
        persist_manifest d;
        P.ok ~id [ ("tenant", Json.String name); ("removed", Json.Bool true) ])

let h_reconfigure d ~id req =
  with_fields ~id
  @@ let* name = P.req_string req "name" in
     let* params = P.opt_params req "params" in
     Ok
       (find_tenant d ~id name @@ fun tn ->
        R.touch d.reg tn;
        match tn.R.t_status with
        | R.Quarantined reason ->
            P.err ~id ~code:"quarantined" reason
        | R.Migrating addr ->
            P.err ~id ~code:"migrating" ~retry_after_ms:d.cfg.retry_after_ms
              (Printf.sprintf "tenant is migrating to %s" addr)
        | R.Prepared addr ->
            P.err ~id ~code:"not_owner"
              (Printf.sprintf "tenant is an uncommitted copy offered by %s"
                 addr)
        | R.Running | R.Queued -> (
            match revive d tn with
            | Error e -> P.err ~id ~code:"internal" ("revive failed: " ^ e)
            | Ok hot -> (
                match
                  try Ok (Valuation.of_list params)
                  with Invalid_argument m -> Error m
                with
                | Error m -> P.err ~id ~code:"bad_request" m
                | Ok valuation -> (
                    let cfg = hot.R.h_cfg in
                    match
                      Admission.check ~graph:cfg.R.c_graph ~valuation
                        ?deadline_ms:cfg.R.c_deadline_ms
                        ?max_cost:
                          (match cfg.R.c_budget with
                          | Some _ as b -> b
                          | None -> d.cfg.default_budget)
                        ()
                    with
                    | Admission.Rejected reason ->
                        incr d "serve.rejected";
                        P.err ~id ~code:"inadmissible" reason
                    | Admission.Admitted { Admission.cost; period_ms } ->
                        let delta = cost - tn.R.t_cost in
                        if
                          tn.R.t_status = R.Running
                          && d.cfg.capacity > 0
                          && delta > 0
                          && R.running_cost d.reg + delta > d.cfg.capacity
                        then begin
                          incr d "serve.shed";
                          P.err ~id ~code:"overloaded"
                            ~retry_after_ms:d.cfg.retry_after_ms
                            (Printf.sprintf
                               "new cost %d does not fit the fleet capacity \
                                %d"
                               cost d.cfg.capacity)
                        end
                        else begin
                          hot.R.h_val <- valuation;
                          tn.R.t_cost <- cost;
                          tn.R.t_period_ms <- period_ms;
                          incr d "serve.reconfigured";
                          persist_tenant ~force:true d tn;
                          ignore (drain_queue d);
                          persist_manifest d;
                          P.ok ~id
                            [
                              ("tenant", Json.String name);
                              ("status", status_json tn);
                              ("cost", Json.Int cost);
                              ("period_ms", Json.Float period_ms);
                            ]
                        end))))

let state_gauge tn =
  match tn.R.t_status with
  | R.Running -> 0.0
  | R.Queued -> 1.0
  | R.Quarantined _ -> 2.0
  | R.Migrating _ -> 3.0
  | R.Prepared _ -> 4.0

let h_metrics d ~id _req =
  let m = d.metrics in
  Metrics.set_gauge m "serve.tenants" (float_of_int (R.count d.reg));
  Metrics.set_gauge m "serve.resident" (float_of_int (R.resident d.reg));
  Metrics.set_gauge m "serve.queue_depth"
    (float_of_int (List.length (R.queue d.reg)));
  Metrics.set_gauge m "serve.capacity_used"
    (float_of_int (R.running_cost d.reg));
  Metrics.set_gauge m "serve.capacity" (float_of_int d.cfg.capacity);
  List.iter
    (fun tn ->
      let n = tn.R.t_name in
      Metrics.set_gauge m ("serve.tenant.iterations." ^ n)
        (float_of_int tn.R.t_done);
      Metrics.set_gauge m ("serve.tenant.skips." ^ n)
        (float_of_int tn.R.t_skips);
      Metrics.set_gauge m ("serve.tenant.cost." ^ n)
        (float_of_int tn.R.t_cost);
      Metrics.set_gauge m ("serve.tenant.state." ^ n) (state_gauge tn))
    (R.tenants d.reg);
  P.ok ~id
    [ ("openmetrics", Json.String (Tpdf_obs.Openmetrics.render m)) ]

let h_checkpoint d ~id _req =
  match R.dir d.reg with
  | None -> P.err ~id ~code:"no_state_dir" "daemon started without --state-dir"
  | Some _ ->
      persist d;
      P.ok ~id [ ("persisted", Json.Int (R.resident d.reg)) ]

let h_evict d ~id req =
  with_fields ~id
  @@ let* name = P.req_string req "name" in
     Ok
       (find_tenant d ~id name @@ fun tn ->
        let was_hot = tn.R.t_hot <> None in
        match R.evict d.reg tn with
        | Ok () ->
            if was_hot then incr d "serve.evicted";
            persist_manifest d;
            P.ok ~id [ ("tenant", Json.String name); ("resident", Json.Bool false) ]
        | Error e -> P.err ~id ~code:"no_state_dir" e)

let h_ping d ~id _req =
  P.ok ~id
    ([ ("pong", Json.Bool true); ("tenants", Json.Int (R.count d.reg)) ]
    @ if d.draining then [ ("draining", Json.Bool true) ] else [])

let h_shutdown d ~id _req =
  persist d;
  d.stop <- true;
  P.ok ~id [ ("bye", Json.Bool true) ]

let h_drain d ~id req =
  with_fields ~id
  @@ let* stop = P.opt_bool req "stop" in
     let stop = Option.value stop ~default:false in
     d.draining <- true;
     incr d "serve.drains";
     persist d;
     if stop then d.stop <- true;
     Ok
       (P.ok ~id
          [
            ("draining", Json.Bool true);
            ("stopping", Json.Bool stop);
            ("tenants", Json.Int (R.count d.reg));
            ("persisted", Json.Int (R.resident d.reg));
          ])

(* ---------- live migration ----------

   Two-phase handoff, commit at the destination:

     source                               destination
     ------                               -----------
     mark Migrating(dst), persist
     export boundary checkpoint
         -- migrate_offer (ckpt, cksum) -->
                                           verify checksum
                                           install as Prepared(src), persist
         <-- ok ----------------------------
         -- migrate_commit ---------------->
                                           Prepared -> Running, persist
         <-- ok ----------------------------
     remove local copy, persist
         -- (on failure: migrate_abort) --->
                                           drop Prepared copy

   A [Prepared] copy is not ownership — exactly one daemon owns the
   tenant at every persisted instant, whichever side dies.  The only
   ambiguous window is the source crashing after the destination
   committed but before the local release; the source then restarts
   as [Migrating] and [resolve] queries the destination to finish
   (release if the peer owns it, revert to [Running] if not). *)

let is_ok_resp line =
  match Json.of_string line with
  | Ok resp -> (
      match Json.member "ok" resp with
      | Some (Json.Bool true) -> Ok resp
      | _ -> (
          match Json.member "error" resp with
          | Some err -> (
              match (Json.member "code" err, Json.member "msg" err) with
              | Some (Json.String code), Some (Json.String msg) ->
                  Error (code, msg)
              | _ -> Error ("internal", "malformed error response"))
          | None -> Error ("internal", "malformed response")))
  | Error e -> Error ("internal", "response parse: " ^ e)

let cksum_of payload = Printf.sprintf "%Lx" (Tpdf_ckpt.Ckpt.fnv1a64 payload)

(* Handoff ops carry no idempotency keys: they are re-send-safe by
   construction (see [rid_exempt]) and a replay cache would remember
   effects an abort has since undone. *)
let mig_req fields = Json.to_string (Json.Obj fields)

let revert_running d tn =
  tn.R.t_status <- R.Running;
  persist_tenant ~force:true d tn;
  persist_manifest d

(* Release the local copy once the destination owns the tenant. *)
let release d tn =
  R.remove d.reg tn.R.t_name;
  incr d "serve.migrated_out";
  ignore (drain_queue d);
  persist_manifest d

let h_migrate d ~id req =
  with_fields ~id
  @@ let* name = P.req_string req "name" in
     let* addr = P.req_string req "to" in
     let* from = P.opt_string req "from" in
     let from = Option.value from ~default:"" in
     Ok
       (find_tenant d ~id name @@ fun tn ->
        R.touch d.reg tn;
        match tn.R.t_status with
        | R.Quarantined reason -> P.err ~id ~code:"quarantined" reason
        | R.Queued ->
            P.err ~id ~code:"bad_request"
              "queued tenants cannot migrate; wait for promotion"
        | R.Prepared a ->
            P.err ~id ~code:"not_owner"
              (Printf.sprintf "tenant is an uncommitted copy offered by %s" a)
        | R.Migrating a when a <> addr ->
            P.err ~id ~code:"migrating"
              (Printf.sprintf
                 "tenant is already migrating to %s; resolve that handoff \
                  first"
                 a)
        | R.Running | R.Migrating _ -> (
            match revive d tn with
            | Error e -> P.err ~id ~code:"internal" ("revive failed: " ^ e)
            | Ok _hot -> (
                tn.R.t_status <- R.Migrating addr;
                persist_tenant ~force:true d tn;
                persist_manifest d;
                maybe_crash d "src_after_mark";
                match R.export tn with
                | Error e ->
                    revert_running d tn;
                    P.err ~id ~code:"migrate_failed" ("export: " ^ e)
                | Ok payload -> (
                    let cksum = cksum_of payload in
                    let migrated () =
                      release d tn;
                      maybe_crash d "src_after_release";
                      P.ok ~id
                        [
                          ("tenant", Json.String name);
                          ("migrated_to", Json.String addr);
                          ("done", Json.Int tn.R.t_done);
                          ("cksum", Json.String cksum);
                        ]
                    in
                    let abort_and_revert code msg =
                      (* Best effort: clear any half-landed copy, then
                         take ownership back.  [committed] from the
                         abort means the peer in fact owns the tenant
                         (a lost commit ack) — finish the release
                         instead of reverting. *)
                      let committed =
                        match
                          d.dial addr
                            (mig_req
                               [
                                 ("op", Json.String "migrate_abort");
                                 ("name", Json.String name);
                               ])
                        with
                        | Ok line -> (
                            match is_ok_resp line with
                            | Error ("committed", _) -> true
                            | _ -> false)
                        | Error _ -> false
                      in
                      if committed then migrated ()
                      else begin
                        revert_running d tn;
                        P.err ~id ~code (msg ())
                      end
                    in
                    let offer =
                      mig_req
                        [
                          ("op", Json.String "migrate_offer");
                          ("name", Json.String name);
                          ("from", Json.String from);
                          ("ckpt", Json.String payload);
                          ("cksum", Json.String cksum);
                        ]
                    in
                    match d.dial addr offer with
                    | Error e ->
                        revert_running d tn;
                        P.err ~id ~code:"migrate_failed"
                          ("offer: " ^ e ^ "; reverted to running")
                    | Ok line -> (
                        match is_ok_resp line with
                        | Error (code, msg) ->
                            abort_and_revert "migrate_failed" (fun () ->
                                Printf.sprintf
                                  "offer refused by %s: %s (%s); reverted \
                                   to running"
                                  addr msg code)
                        | Ok _ -> (
                            maybe_crash d "src_after_offer";
                            let commit =
                              mig_req
                                [
                                  ("op", Json.String "migrate_commit");
                                  ("name", Json.String name);
                                ]
                            in
                            match d.dial addr commit with
                            | Error e ->
                                (* The peer may or may not have durably
                                   committed before the failure: stay
                                   [Migrating] so neither side advances,
                                   and let [resolve] finish. *)
                                P.err ~id ~code:"unresolved"
                                  (Printf.sprintf
                                     "commit to %s failed (%s); tenant \
                                      left migrating, run resolve"
                                     addr e)
                            | Ok line -> (
                                match is_ok_resp line with
                                | Error (code, msg) ->
                                    abort_and_revert "migrate_failed"
                                      (fun () ->
                                        Printf.sprintf
                                          "commit refused by %s: %s (%s); \
                                           reverted to running"
                                          addr msg code)
                                | Ok _ ->
                                    maybe_crash d "src_after_commit";
                                    migrated ())))))))

let h_migrate_offer d ~id req =
  with_fields ~id
  @@ let* name = P.req_string req "name" in
     let* payload = P.req_string req "ckpt" in
     let* cksum = P.req_string req "cksum" in
     let* from = P.opt_string req "from" in
     let from = Option.value from ~default:"" in
     if d.draining then
       Ok
         (P.err ~id ~code:"draining"
            "daemon is draining and cannot accept migrations")
     else if not (name_ok name) then
       Ok
         (P.err ~id ~code:"bad_request"
            "tenant names are 1-64 chars of [A-Za-z0-9_-]")
     else if cksum_of payload <> cksum then
       Ok
         (P.err ~id ~code:"migrate_failed"
            (Printf.sprintf "checksum mismatch: payload %s, offered %s"
               (cksum_of payload) cksum))
     else
       let existing = R.find d.reg name in
       match existing with
       | Some tn when R.owned tn ->
           Ok
             (P.err ~id ~code:"exists"
                (Printf.sprintf "tenant %S already exists here" name))
       | _ ->
           if existing = None && R.count d.reg >= d.cfg.max_tenants then begin
             incr d "serve.shed";
             Ok
               (P.err ~id ~code:"overloaded"
                  ~retry_after_ms:d.cfg.retry_after_ms
                  (Printf.sprintf "tenant table is full (%d)"
                     d.cfg.max_tenants))
           end
           else (
             match R.install d.reg ~name ~status:(R.Prepared from) payload with
             | Error e ->
                 Ok (P.err ~id ~code:"migrate_failed" ("install: " ^ e))
             | Ok tn ->
                 (* Advisory capacity check — the binding one runs at
                    commit, when the tenant starts counting. *)
                 if not (fits d tn.R.t_cost) then begin
                   R.remove d.reg name;
                   incr d "serve.shed";
                   Ok
                     (P.err ~id ~code:"overloaded"
                        ~retry_after_ms:d.cfg.retry_after_ms
                        (Printf.sprintf
                           "cost %d does not fit the fleet capacity %d"
                           tn.R.t_cost d.cfg.capacity))
                 end
                 else begin
                   persist_manifest d;
                   maybe_crash d "dst_after_prepare";
                   incr d "serve.migrate_offers";
                   evict_lru d ~keep:name;
                   Ok
                     (P.ok ~id
                        [
                          ("tenant", Json.String name);
                          ("prepared", Json.Bool true);
                          ("done", Json.Int tn.R.t_done);
                          ("cksum", Json.String cksum);
                        ])
                 end)

let h_migrate_commit d ~id req =
  with_fields ~id
  @@ let* name = P.req_string req "name" in
     Ok
       (find_tenant d ~id name @@ fun tn ->
        match tn.R.t_status with
        | R.Running ->
            (* Idempotent: a re-sent commit after a lost ack. *)
            P.ok ~id
              [
                ("tenant", Json.String name);
                ("committed", Json.Bool true);
                ("done", Json.Int tn.R.t_done);
              ]
        | R.Prepared _ ->
            if not (fits d tn.R.t_cost) then begin
              incr d "serve.shed";
              P.err ~id ~code:"overloaded"
                ~retry_after_ms:d.cfg.retry_after_ms
                (Printf.sprintf "cost %d does not fit the fleet capacity %d"
                   tn.R.t_cost d.cfg.capacity)
            end
            else begin
              tn.R.t_status <- R.Running;
              persist_tenant ~force:true d tn;
              persist_manifest d;
              maybe_crash d "dst_after_commit";
              incr d "serve.migrated_in";
              P.ok ~id
                [
                  ("tenant", Json.String name);
                  ("committed", Json.Bool true);
                  ("done", Json.Int tn.R.t_done);
                ]
            end
        | R.Queued | R.Quarantined _ | R.Migrating _ ->
            P.err ~id ~code:"migrate_failed"
              (Printf.sprintf "tenant %S is not an offered copy" name))

let h_migrate_abort d ~id req =
  with_fields ~id
  @@ let* name = P.req_string req "name" in
     match R.find d.reg name with
     | None ->
         Ok
           (P.ok ~id
              [ ("tenant", Json.String name); ("aborted", Json.Bool true) ])
     | Some tn -> (
         match tn.R.t_status with
         | R.Prepared _ ->
             R.remove d.reg name;
             persist_manifest d;
             incr d "serve.migrate_aborts";
             Ok
               (P.ok ~id
                  [ ("tenant", Json.String name); ("aborted", Json.Bool true) ])
         | _ ->
             Ok (P.err ~id ~code:"committed" "tenant is committed here"))

let h_migrate_query d ~id req =
  with_fields ~id
  @@ let* name = P.req_string req "name" in
     match R.find d.reg name with
     | None ->
         Ok
           (P.ok ~id
              [ ("tenant", Json.String name); ("owner", Json.Bool false) ])
     | Some tn ->
         Ok
           (P.ok ~id
              [
                ("tenant", Json.String name);
                ("owner", Json.Bool (R.owned tn));
                ("done", Json.Int tn.R.t_done);
                ("status", status_json tn);
              ])

(* Finish an interrupted handoff from either side's persisted state. *)
let h_resolve d ~id req =
  with_fields ~id
  @@ let* name = P.req_string req "name" in
     Ok
       (find_tenant d ~id name @@ fun tn ->
        let resolved how =
          P.ok ~id
            [
              ("tenant", Json.String name);
              ("resolved", Json.String how);
              ("status", status_json tn);
            ]
        in
        let query addr k =
          match
            d.dial addr
              (Json.to_string
                 (Json.Obj
                    [
                      ("op", Json.String "migrate_query");
                      ("name", Json.String name);
                    ]))
          with
          | Error e ->
              P.err ~id ~code:"unresolved"
                (Printf.sprintf "peer %s unreachable: %s" addr e)
          | Ok line -> (
              match is_ok_resp line with
              | Error (code, msg) ->
                  P.err ~id ~code:"unresolved"
                    (Printf.sprintf "peer %s: %s (%s)" addr msg code)
              | Ok resp ->
                  let owner =
                    match Json.member "owner" resp with
                    | Some (Json.Bool b) -> b
                    | _ -> false
                  in
                  let peer_done =
                    match Json.member "done" resp with
                    | Some (Json.Int n) -> n
                    | _ -> -1
                  in
                  k ~owner ~peer_done)
        in
        match tn.R.t_status with
        | R.Migrating addr ->
            query addr @@ fun ~owner ~peer_done ->
            if owner && peer_done = tn.R.t_done then begin
              (* The destination durably committed: finish the release. *)
              release d tn;
              resolved "released"
            end
            else if not owner then begin
              (* The destination never committed; clear any offered
                 copy and take ownership back. *)
              ignore
                (d.dial addr
                   (Json.to_string
                      (Json.Obj
                         [
                           ("op", Json.String "migrate_abort");
                           ("name", Json.String name);
                         ])));
              revert_running d tn;
              resolved "reverted"
            end
            else
              P.err ~id ~code:"unresolved"
                (Printf.sprintf
                   "peer %s owns %S at %d iterations, local copy has %d"
                   addr name peer_done tn.R.t_done)
        | R.Prepared "" ->
            P.err ~id ~code:"unresolved"
              "offered copy has no source address; migrate_abort or \
               migrate_commit it explicitly"
        | R.Prepared addr ->
            query addr @@ fun ~owner ~peer_done:_ ->
            if owner then begin
              (* The source kept (or took back) the tenant: this copy
                 is garbage. *)
              R.remove d.reg name;
              persist_manifest d;
              incr d "serve.migrate_aborts";
              resolved "dropped"
            end
            else begin
              (* The source no longer owns it, so this copy is the only
                 one: commit it. *)
              tn.R.t_status <- R.Running;
              persist_tenant ~force:true d tn;
              persist_manifest d;
              incr d "serve.migrated_in";
              resolved "committed"
            end
        | R.Running | R.Queued | R.Quarantined _ -> resolved "none")

let dispatch d req =
  let id = P.id_of req in
  match Json.member "op" req with
  | Some (Json.String op) -> (
      let h =
        match op with
        | "ping" -> Some h_ping
        | "submit" -> Some h_submit
        | "advance" -> Some h_advance
        | "tick" -> Some h_tick
        | "query" -> Some h_query
        | "list" -> Some h_list
        | "remove" -> Some h_remove
        | "reconfigure" -> Some h_reconfigure
        | "metrics" -> Some h_metrics
        | "checkpoint" -> Some h_checkpoint
        | "evict" -> Some h_evict
        | "shutdown" -> Some h_shutdown
        | "drain" -> Some h_drain
        | "migrate" -> Some h_migrate
        | "migrate_offer" -> Some h_migrate_offer
        | "migrate_commit" -> Some h_migrate_commit
        | "migrate_abort" -> Some h_migrate_abort
        | "migrate_query" -> Some h_migrate_query
        | "resolve" -> Some h_resolve
        | _ -> None
      in
      match h with
      | Some h -> (
          match h d ~id req with
          | resp -> resp
          | exception (Injected_crash _ as e) -> raise e
          | exception e ->
              incr d "serve.errors";
              P.err ~id ~code:"internal" (Printexc.to_string e))
      | None ->
          P.err ~id ~code:"unknown_op" (Printf.sprintf "unknown op %S" op))
  | _ -> P.err ~id ~code:"bad_request" "missing string field \"op\""

let handle d req =
  incr d "serve.requests";
  let t0 = Obs.now_wall_ms () in
  let resp = dispatch d req in
  Metrics.observe d.metrics "serve.request_ms" (Obs.now_wall_ms () -. t0);
  (match d.exporter with
  | Some ex -> (
      match Tpdf_obs.Openmetrics.Exporter.try_flush ex with
      | Ok () -> ()
      | Error _ -> incr d "serve.export_errors")
  | None -> ());
  resp

(* Response codes that must not be replayed from the rid cache: the
   daemon's answer legitimately changes as conditions clear, so a
   retried request has to re-execute. *)
let transient_code = function
  | "overloaded" | "queued" | "draining" | "migrating" | "unresolved"
  | "internal" ->
      true
  | _ -> false

let cacheable resp =
  match Json.member "error" resp with
  | None -> true
  | Some err -> (
      match Json.member "code" err with
      | Some (Json.String code) -> not (transient_code code)
      | _ -> false)

(* The two-phase handoff ops are idempotent state machines in their own
   right (a re-sent offer reinstalls, a re-sent commit on [Running]
   acks, an abort on an absent copy acks) and their effects can be
   {e undone} by a later abort — replaying a remembered "prepared"
   response for a copy that has since been aborted would wedge the
   handoff.  They bypass the rid cache entirely. *)
let rid_exempt = function
  | "migrate" | "migrate_offer" | "migrate_commit" | "migrate_abort"
  | "migrate_query" | "resolve" ->
      true
  | _ -> false

let rid_remember d rid line =
  if d.cfg.rid_cache > 0 && not (Hashtbl.mem d.rids rid) then begin
    Hashtbl.replace d.rids rid line;
    Queue.push rid d.rid_q;
    while Queue.length d.rid_q > d.cfg.rid_cache do
      Hashtbl.remove d.rids (Queue.pop d.rid_q)
    done
  end

let handle_line d line =
  match Json.of_string line with
  | Error e ->
      incr d "serve.requests";
      Json.to_string (P.err ~id:Json.Null ~code:"bad_request" ("parse: " ^ e))
  | Ok req -> (
      let rid =
        match (Json.member "rid" req, Json.member "op" req) with
        | Some (Json.String _), Some (Json.String op) when rid_exempt op ->
            None
        | Some (Json.String rid), _ when d.cfg.rid_cache > 0 -> Some rid
        | _ -> None
      in
      match Option.bind rid (Hashtbl.find_opt d.rids) with
      | Some cached ->
          (* Idempotent replay: the mutation already ran; re-deliver the
             response byte for byte without re-executing. *)
          incr d "serve.requests";
          incr d "serve.rid_replays";
          cached
      | None ->
          let resp = handle d req in
          let out = Json.to_string resp in
          (match rid with
          | Some rid when cacheable resp -> rid_remember d rid out
          | _ -> ());
          out)

let create ?pool ?dial cfg =
  let reg_and_counters =
    match cfg.state_dir with
    | Some dir -> R.load ~dir
    | None -> Ok (R.create (), [])
  in
  match reg_and_counters with
  | Error e -> Error e
  | Ok (reg, counters) ->
      let m = Metrics.create () in
      List.iter (fun (k, v) -> if v > 0 then Metrics.incr ~by:v m k) counters;
      if R.count reg > 0 then begin
        Metrics.incr m "serve.daemon_restores";
        Metrics.incr ~by:(R.count reg) m "serve.tenants_restored"
      end;
      let exporter =
        Option.map
          (fun path ->
            Tpdf_obs.Openmetrics.Exporter.create ~path ~interval_ms:0.0 m)
          cfg.metrics_out
      in
      let dial =
        Option.value dial
          ~default:(fun _addr _line ->
            Error "no dialer configured (daemon created without ?dial)")
      in
      Ok
        {
          cfg;
          reg;
          metrics = m;
          pool;
          exporter;
          dial;
          rids = Hashtbl.create 64;
          rid_q = Queue.create ();
          draining = false;
          stop = false;
        }
