type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---------- printing ---------- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* One canonical spelling per float: the shortest %g that round-trips,
   widened with a ".0" when it would otherwise read back as an int. *)
let float_repr f =
  if Float.is_nan f || Float.abs f = Float.infinity then "null"
  else
    let s =
      let cand = Printf.sprintf "%.12g" f in
      if float_of_string cand = f then cand else Printf.sprintf "%.17g" f
    in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let rec print buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      escape buf s;
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          print buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape buf k;
          Buffer.add_string buf "\":";
          print buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  print buf v;
  Buffer.contents buf

(* ---------- parsing ---------- *)

exception Bad of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'n' -> Buffer.add_char buf '\n'
               | 'r' -> Buffer.add_char buf '\r'
               | 't' -> Buffer.add_char buf '\t'
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     match int_of_string_opt ("0x" ^ hex) with
                     | Some c -> c
                     | None -> fail "bad \\u escape"
                   in
                   (* Code points are re-encoded as UTF-8; surrogate
                      pairs are not needed by this protocol and decode
                      as two replacement sequences. *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
                     Buffer.add_char buf
                       (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                   end;
                   pos := !pos + 4
               | c -> fail (Printf.sprintf "bad escape \\%C" c));
            advance ();
            loop ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    (* JSON forbids leading zeros: 01 is two tokens, i.e. an error. *)
    let mantissa =
      if String.length tok > 0 && tok.[0] = '-' then
        String.sub tok 1 (String.length tok - 1)
      else tok
    in
    if
      String.length mantissa > 1
      && mantissa.[0] = '0'
      && (match mantissa.[1] with '0' .. '9' -> true | _ -> false)
    then fail (Printf.sprintf "bad number %S: leading zero" tok);
    let is_int =
      not (String.exists (fun c -> c = '.' || c = 'e' || c = 'E') tok)
    in
    if is_int then
      match int_of_string_opt tok with
      | Some v -> Int v
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail (Printf.sprintf "bad number %S" tok))
    else
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail (Printf.sprintf "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
