(** Admission control: decide at submit time whether a tenant graph can
    be served at all.

    The paper's static analyses double as an admission test (Zhai/
    Niknam/Stefanov, arXiv 1807.04835): a graph the daemon accepts has
    already passed rate consistency, rate safety (Definition 5) and the
    boundedness conjunction of Theorem 2 on the submitted valuation, so
    a running tenant cannot stall or grow its buffers without a fault —
    misbehaviour past admission is the supervisor's department, not the
    scheduler's.  On top of the qualitative checks the verdict carries a
    quantitative cost model: the per-iteration firing count (the token
    budget admission currency) and the MCR iteration-period bound
    checked against an optional per-tenant deadline. *)

type verdict = {
  cost : int;
      (** firings per graph iteration under the valuation (sum of the
          integer repetition vector) — the capacity unit the daemon
          budgets *)
  period_ms : float;
      (** MCR lower bound on the iteration period at 1 ms/firing; [0.]
          on acyclic pipelines (unbounded pipelined throughput), [nan]
          when the bound is unavailable *)
}

type outcome = Admitted of verdict | Rejected of string

val check :
  graph:Tpdf_core.Graph.t ->
  valuation:Tpdf_param.Valuation.t ->
  ?deadline_ms:float ->
  ?max_cost:int ->
  unit ->
  outcome
(** Run the full ladder: structural validation, complete valuation,
    rate consistency, rate safety, boundedness (liveness sampled on the
    submitted valuation), then the [max_cost] token budget and the
    [deadline_ms] MCR check.  The first failing rung rejects with a
    one-line reason. *)
