(** End-to-end latency extraction from schedules.

    Ref. \[8\] of the paper (by the same authors) manages the latency of
    data-dependent tasks; here we expose the corresponding measurements on
    the list-scheduler output: when did a source's iteration start, when
    did the sink finish it, and what is the worst case over a window of
    iterations. *)

val actor_span_ms :
  List_scheduler.schedule -> string -> (float * float) option
(** [actor_span_ms s a] is [(first start, last finish)] over all of [a]'s
    firings, [None] if it never fired. *)

val end_to_end_ms :
  List_scheduler.schedule -> source:string -> sink:string -> float option
(** Last finish of [sink] minus first start of [source]; [None] when either
    never fires.  With a single-iteration canonical period this is the
    iteration latency. *)

val per_iteration_ms :
  ?obs:Tpdf_obs.Obs.t ->
  List_scheduler.schedule ->
  source:string ->
  sink:string ->
  iterations:int ->
  q_source:int ->
  q_sink:int ->
  float list
(** Latency of each of the [iterations] expanded iterations: finish of the
    sink's last firing of iteration k minus start of the source's first
    firing of iteration k.  [q_source]/[q_sink] are per-iteration firing
    counts.  With an enabled [obs], each latency is observed under the
    [latency.iteration_ms] histogram and the extraction is timed as a
    wall-clock ["latency.per_iteration"] span.  @raise Invalid_argument on
    non-positive arguments or missing firings. *)
