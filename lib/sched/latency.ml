let assignments_of s actor =
  List.filter
    (fun (a : List_scheduler.assignment) ->
      a.node.Canonical_period.actor = actor)
    s.List_scheduler.assignments

let actor_span_ms s actor =
  match assignments_of s actor with
  | [] -> None
  | l ->
      Some
        ( List.fold_left (fun acc a -> min acc a.List_scheduler.start_ms) infinity l,
          List.fold_left (fun acc a -> max acc a.List_scheduler.finish_ms) 0.0 l )

let end_to_end_ms s ~source ~sink =
  match (actor_span_ms s source, actor_span_ms s sink) with
  | Some (start, _), Some (_, finish) -> Some (finish -. start)
  | _ -> None

let find_firing s actor index =
  match
    List.find_opt
      (fun (a : List_scheduler.assignment) ->
        a.node.Canonical_period.actor = actor
        && a.node.Canonical_period.index = index)
      s.List_scheduler.assignments
  with
  | Some a -> a
  | None ->
      invalid_arg
        (Printf.sprintf "Latency: firing %s[%d] not in the schedule" actor index)

let per_iteration_ms ?(obs = Tpdf_obs.Obs.disabled) s ~source ~sink ~iterations
    ~q_source ~q_sink =
  if iterations < 1 || q_source < 1 || q_sink < 1 then
    invalid_arg "Latency.per_iteration_ms: non-positive arguments";
  Tpdf_obs.Obs.wall_span obs ~cat:"sched" "latency.per_iteration" @@ fun () ->
  List.init iterations (fun k ->
      let first = find_firing s source (k * q_source) in
      let last = find_firing s sink ((k * q_sink) + q_sink - 1) in
      let lat = last.List_scheduler.finish_ms -. first.List_scheduler.start_ms in
      if Tpdf_obs.Obs.enabled obs then
        Tpdf_obs.Metrics.observe
          (Tpdf_obs.Obs.metrics obs)
          "latency.iteration_ms" lat;
      lat)
