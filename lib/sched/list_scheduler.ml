module Platform = Tpdf_platform.Platform
module Tpdf = Tpdf_core
module Obs = Tpdf_obs.Obs
module Ev = Tpdf_obs.Event
module Metrics = Tpdf_obs.Metrics

type assignment = {
  node : Canonical_period.node;
  pe : int;
  start_ms : float;
  finish_ms : float;
}

type schedule = { assignments : assignment list; makespan_ms : float }

(* Bottom level: longest path from the node to any exit, inclusive. *)
let bottom_levels period durations =
  let levels = Hashtbl.create 64 in
  List.iter
    (fun n ->
      let below =
        List.fold_left
          (fun acc s -> max acc (Hashtbl.find levels s))
          0.0
          (Canonical_period.succs period n)
      in
      Hashtbl.replace levels n (below +. durations n))
    (List.rev (Canonical_period.topological period));
  levels

let run ?(durations = fun _ -> 1.0) ?reserve_control_pe ?(obs = Obs.disabled)
    ~graph period platform =
  Obs.wall_span obs "sched.list_scheduler" @@ fun () ->
  let has_control = Tpdf.Graph.control_actors graph <> [] in
  let reserve =
    match reserve_control_pe with
    | Some b -> b
    | None -> has_control && Platform.pe_count platform > 1
  in
  let is_control n = Tpdf.Graph.is_control graph n.Canonical_period.actor in
  let is_ctrl_consumer n =
    Tpdf.Graph.control_port graph n.Canonical_period.actor <> None
  in
  let levels = bottom_levels period durations in
  (* Priority: control > control-consumers > bottom level. *)
  let better a b =
    let class_of n =
      if is_control n then 0 else if is_ctrl_consumer n then 1 else 2
    in
    let ca = class_of a and cb = class_of b in
    if ca <> cb then ca < cb
    else
      let la = Hashtbl.find levels a and lb = Hashtbl.find levels b in
      if la <> lb then la > lb else compare a b < 0
  in
  let pe_count = Platform.pe_count platform in
  let pe_avail = Array.make pe_count 0.0 in
  let finished = Hashtbl.create 64 in
  (* node -> (finish, pe) *)
  let unsched_preds = Hashtbl.create 64 in
  List.iter
    (fun n ->
      Hashtbl.replace unsched_preds n
        (List.length (Canonical_period.preds period n)))
    (Canonical_period.nodes period);
  let ready = ref [] in
  List.iter
    (fun n -> if Hashtbl.find unsched_preds n = 0 then ready := n :: !ready)
    (Canonical_period.nodes period);
  let assignments = ref [] in
  let total = Canonical_period.node_count period in
  let scheduled = ref 0 in
  while !scheduled < total do
    match !ready with
    | [] -> failwith "List_scheduler.run: no ready node (cyclic dependencies?)"
    | first :: rest ->
        let node = List.fold_left (fun b n -> if better n b then n else b) first rest in
        ready := List.filter (fun n -> n <> node) !ready;
        (* Candidate PEs: control actors use the reserved PE 0 when
           reservation is on; kernels use the others. *)
        let candidates =
          if not reserve then List.init pe_count (fun i -> i)
          else if is_control node then [ 0 ]
          else if pe_count > 1 then List.init (pe_count - 1) (fun i -> i + 1)
          else [ 0 ]
        in
        let est pe =
          List.fold_left
            (fun acc p ->
              let pf, ppe = Hashtbl.find finished p in
              let lat =
                if ppe = pe then 0.0
                else if is_control p then Platform.control_latency_ms platform
                else Platform.latency_ms platform ~src:ppe ~dst:pe
              in
              max acc (pf +. lat))
            pe_avail.(pe)
            (Canonical_period.preds period node)
        in
        let pe =
          List.fold_left
            (fun best pe -> if est pe < est best then pe else best)
            (List.hd candidates) (List.tl candidates)
        in
        let start_ms = est pe in
        let finish_ms = start_ms +. durations node in
        let pe_avail_before = pe_avail.(pe) in
        pe_avail.(pe) <- finish_ms;
        Hashtbl.replace finished node (finish_ms, pe);
        assignments := { node; pe; start_ms; finish_ms } :: !assignments;
        (* Placement decision: one span per firing on its PE's lane, plus
           the idle gap the placement left on that PE (communication
           latency from predecessors on other PEs). *)
        if Obs.enabled obs then begin
          Obs.span obs ~cat:"sched"
            ~track:(Printf.sprintf "PE%d" pe)
            ~name:
              (Printf.sprintf "%s%d" node.Canonical_period.actor
                 (node.Canonical_period.index + 1))
            ~ts_ms:start_ms ~dur_ms:(finish_ms -. start_ms)
            ~args:
              [
                ("pe", Ev.Int pe);
                ("ready", Ev.Int (List.length !ready));
                ("bottom_level", Ev.Float (Hashtbl.find levels node));
              ]
            ();
          let m = Obs.metrics obs in
          Metrics.incr m "sched.assignments";
          Metrics.incr m
            (Printf.sprintf "sched.assignments.pe%d" pe);
          Metrics.observe m "sched.ready_queue"
            (float_of_int (List.length !ready + 1));
          Metrics.observe m "sched.pe_idle_ms" (start_ms -. pe_avail_before)
        end;
        incr scheduled;
        List.iter
          (fun s ->
            let d = Hashtbl.find unsched_preds s - 1 in
            Hashtbl.replace unsched_preds s d;
            if d = 0 then ready := s :: !ready)
          (Canonical_period.succs period node)
  done;
  let assignments =
    List.sort
      (fun a b ->
        let c = compare a.start_ms b.start_ms in
        if c <> 0 then c else compare a.node b.node)
      !assignments
  in
  let makespan_ms =
    List.fold_left (fun acc a -> max acc a.finish_ms) 0.0 assignments
  in
  { assignments; makespan_ms }

let utilization s =
  if s.makespan_ms <= 0.0 then []
  else begin
    let busy = Hashtbl.create 8 in
    List.iter
      (fun a ->
        let prev = try Hashtbl.find busy a.pe with Not_found -> 0.0 in
        Hashtbl.replace busy a.pe (prev +. (a.finish_ms -. a.start_ms)))
      s.assignments;
    List.sort compare
      (Hashtbl.fold (fun pe b acc -> (pe, b /. s.makespan_ms) :: acc) busy [])
  end

let assignment_of s n = List.find (fun a -> a.node = n) s.assignments

let pe_of s n = (assignment_of s n).pe

let pp ppf s =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun a ->
      Format.fprintf ppf "%8.3f - %8.3f  PE%-3d %s%d@," a.start_ms a.finish_ms
        a.pe a.node.Canonical_period.actor
        (a.node.Canonical_period.index + 1))
    s.assignments;
  Format.fprintf ppf "makespan: %.3f ms@]" s.makespan_ms
