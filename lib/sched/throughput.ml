module Obs = Tpdf_obs.Obs
module Metrics = Tpdf_obs.Metrics

let makespan ?durations ?include_actor ?obs ~graph conc platform ~iterations =
  let period = Canonical_period.build ?include_actor ~iterations conc in
  (List_scheduler.run ?durations ?obs ~graph period platform)
    .List_scheduler.makespan_ms

let iteration_period_ms ?(warmup = 2) ?(window = 4) ?durations ?include_actor
    ?(obs = Obs.disabled) ~graph conc platform =
  if window < 1 then invalid_arg "Throughput: window must be positive";
  if warmup < 1 then invalid_arg "Throughput: warmup must be positive";
  Obs.wall_span obs ~cat:"sched" "throughput.iteration_period" @@ fun () ->
  let m_short =
    makespan ?durations ?include_actor ~graph conc platform ~iterations:warmup
  in
  let m_long =
    makespan ?durations ?include_actor ~graph conc platform
      ~iterations:(warmup + window)
  in
  let period = (m_long -. m_short) /. float_of_int window in
  if Obs.enabled obs then
    Metrics.set_gauge (Obs.metrics obs) "throughput.period_ms" period;
  period

let steady_period_ms ?(max_warmup = 40) ?(eps = 1e-6) ?durations ?include_actor
    ?(obs = Obs.disabled) ~graph conc platform =
  if max_warmup < 4 then invalid_arg "Throughput: max_warmup must be >= 4";
  Obs.wall_span obs ~cat:"sched" "throughput.steady_period" @@ fun () ->
  let mk k =
    makespan ?durations ?include_actor ~graph conc platform ~iterations:k
  in
  (* While the pipeline fills, the one-iteration marginal consumes
     initial-token slack and can sit *below* the steady-state period for
     several iterations; once the list schedule becomes periodic the
     marginal is constant.  Declare it settled after three consecutive
     equal marginals (the fill phase of multirate graphs can plateau for
     two). *)
  let rec settle k m0 m1 m2 m3 =
    let d1 = m1 -. m0 and d2 = m2 -. m1 and d3 = m3 -. m2 in
    if
      (Float.abs (d2 -. d1) <= eps && Float.abs (d3 -. d2) <= eps)
      || k + 4 > max_warmup
    then d3
    else settle (k + 1) m1 m2 m3 (mk (k + 4))
  in
  let p = settle 1 (mk 1) (mk 2) (mk 3) (mk 4) in
  if Obs.enabled obs then
    Metrics.set_gauge (Obs.metrics obs) "throughput.steady_period_ms" p;
  p

let throughput_per_s ?warmup ?window ?durations ?include_actor ?obs ~graph conc
    platform =
  1000.0
  /. iteration_period_ms ?warmup ?window ?durations ?include_actor ?obs ~graph
       conc platform
