module Obs = Tpdf_obs.Obs
module Metrics = Tpdf_obs.Metrics

let makespan ?durations ?include_actor ?obs ~graph conc platform ~iterations =
  let period = Canonical_period.build ?include_actor ~iterations conc in
  (List_scheduler.run ?durations ?obs ~graph period platform)
    .List_scheduler.makespan_ms

let iteration_period_ms ?(warmup = 2) ?(window = 4) ?durations ?include_actor
    ?(obs = Obs.disabled) ~graph conc platform =
  if window < 1 then invalid_arg "Throughput: window must be positive";
  if warmup < 1 then invalid_arg "Throughput: warmup must be positive";
  Obs.wall_span obs ~cat:"sched" "throughput.iteration_period" @@ fun () ->
  let m_short =
    makespan ?durations ?include_actor ~graph conc platform ~iterations:warmup
  in
  let m_long =
    makespan ?durations ?include_actor ~graph conc platform
      ~iterations:(warmup + window)
  in
  let period = (m_long -. m_short) /. float_of_int window in
  if Obs.enabled obs then
    Metrics.set_gauge (Obs.metrics obs) "throughput.period_ms" period;
  period

let throughput_per_s ?warmup ?window ?durations ?include_actor ?obs ~graph conc
    platform =
  1000.0
  /. iteration_period_ms ?warmup ?window ?durations ?include_actor ?obs ~graph
       conc platform
