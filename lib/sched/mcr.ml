module Csdf = Tpdf_csdf
module Digraph = Tpdf_graph.Digraph
module Obs = Tpdf_obs.Obs
module Metrics = Tpdf_obs.Metrics

type node = { actor : string; index : int }

type edge = { src : node; dst : node; delay : int }

type t = {
  node_list : node list;
  edge_list : edge list;
  (* The same expansion compiled to dense arrays at [build] time: the
     Bellman-Ford oracle runs tens of times per binary search (each with
     up to |V| relaxation rounds), so node identities are resolved to
     integers once here instead of through a hashtable on every edge of
     every round. *)
  node_arr : node array;
  edge_arr : edge array;
  edge_src : int array;  (* index into node_arr *)
  edge_dst : int array;
  edge_delay : int array;
}

let fdiv a b = if a >= 0 then a / b else -(((-a) + b - 1) / b)

let build ?(obs = Obs.disabled) conc =
  Obs.wall_span obs ~cat:"sched" "mcr.build" @@ fun () ->
  let g = Csdf.Concrete.graph conc in
  (match Csdf.Schedule.run conc with
  | Csdf.Schedule.Complete _ -> ()
  | Csdf.Schedule.Deadlock { stuck; _ } ->
      failwith
        (Printf.sprintf "Mcr.build: graph is not live (stuck: %s)"
           (String.concat ", " stuck)));
  let q = Csdf.Concrete.q conc in
  let node_list =
    List.concat_map
      (fun a -> List.init (q a) (fun index -> { actor = a; index }))
      (Csdf.Graph.actors g)
  in
  let edges = ref [] in
  (* Sequential self-order with an iteration wrap-around. *)
  List.iter
    (fun a ->
      let n = q a in
      for i = 1 to n - 1 do
        edges :=
          { src = { actor = a; index = i - 1 }; dst = { actor = a; index = i }; delay = 0 }
          :: !edges
      done;
      edges :=
        { src = { actor = a; index = n - 1 }; dst = { actor = a; index = 0 }; delay = 1 }
        :: !edges)
    (Csdf.Graph.actors g);
  (* Data dependencies, with iteration delays. *)
  List.iter
    (fun (e : (string, Csdf.Graph.channel) Digraph.edge) ->
      let ch = Csdf.Concrete.chan conc e.id in
      let q_prod = q e.src and q_cons = q e.dst in
      let per_iter = Csdf.Concrete.cumulative ch.Csdf.Concrete.prod q_prod in
      if per_iter > 0 then
        for j = 0 to q_cons - 1 do
          let base =
            Csdf.Concrete.cumulative ch.Csdf.Concrete.cons (j + 1)
            - ch.Csdf.Concrete.init
          in
          (* Smallest iteration k0 >= 0 at which this firing's needs are not
             covered by initial tokens alone. *)
          let k0 =
            if base > 0 then 0
            else 1 + (fdiv (-base) per_iter)
          in
          let needed = base + (k0 * per_iter) in
          if needed > 0 then begin
            let n0 = Csdf.Concrete.firings_needed ch.Csdf.Concrete.prod needed in
            (* absolute producer firing index relative to the consumer's
               iteration: P(k) = k*q_prod + c *)
            let c = n0 - 1 - (k0 * q_prod) in
            let m = c - (fdiv c q_prod * q_prod) in
            let delay = -fdiv c q_prod in
            if delay >= 0 then
              edges :=
                {
                  src = { actor = e.src; index = m };
                  dst = { actor = e.dst; index = j };
                  delay;
                }
                :: !edges
          end
        done)
    (Csdf.Graph.channels g);
  let edge_list = List.sort_uniq compare !edges in
  let node_arr = Array.of_list node_list in
  let idx = Hashtbl.create (2 * Array.length node_arr) in
  Array.iteri (fun i n -> Hashtbl.replace idx n i) node_arr;
  let edge_arr = Array.of_list edge_list in
  let t =
    {
      node_list;
      edge_list;
      node_arr;
      edge_arr;
      edge_src = Array.map (fun e -> Hashtbl.find idx e.src) edge_arr;
      edge_dst = Array.map (fun e -> Hashtbl.find idx e.dst) edge_arr;
      edge_delay = Array.map (fun e -> e.delay) edge_arr;
    }
  in
  if Obs.enabled obs then begin
    let m = Obs.metrics obs in
    Metrics.set_gauge m "mcr.nodes" (float_of_int (List.length t.node_list));
    Metrics.set_gauge m "mcr.edges" (float_of_int (List.length t.edge_list))
  end;
  t

let nodes t = t.node_list

let edges t = t.edge_list

(* Positive-cycle oracle: is there a cycle with
   sum (dur(src) - lambda * delay) > 0 ?  Bellman-Ford longest-path
   relaxation from an all-zero potential, over the dense arrays compiled
   at [build].  Edge weights are fixed during the relaxation, so they are
   evaluated once up front rather than once per round. *)
let bellman t w =
  let n = Array.length t.node_arr in
  let ne = Array.length t.edge_arr in
  let dist = Array.make n 0.0 in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds <= n do
    changed := false;
    incr rounds;
    for i = 0 to ne - 1 do
      let u = Array.unsafe_get t.edge_src i
      and v = Array.unsafe_get t.edge_dst i in
      let cand = Array.unsafe_get dist u +. Array.unsafe_get w i in
      if cand > Array.unsafe_get dist v +. 1e-12 then begin
        Array.unsafe_set dist v cand;
        changed := true
      end
    done
  done;
  !rounds > n

let has_positive_cycle t weight =
  bellman t (Array.init (Array.length t.edge_arr) (fun i -> weight t.edge_arr.(i)))

let iteration_period_ms ?(durations = fun _ -> 1.0) ?(obs = Obs.disabled) t =
  Obs.wall_span obs ~cat:"sched" "mcr.solve" @@ fun () ->
  let oracle_calls = ref 0 in
  (* Durations don't depend on lambda: evaluate them once per solve, so
     each oracle call is pure array arithmetic. *)
  let src_dur = Array.map (fun u -> durations t.node_arr.(u)) t.edge_src in
  let delay_f = Array.map float_of_int t.edge_delay in
  let ne = Array.length t.edge_arr in
  let oracle lambda =
    incr oracle_calls;
    bellman t (Array.init ne (fun i -> src_dur.(i) -. (lambda *. delay_f.(i))))
  in
  let hi0 =
    List.fold_left (fun acc n -> acc +. Float.max 0.0 (durations n)) 1.0 t.node_list
  in
  let result =
    if not (oracle 0.0) then 0.0
    else begin
      let lo = ref 0.0 and hi = ref hi0 in
      (* Widen until infeasible (cannot happen beyond total duration, but be
         safe about degenerate duration functions). *)
      while oracle !hi do
        hi := !hi *. 2.0
      done;
      for _ = 1 to 60 do
        let mid = 0.5 *. (!lo +. !hi) in
        if oracle mid then lo := mid else hi := mid
      done;
      0.5 *. (!lo +. !hi)
    end
  in
  if Obs.enabled obs then begin
    let m = Obs.metrics obs in
    Metrics.incr ~by:!oracle_calls m "mcr.oracle_calls";
    Metrics.set_gauge m "mcr.period_ms" result
  end;
  result
