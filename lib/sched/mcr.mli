(** Intrinsic throughput bound via maximum cycle ratio.

    Expanding one iteration into its firings (the canonical period) and
    adding the {e inter-iteration} dependencies — the edges whose token
    needs reach back across iteration boundaries, including each actor's
    sequential self-loop — yields a homogeneous (HSDF) dependency graph
    whose edges carry {e delays} (how many iterations back the producer
    firing lives).  The self-timed iteration period with unlimited
    processors is the {e maximum cycle ratio}

    {v MCR = max over cycles (Σ firing durations / Σ delays) v}

    computed here by Lawler's binary search with a Bellman-Ford positive-
    cycle oracle.  Every real schedule's steady-state period is ≥ MCR, so
    {!Throughput.iteration_period_ms} is validated against it. *)

type node = { actor : string; index : int }

type edge = {
  src : node;
  dst : node;
  delay : int;  (** iterations separating producer and consumer firing *)
}

type t

val build : ?obs:Tpdf_obs.Obs.t -> Tpdf_csdf.Concrete.t -> t
(** HSDF expansion with inter-iteration delays.  The graph must be live
    (one iteration completes); @raise Failure otherwise.  With an enabled
    [obs], the expansion is timed as a wall-clock ["mcr.build"] span and
    the node/edge counts are recorded as gauges. *)

val nodes : t -> node list
val edges : t -> edge list

val has_positive_cycle : t -> (edge -> float) -> bool
(** The Bellman-Ford oracle itself: does any cycle have positive total
    weight under the given edge weighting?  Runs over dense arrays
    compiled at {!build} (edge weights are evaluated once, then each
    relaxation round is pure array arithmetic).  Exposed for tests and
    for callers with their own cycle questions. *)

val iteration_period_ms :
  ?durations:(node -> float) -> ?obs:Tpdf_obs.Obs.t -> t -> float
(** The maximum cycle ratio under the given per-firing durations
    (default 1.0 per firing).  0 when the graph has no cycle with positive
    delay (a DAG pipeline: unbounded throughput with unlimited buffering
    and processors).  With an enabled [obs], the binary search is timed as
    a wall-clock ["mcr.solve"] span and the number of Bellman-Ford oracle
    calls is counted under [mcr.oracle_calls]. *)
