(** Steady-state throughput estimation.

    Streaming applications run their iteration graph repeatedly; what
    matters is not the latency of one iteration but the {e iteration
    period} once the pipeline is full.  This module estimates it by
    scheduling a window of consecutive iterations and measuring the
    marginal cost of one more. *)

val iteration_period_ms :
  ?warmup:int ->
  ?window:int ->
  ?durations:(Canonical_period.node -> float) ->
  ?include_actor:(string -> bool) ->
  ?obs:Tpdf_obs.Obs.t ->
  graph:Tpdf_core.Graph.t ->
  Tpdf_csdf.Concrete.t ->
  Tpdf_platform.Platform.t ->
  float
(** [(makespan(warmup+window) - makespan(warmup)) / window] under the
    priority list scheduler.  Defaults: warmup 2, window 4, unit
    durations.  With an enabled [obs], timed as a wall-clock
    ["throughput.iteration_period"] span and the result recorded as the
    [throughput.period_ms] gauge.  @raise Invalid_argument on non-positive
    window. *)

val throughput_per_s :
  ?warmup:int ->
  ?window:int ->
  ?durations:(Canonical_period.node -> float) ->
  ?include_actor:(string -> bool) ->
  ?obs:Tpdf_obs.Obs.t ->
  graph:Tpdf_core.Graph.t ->
  Tpdf_csdf.Concrete.t ->
  Tpdf_platform.Platform.t ->
  float
(** Iterations per second: [1000 / iteration_period_ms]. *)
