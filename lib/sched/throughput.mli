(** Steady-state throughput estimation.

    Streaming applications run their iteration graph repeatedly; what
    matters is not the latency of one iteration but the {e iteration
    period} once the pipeline is full.  This module estimates it by
    scheduling a window of consecutive iterations and measuring the
    marginal cost of one more. *)

val iteration_period_ms :
  ?warmup:int ->
  ?window:int ->
  ?durations:(Canonical_period.node -> float) ->
  ?include_actor:(string -> bool) ->
  ?obs:Tpdf_obs.Obs.t ->
  graph:Tpdf_core.Graph.t ->
  Tpdf_csdf.Concrete.t ->
  Tpdf_platform.Platform.t ->
  float
(** [(makespan(warmup+window) - makespan(warmup)) / window] under the
    priority list scheduler.  Defaults: warmup 2, window 4, unit
    durations.  With an enabled [obs], timed as a wall-clock
    ["throughput.iteration_period"] span and the result recorded as the
    [throughput.period_ms] gauge.  @raise Invalid_argument on non-positive
    window. *)

val steady_period_ms :
  ?max_warmup:int ->
  ?eps:float ->
  ?durations:(Canonical_period.node -> float) ->
  ?include_actor:(string -> bool) ->
  ?obs:Tpdf_obs.Obs.t ->
  graph:Tpdf_core.Graph.t ->
  Tpdf_csdf.Concrete.t ->
  Tpdf_platform.Platform.t ->
  float
(** The post-transient iteration period.  While the pipeline fills, the
    one-iteration marginal [makespan(k+1) - makespan(k)] consumes
    initial-token slack and can sit strictly {e below} the steady-state
    period (and below the MCR bound) for several iterations; once the
    list schedule reaches its periodic phase the marginal is constant.
    This estimator grows the warmup until three consecutive marginals
    agree within [eps] (default [1e-6]) and returns that settled value,
    falling back to the last marginal at [max_warmup] (default 40)
    iterations.  Unlike {!iteration_period_ms} with a small window, the
    result is a sound subject for the MCR lower bound.  With an enabled
    [obs], timed as a ["throughput.steady_period"] wall span and recorded
    as the [throughput.steady_period_ms] gauge.
    @raise Invalid_argument when [max_warmup < 4]. *)

val throughput_per_s :
  ?warmup:int ->
  ?window:int ->
  ?durations:(Canonical_period.node -> float) ->
  ?include_actor:(string -> bool) ->
  ?obs:Tpdf_obs.Obs.t ->
  graph:Tpdf_core.Graph.t ->
  Tpdf_csdf.Concrete.t ->
  Tpdf_platform.Platform.t ->
  float
(** Iterations per second: [1000 / iteration_period_ms]. *)
