(** Priority list scheduling of a canonical period onto the platform
    (§III-D).

    The heuristic follows the paper:

    - {e control actors have the highest priority}: whenever a control
      firing is ready it is placed before any kernel, and (by default, when
      the platform has more than one PE) control actors run on a reserved
      processing element, as in Fig. 5;
    - kernels that receive a control token are fired as soon as possible
      after it (second priority class);
    - remaining ties are broken by critical-path (bottom-level) rank;
    - message-passing time is accounted for, with the cheap control-token
      latency making the system behave “as if it was instantaneous”. *)

type assignment = {
  node : Canonical_period.node;
  pe : int;
  start_ms : float;
  finish_ms : float;
}

type schedule = {
  assignments : assignment list;  (** in start-time order *)
  makespan_ms : float;
}

val run :
  ?durations:(Canonical_period.node -> float) ->
  ?reserve_control_pe:bool ->
  ?obs:Tpdf_obs.Obs.t ->
  graph:Tpdf_core.Graph.t ->
  Canonical_period.t ->
  Tpdf_platform.Platform.t ->
  schedule
(** Default duration 1.0 ms per firing; [reserve_control_pe] defaults to
    true when the graph has control actors and the platform more than one
    PE.  With an enabled [obs], every placement decision is emitted as a
    virtual-time span (category ["sched"], one track per PE) carrying the
    chosen PE, ready-queue depth and bottom level, plus assignment
    counters and PE idle-gap / ready-queue histograms; the whole run is
    timed as a wall-clock ["sched.list_scheduler"] span. *)

val assignment_of : schedule -> Canonical_period.node -> assignment
(** @raise Not_found. *)

val pe_of : schedule -> Canonical_period.node -> int
(** @raise Not_found. *)

val utilization : schedule -> (int * float) list
(** Per-PE busy fraction of the makespan, for the PEs that received work;
    empty for an empty schedule. *)

val pp : Format.formatter -> schedule -> unit
