open Tpdf_param
open Tpdf_util
module Digraph = Tpdf_graph.Digraph

type t = { r : (string * Poly.t) list; q : (string * Poly.t) list }

exception Inconsistent of string
exception Disconnected

let ratio_exn what e p =
  if Poly.is_zero p then
    invalid_arg
      (Printf.sprintf "Repetition.solve: zero total %s rate on channel e%d"
         what e)

let topology_matrix g =
  List.map
    (fun (e : (string, Graph.channel) Digraph.edge) ->
      let x = Graph.prod_total e.label and y = Graph.cons_total e.label in
      let entries =
        if e.src = e.dst then [ (e.src, Poly.sub x y) ]
        else [ (e.src, x); (e.dst, Poly.neg y) ]
      in
      (e.id, List.filter (fun (_, p) -> not (Poly.is_zero p)) entries))
    (Graph.channels g)

let verify_against_matrix g t =
  List.for_all
    (fun (_, row) ->
      let dot =
        List.fold_left
          (fun acc (a, coeff) ->
            Poly.add acc (Poly.mul coeff (List.assoc a t.r)))
          Poly.zero row
      in
      Poly.is_zero dot)
    (topology_matrix g)

(* Propagate r along a spanning tree of the undirected skeleton. *)
let propagate g =
  let dg = Graph.digraph g in
  match Digraph.vertices dg with
  | [] -> invalid_arg "Repetition.solve: empty graph"
  | root :: _ ->
      let r = Hashtbl.create 16 in
      Hashtbl.replace r root Frac.one;
      let queue = Queue.create () in
      Queue.add root queue;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        let rv = Hashtbl.find r v in
        List.iter
          (fun (e : (string, Graph.channel) Digraph.edge) ->
            let x = Graph.prod_total e.label and y = Graph.cons_total e.label in
            ratio_exn "production" e.id x;
            ratio_exn "consumption" e.id y;
            let other, rother =
              if e.src = v then
                (e.dst, Frac.mul rv (Frac.make x y))
              else (e.src, Frac.mul rv (Frac.make y x))
            in
            if not (Hashtbl.mem r other) then begin
              Hashtbl.replace r other rother;
              Queue.add other queue
            end)
          (Digraph.incident dg v)
      done;
      if not (List.for_all (Hashtbl.mem r) (Digraph.vertices dg)) then
        raise Disconnected;
      r

let verify g r =
  List.iter
    (fun (e : (string, Graph.channel) Digraph.edge) ->
      let x = Graph.prod_total e.label and y = Graph.cons_total e.label in
      let lhs = Frac.mul (Hashtbl.find r e.src) (Frac.of_poly x)
      and rhs = Frac.mul (Hashtbl.find r e.dst) (Frac.of_poly y) in
      if not (Frac.equal lhs rhs) then
        raise
          (Inconsistent
             (Format.asprintf
                "channel e%d (%s -> %s) is unbalanced: %a * %a <> %a * %a" e.id
                e.src e.dst Frac.pp (Hashtbl.find r e.src) Poly.pp x Frac.pp
                (Hashtbl.find r e.dst) Poly.pp y)))
    (Graph.channels g)

(* Fast path: when every channel's total production and consumption rate is
   a single term — true of any graph whose rates are constants or rational
   multiples of parameter powers — every ratio r̂(a) is a power product
   c · ∏ p^e with integer (possibly negative) exponents.  Represent those
   directly as a coefficient plus a dense exponent vector: propagation,
   verification and normalization become integer-array arithmetic, with no
   polynomial division, GCD or interning on the hot path.  The normalized
   repetition vector is the unique least positive integer-coefficient one,
   so on success the result is identical to the general path's (canonical
   polynomials are unique per value); any deviation — a multi-term rate,
   an unbalanced channel, a zero rate, coefficient overflow, an empty or
   disconnected graph — abandons the fast path and reruns the general
   pipeline so every diagnostic stays byte-for-byte the same. *)
exception Fallback

let solve_fast g =
  let channels = Graph.channels g in
  let term p =
    match Poly.terms p with [ (m, c) ] -> (m, c) | _ -> raise Fallback
  in
  let rates =
    List.map
      (fun (e : (string, Graph.channel) Digraph.edge) ->
        (e.id, term (Graph.prod_total e.label), term (Graph.cons_total e.label)))
      channels
  in
  (* Dense variable indexing over the parameters that actually occur, in
     name order so exponent vectors read out in canonical monomial order. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (_, (mx, _), (my, _)) ->
      List.iter
        (fun (v, _) -> if not (Hashtbl.mem seen v) then Hashtbl.add seen v ())
        (Monomial.to_list mx @ Monomial.to_list my))
    rates;
  let names =
    Array.of_list
      (List.sort String.compare (Hashtbl.fold (fun v () l -> v :: l) seen []))
  in
  let n = Array.length names in
  let idx = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.add idx v i) names;
  (* Per channel, one dense array of exponent differences X - Y: enough for
     both propagation directions and the balance check. *)
  let by_edge = Hashtbl.create 16 in
  List.iter
    (fun (eid, (mx, cx), (my, cy)) ->
      let d = Array.make n 0 in
      List.iter
        (fun (v, k) -> d.(Hashtbl.find idx v) <- k)
        (Monomial.to_list mx);
      List.iter
        (fun (v, k) ->
          let i = Hashtbl.find idx v in
          d.(i) <- d.(i) - k)
        (Monomial.to_list my);
      Hashtbl.replace by_edge eid (cx, cy, d))
    rates;
  let dg = Graph.digraph g in
  match Digraph.vertices dg with
  | [] -> raise Fallback
  | root :: _ ->
      let r = Hashtbl.create 16 in
      Hashtbl.replace r root (Q.one, Array.make n 0);
      let queue = Queue.create () in
      Queue.add root queue;
      while not (Queue.is_empty queue) do
        let v = Queue.pop queue in
        let cv, ev = Hashtbl.find r v in
        List.iter
          (fun (e : (string, Graph.channel) Digraph.edge) ->
            let fwd = e.src = v in
            let other = if fwd then e.dst else e.src in
            if not (Hashtbl.mem r other) then begin
              let cx, cy, d = Hashtbl.find by_edge e.id in
              let c =
                if fwd then Q.div (Q.mul cv cx) cy else Q.div (Q.mul cv cy) cx
              in
              let eo = Array.make n 0 in
              if fwd then
                for i = 0 to n - 1 do
                  Array.unsafe_set eo i
                    (Array.unsafe_get ev i + Array.unsafe_get d i)
                done
              else
                for i = 0 to n - 1 do
                  Array.unsafe_set eo i
                    (Array.unsafe_get ev i - Array.unsafe_get d i)
                done;
              Hashtbl.replace r other (c, eo);
              Queue.add other queue
            end)
          (Digraph.incident dg v)
      done;
      if not (List.for_all (Hashtbl.mem r) (Digraph.vertices dg)) then
        raise Fallback;
      (* Balance check: r(src)·X = r(dst)·Y on every channel. *)
      List.iter
        (fun (e : (string, Graph.channel) Digraph.edge) ->
          let cx, cy, d = Hashtbl.find by_edge e.id in
          let cs, es = Hashtbl.find r e.src
          and cd, ed = Hashtbl.find r e.dst in
          if not (Q.equal (Q.mul cs cx) (Q.mul cd cy)) then raise Fallback;
          (* r(src)·X = r(dst)·Y componentwise: es + (X - Y) = ed. *)
          for i = 0 to n - 1 do
            if
              Array.unsafe_get es i + Array.unsafe_get d i
              <> Array.unsafe_get ed i
            then raise Fallback
          done)
        channels;
      (* Normalize: subtract the per-variable minimum exponent (= clearing
         denominators then cancelling the common monomial), divide by the
         rational content, fix the sign on the first entry. *)
      let entries =
        List.map (fun a -> (a, Hashtbl.find r a)) (Graph.actors g)
      in
      let mins = Array.make n max_int in
      List.iter
        (fun (_, (_, e)) ->
          for i = 0 to n - 1 do
            if e.(i) < mins.(i) then mins.(i) <- e.(i)
          done)
        entries;
      let content =
        List.fold_left (fun acc (_, (c, _)) -> Q.gcd acc c) Q.zero entries
      in
      let scale = if Q.is_zero content then Q.one else Q.inv content in
      let scale =
        match entries with
        | (_, (c, _)) :: _ when Q.sign (Q.mul c scale) < 0 -> Q.neg scale
        | _ -> scale
      in
      let to_poly (c, e) =
        let w = ref 0 in
        for i = 0 to n - 1 do
          let d = Array.unsafe_get e i - Array.unsafe_get mins i in
          Array.unsafe_set e i d;
          if d > 0 then incr w
        done;
        let vs = Array.make !w ("", 0) in
        let k = ref 0 in
        for i = 0 to n - 1 do
          let d = Array.unsafe_get e i in
          if d > 0 then begin
            Array.unsafe_set vs !k (Array.unsafe_get names i, d);
            incr k
          end
        done;
        Poly.monomial (Q.mul c scale) (Monomial.of_sorted_array vs)
      in
      List.map (fun (a, v) -> (a, to_poly v)) entries

(* Normalize a vector of rational functions to the least positive vector of
   integer-coefficient polynomials: clear polynomial denominators, then
   cancel common numeric content and common parameter powers.

   Denominators are cleared in one pass by multiplying every entry with the
   LCM of all denominators.  Any common multiple yields the same final
   vector: the content/common-gcd cancellation below divides the extra
   factor back out.  The pre-rewrite loop (multiply everything by the first
   surviving denominator, rescan) is kept as a fallback for the regime
   where the polynomial GCD overflows native ints and the LCM pass can
   leave residual fractions — there it reproduces the old behavior
   exactly. *)
let normalize entries =
  let entries = ref entries in
  let fractional () =
    List.find_opt
      (fun (_, f) -> not (Poly.equal (Frac.den f) Poly.one))
      !entries
  in
  let clear_lcm () =
    let dens =
      List.filter_map
        (fun (_, f) ->
          let d = Frac.den f in
          if Poly.equal d Poly.one then None else Some d)
        !entries
    in
    match dens with
    | [] -> ()
    | d :: rest -> (
        match
          let l = List.fold_left Poly.lcm d rest in
          let fl = Frac.of_poly l in
          List.map (fun (a, x) -> (a, Frac.mul x fl)) !entries
        with
        | cleared -> entries := cleared
        | exception Intmath.Overflow -> ())
  in
  let rec clear () =
    match fractional () with
    | None -> ()
    | Some (_, f) ->
        let d = Frac.of_poly (Frac.den f) in
        entries := List.map (fun (a, x) -> (a, Frac.mul x d)) !entries;
        clear ()
  in
  clear_lcm ();
  clear ();
  let polys =
    List.map
      (fun (a, f) ->
        match Frac.to_poly f with
        | Some p -> (a, p)
        | None -> assert false)
      !entries
  in
  (* Common numeric content. *)
  let content =
    List.fold_left (fun acc (_, p) -> Q.gcd acc (Poly.content p)) Q.zero polys
  in
  let polys =
    if Q.is_zero content then polys
    else List.map (fun (a, p) -> (a, Poly.scale (Q.inv content) p)) polys
  in
  (* Common polynomial factor (parameter powers and beyond): the primitive
     multivariate GCD of all entries. *)
  let common =
    List.fold_left (fun acc (_, p) -> Poly.gcd acc p) Poly.zero polys
  in
  let polys =
    if Poly.is_zero common || Poly.equal common Poly.one then polys
    else
      List.map
        (fun (a, p) ->
          match Poly.divide p common with
          | Some q -> (a, q)
          (* gcd (exact or fallback) always divides every fold argument *)
          | None -> assert false)
        polys
  in
  (* Fix the sign using the first entry. *)
  match polys with
  | (_, p) :: _ when not (Poly.is_zero p) && Q.sign (snd (Poly.leading p)) < 0
    ->
      List.map (fun (a, p) -> (a, Poly.neg p)) polys
  | _ -> polys

let solve_general g =
  let raw = propagate g in
  verify g raw;
  let actor_order = Graph.actors g in
  let entries = List.map (fun a -> (a, Hashtbl.find raw a)) actor_order in
  normalize entries

let solve g =
  let r =
    match solve_fast g with
    | r -> r
    | exception (Fallback | Intmath.Overflow) -> solve_general g
  in
  let q =
    List.map (fun (a, p) -> (a, Poly.mul (Poly.of_int (Graph.phases g a)) p)) r
  in
  { r; q }

let is_consistent g =
  match solve g with
  | _ -> true
  | exception (Inconsistent _ | Disconnected) -> false

let r_of t a = List.assoc a t.r

let q_of t a = List.assoc a t.q

let q_int t v =
  List.map
    (fun (a, p) ->
      let n = Poly.eval_int (Valuation.env v) p in
      if n <= 0 then
        invalid_arg
          (Printf.sprintf
             "Repetition.q_int: repetition count of %s is %d under the given \
              valuation"
             a n);
      (a, n))
    t.q

let pp ppf t =
  Format.fprintf ppf "@[<v>r = [%a]@,q = [%a]@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (a, p) -> Format.fprintf ppf "%s:%a" a Poly.pp p))
    t.r
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (a, p) -> Format.fprintf ppf "%s:%a" a Poly.pp p))
    t.q
