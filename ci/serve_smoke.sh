#!/bin/sh
# Serving smoke: start the daemon on a Unix socket, submit two graphs,
# advance both, kill -9 the daemon, restart it on the same state
# directory and advance further — the combined transcript must be
# byte-identical to an uninterrupted daemon's.  This drives the real
# binary over the real socket; the in-process equivalents live in
# test/test_serve.ml.
# Usage: ci/serve_smoke.sh   (or: make serve-smoke)
set -eu
cd "$(dirname "$0")/.."

if ! command -v python3 > /dev/null 2>&1; then
  echo "serve-smoke: SKIPPED (python3 needed to JSON-escape graph sources)"
  exit 0
fi

dune build bin/tpdf_tool.exe
bin=_build/default/bin/tpdf_tool.exe
dir="$(mktemp -d)"
pid=
cleanup() {
  [ -n "$pid" ] && kill -9 "$pid" 2> /dev/null || true
  rm -rf "$dir"
}
trap cleanup EXIT

"$bin" export fig1 "$dir/fig1.tpdf" > /dev/null
"$bin" export fig2 "$dir/fig2.tpdf" > /dev/null

python3 - "$dir" <<'EOF'
import json, sys
d = sys.argv[1]
fig1 = open(d + '/fig1.tpdf').read()
fig2 = open(d + '/fig2.tpdf').read()
def w(name, reqs):
    with open(d + '/' + name, 'w') as f:
        f.write('\n'.join(json.dumps(r) for r in reqs) + '\n')
sub = [
    {"id": "s1", "op": "submit", "name": "alpha", "graph": fig1},
    {"id": "s2", "op": "submit", "name": "beta", "graph": fig2,
     "params": {"p": 2}},
]
adv1 = [
    {"id": "a1", "op": "advance", "name": "alpha", "iterations": 2},
    {"id": "b1", "op": "advance", "name": "beta", "iterations": 2},
]
adv2 = [
    {"id": "a2", "op": "advance", "name": "alpha", "iterations": 3},
    {"id": "b2", "op": "advance", "name": "beta", "iterations": 3},
    {"id": "q1", "op": "query", "name": "alpha"},
    {"id": "q2", "op": "query", "name": "beta"},
]
w('phase1.txt', sub + adv1)
w('phase2.txt', adv2)
w('golden.txt', sub + adv1 + adv2)
EOF

# Golden transcript: one daemon, never interrupted.
"$bin" serve "$dir/gsock" --state-dir "$dir/gstate" 2> /dev/null &
pid=$!
"$bin" client "$dir/gsock" < "$dir/golden.txt" > "$dir/golden.out"
kill -9 "$pid" 2> /dev/null || true
wait "$pid" 2> /dev/null || true

# Crash run: phase 1, kill -9 mid-fleet, restart on the same state
# directory, phase 2.  The daemon checkpoints synchronously per request,
# so nothing is lost.
"$bin" serve "$dir/sock" --state-dir "$dir/state" 2> /dev/null &
pid=$!
"$bin" client "$dir/sock" < "$dir/phase1.txt" > "$dir/run.out"
kill -9 "$pid" 2> /dev/null || true
wait "$pid" 2> /dev/null || true
"$bin" serve "$dir/sock" --state-dir "$dir/state" 2> /dev/null &
pid=$!
"$bin" client "$dir/sock" < "$dir/phase2.txt" >> "$dir/run.out"
kill -9 "$pid" 2> /dev/null || true
wait "$pid" 2> /dev/null || true
pid=

diff "$dir/golden.out" "$dir/run.out"
echo "serve-smoke: OK"
