#!/bin/sh
# Network-chaos smoke: drive the real binary over real sockets through
# the failure modes DESIGN.md section 10 promises to survive.
#
#   1. kill -9 mid-migration: daemon A self-SIGKILLs at an injected
#      crash point (--kill-at src_after_commit) while handing tenant
#      "mv" to daemon B.  After restarting A and running
#      `client --resolve`, the tenant must be live on *exactly one*
#      daemon, its transcript from there on and its newest checkpoint
#      must be byte-identical to an unmigrated control daemon's.
#   2. graceful drain: `client --drain` flips the daemon into
#      draining (new submissions shed with code "draining", existing
#      tenants still advance), `--drain --stop` stops it.
#   3. netfault pass-through: a daemon whose socket layer shreds every
#      write into tiny chunks (--netfault) still answers correctly.
#
# The in-process equivalents (full 7-point crash matrix, chaotic-dial
# seed sweep, protocol fuzz) live in test/test_serve.ml; this script
# checks the same contracts end-to-end through bin/tpdf_tool.
# Usage: ci/netchaos_smoke.sh   (or: make netchaos-smoke)
set -eu
cd "$(dirname "$0")/.."

if ! command -v python3 > /dev/null 2>&1; then
  echo "netchaos-smoke: SKIPPED (python3 needed to JSON-escape graph sources)"
  exit 0
fi

dune build bin/tpdf_tool.exe
bin=_build/default/bin/tpdf_tool.exe
dir="$(mktemp -d)"
pids=""
cleanup() {
  for p in $pids; do kill -9 "$p" 2> /dev/null || true; done
  rm -rf "$dir"
}
trap cleanup EXIT

"$bin" export fig1 "$dir/fig1.tpdf" > /dev/null
graph=$(python3 -c 'import json,sys; print(json.dumps(open(sys.argv[1]).read()))' "$dir/fig1.tpdf")

wait_sock() {
  i=0
  while [ ! -S "$1" ] && [ "$i" -lt 100 ]; do
    sleep 0.1
    i=$((i + 1))
  done
  [ -S "$1" ] || { echo "netchaos-smoke: FAIL ($1 never appeared)" >&2; exit 1; }
}

req() { # req SOCKET JSON-LINE
  "$bin" client "$1" -e "$2"
}

expect_ok() { # expect_ok WHAT OUT
  case "$2" in
    *'"ok":true'*) ;;
    *) echo "netchaos-smoke: FAIL ($1): $2" >&2; exit 1 ;;
  esac
}

expect_code() { # expect_code WHAT CODE OUT
  case "$3" in
    *'"code":"'"$2"'"'*) ;;
    *) echo "netchaos-smoke: FAIL ($1, wanted code $2): $3" >&2; exit 1 ;;
  esac
}

newest_ckpt() { # newest_ckpt STATE_DIR TENANT
  ls "$1/tenants/$2" | sort | tail -n 1
}

# ---- control: one daemon, never interrupted, never migrated --------------
"$bin" serve "$dir/csock" --state-dir "$dir/cstate" 2> /dev/null &
cpid=$!
pids="$pids $cpid"
wait_sock "$dir/csock"
expect_ok "control submit" "$(req "$dir/csock" '{"id":"s","op":"submit","name":"mv","graph":'"$graph"'}')"
expect_ok "control advance" "$(req "$dir/csock" '{"id":"a1","op":"advance","name":"mv","iterations":3}')"
req "$dir/csock" '{"id":"a2","op":"advance","name":"mv","iterations":2}' > "$dir/control_adv2.out"
req "$dir/csock" '{"id":"q","op":"query","name":"mv"}' > "$dir/control_q.out"
kill -9 "$cpid" 2> /dev/null || true
wait "$cpid" 2> /dev/null || true

# ---- chaos: kill -9 the source daemon mid-handoff ------------------------
# src_after_commit: the destination has committed the tenant but the
# source dies before releasing its own copy — the worst-case "both
# sides have durable state" window.
"$bin" serve "$dir/asock" --state-dir "$dir/astate" --kill-at src_after_commit 2> /dev/null &
apid=$!
pids="$pids $apid"
"$bin" serve "$dir/bsock" --state-dir "$dir/bstate" 2> /dev/null &
bpid=$!
pids="$pids $bpid"
wait_sock "$dir/asock"
wait_sock "$dir/bsock"

expect_ok "submit on A" "$(req "$dir/asock" '{"id":"s","op":"submit","name":"mv","graph":'"$graph"'}')"
expect_ok "advance on A" "$(req "$dir/asock" '{"id":"a1","op":"advance","name":"mv","iterations":3}')"

# The migrate request dies with daemon A (injected SIGKILL, no reply);
# the client's retries then hit a dead socket and give up.
"$bin" client "$dir/asock" --retries 1 --migrate mv --to "$dir/bsock" > /dev/null 2>&1 || true
wait "$apid" 2> /dev/null || true

# Restart A on the same state directory and resolve the in-doubt handoff.
"$bin" serve "$dir/asock" --state-dir "$dir/astate" 2> /dev/null &
apid=$!
pids="$pids $apid"
wait_sock "$dir/asock"
expect_ok "resolve on A" "$(req "$dir/asock" '{"op":"resolve","name":"mv"}')"

# Exactly one owner: gone from A, running on B with nothing lost.
expect_code "post-resolve query on A" unknown_tenant \
  "$(req "$dir/asock" '{"id":"q","op":"query","name":"mv"}')"
bq=$(req "$dir/bsock" '{"id":"q","op":"query","name":"mv"}')
expect_ok "post-resolve query on B" "$bq"
case "$bq" in
  *'"status":"running"'*) ;;
  *) echo "netchaos-smoke: FAIL (tenant not running on B): $bq" >&2; exit 1 ;;
esac

# From here on B must be indistinguishable from the control daemon:
# same advance transcript, same query, byte-identical newest checkpoint.
req "$dir/bsock" '{"id":"a2","op":"advance","name":"mv","iterations":2}' > "$dir/b_adv2.out"
req "$dir/bsock" '{"id":"q","op":"query","name":"mv"}' > "$dir/b_q.out"
diff "$dir/control_adv2.out" "$dir/b_adv2.out"
diff "$dir/control_q.out" "$dir/b_q.out"
c_ck=$(newest_ckpt "$dir/cstate" mv)
b_ck=$(newest_ckpt "$dir/bstate" mv)
[ "$c_ck" = "$b_ck" ] || {
  echo "netchaos-smoke: FAIL (ckpt names differ: $c_ck vs $b_ck)" >&2
  exit 1
}
cmp "$dir/cstate/tenants/mv/$c_ck" "$dir/bstate/tenants/mv/$b_ck"
kill -9 "$apid" "$bpid" 2> /dev/null || true
wait "$apid" 2> /dev/null || true
wait "$bpid" 2> /dev/null || true

# ---- graceful drain ------------------------------------------------------
"$bin" serve "$dir/dsock" --state-dir "$dir/dstate" 2> /dev/null &
dpid=$!
pids="$pids $dpid"
wait_sock "$dir/dsock"
expect_ok "submit before drain" "$(req "$dir/dsock" '{"op":"submit","name":"keep","graph":'"$graph"'}')"
dr=$("$bin" client "$dir/dsock" --drain)
expect_ok "drain" "$dr"
case "$dr" in
  *'"draining":true'*) ;;
  *) echo "netchaos-smoke: FAIL (drain reply lacks draining:true): $dr" >&2; exit 1 ;;
esac
expect_code "submit while draining" draining \
  "$(req "$dir/dsock" '{"op":"submit","name":"new","graph":'"$graph"'}')"
expect_ok "advance while draining" \
  "$(req "$dir/dsock" '{"op":"advance","name":"keep","iterations":1}')"
expect_ok "drain --stop" "$("$bin" client "$dir/dsock" --drain --stop)"
wait "$dpid" 2> /dev/null || true

# ---- netfault pass-through ----------------------------------------------
# Every byte of every reply dribbles out in 2-byte chunks and every read
# is shredded too; the framing layer must reassemble it all.
"$bin" serve "$dir/nsock" --netfault 'shortread:1.0:5,shortwrite:1.0:2' \
  --netfault-seed 3 2> /dev/null &
npid=$!
pids="$pids $npid"
wait_sock "$dir/nsock"
for i in 1 2 3; do
  out=$(req "$dir/nsock" '{"id":"p'"$i"'","op":"ping"}')
  expect_ok "ping $i under netfault" "$out"
  case "$out" in
    *'"id":"p'"$i"'"'*) ;;
    *) echo "netchaos-smoke: FAIL (ping $i id mismatch): $out" >&2; exit 1 ;;
  esac
done
kill -9 "$npid" 2> /dev/null || true
wait "$npid" 2> /dev/null || true
pids=""

echo "netchaos-smoke: OK"
