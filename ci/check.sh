#!/bin/sh
# Repository check: full build, test suites, and an observability smoke run.
# Usage: ci/check.sh   (or: make check)
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

# The suite runs twice: once with the parallel-equivalence tests at their
# built-in domain counts {1,2,4}, and once with TPDF_DOMAINS=4 adding a
# tool-level pool to the sweep.  --force on the second run because dune
# does not key its test cache on the environment.
echo "== dune runtest (TPDF_DOMAINS=1) =="
TPDF_DOMAINS=1 dune runtest

echo "== dune runtest (TPDF_DOMAINS=4) =="
TPDF_DOMAINS=4 dune runtest --force

# Seed matrix: seed 90 once drove the MCR throughput qcheck in
# test_integration into a false failure (steady-state period vs MCR bound
# on a degenerate random graph); pin it so the regression stays fixed.
echo "== dune runtest (QCHECK_SEED=90) =="
QCHECK_SEED=90 dune runtest --force

echo "== smoke: tpdf_tool profile fig2 -p p=2 =="
dune exec bin/tpdf_tool.exe -- profile fig2 -p p=2 > /dev/null

echo "== smoke: tpdf_tool trace ofdm-tpdf (chrome) =="
out="$(mktemp)"
trap 'rm -f "$out"' EXIT
dune exec bin/tpdf_tool.exe -- trace ofdm-tpdf -p beta=2 -p N=8 -p L=1 \
  --format chrome -o "$out" > /dev/null
# the export must be non-trivial and carry reconfiguration instants
grep -q '"traceEvents"' "$out"
grep -q '"reconfigure"' "$out"

# Chaos smoke: seeded fault injection on both case-study graphs.  The
# command exits non-zero on an unrecovered stall, failing the check.
echo "== smoke: tpdf_tool chaos edge (seed 42) =="
dune exec bin/tpdf_tool.exe -- chaos edge --seed 42 \
  --faults 'fail:IDuplicate:0.8:2,jitter:*:0.2:0.5' --iterations 4 > /dev/null

echo "== smoke: tpdf_tool chaos ofdm-tpdf (seed 42, QAM -> QPSK fallback) =="
chaos_out="$(mktemp)"
trap 'rm -f "$out" "$chaos_out"' EXIT
dune exec bin/tpdf_tool.exe -- chaos ofdm-tpdf -p beta=2 -p N=8 -p L=1 \
  --seed 42 --faults 'overrun:QAM:0.8:8,fail:FFT:0.3:4' \
  --deadline QAM=0.05 --degrade-after 2 --iterations 6 > "$chaos_out"
# the deadline pressure on the 16-QAM branch must trigger the mode fallback
grep -q 'degraded DUP -> qpsk' "$chaos_out"
grep -q 'degraded TRAN -> qpsk' "$chaos_out"

# Compiled-backend equivalence smoke: `--compiled` must leave every
# output byte unchanged — the backend is an execution strategy, never a
# semantics.  One synthetic graph byte-compared end to end, plus the
# OFDM case study's full mode-scenario sweep compared on the recorded
# virtual-clock event stream (wall-clock spans differ by definition).
echo "== smoke: compiled backend equivalence (--compiled) =="
cmp_dir="$(mktemp -d)"
trap 'rm -f "$out" "$chaos_out"; rm -rf "$cmp_dir"' EXIT
dune exec bin/tpdf_tool.exe -- simulate fig2 -p p=2 -i 3 --trace \
  > "$cmp_dir/event.out"
dune exec bin/tpdf_tool.exe -- simulate fig2 -p p=2 -i 3 --trace --compiled \
  > "$cmp_dir/compiled.out"
if ! cmp -s "$cmp_dir/event.out" "$cmp_dir/compiled.out"; then
  echo "compiled backend diverged on: simulate fig2" >&2
  diff "$cmp_dir/event.out" "$cmp_dir/compiled.out" >&2 || true
  exit 1
fi
test -s "$cmp_dir/event.out"
dune exec bin/tpdf_tool.exe -- trace ofdm-tpdf -p beta=2 -p N=8 -p L=1 \
  -i 2 -f csv | grep -v '^wall,' > "$cmp_dir/event.csv"
dune exec bin/tpdf_tool.exe -- trace ofdm-tpdf -p beta=2 -p N=8 -p L=1 \
  -i 2 -f csv --compiled | grep -v '^wall,' > "$cmp_dir/compiled.csv"
if ! cmp -s "$cmp_dir/event.csv" "$cmp_dir/compiled.csv"; then
  echo "compiled backend diverged on: trace ofdm-tpdf" >&2
  diff "$cmp_dir/event.csv" "$cmp_dir/compiled.csv" >&2 || true
  exit 1
fi
grep -q 'virtual,' "$cmp_dir/event.csv"
rm -rf "$cmp_dir"
trap 'rm -f "$out" "$chaos_out"' EXIT

# Engine bench smoke: E17 at reduced sizes must produce a parseable
# BENCH_engine.json with positive throughput on both backends.  (The
# engine-vs-seed and compiled-vs-event equivalence suites run as part
# of `dune runtest` above.)
echo "== smoke: bench E17 (engine throughput) =="
bench_dir="$(mktemp -d)"
trap 'rm -f "$out" "$chaos_out"; rm -rf "$bench_dir"' EXIT
TPDF_BENCH_SMOKE=1 TPDF_BENCH_ONLY=E17 \
  TPDF_BENCH_OUT="$bench_dir/BENCH_engine.json" \
  dune exec bench/main.exe > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 - "$bench_dir/BENCH_engine.json" BENCH_engine.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["experiment"] == "E17", "unexpected experiment tag"
assert doc["runs"], "no benchmark runs recorded"
assert all(r["events_per_sec"] > 0 for r in doc["runs"]), "non-positive throughput"
assert all(r["compiled_events_per_sec"] > 0 for r in doc["runs"]), \
    "non-positive compiled throughput"

# Perf regression gates on the checked-in full-size E17 results: the
# fan cliff must stay dead (fan@1e4 within 10x of chain@1e4) and the
# compiled backend must keep its >= 2x margin on chain@1e3.
with open(sys.argv[2]) as f:
    full = json.load(f)
assert full["experiment"] == "E17" and not full["smoke"], \
    "checked-in BENCH_engine.json is not a full E17 run"
by = {(r["graph"], r["actors"]): r for r in full["runs"]}
fan, chain = by[("fan", 10_000)], by[("chain", 10_000)]
assert fan["events_per_sec"] * 10 >= chain["events_per_sec"], \
    "fan cliff regressed: fan@1e4 is more than 10x slower than chain@1e4"
c1e3 = by[("chain", 1000)]
assert c1e3["compiled_vs_interpreted"] >= 2.0, \
    "compiled backend below 2x on chain@1e3"
EOF
else
  grep -q '"experiment": "E17"' "$bench_dir/BENCH_engine.json"
  grep -q '"events_per_sec"' "$bench_dir/BENCH_engine.json"
  grep -q '"compiled_events_per_sec"' "$bench_dir/BENCH_engine.json"
  if grep -q '"events_per_sec": 0' "$bench_dir/BENCH_engine.json"; then
    echo "bench smoke: zero throughput" >&2
    exit 1
  fi
fi

# Multicore scaling smoke: E18 at reduced sizes must produce a parseable
# BENCH_par.json with a domain sweep, positive throughput, and the shared
# metadata block every BENCH_*.json writer emits.
echo "== smoke: bench E18 (multicore scaling) =="
TPDF_BENCH_SMOKE=1 TPDF_BENCH_ONLY=E18 \
  TPDF_BENCH_PAR_OUT="$bench_dir/BENCH_par.json" \
  dune exec bench/main.exe > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 - "$bench_dir/BENCH_par.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["experiment"] == "E18", "unexpected experiment tag"
assert doc["domain_sweep"], "no domain sweep recorded"
assert doc["metadata"]["cores_detected"] >= 1, "metadata block missing"
assert doc["edge"] and doc["engine"], "missing edge or engine runs"
assert all(r["mpix_per_sec"] > 0 for r in doc["edge"]), "non-positive Mpixel/s"
assert all(r["events_per_sec"] > 0 for r in doc["engine"]), "non-positive events/s"
assert all(r["speedup_vs_1"] > 0 for r in doc["edge"] + doc["engine"]), \
    "non-positive speedup"
EOF
else
  grep -q '"experiment": "E18"' "$bench_dir/BENCH_par.json"
  grep -q '"domain_sweep"' "$bench_dir/BENCH_par.json"
  grep -q '"speedup_vs_1"' "$bench_dir/BENCH_par.json"
fi

# CLI hardening smoke: a malformed .tpdf must exit non-zero with a
# one-line file:line diagnostic, not a backtrace.
echo "== smoke: CLI hardening (malformed graph file) =="
bad_dir="$(mktemp -d)"
trap 'rm -f "$out" "$chaos_out"; rm -rf "$bench_dir" "$bad_dir"' EXIT
printf 'not a tpdf file\n' > "$bad_dir/bad.tpdf"
status=0
dune exec bin/tpdf_tool.exe -- analyze "$bad_dir/bad.tpdf" \
  > /dev/null 2> "$bad_dir/err" || status=$?
if [ "$status" -eq 0 ]; then
  echo "malformed graph accepted" >&2
  exit 1
fi
grep -q 'bad\.tpdf:1:' "$bad_dir/err"
test "$(wc -l < "$bad_dir/err")" -eq 1

# Crash-recovery smoke: a chaos run killed mid-flight must exit 3 and
# leave a resumable checkpoint; resuming must reproduce the
# uninterrupted run's stdout byte for byte.
echo "== smoke: crash recovery (chaos --kill-at-ms + resume) =="
rec_dir="$(mktemp -d)"
trap 'rm -f "$out" "$chaos_out"; rm -rf "$bench_dir" "$bad_dir" "$rec_dir"' EXIT
chaos_args="chaos ofdm-tpdf -p beta=2 -p N=8 -p L=1 --seed 42 \
  --faults overrun:QAM:0.8:8,fail:FFT:0.3:4 --deadline QAM=0.05 \
  --degrade-after 2 --iterations 6"
dune exec bin/tpdf_tool.exe -- $chaos_args > "$rec_dir/golden"
status=0
dune exec bin/tpdf_tool.exe -- $chaos_args \
  --checkpoint-every 1 --checkpoint-dir "$rec_dir/ckpts" \
  --kill-at-ms 3.0 > /dev/null || status=$?
if [ "$status" -ne 3 ]; then
  echo "expected exit 3 from a killed run, got $status" >&2
  exit 1
fi
dune exec bin/tpdf_tool.exe -- resume "$rec_dir/ckpts" \
  > "$rec_dir/resumed" 2> /dev/null
diff "$rec_dir/golden" "$rec_dir/resumed"

# Checkpoint-overhead smoke: E19 at reduced sizes must produce a
# parseable BENCH_ckpt.json with the period sweep, positive throughput
# and sane checkpoint sizes/restore latencies.
echo "== smoke: bench E19 (checkpoint overhead) =="
TPDF_BENCH_SMOKE=1 TPDF_BENCH_ONLY=E19 \
  TPDF_BENCH_CKPT_OUT="$bench_dir/BENCH_ckpt.json" \
  dune exec bench/main.exe > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 - "$bench_dir/BENCH_ckpt.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["experiment"] == "E19", "unexpected experiment tag"
assert 0 in doc["periods"], "period sweep must include off (0)"
assert doc["metadata"]["cores_detected"] >= 1, "metadata block missing"
assert doc["runs"], "no runs recorded"
assert all(r["events_per_sec"] > 0 for r in doc["runs"]), "non-positive throughput"
assert all(r["snapshot_bytes"] > 0 for r in doc["runs"]), "empty snapshot"
assert all(r["restore_ms"] >= 0 for r in doc["runs"]), "negative restore time"
off = {r["graph"] for r in doc["runs"] if r["period"] == 0}
assert all(r["graph"] in off for r in doc["runs"]), "missing period-off baseline"
EOF
else
  grep -q '"experiment": "E19"' "$bench_dir/BENCH_ckpt.json"
  grep -q '"snapshot_bytes"' "$bench_dir/BENCH_ckpt.json"
  grep -q '"overhead_vs_off"' "$bench_dir/BENCH_ckpt.json"
fi

# Telemetry smoke: the OpenMetrics exposition must be well-formed (one
# TYPE line per family, no duplicate series, "# EOF" terminator) and
# counters must be monotone in the amount of work profiled.
echo "== smoke: OpenMetrics exposition (profile --openmetrics) =="
om_dir="$(mktemp -d)"
trap 'rm -f "$out" "$chaos_out"; rm -rf "$bench_dir" "$bad_dir" "$rec_dir" "$om_dir"' EXIT
dune exec bin/tpdf_tool.exe -- profile fig2 -p p=2 -i 1 \
  --openmetrics "$om_dir/m1.prom" > /dev/null
dune exec bin/tpdf_tool.exe -- profile fig2 -p p=2 -i 3 \
  --openmetrics "$om_dir/m3.prom" > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 - "$om_dir/m1.prom" "$om_dir/m3.prom" <<'EOF'
import sys

def load(path):
    lines = open(path).read().splitlines()
    assert lines and lines[-1] == "# EOF", f"{path}: missing # EOF terminator"
    series, types = {}, {}
    for l in lines[:-1]:
        if l.startswith("# TYPE "):
            fam, kind = l[len("# TYPE "):].split(" ")
            assert fam not in types, f"{path}: duplicate TYPE for {fam}"
            types[fam] = kind
            continue
        if not l or l.startswith("#"):
            continue
        key, val = l.rsplit(" ", 1)
        assert key not in series, f"{path}: duplicate series {key}"
        series[key] = float(val)
    assert series, f"{path}: empty exposition"
    return series

short, long = load(sys.argv[1]), load(sys.argv[2])
counters = [k for k in short if k.split("{")[0].endswith("_total")]
assert counters, "no counter series found"
for k in counters:
    assert k in long, f"counter {k} vanished in the longer run"
    assert long[k] >= short[k], \
        f"counter {k} not monotone: {short[k]} -> {long[k]}"
EOF
else
  for f in "$om_dir/m1.prom" "$om_dir/m3.prom"; do
    tail -n 1 "$f" | grep -q '^# EOF$'
    dups="$(awk '!/^#/ && NF { print $1 }' "$f" | sort | uniq -d)"
    if [ -n "$dups" ]; then
      echo "duplicate OpenMetrics series in $f: $dups" >&2
      exit 1
    fi
  done
fi

# Always-on export path: a `top` run with TPDF_METRICS_OUT set must
# leave a complete exposition behind (atomic rename, never torn).
echo "== smoke: tpdf_tool top + TPDF_METRICS_OUT =="
TPDF_METRICS_OUT="$om_dir/live.prom" dune exec bin/tpdf_tool.exe -- \
  top fig2 -p p=2 -i 2 --refresh-ms 0 > /dev/null
tail -n 1 "$om_dir/live.prom" | grep -q '^# EOF$'

# Critical-path analyzer smoke: on every ofdm-tpdf mode scenario the
# observed iteration period must match the throughput prediction and
# respect the proven MCR bound (the command exits non-zero otherwise).
echo "== smoke: tpdf_tool analyze-trace ofdm-tpdf =="
dune exec bin/tpdf_tool.exe -- analyze-trace ofdm-tpdf -p beta=2 -p N=8 -p L=1 \
  > "$om_dir/analyze.out"
grep -q 'consistent with the analyses' "$om_dir/analyze.out"

# Telemetry bench smoke: E20 at reduced sizes must produce a parseable
# BENCH_obs.json with off/sampled/full runs per graph and a passing
# bounded-ring certificate.  The checked-in full-size BENCH_obs.json is
# held to the acceptance gate: <= 5% sampled overhead on the 1e3-actor
# chain and a bounded ring under the 1e6-event run.
echo "== smoke: bench E20 (telemetry overhead) =="
TPDF_BENCH_SMOKE=1 TPDF_BENCH_ONLY=E20 \
  TPDF_BENCH_OBS_OUT="$bench_dir/BENCH_obs.json" \
  dune exec bench/main.exe > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 - "$bench_dir/BENCH_obs.json" BENCH_obs.json <<'EOF'
import json, sys

def check(path, smoke):
    with open(path) as f:
        doc = json.load(f)
    assert doc["experiment"] == "E20", f"{path}: unexpected experiment tag"
    assert doc["smoke"] == smoke, f"{path}: unexpected smoke flag"
    assert doc["metadata"]["cores_detected"] >= 1, f"{path}: metadata missing"
    assert doc["sampling"]["span_every"] >= 1, f"{path}: sampling block missing"
    assert doc["runs"], f"{path}: no runs recorded"
    for g in {r["graph"] for r in doc["runs"]}:
        modes = {r["mode"] for r in doc["runs"] if r["graph"] == g}
        assert modes == {"off", "sampled", "full"}, \
            f"{path}: {g} missing a mode: {modes}"
    assert all(r["events_per_sec"] > 0 for r in doc["runs"]), \
        f"{path}: non-positive throughput"
    b = doc["bounded"]
    assert b["ok"] and b["ring_retained"] <= b["ring_capacity"] \
        and b["events_offered"] > b["ring_capacity"], \
        f"{path}: bounded-ring certificate failed"
    return doc

check(sys.argv[1], smoke=True)
full = check(sys.argv[2], smoke=False)
chain = [r for r in full["runs"]
         if r["graph"] == "chain" and r["mode"] == "sampled"]
assert chain, "checked-in BENCH_obs.json has no sampled chain run"
assert all(r["actors"] >= 1000 for r in chain), "chain below 1e3 actors"
assert all(r["overhead_vs_off"] <= 1.05 for r in chain), \
    "sampled overhead gate (<= 5% on the 1e3-actor chain) failed"
assert full["bounded"]["events_offered"] >= 1_000_000, \
    "bounded certificate below 1e6 events"
EOF
else
  grep -q '"experiment": "E20"' "$bench_dir/BENCH_obs.json"
  grep -q '"ok": true' "$bench_dir/BENCH_obs.json"
  grep -q '"experiment": "E20"' BENCH_obs.json
  grep -q '"ok": true' BENCH_obs.json
fi

# Symbolic-kernel bench smoke: E21 at reduced sizes must produce a
# parseable BENCH_param.json whose rewritten-vs-legacy outputs match on
# every solve row.  The checked-in full-size file is held to the
# acceptance gate: on the 100-parameter, 1000-actor chain the hash-consed
# kernel must solve in single-digit milliseconds and record a >= 10x
# speedup over the frozen pre-rewrite kernel.
echo "== smoke: bench E21 (symbolic kernel) =="
TPDF_BENCH_SMOKE=1 TPDF_BENCH_ONLY=E21 \
  TPDF_BENCH_PARAM_OUT="$bench_dir/BENCH_param.json" \
  dune exec bench/main.exe > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 - "$bench_dir/BENCH_param.json" BENCH_param.json <<'EOF'
import json, sys

def check(path, smoke):
    with open(path) as f:
        doc = json.load(f)
    assert doc["experiment"] == "E21", f"{path}: unexpected experiment tag"
    assert doc["smoke"] == smoke, f"{path}: unexpected smoke flag"
    assert doc["metadata"]["cores_detected"] >= 1, f"{path}: metadata missing"
    assert doc["rows"], f"{path}: no rows recorded"
    kinds = {r["kind"] for r in doc["rows"]}
    assert kinds == {"solve", "rate_safety"}, f"{path}: missing a kind: {kinds}"
    for r in doc["rows"]:
        assert r["new_ms"] > 0 and r["new_memo_off_ms"] > 0, \
            f"{path}: non-positive timing in {r}"
        if r["kind"] == "solve":
            assert r["outputs_match"] is True, \
                f"{path}: kernel disagrees with legacy baseline on {r}"
            assert r["legacy_ms"] > 0 and r["speedup"] > 0, \
                f"{path}: missing baseline column on {r}"
    assert doc["gauges"]["param_intern_monomials"] > 0, \
        f"{path}: intern-table gauges missing"
    return doc

check(sys.argv[1], smoke=True)
full = check(sys.argv[2], smoke=False)
big = [r for r in full["rows"]
       if r["kind"] == "solve" and r["params"] == 100 and r["actors"] == 1000]
assert big, "checked-in BENCH_param.json has no 100-param/1000-actor solve"
r = big[0]
assert r["new_ms"] < 10.0, \
    f"100-param solve above single-digit ms: {r['new_ms']}"
assert r["speedup"] >= 10.0, \
    f"symbolic kernel below 10x over pre-rewrite baseline: {r['speedup']}"
rs = [r for r in full["rows"] if r["kind"] == "rate_safety"]
assert any(r["params"] >= 100 and r["actors"] >= 996 for r in rs), \
    "checked-in BENCH_param.json has no full-size rate-safety row"
EOF
else
  grep -q '"experiment": "E21"' "$bench_dir/BENCH_param.json"
  grep -q '"outputs_match": true' "$bench_dir/BENCH_param.json"
  grep -q '"experiment": "E21"' BENCH_param.json
  grep -q '"outputs_match": true' BENCH_param.json
  if grep -q '"outputs_match": false' BENCH_param.json; then
    echo "symbolic kernel disagrees with legacy baseline" >&2
    exit 1
  fi
fi

# Memo kill-switch: the analysis suites must pass with TPDF_PARAM_MEMO=0,
# pinning that memoization only caches value-deterministic results and
# never changes a symbolic answer.
echo "== analysis suites with TPDF_PARAM_MEMO=0 =="
TPDF_PARAM_MEMO=0 dune exec test/test_param.exe > /dev/null
TPDF_PARAM_MEMO=0 dune exec test/test_csdf.exe > /dev/null
TPDF_PARAM_MEMO=0 dune exec test/test_tpdf.exe > /dev/null

# Exit-code contract: the unified table must be in `--help`, and the
# codes must be live — a parse error really exits 124, a rejected graph
# really exits 1.  (Exit 3 is exercised by the crash-recovery smoke
# above; exit 2 only fires on an analysis bug.)
echo "== smoke: tpdf_tool exit-code table =="
help_out="$(mktemp)"
trap 'rm -f "$out" "$chaos_out" "$help_out"; rm -rf "$bench_dir" "$bad_dir" "$rec_dir" "$om_dir"' EXIT
dune exec bin/tpdf_tool.exe -- --help=plain > "$help_out" 2> /dev/null
grep -q 'EXIT STATUS' "$help_out"
grep -q '^       0   on success' "$help_out"
grep -q '^       1   on a runtime failure' "$help_out"
grep -q '^       2   when an observed execution beats a proven analysis bound' \
  "$help_out"
grep -q '^       3   when --kill-at-ms cut a checkpointed run short' "$help_out"
grep -q '^       124 on command line parsing errors' "$help_out"
grep -q '^       125 on unexpected internal errors' "$help_out"
status=0
dune exec bin/tpdf_tool.exe -- analyze --no-such-flag > /dev/null 2>&1 \
  || status=$?
if [ "$status" -ne 124 ]; then
  echo "expected exit 124 from a parse error, got $status" >&2
  exit 1
fi

# Serving smoke: real daemon over a Unix socket, two tenants, kill -9,
# restart on the same state dir, byte-identical continuation.
echo "== smoke: serve (daemon kill -9 + restart) =="
sh ci/serve_smoke.sh

# Serving bench smoke: E22 at reduced sizes must produce a parseable
# BENCH_serve.json; the checked-in full-size file is held to the fault
# isolation gate — a permanently faulting tenant must not move the
# healthy tenants' p95 request latency past gate_p95_ratio x the
# all-healthy baseline, and must itself end up quarantined.
echo "== smoke: bench E22 (multi-tenant serving) =="
TPDF_BENCH_SMOKE=1 TPDF_BENCH_ONLY=E22 \
  TPDF_BENCH_SERVE_OUT="$bench_dir/BENCH_serve.json" \
  dune exec bench/main.exe > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 - "$bench_dir/BENCH_serve.json" BENCH_serve.json <<'EOF'
import json, sys

def check(path, smoke):
    with open(path) as f:
        doc = json.load(f)
    assert doc["experiment"] == "E22", f"{path}: unexpected experiment tag"
    assert doc["smoke"] == smoke, f"{path}: unexpected smoke flag"
    assert doc["metadata"]["cores_detected"] >= 1, f"{path}: metadata missing"
    modes = [r["mode"] for r in doc["runs"]]
    assert modes == ["mem", "persist", "fault"], f"{path}: bad runs: {modes}"
    for r in doc["runs"]:
        assert r["requests_per_sec"] > 0 and r["firings_per_sec"] > 0, \
            f"{path}: non-positive throughput in {r['mode']}"
        assert r["request_p95_ms"] >= r["request_p50_ms"] >= 0, \
            f"{path}: bad latency percentiles in {r['mode']}"
    by = {r["mode"]: r for r in doc["runs"]}
    assert by["mem"]["quarantined"] == 0, f"{path}: healthy run quarantined"
    assert by["fault"]["quarantined"] >= 1, \
        f"{path}: faulting tenant never quarantined"
    assert doc["isolation_ok"], f"{path}: fault isolation gate failed"
    assert 0 < doc["healthy_p95_ratio"] <= doc["gate_p95_ratio"], \
        f"{path}: healthy p95 ratio {doc['healthy_p95_ratio']} past gate"

check(sys.argv[1], smoke=True)
check(sys.argv[2], smoke=False)
EOF
else
  grep -q '"experiment": "E22"' "$bench_dir/BENCH_serve.json"
  grep -q '"isolation_ok": true' "$bench_dir/BENCH_serve.json"
  grep -q '"experiment": "E22"' BENCH_serve.json
  grep -q '"isolation_ok": true' BENCH_serve.json
fi

# Network-chaos smoke: kill -9 the source daemon mid-migration over real
# sockets, restart, resolve — single owner, byte-identical checkpoint;
# plus graceful drain and a fault-injecting socket layer round-trip.
echo "== smoke: netchaos (kill -9 mid-migration + drain + netfault) =="
sh ci/netchaos_smoke.sh

# Network-chaos bench smoke: E23 at reduced sizes must produce a
# parseable BENCH_netchaos.json; both it and the checked-in full-size
# file are held to the resilience gates — the worst fault-plan p95 must
# stay within gate_p95_ratio x the no-fault baseline, every fault run
# must actually inject faults, and retries plus rid replay must leave
# zero tenants diverged from the fault-free twin and zero requests lost.
echo "== smoke: bench E23 (network chaos) =="
TPDF_BENCH_SMOKE=1 TPDF_BENCH_ONLY=E23 \
  TPDF_BENCH_NETCHAOS_OUT="$bench_dir/BENCH_netchaos.json" \
  dune exec bench/main.exe > /dev/null
if command -v python3 > /dev/null 2>&1; then
  python3 - "$bench_dir/BENCH_netchaos.json" BENCH_netchaos.json <<'EOF'
import json, sys

def check(path, smoke):
    with open(path) as f:
        doc = json.load(f)
    assert doc["experiment"] == "E23", f"{path}: unexpected experiment tag"
    assert doc["smoke"] == smoke, f"{path}: unexpected smoke flag"
    assert doc["metadata"]["cores_detected"] >= 1, f"{path}: metadata missing"
    plans = [r["plan"] for r in doc["runs"]]
    assert plans == ["baseline", "lossy", "slow", "lossy+slow"], \
        f"{path}: bad fault-plan sweep: {plans}"
    for r in doc["runs"]:
        assert r["logical"] > 0 and r["attempts"] >= r["logical"], \
            f"{path}: attempts below logical requests in {r['plan']}"
        assert r["request_p95_ms"] >= r["request_p50_ms"] >= 0, \
            f"{path}: bad latency percentiles in {r['plan']}"
        assert r["diverged"] == 0 and r["lost"] == 0, \
            f"{path}: divergence or lost requests in {r['plan']}"
        injected = r["req_lost"] + r["resp_lost"] + r["delayed"]
        if r["plan"] == "baseline":
            assert injected == 0, f"{path}: baseline run injected faults"
        else:
            assert injected > 0, f"{path}: fault run {r['plan']} injected nothing"
    assert doc["p95_ratio_ok"], f"{path}: chaos p95 gate failed"
    assert 0 < doc["worst_p95_ratio"] <= doc["gate_p95_ratio"], \
        f"{path}: worst p95 ratio {doc['worst_p95_ratio']} past gate"
    assert doc["divergence_ok"] and doc["faults_injected_ok"], \
        f"{path}: resilience gates failed"

check(sys.argv[1], smoke=True)
check(sys.argv[2], smoke=False)
EOF
else
  grep -q '"experiment": "E23"' "$bench_dir/BENCH_netchaos.json"
  grep -q '"p95_ratio_ok": true' "$bench_dir/BENCH_netchaos.json"
  grep -q '"divergence_ok": true' "$bench_dir/BENCH_netchaos.json"
  grep -q '"experiment": "E23"' BENCH_netchaos.json
  grep -q '"p95_ratio_ok": true' BENCH_netchaos.json
  grep -q '"divergence_ok": true' BENCH_netchaos.json
  grep -q '"faults_injected_ok": true' BENCH_netchaos.json
fi

echo "check: OK"
