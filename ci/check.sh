#!/bin/sh
# Repository check: full build, test suites, and an observability smoke run.
# Usage: ci/check.sh   (or: make check)
set -eu
cd "$(dirname "$0")/.."

echo "== dune build =="
dune build

echo "== dune runtest =="
dune runtest

echo "== smoke: tpdf_tool profile fig2 -p p=2 =="
dune exec bin/tpdf_tool.exe -- profile fig2 -p p=2 > /dev/null

echo "== smoke: tpdf_tool trace ofdm-tpdf (chrome) =="
out="$(mktemp)"
trap 'rm -f "$out"' EXIT
dune exec bin/tpdf_tool.exe -- trace ofdm-tpdf -p beta=2 -p N=8 -p L=1 \
  --format chrome -o "$out" > /dev/null
# the export must be non-trivial and carry reconfiguration instants
grep -q '"traceEvents"' "$out"
grep -q '"reconfigure"' "$out"

echo "check: OK"
