(* Byte-for-byte snapshot of the seed discrete-event engine (commit
   00dbc53), kept as the reference semantics oracle: the equivalence
   suite replays every shipped graph on both this engine and the
   optimized lib/sim engine and asserts identical stats, traces and
   observability streams.  Do not optimize this file.  The only edits
   vs the seed are the module aliases below (it now lives outside the
   tpdf_sim library).  *)
module Behavior = Tpdf_sim.Behavior
module Token = Tpdf_sim.Token

module Csdf = Tpdf_csdf
module Tpdf = Tpdf_core
module Digraph = Tpdf_graph.Digraph
module Obs = Tpdf_obs.Obs
module Ev = Tpdf_obs.Event
module Metrics = Tpdf_obs.Metrics

type firing_record = {
  actor : string;
  index : int;
  phase : int;
  mode : string;
  start_ms : float;
  finish_ms : float;
}

type stats = {
  end_ms : float;
  firings : (string * int) list;
  max_occupancy : (int * int) list;
  dropped : (int * int) list;
  trace : firing_record list;
}

type error =
  | Unknown_mode of { actor : string; token : string }
  | Data_on_control_port of { actor : string }
  | Rate_mismatch of { actor : string; channel : int; expected : int; produced : int }
  | Foreign_channel of { actor : string; channel : int }
  | Token_class_mismatch of { actor : string; channel : int; control_channel : bool }
  | Negative_duration of { actor : string; duration_ms : float }

exception Error of error

let error_message = function
  | Unknown_mode { actor; token } ->
      Printf.sprintf "Engine: control token %S does not name a mode of %s"
        token actor
  | Data_on_control_port { actor } ->
      Printf.sprintf "Engine: data token on control port of %s" actor
  | Rate_mismatch { actor; channel; expected; produced } ->
      Printf.sprintf
        "Engine: behaviour of %s produced %d token(s) on e%d, expected %d"
        actor produced channel expected
  | Foreign_channel { actor; channel } ->
      Printf.sprintf "Engine: behaviour of %s wrote to foreign channel e%d"
        actor channel
  | Token_class_mismatch { actor; channel; control_channel } ->
      Printf.sprintf
        "Engine: behaviour of %s produced a %s token on %s channel e%d" actor
        (if control_channel then "data" else "control")
        (if control_channel then "control" else "data")
        channel
  | Negative_duration { actor; _ } ->
      Printf.sprintf "Engine: negative duration for %s" actor

type stall = {
  at_ms : float;
  blocked_actors : (string * int * int) list;
  channel_states : (int * int) list;
}

type outcome =
  | Completed of stats
  | Stalled of stall * stats
  | Budget_exceeded of { steps : int; at_ms : float; partial : stats }

let pp_stall ppf (s : stall) =
  Format.fprintf ppf "@[<v>stalled at %.3f ms@," s.at_ms;
  List.iter
    (fun (a, got, want) ->
      Format.fprintf ppf "  %s completed %d of %d firing(s)@," a got want)
    s.blocked_actors;
  Format.fprintf ppf "  channel occupancy:";
  List.iter
    (fun (ch, occ) -> if occ > 0 then Format.fprintf ppf " e%d:%d" ch occ)
    s.channel_states;
  Format.fprintf ppf "@]"

type 'a event_kind =
  | Complete of string * (int * 'a Token.t list) list * firing_record
  | Tick of string

module Eq = struct
  type 'a t = { mutable seq : int; mutable set : (float * int * 'a) list }
  (* Sorted association list; event volumes here are modest and insertion
     keeps it simple and allocation-light enough. *)

  let create () = { seq = 0; set = [] }

  let add t time v =
    let seq = t.seq in
    t.seq <- seq + 1;
    let rec insert = function
      | [] -> [ (time, seq, v) ]
      | ((t', s', _) as hd) :: rest ->
          if time < t' || (time = t' && seq < s') then (time, seq, v) :: hd :: rest
          else hd :: insert rest
    in
    t.set <- insert t.set

  let pop t =
    match t.set with
    | [] -> None
    | (time, _, v) :: rest ->
        t.set <- rest;
        Some (time, v)

  let is_empty t = t.set = []
end

type 'a t = {
  graph : Tpdf.Graph.t;
  conc : Csdf.Concrete.t;
  behaviors : (string, 'a Behavior.t) Hashtbl.t;
  queues : (int, 'a Token.t Queue.t) Hashtbl.t;
  debt : (int, int) Hashtbl.t;
  dropped : (int, int) Hashtbl.t;
  max_occ : (int, int) Hashtbl.t;
  count : (string, int) Hashtbl.t; (* firings started *)
  completed : (string, int) Hashtbl.t; (* firings finished *)
  busy : (string, bool) Hashtbl.t;
  last_mode : (string, string) Hashtbl.t;
  events : 'a event_kind Eq.t;
  obs : Obs.t;
  mutable now : float;
  mutable trace : firing_record list;
}


let first_mode graph kernel =
  match Tpdf.Graph.modes graph kernel with
  | m :: _ -> m.Tpdf.Mode.name
  | [] -> "default"

let default_behavior graph actor default =
  if Tpdf.Graph.is_control graph actor then
    (* Emit the first declared mode of each target kernel; when several
       targets disagree the first channel's target wins — explicit
       behaviours should be given in that case. *)
    let skel = Tpdf.Graph.skeleton graph in
    let target_mode =
      match Csdf.Graph.out_channels skel actor with
      | (e : (string, Csdf.Graph.channel) Digraph.edge) :: _ ->
          first_mode graph e.dst
      | [] -> "default"
    in
    Behavior.emit_mode (fun _ -> target_mode)
  else Behavior.fill default

let queue t ch = Hashtbl.find t.queues ch

let get tbl key = match Hashtbl.find_opt tbl key with Some v -> v | None -> 0

let ch_track ch = "e" ^ string_of_int ch
let occ_metric ch = Printf.sprintf "channel.e%d.occupancy" ch

(* All instrumentation below is guarded by [Obs.enabled]: with no collector
   attached the engine allocates nothing for observability. *)
let sample_occupancy t ch =
  if Obs.enabled t.obs then begin
    let occ = float_of_int (Queue.length (queue t ch)) in
    Obs.counter t.obs ~cat:"channel" ~track:(ch_track ch) ~name:"occupancy"
      ~ts_ms:t.now occ;
    Metrics.observe (Obs.metrics t.obs) (occ_metric ch) occ
  end

let create ~graph ~valuation ?init_token ?(behaviors = [])
    ?(obs = Obs.disabled) ~default () =
  (match Tpdf.Graph.validate graph with
  | Ok () -> ()
  | Error msgs ->
      invalid_arg ("Engine.create: invalid graph: " ^ String.concat "; " msgs));
  let conc = Csdf.Concrete.make (Tpdf.Graph.skeleton graph) valuation in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (a, b) ->
      if not (Csdf.Graph.mem_actor (Tpdf.Graph.skeleton graph) a) then
        invalid_arg (Printf.sprintf "Engine.create: unknown actor %s" a);
      Hashtbl.replace tbl a b)
    behaviors;
  List.iter
    (fun a ->
      if not (Hashtbl.mem tbl a) then
        Hashtbl.replace tbl a (default_behavior graph a default))
    (Tpdf.Graph.actors graph);
  let queues = Hashtbl.create 16 in
  let max_occ = Hashtbl.create 16 in
  List.iter
    (fun (e : (string, Csdf.Graph.channel) Digraph.edge) ->
      let q = Queue.create () in
      let mk =
        match init_token with
        | Some f -> f e.id
        | None ->
            fun _ ->
              if Tpdf.Graph.is_control_channel graph e.id then
                Token.Ctrl (first_mode graph e.dst)
              else Token.Data default
      in
      for i = 0 to e.label.init - 1 do
        Queue.add (mk i) q
      done;
      Hashtbl.replace queues e.id q;
      Hashtbl.replace max_occ e.id e.label.init)
    (Csdf.Graph.channels (Tpdf.Graph.skeleton graph));
  let count = Hashtbl.create 16 and busy = Hashtbl.create 16 in
  let last_mode = Hashtbl.create 16 in
  let completed = Hashtbl.create 16 in
  List.iter
    (fun a ->
      Hashtbl.replace count a 0;
      Hashtbl.replace completed a 0;
      Hashtbl.replace busy a false;
      Hashtbl.replace last_mode a (first_mode graph a))
    (Tpdf.Graph.actors graph);
  {
    graph;
    conc;
    behaviors = tbl;
    queues;
    debt = Hashtbl.create 16;
    dropped = Hashtbl.create 16;
    max_occ;
    count;
    completed;
    busy;
    last_mode;
    events = Eq.create ();
    obs;
    now = 0.0;
    trace = [];
  }
  |> fun t ->
  (* One occupancy sample per channel at t=0 so every channel has a series
     even if it never carries traffic. *)
  if Obs.enabled obs then
    List.iter
      (fun (e : (string, Csdf.Graph.channel) Digraph.edge) ->
        sample_occupancy t e.id)
      (Csdf.Graph.channels (Tpdf.Graph.skeleton graph));
  t


(* Discharge rejection debt against the tokens currently in the channel. *)
let purge t ch =
  let d = get t.debt ch in
  if d > 0 then begin
    let q = queue t ch in
    let dropped = ref 0 in
    while !dropped < d && not (Queue.is_empty q) do
      ignore (Queue.pop q);
      incr dropped
    done;
    Hashtbl.replace t.debt ch (d - !dropped);
    Hashtbl.replace t.dropped ch (get t.dropped ch + !dropped);
    if Obs.enabled t.obs && !dropped > 0 then begin
      Obs.instant t.obs ~cat:"channel" ~track:(ch_track ch) ~name:"drop"
        ~ts_ms:t.now
        ~args:[ ("count", Ev.Int !dropped) ]
        ();
      Metrics.incr ~by:!dropped (Obs.metrics t.obs)
        (Printf.sprintf "channel.e%d.dropped" ch)
    end
  end

let push_tokens t ch toks =
  let q = queue t ch in
  List.iter (fun tok -> Queue.add tok q) toks;
  purge t ch;
  let occ = Queue.length q in
  if occ > get t.max_occ ch then Hashtbl.replace t.max_occ ch occ;
  sample_occupancy t ch

let skel t = Tpdf.Graph.skeleton t.graph

let data_in_channels t a =
  List.filter
    (fun (e : (string, Csdf.Graph.channel) Digraph.edge) ->
      not (Tpdf.Graph.is_control_channel t.graph e.id))
    (Csdf.Graph.in_channels (skel t) a)

let cons_rate t ch phase =
  (Csdf.Concrete.chan t.conc ch).Csdf.Concrete.cons.(phase)

let prod_rate t ch phase =
  (Csdf.Concrete.chan t.conc ch).Csdf.Concrete.prod.(phase)

let mode_of_token t a =
  match Tpdf.Graph.control_port t.graph a with
  | None -> List.hd (Tpdf.Graph.modes t.graph a)
  | Some cid -> (
      let phase = get t.count a mod Csdf.Graph.phases (skel t) a in
      let rate = cons_rate t cid phase in
      if rate = 0 then
        (* No control token this phase: the previous mode persists. *)
        Tpdf.Graph.find_mode t.graph a (Hashtbl.find t.last_mode a)
      else
        let q = queue t cid in
        if Queue.is_empty q then raise Exit
        else
          match Queue.peek q with
          | Token.Ctrl name -> (
              match Tpdf.Graph.find_mode t.graph a name with
              | m -> m
              | exception Not_found ->
                  raise (Error (Unknown_mode { actor = a; token = name })))
          | Token.Data _ -> raise (Error (Data_on_control_port { actor = a })))

(* Decide whether actor [a] can fire now; if so return the mode and the
   selected active input channels. *)
let fireable t a =
  match mode_of_token t a with
  | exception Exit -> None (* waiting for a control token *)
  | mode -> (
      let phase = get t.count a mod Csdf.Graph.phases (skel t) a in
      let ins = data_in_channels t a in
      let has_enough (e : (string, Csdf.Graph.channel) Digraph.edge) =
        Queue.length (queue t e.id) >= cons_rate t e.id phase
      in
      match mode.Tpdf.Mode.inputs with
      | Tpdf.Mode.All_inputs ->
          if List.for_all has_enough ins then
            Some (mode, List.map (fun (e : (_, _) Digraph.edge) -> e.id) ins)
          else None
      | Tpdf.Mode.Input_subset l ->
          let selected = List.filter (fun e -> List.mem e.Digraph.id l) ins in
          if List.for_all has_enough selected then
            Some (mode, List.map (fun (e : (_, _) Digraph.edge) -> e.id) selected)
          else None
      | Tpdf.Mode.Highest_priority_available -> (
          let ready = List.filter has_enough ins in
          match ready with
          | [] -> None (* wait for the first input to become available *)
          | _ ->
              let best =
                List.fold_left
                  (fun best e ->
                    if
                      Tpdf.Graph.priority t.graph e.Digraph.id
                      > Tpdf.Graph.priority t.graph best.Digraph.id
                    then e
                    else best)
                  (List.hd ready) (List.tl ready)
              in
              Some (mode, [ best.Digraph.id ])))

let consume t a mode active phase =
  (* Control token first. *)
  (match Tpdf.Graph.control_port t.graph a with
  | Some cid when cons_rate t cid phase > 0 ->
      ignore (Queue.pop (queue t cid));
      Hashtbl.replace t.last_mode a mode.Tpdf.Mode.name;
      if Obs.enabled t.obs then begin
        Obs.instant t.obs ~cat:"control" ~track:a ~name:"ctrl-read"
          ~ts_ms:t.now
          ~args:
            [ ("mode", Ev.Str mode.Tpdf.Mode.name); ("channel", Ev.Int cid) ]
          ();
        Metrics.incr (Obs.metrics t.obs) ("engine.ctrl_reads." ^ a);
        sample_occupancy t cid
      end
  | _ -> ());
  let inputs =
    List.filter_map
      (fun (e : (string, Csdf.Graph.channel) Digraph.edge) ->
        let rate = cons_rate t e.id phase in
        if List.mem e.id active then begin
          let toks = List.init rate (fun _ -> Queue.pop (queue t e.id)) in
          if rate > 0 then sample_occupancy t e.id;
          if rate = 0 then None else Some (e.id, toks)
        end
        else begin
          (* Rejected input: its tokens are discarded as they arrive. *)
          if rate > 0 then begin
            Hashtbl.replace t.debt e.id (get t.debt e.id + rate);
            purge t e.id;
            sample_occupancy t e.id
          end;
          None
        end)
      (data_in_channels t a)
  in
  inputs

let out_rates t a mode phase =
  List.map
    (fun (e : (string, Csdf.Graph.channel) Digraph.edge) ->
      let rate = prod_rate t e.id phase in
      let rate =
        if
          Tpdf.Graph.is_control_channel t.graph e.id
          || Tpdf.Mode.output_may_be_active mode e.id
        then rate
        else 0
      in
      (e.id, rate))
    (Csdf.Graph.out_channels (skel t) a)

let validate_outputs t a expected outputs =
  List.iter
    (fun (ch, rate) ->
      let produced =
        match List.assoc_opt ch outputs with Some l -> List.length l | None -> 0
      in
      if produced <> rate then
        raise
          (Error
             (Rate_mismatch
                { actor = a; channel = ch; expected = rate; produced })))
    expected;
  List.iter
    (fun (ch, toks) ->
      if not (List.mem_assoc ch expected) then
        raise (Error (Foreign_channel { actor = a; channel = ch }));
      let is_ctrl_chan = Tpdf.Graph.is_control_channel t.graph ch in
      List.iter
        (fun tok ->
          if Token.is_ctrl tok <> is_ctrl_chan then
            raise
              (Error
                 (Token_class_mismatch
                    { actor = a; channel = ch; control_channel = is_ctrl_chan })))
        toks)
    outputs

let start_firing t a (mode : Tpdf.Mode.t) active =
  let index = get t.count a in
  let phase = index mod Csdf.Graph.phases (skel t) a in
  let inputs = consume t a mode active phase in
  let rates = out_rates t a mode phase in
  let ctx =
    {
      Behavior.actor = a;
      mode = mode.Tpdf.Mode.name;
      phase;
      index;
      now_ms = t.now;
      inputs;
      out_rates = rates;
    }
  in
  let b = Hashtbl.find t.behaviors a in
  let outputs = b.Behavior.work ctx in
  validate_outputs t a rates outputs;
  let d = b.Behavior.duration_ms ctx in
  if d < 0.0 then
    raise (Error (Negative_duration { actor = a; duration_ms = d }));
  let record =
    {
      actor = a;
      index;
      phase;
      mode = mode.Tpdf.Mode.name;
      start_ms = t.now;
      finish_ms = t.now +. d;
    }
  in
  Hashtbl.replace t.count a (index + 1);
  Hashtbl.replace t.busy a true;
  Eq.add t.events (t.now +. d) (Complete (a, outputs, record))

let run_outcome ?(iterations = 1) ?targets ?until_ms ?(max_events = 1_000_000)
    t =
  if iterations < 1 then invalid_arg "Engine.run: iterations must be >= 1";
  (match targets with
  | None -> ()
  | Some l ->
      List.iter
        (fun (a, n) ->
          if not (Csdf.Graph.mem_actor (skel t) a) then
            invalid_arg
              (Printf.sprintf "Engine.run: unknown target actor %s" a);
          if n < 0 then
            invalid_arg
              (Printf.sprintf "Engine.run: negative target %d for %s" n a))
        l);
  let base a =
    match targets with
    | None -> Csdf.Concrete.q t.conc a
    | Some l -> (
        match List.assoc_opt a l with
        | Some n -> n
        | None -> Csdf.Concrete.q t.conc a)
  in
  let limit a =
    if Tpdf.Graph.clock_period_ms t.graph a <> None then max_int
    else iterations * base a
  in
  (* An iteration is done when every firing has also *completed*: in-flight
     firings still deliver their tokens (e.g. a slow speculative path whose
     result must be rejected). *)
  let finished () =
    List.for_all
      (fun a -> limit a = max_int || get t.completed a >= limit a)
      (Tpdf.Graph.actors t.graph)
  in
  (* Arm the clocks. *)
  List.iter
    (fun a ->
      match Tpdf.Graph.clock_period_ms t.graph a with
      | Some p -> Eq.add t.events p (Tick a)
      | None -> ())
    (Tpdf.Graph.control_actors t.graph);
  let try_start_all () =
    List.iter
      (fun a ->
        if
          (not (Hashtbl.find t.busy a))
          && Tpdf.Graph.clock_period_ms t.graph a = None
          && get t.count a < limit a
        then
          match fireable t a with
          | Some (mode, active) -> start_firing t a mode active
          | None -> ())
      (Tpdf.Graph.actors t.graph)
  in
  try_start_all ();
  let steps = ref 0 in
  let stop = ref false in
  let budget_hit = ref false in
  while (not !stop) && not (Eq.is_empty t.events) do
    incr steps;
    if !steps > max_events then begin
      budget_hit := true;
      stop := true
    end
    else if finished () then stop := true
    else
      match Eq.pop t.events with
      | None -> stop := true
      | Some (time, ev) -> (
          (match until_ms with
          | Some cap when time > cap -> stop := true
          | _ -> ());
          if not !stop then begin
            t.now <- time;
            (match ev with
            | Complete (a, outputs, record) ->
                Hashtbl.replace t.busy a false;
                Hashtbl.replace t.completed a (get t.completed a + 1);
                List.iter (fun (ch, toks) -> push_tokens t ch toks) outputs;
                t.trace <- record :: t.trace;
                if Obs.enabled t.obs then begin
                  Obs.span t.obs ~cat:"firing" ~track:a
                    ~name:(a ^ "/" ^ record.mode) ~ts_ms:record.start_ms
                    ~dur_ms:(record.finish_ms -. record.start_ms)
                    ~args:
                      [
                        ("index", Ev.Int record.index);
                        ("phase", Ev.Int record.phase);
                        ("mode", Ev.Str record.mode);
                      ]
                    ();
                  Metrics.incr (Obs.metrics t.obs) ("engine.firings." ^ a);
                  Metrics.observe (Obs.metrics t.obs)
                    ("engine.firing_ms." ^ a)
                    (record.finish_ms -. record.start_ms)
                end
            | Tick a ->
                (* A clock firing: no inputs, emits control tokens now. *)
                let index = get t.count a in
                let phase = index mod Csdf.Graph.phases (skel t) a in
                let mode = List.hd (Tpdf.Graph.modes t.graph a) in
                ignore mode;
                let rates = out_rates t a (Tpdf.Mode.default) phase in
                let ctx =
                  {
                    Behavior.actor = a;
                    mode = "tick";
                    phase;
                    index;
                    now_ms = t.now;
                    inputs = [];
                    out_rates = rates;
                  }
                in
                let b = Hashtbl.find t.behaviors a in
                let outputs = b.Behavior.work ctx in
                validate_outputs t a rates outputs;
                Hashtbl.replace t.count a (index + 1);
                List.iter (fun (ch, toks) -> push_tokens t ch toks) outputs;
                t.trace <-
                  {
                    actor = a;
                    index;
                    phase;
                    mode = "tick";
                    start_ms = t.now;
                    finish_ms = t.now;
                  }
                  :: t.trace;
                if Obs.enabled t.obs then begin
                  Obs.instant t.obs ~cat:"clock" ~track:a ~name:(a ^ "/tick")
                    ~ts_ms:t.now
                    ~args:[ ("index", Ev.Int index); ("phase", Ev.Int phase) ]
                    ();
                  Metrics.incr (Obs.metrics t.obs) ("engine.ticks." ^ a)
                end;
                (match Tpdf.Graph.clock_period_ms t.graph a with
                | Some p -> Eq.add t.events (t.now +. p) (Tick a)
                | None -> ()));
            try_start_all ()
          end)
  done;
  let end_ms =
    List.fold_left (fun acc r -> max acc r.finish_ms) 0.0 t.trace
  in
  if Obs.enabled t.obs then begin
    let m = Obs.metrics t.obs in
    Metrics.set_gauge m "engine.end_ms" end_ms;
    Metrics.set_gauge m "engine.steps" (float_of_int !steps)
  end;
  let stats =
    {
      end_ms;
      firings =
        List.map (fun a -> (a, get t.count a)) (Tpdf.Graph.actors t.graph);
      max_occupancy =
        List.map
          (fun (e : (string, Csdf.Graph.channel) Digraph.edge) ->
            (e.id, get t.max_occ e.id))
          (Csdf.Graph.channels (skel t));
      dropped =
        List.map
          (fun (e : (string, Csdf.Graph.channel) Digraph.edge) ->
            (e.id, get t.dropped e.id))
          (Csdf.Graph.channels (skel t));
      trace =
        List.stable_sort
          (fun a b ->
            compare (a.start_ms, a.finish_ms) (b.start_ms, b.finish_ms))
          (List.rev t.trace);
    }
  in
  if !budget_hit then
    Budget_exceeded { steps = !steps; at_ms = t.now; partial = stats }
  else if not (finished ()) then
    Stalled
      ( {
          at_ms = t.now;
          blocked_actors =
            List.filter_map
              (fun a ->
                let l = limit a in
                if l <> max_int && get t.completed a < l then
                  Some (a, get t.completed a, l)
                else None)
              (Tpdf.Graph.actors t.graph);
          channel_states =
            List.map
              (fun (e : (string, Csdf.Graph.channel) Digraph.edge) ->
                (e.id, Queue.length (queue t e.id)))
              (Csdf.Graph.channels (skel t));
        },
        stats )
  else Completed stats

let run ?iterations ?targets ?until_ms ?max_events t =
  match run_outcome ?iterations ?targets ?until_ms ?max_events t with
  | Completed stats -> stats
  | Stalled (s, _) ->
      failwith
        (Printf.sprintf "Engine.run: stalled at %.3f ms (stuck: %s)" s.at_ms
           (String.concat ", "
              (List.map (fun (a, _, _) -> a) s.blocked_actors)))
  | Budget_exceeded _ ->
      failwith "Engine.run: event budget exceeded (runaway simulation?)"
  | exception Error e -> failwith (error_message e)

let channel_tokens t ch = List.of_seq (Queue.to_seq (queue t ch))
