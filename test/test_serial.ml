open Tpdf_core
open Tpdf_param
module Csdf = Tpdf_csdf

(* Two graphs are "equivalent" for serialization purposes when actors,
   kinds, phases, channels (endpoints, rates, init, priority, control
   flag) and mode tables coincide. *)
let check_equivalent name a b =
  let sa = Graph.skeleton a and sb = Graph.skeleton b in
  Alcotest.(check (list string)) (name ^ ": actors") (Graph.actors a) (Graph.actors b);
  List.iter
    (fun actor ->
      Alcotest.(check int)
        (name ^ ": phases " ^ actor)
        (Csdf.Graph.phases sa actor) (Csdf.Graph.phases sb actor);
      Alcotest.(check bool)
        (name ^ ": kind " ^ actor)
        true
        (Graph.kind a actor = Graph.kind b actor))
    (Graph.actors a);
  let chans g skel =
    List.map
      (fun (e : (string, Csdf.Graph.channel) Tpdf_graph.Digraph.edge) ->
        ( e.src,
          e.dst,
          Array.map Poly.to_string e.label.prod,
          Array.map Poly.to_string e.label.cons,
          e.label.init,
          Graph.priority g e.id,
          Graph.is_control_channel g e.id ))
      (Csdf.Graph.channels skel)
  in
  Alcotest.(check bool) (name ^ ": channels") true (chans a sa = chans b sb);
  List.iter
    (fun kernel ->
      let modes g = List.map (fun m -> Format.asprintf "%a" Mode.pp m) (Graph.modes g kernel) in
      Alcotest.(check (list string)) (name ^ ": modes " ^ kernel) (modes a) (modes b))
    (Graph.kernels a)

let roundtrip name g =
  let s = Serial.to_string g in
  match Serial.of_string s with
  | Error m -> Alcotest.fail (Printf.sprintf "%s failed to re-parse: %s\n%s" name m s)
  | Ok g' ->
      check_equivalent name g g';
      (* printing must be a fixed point *)
      Alcotest.(check string) (name ^ ": stable print") s (Serial.to_string g')

let test_roundtrip_examples () =
  roundtrip "fig2" (Examples.fig2 ()).Examples.graph;
  roundtrip "fig3" (Examples.fig3 ());
  roundtrip "fig4a" (Examples.fig4a ());
  roundtrip "fig4b" (Examples.fig4b ());
  roundtrip "unsafe" (Examples.unsafe_control ());
  roundtrip "fig1(csdf)" (Graph.of_csdf (Csdf.Examples.fig1 ()))

let test_roundtrip_apps () =
  roundtrip "edge app" (fst (Tpdf_apps.Edge_app.graph ()));
  roundtrip "ofdm tpdf" (fst (Tpdf_apps.Ofdm_app.tpdf_graph ()));
  roundtrip "ofdm csdf" (fst (Tpdf_apps.Ofdm_app.csdf_graph ()));
  roundtrip "fm radio" (Tpdf_apps.Fm_radio.graph ())

let test_parse_handwritten () =
  let src =
    {|
# the running example
tpdf fig2 {
  kernel A;
  kernel B;
  control C;
  kernel D;
  kernel E;
  kernel F phases=2 kind=transaction;
  channel e1 = A [p] -> [1] B;
  channel e2 = B [1] -> [2] C;
  channel e3 = B [1] -> [2] D;
  channel e4 = B [1] -> [1] E;
  ctrl    e5 = C [2] -> [1,1] F;
  channel e6 = D [2] -> [1,1] F priority=1;
  channel e7 = E [1] -> [0,2] F priority=2;
  modes F { take_e6 inputs(e6); take_e7 inputs(e7); }
}
|}
  in
  match Serial.of_string src with
  | Error m -> Alcotest.fail m
  | Ok g ->
      check_equivalent "handwritten fig2" (Examples.fig2 ()).Examples.graph g;
      (* the parsed graph passes the full analysis chain *)
      Alcotest.(check bool) "rate safe" true (Analysis.rate_safe g);
      let b = Analysis.check_boundedness g ~samples:(Liveness.default_samples g) in
      Alcotest.(check bool) "bounded" true b.Analysis.bounded

let test_parse_attributes () =
  let src =
    {|tpdf t {
        kernel A;
        kernel B phases=3;
        control W clock=125.5;
        channel c1 = A [2*n+1] -> [1,0,n] B init=4 priority=7;
        ctrl c2 = W [1] -> [1,1,0] B;
        modes B { all inputs(*); hp inputs(priority); one outputs(c1); }
      }|}
  in
  (* B has an output? c1 is A->B, so outputs(c1) must be rejected as
     non-adjacent... c1 is adjacent to B (as input).  The mode table only
     checks adjacency, so this parses. *)
  match Serial.of_string src with
  | Error m -> Alcotest.fail m
  | Ok g ->
      let skel = Graph.skeleton g in
      Alcotest.(check int) "B phases" 3 (Csdf.Graph.phases skel "B");
      Alcotest.(check (option (float 1e-9))) "clock" (Some 125.5)
        (Graph.clock_period_ms g "W");
      let e = Csdf.Graph.channel skel 0 in
      Alcotest.(check int) "init" 4 e.label.init;
      Alcotest.(check int) "priority" 7 (Graph.priority g 0);
      Alcotest.(check string) "symbolic prod" "2*n + 1"
        (Poly.to_string e.label.prod.(0));
      Alcotest.(check int) "three modes" 3 (List.length (Graph.modes g "B"))

let expect_error src fragment =
  match Serial.of_string src with
  | Ok _ -> Alcotest.fail ("accepted: " ^ src)
  | Error m ->
      let contains =
        let nh = String.length m and nn = String.length fragment in
        let rec go i = i + nn <= nh && (String.sub m i nn = fragment || go (i + 1)) in
        nn = 0 || go 0
      in
      Alcotest.(check bool) (Printf.sprintf "error %S mentions %S" m fragment)
        true contains

let test_parse_errors () =
  expect_error "nope" "expected 'tpdf'";
  expect_error "tpdf t { kernel A }" "expected";
  expect_error "tpdf t { kernel A; kernel A; }" "duplicate";
  expect_error "tpdf t { kernel A; channel c = A [1] -> [1] Z; }" "unknown actor";
  expect_error "tpdf t { kernel A; kernel B; ctrl c = A [1] -> [1] B; }"
    "not a control actor";
  expect_error
    "tpdf t { kernel A; kernel B; channel c = A [1] -> [1] B; channel c = A [1] -> [1] B; }"
    "duplicate channel";
  expect_error "tpdf t { kernel A; kernel B; channel c = A [1+] -> [1] B; }"
    "bad rate expression";
  expect_error
    "tpdf t { kernel A; kernel B; channel c = A [1] -> [1] B; modes A { m inputs(zz); } }"
    "unknown channel";
  expect_error "tpdf t { kernel A clock=5; }" "clock"

let test_shipped_graph_files () =
  (* every .tpdf file in graphs/ must load and be consistent *)
  let dir = "../graphs" in
  let dir = if Sys.file_exists dir then dir else "graphs" in
  let files = Array.to_list (Sys.readdir dir) in
  let tpdf = List.filter (fun f -> Filename.check_suffix f ".tpdf") files in
  Alcotest.(check bool) "ships at least 8 graphs" true (List.length tpdf >= 8);
  List.iter
    (fun f ->
      match Serial.load (Filename.concat dir f) with
      | Error m -> Alcotest.fail (f ^ ": " ^ m)
      | Ok g ->
          Alcotest.(check bool) (f ^ " consistent") true (Analysis.consistent g))
    tpdf

let test_shipped_fixed_point () =
  (* parse∘print = id for every shipped graph: re-printing the parsed
     graph must reproduce the exact same text, and the re-parsed graph
     must be equivalent to the original *)
  let dir = "../graphs" in
  let dir = if Sys.file_exists dir then dir else "graphs" in
  let tpdf =
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun f -> Filename.check_suffix f ".tpdf")
  in
  List.iter
    (fun f ->
      match Serial.load (Filename.concat dir f) with
      | Error m -> Alcotest.fail (f ^ ": " ^ m)
      | Ok g -> (
          let s = Serial.to_string g in
          match Serial.of_string s with
          | Error m -> Alcotest.fail (f ^ " re-parse: " ^ m)
          | Ok g' ->
              check_equivalent f g g';
              Alcotest.(check string) (f ^ ": print is a fixed point") s
                (Serial.to_string g')))
    tpdf

let test_file_roundtrip () =
  let g = (Examples.fig2 ()).Examples.graph in
  let path = Filename.temp_file "tpdf" ".tpdf" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Serial.save path g;
      match Serial.load path with
      | Ok g' -> check_equivalent "file roundtrip" g g'
      | Error m -> Alcotest.fail m);
  match Serial.load "/nonexistent/definitely.tpdf" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loaded a missing file"

(* Property: random small TPDF graphs round-trip.  Each channel carries
   random multi-phase rates, init tokens and an optional priority; each
   kernel a random phase count; the optional control actor a clock drawn
   from awkward float periods (0.1 does not have an exact binary
   representation, so it exercises the printer's float fidelity). *)
type rand_chan = {
  rc_prod : int list; (* one rate per producer phase *)
  rc_cons : int list; (* one rate per consumer phase *)
  rc_init : int;
  rc_prio : int option;
}

type rand_graph = {
  rg_phases : int list; (* phase count per kernel, length n *)
  rg_chans : rand_chan list; (* length n-1, chain k(i) -> k(i+1) *)
  rg_clock : float option option; (* None: no control actor *)
}

let gen_graph =
  QCheck.Gen.(
    let gen_chan =
      let* rc_prod = list_size (int_range 1 3) (int_range 0 4) in
      let* rc_cons = list_size (int_range 1 3) (int_range 0 4) in
      let* rc_init = int_range 0 3 in
      let* rc_prio = opt (int_range 0 9) in
      return { rc_prod; rc_cons; rc_init; rc_prio }
    in
    let* n = int_range 2 5 in
    let* rg_phases = list_size (return n) (int_range 1 3) in
    let* rg_chans = list_size (return (n - 1)) gen_chan in
    let* rg_clock =
      opt (opt (oneofl [ 0.1; 0.5; 1.0; 2.25; 125.5 ]))
    in
    return { rg_phases; rg_chans; rg_clock })

let arb_graph =
  QCheck.make
    ~print:(fun rg ->
      let ints l = String.concat "," (List.map string_of_int l) in
      Printf.sprintf "phases=[%s] chans=[%s] clock=%s" (ints rg.rg_phases)
        (String.concat "; "
           (List.map
              (fun c ->
                Printf.sprintf "[%s]->[%s] init=%d prio=%s" (ints c.rc_prod)
                  (ints c.rc_cons) c.rc_init
                  (match c.rc_prio with
                  | None -> "-"
                  | Some p -> string_of_int p))
              rg.rg_chans))
        (match rg.rg_clock with
        | None -> "none"
        | Some None -> "sporadic"
        | Some (Some t) -> string_of_float t))
    gen_graph

let build_random_graph rg =
  let g = Graph.create () in
  List.iteri
    (fun i phases -> Graph.add_kernel g ~phases (Printf.sprintf "k%d" i))
    rg.rg_phases;
  let phases = Array.of_list rg.rg_phases in
  List.iteri
    (fun i c ->
      (* rate vectors must match the endpoint's phase count; cycle the
         generated rates to the right length (at least one non-zero so
         the channel is not degenerate) *)
      let fit n l =
        List.init n (fun k -> List.nth l (k mod List.length l))
      in
      let nonzero l = if List.for_all (( = ) 0) l then 1 :: List.tl l else l in
      ignore
        (Graph.add_channel g
           ~src:(Printf.sprintf "k%d" i)
           ~dst:(Printf.sprintf "k%d" (i + 1))
           ~prod:(Csdf.Graph.const_rates (nonzero (fit phases.(i) c.rc_prod)))
           ~cons:
             (Csdf.Graph.const_rates (nonzero (fit phases.(i + 1) c.rc_cons)))
           ~init:c.rc_init ?priority:c.rc_prio ()))
    rg.rg_chans;
  (match rg.rg_clock with
  | None -> ()
  | Some clock ->
      Graph.add_control g ?clock_period_ms:clock "ctl";
      ignore
        (Graph.add_control_channel g ~src:"ctl" ~dst:"k0"
           ~prod:(Csdf.Graph.const_rates [ 1 ])
           ~cons:(Csdf.Graph.const_rates (List.init phases.(0) (fun _ -> 1)))
           ()));
  g

let prop_random_roundtrip =
  QCheck.Test.make ~name:"random chains round-trip" ~count:200 arb_graph
    (fun rg ->
      let g = build_random_graph rg in
      match Serial.of_string (Serial.to_string g) with
      | Ok g' -> Serial.to_string g = Serial.to_string g'
      | Error _ -> false)

let prop_random_clock_exact =
  (* the clock period must survive the round-trip bit-exactly, not just
     to a few printed digits *)
  QCheck.Test.make ~name:"clock periods round-trip exactly" ~count:50
    QCheck.(oneofl [ 0.1; 0.3; 1.0 /. 3.0; 2.25; 125.5; 0.0625 ])
    (fun t ->
      let g = Graph.create () in
      Graph.add_kernel g "k";
      Graph.add_control g ~clock_period_ms:t "w";
      ignore
        (Graph.add_control_channel g ~src:"w" ~dst:"k"
           ~prod:(Csdf.Graph.const_rates [ 1 ])
           ~cons:(Csdf.Graph.const_rates [ 1 ])
           ());
      match Serial.of_string (Serial.to_string g) with
      | Ok g' -> Graph.clock_period_ms g' "w" = Some t
      | Error _ -> false)

let () =
  Alcotest.run "serial"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "paper examples" `Quick test_roundtrip_examples;
          Alcotest.test_case "applications" `Quick test_roundtrip_apps;
          Alcotest.test_case "file" `Quick test_file_roundtrip;
          Alcotest.test_case "shipped graphs" `Quick test_shipped_graph_files;
          Alcotest.test_case "shipped graphs are print fixed points" `Quick
            test_shipped_fixed_point;
          QCheck_alcotest.to_alcotest prop_random_roundtrip;
          QCheck_alcotest.to_alcotest prop_random_clock_exact;
        ] );
      ( "parsing",
        [
          Alcotest.test_case "handwritten fig2" `Quick test_parse_handwritten;
          Alcotest.test_case "attributes" `Quick test_parse_attributes;
          Alcotest.test_case "errors" `Quick test_parse_errors;
        ] );
    ]
