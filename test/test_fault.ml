open Tpdf_core
open Tpdf_param
open Tpdf_fault
module Sim = Tpdf_sim
module Apps = Tpdf_apps
module Obs = Tpdf_obs.Obs
module Metrics = Tpdf_obs.Metrics

let c = Tpdf_csdf.Graph.const_rates

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Spec language                                                       *)
(* ------------------------------------------------------------------ *)

let test_parse_roundtrip () =
  let s = "fail:FFT:0.2:4,overrun:QAM:0.8:8,jitter:*:0.1:0.5,corrupt:RCP:0.3,ctrl-loss:CON:0.25" in
  match Fault.parse_specs s with
  | Error m -> Alcotest.fail m
  | Ok specs ->
      Alcotest.(check int) "five specs" 5 (List.length specs);
      Alcotest.(check string) "canonical round-trip" s
        (Fault.specs_to_string specs);
      (match specs with
      | { Fault.target = Some "FFT"; prob; kind = Fault.Fail 4 } :: _ ->
          Alcotest.(check (float 1e-9)) "prob" 0.2 prob
      | _ -> Alcotest.fail "first spec mismatch")

let test_parse_errors () =
  List.iter
    (fun s ->
      match Fault.parse_specs s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (s ^ ": error expected"))
    [
      "";
      "boom:FFT:0.5";
      "fail:FFT:1.5";
      "fail:FFT:0.5:0";
      "fail:FFT:0.5:1.5";
      "corrupt:FFT:0.5:7";
      "overrun:FFT:abc";
    ]

let test_spec_validation () =
  (match Fault.spec ~prob:2.0 Fault.Corrupt with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "prob out of range accepted");
  match Fault.spec ~prob:0.5 (Fault.Fail 0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero fail count accepted"

(* ------------------------------------------------------------------ *)
(* Plan determinism                                                    *)
(* ------------------------------------------------------------------ *)

let some_specs =
  [
    Fault.spec ~target:"A" ~prob:0.5 (Fault.Fail 1);
    Fault.spec ~prob:0.3 (Fault.Jitter 2.0);
    Fault.spec ~target:"B" ~prob:0.4 Fault.Corrupt;
  ]

let test_plan_deterministic () =
  let p1 = Plan.make ~seed:7 some_specs in
  let p2 = Plan.make ~seed:7 some_specs in
  for i = 0 to 99 do
    List.iter
      (fun actor ->
        Alcotest.(check bool) "same draw" true
          (Plan.draw p1 ~actor ~index:i = Plan.draw p2 ~actor ~index:i))
      [ "A"; "B"; "C" ]
  done

let test_plan_seed_sensitive () =
  let p1 = Plan.make ~seed:7 some_specs in
  let p2 = Plan.make ~seed:8 some_specs in
  let differs = ref false in
  for i = 0 to 99 do
    List.iter
      (fun actor ->
        if Plan.draw p1 ~actor ~index:i <> Plan.draw p2 ~actor ~index:i then
          differs := true)
      [ "A"; "B" ]
  done;
  Alcotest.(check bool) "seeds matter" true !differs

let test_plan_respects_target () =
  let p = Plan.make ~seed:3 [ Fault.spec ~target:"A" ~prob:1.0 Fault.Corrupt ] in
  Alcotest.(check bool) "A always hit" true
    (List.mem Fault.Corrupt (Plan.draw p ~actor:"A" ~index:0));
  Alcotest.(check (list (list string))) "B never hit" []
    (List.map
       (fun k -> [ Format.asprintf "%a" Fault.pp_kind k ])
       (Plan.draw p ~actor:"B" ~index:0));
  Alcotest.(check bool) "empty plan draws nothing" true
    (Plan.draw Plan.none ~actor:"A" ~index:0 = [])

(* ------------------------------------------------------------------ *)
(* Supervisor on a small pipeline                                      *)
(* ------------------------------------------------------------------ *)

let pipeline () =
  let g = Graph.create () in
  Graph.add_kernel g "SRC";
  Graph.add_kernel g "MID";
  Graph.add_kernel g "SNK";
  ignore (Graph.add_channel g ~src:"SRC" ~dst:"MID" ~prod:(c [ 1 ]) ~cons:(c [ 1 ]) ());
  ignore (Graph.add_channel g ~src:"MID" ~dst:"SNK" ~prod:(c [ 1 ]) ~cons:(c [ 1 ]) ());
  g

let test_retry_recovers () =
  let g = pipeline () in
  (* MID fails twice on every firing; budget 2 absorbs it *)
  let plan = Plan.make ~seed:1 [ Fault.spec ~target:"MID" ~prob:1.0 (Fault.Fail 2) ] in
  let policy = Policy.make ~max_retries:2 ~retry_backoff_ms:0.5 () in
  let s =
    Supervisor.run ~graph:g ~plan ~policy ~iterations:3
      ~valuation:Valuation.empty ~default:0 ()
  in
  Alcotest.(check (option string)) "recovered" None s.Supervisor.unrecovered;
  Alcotest.(check int) "3 iterations" 3 s.Supervisor.iterations_run;
  Alcotest.(check int) "2 retries per firing" 6 s.Supervisor.retries;
  Alcotest.(check int) "no skips" 0 s.Supervisor.skips;
  (* backoff extends virtual time beyond the 3 ms of a fault-free run *)
  let clean =
    Supervisor.run ~graph:g ~plan:Plan.none ~policy ~iterations:3
      ~valuation:Valuation.empty ~default:0 ()
  in
  Alcotest.(check bool) "backoff visible in virtual time" true
    (s.Supervisor.total_end_ms > clean.Supervisor.total_end_ms)

let test_skip_substitutes () =
  let g = pipeline () in
  (* MID fails 5 times per firing, budget 1: every firing is substituted,
     yet the declared rates keep the pipeline flowing to completion *)
  let plan = Plan.make ~seed:1 [ Fault.spec ~target:"MID" ~prob:1.0 (Fault.Fail 5) ] in
  let policy = Policy.make ~max_retries:1 () in
  let seen = ref [] in
  let behaviors =
    [
      ("SRC", Sim.Behavior.fill 7);
      ( "SNK",
        Sim.Behavior.sink (fun ctx ->
            List.iter
              (fun (_, toks) ->
                List.iter (fun t -> seen := Sim.Token.data t :: !seen) toks)
              ctx.Sim.Behavior.inputs) );
    ]
  in
  let s =
    Supervisor.run ~graph:g ~plan ~policy ~behaviors ~iterations:2
      ~valuation:Valuation.empty ~default:0 ()
  in
  Alcotest.(check (option string)) "recovered" None s.Supervisor.unrecovered;
  Alcotest.(check int) "every MID firing skipped" 2 s.Supervisor.skips;
  Alcotest.(check (list int)) "SNK saw substituted defaults" [ 0; 0 ]
    !seen;
  List.iter
    (fun (st : Sim.Engine.stats) ->
      Alcotest.(check int) "MID fired" 1 (List.assoc "MID" st.Sim.Engine.firings))
    s.Supervisor.per_iteration

let test_corrupt_and_ctrl_loss_counted () =
  let g = pipeline () in
  let plan =
    Plan.make ~seed:9 [ Fault.spec ~target:"SRC" ~prob:1.0 Fault.Corrupt ]
  in
  let behaviors = [ ("SRC", Sim.Behavior.fill 7) ] in
  let s =
    Supervisor.run ~graph:g ~plan ~behaviors ~iterations:2
      ~valuation:Valuation.empty ~default:0 ~corrupt:(fun v -> v + 100) ()
  in
  Alcotest.(check int) "corruptions counted" 2 s.Supervisor.corrupted;
  Alcotest.(check (option string)) "recovered" None s.Supervisor.unrecovered

let test_deadline_watchdog () =
  let g = pipeline () in
  let plan =
    Plan.make ~seed:2 [ Fault.spec ~target:"MID" ~prob:1.0 (Fault.Overrun 10.0) ]
  in
  let policy = Policy.make ~deadlines_ms:[ ("MID", 2.0) ] () in
  let s =
    Supervisor.run ~graph:g ~plan ~policy ~iterations:4
      ~valuation:Valuation.empty ~default:0 ()
  in
  (* default 1 ms duration, x10 overrun = 10 ms > 2 ms deadline *)
  Alcotest.(check int) "every firing misses" 4 s.Supervisor.deadline_misses;
  Alcotest.(check int) "no hits" 0 s.Supervisor.deadline_hits

let test_policy_validation () =
  let g = pipeline () in
  let bad watch pins =
    let policy =
      Policy.make ~fallbacks:[ { Policy.watch; pins } ] ()
    in
    match Policy.validate g policy with
    | Error _ -> ()
    | Ok () -> Alcotest.fail "invalid fallback accepted"
  in
  bad "NOPE" [];
  bad "MID" [ ("NOPE", "m") ];
  bad "MID" [ ("MID", "m") ] (* MID has no control port *)

let test_unrecovered_stall_reported () =
  let g = Graph.create () in
  Graph.add_kernel g "X";
  Graph.add_kernel g "Y";
  ignore (Graph.add_channel g ~src:"X" ~dst:"Y" ~prod:(c [ 1 ]) ~cons:(c [ 1 ]) ());
  ignore (Graph.add_channel g ~src:"Y" ~dst:"X" ~prod:(c [ 1 ]) ~cons:(c [ 1 ]) ());
  let s =
    Supervisor.run ~graph:g ~plan:Plan.none ~iterations:3
      ~valuation:Valuation.empty ~default:0 ()
  in
  (match s.Supervisor.unrecovered with
  | Some why ->
      Alcotest.(check bool) "mentions stall" true
        (contains why "stalled")
  | None -> Alcotest.fail "stall expected");
  Alcotest.(check int) "stopped at first iteration" 1
    s.Supervisor.iterations_run

(* ------------------------------------------------------------------ *)
(* Reconfigure failure paths                                           *)
(* ------------------------------------------------------------------ *)

let test_reconfigure_failures () =
  let g, _ = Apps.Ofdm_app.tpdf_graph () in
  let v = Apps.Ofdm_app.valuation ~beta:1 ~n:4 ~l:1 in
  (match Sim.Reconfigure.run_scenarios ~graph:g ~valuation:v ~default:0 [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty scenario list accepted");
  (match
     Sim.Reconfigure.run_scenarios ~graph:g ~valuation:v ~default:0
       [ [ ("DUP", "nope") ] ]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "undeclared mode accepted");
  (match Sim.Reconfigure.starved_actors g [ ("NOPE", "qpsk") ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown actor accepted");
  Alcotest.(check (list string)) "QAM starved under qpsk scenario" [ "QAM" ]
    (Sim.Reconfigure.starved_actors g Apps.Ofdm_app.scenario_qpsk);
  Alcotest.(check (list string)) "QPSK starved under qam scenario" [ "QPSK" ]
    (Sim.Reconfigure.starved_actors g Apps.Ofdm_app.scenario_qam)

(* ------------------------------------------------------------------ *)
(* OFDM mode fallback, end to end, bit-for-bit reproducible            *)
(* ------------------------------------------------------------------ *)

let ofdm_chaos () =
  let g, _ = Apps.Ofdm_app.tpdf_graph () in
  let beta = 2 and n = 8 in
  let v = Apps.Ofdm_app.valuation ~beta ~n ~l:1 in
  let behaviors =
    List.filter_map
      (fun a ->
        if Graph.is_control g a then None
        else
          Some
            ( a,
              Sim.Behavior.fill 0
                ~duration_ms:(fun _ ->
                  Apps.Ofdm_app.model_cost_ms ~beta ~n a) ))
      (Graph.actors g)
  in
  let policy =
    Policy.make
      ~deadlines_ms:[ ("QAM", 0.05) ]
      ~degrade_after:2
      ~fallbacks:(Chaos.default_fallbacks g) ()
  in
  let specs = [ Fault.spec ~target:"QAM" ~prob:0.8 (Fault.Overrun 8.0) ] in
  let obs = Obs.create () in
  let s =
    Chaos.run ~graph:g ~seed:42 ~specs ~policy ~iterations:6 ~obs ~behaviors
      ~valuation:v ()
  in
  (s, obs)

let test_ofdm_mode_fallback () =
  let s, obs = ofdm_chaos () in
  Alcotest.(check bool) "recovered" true (Chaos.recovered s);
  Alcotest.(check (list (pair string string))) "DUP and TRAN degraded to qpsk"
    [ ("DUP", "qpsk"); ("TRAN", "qpsk") ]
    (List.sort compare s.Supervisor.degrades);
  Alcotest.(check bool) "misses tripped it" true
    (s.Supervisor.deadline_misses >= 2);
  (* after the degrade the QAM branch is starved: its firings stop *)
  (match List.rev s.Supervisor.per_iteration with
  | last :: _ ->
      Alcotest.(check int) "QAM silent after fallback" 0
        (List.assoc "QAM" last.Sim.Engine.firings);
      Alcotest.(check bool) "QPSK branch active" true
        (List.assoc "QPSK" last.Sim.Engine.firings > 0)
  | [] -> Alcotest.fail "no iterations");
  (* the degrade instants and counters are visible through tpdf_obs *)
  let degrade_events =
    List.filter
      (fun (e : Tpdf_obs.Event.t) ->
        e.cat = "supervisor" && e.name = "degrade")
      (Obs.events obs)
  in
  Alcotest.(check int) "two degrade instants" 2 (List.length degrade_events);
  Alcotest.(check int) "degrade counter" 2
    (Metrics.counter (Obs.metrics obs) "supervisor.degrades");
  let report =
    Tpdf_obs.Report.summary ~metrics:(Obs.metrics obs) (Obs.events obs)
  in
  Alcotest.(check bool) "summary has a resilience section" true
    (contains report "== resilience ==");
  Alcotest.(check bool) "summary lists the degrade" true
    (contains report "mode degrades")

let test_ofdm_chaos_reproducible () =
  let s1, o1 = ofdm_chaos () in
  let s2, o2 = ofdm_chaos () in
  Alcotest.(check bool) "summaries byte-identical" true (s1 = s2);
  Alcotest.(check bool) "per-iteration stats byte-identical" true
    (s1.Supervisor.per_iteration = s2.Supervisor.per_iteration);
  Alcotest.(check bool) "obs event streams byte-identical" true
    (Obs.events o1 = Obs.events o2);
  Alcotest.(check bool) "chrome traces byte-identical" true
    (Tpdf_obs.Chrome.json_of_events (Obs.events o1)
    = Tpdf_obs.Chrome.json_of_events (Obs.events o2))

let test_chaos_defaults () =
  let g, _ = Apps.Ofdm_app.tpdf_graph () in
  Alcotest.(check (list (pair string string))) "start ambitious (last mode)"
    [ ("DUP", "qam"); ("TRAN", "qam") ]
    (List.sort compare (Chaos.default_scenario g));
  let fallbacks = Chaos.default_fallbacks g in
  Alcotest.(check (list string)) "watch set covers the QAM branch"
    [ "DUP"; "QAM"; "TRAN" ]
    (List.sort compare
       (List.map (fun (f : Policy.fallback) -> f.Policy.watch) fallbacks));
  List.iter
    (fun (f : Policy.fallback) ->
      Alcotest.(check (list (pair string string))) "pins fall back to qpsk"
        [ ("DUP", "qpsk"); ("TRAN", "qpsk") ]
        (List.sort compare f.Policy.pins))
    fallbacks

let () =
  Alcotest.run "fault"
    [
      ( "specs",
        [
          Alcotest.test_case "round-trip" `Quick test_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "constructor validation" `Quick
            test_spec_validation;
        ] );
      ( "plan",
        [
          Alcotest.test_case "deterministic" `Quick test_plan_deterministic;
          Alcotest.test_case "seed sensitive" `Quick test_plan_seed_sensitive;
          Alcotest.test_case "targeting" `Quick test_plan_respects_target;
        ] );
      ( "supervisor",
        [
          Alcotest.test_case "retry recovers" `Quick test_retry_recovers;
          Alcotest.test_case "skip substitutes" `Quick test_skip_substitutes;
          Alcotest.test_case "corruption counted" `Quick
            test_corrupt_and_ctrl_loss_counted;
          Alcotest.test_case "deadline watchdog" `Quick test_deadline_watchdog;
          Alcotest.test_case "policy validation" `Quick test_policy_validation;
          Alcotest.test_case "unrecovered stall" `Quick
            test_unrecovered_stall_reported;
        ] );
      ( "reconfigure",
        [
          Alcotest.test_case "failure paths" `Quick test_reconfigure_failures;
        ] );
      ( "ofdm",
        [
          Alcotest.test_case "mode fallback" `Quick test_ofdm_mode_fallback;
          Alcotest.test_case "bit-for-bit reproducible" `Quick
            test_ofdm_chaos_reproducible;
          Alcotest.test_case "chaos defaults" `Quick test_chaos_defaults;
        ] );
    ]
