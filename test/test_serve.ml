(* tpdf_serve suite: the daemon as a pure request → response machine.

   Pins the PR's acceptance criteria:
   - protocol and admission behave per DESIGN.md §7 (stable error
     codes, admission ladder, FIFO queue, shedding);
   - fault isolation: in a fleet of 9 tenants with one permanently
     faulting tenant, the faulter is quarantined while every tenant's
     response transcript stays byte-identical to a solo daemon run;
   - crash recovery: dropping the daemon mid-fleet (the in-process
     equivalent of kill -9 — state only ever lives in the synchronously
     written checkpoint store) and reloading the state directory
     continues every survivor byte-identically to a daemon that never
     crashed;
   - eviction/revival round-trips through the checkpoint store without
     observable effect on responses. *)

module J = Tpdf_serve.Json
module D = Tpdf_serve.Daemon
module Adm = Tpdf_serve.Admission
module Serial = Tpdf_core.Serial
module Valuation = Tpdf_param.Valuation
module Metrics = Tpdf_obs.Metrics

let graphs_dir =
  let d = "../graphs" in
  if Sys.file_exists d then d else "graphs"

let read_file p = In_channel.with_open_text p In_channel.input_all
let graph_src name = read_file (Filename.concat graphs_dir (name ^ ".tpdf"))
let fig1 = lazy (graph_src "fig1")
let fig2 = lazy (graph_src "fig2")
let spdf = lazy (graph_src "spdf")

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let dir_counter = ref 0

let with_temp_dir f =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tpdf_serve_test_%d_%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Request/response helpers                                            *)
(* ------------------------------------------------------------------ *)

let daemon ?(cfg = D.default_config) () =
  match D.create cfg with Ok d -> d | Error e -> Alcotest.fail e

let rpc d fields = D.handle_line d (J.to_string (J.Obj fields))

let parse resp =
  match J.of_string resp with
  | Ok v -> v
  | Error e -> Alcotest.fail (Printf.sprintf "unparsable response %s: %s" resp e)

let is_ok resp = J.member "ok" (parse resp) = Some (J.Bool true)

let code_of resp =
  match J.member "error" (parse resp) with
  | Some e -> (
      match J.member "code" e with Some (J.String c) -> c | _ -> "")
  | None -> ""

let field resp key = J.member key (parse resp)

let int_field resp key =
  match field resp key with
  | Some (J.Int n) -> n
  | _ -> Alcotest.fail (Printf.sprintf "response %s: no int field %S" resp key)

let check_code what expected resp =
  Alcotest.(check bool) (what ^ ": ok=false") false (is_ok resp);
  Alcotest.(check string) (what ^ ": code") expected (code_of resp)

let submit_req ?(id = "sub") ?(params = []) ?faults ?seed ?budget ?deadline_ms
    ~name src =
  [
    ("id", J.String id);
    ("op", J.String "submit");
    ("name", J.String name);
    ("graph", J.String src);
  ]
  @ (if params = [] then []
     else [ ("params", J.Obj (List.map (fun (k, v) -> (k, J.Int v)) params)) ])
  @ (match seed with Some s -> [ ("seed", J.Int s) ] | None -> [])
  @ (match faults with Some f -> [ ("faults", J.String f) ] | None -> [])
  @ (match budget with Some b -> [ ("budget", J.Int b) ] | None -> [])
  @
  match deadline_ms with
  | Some m -> [ ("deadline_ms", J.Float m) ]
  | None -> []

let advance_req ?(id = "adv") ~name n =
  [
    ("id", J.String id);
    ("op", J.String "advance");
    ("name", J.String name);
    ("iterations", J.Int n);
  ]

let query_req ?(id = "q") name =
  [ ("id", J.String id); ("op", J.String "query"); ("name", J.String name) ]

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let values =
    [
      J.Null;
      J.Bool true;
      J.Bool false;
      J.Int 0;
      J.Int (-42);
      J.Int max_int;
      J.Float 1.5;
      J.Float (-0.125);
      J.Float 4.9999999999989999;
      J.String "";
      J.String "hello \"quoted\" \\ slash \n tab \t";
      J.List [ J.Int 1; J.List []; J.Obj [] ];
      J.Obj
        [
          ("a", J.Int 1);
          ("nested", J.Obj [ ("b", J.List [ J.Bool false; J.Null ]) ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      let s = J.to_string v in
      match J.of_string s with
      | Ok v' ->
          Alcotest.(check string)
            ("stable: " ^ s) s (J.to_string v')
      | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" s e))
    values

let test_json_parse () =
  (match J.of_string "{\"a\": 1, \"b\": [true, null, \"\\u0041\"]}" with
  | Ok (J.Obj [ ("a", J.Int 1); ("b", J.List [ J.Bool true; J.Null; J.String "A" ]) ])
    ->
      ()
  | Ok v -> Alcotest.fail ("unexpected parse: " ^ J.to_string v)
  | Error e -> Alcotest.fail e);
  (match J.of_string "1e3" with
  | Ok (J.Float 1000.0) -> ()
  | _ -> Alcotest.fail "1e3 should parse as a float");
  List.iter
    (fun s ->
      match J.of_string s with
      | Error _ -> ()
      | Ok v ->
          Alcotest.fail
            (Printf.sprintf "%S should not parse (got %s)" s (J.to_string v)))
    [ ""; "{"; "[1,]"; "{\"a\"}"; "tru"; "\"unterminated"; "{\"a\":1}x"; "01" ]

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)
(* ------------------------------------------------------------------ *)

let graph_of src =
  match Serial.of_string src with
  | Ok g -> g
  | Error e -> Alcotest.fail e

let test_admission_ok () =
  match
    Adm.check ~graph:(graph_of (Lazy.force fig1))
      ~valuation:(Valuation.of_list []) ()
  with
  | Adm.Admitted { Adm.cost; period_ms } ->
      Alcotest.(check int) "fig1 cost" 7 cost;
      Alcotest.(check bool) "fig1 period in (0, 5.5)" true
        (period_ms > 0.0 && period_ms < 5.5)
  | Adm.Rejected r -> Alcotest.fail r

let test_admission_rejects () =
  let reject what outcome =
    match outcome with
    | Adm.Rejected _ -> ()
    | Adm.Admitted _ -> Alcotest.fail (what ^ ": admission expected to fail")
  in
  reject "unbound parameter"
    (Adm.check ~graph:(graph_of (Lazy.force fig2))
       ~valuation:(Valuation.of_list []) ());
  reject "rate-unsafe control"
    (Adm.check
       ~graph:(Tpdf_core.Examples.unsafe_control ())
       ~valuation:(Valuation.of_list [ ("p", 2) ])
       ());
  reject "over budget"
    (Adm.check ~graph:(graph_of (Lazy.force fig1))
       ~valuation:(Valuation.of_list []) ~max_cost:3 ());
  reject "deadline below MCR"
    (Adm.check ~graph:(graph_of (Lazy.force fig1))
       ~valuation:(Valuation.of_list []) ~deadline_ms:1.0 ())

(* ------------------------------------------------------------------ *)
(* Protocol errors                                                     *)
(* ------------------------------------------------------------------ *)

let test_protocol_errors () =
  let d = daemon () in
  check_code "garbage line" "bad_request" (D.handle_line d "not json");
  check_code "missing op" "bad_request" (rpc d [ ("id", J.String "x") ]);
  check_code "unknown op" "unknown_op"
    (rpc d [ ("id", J.String "x"); ("op", J.String "frobnicate") ]);
  check_code "unknown tenant" "unknown_tenant"
    (rpc d (query_req "nobody"));
  check_code "bad tenant name" "bad_request"
    (rpc d (submit_req ~name:"no/slashes" (Lazy.force fig1)));
  check_code "bad graph" "inadmissible"
    (rpc d (submit_req ~name:"t" "tpdf graph { nonsense"));
  check_code "unsafe graph" "inadmissible"
    (rpc d
       (submit_req ~name:"t"
          (Serial.to_string (Tpdf_core.Examples.unsafe_control ()))
          ~params:[ ("p", 2) ]));
  let ok = rpc d (submit_req ~name:"t" (Lazy.force fig1)) in
  Alcotest.(check bool) "submit ok" true (is_ok ok);
  check_code "duplicate submit" "exists"
    (rpc d (submit_req ~name:"t" (Lazy.force fig1)));
  check_code "zero iterations" "bad_request"
    (rpc d (advance_req ~name:"t" 0));
  check_code "oversized advance" "overloaded"
    (rpc d (advance_req ~name:"t" (D.default_config.D.max_advance + 1)))

(* ------------------------------------------------------------------ *)
(* Capacity, queueing, shedding                                        *)
(* ------------------------------------------------------------------ *)

let test_capacity_queue_shed () =
  (* fig1 costs 7/iteration; capacity 7 fits exactly one tenant. *)
  let cfg = { D.default_config with D.capacity = 7; max_queue = 1 } in
  let d = daemon ~cfg () in
  let r1 = rpc d (submit_req ~name:"t1" (Lazy.force fig1)) in
  Alcotest.(check bool) "t1 ok" true (is_ok r1);
  Alcotest.(check (option string)) "t1 running" (Some "running")
    (match field r1 "status" with Some (J.String s) -> Some s | _ -> None);
  let r2 = rpc d (submit_req ~name:"t2" (Lazy.force fig1)) in
  Alcotest.(check (option string)) "t2 queued" (Some "queued")
    (match field r2 "status" with Some (J.String s) -> Some s | _ -> None);
  let r3 = rpc d (submit_req ~name:"t3" (Lazy.force fig1)) in
  check_code "t3 shed" "overloaded" r3;
  Alcotest.(check bool) "t3 retry hint" true
    (match J.member "error" (parse r3) with
    | Some e -> J.member "retry_after_ms" e <> None
    | None -> false);
  check_code "queued tenants do not advance" "queued"
    (rpc d (advance_req ~name:"t2" 1));
  Alcotest.(check int) "t2 queue position" 0
    (int_field (rpc d (query_req "t2")) "queue_position");
  (* Removing the running tenant frees capacity: strict FIFO promotion. *)
  let rm = rpc d [ ("id", J.String "rm"); ("op", J.String "remove"); ("name", J.String "t1") ] in
  Alcotest.(check bool) "remove ok" true (is_ok rm);
  let q2 = rpc d (query_req "t2") in
  Alcotest.(check (option string)) "t2 promoted" (Some "running")
    (match field q2 "status" with Some (J.String s) -> Some s | _ -> None);
  Alcotest.(check bool) "t2 advances after promotion" true
    (is_ok (rpc d (advance_req ~name:"t2" 1)))

(* ------------------------------------------------------------------ *)
(* Fleet fixture                                                       *)
(* ------------------------------------------------------------------ *)

(* 8 healthy tenants over three distinct graphs and valuations, plus
   one permanently faulting tenant: every firing attempt fails and the
   retry budget is exhausted, so each firing is skipped-and-substituted
   and the skip budget quarantines the tenant on its first advance. *)
let healthy =
  [
    ("h1", `Fig1, []);
    ("h2", `Fig2, [ ("p", 1) ]);
    ("h3", `Fig1, []);
    ("h4", `Fig2, [ ("p", 2) ]);
    ("h5", `Spdf, [ ("p", 2); ("q", 3) ]);
    ("h6", `Fig2, [ ("p", 3) ]);
    ("h7", `Fig1, []);
    ("h8", `Spdf, [ ("p", 1); ("q", 2) ]);
  ]

let faulter_name = "bad"

let src_of = function
  | `Fig1 -> Lazy.force fig1
  | `Fig2 -> Lazy.force fig2
  | `Spdf -> Lazy.force spdf

let fleet_cfg = { D.default_config with D.quarantine_skips = 1 }

let tenant_reqs (name, g, params) =
  let faults =
    if name = faulter_name then Some "fail:*:1.0:1000" else None
  in
  [
    submit_req ~id:("sub-" ^ name) ~name ~params ?faults ~seed:3 (src_of g);
    advance_req ~id:("a1-" ^ name) ~name 2;
    advance_req ~id:("a2-" ^ name) ~name 3;
    query_req ~id:("q-" ^ name) name;
  ]

let all_tenants =
  let before, after =
    (List.filteri (fun i _ -> i < 4) healthy,
     List.filteri (fun i _ -> i >= 4) healthy)
  in
  before @ [ (faulter_name, `Fig2, [ ("p", 2) ]) ] @ after

(* Interleave by round: all submits, all first advances, ... so every
   tenant's requests are separated by the whole fleet's. *)
let fleet_script =
  let per_tenant = List.map tenant_reqs all_tenants in
  List.concat
    (List.map
       (fun round -> List.map (fun reqs -> List.nth reqs round) per_tenant)
       [ 0; 1; 2; 3 ])

let name_of_req req =
  match List.assoc_opt "name" req with
  | Some (J.String n) -> n
  | _ -> Alcotest.fail "request without a name"

let run_script d script =
  List.map (fun req -> (name_of_req req, rpc d req)) script

let test_fleet_isolation () =
  let d = daemon ~cfg:fleet_cfg () in
  let fleet = run_script d fleet_script in
  let responses_of name =
    List.filter_map (fun (n, r) -> if n = name then Some r else None)
  in
  (* The faulter was quarantined on its first advance and stayed out. *)
  (match responses_of faulter_name fleet with
  | [ sub; a1; a2; q ] ->
      Alcotest.(check bool) "faulter admitted" true (is_ok sub);
      check_code "faulter quarantined on advance" "quarantined" a1;
      Alcotest.(check bool) "faulter reported skips" true
        (int_field a1 "skips" > 0);
      check_code "faulter stays quarantined" "quarantined" a2;
      Alcotest.(check (option string)) "faulter query status"
        (Some "quarantined")
        (match field q "status" with Some (J.String s) -> Some s | _ -> None)
  | _ -> Alcotest.fail "faulter transcript shape");
  Alcotest.(check int) "one quarantine counted" 1
    (match List.assoc_opt "serve.quarantined" (Metrics.counters (D.metrics d)) with
    | Some n -> n
    | None -> 0);
  (* Every tenant's transcript — the faulter included — is byte-identical
     to a solo daemon hosting only that tenant. *)
  List.iter
    (fun ((name, _, _) as spec) ->
      let solo = daemon ~cfg:fleet_cfg () in
      let expect = List.map (fun req -> rpc solo req) (tenant_reqs spec) in
      Alcotest.(check (list string))
        (name ^ " transcript matches solo run")
        expect
        (responses_of name fleet))
    all_tenants;
  (* Healthy tenants made full progress. *)
  List.iter
    (fun (name, _, _) ->
      Alcotest.(check int) (name ^ " done") 5
        (int_field (rpc d (query_req name)) "done"))
    healthy

(* ------------------------------------------------------------------ *)
(* Crash recovery                                                      *)
(* ------------------------------------------------------------------ *)

let phase1 =
  let per_tenant = List.map tenant_reqs all_tenants in
  List.concat
    (List.map
       (fun round -> List.map (fun reqs -> List.nth reqs round) per_tenant)
       [ 0; 1 ])

let phase2 =
  let per_tenant = List.map tenant_reqs all_tenants in
  List.concat
    (List.map
       (fun round -> List.map (fun reqs -> List.nth reqs round) per_tenant)
       [ 2; 3 ])

let test_crash_recovery () =
  with_temp_dir @@ fun dir_g ->
  with_temp_dir @@ fun dir_a ->
  let cfg dir = { fleet_cfg with D.state_dir = Some dir } in
  (* Golden daemon: never crashes. *)
  let g = daemon ~cfg:(cfg dir_g) () in
  ignore (run_script g phase1);
  let golden = run_script g phase2 in
  (* Crash daemon: runs phase 1, is dropped without any shutdown — all
     its surviving state is what the synchronous per-request checkpoint
     writes left on disk, exactly the kill -9 situation. *)
  let a = daemon ~cfg:(cfg dir_a) () in
  ignore (run_script a phase1);
  let b = daemon ~cfg:(cfg dir_a) () in
  let resumed = run_script b phase2 in
  List.iter2
    (fun (gn, gr) (bn, br) ->
      Alcotest.(check string) "same tenant order" gn bn;
      (* The quarantined faulter answers with checkpoint-derived detail
         fields when hot and zeros when cold-restored; its code and
         status are pinned below instead of the exact bytes. *)
      if gn <> faulter_name then
        Alcotest.(check string) (gn ^ " resumed byte-identically") gr br)
    golden resumed;
  let q = rpc b (query_req faulter_name) in
  Alcotest.(check (option string)) "faulter still quarantined after restart"
    (Some "quarantined")
    (match field q "status" with Some (J.String s) -> Some s | _ -> None);
  Alcotest.(check bool) "quarantine reason survives restart" true
    (match field q "reason" with
    | Some (J.String r) -> contains r "skip budget"
    | _ -> false);
  (* The restored daemon kept every survivor's progress. *)
  List.iter
    (fun (name, _, _) ->
      Alcotest.(check int) (name ^ " done after restart") 5
        (int_field (rpc b (query_req name)) "done"))
    healthy

(* ------------------------------------------------------------------ *)
(* Eviction / revival                                                  *)
(* ------------------------------------------------------------------ *)

let test_evict_revive () =
  with_temp_dir @@ fun dir ->
  let cfg =
    { D.default_config with D.state_dir = Some dir; max_resident = 1 }
  in
  let d = daemon ~cfg () in
  let baseline = daemon () in
  let reqs name =
    [ submit_req ~id:("s-" ^ name) ~name (Lazy.force fig1);
      advance_req ~id:("a-" ^ name) ~name 2 ]
  in
  (* Submitting e2 evicts e1 (LRU, max_resident 1). *)
  let r1 = List.map (rpc d) (reqs "e1") in
  let b1 = List.map (rpc baseline) (reqs "e1") in
  Alcotest.(check (list string)) "e1 matches unevicted daemon" b1 r1;
  ignore (rpc d (submit_req ~id:"s-e2" ~name:"e2" (Lazy.force fig1)));
  Alcotest.(check bool) "e1 evicted" false
    (match field (rpc d (query_req "e1")) "resident" with
    | Some (J.Bool b) -> b
    | _ -> true);
  (* Advancing the cold tenant revives it with identical responses. *)
  let r = rpc d (advance_req ~id:"a2-e1" ~name:"e1" 3) in
  let b = rpc baseline (advance_req ~id:"a2-e1" ~name:"e1" 3) in
  Alcotest.(check string) "revived advance is byte-identical" b r;
  (* Explicit evict op round-trips too. *)
  let ev = rpc d [ ("id", J.String "ev"); ("op", J.String "evict"); ("name", J.String "e2") ] in
  Alcotest.(check bool) "evict ok" true (is_ok ev);
  Alcotest.(check bool) "e2 advances after explicit evict" true
    (is_ok (rpc d (advance_req ~name:"e2" 1)));
  (* Without a state dir, evict must refuse rather than lose the tenant. *)
  let d2 = daemon () in
  ignore (rpc d2 (submit_req ~name:"m" (Lazy.force fig1)));
  check_code "evict without state dir" "no_state_dir"
    (rpc d2 [ ("id", J.String "ev"); ("op", J.String "evict"); ("name", J.String "m") ])

(* ------------------------------------------------------------------ *)
(* Reconfiguration                                                     *)
(* ------------------------------------------------------------------ *)

let test_reconfigure () =
  let d = daemon () in
  let sub = rpc d (submit_req ~name:"r" ~params:[ ("p", 1) ] (Lazy.force fig2)) in
  Alcotest.(check bool) "submit ok" true (is_ok sub);
  let cost1 = int_field sub "cost" in
  let rc =
    rpc d
      [
        ("id", J.String "rc");
        ("op", J.String "reconfigure");
        ("name", J.String "r");
        ("params", J.Obj [ ("p", J.Int 4) ]);
      ]
  in
  Alcotest.(check bool) "reconfigure ok" true (is_ok rc);
  let cost4 = int_field rc "cost" in
  Alcotest.(check bool) "p=4 costs more than p=1" true (cost4 > cost1);
  Alcotest.(check int) "query sees the new cost" cost4
    (int_field (rpc d (query_req "r")) "cost");
  (* An inadmissible valuation is rejected and leaves the tenant as-is. *)
  check_code "unbound reconfigure" "inadmissible"
    (rpc d
       [
         ("id", J.String "rc2");
         ("op", J.String "reconfigure");
         ("name", J.String "r");
       ]);
  Alcotest.(check int) "cost unchanged after rejection" cost4
    (int_field (rpc d (query_req "r")) "cost");
  Alcotest.(check bool) "tenant still advances" true
    (is_ok (rpc d (advance_req ~name:"r" 1)))

(* ------------------------------------------------------------------ *)
(* Tick, metrics, checkpoint ops                                       *)
(* ------------------------------------------------------------------ *)

let test_tick () =
  let d = daemon ~cfg:fleet_cfg () in
  List.iter
    (fun ((name, _, _) as spec) ->
      ignore (rpc d (List.hd (tenant_reqs spec)));
      ignore name)
    all_tenants;
  let t = rpc d [ ("id", J.String "t"); ("op", J.String "tick"); ("iterations", J.Int 2) ] in
  Alcotest.(check bool) "tick ok" true (is_ok t);
  Alcotest.(check int) "healthy tenants advanced" (List.length healthy)
    (int_field t "advanced");
  (match field t "quarantined" with
  | Some (J.List [ J.String n ]) ->
      Alcotest.(check string) "faulter quarantined by tick" faulter_name n
  | _ -> Alcotest.fail "tick should quarantine exactly the faulter");
  List.iter
    (fun (name, _, _) ->
      Alcotest.(check int) (name ^ " ticked twice") 2
        (int_field (rpc d (query_req name)) "done"))
    healthy

let test_metrics_and_checkpoint () =
  with_temp_dir @@ fun dir ->
  let cfg = { D.default_config with D.state_dir = Some dir } in
  let d = daemon ~cfg () in
  ignore (rpc d (submit_req ~name:"m1" (Lazy.force fig1)));
  ignore (rpc d (advance_req ~name:"m1" 2));
  let m = rpc d [ ("id", J.String "m"); ("op", J.String "metrics") ] in
  let text =
    match field m "openmetrics" with
    | Some (J.String s) -> s
    | _ -> Alcotest.fail "metrics response lacks openmetrics text"
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("metrics expose " ^ needle) true
        (contains text needle))
    [
      "tpdf_serve_tenant_iterations{tenant=\"m1\"} 2";
      "tpdf_serve_requests_total";
      "tpdf_serve_iterations_total 2";
      "# EOF";
    ];
  let ck = rpc d [ ("id", J.String "ck"); ("op", J.String "checkpoint") ] in
  Alcotest.(check bool) "checkpoint ok" true (is_ok ck);
  Alcotest.(check int) "one tenant persisted" 1 (int_field ck "persisted");
  let d2 = daemon () in
  check_code "checkpoint without state dir" "no_state_dir"
    (rpc d2 [ ("id", J.String "ck"); ("op", J.String "checkpoint") ]);
  (* Shutdown flips the stopping flag the server loop watches. *)
  Alcotest.(check bool) "not stopping" false (D.stopping d);
  Alcotest.(check bool) "shutdown ok" true
    (is_ok (rpc d [ ("id", J.String "z"); ("op", J.String "shutdown") ]));
  Alcotest.(check bool) "stopping" true (D.stopping d)

(* ---------- endpoint parsing ---------- *)

let test_parse_endpoint () =
  let module S = Tpdf_serve.Server in
  let check_ep name s expected =
    match (S.parse_endpoint s, expected) with
    | Ok (S.Tcp (h, p)), `Tcp (h', p') ->
        Alcotest.(check string) (name ^ " host") h' h;
        Alcotest.(check int) (name ^ " port") p' p
    | Ok (S.Unix_path path), `Unix path' ->
        Alcotest.(check string) (name ^ " path") path' path
    | Error _, `Error -> ()
    | Ok _, `Error -> Alcotest.failf "%s: expected an error for %S" name s
    | Ok _, _ -> Alcotest.failf "%s: wrong endpoint kind for %S" name s
    | Error e, _ -> Alcotest.failf "%s: unexpected error for %S: %s" name s e
  in
  check_ep "tcp scheme" "tcp:127.0.0.1:7643" (`Tcp ("127.0.0.1", 7643));
  check_ep "tcp localhost" "tcp:localhost:80" (`Tcp ("localhost", 80));
  check_ep "unix scheme" "unix:/tmp/x.sock" (`Unix "/tmp/x.sock");
  check_ep "unix scheme relative" "unix:rel.sock" (`Unix "rel.sock");
  check_ep "bare host:port" "localhost:8080" (`Tcp ("localhost", 8080));
  check_ep "bare path" "/tmp/x.sock" (`Unix "/tmp/x.sock");
  check_ep "bare name" "daemon.sock" (`Unix "daemon.sock");
  (* A path with a colon segment still parses as a path thanks to '/'. *)
  check_ep "path with colon" "/tmp/a:b/x.sock" (`Unix "/tmp/a:b/x.sock");
  check_ep "tcp missing port" "tcp:nope" `Error;
  check_ep "tcp bad port" "tcp:host:notaport" `Error;
  check_ep "tcp out-of-range port" "tcp:host:70000" `Error;
  check_ep "empty" "" `Error

let () =
  Alcotest.run "tpdf_serve"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse" `Quick test_json_parse;
        ] );
      ( "admission",
        [
          Alcotest.test_case "admits fig1" `Quick test_admission_ok;
          Alcotest.test_case "rejection ladder" `Quick test_admission_rejects;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "stable error codes" `Quick test_protocol_errors;
          Alcotest.test_case "endpoint parsing" `Quick test_parse_endpoint;
        ] );
      ( "capacity",
        [ Alcotest.test_case "queue + shed + promote" `Quick test_capacity_queue_shed ] );
      ( "isolation",
        [ Alcotest.test_case "9-tenant fleet vs solo" `Quick test_fleet_isolation ] );
      ( "recovery",
        [ Alcotest.test_case "drop + reload state dir" `Quick test_crash_recovery ] );
      ( "eviction",
        [ Alcotest.test_case "evict/revive transparent" `Quick test_evict_revive ] );
      ( "reconfigure",
        [ Alcotest.test_case "swap valuation" `Quick test_reconfigure ] );
      ( "ops",
        [
          Alcotest.test_case "tick shards the fleet" `Quick test_tick;
          Alcotest.test_case "metrics + checkpoint" `Quick
            test_metrics_and_checkpoint;
        ] );
    ]
