(* tpdf_serve suite: the daemon as a pure request → response machine.

   Pins the PR's acceptance criteria:
   - protocol and admission behave per DESIGN.md §7 (stable error
     codes, admission ladder, FIFO queue, shedding);
   - fault isolation: in a fleet of 9 tenants with one permanently
     faulting tenant, the faulter is quarantined while every tenant's
     response transcript stays byte-identical to a solo daemon run;
   - crash recovery: dropping the daemon mid-fleet (the in-process
     equivalent of kill -9 — state only ever lives in the synchronously
     written checkpoint store) and reloading the state directory
     continues every survivor byte-identically to a daemon that never
     crashed;
   - eviction/revival round-trips through the checkpoint store without
     observable effect on responses. *)

module J = Tpdf_serve.Json
module D = Tpdf_serve.Daemon
module Adm = Tpdf_serve.Admission
module Serial = Tpdf_core.Serial
module Valuation = Tpdf_param.Valuation
module Metrics = Tpdf_obs.Metrics

let graphs_dir =
  let d = "../graphs" in
  if Sys.file_exists d then d else "graphs"

let read_file p = In_channel.with_open_text p In_channel.input_all
let graph_src name = read_file (Filename.concat graphs_dir (name ^ ".tpdf"))
let fig1 = lazy (graph_src "fig1")
let fig2 = lazy (graph_src "fig2")
let spdf = lazy (graph_src "spdf")

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let dir_counter = ref 0

let with_temp_dir f =
  incr dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tpdf_serve_test_%d_%d" (Unix.getpid ()) !dir_counter)
  in
  rm_rf dir;
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

(* ------------------------------------------------------------------ *)
(* Request/response helpers                                            *)
(* ------------------------------------------------------------------ *)

let daemon ?(cfg = D.default_config) () =
  match D.create cfg with Ok d -> d | Error e -> Alcotest.fail e

let rpc d fields = D.handle_line d (J.to_string (J.Obj fields))

let parse resp =
  match J.of_string resp with
  | Ok v -> v
  | Error e -> Alcotest.fail (Printf.sprintf "unparsable response %s: %s" resp e)

let is_ok resp = J.member "ok" (parse resp) = Some (J.Bool true)

let code_of resp =
  match J.member "error" (parse resp) with
  | Some e -> (
      match J.member "code" e with Some (J.String c) -> c | _ -> "")
  | None -> ""

let field resp key = J.member key (parse resp)

let int_field resp key =
  match field resp key with
  | Some (J.Int n) -> n
  | _ -> Alcotest.fail (Printf.sprintf "response %s: no int field %S" resp key)

let check_code what expected resp =
  Alcotest.(check bool) (what ^ ": ok=false") false (is_ok resp);
  Alcotest.(check string) (what ^ ": code") expected (code_of resp)

let submit_req ?(id = "sub") ?(params = []) ?faults ?seed ?budget ?deadline_ms
    ~name src =
  [
    ("id", J.String id);
    ("op", J.String "submit");
    ("name", J.String name);
    ("graph", J.String src);
  ]
  @ (if params = [] then []
     else [ ("params", J.Obj (List.map (fun (k, v) -> (k, J.Int v)) params)) ])
  @ (match seed with Some s -> [ ("seed", J.Int s) ] | None -> [])
  @ (match faults with Some f -> [ ("faults", J.String f) ] | None -> [])
  @ (match budget with Some b -> [ ("budget", J.Int b) ] | None -> [])
  @
  match deadline_ms with
  | Some m -> [ ("deadline_ms", J.Float m) ]
  | None -> []

let advance_req ?(id = "adv") ~name n =
  [
    ("id", J.String id);
    ("op", J.String "advance");
    ("name", J.String name);
    ("iterations", J.Int n);
  ]

let query_req ?(id = "q") name =
  [ ("id", J.String id); ("op", J.String "query"); ("name", J.String name) ]

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let values =
    [
      J.Null;
      J.Bool true;
      J.Bool false;
      J.Int 0;
      J.Int (-42);
      J.Int max_int;
      J.Float 1.5;
      J.Float (-0.125);
      J.Float 4.9999999999989999;
      J.String "";
      J.String "hello \"quoted\" \\ slash \n tab \t";
      J.List [ J.Int 1; J.List []; J.Obj [] ];
      J.Obj
        [
          ("a", J.Int 1);
          ("nested", J.Obj [ ("b", J.List [ J.Bool false; J.Null ]) ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      let s = J.to_string v in
      match J.of_string s with
      | Ok v' ->
          Alcotest.(check string)
            ("stable: " ^ s) s (J.to_string v')
      | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" s e))
    values

let test_json_parse () =
  (match J.of_string "{\"a\": 1, \"b\": [true, null, \"\\u0041\"]}" with
  | Ok (J.Obj [ ("a", J.Int 1); ("b", J.List [ J.Bool true; J.Null; J.String "A" ]) ])
    ->
      ()
  | Ok v -> Alcotest.fail ("unexpected parse: " ^ J.to_string v)
  | Error e -> Alcotest.fail e);
  (match J.of_string "1e3" with
  | Ok (J.Float 1000.0) -> ()
  | _ -> Alcotest.fail "1e3 should parse as a float");
  List.iter
    (fun s ->
      match J.of_string s with
      | Error _ -> ()
      | Ok v ->
          Alcotest.fail
            (Printf.sprintf "%S should not parse (got %s)" s (J.to_string v)))
    [ ""; "{"; "[1,]"; "{\"a\"}"; "tru"; "\"unterminated"; "{\"a\":1}x"; "01" ]

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)
(* ------------------------------------------------------------------ *)

let graph_of src =
  match Serial.of_string src with
  | Ok g -> g
  | Error e -> Alcotest.fail e

let test_admission_ok () =
  match
    Adm.check ~graph:(graph_of (Lazy.force fig1))
      ~valuation:(Valuation.of_list []) ()
  with
  | Adm.Admitted { Adm.cost; period_ms } ->
      Alcotest.(check int) "fig1 cost" 7 cost;
      Alcotest.(check bool) "fig1 period in (0, 5.5)" true
        (period_ms > 0.0 && period_ms < 5.5)
  | Adm.Rejected r -> Alcotest.fail r

let test_admission_rejects () =
  let reject what outcome =
    match outcome with
    | Adm.Rejected _ -> ()
    | Adm.Admitted _ -> Alcotest.fail (what ^ ": admission expected to fail")
  in
  reject "unbound parameter"
    (Adm.check ~graph:(graph_of (Lazy.force fig2))
       ~valuation:(Valuation.of_list []) ());
  reject "rate-unsafe control"
    (Adm.check
       ~graph:(Tpdf_core.Examples.unsafe_control ())
       ~valuation:(Valuation.of_list [ ("p", 2) ])
       ());
  reject "over budget"
    (Adm.check ~graph:(graph_of (Lazy.force fig1))
       ~valuation:(Valuation.of_list []) ~max_cost:3 ());
  reject "deadline below MCR"
    (Adm.check ~graph:(graph_of (Lazy.force fig1))
       ~valuation:(Valuation.of_list []) ~deadline_ms:1.0 ())

(* ------------------------------------------------------------------ *)
(* Protocol errors                                                     *)
(* ------------------------------------------------------------------ *)

let test_protocol_errors () =
  let d = daemon () in
  check_code "garbage line" "bad_request" (D.handle_line d "not json");
  check_code "missing op" "bad_request" (rpc d [ ("id", J.String "x") ]);
  check_code "unknown op" "unknown_op"
    (rpc d [ ("id", J.String "x"); ("op", J.String "frobnicate") ]);
  check_code "unknown tenant" "unknown_tenant"
    (rpc d (query_req "nobody"));
  check_code "bad tenant name" "bad_request"
    (rpc d (submit_req ~name:"no/slashes" (Lazy.force fig1)));
  check_code "bad graph" "inadmissible"
    (rpc d (submit_req ~name:"t" "tpdf graph { nonsense"));
  check_code "unsafe graph" "inadmissible"
    (rpc d
       (submit_req ~name:"t"
          (Serial.to_string (Tpdf_core.Examples.unsafe_control ()))
          ~params:[ ("p", 2) ]));
  let ok = rpc d (submit_req ~name:"t" (Lazy.force fig1)) in
  Alcotest.(check bool) "submit ok" true (is_ok ok);
  check_code "duplicate submit" "exists"
    (rpc d (submit_req ~name:"t" (Lazy.force fig1)));
  check_code "zero iterations" "bad_request"
    (rpc d (advance_req ~name:"t" 0));
  check_code "oversized advance" "overloaded"
    (rpc d (advance_req ~name:"t" (D.default_config.D.max_advance + 1)))

(* ------------------------------------------------------------------ *)
(* Capacity, queueing, shedding                                        *)
(* ------------------------------------------------------------------ *)

let test_capacity_queue_shed () =
  (* fig1 costs 7/iteration; capacity 7 fits exactly one tenant. *)
  let cfg = { D.default_config with D.capacity = 7; max_queue = 1 } in
  let d = daemon ~cfg () in
  let r1 = rpc d (submit_req ~name:"t1" (Lazy.force fig1)) in
  Alcotest.(check bool) "t1 ok" true (is_ok r1);
  Alcotest.(check (option string)) "t1 running" (Some "running")
    (match field r1 "status" with Some (J.String s) -> Some s | _ -> None);
  let r2 = rpc d (submit_req ~name:"t2" (Lazy.force fig1)) in
  Alcotest.(check (option string)) "t2 queued" (Some "queued")
    (match field r2 "status" with Some (J.String s) -> Some s | _ -> None);
  let r3 = rpc d (submit_req ~name:"t3" (Lazy.force fig1)) in
  check_code "t3 shed" "overloaded" r3;
  Alcotest.(check bool) "t3 retry hint" true
    (match J.member "error" (parse r3) with
    | Some e -> J.member "retry_after_ms" e <> None
    | None -> false);
  check_code "queued tenants do not advance" "queued"
    (rpc d (advance_req ~name:"t2" 1));
  Alcotest.(check int) "t2 queue position" 0
    (int_field (rpc d (query_req "t2")) "queue_position");
  (* Removing the running tenant frees capacity: strict FIFO promotion. *)
  let rm = rpc d [ ("id", J.String "rm"); ("op", J.String "remove"); ("name", J.String "t1") ] in
  Alcotest.(check bool) "remove ok" true (is_ok rm);
  let q2 = rpc d (query_req "t2") in
  Alcotest.(check (option string)) "t2 promoted" (Some "running")
    (match field q2 "status" with Some (J.String s) -> Some s | _ -> None);
  Alcotest.(check bool) "t2 advances after promotion" true
    (is_ok (rpc d (advance_req ~name:"t2" 1)))

(* ------------------------------------------------------------------ *)
(* Fleet fixture                                                       *)
(* ------------------------------------------------------------------ *)

(* 8 healthy tenants over three distinct graphs and valuations, plus
   one permanently faulting tenant: every firing attempt fails and the
   retry budget is exhausted, so each firing is skipped-and-substituted
   and the skip budget quarantines the tenant on its first advance. *)
let healthy =
  [
    ("h1", `Fig1, []);
    ("h2", `Fig2, [ ("p", 1) ]);
    ("h3", `Fig1, []);
    ("h4", `Fig2, [ ("p", 2) ]);
    ("h5", `Spdf, [ ("p", 2); ("q", 3) ]);
    ("h6", `Fig2, [ ("p", 3) ]);
    ("h7", `Fig1, []);
    ("h8", `Spdf, [ ("p", 1); ("q", 2) ]);
  ]

let faulter_name = "bad"

let src_of = function
  | `Fig1 -> Lazy.force fig1
  | `Fig2 -> Lazy.force fig2
  | `Spdf -> Lazy.force spdf

let fleet_cfg = { D.default_config with D.quarantine_skips = 1 }

let tenant_reqs (name, g, params) =
  let faults =
    if name = faulter_name then Some "fail:*:1.0:1000" else None
  in
  [
    submit_req ~id:("sub-" ^ name) ~name ~params ?faults ~seed:3 (src_of g);
    advance_req ~id:("a1-" ^ name) ~name 2;
    advance_req ~id:("a2-" ^ name) ~name 3;
    query_req ~id:("q-" ^ name) name;
  ]

let all_tenants =
  let before, after =
    (List.filteri (fun i _ -> i < 4) healthy,
     List.filteri (fun i _ -> i >= 4) healthy)
  in
  before @ [ (faulter_name, `Fig2, [ ("p", 2) ]) ] @ after

(* Interleave by round: all submits, all first advances, ... so every
   tenant's requests are separated by the whole fleet's. *)
let fleet_script =
  let per_tenant = List.map tenant_reqs all_tenants in
  List.concat
    (List.map
       (fun round -> List.map (fun reqs -> List.nth reqs round) per_tenant)
       [ 0; 1; 2; 3 ])

let name_of_req req =
  match List.assoc_opt "name" req with
  | Some (J.String n) -> n
  | _ -> Alcotest.fail "request without a name"

let run_script d script =
  List.map (fun req -> (name_of_req req, rpc d req)) script

let test_fleet_isolation () =
  let d = daemon ~cfg:fleet_cfg () in
  let fleet = run_script d fleet_script in
  let responses_of name =
    List.filter_map (fun (n, r) -> if n = name then Some r else None)
  in
  (* The faulter was quarantined on its first advance and stayed out. *)
  (match responses_of faulter_name fleet with
  | [ sub; a1; a2; q ] ->
      Alcotest.(check bool) "faulter admitted" true (is_ok sub);
      check_code "faulter quarantined on advance" "quarantined" a1;
      Alcotest.(check bool) "faulter reported skips" true
        (int_field a1 "skips" > 0);
      check_code "faulter stays quarantined" "quarantined" a2;
      Alcotest.(check (option string)) "faulter query status"
        (Some "quarantined")
        (match field q "status" with Some (J.String s) -> Some s | _ -> None)
  | _ -> Alcotest.fail "faulter transcript shape");
  Alcotest.(check int) "one quarantine counted" 1
    (match List.assoc_opt "serve.quarantined" (Metrics.counters (D.metrics d)) with
    | Some n -> n
    | None -> 0);
  (* Every tenant's transcript — the faulter included — is byte-identical
     to a solo daemon hosting only that tenant. *)
  List.iter
    (fun ((name, _, _) as spec) ->
      let solo = daemon ~cfg:fleet_cfg () in
      let expect = List.map (fun req -> rpc solo req) (tenant_reqs spec) in
      Alcotest.(check (list string))
        (name ^ " transcript matches solo run")
        expect
        (responses_of name fleet))
    all_tenants;
  (* Healthy tenants made full progress. *)
  List.iter
    (fun (name, _, _) ->
      Alcotest.(check int) (name ^ " done") 5
        (int_field (rpc d (query_req name)) "done"))
    healthy

(* ------------------------------------------------------------------ *)
(* Crash recovery                                                      *)
(* ------------------------------------------------------------------ *)

let phase1 =
  let per_tenant = List.map tenant_reqs all_tenants in
  List.concat
    (List.map
       (fun round -> List.map (fun reqs -> List.nth reqs round) per_tenant)
       [ 0; 1 ])

let phase2 =
  let per_tenant = List.map tenant_reqs all_tenants in
  List.concat
    (List.map
       (fun round -> List.map (fun reqs -> List.nth reqs round) per_tenant)
       [ 2; 3 ])

let test_crash_recovery () =
  with_temp_dir @@ fun dir_g ->
  with_temp_dir @@ fun dir_a ->
  let cfg dir = { fleet_cfg with D.state_dir = Some dir } in
  (* Golden daemon: never crashes. *)
  let g = daemon ~cfg:(cfg dir_g) () in
  ignore (run_script g phase1);
  let golden = run_script g phase2 in
  (* Crash daemon: runs phase 1, is dropped without any shutdown — all
     its surviving state is what the synchronous per-request checkpoint
     writes left on disk, exactly the kill -9 situation. *)
  let a = daemon ~cfg:(cfg dir_a) () in
  ignore (run_script a phase1);
  let b = daemon ~cfg:(cfg dir_a) () in
  let resumed = run_script b phase2 in
  List.iter2
    (fun (gn, gr) (bn, br) ->
      Alcotest.(check string) "same tenant order" gn bn;
      (* The quarantined faulter answers with checkpoint-derived detail
         fields when hot and zeros when cold-restored; its code and
         status are pinned below instead of the exact bytes. *)
      if gn <> faulter_name then
        Alcotest.(check string) (gn ^ " resumed byte-identically") gr br)
    golden resumed;
  let q = rpc b (query_req faulter_name) in
  Alcotest.(check (option string)) "faulter still quarantined after restart"
    (Some "quarantined")
    (match field q "status" with Some (J.String s) -> Some s | _ -> None);
  Alcotest.(check bool) "quarantine reason survives restart" true
    (match field q "reason" with
    | Some (J.String r) -> contains r "skip budget"
    | _ -> false);
  (* The restored daemon kept every survivor's progress. *)
  List.iter
    (fun (name, _, _) ->
      Alcotest.(check int) (name ^ " done after restart") 5
        (int_field (rpc b (query_req name)) "done"))
    healthy

(* ------------------------------------------------------------------ *)
(* Eviction / revival                                                  *)
(* ------------------------------------------------------------------ *)

let test_evict_revive () =
  with_temp_dir @@ fun dir ->
  let cfg =
    { D.default_config with D.state_dir = Some dir; max_resident = 1 }
  in
  let d = daemon ~cfg () in
  let baseline = daemon () in
  let reqs name =
    [ submit_req ~id:("s-" ^ name) ~name (Lazy.force fig1);
      advance_req ~id:("a-" ^ name) ~name 2 ]
  in
  (* Submitting e2 evicts e1 (LRU, max_resident 1). *)
  let r1 = List.map (rpc d) (reqs "e1") in
  let b1 = List.map (rpc baseline) (reqs "e1") in
  Alcotest.(check (list string)) "e1 matches unevicted daemon" b1 r1;
  ignore (rpc d (submit_req ~id:"s-e2" ~name:"e2" (Lazy.force fig1)));
  Alcotest.(check bool) "e1 evicted" false
    (match field (rpc d (query_req "e1")) "resident" with
    | Some (J.Bool b) -> b
    | _ -> true);
  (* Advancing the cold tenant revives it with identical responses. *)
  let r = rpc d (advance_req ~id:"a2-e1" ~name:"e1" 3) in
  let b = rpc baseline (advance_req ~id:"a2-e1" ~name:"e1" 3) in
  Alcotest.(check string) "revived advance is byte-identical" b r;
  (* Explicit evict op round-trips too. *)
  let ev = rpc d [ ("id", J.String "ev"); ("op", J.String "evict"); ("name", J.String "e2") ] in
  Alcotest.(check bool) "evict ok" true (is_ok ev);
  Alcotest.(check bool) "e2 advances after explicit evict" true
    (is_ok (rpc d (advance_req ~name:"e2" 1)));
  (* Without a state dir, evict must refuse rather than lose the tenant. *)
  let d2 = daemon () in
  ignore (rpc d2 (submit_req ~name:"m" (Lazy.force fig1)));
  check_code "evict without state dir" "no_state_dir"
    (rpc d2 [ ("id", J.String "ev"); ("op", J.String "evict"); ("name", J.String "m") ])

(* ------------------------------------------------------------------ *)
(* Reconfiguration                                                     *)
(* ------------------------------------------------------------------ *)

let test_reconfigure () =
  let d = daemon () in
  let sub = rpc d (submit_req ~name:"r" ~params:[ ("p", 1) ] (Lazy.force fig2)) in
  Alcotest.(check bool) "submit ok" true (is_ok sub);
  let cost1 = int_field sub "cost" in
  let rc =
    rpc d
      [
        ("id", J.String "rc");
        ("op", J.String "reconfigure");
        ("name", J.String "r");
        ("params", J.Obj [ ("p", J.Int 4) ]);
      ]
  in
  Alcotest.(check bool) "reconfigure ok" true (is_ok rc);
  let cost4 = int_field rc "cost" in
  Alcotest.(check bool) "p=4 costs more than p=1" true (cost4 > cost1);
  Alcotest.(check int) "query sees the new cost" cost4
    (int_field (rpc d (query_req "r")) "cost");
  (* An inadmissible valuation is rejected and leaves the tenant as-is. *)
  check_code "unbound reconfigure" "inadmissible"
    (rpc d
       [
         ("id", J.String "rc2");
         ("op", J.String "reconfigure");
         ("name", J.String "r");
       ]);
  Alcotest.(check int) "cost unchanged after rejection" cost4
    (int_field (rpc d (query_req "r")) "cost");
  Alcotest.(check bool) "tenant still advances" true
    (is_ok (rpc d (advance_req ~name:"r" 1)))

(* ------------------------------------------------------------------ *)
(* Tick, metrics, checkpoint ops                                       *)
(* ------------------------------------------------------------------ *)

let test_tick () =
  let d = daemon ~cfg:fleet_cfg () in
  List.iter
    (fun ((name, _, _) as spec) ->
      ignore (rpc d (List.hd (tenant_reqs spec)));
      ignore name)
    all_tenants;
  let t = rpc d [ ("id", J.String "t"); ("op", J.String "tick"); ("iterations", J.Int 2) ] in
  Alcotest.(check bool) "tick ok" true (is_ok t);
  Alcotest.(check int) "healthy tenants advanced" (List.length healthy)
    (int_field t "advanced");
  (match field t "quarantined" with
  | Some (J.List [ J.String n ]) ->
      Alcotest.(check string) "faulter quarantined by tick" faulter_name n
  | _ -> Alcotest.fail "tick should quarantine exactly the faulter");
  List.iter
    (fun (name, _, _) ->
      Alcotest.(check int) (name ^ " ticked twice") 2
        (int_field (rpc d (query_req name)) "done"))
    healthy

let test_metrics_and_checkpoint () =
  with_temp_dir @@ fun dir ->
  let cfg = { D.default_config with D.state_dir = Some dir } in
  let d = daemon ~cfg () in
  ignore (rpc d (submit_req ~name:"m1" (Lazy.force fig1)));
  ignore (rpc d (advance_req ~name:"m1" 2));
  let m = rpc d [ ("id", J.String "m"); ("op", J.String "metrics") ] in
  let text =
    match field m "openmetrics" with
    | Some (J.String s) -> s
    | _ -> Alcotest.fail "metrics response lacks openmetrics text"
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("metrics expose " ^ needle) true
        (contains text needle))
    [
      "tpdf_serve_tenant_iterations{tenant=\"m1\"} 2";
      "tpdf_serve_requests_total";
      "tpdf_serve_iterations_total 2";
      "# EOF";
    ];
  let ck = rpc d [ ("id", J.String "ck"); ("op", J.String "checkpoint") ] in
  Alcotest.(check bool) "checkpoint ok" true (is_ok ck);
  Alcotest.(check int) "one tenant persisted" 1 (int_field ck "persisted");
  let d2 = daemon () in
  check_code "checkpoint without state dir" "no_state_dir"
    (rpc d2 [ ("id", J.String "ck"); ("op", J.String "checkpoint") ]);
  (* Shutdown flips the stopping flag the server loop watches. *)
  Alcotest.(check bool) "not stopping" false (D.stopping d);
  Alcotest.(check bool) "shutdown ok" true
    (is_ok (rpc d [ ("id", J.String "z"); ("op", J.String "shutdown") ]));
  Alcotest.(check bool) "stopping" true (D.stopping d)

(* ---------- endpoint parsing ---------- *)

let test_parse_endpoint () =
  let module S = Tpdf_serve.Server in
  let check_ep name s expected =
    match (S.parse_endpoint s, expected) with
    | Ok (S.Tcp (h, p)), `Tcp (h', p') ->
        Alcotest.(check string) (name ^ " host") h' h;
        Alcotest.(check int) (name ^ " port") p' p
    | Ok (S.Unix_path path), `Unix path' ->
        Alcotest.(check string) (name ^ " path") path' path
    | Error _, `Error -> ()
    | Ok _, `Error -> Alcotest.failf "%s: expected an error for %S" name s
    | Ok _, _ -> Alcotest.failf "%s: wrong endpoint kind for %S" name s
    | Error e, _ -> Alcotest.failf "%s: unexpected error for %S: %s" name s e
  in
  check_ep "tcp scheme" "tcp:127.0.0.1:7643" (`Tcp ("127.0.0.1", 7643));
  check_ep "tcp localhost" "tcp:localhost:80" (`Tcp ("localhost", 80));
  check_ep "unix scheme" "unix:/tmp/x.sock" (`Unix "/tmp/x.sock");
  check_ep "unix scheme relative" "unix:rel.sock" (`Unix "rel.sock");
  check_ep "bare host:port" "localhost:8080" (`Tcp ("localhost", 8080));
  check_ep "bare path" "/tmp/x.sock" (`Unix "/tmp/x.sock");
  check_ep "bare name" "daemon.sock" (`Unix "daemon.sock");
  (* A path with a colon segment still parses as a path thanks to '/'. *)
  check_ep "path with colon" "/tmp/a:b/x.sock" (`Unix "/tmp/a:b/x.sock");
  check_ep "tcp missing port" "tcp:nope" `Error;
  check_ep "tcp bad port" "tcp:host:notaport" `Error;
  check_ep "tcp out-of-range port" "tcp:host:70000" `Error;
  check_ep "empty" "" `Error

(* ------------------------------------------------------------------ *)
(* Protocol fuzz: malformed wire input never crashes the daemon        *)
(* ------------------------------------------------------------------ *)

module Prng = Tpdf_util.Prng
module NF = Tpdf_serve.Netfault
module C = Tpdf_serve.Client

(* Every fuzz case must produce one well-formed response line: parsable
   JSON object with a boolean "ok" — never an exception, never silence. *)
let well_formed what resp =
  match J.of_string resp with
  | Error e -> Alcotest.failf "%s: unparsable response %S: %s" what resp e
  | Ok v -> (
      match J.member "ok" v with
      | Some (J.Bool _) -> ()
      | _ -> Alcotest.failf "%s: response without ok flag: %S" what resp)

let fuzz_corpus seed n =
  let rng = Prng.create seed in
  let valid =
    J.to_string
      (J.Obj (submit_req ~id:"f" ~name:"fz" (Lazy.force fig1)))
  in
  let printable rng len =
    String.init len (fun _ -> Char.chr (32 + Prng.int rng 95))
  in
  let raw rng len = String.init len (fun _ -> Char.chr (Prng.int rng 256)) in
  let case i =
    match i mod 8 with
    | 0 -> raw rng (Prng.int rng 80)
    | 1 -> printable rng (Prng.int rng 80)
    | 2 ->
        (* truncation of a valid request: torn frame delivered whole *)
        String.sub valid 0 (Prng.int rng (String.length valid))
    | 3 ->
        (* valid JSON, wrong shape *)
        List.nth
          [ "42"; "\"op\""; "[1,2,3]"; "null"; "true"; "{}"; "[]" ]
          (Prng.int rng 7)
    | 4 ->
        (* op field of the wrong type or unknown *)
        List.nth
          [
            {|{"op":42}|};
            {|{"op":null}|};
            {|{"op":"nosuch"}|};
            {|{"op":"advance","name":42}|};
            {|{"op":"submit","name":"x","graph":17}|};
            {|{"op":"migrate_offer","name":"x","ckpt":"junk","cksum":"0"}|};
          ]
          (Prng.int rng 6)
    | 5 ->
        (* deep nesting *)
        let d = 1 + Prng.int rng 60 in
        String.concat "" [ String.make d '['; String.make d ']' ]
    | 6 ->
        (* two requests glued on one line: not valid JSON *)
        valid ^ valid
    | _ ->
        (* valid prefix + random tail *)
        String.sub valid 0 (Prng.int rng (String.length valid))
        ^ printable rng (Prng.int rng 20)
  in
  List.init n case

let test_protocol_fuzz () =
  let d = daemon () in
  List.iteri
    (fun i line -> well_formed (Printf.sprintf "fuzz[%d]" i) (D.handle_line d line))
    (fuzz_corpus 0xF022 400);
  (* The daemon is still fully functional afterwards. *)
  Alcotest.(check bool) "submit after fuzz" true
    (is_ok (rpc d (submit_req ~name:"after" (Lazy.force fig1))));
  Alcotest.(check int) "advance after fuzz" 2
    (int_field (rpc d (advance_req ~name:"after" 2)) "done")

(* ------------------------------------------------------------------ *)
(* Netfault plans                                                      *)
(* ------------------------------------------------------------------ *)

let test_netfault_parse () =
  let round s =
    match NF.parse_specs s with
    | Ok specs -> NF.specs_to_string specs
    | Error e -> Alcotest.failf "parse %S: %s" s e
  in
  Alcotest.(check string) "roundtrip"
    "shortread:0.2:7,tear:0.01,stall:0.05:12,disconnect:0.005,delay:0.1:5,dup:0.02,shortwrite:0.3:1"
    (round
       "shortread:0.2:7,tear:0.01,stall:0.05:12,disconnect:0.005,delay:0.1:5,dup:0.02,shortwrite:0.3:1");
  List.iter
    (fun bad ->
      match NF.parse_specs bad with
      | Ok _ -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [ ""; "nope:0.5"; "tear:1.5"; "tear:x"; "tear:0.5:3"; "shortread:0.5:0";
      "delay:0.5:-1"; "shortread:0.5:1:2" ]

let test_netfault_determinism () =
  let specs =
    match
      NF.parse_specs "shortread:0.3:4,tear:0.2,disconnect:0.1,delay:0.5:8,dup:0.15"
    with
    | Ok s -> s
    | Error e -> Alcotest.fail e
  in
  let plan = NF.make ~seed:11 specs in
  let verdicts conn =
    List.init 64 (fun op -> NF.verdict plan ~conn ~op ~len:100)
  in
  (* Pure: same (seed, conn, op) → same verdicts, independent of order. *)
  Alcotest.(check bool) "replay identical" true (verdicts 3 = verdicts 3);
  Alcotest.(check bool) "connections differ" true (verdicts 3 <> verdicts 4);
  Alcotest.(check bool) "seeds differ" true
    (verdicts 3
    <> List.init 64 (fun op ->
           NF.verdict (NF.make ~seed:12 specs) ~conn:3 ~op ~len:100));
  (* One draw per spec whether or not it fires: zeroing one spec's
     probability must not shift any other spec's stream. *)
  let zero_tear =
    List.map
      (fun (s : NF.spec) ->
        match s.NF.kind with
        | NF.Tear -> NF.spec ~prob:0.0 NF.Tear
        | _ -> s)
      specs
  in
  let plan' = NF.make ~seed:11 zero_tear in
  List.iteri
    (fun op (v : NF.verdict) ->
      let v' = NF.verdict plan' ~conn:3 ~op ~len:100 in
      Alcotest.(check bool)
        (Printf.sprintf "op %d: non-tear faults unshifted" op)
        true
        ({ v with NF.v_tear_at = None } = v'))
    (verdicts 3);
  (* The empty plan is transparent. *)
  Alcotest.(check bool) "none is clean" true
    (NF.verdict NF.none ~conn:0 ~op:0 ~len:10 = NF.clean)

(* ------------------------------------------------------------------ *)
(* Resilient client                                                    *)
(* ------------------------------------------------------------------ *)

let test_backoff () =
  let p = { C.default_policy with C.backoff_ms = 10.0; backoff_max_ms = 50.0 } in
  (* Jitter scales base by [0.5, 1.0); the base doubles then caps. *)
  List.iter
    (fun (attempt, base) ->
      let b = C.backoff_ms p ~op:7 ~attempt in
      Alcotest.(check bool)
        (Printf.sprintf "attempt %d in [%g, %g)" attempt (base /. 2.0) base)
        true
        (b >= base /. 2.0 && b < base))
    [ (1, 10.0); (2, 20.0); (3, 40.0); (4, 50.0); (5, 50.0) ];
  Alcotest.(check bool) "pure" true
    (C.backoff_ms p ~op:7 ~attempt:2 = C.backoff_ms p ~op:7 ~attempt:2);
  Alcotest.(check bool) "ops decorrelated" true
    (C.backoff_ms p ~op:7 ~attempt:2 <> C.backoff_ms p ~op:8 ~attempt:2)

let test_client_call () =
  let p =
    { C.deadline_ms = 100.0; retries = 3; backoff_ms = 10.0;
      backoff_max_ms = 80.0; seed = 5 }
  in
  (* Fail the first k attempts at transport level, then answer. *)
  let transport k =
    let calls = ref 0 and slept = ref 0.0 in
    ( {
        C.call =
          (fun ~deadline_ms:_ line ->
            incr calls;
            if !calls <= k then Error (C.Conn "injected reset")
            else Ok ("echo:" ^ line));
        sleep = (fun ms -> slept := !slept +. ms);
      },
      calls,
      slept )
  in
  let tr, calls, slept = transport 2 in
  let out = C.call p tr ~op:0 "req" in
  Alcotest.(check bool) "recovers" true (out.C.response = Ok "echo:req");
  Alcotest.(check int) "attempts" 3 out.C.attempts;
  Alcotest.(check int) "transport calls" 3 !calls;
  Alcotest.(check bool) "slept the backoffs" true
    (!slept = out.C.slept_ms
    && out.C.slept_ms
       = C.backoff_ms p ~op:0 ~attempt:1 +. C.backoff_ms p ~op:0 ~attempt:2);
  (* Retries exhausted: the last failure surfaces. *)
  let tr, calls, _ = transport 99 in
  let out = C.call p tr ~op:1 "req" in
  Alcotest.(check bool) "gives up with an error" true
    (match out.C.response with Error _ -> true | Ok _ -> false);
  Alcotest.(check int) "all attempts used" 4 !calls;
  (* A well-formed (error) response is never retried. *)
  let calls = ref 0 in
  let tr =
    {
      C.call =
        (fun ~deadline_ms:_ _ ->
          incr calls;
          Ok {|{"id":null,"ok":false,"error":{"code":"quarantined","msg":"x"}}|});
      sleep = (fun _ -> Alcotest.fail "must not back off on a response");
    }
  in
  ignore (C.call p tr ~op:2 "req");
  Alcotest.(check int) "error responses are terminal" 1 !calls

let test_ensure_rid () =
  Alcotest.(check string) "adds rid"
    (J.to_string (J.Obj [ ("rid", J.String "r1"); ("op", J.String "ping") ]))
    (C.ensure_rid {|{"op":"ping"}|} ~rid:"r1");
  Alcotest.(check string) "keeps existing rid"
    {|{"rid":"mine","op":"ping"}|}
    (C.ensure_rid {|{"rid":"mine","op":"ping"}|} ~rid:"r1");
  Alcotest.(check string) "non-object untouched" "[1]"
    (C.ensure_rid "[1]" ~rid:"r1")

(* ------------------------------------------------------------------ *)
(* Idempotency keys                                                    *)
(* ------------------------------------------------------------------ *)

let test_rid_cache () =
  let d = daemon ~cfg:{ D.default_config with D.max_advance = 4 } () in
  ignore (rpc d (submit_req ~name:"i" (Lazy.force fig1)));
  let adv = ("rid", J.String "adv-1") :: advance_req ~id:"a" ~name:"i" 2 in
  let first = rpc d adv in
  Alcotest.(check int) "advanced" 2 (int_field first "done");
  (* Replaying the same rid returns the same bytes and does NOT
     re-advance — the retry-after-lost-response case. *)
  let again = rpc d adv in
  Alcotest.(check string) "byte-identical replay" first again;
  Alcotest.(check int) "no double advance" 2
    (int_field (rpc d (query_req "i")) "done");
  (* A different rid with the same body is a new logical request. *)
  let third = rpc d (("rid", J.String "adv-2") :: advance_req ~id:"a" ~name:"i" 2) in
  Alcotest.(check int) "fresh rid re-executes" 4 (int_field third "done");
  (* Transient refusals are not poisoned into the cache: an oversized
     advance sheds with [overloaded]; re-using its rid with an
     acceptable request must execute, not replay the refusal. *)
  let big = ("rid", J.String "retry-me") :: advance_req ~id:"b" ~name:"i" 99 in
  check_code "oversized advance shed" "overloaded" (rpc d big);
  let ok2 = rpc d (("rid", J.String "retry-me") :: advance_req ~id:"b" ~name:"i" 1) in
  Alcotest.(check int) "transient code was not cached" 5 (int_field ok2 "done");
  (* Cache disabled: replay re-executes. *)
  let d0 = daemon ~cfg:{ D.default_config with D.rid_cache = 0 } () in
  ignore (rpc d0 (submit_req ~name:"i" (Lazy.force fig1)));
  ignore (rpc d0 (("rid", J.String "x") :: advance_req ~name:"i" 1));
  ignore (rpc d0 (("rid", J.String "x") :: advance_req ~name:"i" 1));
  Alcotest.(check int) "rid_cache=0 re-executes" 2
    (int_field (rpc d0 (query_req "i")) "done")

(* ------------------------------------------------------------------ *)
(* Drain                                                               *)
(* ------------------------------------------------------------------ *)

let test_drain () =
  with_temp_dir @@ fun dir ->
  let d = daemon ~cfg:{ D.default_config with D.state_dir = Some dir } () in
  ignore (rpc d (submit_req ~name:"t" (Lazy.force fig1)));
  let dr = rpc d [ ("id", J.String "d"); ("op", J.String "drain") ] in
  Alcotest.(check bool) "drain ok" true (is_ok dr);
  Alcotest.(check bool) "reports draining" true
    (field dr "draining" = Some (J.Bool true));
  Alcotest.(check bool) "not stopping without stop:true" false (D.stopping d);
  Alcotest.(check bool) "daemon reports draining" true (D.draining d);
  (* New work is refused; existing tenants still serve. *)
  check_code "submit while draining" "draining"
    (rpc d (submit_req ~name:"new" (Lazy.force fig1)));
  check_code "migration offers refused" "draining"
    (rpc d
       [
         ("op", J.String "migrate_offer");
         ("name", J.String "x");
         ("ckpt", J.String "whatever");
         ("cksum", J.String "0");
       ]);
  Alcotest.(check int) "existing tenant advances" 2
    (int_field (rpc d (advance_req ~name:"t" 2)) "done");
  Alcotest.(check bool) "ping flags draining" true
    (field (rpc d [ ("op", J.String "ping") ]) "draining" = Some (J.Bool true));
  (* drain --stop also stops the accept loop. *)
  let dr2 =
    rpc d [ ("op", J.String "drain"); ("stop", J.Bool true) ]
  in
  Alcotest.(check bool) "drain stop ok" true (is_ok dr2);
  Alcotest.(check bool) "stopping" true (D.stopping d)

(* ------------------------------------------------------------------ *)
(* Live migration: two-phase handoff under kill -9 at every point      *)
(* ------------------------------------------------------------------ *)

(* An in-process two-daemon fleet.  Daemons live in mutable slots so a
   "crashed" daemon (slot = None) can be reloaded from its state
   directory; dialing a dead slot fails like a refused connection, and
   a peer crashing mid-request (Injected_crash escaping its dispatch)
   kills the slot and surfaces as a reset — exactly what a SIGKILLed
   process looks like over a socket. *)
type slot = { mutable live : D.t option; mutable cfg : D.config }

let mk_dial slots self =
  fun addr line ->
    match List.assoc_opt addr slots with
    | None -> Error (Printf.sprintf "no route to %s" addr)
    | Some _ when addr = self -> Error "daemon cannot dial itself"
    | Some s -> (
        match s.live with
        | None -> Error "connection refused"
        | Some d -> (
            match D.handle_line d line with
            | resp -> Ok resp
            | exception D.Injected_crash _ ->
                s.live <- None;
                Error "connection reset by peer"))

let boot ?(mk = mk_dial) slots name =
  let s = List.assoc name slots in
  match D.create ~dial:(mk slots name) s.cfg with
  | Ok d ->
      s.live <- Some d;
      d
  | Error e -> Alcotest.failf "boot %s: %s" name e

(* Reload a crashed daemon from its durable state, crash point disarmed
   — the restart after kill -9. *)
let reboot ?mk slots name =
  let s = List.assoc name slots in
  s.cfg <- { s.cfg with D.crash_at = None };
  ignore (boot ?mk slots name)

(* Issue a request to one daemon; an [Injected_crash] escaping the
   handler is the daemon SIGKILLing itself mid-request — the caller
   sees no response and the slot dies. *)
let rpc_on slots name fields =
  let s = List.assoc name slots in
  match s.live with
  | None -> Alcotest.failf "rpc to dead daemon %s" name
  | Some d -> (
      match D.handle_line d (J.to_string (J.Obj fields)) with
      | resp -> Some resp
      | exception D.Injected_crash _ ->
          s.live <- None;
          None)

let migrate_req name ~to_ ~from =
  [
    ("id", J.String "m");
    ("op", J.String "migrate");
    ("name", J.String name);
    ("to", J.String to_);
    ("from", J.String from);
  ]

let resolve_req name =
  [ ("id", J.String "r"); ("op", J.String "resolve"); ("name", J.String name) ]

(* Which daemons hold any copy of [name], and in what status. *)
let holders slots name =
  List.filter_map
    (fun (nm, s) ->
      match s.live with
      | None -> None
      | Some d ->
          let r = D.handle_line d (J.to_string (J.Obj (query_req name))) in
          if not (is_ok r) then None
          else
            match field r "status" with
            | Some (J.String st) -> Some (nm, st)
            | _ -> Some (nm, "?"))
    slots

let settled slots name =
  match holders slots name with [ (nm, "running") ] -> Some nm | _ -> None

(* Send [resolve] to every live daemon until exactly one Running copy
   remains.  The protocol converges in one or two rounds; ten is a
   divergence alarm, not a retry budget. *)
let resolve_all slots name =
  let rec go round =
    if round > 10 then
      Alcotest.failf "resolve did not converge: holders %s"
        (String.concat ","
           (List.map (fun (nm, st) -> nm ^ ":" ^ st) (holders slots name)))
    else
      match settled slots name with
      | Some owner -> owner
      | None ->
          List.iter
            (fun (nm, s) ->
              if s.live <> None then ignore (rpc_on slots nm (resolve_req name)))
            slots;
          go (round + 1)
  in
  go 0

let newest_ckpt state_dir name =
  let d = Filename.concat (Filename.concat state_dir "tenants") name in
  match List.sort compare (Array.to_list (Sys.readdir d)) with
  | [] -> Alcotest.failf "no checkpoints under %s" d
  | files -> read_file (Filename.concat d (List.hd (List.rev files)))

(* One kill -9 scenario: daemons A and B, tenant advanced to 3 on A,
   then [migrate] with a crash injected at [crash_a]/[crash_b]; the
   dead daemon reboots from its state directory, [resolve] converges,
   and the surviving copy must live on exactly [expect] with state
   byte-identical to a control daemon that never migrated. *)
let run_migration_scenario ?(label = "") ~crash_a ~crash_b ~expect () =
  let check_s what = Alcotest.(check string) (label ^ ": " ^ what) in
  with_temp_dir @@ fun dir_a ->
  with_temp_dir @@ fun dir_b ->
  with_temp_dir @@ fun dir_c ->
  let cfg dir crash =
    { D.default_config with D.state_dir = Some dir; crash_at = crash }
  in
  let control = daemon ~cfg:(cfg dir_c None) () in
  Alcotest.(check bool) "control submit" true
    (is_ok (rpc control (submit_req ~name:"mv" (Lazy.force fig1))));
  ignore (rpc control (advance_req ~name:"mv" 3));
  let slots =
    [
      ("A", { live = None; cfg = cfg dir_a crash_a });
      ("B", { live = None; cfg = cfg dir_b crash_b });
    ]
  in
  ignore (boot slots "A");
  ignore (boot slots "B");
  Alcotest.(check bool) "fleet submit" true
    (match rpc_on slots "A" (submit_req ~name:"mv" (Lazy.force fig1)) with
    | Some r -> is_ok r
    | None -> false);
  ignore (rpc_on slots "A" (advance_req ~name:"mv" 3));
  ignore (rpc_on slots "A" (migrate_req "mv" ~to_:"B" ~from:"A"));
  List.iter
    (fun (nm, s) -> if s.live = None then reboot slots nm)
    slots;
  let owner = resolve_all slots "mv" in
  check_s "single owner" expect owner;
  let surv =
    match (List.assoc owner slots).live with
    | Some d -> d
    | None -> Alcotest.fail "owner daemon died"
  in
  Alcotest.(check int) "no iteration lost or replayed" 3
    (int_field (D.handle_line surv (J.to_string (J.Obj (query_req "mv")))) "done");
  (* Forward progress answers byte for byte like the control... *)
  let adv d = D.handle_line d (J.to_string (J.Obj (advance_req ~name:"mv" 2))) in
  check_s "post-handoff transcript matches control" (adv control) (adv surv);
  (* ...and the freshly written durable checkpoint is byte-identical
     to the unmigrated control's. *)
  let surv_dir = if owner = "A" then dir_a else dir_b in
  check_s "checkpoint bytes match control" (newest_ckpt dir_c "mv")
    (newest_ckpt surv_dir "mv")

let migration_scenarios =
  [
    ("clean handoff", None, None, "B");
    ("kill -9 src after mark", Some "src_after_mark", None, "A");
    ("kill -9 src after offer", Some "src_after_offer", None, "A");
    ("kill -9 dst after prepare", None, Some "dst_after_prepare", "A");
    ("kill -9 src after commit", Some "src_after_commit", None, "B");
    ("kill -9 dst after commit", None, Some "dst_after_commit", "B");
    ("kill -9 src after release", Some "src_after_release", None, "B");
  ]

(* Chaotic dial: every inter-daemon message (request and response
   independently) can be lost, per a seeded fault plan.  A bounded
   retry/resolve loop must still land the tenant on B, exactly once,
   byte-identical to the control — across a sweep of seeds. *)
let chaos_mk plan ops slots self =
  let base = mk_dial slots self in
  fun addr line ->
    let op = !ops in
    incr ops;
    let v = NF.verdict plan ~conn:0 ~op ~len:(String.length line) in
    if v.NF.v_drop then Error "injected: request lost"
    else
      match base addr line with
      | Error e -> Error e
      | Ok resp ->
          let v' = NF.verdict plan ~conn:1 ~op ~len:(String.length resp) in
          if v'.NF.v_drop then Error "injected: response lost" else Ok resp

let test_migration_chaotic_dial () =
  List.iter
    (fun seed ->
      with_temp_dir @@ fun dir_a ->
      with_temp_dir @@ fun dir_b ->
      let t = Printf.sprintf "seed %d: " seed in
      let control = daemon () in
      ignore (rpc control (submit_req ~name:"mv" (Lazy.force fig1)));
      ignore (rpc control (advance_req ~name:"mv" 3));
      let slots =
        [
          ("A", { live = None; cfg = { D.default_config with D.state_dir = Some dir_a } });
          ("B", { live = None; cfg = { D.default_config with D.state_dir = Some dir_b } });
        ]
      in
      let plan = NF.make ~seed [ NF.spec ~prob:0.3 NF.Disconnect ] in
      let mk = chaos_mk plan (ref 0) in
      ignore (boot ~mk slots "A");
      ignore (boot ~mk slots "B");
      ignore (rpc_on slots "A" (submit_req ~name:"mv" (Lazy.force fig1)));
      ignore (rpc_on slots "A" (advance_req ~name:"mv" 3));
      let status_on nm =
        List.assoc_opt nm (holders slots "mv")
      in
      let rec drive n =
        if n > 100 then
          Alcotest.failf "%sno convergence after %d rounds (holders %s)" t n
            (String.concat ","
               (List.map (fun (nm, st) -> nm ^ ":" ^ st) (holders slots "mv")))
        else if not (status_on "B" = Some "running" && status_on "A" = None)
        then begin
          (match status_on "A" with
          | Some "running" ->
              ignore (rpc_on slots "A" (migrate_req "mv" ~to_:"B" ~from:"A"))
          | Some _ -> ignore (rpc_on slots "A" (resolve_req "mv"))
          | None -> ());
          (match status_on "B" with
          | Some "prepared" -> ignore (rpc_on slots "B" (resolve_req "mv"))
          | _ -> ());
          drive (n + 1)
        end
      in
      drive 0;
      Alcotest.(check (list (pair string string)))
        (t ^ "exactly one live copy")
        [ ("B", "running") ] (holders slots "mv");
      let surv =
        match (List.assoc "B" slots).live with
        | Some d -> d
        | None -> Alcotest.fail "B died"
      in
      Alcotest.(check int) (t ^ "done preserved") 3
        (int_field
           (D.handle_line surv (J.to_string (J.Obj (query_req "mv"))))
           "done");
      let adv d =
        D.handle_line d (J.to_string (J.Obj (advance_req ~name:"mv" 2)))
      in
      Alcotest.(check string)
        (t ^ "post-chaos transcript matches control")
        (adv control) (adv surv))
    [ 1; 2; 3; 4; 5 ]

let test_migration_matrix () =
  List.iter
    (fun (label, crash_a, crash_b, expect) ->
      run_migration_scenario ~label ~crash_a ~crash_b ~expect ())
    migration_scenarios

(* ------------------------------------------------------------------ *)
(* Real sockets: hardened accept loop                                  *)
(* ------------------------------------------------------------------ *)

module S = Tpdf_serve.Server

let write_all fd s =
  let n = String.length s in
  try
    let rec go off =
      if off < n then go (off + Unix.write_substring fd s off (n - off))
    in
    go 0
  with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()

(* Read one response line (or EOF / timeout) off a raw client fd. *)
let read_reply ?(timeout_s = 5.0) fd =
  let buf = Buffer.create 256 in
  let b = Bytes.create 256 in
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    let left = deadline -. Unix.gettimeofday () in
    if left <= 0.0 then `Timeout
    else
      match Unix.select [ fd ] [] [] left with
      | [], _, _ -> `Timeout
      | _ -> (
          match Unix.read fd b 0 256 with
          | 0 -> if Buffer.length buf = 0 then `Eof else `Line (Buffer.contents buf)
          | n -> (
              Buffer.add_subbytes buf b 0 n;
              let s = Buffer.contents buf in
              match String.index_opt s '\n' with
              | Some i -> `Line (String.sub s 0 i)
              | None -> go ())
          | exception Unix.Unix_error (Unix.ECONNRESET, _, _) ->
              if Buffer.length buf = 0 then `Eof else `Line (Buffer.contents buf))
  in
  go ()

let sock_connect ep =
  match S.connect ~timeout_ms:5000.0 ep with
  | Ok fd -> fd
  | Error e -> Alcotest.failf "connect: %s" e

let with_server ?limits ?netfault k =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  with_temp_dir @@ fun dir ->
  Unix.mkdir dir 0o755;
  let ep = S.Unix_path (Filename.concat dir "d.sock") in
  let d = daemon () in
  let srv = Domain.spawn (fun () -> S.serve ?limits ?netfault d ep) in
  let fin () =
    (match S.request ep {|{"op":"shutdown"}|} with
    | Ok _ | Error _ -> ());
    match Domain.join srv with
    | Ok () -> ()
    | Error e -> Alcotest.failf "serve: %s" e
  in
  Fun.protect ~finally:fin (fun () -> k ep)

let test_socket_limits () =
  let limits =
    {
      S.default_limits with
      S.max_conns = 2;
      max_line_bytes = 4096;
      read_deadline_ms = 200.0;
    }
  in
  with_server ~limits @@ fun ep ->
  (* A healthy request round-trips. *)
  (match S.request ep {|{"op":"ping"}|} with
  | Ok r -> Alcotest.(check bool) "ping ok" true (is_ok r)
  | Error e -> Alcotest.failf "ping: %s" e);
  (* Garbage gets a framed error, not a dropped connection. *)
  (match S.request ep "certainly not json" with
  | Ok r -> check_code "garbage" "bad_request" r
  | Error e -> Alcotest.failf "garbage: %s" e);
  (* An oversized line is refused with [too_large], then the offender
     is closed — one connection pays, the listener survives. *)
  let fd = sock_connect ep in
  write_all fd (String.make 5000 'a' ^ "\n");
  (match read_reply fd with
  | `Line r -> check_code "oversize" "too_large" r
  | `Eof -> Alcotest.fail "oversize: closed without a framed error"
  | `Timeout -> Alcotest.fail "oversize: no reply");
  Unix.close fd;
  (* A mid-frame stall past the read deadline is cut without a reply
     (there is nothing safe to frame into a half-received request). *)
  let fd = sock_connect ep in
  write_all fd {|{"op":|};
  Unix.sleepf 0.6;
  (match read_reply ~timeout_s:2.0 fd with
  | `Eof -> ()
  | `Line r -> Alcotest.failf "stall: unexpected reply %s" r
  | `Timeout -> Alcotest.fail "stall: connection not cut");
  Unix.close fd;
  (* The accept cap sheds the (max_conns+1)th connection with a framed
     [overloaded] while existing connections keep working. *)
  let c1 = sock_connect ep and c2 = sock_connect ep in
  let c3 = sock_connect ep in
  (match read_reply c3 with
  | `Line r -> check_code "conn cap" "overloaded" r
  | `Eof -> Alcotest.fail "conn cap: closed without a framed error"
  | `Timeout -> Alcotest.fail "conn cap: no refusal");
  write_all c1 {|{"id":"c1","op":"ping"}|};
  write_all c1 "\n";
  (match read_reply c1 with
  | `Line r -> Alcotest.(check bool) "c1 alive under cap" true (is_ok r)
  | _ -> Alcotest.fail "c1 starved");
  Unix.close c1;
  Unix.close c2;
  Unix.close c3;
  (* The daemon still serves after all that abuse. *)
  match S.request ep {|{"op":"ping"}|} with
  | Ok r -> Alcotest.(check bool) "ping after abuse" true (is_ok r)
  | Error e -> Alcotest.failf "ping after abuse: %s" e

let test_socket_netfault_passthrough () =
  (* Deterministic wire chaos that mangles framing but never loses
     data: every read is 1 byte, every write at most 3, responses
     dup'd on the wire sometimes.  The framing layers must make this
     invisible to the protocol. *)
  let nf =
    NF.make ~seed:9
      [
        NF.spec ~prob:1.0 (NF.Short_read 1);
        NF.spec ~prob:1.0 (NF.Short_write 3);
        NF.spec ~prob:0.3 (NF.Delay 1.0);
      ]
  in
  with_server ~netfault:nf @@ fun ep ->
  let fd = sock_connect ep in
  for i = 1 to 5 do
    write_all fd (Printf.sprintf {|{"id":%d,"op":"ping"}|} i);
    write_all fd "\n";
    match read_reply fd with
    | `Line r ->
        Alcotest.(check bool) (Printf.sprintf "ping %d through chaos" i) true
          (is_ok r);
        Alcotest.(check bool)
          (Printf.sprintf "ping %d echoes id" i)
          true
          (field r "id" = Some (J.Int i))
    | `Eof -> Alcotest.failf "ping %d: connection dropped" i
    | `Timeout -> Alcotest.failf "ping %d: no reply" i
  done;
  Unix.close fd

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "tpdf_serve"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse" `Quick test_json_parse;
        ] );
      ( "admission",
        [
          Alcotest.test_case "admits fig1" `Quick test_admission_ok;
          Alcotest.test_case "rejection ladder" `Quick test_admission_rejects;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "stable error codes" `Quick test_protocol_errors;
          Alcotest.test_case "endpoint parsing" `Quick test_parse_endpoint;
        ] );
      ( "capacity",
        [ Alcotest.test_case "queue + shed + promote" `Quick test_capacity_queue_shed ] );
      ( "isolation",
        [ Alcotest.test_case "9-tenant fleet vs solo" `Quick test_fleet_isolation ] );
      ( "recovery",
        [ Alcotest.test_case "drop + reload state dir" `Quick test_crash_recovery ] );
      ( "eviction",
        [ Alcotest.test_case "evict/revive transparent" `Quick test_evict_revive ] );
      ( "reconfigure",
        [ Alcotest.test_case "swap valuation" `Quick test_reconfigure ] );
      ( "ops",
        [
          Alcotest.test_case "tick shards the fleet" `Quick test_tick;
          Alcotest.test_case "metrics + checkpoint" `Quick
            test_metrics_and_checkpoint;
        ] );
      ( "fuzz",
        [ Alcotest.test_case "malformed wire input" `Quick test_protocol_fuzz ] );
      ( "netfault",
        [
          Alcotest.test_case "spec grammar" `Quick test_netfault_parse;
          Alcotest.test_case "seeded determinism" `Quick
            test_netfault_determinism;
        ] );
      ( "client",
        [
          Alcotest.test_case "jittered backoff" `Quick test_backoff;
          Alcotest.test_case "retry loop" `Quick test_client_call;
          Alcotest.test_case "idempotency key injection" `Quick test_ensure_rid;
        ] );
      ( "idempotency",
        [ Alcotest.test_case "rid replay" `Quick test_rid_cache ] );
      ( "drain", [ Alcotest.test_case "graceful drain" `Quick test_drain ] );
      ( "migration",
        [
          Alcotest.test_case "kill -9 matrix" `Quick test_migration_matrix;
          Alcotest.test_case "chaotic dial seed sweep" `Quick
            test_migration_chaotic_dial;
        ] );
      ( "socket",
        [
          Alcotest.test_case "hardened accept loop" `Quick test_socket_limits;
          Alcotest.test_case "netfault passthrough" `Quick
            test_socket_netfault_passthrough;
        ] );
    ]
